# Local targets mirror .github/workflows/ci.yml exactly, so `make ci`
# reproduces what CI runs.

GO ?= go
FUZZTIME ?= 10s
FUZZ_PKGS := ./internal/core ./internal/dlt

.PHONY: build test bench bench-json fmt fmt-check vet race fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Mirrors the CI bench job: one sample per root-package benchmark
# (figure regenerations + BenchmarkServiceSubmit*) plus the pool
# shard-scaling benchmarks, as test2json streams. Redirect instead of tee
# so a benchmark failure fails the target (make's /bin/sh has no
# pipefail).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_service.json
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json ./internal/pool > BENCH_pool.json

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

fuzz-smoke:
	@set -eu; for pkg in $(FUZZ_PKGS); do \
		targets=$$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz' || true); \
		for target in $$targets; do \
			echo "=== fuzzing $$pkg/$$target"; \
			$(GO) test $$pkg -run='^$$' -fuzz="^$$target\$$" -fuzztime=$(FUZZTIME); \
		done; \
	done

ci: build fmt-check vet race bench fuzz-smoke
