# Local targets mirror .github/workflows/ci.yml exactly, so `make ci`
# reproduces what CI runs.

GO ?= go
FUZZTIME ?= 10s
FUZZ_PKGS := ./internal/core ./internal/dlt ./internal/fleet ./internal/rt

.PHONY: build test bench bench-json bench-index bench-contention fmt fmt-check vet race fuzz-smoke serve loadtest wire-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Mirrors the CI bench job: one sample per root-package benchmark
# (figure regenerations + BenchmarkServiceSubmit*) plus the pool
# shard-scaling benchmarks, as test2json streams. Redirect instead of tee
# so a benchmark failure fails the target (make's /bin/sh has no
# pipefail).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json . > BENCH_service.json
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json ./internal/pool > BENCH_pool.json

# Admission-index scaling gate: BenchmarkSubmit*/nodes={100,1000,10000}
# into BENCH_index.json, then cmd/benchgate fails the target if per-submit
# ns/op grows super-linearly (> MAX_RATIO, default 15x over a 100x fleet).
bench-index:
	./scripts/bench_index.sh

# Optimistic-admission contention gate: BenchmarkSubmitContention
# (mix={cold,hot} x mode={spec,serial} x submitter sweep) into
# BENCH_contention.json, then cmd/benchgate -contention enforces the
# speculation contract — parallel scaling on the low-conflict mix, near-
# serialized throughput on the 100%-conflict mix. Machine-adaptive: both
# gates skip with a note on single-proc machines.
bench-contention:
	./scripts/bench_contention.sh

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

fuzz-smoke:
	@set -eu; for pkg in $(FUZZ_PKGS); do \
		targets=$$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz' || true); \
		for target in $$targets; do \
			echo "=== fuzzing $$pkg/$$target"; \
			$(GO) test $$pkg -run='^$$' -fuzz="^$$target\$$" -fuzztime=$(FUZZTIME); \
		done; \
	done

# Boot the wire server: 4 shards × 8 nodes, bounded queues, 100k sim
# units per wall second, pprof on a loopback side port and structured
# request logs. Ctrl-C (or SIGTERM) drains gracefully.
serve:
	$(GO) run ./cmd/dlserve -addr :8080 -n 8 -shards 4 -placement spillover -max-queue 64 -scale 100000 \
		-pprof-addr 127.0.0.1:6060 -log-level info -log-format text

# Closed-loop burst against a running `make serve`, gated like CI.
loadtest:
	$(GO) run ./cmd/dlload -url http://127.0.0.1:8080 -mode closed -workers 64 -n 50000 \
		-sigma 200 -deadline 20000 -max-p99 2000 -fail-on-5xx -require-retry-after -out BENCH_wire.json

# The CI wire-smoke job, runnable locally: boot dlserve, push 50k
# submissions through it, SIGTERM, and assert the drain lost nothing
# (accepts == commits, empty queue) with zero hard 5xx, plus the
# /metrics invariants (submits == accepts + rejects live; accepts ==
# commits and zero dropped events after drain).
wire-smoke:
	./scripts/wire_smoke.sh

ci: build fmt-check vet race bench fuzz-smoke
