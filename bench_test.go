// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §4 for the index), plus ablation and
// micro-benchmarks. Each figure benchmark regenerates its panel(s) at a
// reduced horizon per iteration and reports the per-algorithm mean Task
// Reject Ratio across the load sweep as custom metrics, so `go test
// -bench=.` shows not just the cost but the *result shape* — who wins and
// by how much. cmd/figures produces the full-scale data files.
package rtdls_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"rtdls"
	"rtdls/internal/experiments"
)

// benchOpts is the per-iteration scale: one paired seed over the full load
// sweep at a short horizon. Orderings at this scale match the full-scale
// runs; absolute levels are slightly noisier.
func benchOpts() experiments.Options {
	return experiments.Options{Horizon: 1.2e5, Runs: 1, BaseSeed: 42, Workers: 2}
}

// runPanels executes the panels once per iteration and reports, for every
// algorithm of every panel, the mean reject ratio across the load sweep.
func runPanels(b *testing.B, ids ...string) {
	b.Helper()
	panels := make([]experiments.Panel, 0, len(ids))
	for _, id := range ids {
		p, ok := experiments.PanelByID(id)
		if !ok {
			b.Fatalf("unknown panel %s", id)
		}
		panels = append(panels, p)
	}
	var last []*experiments.PanelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunAll(panels, benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rs
	}
	b.StopTimer()
	for _, r := range last {
		for ai, alg := range r.Panel.Algs {
			sum := 0.0
			for _, c := range r.Cells {
				sum += c.RejectRatio[ai].Mean
			}
			metric := fmt.Sprintf("%s:%s_rr", r.Panel.ID, sanitize(alg.Name))
			b.ReportMetric(sum/float64(len(r.Cells)), metric)
		}
	}
}

func sanitize(s string) string {
	return strings.NewReplacer(" ", "", "/", "-").Replace(s)
}

// --- One benchmark per paper figure -----------------------------------

// BenchmarkFig03_IITBenefitBaseline regenerates Fig. 3a/3b: EDF-DLT vs
// EDF-OPR-MN on the baseline configuration.
func BenchmarkFig03_IITBenefitBaseline(b *testing.B) { runPanels(b, "f03") }

// BenchmarkFig04_DCRatioEDF regenerates Fig. 4a–d: DCRatio ∈ {3,10,20,100}.
func BenchmarkFig04_DCRatioEDF(b *testing.B) { runPanels(b, "f04a", "f04b", "f04c", "f04d") }

// BenchmarkFig05_UserSplitEDF regenerates Fig. 5a–b: EDF-DLT vs
// EDF-UserSplit at DCRatio 2 and 10.
func BenchmarkFig05_UserSplitEDF(b *testing.B) { runPanels(b, "f05a", "f05b") }

// BenchmarkFig06_AvgSigmaEDF regenerates Fig. 6a–d: Avgσ ∈ {100,…,800}.
func BenchmarkFig06_AvgSigmaEDF(b *testing.B) { runPanels(b, "f06a", "f06b", "f06c", "f06d") }

// BenchmarkFig07_CmsEDF regenerates Fig. 7a–d: Cms ∈ {1,2,4,8}.
func BenchmarkFig07_CmsEDF(b *testing.B) { runPanels(b, "f07a", "f07b", "f07c", "f07d") }

// BenchmarkFig08_CpsEDF regenerates Fig. 8a–f: Cps ∈ {10,…,10000}.
func BenchmarkFig08_CpsEDF(b *testing.B) {
	runPanels(b, "f08a", "f08b", "f08c", "f08d", "f08e", "f08f")
}

// BenchmarkFig09_DCRatioFIFO regenerates Fig. 9a–d (FIFO mirror of Fig. 4).
func BenchmarkFig09_DCRatioFIFO(b *testing.B) { runPanels(b, "f09a", "f09b", "f09c", "f09d") }

// BenchmarkFig10_AvgSigmaFIFO regenerates Fig. 10a–d (FIFO mirror of Fig. 6).
func BenchmarkFig10_AvgSigmaFIFO(b *testing.B) { runPanels(b, "f10a", "f10b", "f10c", "f10d") }

// BenchmarkFig11_CmsFIFO regenerates Fig. 11a–d (FIFO mirror of Fig. 7).
func BenchmarkFig11_CmsFIFO(b *testing.B) { runPanels(b, "f11a", "f11b", "f11c", "f11d") }

// BenchmarkFig12_CpsFIFO regenerates Fig. 12a–f (FIFO mirror of Fig. 8).
func BenchmarkFig12_CpsFIFO(b *testing.B) {
	runPanels(b, "f12a", "f12b", "f12c", "f12d", "f12e", "f12f")
}

// BenchmarkFig13_UserSplitAvgSigmaEDF regenerates Fig. 13a–d.
func BenchmarkFig13_UserSplitAvgSigmaEDF(b *testing.B) {
	runPanels(b, "f13a", "f13b", "f13c", "f13d")
}

// BenchmarkFig14_UserSplitCpsEDF regenerates Fig. 14a–h (Cps sweep plus
// DCRatio ∈ {3,10}).
func BenchmarkFig14_UserSplitCpsEDF(b *testing.B) {
	runPanels(b, "f14a", "f14b", "f14c", "f14d", "f14e", "f14f", "f14g", "f14h")
}

// BenchmarkFig15_UserSplitAvgSigmaFIFO regenerates Fig. 15a–d.
func BenchmarkFig15_UserSplitAvgSigmaFIFO(b *testing.B) {
	runPanels(b, "f15a", "f15b", "f15c", "f15d")
}

// BenchmarkFig16_UserSplitCpsFIFO regenerates Fig. 16a–h.
func BenchmarkFig16_UserSplitCpsFIFO(b *testing.B) {
	runPanels(b, "f16a", "f16b", "f16c", "f16d", "f16e", "f16f", "f16g", "f16h")
}

// BenchmarkAgg330_WinRate reproduces the Sec. 5.2 aggregate statistic: the
// fraction of DLT-vs-UserSplit configurations each side wins and the
// winners' reject-ratio gains.
func BenchmarkAgg330_WinRate(b *testing.B) {
	ids := []string{
		"f05a", "f05b",
		"f13a", "f13b", "f13c", "f13d",
		"f14a", "f14b", "f14c", "f14d", "f14e", "f14f", "f14g", "f14h",
		"f15a", "f15b", "f15c", "f15d",
		"f16a", "f16b", "f16c", "f16d", "f16e", "f16f", "f16g", "f16h",
	}
	panels := make([]experiments.Panel, 0, len(ids))
	for _, id := range ids {
		p, _ := experiments.PanelByID(id)
		panels = append(panels, p)
	}
	var usWinPct, dltAvgGain, usAvgGain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunAll(panels, benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		edf, err := experiments.Compare(rs, "EDF-DLT", "EDF-UserSplit")
		if err != nil {
			b.Fatal(err)
		}
		fifo, err := experiments.Compare(rs, "FIFO-DLT", "FIFO-UserSplit")
		if err != nil {
			b.Fatal(err)
		}
		cells := edf.Cells + fifo.Cells
		usWinPct = 100 * float64(edf.BWins+fifo.BWins) / float64(cells)
		dltAvgGain = (edf.AvgGainA*float64(edf.AWins) + fifo.AvgGainA*float64(fifo.AWins)) /
			float64(max(1, edf.AWins+fifo.AWins))
		usAvgGain = (edf.AvgGainB*float64(edf.BWins) + fifo.AvgGainB*float64(fifo.BWins)) /
			float64(max(1, edf.BWins+fifo.BWins))
	}
	b.StopTimer()
	b.ReportMetric(usWinPct, "usersplit_win_%")
	b.ReportMetric(dltAvgGain, "dlt_avg_gain")
	b.ReportMetric(usAvgGain, "usersplit_avg_gain")
}

// BenchmarkExtraN_ClusterSize covers the paper's unshown N sweep ("results
// are similar"): N ∈ {8, 32, 64}.
func BenchmarkExtraN_ClusterSize(b *testing.B) { runPanels(b, "xNa", "xNb", "xNc") }

// --- Service hot path ---------------------------------------------------

// BenchmarkServiceSubmit measures the admission-control hot path of the
// long-lived service: one Submit — auto-commit of due transmissions plus
// the full Fig. 2 schedulability test — at ≈100% offered load, so the
// waiting queue stays realistically busy and both accept and reject paths
// are exercised.
func BenchmarkServiceSubmit(b *testing.B) {
	clock := rtdls.NewManualClock(0)
	svc, err := rtdls.New(rtdls.WithClock(clock))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	accepts := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(2600) // ≈ E(200,16): one mean task per mean service time
		dec, err := svc.Submit(ctx, rtdls.Task{
			ID:          int64(i + 1),
			Sigma:       150 + float64(i%8)*12.5,
			RelDeadline: 5200,
		})
		if err != nil {
			b.Fatal(err)
		}
		if dec.Accepted {
			accepts++
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(accepts)/float64(b.N), "accept_ratio")
	}
}

// TestServiceSubmitAllocs pins BenchmarkServiceSubmit's allocation budget:
// the exact benchmark workload (accept-heavy, one mean task per mean
// service time) must stay within the measured allocs/op plus slack. The
// accepted Decision's three slices are backed by two allocations (one
// float64 slab for Starts+Alphas, one []int); losing that packing — or any
// other per-submit allocation creep — fails here before it shows up as a
// benchmark regression.
func TestServiceSubmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; the budget holds only on production builds")
	}
	clock := rtdls.NewManualClock(0)
	svc, err := rtdls.New(rtdls.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	var id int64
	allocs := testing.AllocsPerRun(500, func() {
		id++
		clock.Advance(2600)
		dec, err := svc.Submit(ctx, rtdls.Task{
			ID:          id,
			Sigma:       150 + float64(id%8)*12.5,
			RelDeadline: 5200,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Accepted {
			t.Fatalf("task %d rejected; the workload is tuned to accept", id)
		}
	})
	// Measured 22 allocs/op on the accept path (plan slices, decision slab,
	// queue bookkeeping); 24 leaves noise headroom while still catching a
	// single systematic extra allocation per submit.
	if allocs > 24 {
		t.Fatalf("Submit allocates %.1f times per accepted task, want <= 24", allocs)
	}
}

// BenchmarkServiceSubmitParallel drives the same service from GOMAXPROCS
// goroutines, measuring contention on the single admission lock.
func BenchmarkServiceSubmitParallel(b *testing.B) {
	clock := rtdls.NewManualClock(0)
	svc, err := rtdls.New(rtdls.WithClock(clock))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			n := id.Add(1)
			clock.Advance(2600)
			if _, err := svc.Submit(ctx, rtdls.Task{
				ID:          n,
				Sigma:       150 + float64(n%8)*12.5,
				RelDeadline: 5200,
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServiceSubmitHopeless measures the reject fast path end to
// end: every submission's deadline is below its bare transmission time,
// so admission resolves at the scheduler's infeasibility fast-reject —
// one order-statistic probe of the availability index — without replanning
// the waiting queue. This is the service-level cost of shedding hopeless
// load during an overload spike.
func BenchmarkServiceSubmitHopeless(b *testing.B) {
	clock := rtdls.NewManualClock(0)
	svc, err := rtdls.New(rtdls.WithClock(clock))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(100)
		dec, err := svc.Submit(ctx, rtdls.Task{
			ID:          int64(i + 1),
			Sigma:       5000,
			RelDeadline: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if dec.Accepted {
			b.Fatal("hopeless task admitted")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md §4) -------------

// BenchmarkAblationRounds sweeps the multi-round extension's installment
// count (paper Sec. 6 future work): EDF-DLT vs MR2/MR4/MR8.
func BenchmarkAblationRounds(b *testing.B) { runPanels(b, "xMR") }

// BenchmarkAblationAllNodes contrasts OPR-AN (all N nodes, no IITs by
// construction) with OPR-MN and DLT — why the paper excludes AN despite
// its reject ratio.
func BenchmarkAblationAllNodes(b *testing.B) { runPanels(b, "xAN") }

// BenchmarkAblationPolicy isolates the scheduling-policy decision: the
// same DLT partitioner under EDF vs FIFO (compare the f03 vs f09-family
// metrics emitted by the two panels).
func BenchmarkAblationPolicy(b *testing.B) {
	p1, _ := experiments.PanelByID("f03")
	p2 := p1
	p2.ID = "f03-fifo"
	p2.Algs = []experiments.Algorithm{experiments.FIFODLT, experiments.FIFOOPRMN}
	var last []*experiments.PanelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunAll([]experiments.Panel{p1, p2}, benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rs
	}
	b.StopTimer()
	for _, r := range last {
		sum := 0.0
		for _, c := range r.Cells {
			sum += c.RejectRatio[0].Mean
		}
		b.ReportMetric(sum/float64(len(r.Cells)), sanitize(r.Panel.Algs[0].Name)+"_rr")
	}
}
