// Command analyze explores the paper's mathematics directly, without a
// full simulation: the E−Ê savings surface of the heterogeneous model
// (what utilising IITs is worth as a function of the availability gap) and
// the tightness of the ñ_min node-count bound.
//
// Example:
//
//	analyze -sigma 200 -early 6 -late 10 -gaps 0,250,500,1000,2000,4000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtdls/internal/analysis"
	"rtdls/internal/dlt"
)

func main() {
	var (
		cms   = flag.Float64("cms", 1, "unit transmission cost")
		cps   = flag.Float64("cps", 100, "unit processing cost")
		sigma = flag.Float64("sigma", 200, "task data size σ")
		early = flag.Int("early", 6, "nodes available immediately")
		late  = flag.Int("late", 10, "nodes available after the gap")
		gaps  = flag.String("gaps", "0,250,500,1000,2000,4000", "comma-separated gap lengths")
	)
	flag.Parse()

	p := dlt.Params{Cms: *cms, Cps: *cps}
	var gs []float64
	for _, f := range strings.Split(*gaps, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: bad gap %q: %v\n", f, err)
			os.Exit(1)
		}
		gs = append(gs, v)
	}

	rows, err := analysis.GapSweep(p, *sigma, *early, *late, gs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Printf("IIT savings surface — σ=%g, %d nodes at t=0, %d at t=gap (Cms=%g, Cps=%g)\n\n",
		*sigma, *early, *late, *cms, *cps)
	fmt.Print(analysis.FormatSavingsTable(gs, rows))

	fmt.Println()
	fmt.Println("ñ_min bound tightness (idle floor at 0, deadline sweep):")
	fmt.Printf("%-12s %8s %8s\n", "deadline", "ñ_min", "true n")
	n := *early + *late
	for _, dm := range []float64{1.2, 1.5, 2, 3, 5, 10} {
		absD := dm * p.ExecTime(*sigma, n)
		avail := make([]float64, n)
		for i := *early; i < n; i++ {
			avail[i] = gs[len(gs)-1] / 2
		}
		tt := analysis.BoundTightness(p, *sigma, absD, 0, avail)
		if !tt.Ok {
			fmt.Printf("%-12.4g %8s %8s\n", absD, "—", "—")
			continue
		}
		fmt.Printf("%-12.4g %8d %8d\n", absD, tt.Bound, tt.True)
	}
	fmt.Println("\n(ñ_min evaluated with the slack at t — it can under-provide when nodes are")
	fmt.Println("busy, which the scheduler's expansion rule compensates; it never over-provides,")
	fmt.Println("because the IIT saving E−Ê is always smaller than the wait r_n producing it.)")
}
