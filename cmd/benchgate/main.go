// Command benchgate enforces the admission index's scaling contract from
// a `go test -json` benchmark stream (BENCH_index.json in CI). For every
// benchmark family carrying nodes=<n> subtests it compares ns/op at the
// largest fleet against the smallest and fails when the growth exceeds
// -max-ratio. Gating on the growth ratio rather than absolute ns keeps the
// check machine-independent: a per-submit cost linear in the fleet would
// grow ~100x over the nodes=100 → nodes=10000 sweep, while the indexed
// hot path stays flat up to a logarithmic factor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json record shape benchgate reads.
// Package matters because test2json splits a benchmark result across
// output events — the name flushes before the timing continuation — so
// fragments must be reassembled into lines per package.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line inside an output event, e.g.
// "BenchmarkSubmit/nodes=10000-8     28905     3913 ns/op    841 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark[^\s/]+)/nodes=(\d+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	in := flag.String("in", "BENCH_index.json", "go test -json benchmark stream to gate")
	maxRatio := flag.Float64("max-ratio", 15, "max allowed ns/op growth, largest vs smallest fleet")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	// ns[family][fleet size] = best observed ns/op. Taking the minimum over
	// repeated runs filters scheduling noise without hiding real growth.
	ns := make(map[string]map[int]float64)
	pending := make(map[string]string) // per-package unterminated output
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Action != "output" {
			continue
		}
		buf := pending[ev.Package] + ev.Output
		for {
			i := strings.IndexByte(buf, '\n')
			if i < 0 {
				break
			}
			record(ns, buf[:i])
			buf = buf[i+1:]
		}
		pending[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	for _, rest := range pending {
		record(ns, rest)
	}
	if len(ns) == 0 {
		fatalf("no nodes=<n> benchmark results in %s", *in)
	}

	families := make([]string, 0, len(ns))
	for fam := range ns {
		families = append(families, fam)
	}
	sort.Strings(families)
	failed := false
	for _, fam := range families {
		sizes := make([]int, 0, len(ns[fam]))
		for n := range ns[fam] {
			sizes = append(sizes, n)
		}
		sort.Ints(sizes)
		if len(sizes) < 2 {
			fatalf("%s: only fleet size %d present, nothing to compare", fam, sizes[0])
		}
		lo, hi := sizes[0], sizes[len(sizes)-1]
		ratio := ns[fam][hi] / ns[fam][lo]
		verdict := "ok"
		if ratio > *maxRatio {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s nodes=%d %.1f ns/op -> nodes=%d %.1f ns/op: x%.2f growth over x%d fleet (limit x%.1f) %s\n",
			fam, lo, ns[fam][lo], hi, ns[fam][hi], ratio, hi/lo, *maxRatio, verdict)
	}
	if failed {
		fatalf("per-submit cost grows super-linearly with the fleet")
	}
}

// record matches one reassembled output line and folds its ns/op into the
// per-family minimum.
func record(ns map[string]map[int]float64, line string) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return
	}
	nodes, err := strconv.Atoi(m[2])
	if err != nil {
		return
	}
	v, err := strconv.ParseFloat(m[3], 64)
	if err != nil {
		return
	}
	if ns[m[1]] == nil {
		ns[m[1]] = make(map[int]float64)
	}
	if cur, ok := ns[m[1]][nodes]; !ok || v < cur {
		ns[m[1]][nodes] = v
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
