// Command benchgate enforces benchmark contracts from `go test -json`
// benchmark streams produced in CI.
//
// Default mode gates the admission index's scaling contract
// (BENCH_index.json): for every benchmark family carrying nodes=<n>
// subtests it compares ns/op at the largest fleet against the smallest and
// fails when the growth exceeds -max-ratio. Gating on the growth ratio
// rather than absolute ns keeps the check machine-independent: a per-submit
// cost linear in the fleet would grow ~100x over the nodes=100 →
// nodes=10000 sweep, while the indexed hot path stays flat up to a
// logarithmic factor.
//
// -contention mode gates the optimistic-admission contract
// (BENCH_contention.json) from BenchmarkSubmitContention/mix=<m>/mode=<m>/
// gos=<n> results. Both gates are machine-adaptive via the GOMAXPROCS
// suffix Go appends to benchmark names (absent suffix = 1 proc), because
// the contract's premise is real parallelism: on a single proc submitters
// never overlap, so speculation can neither scale (cold) nor conflict
// (hot), and both gates are skipped with a note rather than measured
// against a premise the machine cannot exhibit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json record shape benchgate reads.
// Package matters because test2json splits a benchmark result across
// output events — the name flushes before the timing continuation — so
// fragments must be reassembled into lines per package.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches an index benchmark result line, e.g.
// "BenchmarkSubmit/nodes=10000-8     28905     3913 ns/op    841 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark[^\s/]+)/nodes=(\d+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// contLine matches a contention benchmark result line, e.g.
// "BenchmarkSubmitContention/mix=hot/mode=spec/gos=8-16   300   3913 ns/op".
var contLine = regexp.MustCompile(`^BenchmarkSubmitContention/mix=(\w+)/mode=(\w+)/gos=(\d+)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	in := flag.String("in", "BENCH_index.json", "go test -json benchmark stream to gate")
	maxRatio := flag.Float64("max-ratio", 15, "max allowed ns/op growth, largest vs smallest fleet")
	contention := flag.Bool("contention", false, "gate BenchmarkSubmitContention results instead of the nodes=<n> index families")
	coldScalePerProc := flag.Float64("cold-scale-per-proc", 0.45, "required cold-mix throughput scaling at gos=8 vs gos=1, per usable proc")
	coldScaleCap := flag.Float64("cold-scale-cap", 2.0, "cap on the required cold-mix scaling")
	hotFloor := flag.Float64("hot-floor", 0.9, "min allowed spec/serial throughput ratio on the 100%-conflict mix")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	var lines []string
	pending := make(map[string]string) // per-package unterminated output
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Action != "output" {
			continue
		}
		buf := pending[ev.Package] + ev.Output
		for {
			i := strings.IndexByte(buf, '\n')
			if i < 0 {
				break
			}
			lines = append(lines, buf[:i])
			buf = buf[i+1:]
		}
		pending[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	for _, rest := range pending {
		if rest != "" {
			lines = append(lines, rest)
		}
	}

	if *contention {
		gateContention(lines, *in, *coldScalePerProc, *coldScaleCap, *hotFloor)
		return
	}
	gateIndex(lines, *in, *maxRatio)
}

// gateIndex fails when any nodes=<n> family's ns/op grows by more than
// maxRatio from the smallest fleet to the largest.
func gateIndex(lines []string, in string, maxRatio float64) {
	// ns[family][fleet size] = best observed ns/op. Taking the minimum over
	// repeated runs filters scheduling noise without hiding real growth.
	ns := make(map[string]map[int]float64)
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		nodes, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		if ns[m[1]] == nil {
			ns[m[1]] = make(map[int]float64)
		}
		if cur, ok := ns[m[1]][nodes]; !ok || v < cur {
			ns[m[1]][nodes] = v
		}
	}
	if len(ns) == 0 {
		fatalf("no nodes=<n> benchmark results in %s", in)
	}

	families := make([]string, 0, len(ns))
	for fam := range ns {
		families = append(families, fam)
	}
	sort.Strings(families)
	failed := false
	for _, fam := range families {
		sizes := make([]int, 0, len(ns[fam]))
		for n := range ns[fam] {
			sizes = append(sizes, n)
		}
		sort.Ints(sizes)
		if len(sizes) < 2 {
			fatalf("%s: only fleet size %d present, nothing to compare", fam, sizes[0])
		}
		lo, hi := sizes[0], sizes[len(sizes)-1]
		ratio := ns[fam][hi] / ns[fam][lo]
		verdict := "ok"
		if ratio > maxRatio {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s nodes=%d %.1f ns/op -> nodes=%d %.1f ns/op: x%.2f growth over x%d fleet (limit x%.1f) %s\n",
			fam, lo, ns[fam][lo], hi, ns[fam][hi], ratio, hi/lo, maxRatio, verdict)
	}
	if failed {
		fatalf("per-submit cost grows super-linearly with the fleet")
	}
}

// gateContention enforces the two optimistic-admission contracts:
//
//   - cold (low-conflict) mix: the speculative path at gos=8 must deliver at
//     least min(coldScaleCap, coldScalePerProc·min(procs, 8))× the gos=1
//     throughput. The per-proc slope discounts the ideal 8× for lock-window
//     serialization and scheduler noise; the requirement caps at
//     coldScaleCap× on big machines and is skipped when the stream was
//     produced with too few procs for any scaling to be possible.
//
//   - hot (100%-conflict) mix: at every contended width (gos ≥ 4) the
//     speculative path must retain at least hotFloor of the serialized
//     throughput, i.e. the adaptive conflict gate must actually degenerate
//     to near-serialized admission instead of burning planning work that
//     always loses the install race. Skipped on single-proc streams, where
//     submitters never overlap and so no conflict ever occurs to trigger
//     the gate.
func gateContention(lines []string, in string, coldScalePerProc, coldScaleCap, hotFloor float64) {
	// ns[mix][mode][gos] = best observed ns/op.
	ns := map[string]map[string]map[int]float64{}
	procs := 1
	for _, line := range lines {
		m := contLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		gos, err := strconv.Atoi(m[3])
		if err != nil {
			continue
		}
		if m[4] != "" {
			if p, err := strconv.Atoi(m[4]); err == nil && p > procs {
				procs = p
			}
		}
		v, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			continue
		}
		if ns[m[1]] == nil {
			ns[m[1]] = map[string]map[int]float64{}
		}
		if ns[m[1]][m[2]] == nil {
			ns[m[1]][m[2]] = map[int]float64{}
		}
		if cur, ok := ns[m[1]][m[2]][gos]; !ok || v < cur {
			ns[m[1]][m[2]][gos] = v
		}
	}
	if len(ns) == 0 {
		fatalf("no BenchmarkSubmitContention results in %s", in)
	}

	failed := false

	// Cold-mix scaling gate.
	required := coldScalePerProc * float64(min(procs, 8))
	if required > coldScaleCap {
		required = coldScaleCap
	}
	cold := ns["cold"]["spec"]
	switch {
	case required < 1:
		fmt.Printf("benchgate: cold mix: %d proc(s) cannot exhibit parallel speedup, scaling gate skipped\n", procs)
	case cold[1] == 0 || cold[8] == 0:
		fatalf("cold mix: missing mode=spec gos=1 or gos=8 result in %s", in)
	default:
		scaling := cold[1] / cold[8]
		verdict := "ok"
		if scaling < required {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: cold mix gos=1 %.1f ns/op -> gos=8 %.1f ns/op: x%.2f throughput scaling on %d procs (need x%.2f) %s\n",
			cold[1], cold[8], scaling, procs, required, verdict)
	}

	// Hot-mix overhead gate.
	if procs < 2 {
		fmt.Printf("benchgate: hot mix: submitters cannot overlap on %d proc(s), no conflicts occur, overhead gate skipped\n", procs)
	} else {
		gated := 0
		var widths []int
		for gos := range ns["hot"]["spec"] {
			widths = append(widths, gos)
		}
		sort.Ints(widths)
		for _, gos := range widths {
			if gos < 4 {
				continue // uncontended widths: conflicts too rare to engage the gate
			}
			serial, ok := ns["hot"]["serial"][gos]
			if !ok {
				continue
			}
			gated++
			ratio := serial / ns["hot"]["spec"][gos] // spec/serial throughput
			verdict := "ok"
			if ratio < hotFloor {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("benchgate: hot mix gos=%d spec %.1f ns/op vs serial %.1f ns/op: x%.2f of serialized throughput (floor x%.2f) %s\n",
				gos, ns["hot"]["spec"][gos], serial, ratio, hotFloor, verdict)
		}
		if gated == 0 {
			fatalf("hot mix: no gos>=4 spec/serial pairs in %s", in)
		}
	}

	if failed {
		fatalf("optimistic admission breaks its contention contract")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
