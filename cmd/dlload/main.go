// Command dlload drives a running dlserve with closed-loop or open-loop
// traffic and reports wire-level admission latency and outcome ratios.
//
// Closed loop — 64 workers submitting back to back until 50k requests:
//
//	dlload -url http://127.0.0.1:8080 -mode closed -workers 64 -n 50000
//
// Open loop — Poisson arrivals at 2000 req/s, or the same rate in bursts
// of 50, measuring latency from each intended arrival instant:
//
//	dlload -mode open -rate 2000 -n 20000
//	dlload -mode open -rate 2000 -burst 50 -n 20000
//
// Replay an explicit schedule (one offset-in-seconds per line):
//
//	dlload -mode open -replay arrivals.txt
//
// Chaos testing — drive node churn against the server while the traffic
// runs (the ops are POSTed to the fleet admin API at wall offsets from
// the run start, and the displacement/re-admission outcome lands in the
// report):
//
//	dlload -mode open -rate 2000 -n 20000 -churn "t=2s fail n3; t=6s restore n3"
//
// The run writes an HDR-style latency/outcome report (BENCH_wire.json by
// default) and can gate CI: -max-p99 fails the run when the p99 admission
// latency exceeds the bound, -fail-on-5xx when any hard server error was
// seen, -require-retry-after when a busy rejection arrived without a
// usable Retry-After hint, and -fail-on-churn-errors when any churn op
// was refused by the server.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rtdls/internal/fleet"
	"rtdls/internal/load"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "dlserve base URL")
		mode    = flag.String("mode", "closed", "traffic mode: closed or open")
		workers = flag.Int("workers", 16, "closed-loop concurrency / open-loop in-flight cap")
		n       = flag.Int("n", 10000, "total submissions")
		rate    = flag.Float64("rate", 1000, "open-loop mean arrival rate (req/s)")
		burst   = flag.Int("burst", 1, "open-loop burst size (1 = Poisson)")
		replay  = flag.String("replay", "", "open-loop schedule file: one offset-seconds per line")
		sigma   = flag.Float64("sigma", 200, "task data size σ (simulation units)")
		spread  = flag.Float64("sigma-spread", 1, "draw σ uniformly from [σ/spread, σ·spread]")
		dl      = flag.Float64("deadline", 20000, "relative deadline D (simulation units)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		out     = flag.String("out", "BENCH_wire.json", "report output path (empty = stdout only)")

		churn = flag.String("churn", "", "node churn schedule POSTed to the server at wall offsets from the run start, e.g. \"t=2s fail n3; t=6s restore n3\"")

		maxP99       = flag.Float64("max-p99", 0, "fail when p99 latency exceeds this many ms (0 = off)")
		failOn5xx    = flag.Bool("fail-on-5xx", false, "fail when any hard 5xx (≠503) was received")
		requireRetry = flag.Bool("require-retry-after", false, "fail when a busy rejection lacked Retry-After")
		failOnChurn  = flag.Bool("fail-on-churn-errors", false, "fail when any churn op was refused by the server")
	)
	flag.Parse()

	opts := load.Options{
		URL:         strings.TrimRight(*url, "/"),
		Mode:        *mode,
		Workers:     *workers,
		N:           *n,
		Rate:        *rate,
		Burst:       *burst,
		Sigma:       *sigma,
		SigmaSpread: *spread,
		Deadline:    *dl,
		Seed:        *seed,
		Timeout:     *timeout,
	}
	if *replay != "" {
		offs, err := readSchedule(*replay)
		if err != nil {
			fatal(err)
		}
		opts.Replay = offs
		opts.Mode = "open"
	}
	if *churn != "" {
		sch, err := fleet.ParseSchedule(*churn)
		if err != nil {
			fatal(err)
		}
		opts.Churn = sch
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	rep, err := load.Run(ctx, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dlload: %d requests in %.2fs (%.0f req/s)\n",
		rep.Requests, rep.DurationSeconds, rep.ThroughputPerSec)
	fmt.Printf("dlload: accepted=%d (%.1f%%) infeasible=%d deadline=%d busy=%d bad=%d 503=%d 5xx=%d transport=%d\n",
		rep.Accepted, 100*rep.AcceptRatio(), rep.RejectedInfeasible, rep.RejectedDeadline,
		rep.RejectedBusy, rep.BadRequest, rep.Unavailable, rep.HTTP5xx, rep.TransportErrors)
	fmt.Printf("dlload: latency ms p50=%.3f p90=%.3f p99=%.3f p999=%.3f mean=%.3f max=%.3f\n",
		rep.Latency.P50Ms, rep.Latency.P90Ms, rep.Latency.P99Ms,
		rep.Latency.P999Ms, rep.Latency.MeanMs, rep.Latency.MaxMs)
	if rep.Churn != nil {
		fmt.Printf("dlload: churn applied=%d failed=%d displaced=%d readmitted=%d\n",
			rep.Churn.Applied, rep.Churn.Failed, rep.Churn.Displaced, rep.Churn.Readmitted)
	}

	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fatal(err)
		}
		fmt.Println("dlload: report written to", *out)
	}

	failed := false
	if *maxP99 > 0 && rep.Latency.P99Ms > *maxP99 {
		fmt.Fprintf(os.Stderr, "dlload: FAIL: p99 %.3f ms exceeds bound %.3f ms\n", rep.Latency.P99Ms, *maxP99)
		failed = true
	}
	if *failOn5xx && rep.HTTP5xx > 0 {
		fmt.Fprintf(os.Stderr, "dlload: FAIL: %d hard 5xx responses\n", rep.HTTP5xx)
		failed = true
	}
	if *requireRetry && !rep.RetryAfter.Compliant {
		fmt.Fprintf(os.Stderr, "dlload: FAIL: %d backpressure responses lacked Retry-After\n", rep.RetryAfter.Missing)
		failed = true
	}
	if *failOnChurn && rep.Churn != nil && rep.Churn.Failed > 0 {
		fmt.Fprintf(os.Stderr, "dlload: FAIL: %d churn ops refused by the server\n", rep.Churn.Failed)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// readSchedule loads one arrival offset (seconds) per line; blank lines
// and #-comments are skipped.
func readSchedule(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var offs []float64
	sc := bufio.NewScanner(f)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("dlload: %s:%d: bad offset %q", path, ln, line)
		}
		offs = append(offs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(offs) == 0 {
		return nil, fmt.Errorf("dlload: %s: empty schedule", path)
	}
	return offs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlload:", err)
	os.Exit(1)
}
