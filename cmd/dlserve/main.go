// Command dlserve puts the admission-control engine on the wire: an
// HTTP/JSON server fronting a single cluster or a sharded pool, with the
// schedulability test of Lin et al. behind POST /v1/submit.
//
// A 16-node cluster at 100k simulation units per wall second:
//
//	dlserve -addr :8080 -n 16 -scale 100000
//
// A sharded fleet of four 8-node clusters with spillover placement and a
// bounded queue (full queue → 429 + Retry-After):
//
//	dlserve -addr :8080 -n 8 -shards 4 -placement spillover -max-queue 64
//
// Fleet operations: POST /v1/nodes/{id}/{drain|fail|restore} changes one
// node's lifecycle state at runtime (displaced tasks are re-admitted
// through the normal schedulability test), and -churn scripts the same
// operations at wall-clock offsets from startup:
//
//	dlserve -addr :8080 -n 16 -churn "t=5s fail n3; t=12s restore n3"
//
// Observability: GET /metrics serves the Prometheus text exposition
// (per-stage admission latency, per-shard outcomes, HTTP metrics);
// -pprof-addr serves net/http/pprof on a separate listener; -log-level
// and -log-format select structured (slog) request logging.
// -mutex-profile-fraction and -block-profile-rate switch on the runtime's
// lock-contention and blocking profiles, served as /debug/pprof/mutex and
// /debug/pprof/block on the -pprof-addr listener — the direct way to see
// how much of the admission path still waits on the shard lock now that
// planning runs speculatively outside it.
//
// SIGTERM or SIGINT triggers a graceful drain: new submissions are
// refused with 503 + Retry-After, every committed plan is flushed, event
// streams receive a final "end" event, and the final stats snapshot is
// printed (and, with -final-stats / -final-metrics, written out) before
// exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rtdls"
	"rtdls/internal/fleet"
	"rtdls/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		n         = flag.Int("n", 16, "processing nodes per cluster")
		cms       = flag.Float64("cms", 1, "unit data transmission cost Cms")
		cps       = flag.Float64("cps", 100, "unit data processing cost Cps")
		policy    = flag.String("policy", "edf", "scheduling policy: edf or fifo")
		alg       = flag.String("alg", rtdls.AlgDLTIIT, fmt.Sprintf("algorithm: one of %v", rtdls.Algorithms()))
		rounds    = flag.Int("rounds", 2, "installments per node for -alg dlt-mr")
		maxQueue  = flag.Int("max-queue", 0, "waiting-queue bound per shard; 0 = unbounded (full queue rejects 429)")
		shards    = flag.Int("shards", 0, "split the fleet into K clusters of -n nodes (0 = single cluster)")
		placement = flag.String("placement", "round-robin", fmt.Sprintf("shard routing policy: one of %v", rtdls.Placements()))
		seed      = flag.Uint64("seed", 1, "seed for seeded placements")
		scale     = flag.Float64("scale", 1000, "simulation time units per wall second")
		maxRetry  = flag.Float64("max-retry-after", 60, "cap on the advertised Retry-After (seconds)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
		stats     = flag.String("final-stats", "", "write the final /v1/stats snapshot to this file on shutdown")
		metricsF  = flag.String("final-metrics", "", "write the final /metrics exposition to this file on shutdown")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		mutexFrac = flag.Int("mutex-profile-fraction", 0, "runtime mutex profile sampling: 1 in N contended lock events (0 = off); served at /debug/pprof/mutex on -pprof-addr")
		blockRate = flag.Int("block-profile-rate", 0, "runtime block profile sampling: one event per N ns blocked (0 = off); served at /debug/pprof/block on -pprof-addr")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
		churn     = flag.String("churn", "", "node churn schedule applied in-process at wall offsets from startup, e.g. \"t=5s fail n3; t=12s restore n3\"")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}

	if err := run(*addr, *n, *cms, *cps, *policy, *alg, *rounds, *maxQueue,
		*shards, *placement, *seed, *scale, *maxRetry, *drainWait,
		*stats, *metricsF, *pprofAddr, *mutexFrac, *blockRate,
		logger, *quiet, *churn); err != nil {
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}
}

// buildLogger assembles the slog logger the -log-level/-log-format flags
// describe.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func run(addr string, n int, cms, cps float64, policyName, alg string, rounds, maxQueue,
	shards int, placementName string, seed uint64, scale, maxRetry float64,
	drainWait time.Duration, statsPath, metricsPath, pprofAddr string,
	mutexFrac, blockRate int, logger *slog.Logger, quiet bool, churnSpec string) error {

	pol, err := rtdls.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	churnSched, err := fleet.ParseSchedule(churnSpec)
	if err != nil {
		return err
	}
	reg := rtdls.NewMetricsRegistry()
	opts := []rtdls.Option{
		rtdls.WithNodes(n),
		rtdls.WithParams(rtdls.Params{Cms: cms, Cps: cps}),
		rtdls.WithPolicy(pol),
		rtdls.WithAlgorithm(alg),
		rtdls.WithRounds(rounds),
		rtdls.WithMaxQueue(maxQueue),
		rtdls.WithClock(rtdls.NewWallClock(scale)),
		rtdls.WithMetrics(reg),
	}
	if shards > 0 {
		pl, err := rtdls.ParsePlacement(placementName, seed)
		if err != nil {
			return err
		}
		opts = append(opts, rtdls.WithShards(shards), rtdls.WithPlacement(pl))
	}
	eng, err := rtdls.New(opts...)
	if err != nil {
		return err
	}

	reqLogger := logger
	if quiet {
		reqLogger = nil
	}
	srv, err := server.New(server.Config{
		Engine:        eng,
		Scale:         scale,
		MaxRetryAfter: maxRetry,
		Version:       rtdls.Version,
		Logger:        reqLogger,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}

	if mutexFrac > 0 {
		runtime.SetMutexProfileFraction(mutexFrac)
		logger.Info("mutex profiling on", slog.Int("fraction", mutexFrac))
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
		logger.Info("block profiling on", slog.Int("rate_ns", blockRate))
	}
	if (mutexFrac > 0 || blockRate > 0) && pprofAddr == "" {
		logger.Warn("contention profiling enabled but -pprof-addr is empty; profiles are being collected with nowhere to serve them")
	}
	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		go func() {
			// The pprof import registered its handlers on DefaultServeMux;
			// serving it on a separate listener keeps profiling off the
			// public port.
			if err := http.Serve(pln, nil); err != nil {
				logger.Warn("pprof server stopped", slog.Any("err", err))
			}
		}()
		logger.Info("pprof listening", slog.String("addr", pln.Addr().String()))
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("listening", slog.String("addr", ln.Addr().String()),
		slog.Int("nodes", n), slog.Int("shards", shards), slog.Float64("scale", scale))

	// The churn schedule runs in-process against the engine at wall-clock
	// offsets from startup; it stops when the server begins draining.
	churnDone := make(chan struct{})
	defer close(churnDone)
	if len(churnSched) > 0 {
		go func() {
			err := fleet.Run(churnDone, churnSched, func(op fleet.Op) error {
				res, err := fleet.Apply(eng, op)
				if err != nil {
					return err
				}
				logger.Info("churn", slog.String("op", op.String()),
					slog.Int("displaced", res.Displaced), slog.Int("readmitted", res.Readmitted))
				return nil
			})
			if err != nil {
				logger.Error("churn schedule aborted", slog.Any("err", err))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Info("draining", slog.String("signal", s.String()))
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		logger.Error("drain", slog.Any("err", err))
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", slog.Any("err", err))
	}

	final := eng.Stats()
	total, fivexx := srv.Requests()
	logger.Info("final stats",
		slog.Int("arrivals", final.Arrivals), slog.Int("accepts", final.Accepts),
		slog.Int("rejects", final.Rejects), slog.Int("commits", final.Commits),
		slog.Int("displaced", final.Displaced), slog.Int("readmitted", final.Readmitted),
		slog.Int("queue", final.QueueLen), slog.Int64("http", total), slog.Int64("http_5xx", fivexx))
	if statsPath != "" {
		snapshot := struct {
			rtdls.ServiceStats
			HTTPRequests int64 `json:"http_requests"`
			HTTP5xx      int64 `json:"http_5xx"`
		}{final, total, fivexx}
		data, err := json.MarshalIndent(snapshot, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if _, err := reg.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
