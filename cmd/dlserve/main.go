// Command dlserve puts the admission-control engine on the wire: an
// HTTP/JSON server fronting a single cluster or a sharded pool, with the
// schedulability test of Lin et al. behind POST /v1/submit.
//
// A 16-node cluster at 100k simulation units per wall second:
//
//	dlserve -addr :8080 -n 16 -scale 100000
//
// A sharded fleet of four 8-node clusters with spillover placement and a
// bounded queue (full queue → 429 + Retry-After):
//
//	dlserve -addr :8080 -n 8 -shards 4 -placement spillover -max-queue 64
//
// SIGTERM or SIGINT triggers a graceful drain: new submissions are
// refused with 503 + Retry-After, every committed plan is flushed, event
// streams receive a final "end" event, and the final stats snapshot is
// printed (and, with -final-stats, written as JSON) before exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtdls"
	"rtdls/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		n         = flag.Int("n", 16, "processing nodes per cluster")
		cms       = flag.Float64("cms", 1, "unit data transmission cost Cms")
		cps       = flag.Float64("cps", 100, "unit data processing cost Cps")
		policy    = flag.String("policy", "edf", "scheduling policy: edf or fifo")
		alg       = flag.String("alg", rtdls.AlgDLTIIT, fmt.Sprintf("algorithm: one of %v", rtdls.Algorithms()))
		rounds    = flag.Int("rounds", 2, "installments per node for -alg dlt-mr")
		maxQueue  = flag.Int("max-queue", 0, "waiting-queue bound per shard; 0 = unbounded (full queue rejects 429)")
		shards    = flag.Int("shards", 0, "split the fleet into K clusters of -n nodes (0 = single cluster)")
		placement = flag.String("placement", "round-robin", fmt.Sprintf("shard routing policy: one of %v", rtdls.Placements()))
		seed      = flag.Uint64("seed", 1, "seed for seeded placements")
		scale     = flag.Float64("scale", 1000, "simulation time units per wall second")
		maxRetry  = flag.Float64("max-retry-after", 60, "cap on the advertised Retry-After (seconds)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
		stats     = flag.String("final-stats", "", "write the final /v1/stats snapshot to this file on shutdown")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	if err := run(*addr, *n, *cms, *cps, *policy, *alg, *rounds, *maxQueue,
		*shards, *placement, *seed, *scale, *maxRetry, *drainWait, *stats, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}
}

func run(addr string, n int, cms, cps float64, policyName, alg string, rounds, maxQueue,
	shards int, placementName string, seed uint64, scale, maxRetry float64,
	drainWait time.Duration, statsPath string, quiet bool) error {

	pol, err := rtdls.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	opts := []rtdls.Option{
		rtdls.WithNodes(n),
		rtdls.WithParams(rtdls.Params{Cms: cms, Cps: cps}),
		rtdls.WithPolicy(pol),
		rtdls.WithAlgorithm(alg),
		rtdls.WithRounds(rounds),
		rtdls.WithMaxQueue(maxQueue),
		rtdls.WithClock(rtdls.NewWallClock(scale)),
	}
	if shards > 0 {
		pl, err := rtdls.ParsePlacement(placementName, seed)
		if err != nil {
			return err
		}
		opts = append(opts, rtdls.WithShards(shards), rtdls.WithPlacement(pl))
	}
	eng, err := rtdls.New(opts...)
	if err != nil {
		return err
	}

	logf := log.Printf
	if quiet {
		logf = nil
	}
	srv, err := server.New(server.Config{
		Engine:        eng,
		Scale:         scale,
		MaxRetryAfter: maxRetry,
		Version:       rtdls.Version,
		Logf:          logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("dlserve: listening on %s (nodes=%d shards=%d scale=%g)", ln.Addr(), n, shards, scale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("dlserve: %v, draining", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("dlserve: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("dlserve: shutdown: %v", err)
	}

	final := eng.Stats()
	total, fivexx := srv.Requests()
	log.Printf("dlserve: final stats: arrivals=%d accepts=%d rejects=%d commits=%d queue=%d http=%d 5xx=%d",
		final.Arrivals, final.Accepts, final.Rejects, final.Commits, final.QueueLen, total, fivexx)
	if statsPath != "" {
		snapshot := struct {
			rtdls.ServiceStats
			HTTPRequests int64 `json:"http_requests"`
			HTTP5xx      int64 `json:"http_5xx"`
		}{final, total, fivexx}
		data, err := json.MarshalIndent(snapshot, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
