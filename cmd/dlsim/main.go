// Command dlsim runs one real-time divisible load scheduling simulation
// and reports its admission and execution metrics.
//
// Example (the paper's baseline at 70% load under EDF-DLT):
//
//	dlsim -alg dlt-iit -policy edf -load 0.7
//
// Compare against the no-IIT baseline on the identical workload:
//
//	dlsim -alg opr-mn -policy edf -load 0.7
//
// Heterogeneous cluster, either drawn around the reference costs or given
// explicitly per node:
//
//	dlsim -alg dlt-iit -load 0.7 -cps-spread 4
//	dlsim -alg dlt-iit -n 3 -node-costs 1:50,1:100,2:400
//
// Sharded fleet: four independent 8-node clusters behind a placement
// layer, same aggregate offered load:
//
//	dlsim -n 8 -shards 4 -placement spillover -load 0.9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtdls"
)

func main() {
	var (
		n        = flag.Int("n", 16, "number of processing nodes")
		cms      = flag.Float64("cms", 1, "unit data transmission cost Cms")
		cps      = flag.Float64("cps", 100, "unit data processing cost Cps")
		policy   = flag.String("policy", "edf", "scheduling policy: edf or fifo")
		alg      = flag.String("alg", rtdls.AlgDLTIIT, fmt.Sprintf("algorithm: one of %v", rtdls.Algorithms()))
		load     = flag.Float64("load", 0.5, "SystemLoad (arrival rate × E(Avgσ,N))")
		avgSigma = flag.Float64("avgsigma", 200, "mean task data size Avgσ")
		dcRatio  = flag.Float64("dcratio", 2, "mean deadline / mean minimum execution time")
		horizon  = flag.Float64("horizon", 1e7, "arrival window in simulated time units")
		seed     = flag.Uint64("seed", 1, "workload RNG seed")
		rounds   = flag.Int("rounds", 2, "installments per node for -alg dlt-mr")
		traceN   = flag.Int("trace", 0, "print the last N task lifecycle events")
		doVerify = flag.Bool("verify", false, "independently re-check every commit (overlap, Theorem 4, deadlines)")
		ganttT   = flag.Float64("gantt", 0, "render an ASCII node timeline of the first T time units (0 = off)")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")

		cmsSpread = flag.Float64("cms-spread", 0, "per-node Cms spread factor (>1 = heterogeneous cluster)")
		cpsSpread = flag.Float64("cps-spread", 0, "per-node Cps spread factor (>1 = heterogeneous cluster)")
		hetSeed   = flag.Uint64("hetero-seed", 1, "seed for the per-node cost draw")
		nodeCosts = flag.String("node-costs", "", "explicit per-node costs \"cms:cps,cms:cps,…\" (one pair per node, overrides spreads)")

		shards    = flag.Int("shards", 0, "split the fleet into K independent clusters of -n nodes each (0 = single cluster)")
		placement = flag.String("placement", "round-robin", fmt.Sprintf("shard routing policy: one of %v", rtdls.Placements()))

		churn = flag.String("churn", "", "node churn schedule, e.g. \"t=5000 fail n3; t=12000 restore n3\" (offsets in simulated time units; node ids shard-major)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}

	pol, err := rtdls.ParsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	opts := []rtdls.Option{
		rtdls.WithNodes(*n),
		rtdls.WithParams(rtdls.Params{Cms: *cms, Cps: *cps}),
		rtdls.WithPolicy(pol),
		rtdls.WithAlgorithm(*alg),
		rtdls.WithRounds(*rounds),
		rtdls.WithCostSpread(*cmsSpread, *cpsSpread, *hetSeed),
	}
	if *nodeCosts != "" {
		costs, err := parseNodeCosts(*nodeCosts)
		if err != nil {
			fail(err)
		}
		opts = append(opts, rtdls.WithNodeCosts(costs))
	}
	if *shards > 0 {
		if *traceN > 0 || *doVerify || *ganttT > 0 {
			fail(fmt.Errorf("-trace, -verify and -gantt require a single cluster (shard node ids collide); drop -shards"))
		}
		place, err := rtdls.ParsePlacement(*placement, *seed)
		if err != nil {
			fail(err)
		}
		opts = append(opts, rtdls.WithShards(*shards), rtdls.WithPlacement(place))
	}
	if *churn != "" {
		sch, err := rtdls.ParseChurnSchedule(*churn)
		if err != nil {
			fail(err)
		}
		opts = append(opts, rtdls.WithChurn(sch))
	}
	costModel, err := rtdls.CostModelFor(opts...)
	if err != nil {
		fail(err)
	}
	var (
		ring     *rtdls.TraceRing
		verifier *rtdls.Verifier
		timeline *rtdls.GanttCollector
		obs      []rtdls.Observer
	)
	if *traceN > 0 {
		ring = rtdls.NewTraceRing(*traceN)
		obs = append(obs, ring)
	}
	if *doVerify {
		verifier = rtdls.NewVerifierCosts(costModel)
		obs = append(obs, verifier)
	}
	if *ganttT > 0 {
		timeline = rtdls.NewGanttCollector(*n)
		obs = append(obs, timeline)
	}
	if len(obs) > 0 {
		opts = append(opts, rtdls.WithObserver(rtdls.CombineObservers(obs...)))
	}

	res, err := rtdls.Simulate(rtdls.Workload{
		SystemLoad: *load, AvgSigma: *avgSigma, DCRatio: *dcRatio,
		Horizon: *horizon, Seed: *seed,
	}, opts...)
	if err != nil {
		fail(err)
	}

	if *asJSON {
		res.Config.Observer = nil // not serialisable
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("%s-%s  N=%d Cms=%g Cps=%g Avgσ=%g DCRatio=%g load=%.2f seed=%d\n",
		*policy, *alg, *n, *cms, *cps, *avgSigma, *dcRatio, *load, *seed)
	if res.Shards > 1 {
		fmt.Printf("  sharded fleet   %d × %d nodes, placement %s\n", res.Shards, *n, res.Placement)
	}
	if !costModel.Uniform() {
		fmt.Printf("  heterogeneous node costs (cms:cps):")
		for i := 0; i < costModel.N(); i++ {
			c := costModel.At(i)
			fmt.Printf(" %.3g:%.3g", c.Cms, c.Cps)
		}
		fmt.Println()
	}
	fmt.Printf("  arrivals        %d\n", res.Arrivals)
	fmt.Printf("  accepted        %d\n", res.Accepted)
	fmt.Printf("  rejected        %d\n", res.Rejected)
	fmt.Printf("  reject ratio    %.6f\n", res.RejectRatio)
	fmt.Printf("  mean response   %.2f\n", res.MeanResponse)
	fmt.Printf("  mean nodes/task %.2f\n", res.MeanNodes)
	fmt.Printf("  max lateness    %.3g (must be ≤ 0: hard real-time guarantee)\n", res.MaxLateness)
	fmt.Printf("  est. slack      %.2f (Theorem-4 estimate − actual, mean)\n", res.MeanEstSlack)
	fmt.Printf("  utilization     %.4f\n", res.Utilization)
	fmt.Printf("  reserved idle   %.4f (wasted IIT fraction; OPR only)\n", res.ReservedIdleFrac)
	fmt.Printf("  max queue       %d\n", res.MaxQueueLen)
	if *churn != "" {
		fmt.Printf("  displaced       %d (admitted seats lost to node churn)\n", res.Displaced)
		fmt.Printf("  readmitted      %d (displaced tasks re-seated on another shard)\n", res.Readmitted)
		fmt.Printf("  late commits    %d (must be 0: churn displaces, never breaks deadlines)\n", res.LateCommits)
	}
	if res.Shards > 1 {
		fmt.Printf("  spillovers      %d\n", res.Spillovers)
		fmt.Printf("  shard rejects  ")
		for _, rr := range res.ShardRejectRatios {
			fmt.Printf(" %.4f", rr)
		}
		fmt.Println(" (per-shard reject ratio; spillover retries count per shard)")
	}

	if ring != nil {
		fmt.Printf("\nlast %d lifecycle events:\n", len(ring.Records()))
		for _, rec := range ring.Records() {
			fmt.Printf("  t=%-12.2f %-7s task=%-6d σ=%-8.1f absD=%-12.2f nodes=%-3d est=%.2f\n",
				rec.Time, rec.Kind, rec.TaskID, rec.Sigma, rec.Deadline, rec.Nodes, rec.Est)
		}
	}
	if timeline != nil {
		fmt.Println()
		fmt.Print(timeline.Render(0, *ganttT, 100))
	}
	if verifier != nil {
		fmt.Println()
		fmt.Print(verifier.Report())
		if !verifier.OK() {
			os.Exit(2)
		}
	}
}

// parseNodeCosts parses "cms:cps,cms:cps,…" into a per-node cost slice.
func parseNodeCosts(s string) ([]rtdls.NodeCost, error) {
	var out []rtdls.NodeCost
	for i, pair := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("node-costs entry %d: want \"cms:cps\", got %q", i, pair)
		}
		cms, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("node-costs entry %d: bad cms: %v", i, err)
		}
		cps, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("node-costs entry %d: bad cps: %v", i, err)
		}
		out = append(out, rtdls.NodeCost{Cms: cms, Cps: cps})
	}
	return out, nil
}
