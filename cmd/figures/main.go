// Command figures regenerates the paper's evaluation: every figure panel
// (Figures 3–16), the Sec. 5.2 aggregate comparison, the unshown
// cluster-size sweep and the multi-round ablation.
//
// For each panel it writes <id>.csv (spreadsheet form), <id>.dat
// (gnuplot form matching the paper's plots) and <id>.txt (aligned table
// plus an ASCII chart) into the output directory, followed by summary.txt
// with the head-to-head aggregates.
//
// Laptop-scale run (defaults: horizon 2e6, 5 runs/point):
//
//	figures -out results
//
// Paper-scale run (Sec. 5: horizon 1e7, 10 runs/point):
//
//	figures -out results -horizon 1e7 -runs 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rtdls/internal/experiments"
)

func main() {
	var (
		out     = flag.String("out", "results", "output directory")
		horizon = flag.Float64("horizon", 2e6, "arrival window per run (paper: 1e7)")
		runs    = flag.Int("runs", 5, "paired-seed runs per point (paper: 10)")
		seed    = flag.Uint64("seed", 1, "base seed for the whole suite")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		match   = flag.String("match", "", "only run panels whose ID contains this substring")
		chartW  = flag.Int("chartw", 64, "ASCII chart width")
		chartH  = flag.Int("charth", 16, "ASCII chart height")
	)
	flag.Parse()

	opts := experiments.Options{Horizon: *horizon, Runs: *runs, BaseSeed: *seed, Workers: *workers}
	panels := experiments.AllPanels()
	if *match != "" {
		var kept []experiments.Panel
		for _, p := range panels {
			if strings.Contains(p.ID, *match) {
				kept = append(kept, p)
			}
		}
		panels = kept
	}
	if len(panels) == 0 {
		fmt.Fprintln(os.Stderr, "figures: no panels match")
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	start := time.Now()
	var results []*experiments.PanelResult
	for i, p := range panels {
		t0 := time.Now()
		r, err := experiments.Run(p, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: panel %s: %v\n", p.ID, err)
			os.Exit(1)
		}
		results = append(results, r)
		for suffix, content := range map[string]string{
			".csv":     r.CSV(),
			".aux.csv": r.AuxCSV(),
			".dat":     r.GnuplotDat(),
			".txt":     r.Table() + "\n" + r.Chart(*chartW, *chartH),
		} {
			path := filepath.Join(*out, p.ID+suffix)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%2d/%d] %-5s %-45s %s\n",
			i+1, len(panels), p.ID, p.Title, time.Since(t0).Round(time.Millisecond))
	}

	var summary strings.Builder
	fmt.Fprintf(&summary, "rtdls evaluation suite — %d panels, horizon=%g, runs=%d, seed=%d\n",
		len(panels), opts.Horizon, opts.Runs, opts.BaseSeed)
	fmt.Fprintf(&summary, "total wall time: %s\n\n", time.Since(start).Round(time.Second))
	for _, pair := range [][2]string{
		{"EDF-DLT", "EDF-OPR-MN"},
		{"FIFO-DLT", "FIFO-OPR-MN"},
		{"EDF-DLT", "EDF-UserSplit"},
		{"FIFO-DLT", "FIFO-UserSplit"},
	} {
		if c, err := experiments.Compare(results, pair[0], pair[1]); err == nil {
			summary.WriteString(c.String())
			summary.WriteString("\n")
		}
	}
	// The paper's Sec. 5.2 statistic pools both policies' DLT-vs-UserSplit
	// cells; report the pooled numbers too.
	pooled := poolUserSplit(results)
	if pooled != "" {
		summary.WriteString(pooled)
	}
	if err := os.WriteFile(filepath.Join(*out, "summary.txt"), []byte(summary.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Print(summary.String())
}

// poolUserSplit merges the EDF and FIFO DLT-vs-UserSplit comparisons into
// the single aggregate the paper quotes ("330 simulations … 8.22%").
func poolUserSplit(results []*experiments.PanelResult) string {
	edf, err1 := experiments.Compare(results, "EDF-DLT", "EDF-UserSplit")
	fifo, err2 := experiments.Compare(results, "FIFO-DLT", "FIFO-UserSplit")
	if err1 != nil || err2 != nil {
		return ""
	}
	cells := edf.Cells + fifo.Cells
	usWins := edf.BWins + fifo.BWins
	dltWins := edf.AWins + fifo.AWins
	var b strings.Builder
	fmt.Fprintf(&b, "Pooled DLT vs User-Split (Sec. 5.2 statistic) over %d simulations:\n", cells)
	fmt.Fprintf(&b, "  User-Split better: %.2f%% of configurations\n", 100*float64(usWins)/float64(cells))
	avgA := weightedAvg(edf.AvgGainA, edf.AWins, fifo.AvgGainA, fifo.AWins)
	avgB := weightedAvg(edf.AvgGainB, edf.BWins, fifo.AvgGainB, fifo.BWins)
	fmt.Fprintf(&b, "  when DLT wins   (%4d cells): gains avg=%.3f max=%.3f min=%.3f\n",
		dltWins, avgA, maxf(edf.MaxGainA, fifo.MaxGainA), minPos(edf.MinGainA, fifo.MinGainA))
	fmt.Fprintf(&b, "  when User-Split wins (%4d cells): gains avg=%.3f max=%.3f min=%.3f\n",
		usWins, avgB, maxf(edf.MaxGainB, fifo.MaxGainB), minPos(edf.MinGainB, fifo.MinGainB))
	return b.String()
}

func weightedAvg(a float64, na int, b float64, nb int) float64 {
	if na+nb == 0 {
		return 0
	}
	return (a*float64(na) + b*float64(nb)) / float64(na+nb)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minPos(a, b float64) float64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}
