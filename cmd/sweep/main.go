// Command sweep varies a single cluster or workload parameter and prints
// the reject-ratio table for a set of algorithms — handy for exploring
// beyond the paper's fixed figure grid.
//
// Example (how the IIT benefit scales with cluster size at 80% load):
//
//	sweep -param n -values 8,16,32,64,128 -load 0.8 -algs dlt-iit,opr-mn
//
// Heterogeneity panel (how the DLT advantage grows as per-node compute
// speeds spread around Cps, same offered load):
//
//	sweep -param cpsspread -values 1,2,4,8,16 -load 0.7 -algs dlt-iit,opr-mn,user-split
//
// Shard-scaling panel (how splitting the same fleet into more independent
// clusters trades reject ratio for admission throughput):
//
//	sweep -param shards -values 1,2,4,8 -n 8 -load 0.8 -placement spillover
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtdls"
)

func main() {
	var (
		param     = flag.String("param", "load", "parameter to sweep: load, n, cms, cps, avgsigma, dcratio, rounds, cmsspread, cpsspread, shards")
		values    = flag.String("values", "0.1,0.3,0.5,0.7,0.9", "comma-separated values")
		algsFlag  = flag.String("algs", "dlt-iit,opr-mn", "comma-separated algorithms")
		policy    = flag.String("policy", "edf", "scheduling policy: edf or fifo")
		n         = flag.Int("n", 16, "number of processing nodes")
		cms       = flag.Float64("cms", 1, "unit transmission cost")
		cps       = flag.Float64("cps", 100, "unit processing cost")
		load      = flag.Float64("load", 0.5, "SystemLoad")
		avgSigma  = flag.Float64("avgsigma", 200, "mean data size")
		dcRatio   = flag.Float64("dcratio", 2, "deadline/cost ratio")
		horizon   = flag.Float64("horizon", 2e6, "arrival window per run")
		runs      = flag.Int("runs", 3, "seeds per point")
		cmsSpread = flag.Float64("cmsspread", 0, "per-node Cms spread factor (>1 = heterogeneous cluster)")
		cpsSpread = flag.Float64("cpsspread", 0, "per-node Cps spread factor (>1 = heterogeneous cluster)")
		hetSeed   = flag.Uint64("heteroseed", 1, "seed for the per-node cost draw")
		shards    = flag.Int("shards", 0, "split the fleet into K independent clusters of -n nodes (0 = single cluster)")
		placement = flag.String("placement", "round-robin", "shard routing policy (with -shards or -param shards)")
	)
	flag.Parse()

	pol, err := rtdls.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	algs := strings.Split(*algsFlag, ",")
	vals := strings.Split(*values, ",")

	fmt.Printf("%-10s", *param)
	for _, a := range algs {
		fmt.Printf(" %14s", strings.TrimSpace(a))
	}
	fmt.Println()

	for _, vs := range vals {
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad value %q: %v\n", vs, err)
			os.Exit(1)
		}
		fmt.Printf("%-10g", v)
		for _, a := range algs {
			p := point{
				n: *n, cms: *cms, cps: *cps, rounds: 2,
				cmsSpread: *cmsSpread, cpsSpread: *cpsSpread,
				load: *load, avgSigma: *avgSigma, dcRatio: *dcRatio,
				shards: *shards,
			}
			if err := apply(&p, *param, v); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			sum := 0.0
			for run := 0; run < *runs; run++ {
				opts := []rtdls.Option{
					rtdls.WithNodes(p.n),
					rtdls.WithParams(rtdls.Params{Cms: p.cms, Cps: p.cps}),
					rtdls.WithPolicy(pol),
					rtdls.WithAlgorithm(strings.TrimSpace(a)),
					rtdls.WithRounds(p.rounds),
					rtdls.WithCostSpread(p.cmsSpread, p.cpsSpread, *hetSeed),
				}
				if p.shards > 0 {
					place, perr := rtdls.ParsePlacement(*placement, *hetSeed)
					if perr != nil {
						fmt.Fprintln(os.Stderr, "sweep:", perr)
						os.Exit(1)
					}
					opts = append(opts, rtdls.WithShards(p.shards), rtdls.WithPlacement(place))
				}
				res, err := rtdls.Simulate(rtdls.Workload{
					SystemLoad: p.load, AvgSigma: p.avgSigma, DCRatio: p.dcRatio,
					Horizon: *horizon, Seed: uint64(1000*run) + 17,
				}, opts...)
				if err != nil {
					fmt.Fprintln(os.Stderr, "sweep:", err)
					os.Exit(1)
				}
				sum += res.RejectRatio
			}
			fmt.Printf(" %14.4f", sum/float64(*runs))
		}
		fmt.Println()
	}
}

// point is one sweep cell's cluster and workload parameters.
type point struct {
	n                    int
	cms, cps             float64
	rounds               int
	cmsSpread, cpsSpread float64
	load                 float64
	avgSigma, dcRatio    float64
	shards               int
}

func apply(p *point, param string, v float64) error {
	switch param {
	case "load":
		p.load = v
	case "n":
		p.n = int(v)
	case "cms":
		p.cms = v
	case "cps":
		p.cps = v
	case "avgsigma":
		p.avgSigma = v
	case "dcratio":
		p.dcRatio = v
	case "rounds":
		p.rounds = int(v)
	case "cmsspread":
		p.cmsSpread = v
	case "cpsspread":
		p.cpsSpread = v
	case "shards":
		p.shards = int(v)
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	return nil
}
