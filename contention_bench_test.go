// Contention harness for optimistic two-phase admission: one shard driven
// by 1..16 concurrent submitters, on a low-conflict and a 100%-conflict
// mix, with the optimistic path (mode=spec) against the fully serialized
// baseline (mode=serial). CI emits the results as BENCH_contention.json and
// cmd/benchgate -contention enforces the scaling contract: speculation must
// scale with submitters when conflicts are rare and must cost no more than
// a few percent over serialized when every submission conflicts.
package rtdls_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rtdls"
)

// contentionGos is the per-shard submitter sweep.
var contentionGos = []int{1, 2, 4, 8, 16}

// BenchmarkSubmitContention measures one shard's submit throughput under
// concurrent submitters.
//
// mix=cold is the overload-shedding shape speculation is built for: a
// committed backlog keeps every node busy, and the offered tasks are
// marginally infeasible — they pass the sound fast-reject, so the full
// planning loop runs off-lock, and the resulting rejects are epoch-neutral,
// so concurrent speculations almost never conflict.
//
// mix=hot is the worst case: every task is admitted, every install moves
// the epoch, and overlapping speculations conflict on nearly every submit —
// the adaptive gate must degenerate to (near-)serialized throughput.
func BenchmarkSubmitContention(b *testing.B) {
	for _, mix := range []string{"cold", "hot"} {
		for _, mode := range []string{"spec", "serial"} {
			for _, gos := range contentionGos {
				b.Run(fmt.Sprintf("mix=%s/mode=%s/gos=%d", mix, mode, gos), func(b *testing.B) {
					runContention(b, mix, mode == "spec", gos)
				})
			}
		}
	}
}

func runContention(b *testing.B, mix string, spec bool, gos int) {
	clock := rtdls.NewManualClock(0)
	svc, err := rtdls.New(rtdls.WithClock(clock))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// E(σ=150..237, n=16) ≈ 2600 under the default Cms=1, Cps=100 cluster.
	const meanExec = 2600.0
	var backlog float64
	if mix == "cold" {
		// Commit one long task per node so the whole fleet is busy far into
		// the future; the clock then stays frozen, so the committed base —
		// and with it the epoch — never moves during the measurement.
		for i := 0; i < 16; i++ {
			d, err := svc.Submit(ctx, rtdls.Task{
				ID:          int64(i + 1),
				Sigma:       200,
				RelDeadline: 1e9,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !d.Accepted {
				b.Fatalf("backlog task %d rejected", i+1)
			}
		}
		if err := svc.Pump(); err != nil { // commit the backlog at t=0
			b.Fatal(err)
		}
		backlog = svc.Stats().LastRelease // every node busy until ≈ here
	}
	svc.SetSpeculation(spec)
	base := svc.Stats()

	var seq atomic.Int64
	seq.Store(1 << 20) // clear of the backlog ids
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for g := 0; g < gos; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := seq.Add(1)
				if n > (1<<20)+int64(b.N) {
					return
				}
				var t rtdls.Task
				if mix == "cold" {
					// Marginally infeasible: the deadline undercuts what the
					// busy fleet can deliver by just enough that the sound
					// fast-reject cannot prove it, so the planner walks the
					// whole node sweep before rejecting.
					t = rtdls.Task{
						ID:          n,
						Sigma:       150 + float64(n%8)*12.5,
						RelDeadline: backlog + 0.5*meanExec,
					}
				} else {
					clock.Advance(meanExec)
					t = rtdls.Task{
						ID:          n,
						Sigma:       150 + float64(n%8)*12.5,
						RelDeadline: 1e9,
					}
				}
				if _, err := svc.Submit(ctx, t); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()

	st := svc.Stats()
	arr := st.Arrivals - base.Arrivals
	if arr > 0 {
		b.ReportMetric(float64(st.Accepts-base.Accepts)/float64(arr), "accept_ratio")
	}
	attempts := (st.Speculative - base.Speculative) + (st.Conflicts - base.Conflicts)
	if attempts > 0 {
		b.ReportMetric(float64(st.Conflicts-base.Conflicts)/float64(attempts), "conflict_ratio")
	}
	if b.N > 0 {
		b.ReportMetric(float64(st.Speculative-base.Speculative)/float64(b.N), "speculative_frac")
	}
}
