// Package rtdls is a Go implementation of real-time divisible load
// scheduling for clusters with different processor available times,
// reproducing Lin, Lu, Deogun and Goddard, "Real-Time Divisible Load
// Scheduling with Different Processor Available Times" (University of
// Nebraska–Lincoln, TR-UNL-CSE-2007-0013; ICPP 2007).
//
// Arbitrarily divisible (embarrassingly parallel) workloads — common in
// high-energy physics pipelines such as CMS and ATLAS — can be split into
// any number of independent chunks. When such loads carry deadlines, a
// cluster RMS must decide on admission whether a task can finish in time.
// Classic schedulers wait until enough processors are simultaneously free,
// wasting the Inserted Idle Times (IITs) on processors that freed up early.
// The paper's contribution, implemented here, transforms the homogeneous
// cluster with staggered availability into an equivalent heterogeneous
// cluster that is allocated all at once, applies divisible load theory to
// partition the task so that every processor starts as soon as it is free
// yet all finish (nearly) together, and proves the resulting completion
// estimate safe for hard real-time admission control.
//
// The package offers three levels of API:
//
//   - Run / Config: one-call discrete-event simulation of a cluster under a
//     synthetic workload, returning admission and execution metrics.
//   - Scheduler / Cluster / Task: the event-driven scheduling framework for
//     embedding in other simulators or systems (EDF/FIFO × DLT-IIT /
//     OPR-MN / OPR-AN / User-Split / multi-round partitioners).
//   - Model: the heterogeneous-model mathematics itself (Eqs. 1–7 of the
//     paper) for analysis work.
//
// Beyond the paper, the whole stack is generalised from one shared
// (Cms, Cps) cost pair to per-node coefficients: build clusters with
// NewHeteroCluster (or set Config.NodeCosts / Config.CmsSpread /
// Config.CpsSpread), partition mixed-speed node sets with NewHeteroModel,
// and note that a uniform cost table reproduces the homogeneous scheduler
// bit for bit. Heterogeneous plans are admitted against exactly simulated
// dispatch timelines, preserving the hard real-time guarantee without the
// paper's common-Cms assumption.
//
// Build and test with the standard toolchain — go build ./... and
// go test ./... — or via the Makefile (make ci mirrors the CI pipeline:
// build, gofmt gate, vet, race tests, benchmark compile check and a fuzz
// smoke pass).
//
// The experiment harness that regenerates every figure of the paper, plus
// the xHET* heterogeneity panels, lives in cmd/figures; see DESIGN.md and
// EXPERIMENTS.md.
package rtdls
