// Package rtdls is a Go implementation of real-time divisible load
// scheduling for clusters with different processor available times,
// reproducing Lin, Lu, Deogun and Goddard, "Real-Time Divisible Load
// Scheduling with Different Processor Available Times" (University of
// Nebraska–Lincoln, TR-UNL-CSE-2007-0013; ICPP 2007).
//
// Arbitrarily divisible (embarrassingly parallel) workloads — common in
// high-energy physics pipelines such as CMS and ATLAS — can be split into
// any number of independent chunks. When such loads carry deadlines, a
// cluster RMS must decide on admission whether a task can finish in time.
// Classic schedulers wait until enough processors are simultaneously free,
// wasting the Inserted Idle Times (IITs) on processors that freed up early.
// The paper's contribution, implemented here, transforms the homogeneous
// cluster with staggered availability into an equivalent heterogeneous
// cluster that is allocated all at once, applies divisible load theory to
// partition the task so that every processor starts as soon as it is free
// yet all finish (nearly) together, and proves the resulting completion
// estimate safe for hard real-time admission control.
//
// The paper's test is online — tasks arrive one at a time and are admitted
// or rejected against the current processor available times — and since
// 2.0 the API is organised around exactly that surface. The package offers
// three levels:
//
//   - Service: the long-lived, goroutine-safe admission-control service.
//     Build one with New and functional options, submit tasks from any
//     goroutine with Submit/SubmitBatch, follow decisions on the Subscribe
//     event stream or the Stats snapshot, and swap the Clock to run the
//     identical engine under simulated or wall-clock time:
//
//     svc, err := rtdls.New(
//     rtdls.WithNodes(16),
//     rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 100}),
//     rtdls.WithPolicy(rtdls.EDF),
//     rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
//     )
//     dec, err := svc.Submit(ctx, rtdls.Task{ID: 1, Sigma: 200, RelDeadline: 2800})
//
//     Failures are typed: errors.Is against ErrInfeasible, ErrDeadlinePast,
//     ErrClusterBusy and ErrBadConfig distinguishes clean rejections from
//     bad input at every layer.
//
//   - Simulate / Workload: one-call discrete-event replay of a synthetic
//     workload through the same service engine, returning admission and
//     execution metrics. (The deprecated 1.x Run/Config shims were removed
//     in 3.0.0; internal/driver still proves the replay reproduces the
//     pre-redesign results bit for bit.)
//
//   - Model: the heterogeneous-model mathematics itself (Eqs. 1–7 of the
//     paper) for analysis work.
//
// Beyond the paper, the whole stack is generalised from one shared
// (Cms, Cps) cost pair to per-node coefficients: pass WithNodeCosts or
// WithCostSpread (or build clusters with NewHeteroCluster), partition
// mixed-speed node sets with NewHeteroModel, and note that a uniform cost
// table reproduces the homogeneous scheduler bit for bit. Heterogeneous
// plans are admitted against exactly simulated dispatch timelines,
// preserving the hard real-time guarantee without the paper's common-Cms
// assumption.
//
// For scale-out, the service shards into a multi-cluster admission pool
// (internal/pool), after the multi-source divisible-load systems of
// Wu/Cao/Robertazzi: WithShards(k) runs K independent clusters — each
// with its own scheduler, lock and commit pump, sharing one clock and one
// shard-tagged event stream — behind the identical Service surface, and
// WithPlacement selects the routing layer (RoundRobin, LeastLoaded,
// PowerOfTwoChoices, or Spillover, which retries rejected tasks on the
// remaining shards before giving a final reject). WithShardNodes and
// WithShardNodeCosts describe heterogeneous fleets of differently sized
// and priced clusters. Decisions and events report the placing shard,
// Stats aggregates the fleet, and ShardStats/Clusters expose per-shard
// views. The default single-cluster service is exactly the K=1 special
// case: WithShards(1) is property-tested to be bit-for-bit identical to
// it, and a K-shard RoundRobin pool reproduces K independent
// single-cluster simulations decision for decision. See examples/pool.
//
// Since 3.0.0 the same engine serves over the wire. cmd/dlserve is an
// HTTP/JSON front end (internal/server) exposing submit, batch, stats, a
// Server-Sent-Events decision stream with explicit gap notices for lossy
// consumers, and a graceful SIGTERM drain that never loses a committed
// task. Every rejection carries a wire-stable Reason token and integer
// Code (see Reasons, ParseReason and Code in this package): the HTTP
// status of a rejected submission is exactly the reason's code, busy
// rejections carry a Retry-After derived from the engine's queue slack,
// and Decision.Reason exposes the same token in process while remaining
// errors.Is-matchable against the sentinels. cmd/dlload load-tests the
// wire — closed-loop or open-loop (Poisson, bursty or replayed arrivals,
// measured against intended arrival instants to avoid coordinated
// omission) — and emits an HDR-style latency/outcome report.
//
// Since 3.2.0 the fleet is dynamic. DrainNode stops placing new work on
// a node (committed work finishes), FailNode removes its capacity now,
// RestoreNode returns it to service, and AddNode grows the cluster — on
// a Service, a Pool and over the wire (POST /v1/nodes/{id}/{action}).
// On capacity loss the scheduler re-validates every admitted-but-
// uncommitted plan through the normal schedulability test; tasks that no
// longer fit are displaced (EventDisplace, ReasonNodeUnavailable,
// ErrDisplaced) and, on a pool, re-admitted on another shard when one
// passes the test. Committed plans are never broken — churn displaces,
// it does not create deadline misses — and a fail-then-restore cycle
// with an empty interim queue is property-tested to leave the scheduler
// bit-identical to one that never failed. Churn is scriptable with one
// grammar everywhere (ParseChurnSchedule; -churn on dlsim, dlserve and
// dlload): ";"-separated "t=<offset> <drain|fail|restore> <node>"
// entries, deterministic under the simulated clock via WithChurn and
// chaos-style over the wire from the load generator. See examples/churn.
//
// The stack is observable end to end without external dependencies:
// NewMetricsRegistry plus WithMetrics install an atomic instrumentation
// layer (internal/metrics) that the server renders as Prometheus text
// exposition on GET /metrics — per-stage admission latency histograms
// (candidate scan, planning, schedulability check, commit), per-shard
// accept/reject/commit counters, queue-depth and utilization gauges, and
// HTTP request metrics. Instruments update via atomic stores at
// state-change time and a scrape only reads atomics, so monitoring never
// contends with the scheduler lock. dlserve adds net/http/pprof behind
// -pprof-addr and structured log/slog request logging with request-id
// propagation; dlload scrapes /metrics around each run and embeds the
// server-side stage/shard deltas in its report.
//
// Since 3.3.0 admission cost is sub-linear in the fleet size. The
// scheduler's availability view is an order-statistic index (a
// size-augmented treap over eligibility, release time and node id) kept
// base-synced with the committed cluster state via a mutation counter, so
// a steady-state schedulability test rolls back the previous test's
// tentative assignments in O(changed·log n) instead of re-sorting all n
// nodes, and "the earliest k nodes" materialises in O(k + log n). A sound
// infeasibility fast-reject runs before any planning: tasks that provably
// cannot meet their deadline even on the earliest possible release times
// (one O(log n) order-statistic probe) are rejected without replanning
// the queue, leaving the admission decision stream bit-for-bit unchanged
// — a property enforced by differential and fuzz suites against a
// full-sort reference implementation. Per-submit cost is flat from 100
// to 10,000 nodes; CI gates the growth ratio via cmd/benchgate over the
// BenchmarkSubmit/nodes=N sweep (BENCH_index.json).
//
// Since 3.4.0 admission is optimistically concurrent within a shard. A
// submission snapshots the committed state under the lock with an epoch
// stamp (cluster mutation counter + queue generation), then runs the
// entire schedulability test — due-commit simulation, fast-reject,
// candidate ordering, planning, deadline check — outside the lock
// against a private availability view with per-goroutine scratch. The
// install phase retakes the lock, and if the epoch is unchanged the
// precomputed decision lands with a buffer swap; on a conflict the
// speculation is discarded and the submission replays through the
// serialized path, so every decision is still made against serialized
// state and the stream is bit-for-bit what serialized execution
// produces (property-tested by replaying the concurrent run's
// linearization order). Rejections are epoch-neutral, which makes
// overload shedding — the regime that needs throughput most — nearly
// conflict-free; accept-heavy storms degrade gracefully via an adaptive
// gate that falls back to serialized submission with periodic re-probes.
// SetSpeculation toggles the path (on by default) on a Service, a Pool
// and the Engine; Stats counts Speculative/Conflicts, the exposition
// carries rtdls_admission_{speculative,conflicts}_total per shard,
// dlload folds a conflict rate into BENCH_wire.json, and dlserve's
// -mutex-profile-fraction/-block-profile-rate expose the remaining lock
// waits on the -pprof-addr listener. BenchmarkSubmitContention sweeps
// submitter counts over low- and 100%-conflict mixes with speculation on
// and off; CI gates the scaling and overhead contracts machine-adaptively
// via cmd/benchgate -contention (BENCH_contention.json).
//
// Build and test with the standard toolchain — go build ./... and
// go test ./... — or via the Makefile (make ci mirrors the CI pipeline:
// build, gofmt gate, vet, race tests, benchmark compile check and a fuzz
// smoke pass; make bench-json emits the BENCH_service.json perf sample the
// CI bench job uploads).
//
// The experiment harness that regenerates every figure of the paper, plus
// the xHET* heterogeneity panels, lives in cmd/figures; see DESIGN.md and
// EXPERIMENTS.md.
package rtdls
