package rtdls

import "rtdls/internal/errs"

// Typed sentinel errors shared by every layer of the stack. All failures
// returned from this package wrap one of them, so callers distinguish the
// failure classes with errors.Is instead of matching message text:
//
//	dec, err := svc.Submit(ctx, task)
//	switch {
//	case errors.Is(err, rtdls.ErrBadConfig):   // malformed task or options
//	case errors.Is(dec.Reason, rtdls.ErrInfeasible):   // clean rejection
//	case errors.Is(dec.Reason, rtdls.ErrDeadlinePast): // submitted too late
//	case errors.Is(dec.Reason, rtdls.ErrClusterBusy):  // queue bound hit
//	}
var (
	// ErrInfeasible marks a clean admission rejection: no node assignment
	// can meet the task's deadline against the current cluster state (the
	// paper's footnote 1 — in a deployment it triggers deadline
	// renegotiation; see examples/admission).
	ErrInfeasible = errs.ErrInfeasible

	// ErrDeadlinePast marks a task whose absolute deadline had already
	// passed at submission; the schedulability test is not run.
	ErrDeadlinePast = errs.ErrDeadlinePast

	// ErrClusterBusy marks a submission the service could not consider:
	// the waiting queue is at its WithMaxQueue bound, or the service has
	// been closed.
	ErrClusterBusy = errs.ErrClusterBusy

	// ErrBadConfig marks invalid input: malformed tasks, cost tables,
	// workloads or options.
	ErrBadConfig = errs.ErrBadConfig
)
