package rtdls

import "rtdls/internal/errs"

// Typed sentinel errors shared by every layer of the stack. All failures
// returned from this package wrap one of them, so callers distinguish the
// failure classes with errors.Is instead of matching message text:
//
//	dec, err := svc.Submit(ctx, task)
//	switch {
//	case errors.Is(err, rtdls.ErrBadConfig):   // malformed task or options
//	case errors.Is(dec.Reason, rtdls.ErrInfeasible):   // clean rejection
//	case errors.Is(dec.Reason, rtdls.ErrDeadlinePast): // submitted too late
//	case errors.Is(dec.Reason, rtdls.ErrClusterBusy):  // queue bound hit
//	}
var (
	// ErrInfeasible marks a clean admission rejection: no node assignment
	// can meet the task's deadline against the current cluster state (the
	// paper's footnote 1 — in a deployment it triggers deadline
	// renegotiation; see examples/admission).
	ErrInfeasible = errs.ErrInfeasible

	// ErrDeadlinePast marks a task whose absolute deadline had already
	// passed at submission; the schedulability test is not run.
	ErrDeadlinePast = errs.ErrDeadlinePast

	// ErrClusterBusy marks a submission the service could not consider:
	// the waiting queue is at its WithMaxQueue bound, or the service has
	// been closed.
	ErrClusterBusy = errs.ErrClusterBusy

	// ErrBadConfig marks invalid input: malformed tasks, cost tables,
	// workloads or options.
	ErrBadConfig = errs.ErrBadConfig

	// ErrDisplaced marks an admitted-but-uncommitted task that lost its
	// seat when a node was drained or failed and the remaining capacity
	// could not absorb its plan (EventDisplace on the stream; on a pooled
	// service the task may still be re-admitted on another shard).
	ErrDisplaced = errs.ErrDisplaced
)

// Reason is the wire-stable string enum naming a rejection class. It is
// the type of Decision.Reason and Event.Reason: the string value is the
// wire token ("infeasible", "deadline-past", "busy"), so decisions
// serialize identically in JSON responses and on the event stream, and the
// same value still satisfies errors.Is against the sentinels above. See
// ParseReason for the inverse and Code for the integer wire status.
type Reason = errs.Reason

// The documented Reason enum. Tokens are append-only wire contract: new
// classes may be added, existing tokens are never renamed or reused.
const (
	ReasonNone            = errs.ReasonNone            // accepted ("")
	ReasonInfeasible      = errs.ReasonInfeasible      // "infeasible" → ErrInfeasible
	ReasonDeadlinePast    = errs.ReasonDeadlinePast    // "deadline-past" → ErrDeadlinePast
	ReasonBusy            = errs.ReasonBusy            // "busy" → ErrClusterBusy
	ReasonBadRequest      = errs.ReasonBadRequest      // "bad-request" → ErrBadConfig (wire errors only)
	ReasonNodeUnavailable = errs.ReasonNodeUnavailable // "node-unavailable" → ErrDisplaced
	ReasonCancelled       = errs.ReasonCancelled       // "cancelled" (wire errors only)
	ReasonInternal        = errs.ReasonInternal        // "internal" (wire errors only)
)

// Wire status codes returned by Code. The values are HTTP-compatible on
// purpose — dlserve uses them verbatim as response statuses — and are
// never renumbered.
const (
	CodeOK              = errs.CodeOK              // 200
	CodeBadRequest      = errs.CodeBadRequest      // 400 ← ErrBadConfig
	CodeDeadlinePast    = errs.CodeDeadlinePast    // 410 ← ErrDeadlinePast
	CodeInfeasible      = errs.CodeInfeasible      // 422 ← ErrInfeasible
	CodeBusy            = errs.CodeBusy            // 429 ← ErrClusterBusy
	CodeNodeUnavailable = errs.CodeNodeUnavailable // 503 ← ErrDisplaced (retryable)
	CodeCancelled       = errs.CodeCancelled       // 499 ← context cancellation
	CodeInternal        = errs.CodeInternal        // 500 ← anything else
)

// Code maps any error in the stack (including a Reason's Err) to its
// stable wire status code; nil maps to CodeOK.
func Code(err error) int { return errs.Code(err) }

// ReasonFor classifies an error into its wire Reason (nil → ReasonNone).
func ReasonFor(err error) Reason { return errs.ReasonFor(err) }

// ParseReason parses a wire token back into its Reason; unknown tokens
// fail with ErrBadConfig.
func ParseReason(s string) (Reason, error) { return errs.ParseReason(s) }

// Reasons lists every documented wire token, ReasonNone first.
func Reasons() []Reason { return errs.Reasons() }
