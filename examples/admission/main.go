// admission demonstrates the workflow behind the paper's footnote 1: in a
// real facility, "rejection" means the administrator (or a proxy program)
// negotiates a feasible deadline with the client and the job is rescheduled
// with modified parameters.
//
// The example drives the admission service directly with a random stream of
// tasks; whenever admission fails with ErrInfeasible, the client retries
// with a 1.5× looser deadline, up to three attempts, emulating a
// multi-tiered QoS agreement ("pay" per response time, as at the UNL
// Research Computing Facility). A subscriber on the service's event stream
// tallies the lifecycle independently of the submission loop.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"rtdls"
)

func main() {
	params := rtdls.Params{Cms: 1, Cps: 100}
	svc, err := rtdls.New(
		rtdls.WithNodes(16),
		rtdls.WithParams(params),
		rtdls.WithPolicy(rtdls.EDF),
		rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Stream consumer: counts lifecycle events concurrently with the
	// submissions (the ad-hoc Observer wiring of v1 is gone).
	events, cancel := svc.Subscribe(1 << 14)
	counted := make(chan [3]int, 1)
	go func() {
		var n [3]int
		for ev := range events {
			switch ev.Kind {
			case rtdls.EventAccept:
				n[0]++
			case rtdls.EventReject:
				n[1]++
			case rtdls.EventCommit:
				n[2]++
			}
		}
		counted <- n
	}()

	ctx := context.Background()
	rng := rand.New(rand.NewPCG(7, 2026))
	avgExec := params.ExecTime(200, 16)

	const tasks = 2000
	var (
		now          float64
		id           int64
		firstTry     int
		renegotiated int
		lost         int
		extraDelay   float64 // total deadline concession across saved tasks
	)
	for i := 0; i < tasks; i++ {
		now += rng.ExpFloat64() * avgExec / 0.9 // ~90% load: rejections are common
		sigma := 0.0
		for sigma <= 0 {
			sigma = 200 + 200*rng.NormFloat64()
		}
		deadline := 2 * avgExec * (0.5 + rng.Float64())
		if min := params.ExecTime(sigma, 16); deadline < min {
			deadline = min
		}

		accepted := false
		for attempt := 0; attempt < 3; attempt++ {
			id++
			dec, err := svc.Submit(ctx, rtdls.Task{ID: id, Arrival: now, Sigma: sigma, RelDeadline: deadline})
			if err != nil {
				log.Fatal(err)
			}
			if dec.Accepted {
				if attempt == 0 {
					firstTry++
				} else {
					renegotiated++
					extraDelay += deadline - deadline/poweredHalf(attempt)
				}
				accepted = true
				break
			}
			deadline *= 1.5 // negotiate a looser deadline and resubmit
		}
		if !accepted {
			lost++
		}
	}
	if err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	st := svc.Stats()
	svc.Close() // closes the event stream; the counter goroutine finishes
	cancel()
	n := <-counted

	fmt.Println("Deadline renegotiation under EDF-DLT (16 nodes, ~90% load, 2000 clients)")
	fmt.Println()
	fmt.Printf("  admitted first try        %5d (%.1f%%)\n", firstTry, pct(firstTry, tasks))
	fmt.Printf("  saved by renegotiation    %5d (%.1f%%)\n", renegotiated, pct(renegotiated, tasks))
	fmt.Printf("  lost after three attempts %5d (%.1f%%)\n", lost, pct(lost, tasks))
	if renegotiated > 0 {
		fmt.Printf("  mean deadline concession  %.1f time units per renegotiated task\n",
			extraDelay/float64(renegotiated))
	}
	fmt.Println()
	fmt.Printf("event stream saw %d accepts, %d rejects, %d commits (%d dropped);\n",
		n[0], n[1], n[2], st.EventsDropped)
	fmt.Printf("service counters: %d arrivals, %d accepts, %d rejects, utilization %.3f\n",
		st.Arrivals, st.Accepts, st.Rejects, st.Utilization)
	fmt.Println()
	fmt.Println("Each accepted task still carries a hard guarantee for its (possibly")
	fmt.Println("renegotiated) deadline — the schedulability test re-verified the whole")
	fmt.Println("waiting queue at every attempt.")
}

func poweredHalf(attempts int) float64 {
	f := 1.0
	for i := 0; i < attempts; i++ {
		f *= 1.5
	}
	return f
}

func pct(a, b int) float64 { return 100 * float64(a) / float64(b) }
