// Example churn puts a sharded admission pool through node-lifecycle
// churn and compares how the fleet recovers from a graceful drain versus
// a failure with later restore, via the live Service API.
//
// The identical task stream is replayed three times over a 4×8 pool on a
// manual clock:
//
//   - baseline: the fleet never changes.
//   - drain: at half-stream, shard 0's eight nodes are drained and never
//     come back — a graceful decommission. Capacity is permanently down
//     a quarter, so the reject ratio climbs for the rest of the run.
//   - fail+restore: the same eight nodes fail at half-stream and rejoin
//     at three quarters — a crash with recovery. The displaced waiting
//     plans go back through placement (readmissions land on the live
//     shards), and once the nodes return the pool recovers its baseline
//     admission rate.
//
// Two invariants to observe in the output: committed deadlines are never
// broken by churn (late commits stay 0 — the engine displaces instead),
// and the accounting always reconciles as
// accepts == commits + displaced − readmitted.
package main

import (
	"context"
	"fmt"
	"log"

	"rtdls"
)

const (
	shards     = 4
	perShard   = 8
	totalNodes = shards * perShard
	tasks      = 3000
)

var params = rtdls.Params{Cms: 8, Cps: 100}

// churnOp is one scripted fleet operation at a stream position.
type churnOp struct {
	at    int // task index at which the op fires
	fail  bool
	nodes []int
}

func shard0Nodes() []int {
	nodes := make([]int, perShard)
	for i := range nodes {
		nodes[i] = i // shard-major ids: shard 0 owns 0..perShard-1
	}
	return nodes
}

func replay(stream []rtdls.Task, ops []churnOp, restoreAt int) rtdls.ServiceStats {
	clock := rtdls.NewManualClock(0)
	svc, err := rtdls.New(
		rtdls.WithParams(params),
		rtdls.WithNodes(perShard),
		rtdls.WithShards(shards),
		rtdls.WithPlacement(rtdls.Spillover{Inner: rtdls.LeastLoaded{}}),
		rtdls.WithClock(clock),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for i, task := range stream {
		clock.Set(task.Arrival)
		for _, op := range ops {
			if op.at != i {
				continue
			}
			for _, n := range op.nodes {
				var err error
				if op.fail {
					_, err = svc.FailNode(n)
				} else {
					_, err = svc.DrainNode(n)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		if restoreAt == i {
			for _, n := range shard0Nodes() {
				if _, err := svc.RestoreNode(n); err != nil {
					log.Fatal(err)
				}
			}
		}
		if _, err := svc.Submit(ctx, task); err != nil {
			log.Fatalf("task %d: %v", task.ID, err)
		}
	}
	if err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	return svc.Stats()
}

func main() {
	gen, err := rtdls.NewGenerator(rtdls.WorkloadConfig{
		N:          totalNodes,
		Params:     params,
		SystemLoad: 3.0,
		AvgSigma:   200,
		DCRatio:    20,
		Horizon:    1e9,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := make([]rtdls.Task, 0, tasks)
	for len(stream) < tasks {
		t, ok := gen.Next()
		if !ok {
			break
		}
		stream = append(stream, *t)
	}

	half, threeQ := len(stream)/2, 3*len(stream)/4
	scenarios := []struct {
		label     string
		ops       []churnOp
		restoreAt int
	}{
		{"baseline (no churn)", nil, -1},
		{"drain shard 0, no return", []churnOp{{at: half, fail: false, nodes: shard0Nodes()}}, -1},
		{"fail shard 0, restore at 3/4", []churnOp{{at: half, fail: true, nodes: shard0Nodes()}}, threeQ},
	}

	fmt.Printf("identical stream of %d tasks over a %d×%d pool (~300%% aggregate load)\n\n",
		len(stream), shards, perShard)
	fmt.Printf("%-30s %8s %8s %9s %10s %6s %12s\n",
		"scenario", "accepts", "rejects", "displaced", "readmitted", "late", "reject ratio")
	for _, sc := range scenarios {
		st := replay(stream, sc.ops, sc.restoreAt)
		if st.Accepts != st.Commits+st.Displaced-st.Readmitted {
			log.Fatalf("%s: accounting broken: %+v", sc.label, st)
		}
		fmt.Printf("%-30s %8d %8d %9d %10d %6d %12.4f\n",
			sc.label, st.Accepts, st.Rejects, st.Displaced, st.Readmitted,
			st.LateCommits, st.RejectRatio())
	}
	fmt.Println("\nDraining removes capacity for good, so the reject ratio climbs and")
	fmt.Println("stays up. Failing with a later restore displaces the waiting plans —")
	fmt.Println("the pool re-admits what still fits on the live shards — and recovers")
	fmt.Println("once the nodes return. In both cases late commits stay 0: committed")
	fmt.Println("deadlines are never sacrificed, displacement is how load is shed.")
}
