// cmspipeline models the scenario that motivates the paper: a research
// computing facility (like the U.S. CMS Tier-2 sites) running arbitrarily
// divisible high-energy-physics workloads with response-time guarantees.
//
// It compares the facility's two options on the identical task stream:
// the current practice — users manually split jobs into equal chunks and
// request a node count themselves (EDF-UserSplit) — versus the paper's
// automatic DLT-based partitioning that exploits inserted idle times
// (EDF-DLT), plus the multi-round extension.
package main

import (
	"fmt"
	"log"

	"rtdls"
)

func main() {
	// A CMS-like configuration: larger cluster, data-heavy tasks (shipping
	// an event file is cheap relative to reconstructing it).
	w := rtdls.Workload{
		SystemLoad: 0.8,
		AvgSigma:   500, // large input datasets
		DCRatio:    2,   // response-time guarantee ≈ 2× best-case runtime
		Horizon:    4e6,
		Seed:       2026,
	}

	fmt.Println("CMS-style divisible load facility: 32 nodes, Cms=1, Cps=250, Avgσ=500, load 0.8")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %12s %12s %10s\n",
		"algorithm", "arrivals", "rejected", "reject ratio", "mean resp", "util")

	type row struct {
		name string
		alg  string
		rnds int
	}
	for _, r := range []row{
		{"EDF-UserSplit (manual)", rtdls.AlgUserSplit, 0},
		{"EDF-OPR-MN (no IITs)", rtdls.AlgOPRMN, 0},
		{"EDF-DLT (paper)", rtdls.AlgDLTIIT, 0},
		{"EDF-DLT-MR4 (ext.)", rtdls.AlgDLTMR, 4},
	} {
		opts := []rtdls.Option{
			rtdls.WithNodes(32),
			rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 250}),
			rtdls.WithPolicy(rtdls.EDF),
			rtdls.WithAlgorithm(r.alg),
		}
		if r.rnds > 0 {
			opts = append(opts, rtdls.WithRounds(r.rnds))
		}
		res, err := rtdls.Simulate(w, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %10d %12.4f %12.1f %10.4f\n",
			r.name, res.Arrivals, res.Rejected, res.RejectRatio, res.MeanResponse, res.Utilization)
	}

	fmt.Println()
	fmt.Println("Every admitted task met its deadline in all four runs (hard guarantee);")
	fmt.Println("the DLT scheduler admits more of the identical task stream because waiting")
	fmt.Println("tasks start computing on each node the moment it frees up.")
}
