// comparison sweeps the paper's baseline configuration across the system
// load range for every scheduling algorithm in the library and renders the
// result as a table plus an ASCII chart — a one-shot replica of the
// evaluation's headline story.
package main

import (
	"fmt"
	"log"

	"rtdls"
)

func main() {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	algs := []struct {
		name string
		alg  string
		pol  string
		rnds int
	}{
		{"EDF-DLT", rtdls.AlgDLTIIT, "edf", 0},
		{"EDF-OPR-MN", rtdls.AlgOPRMN, "edf", 0},
		{"EDF-OPR-AN", rtdls.AlgOPRAN, "edf", 0},
		{"EDF-UserSplit", rtdls.AlgUserSplit, "edf", 0},
		{"FIFO-DLT", rtdls.AlgDLTIIT, "fifo", 0},
		{"FIFO-OPR-MN", rtdls.AlgOPRMN, "fifo", 0},
		{"EDF-DLT-MR4", rtdls.AlgDLTMR, "edf", 4},
	}

	fmt.Println("Task Reject Ratio across algorithms — paper baseline (N=16, Cms=1, Cps=100, Avgσ=200, DCRatio=2)")
	fmt.Println("horizon 1e6, 3 paired seeds per point")
	fmt.Println()
	fmt.Printf("%-6s", "load")
	for _, a := range algs {
		fmt.Printf(" %14s", a.name)
	}
	fmt.Println()

	curves := make(map[string][]float64, len(algs))
	for _, load := range loads {
		fmt.Printf("%-6.1f", load)
		for _, a := range algs {
			sum := 0.0
			const runs = 3
			for seed := uint64(1); seed <= runs; seed++ {
				pol, err := rtdls.ParsePolicy(a.pol)
				if err != nil {
					log.Fatal(err)
				}
				opts := []rtdls.Option{
					rtdls.WithNodes(16),
					rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 100}),
					rtdls.WithPolicy(pol),
					rtdls.WithAlgorithm(a.alg),
				}
				if a.rnds > 0 {
					opts = append(opts, rtdls.WithRounds(a.rnds))
				}
				res, err := rtdls.Simulate(rtdls.Workload{
					SystemLoad: load, AvgSigma: 200, DCRatio: 2,
					Horizon: 1e6, Seed: seed,
				}, opts...)
				if err != nil {
					log.Fatal(err)
				}
				sum += res.RejectRatio
			}
			mean := sum / runs
			curves[a.name] = append(curves[a.name], mean)
			fmt.Printf(" %14.4f", mean)
		}
		fmt.Println()
	}

	// Chart the central comparison (Fig. 3a + Fig. 5a in one frame) via the
	// panel machinery so the rendering matches cmd/figures.
	fmt.Println()
	p, ok := find("f03")
	if !ok {
		return
	}
	opts := rtdls.DefaultPanelOptions()
	opts.Horizon = 1e6
	opts.Runs = 3
	r, err := rtdls.RunPanel(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Chart(64, 16))
}

func find(id string) (rtdls.Panel, bool) {
	for _, p := range rtdls.AllPanels() {
		if p.ID == id {
			return p, true
		}
	}
	return rtdls.Panel{}, false
}
