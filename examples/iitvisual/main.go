// iitvisual reproduces the paper's Figure 1 visually: the same task
// stream scheduled by EDF-OPR-MN (processors allocated simultaneously —
// inserted idle times shown as '.') and by EDF-DLT (processors utilised
// the moment they are released), rendered as ASCII node timelines.
package main

import (
	"fmt"
	"log"

	"rtdls"
)

func main() {
	const (
		nodes   = 8
		horizon = 25000.0
	)
	params := rtdls.Params{Cms: 1, Cps: 100}

	run := func(alg string) (*rtdls.GanttCollector, *rtdls.Result) {
		timeline := rtdls.NewGanttCollector(nodes)
		// Overload with loose deadlines: tasks of mixed sizes overlap, so
		// arriving tasks routinely wait for part of their node set — the
		// regime where inserted idle times appear.
		res, err := rtdls.Simulate(rtdls.Workload{
			SystemLoad: 1.2, AvgSigma: 100, DCRatio: 4,
			Horizon: horizon, Seed: 12,
		},
			rtdls.WithNodes(nodes),
			rtdls.WithParams(params),
			rtdls.WithPolicy(rtdls.EDF),
			rtdls.WithAlgorithm(alg),
			rtdls.WithObserver(timeline),
		)
		if err != nil {
			log.Fatal(err)
		}
		return timeline, res
	}

	fmt.Println("Figure-1 style comparison: identical task stream, 8 nodes, overload")
	fmt.Println()

	opr, oprRes := run(rtdls.AlgOPRMN)
	fmt.Printf("EDF-OPR-MN (no IIT utilisation) — reject ratio %.3f, wasted IIT fraction %.4f\n",
		oprRes.RejectRatio, oprRes.ReservedIdleFrac)
	fmt.Print(opr.Render(0, horizon, 100))
	fmt.Println()

	iit, iitRes := run(rtdls.AlgDLTIIT)
	fmt.Printf("EDF-DLT (this paper) — reject ratio %.3f, wasted IIT fraction %.4f\n",
		iitRes.RejectRatio, iitRes.ReservedIdleFrac)
	fmt.Print(iit.Render(0, horizon, 100))
	fmt.Println()

	fmt.Println("Every '.' in the first chart is processing power the baseline throws away")
	fmt.Println("while waiting for the task's full node set; the DLT schedule has none —")
	fmt.Println("each node starts receiving its (heterogeneous-model sized) chunk as soon")
	fmt.Println("as it is released. Over long horizons that reclaimed capacity turns into")
	fmt.Println("earlier completions and fewer rejections (Fig. 3 of the paper; run")
	fmt.Println("`go run ./cmd/figures -match f03` to regenerate the quantitative curve).")
}
