// Example pool shards the admission service into a multi-cluster fleet
// and shows what the placement layer is worth: the identical task stream
// is replayed through a monolithic 32-node cluster and through 4×8-node
// pools under every placement policy, via the live Service API.
//
// Two things to observe in the output:
//
//   - Spillover placement cuts the sharded fleet's reject ratio by 2–10×
//     versus the single-choice placements (a rejected task is retried on
//     the remaining shards, least loaded first, before the pool gives a
//     final reject), closing most of the gap to the monolithic reference.
//     Least-loaded alone actually herds onto one shard — queue length is
//     a coarse signal when queues drain quickly — which is exactly why
//     spillover and power-of-two-choices exist.
//
//   - The monolith still rejects least: one big divisible-load cluster
//     can give any task all 32 nodes and replans the whole queue at every
//     arrival. What it cannot do is scale admission control — every
//     Submit serialises on one lock and one O(queue × plan) replan,
//     whereas the pool runs K independent schedulers (see
//     BenchmarkPoolSubmitParallel). Sharding buys that throughput for a
//     modest reject-ratio premium, and spillover shrinks the premium.
package main

import (
	"context"
	"fmt"
	"log"

	"rtdls"
)

const (
	totalNodes = 32
	shards     = 4
	tasks      = 3000
)

// params and workload put the fleet under ~130% aggregate overload with
// deadlines loose enough (DCRatio 8) that an 8-node shard can serve most
// tasks — the regime where routing quality, not raw feasibility, decides
// the reject ratio.
var params = rtdls.Params{Cms: 8, Cps: 100}

func replay(stream []rtdls.Task, opts ...rtdls.Option) (rtdls.ServiceStats, int) {
	svc, err := rtdls.New(append([]rtdls.Option{rtdls.WithParams(params)}, opts...)...)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for _, task := range stream {
		if _, err := svc.Submit(ctx, task); err != nil {
			log.Fatalf("task %d: %v", task.ID, err)
		}
	}
	if err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	return svc.Stats(), svc.Spillovers()
}

func main() {
	gen, err := rtdls.NewGenerator(rtdls.WorkloadConfig{
		N:          totalNodes,
		Params:     params,
		SystemLoad: 1.3,
		AvgSigma:   200,
		DCRatio:    8,
		Horizon:    1e9,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := make([]rtdls.Task, 0, tasks)
	for len(stream) < tasks {
		t, ok := gen.Next()
		if !ok {
			break
		}
		stream = append(stream, *t)
	}

	shardOpts := func(p rtdls.Placement) []rtdls.Option {
		return []rtdls.Option{
			rtdls.WithNodes(totalNodes / shards),
			rtdls.WithShards(shards),
			rtdls.WithPlacement(p),
		}
	}
	candidates := []struct {
		label string
		opts  []rtdls.Option
	}{
		{"monolith 1×32", []rtdls.Option{rtdls.WithNodes(totalNodes)}},
		{"pool 4×8 least-loaded", shardOpts(rtdls.LeastLoaded{})},
		{"pool 4×8 power-of-two", shardOpts(rtdls.PowerOfTwoChoices{Seed: 7})},
		{"pool 4×8 round-robin", shardOpts(rtdls.RoundRobin{})},
		{"pool 4×8 spillover", shardOpts(rtdls.Spillover{Inner: rtdls.LeastLoaded{}})},
	}

	fmt.Printf("identical stream of %d tasks (Cms=%g, Cps=%g, ~130%% aggregate load)\n\n",
		len(stream), params.Cms, params.Cps)
	fmt.Printf("%-24s %9s %9s %13s %11s\n", "fleet", "accepted", "rejected", "reject ratio", "spillovers")
	for _, c := range candidates {
		st, sp := replay(stream, c.opts...)
		fmt.Printf("%-24s %9d %9d %13.4f %11d\n",
			c.label, st.Accepts, st.Rejects, st.RejectRatio(), sp)
	}
	fmt.Println("\nSpillover retries each rejected task across the remaining shards")
	fmt.Println("before giving a final reject — on this stream that rescues most of")
	fmt.Println("what single-choice routing loses, while keeping K independent")
	fmt.Println("schedulers behind one admission surface.")
}
