// Quickstart: build a cluster, admit a few divisible real-time tasks
// through the paper's IIT-utilising EDF-DLT scheduler, and watch the
// heterogeneous-model machinery at work — including the Theorem-4 gap
// between the admission estimate and the actual completion.
package main

import (
	"fmt"
	"log"

	"rtdls"
)

func main() {
	params := rtdls.Params{Cms: 1, Cps: 100} // 1 time unit to ship, 100 to process, per load unit
	cl, err := rtdls.NewCluster(16, params)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := rtdls.NewScheduler(cl, rtdls.EDF, rtdls.AlgDLTIIT)
	if err != nil {
		log.Fatal(err)
	}

	// A small burst of tasks: (arrival, data size, relative deadline).
	tasks := []*rtdls.Task{
		{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2800},
		{ID: 2, Arrival: 100, Sigma: 150, RelDeadline: 3500},
		{ID: 3, Arrival: 150, Sigma: 300, RelDeadline: 2500}, // tight: will it fit?
		{ID: 4, Arrival: 200, Sigma: 50, RelDeadline: 6000},
		{ID: 5, Arrival: 250, Sigma: 400, RelDeadline: 3000}, // tighter still
	}

	fmt.Println("EDF-DLT admission control on a 16-node cluster (Cms=1, Cps=100)")
	fmt.Println()
	for _, task := range tasks {
		accepted, err := sched.Submit(task, task.Arrival)
		if err != nil {
			log.Fatal(err)
		}
		if !accepted {
			fmt.Printf("task %d  σ=%-4.0f absD=%-7.0f REJECTED (no partition meets the deadline)\n",
				task.ID, task.Sigma, task.AbsDeadline())
			continue
		}
		pl := sched.PlanFor(task.ID)
		fmt.Printf("task %d  σ=%-4.0f absD=%-7.0f accepted: %d nodes, est. completion %.1f\n",
			task.ID, task.Sigma, task.AbsDeadline(), len(pl.Nodes), pl.Est)
		fmt.Printf("         starts %v\n", round1(pl.Starts))
		fmt.Printf("         alphas %v\n", round3(pl.Alphas))

		// Start everything that is due before the next arrival.
		if _, err := sched.CommitDue(task.Arrival); err != nil {
			log.Fatal(err)
		}
	}

	// Theorem 4 in action: rebuild the model for a staggered availability
	// vector and compare estimate vs exact dispatch.
	fmt.Println()
	fmt.Println("Theorem 4: estimate vs actual for σ=200 on nodes available at {0,0,0,600,600,1200}")
	m, err := rtdls.NewModel(params, 200, []float64{0, 0, 0, 600, 600, 1200})
	if err != nil {
		log.Fatal(err)
	}
	d, err := m.Dispatch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  no-IIT execution time E      = %.1f\n", m.NoIITExecTime())
	fmt.Printf("  IIT-utilising estimate Ê     = %.1f  (Eq. 6; saves %.1f)\n",
		m.ExecTime(), m.NoIITExecTime()-m.ExecTime())
	fmt.Printf("  estimated completion r_n+Ê   = %.1f  (Eq. 7)\n", m.EstCompletion())
	fmt.Printf("  actual completion (dispatch) = %.1f  (≤ estimate, as proven)\n", d.Completion)
}

func round1(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10+0.5)) / 10
	}
	return out
}

func round3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
