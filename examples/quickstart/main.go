// Quickstart: spin up the admission-control service, submit a few
// divisible real-time tasks through the paper's IIT-utilising EDF-DLT
// schedulability test, and watch the heterogeneous-model machinery at work
// — including the Theorem-4 gap between the admission estimate and the
// actual completion.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"rtdls"
)

func main() {
	params := rtdls.Params{Cms: 1, Cps: 100} // 1 time unit to ship, 100 to process, per load unit
	svc, err := rtdls.New(
		rtdls.WithNodes(16),
		rtdls.WithParams(params),
		rtdls.WithPolicy(rtdls.EDF),
		rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// A small burst of tasks: (arrival, data size, relative deadline).
	// Each Submit commits due transmissions, replans the waiting queue and
	// answers with a typed decision; tasks may come from any goroutine.
	tasks := []rtdls.Task{
		{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2800},
		{ID: 2, Arrival: 100, Sigma: 150, RelDeadline: 3500},
		{ID: 3, Arrival: 150, Sigma: 300, RelDeadline: 2500}, // tight: will it fit?
		{ID: 4, Arrival: 200, Sigma: 50, RelDeadline: 6000},
		{ID: 5, Arrival: 250, Sigma: 400, RelDeadline: 3000}, // tighter still
	}

	ctx := context.Background()
	fmt.Println("EDF-DLT admission control on a 16-node cluster (Cms=1, Cps=100)")
	fmt.Println()
	for _, task := range tasks {
		dec, err := svc.Submit(ctx, task)
		if err != nil {
			log.Fatal(err)
		}
		if !dec.Accepted {
			why := "no partition meets the deadline"
			if errors.Is(dec.Reason, rtdls.ErrDeadlinePast) {
				why = "deadline already past"
			}
			fmt.Printf("task %d  σ=%-4.0f absD=%-7.0f REJECTED (%s)\n",
				task.ID, task.Sigma, task.AbsDeadline(), why)
			continue
		}
		fmt.Printf("task %d  σ=%-4.0f absD=%-7.0f accepted: %d nodes, est. completion %.1f\n",
			task.ID, task.Sigma, task.AbsDeadline(), len(dec.Nodes), dec.Est)
		fmt.Printf("         starts %v\n", round1(dec.Starts))
		fmt.Printf("         alphas %v\n", round3(dec.Alphas))
	}

	st := svc.Stats()
	fmt.Printf("\nservice stats: %d arrivals, %d accepted, %d rejected, queue depth %d\n",
		st.Arrivals, st.Accepts, st.Rejects, st.QueueLen)

	// Theorem 4 in action: rebuild the model for a staggered availability
	// vector and compare estimate vs exact dispatch.
	fmt.Println()
	fmt.Println("Theorem 4: estimate vs actual for σ=200 on nodes available at {0,0,0,600,600,1200}")
	m, err := rtdls.NewModel(params, 200, []float64{0, 0, 0, 600, 600, 1200})
	if err != nil {
		log.Fatal(err)
	}
	d, err := m.Dispatch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  no-IIT execution time E      = %.1f\n", m.NoIITExecTime())
	fmt.Printf("  IIT-utilising estimate Ê     = %.1f  (Eq. 6; saves %.1f)\n",
		m.ExecTime(), m.NoIITExecTime()-m.ExecTime())
	fmt.Printf("  estimated completion r_n+Ê   = %.1f  (Eq. 7)\n", m.EstCompletion())
	fmt.Printf("  actual completion (dispatch) = %.1f  (≤ estimate, as proven)\n", d.Completion)
}

func round1(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10+0.5)) / 10
	}
	return out
}

func round3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
