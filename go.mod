module rtdls

go 1.22
