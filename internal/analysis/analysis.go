// Package analysis provides closed-form and search-based tooling around
// the paper's mathematics: how much execution time the heterogeneous-model
// partition actually saves for a given availability structure (the E−Ê
// surface behind Figures 3–12), and how tight the ñ_min node-count bound
// is against the true minimum the Eq. 6 estimate would certify.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"rtdls/internal/core"
	"rtdls/internal/dlt"
)

// Savings quantifies the IIT gain of one availability vector.
type Savings struct {
	N        int     // nodes
	Rn       float64 // latest available time
	E        float64 // no-IIT execution time E(σ,n)
	EHat     float64 // heterogeneous-model estimate Ê(σ,n)
	Absolute float64 // E − Ê
	Relative float64 // (E − Ê)/E
}

// ComputeSavings evaluates E−Ê for a task of size sigma on nodes with the
// given available times.
func ComputeSavings(p dlt.Params, sigma float64, avail []float64) (Savings, error) {
	m, err := core.New(p, sigma, avail)
	if err != nil {
		return Savings{}, err
	}
	s := Savings{
		N:        m.N(),
		Rn:       m.Rn(),
		E:        m.NoIITExecTime(),
		EHat:     m.ExecTime(),
		Absolute: m.NoIITExecTime() - m.ExecTime(),
	}
	if s.E > 0 {
		s.Relative = s.Absolute / s.E
	}
	return s, nil
}

// GapSweep evaluates the savings when `early` nodes are available at time
// 0 and `late` nodes become available after each of the given gaps — the
// canonical "task waits for a running task's nodes" scenario of Sec. 4.1.
func GapSweep(p dlt.Params, sigma float64, early, late int, gaps []float64) ([]Savings, error) {
	if early < 0 || late < 0 || early+late < 1 {
		return nil, fmt.Errorf("analysis: invalid split early=%d late=%d", early, late)
	}
	out := make([]Savings, 0, len(gaps))
	for _, g := range gaps {
		if g < 0 {
			return nil, fmt.Errorf("analysis: negative gap %v", g)
		}
		avail := make([]float64, 0, early+late)
		for i := 0; i < early; i++ {
			avail = append(avail, 0)
		}
		for i := 0; i < late; i++ {
			avail = append(avail, g)
		}
		s, err := ComputeSavings(p, sigma, avail)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Tightness compares the paper's closed-form node bound against the true
// minimum certified by the Eq. 6 estimate.
type Tightness struct {
	Bound int // ñ_min(slack at start floor) — the paper's approximation
	True  int // minimal n whose Eq. 6 estimate meets the deadline
	Ok    bool
}

// TrueMinNodes searches (over the earliest-available prefixes of the
// sorted availability vector) for the smallest node count whose
// heterogeneous-model completion estimate meets the absolute deadline,
// with starts clamped to the floor. ok is false when even all nodes miss.
func TrueMinNodes(p dlt.Params, sigma, absDeadline, floor float64, avail []float64) (n int, ok bool) {
	sorted := append([]float64(nil), avail...)
	sort.Float64s(sorted)
	for i, t := range sorted {
		sorted[i] = math.Max(t, floor)
	}
	for k := 1; k <= len(sorted); k++ {
		m, err := core.New(p, sigma, sorted[:k])
		if err != nil {
			return 0, false
		}
		if m.EstCompletion() <= absDeadline*(1+1e-12) {
			return k, true
		}
	}
	return 0, false
}

// BoundTightness evaluates both quantities for one scenario. The bound can
// under- or over-shoot the true minimum: it ignores both the waiting for
// busy nodes (under) and the IIT gains (over).
func BoundTightness(p dlt.Params, sigma, absDeadline, floor float64, avail []float64) Tightness {
	var t Tightness
	b, okB := dlt.MinNodesBound(p, sigma, absDeadline-floor)
	if okB {
		t.Bound = b
	}
	n, okN := TrueMinNodes(p, sigma, absDeadline, floor, avail)
	t.True = n
	t.Ok = okB && okN
	return t
}

// FormatSavingsTable renders a GapSweep result as an aligned table.
func FormatSavingsTable(gaps []float64, rows []Savings) string {
	out := fmt.Sprintf("%-10s %10s %10s %10s %8s\n", "gap", "E", "Ê", "saving", "rel")
	for i, s := range rows {
		out += fmt.Sprintf("%-10.4g %10.1f %10.1f %10.1f %7.1f%%\n",
			gaps[i], s.E, s.EHat, s.Absolute, 100*s.Relative)
	}
	return out
}
