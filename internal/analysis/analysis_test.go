package analysis

import (
	"math/rand/v2"
	"strings"
	"testing"

	"rtdls/internal/dlt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func TestComputeSavingsNoGap(t *testing.T) {
	s, err := ComputeSavings(baseline, 200, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Absolute > 1e-9 || s.Relative > 1e-12 {
		t.Fatalf("equal availability must save nothing: %+v", s)
	}
	if s.N != 4 || s.Rn != 5 {
		t.Fatalf("metadata wrong: %+v", s)
	}
}

func TestComputeSavingsGrowsWithGap(t *testing.T) {
	gaps := []float64{0, 100, 500, 1000, 2000}
	rows, err := GapSweep(baseline, 200, 6, 4, gaps)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i, s := range rows {
		if s.Absolute < prev-1e-9 {
			t.Fatalf("savings not monotone in gap at %v", gaps[i])
		}
		if s.Relative < -1e-12 || s.Relative > 1 {
			t.Fatalf("relative saving out of range: %+v", s)
		}
		prev = s.Absolute
	}
	if rows[len(rows)-1].Relative < 0.2 {
		t.Fatalf("gap ≈ E should save >20%%, got %v", rows[len(rows)-1].Relative)
	}
}

func TestGapSweepValidation(t *testing.T) {
	if _, err := GapSweep(baseline, 1, 0, 0, []float64{1}); err == nil {
		t.Fatalf("empty cluster must fail")
	}
	if _, err := GapSweep(baseline, 1, -1, 2, []float64{1}); err == nil {
		t.Fatalf("negative early must fail")
	}
	if _, err := GapSweep(baseline, 1, 1, 1, []float64{-3}); err == nil {
		t.Fatalf("negative gap must fail")
	}
	if _, err := ComputeSavings(baseline, -1, []float64{0}); err == nil {
		t.Fatalf("invalid sigma must fail")
	}
}

func TestTrueMinNodesIdleCluster(t *testing.T) {
	// Idle cluster: the true minimum equals the bound (no IITs, the bound's
	// derivation is exact up to the E ≥ Ê slack which is zero here).
	avail := make([]float64, 16)
	n, ok := TrueMinNodes(baseline, 200, 2718, 0, avail)
	if !ok {
		t.Fatalf("expected feasible")
	}
	b, okB := dlt.MinNodesBound(baseline, 200, 2718)
	if !okB || n > b {
		t.Fatalf("true min %d exceeds bound %d on an idle cluster", n, b)
	}
}

func TestTrueMinNodesInfeasible(t *testing.T) {
	if _, ok := TrueMinNodes(baseline, 200, 150, 0, make([]float64, 4)); ok {
		t.Fatalf("sub-transmission deadline must be infeasible")
	}
}

// TestBoundVsTrue: ñ_min(t) evaluated at the start floor never
// over-provisions relative to the Eq. 6 estimate — the IIT saving E−Ê is
// always smaller than the waiting time r_n that produces it, so a node
// count the bound rejects can never be rescued by IITs alone. It can
// under-provision (it ignores the wait for busy nodes); that is what the
// scheduler's expansion rule compensates for. Both facts must be
// observable.
func TestBoundVsTrue(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	undershoot, exact := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 4 + rng.IntN(13)
		avail := make([]float64, n)
		busy := rng.IntN(2) == 0
		for i := range avail {
			if busy {
				avail[i] = 2500 * rng.Float64()
			}
		}
		sigma := 20 + 300*rng.Float64()
		absD := 1500 + 5000*rng.Float64()
		tt := BoundTightness(baseline, sigma, absD, 0, avail)
		if !tt.Ok {
			continue
		}
		if tt.Bound > tt.True {
			t.Fatalf("bound %d over-provisions vs true %d (savings cannot exceed the wait)",
				tt.Bound, tt.True)
		}
		if tt.Bound < tt.True {
			undershoot++
		} else {
			exact++
		}
		if !busy && tt.Bound != tt.True {
			t.Fatalf("idle cluster: bound %d must be exact, true %d", tt.Bound, tt.True)
		}
	}
	if undershoot == 0 {
		t.Fatalf("never observed the bound under-providing (waiting ignored)")
	}
	if exact == 0 {
		t.Fatalf("never observed the bound being exact")
	}
}

func TestFormatSavingsTable(t *testing.T) {
	gaps := []float64{0, 500}
	rows, err := GapSweep(baseline, 200, 6, 4, gaps)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSavingsTable(gaps, rows)
	if !strings.Contains(out, "saving") || !strings.Contains(out, "%") {
		t.Fatalf("table malformed:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("row count wrong:\n%s", out)
	}
}
