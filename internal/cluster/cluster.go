// Package cluster models the paper's system: a head node P0 connected via a
// switch to N homogeneous processing nodes with identical link bandwidth.
// The head node accepts/rejects tasks, partitions loads and transmits data
// chunks sequentially; processing nodes never communicate with each other.
//
// The cluster tracks, per node, the release time of the last committed
// task — the Release(node_k) state of the paper's Fig. 2 schedulability
// test — together with busy-time and reserved-idle accounting used by the
// evaluation metrics.
package cluster

import (
	"fmt"
	"math"

	"rtdls/internal/dlt"
)

// Cluster is the cluster substrate: homogeneous when created with New,
// per-node heterogeneous when created with NewHetero.
type Cluster struct {
	p     dlt.Params     // reference coefficients (the shared pair when uniform)
	costs *dlt.CostModel // per-node coefficients; uniform for New
	avail []float64      // per node: release time of the last committed task

	busy         []float64 // per node: accumulated committed busy time
	reservedIdle float64   // accumulated inserted idle time wasted by reservations
	lastRelease  float64   // latest committed release time
	commits      int

	// state holds per-node lifecycle states (see fleet.go). nil means
	// every node is NodeUp — the fixed-fleet fast path allocates nothing.
	state []NodeState

	// version counts mutations of placement-relevant state (commits, node
	// lifecycle transitions, fleet growth). The scheduler compares it
	// against the version its availability index was built from to decide
	// between an O(changed) incremental sync and a full resnapshot.
	version uint64
}

// New returns a homogeneous cluster with n processing nodes, all available
// at time 0.
func New(n int, p dlt.Params) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one processing node, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cm, err := dlt.UniformCosts(p, n)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		p:     p,
		costs: cm,
		avail: make([]float64, n),
		busy:  make([]float64, n),
	}, nil
}

// NewHetero returns a cluster whose node i has the linear cost
// coefficients costs[i], all nodes available at time 0. A uniform cost
// table yields a cluster indistinguishable from New.
func NewHetero(costs []dlt.NodeCost) (*Cluster, error) {
	cm, err := dlt.NewCostModel(costs)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		p:     cm.Reference(),
		costs: cm,
		avail: make([]float64, cm.N()),
		busy:  make([]float64, cm.N()),
	}, nil
}

// N returns the number of processing nodes.
func (c *Cluster) N() int { return len(c.avail) }

// Params returns the cluster's reference unit cost parameters: the shared
// pair for a homogeneous cluster, the per-node means otherwise.
func (c *Cluster) Params() dlt.Params { return c.p }

// Costs returns the cluster's per-node cost model.
func (c *Cluster) Costs() *dlt.CostModel { return c.costs }

// CostAt returns node id's cost coefficients.
func (c *Cluster) CostAt(id int) dlt.NodeCost { return c.costs.At(id) }

// Hetero reports whether the cluster has genuinely per-node costs (i.e.
// the cost model is not uniform).
func (c *Cluster) Hetero() bool { return !c.costs.Uniform() }

// AvailTimes returns a copy of the per-node release times of committed
// work, indexed by node id.
func (c *Cluster) AvailTimes() []float64 {
	out := make([]float64, len(c.avail))
	copy(out, c.avail)
	return out
}

// AvailInto appends the per-node release times to dst[:0] and returns the
// result, so hot-path callers can reuse one scratch buffer across
// snapshots instead of allocating a copy per call.
func (c *Cluster) AvailInto(dst []float64) []float64 {
	return append(dst[:0], c.avail...)
}

// AvailAt returns node id's committed release time.
func (c *Cluster) AvailAt(id int) float64 { return c.avail[id] }

// Commit records that a task occupies the given nodes from busyFrom[i] to
// release[i] (both indexed like nodes), plus reservedIdle time units of
// inserted idle time wasted by the assignment (only nonzero for the
// non-IIT-utilising baselines). It validates that every interval starts at
// or after the node's current release time — committing overlapping work is
// a scheduler bug.
func (c *Cluster) Commit(nodes []int, busyFrom, release []float64, reservedIdle float64) error {
	if len(nodes) != len(busyFrom) || len(nodes) != len(release) {
		return fmt.Errorf("cluster: Commit slice lengths differ: %d nodes, %d starts, %d releases",
			len(nodes), len(busyFrom), len(release))
	}
	if reservedIdle < 0 || math.IsNaN(reservedIdle) {
		return fmt.Errorf("cluster: negative reserved idle %v", reservedIdle)
	}
	const eps = 1e-6
	for i, id := range nodes {
		if id < 0 || id >= len(c.avail) {
			return fmt.Errorf("cluster: Commit: node id %d out of range [0,%d)", id, len(c.avail))
		}
		if busyFrom[i] < c.avail[id]-eps*math.Max(1, math.Abs(c.avail[id])) {
			return fmt.Errorf("cluster: Commit: node %d busy from %v before its release %v",
				id, busyFrom[i], c.avail[id])
		}
		if release[i] < busyFrom[i] {
			return fmt.Errorf("cluster: Commit: node %d released at %v before busy start %v",
				id, release[i], busyFrom[i])
		}
	}
	for i, id := range nodes {
		c.avail[id] = release[i]
		c.busy[id] += release[i] - busyFrom[i]
		if release[i] > c.lastRelease {
			c.lastRelease = release[i]
		}
	}
	c.reservedIdle += reservedIdle
	c.commits++
	c.version++
	return nil
}

// Version returns the mutation counter for placement-relevant state. Two
// equal Version values bracket a window in which per-node release times,
// lifecycle states and the fleet size were all unchanged.
func (c *Cluster) Version() uint64 { return c.version }

// Commits returns the number of committed tasks.
func (c *Cluster) Commits() int { return c.commits }

// BusyTime returns the total committed busy time summed over all nodes.
// Reserved idle time (an OPR baseline's wasted IITs) is counted as busy:
// the node is held by the task even though it computes nothing.
func (c *Cluster) BusyTime() float64 {
	sum := 0.0
	for _, b := range c.busy {
		sum += b
	}
	return sum
}

// ReservedIdle returns the total inserted idle time wasted by committed
// reservations (zero for IIT-utilising algorithms).
func (c *Cluster) ReservedIdle() float64 { return c.reservedIdle }

// LastRelease returns the latest committed release time, i.e. the makespan
// of the committed schedule.
func (c *Cluster) LastRelease() float64 { return c.lastRelease }

// Utilization returns the fraction of node·time capacity occupied by
// committed work over [0, horizon]. Work extending beyond the horizon is
// counted in full; callers normally pass max(horizon, LastRelease()).
func (c *Cluster) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return c.BusyTime() / (float64(len(c.avail)) * horizon)
}
