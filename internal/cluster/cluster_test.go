package cluster

import (
	"math"
	"testing"

	"rtdls/internal/dlt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func mustNew(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(n, baseline)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, baseline); err == nil {
		t.Fatalf("N=0 must fail")
	}
	if _, err := New(-3, baseline); err == nil {
		t.Fatalf("negative N must fail")
	}
	if _, err := New(4, dlt.Params{}); err == nil {
		t.Fatalf("invalid params must fail")
	}
}

func TestFreshClusterState(t *testing.T) {
	c := mustNew(t, 8)
	if c.N() != 8 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Params() != baseline {
		t.Fatalf("Params = %+v", c.Params())
	}
	for id, at := range c.AvailTimes() {
		if at != 0 {
			t.Fatalf("node %d avail %v, want 0", id, at)
		}
	}
	if c.BusyTime() != 0 || c.ReservedIdle() != 0 || c.Commits() != 0 {
		t.Fatalf("fresh cluster has accounting")
	}
}

func TestAvailTimesIsCopy(t *testing.T) {
	c := mustNew(t, 2)
	at := c.AvailTimes()
	at[0] = 99
	if c.AvailAt(0) != 0 {
		t.Fatalf("mutating the copy changed cluster state")
	}
}

func TestCommitUpdatesState(t *testing.T) {
	c := mustNew(t, 4)
	err := c.Commit([]int{1, 3}, []float64{0, 5}, []float64{10, 12}, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.AvailAt(1) != 10 || c.AvailAt(3) != 12 {
		t.Fatalf("avail not updated: %v", c.AvailTimes())
	}
	if c.AvailAt(0) != 0 || c.AvailAt(2) != 0 {
		t.Fatalf("untouched nodes changed: %v", c.AvailTimes())
	}
	if got := c.BusyTime(); got != (10-0)+(12-5) {
		t.Fatalf("BusyTime = %v, want 17", got)
	}
	if c.ReservedIdle() != 2.5 {
		t.Fatalf("ReservedIdle = %v", c.ReservedIdle())
	}
	if c.LastRelease() != 12 {
		t.Fatalf("LastRelease = %v", c.LastRelease())
	}
	if c.Commits() != 1 {
		t.Fatalf("Commits = %d", c.Commits())
	}
}

func TestCommitSequential(t *testing.T) {
	c := mustNew(t, 2)
	if err := c.Commit([]int{0}, []float64{0}, []float64{10}, 0); err != nil {
		t.Fatal(err)
	}
	// Next task starts exactly at the release: allowed.
	if err := c.Commit([]int{0}, []float64{10}, []float64{30}, 0); err != nil {
		t.Fatal(err)
	}
	if c.AvailAt(0) != 30 {
		t.Fatalf("avail = %v", c.AvailAt(0))
	}
}

func TestCommitErrors(t *testing.T) {
	cases := []struct {
		name     string
		nodes    []int
		from, to []float64
		idle     float64
	}{
		{"length mismatch", []int{0, 1}, []float64{0}, []float64{1, 2}, 0},
		{"bad node id", []int{7}, []float64{0}, []float64{1}, 0},
		{"negative node id", []int{-1}, []float64{0}, []float64{1}, 0},
		{"release before start", []int{0}, []float64{5}, []float64{4}, 0},
		{"negative reserved", []int{0}, []float64{0}, []float64{1}, -1},
		{"NaN reserved", []int{0}, []float64{0}, []float64{1}, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustNew(t, 2)
			if err := c.Commit(tc.nodes, tc.from, tc.to, tc.idle); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}

func TestCommitOverlapRejected(t *testing.T) {
	c := mustNew(t, 2)
	if err := c.Commit([]int{0}, []float64{0}, []float64{100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit([]int{0}, []float64{50}, []float64{150}, 0); err == nil {
		t.Fatalf("overlapping commit must be rejected")
	}
}

func TestCommitFailureIsAtomicEnough(t *testing.T) {
	// Validation happens before any mutation, so a failed commit leaves the
	// cluster untouched.
	c := mustNew(t, 3)
	if err := c.Commit([]int{0, 9}, []float64{0, 0}, []float64{5, 5}, 0); err == nil {
		t.Fatalf("expected error")
	}
	for id, at := range c.AvailTimes() {
		if at != 0 {
			t.Fatalf("node %d mutated by failed commit", id)
		}
	}
	if c.BusyTime() != 0 || c.Commits() != 0 {
		t.Fatalf("accounting mutated by failed commit")
	}
}

func TestUtilization(t *testing.T) {
	c := mustNew(t, 2)
	if err := c.Commit([]int{0, 1}, []float64{0, 0}, []float64{50, 100}, 0); err != nil {
		t.Fatal(err)
	}
	// 150 busy node·units over 2 nodes × 100 time units.
	if got := c.Utilization(100); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Utilization = %v, want 0.75", got)
	}
	if got := c.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
}

// TestVersionCounter pins the mutation-counter contract the scheduler's
// base-synced availability view depends on: every placement-relevant
// mutation (commit, lifecycle transition, fleet growth) bumps Version,
// reads and failed mutations leave it unchanged.
func TestVersionCounter(t *testing.T) {
	c := mustNew(t, 4)
	v0 := c.Version()

	c.AvailTimes()
	c.LiveNodes()
	c.EligibleInto(nil)
	c.NodeStateList()
	if c.Version() != v0 {
		t.Fatalf("reads bumped Version: %d -> %d", v0, c.Version())
	}

	if err := c.Commit([]int{1}, []float64{0}, []float64{50}, 0); err != nil {
		t.Fatal(err)
	}
	if c.Version() != v0+1 {
		t.Fatalf("Commit: Version = %d, want %d", c.Version(), v0+1)
	}
	if err := c.Commit([]int{0, 9}, []float64{0, 0}, []float64{5, 5}, 0); err == nil {
		t.Fatal("expected out-of-range commit to fail")
	}
	if c.Version() != v0+1 {
		t.Fatalf("failed Commit bumped Version to %d", c.Version())
	}

	if err := c.SetNodeState(2, NodeDraining); err != nil {
		t.Fatal(err)
	}
	if c.Version() != v0+2 {
		t.Fatalf("SetNodeState: Version = %d, want %d", c.Version(), v0+2)
	}
	if err := c.SetNodeState(99, NodeDown); err == nil {
		t.Fatal("expected bad node id to fail")
	}
	if c.Version() != v0+2 {
		t.Fatalf("failed SetNodeState bumped Version to %d", c.Version())
	}

	if _, err := c.AddNode(dlt.NodeCost{Cms: 1, Cps: 100}, 10); err != nil {
		t.Fatal(err)
	}
	if c.Version() != v0+3 {
		t.Fatalf("AddNode: Version = %d, want %d", c.Version(), v0+3)
	}
}
