package cluster

import (
	"fmt"

	"rtdls/internal/dlt"
)

// NodeState is a processing node's lifecycle state. Only NodeUp nodes are
// eligible for new placements; Draining and Down nodes differ in what
// happens to work already committed onto them (a draining node finishes
// it, a failed node loses it — the scheduler layer accounts for the
// difference; the cluster only records the state).
type NodeState uint8

const (
	// NodeUp: the node accepts new placements.
	NodeUp NodeState = iota
	// NodeDraining: no new placements; committed work runs to completion.
	NodeDraining
	// NodeDown: no new placements; the node's capacity is gone now.
	NodeDown
)

// String returns the state's wire token.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDraining:
		return "draining"
	case NodeDown:
		return "down"
	default:
		return fmt.Sprintf("NodeState(%d)", uint8(s))
	}
}

// NodeStates lists every lifecycle state in order.
func NodeStates() []NodeState { return []NodeState{NodeUp, NodeDraining, NodeDown} }

// SetNodeState transitions node id into the given state. Any transition is
// allowed (drain→fail, fail→restore, ...). The node's release time and
// busy accounting are deliberately untouched: state only gates placement
// eligibility, so a fail-then-restore cycle with no interim commits leaves
// the cluster bit-identical to one that never failed.
func (c *Cluster) SetNodeState(id int, st NodeState) error {
	if id < 0 || id >= len(c.avail) {
		return fmt.Errorf("cluster: SetNodeState: node id %d out of range [0,%d)", id, len(c.avail))
	}
	switch st {
	case NodeUp, NodeDraining, NodeDown:
	default:
		return fmt.Errorf("cluster: SetNodeState: unknown state %d", st)
	}
	c.ensureState()
	c.state[id] = st
	c.version++
	return nil
}

// NodeStateAt returns node id's lifecycle state.
func (c *Cluster) NodeStateAt(id int) NodeState {
	if c.state == nil {
		return NodeUp
	}
	return c.state[id]
}

// NodeStateList returns a copy of every node's state, indexed by node id.
func (c *Cluster) NodeStateList() []NodeState {
	out := make([]NodeState, len(c.avail))
	copy(out, c.state) // nil state ⇒ all NodeUp (the zero value)
	return out
}

// LiveNodes returns the number of NodeUp nodes — the capacity the
// schedulability test may plan onto.
func (c *Cluster) LiveNodes() int {
	if c.state == nil {
		return len(c.avail)
	}
	live := 0
	for _, st := range c.state {
		if st == NodeUp {
			live++
		}
	}
	return live
}

// StateCounts returns how many nodes are up, draining and down.
func (c *Cluster) StateCounts() (up, draining, down int) {
	if c.state == nil {
		return len(c.avail), 0, 0
	}
	for _, st := range c.state {
		switch st {
		case NodeDraining:
			draining++
		case NodeDown:
			down++
		default:
			up++
		}
	}
	return up, draining, down
}

// EligibleInto appends the per-node placement eligibility (state == NodeUp)
// to dst[:0] and returns it — the hot-path companion of AvailInto.
func (c *Cluster) EligibleInto(dst []bool) []bool {
	dst = dst[:0]
	for id := range c.avail {
		dst = append(dst, c.state == nil || c.state[id] == NodeUp)
	}
	return dst
}

// AddNode grows the cluster by one node with the given cost coefficients,
// available from availFrom (clamped non-negative), and returns its id.
// Existing node ids, release times and accounting are untouched — the cost
// model is rebuilt with the new row appended, so partitioners reading
// per-node costs through PlanContext pick the node up on the next test.
func (c *Cluster) AddNode(nc dlt.NodeCost, availFrom float64) (int, error) {
	costs := append(c.costs.Costs(), nc)
	cm, err := dlt.NewCostModel(costs)
	if err != nil {
		return 0, err
	}
	if availFrom < 0 {
		availFrom = 0
	}
	c.costs = cm
	c.p = cm.Reference()
	id := len(c.avail)
	c.avail = append(c.avail, availFrom)
	c.busy = append(c.busy, 0)
	if c.state != nil {
		c.state = append(c.state, NodeUp)
	}
	c.version++
	return id, nil
}

// ensureState materialises the lazily-allocated state slice (nil means
// every node is NodeUp, which keeps the fixed-fleet fast paths untouched).
func (c *Cluster) ensureState() {
	if c.state == nil {
		c.state = make([]NodeState, len(c.avail))
	}
}
