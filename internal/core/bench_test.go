package core

import "testing"

func benchAvail(n int) []float64 {
	avail := make([]float64, n)
	for i := range avail {
		avail[i] = float64(i%4) * 400
	}
	return avail
}

func BenchmarkHetModel16(b *testing.B) {
	avail := benchAvail(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(baseline, 200, avail); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHetModel64(b *testing.B) {
	avail := benchAvail(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(baseline, 200, avail); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem4Check(b *testing.B) {
	m, err := New(baseline, 200, benchAvail(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.CheckTheorem4(); !ok {
			b.Fatal("theorem violated")
		}
	}
}
