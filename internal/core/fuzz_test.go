package core

import (
	"math"
	"testing"
)

// FuzzModelInvariants fuzzes the heterogeneous-model construction over a
// four-node availability vector: partition validity, Eq. 9 and Theorem 4
// must hold for any finite input the constructor accepts.
func FuzzModelInvariants(f *testing.F) {
	f.Add(200.0, 0.0, 100.0, 600.0, 1300.0)
	f.Add(1.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(55.5, 10.0, 10.0, 1e7, 1e7)
	f.Fuzz(func(t *testing.T, sigma, r1, r2, r3, r4 float64) {
		if !(sigma > 0) || sigma > 1e9 {
			t.Skip()
		}
		for _, r := range []float64{r1, r2, r3, r4} {
			if math.IsNaN(r) || math.IsInf(r, 0) || math.Abs(r) > 1e12 {
				t.Skip()
			}
		}
		m, err := New(baseline, sigma, []float64{r1, r2, r3, r4})
		if err != nil {
			t.Skip()
		}
		sum := 0.0
		for _, a := range m.Alphas() {
			if a < 0 || a > 1+1e-9 || math.IsNaN(a) {
				t.Fatalf("invalid alpha %v", a)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("alphas sum to %v", sum)
		}
		if !m.CheckEq9() {
			t.Fatalf("Eq. 9 violated: Ê=%v E=%v", m.ExecTime(), m.NoIITExecTime())
		}
		if _, ok := m.CheckTheorem4(); !ok {
			t.Fatalf("Theorem 4 violated")
		}
	})
}
