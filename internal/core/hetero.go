package core

import (
	"fmt"
	"math"
	"sort"

	"rtdls/internal/dlt"
)

// NewHetero constructs the availability-transformation model for a cluster
// that is *already* heterogeneous: processor i has its own linear cost
// coefficients costs[i] = (Cms_i, Cps_i) and becomes available at avail[i]
// (the two slices are parallel and are sorted together by available time).
//
// The construction generalises Eqs. 1–6 node by node. With
// E = E({costs}, σ) the optimal execution time when every node starts at
// r_n (dlt.HeteroExecTime), each processor's compute cost is inflated to
//
//	CpsI_i = E/(E + r_n − r_i) · Cps_i
//
// — exactly Eq. 1 applied to that node's own Cps_i — links keep their own
// Cms_i (Eq. 2), and the simultaneous-finish partition solves
//
//	X_i = CpsI_{i-1} / (Cms_i + CpsI_i),   α_i = Π X_j · α_1
//	Ê   = σ·Σ_j α_j·Cms_j + α_n·σ·CpsI_n
//
// which collapses to the homogeneous recurrence of computePartition when
// every Cms_i is equal. When every cost pair is equal this is the paper's
// original model up to floating-point association; callers that need
// bit-identical legacy behaviour for uniform costs use New instead (the
// rt-layer partitioners route uniform cost models there).
//
// The paper's Theorem 4 is proved for a common Cms; with per-node link
// costs the Ê bound is no longer guaranteed, so schedulers admit
// heterogeneous plans against the exact Dispatch timeline instead of
// EstCompletion. Ê remains exact for the model cluster itself (all model
// nodes finish simultaneously at Rn + Ê).
//
// Every accessor of the returned model is in processor order — sorted by
// available time, ties broken by input position; use Order to map results
// back to the caller's indexing.
func NewHetero(costs []dlt.NodeCost, sigma float64, avail []float64) (*Model, error) {
	n := len(avail)
	if n == 0 {
		return nil, fmt.Errorf("core: need at least one processor available time")
	}
	if len(costs) != n {
		return nil, fmt.Errorf("core: %d node costs for %d available times", len(costs), n)
	}
	for i, c := range costs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("core: costs[%d]: %w", i, err)
		}
	}
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("core: sigma must be positive and finite, got %v", sigma)
	}
	a := make([]float64, n)
	copy(a, avail)
	cs := make([]dlt.NodeCost, n)
	copy(cs, costs)
	for i, r := range a {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("core: avail[%d] = %v is not a finite time", i, r)
		}
	}
	// Sort (avail, cost) pairs together by available time, stably, so each
	// processor keeps its own coefficients.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return a[idx[x]] < a[idx[y]] })
	sa := make([]float64, n)
	sc := make([]dlt.NodeCost, n)
	for i, j := range idx {
		sa[i] = a[j]
		sc[i] = cs[j]
	}

	e, err := dlt.HeteroExecTime(sc, sigma)
	if err != nil {
		return nil, fmt.Errorf("core: no-IIT execution time: %w", err)
	}
	m := &Model{
		sigma: sigma,
		avail: sa,
		rn:    sa[n-1],
		e:     e,
		cpsI:  make([]float64, n),
		costs: sc,
		order: idx,
	}
	for i, ri := range sa {
		m.cpsI[i] = e / (e + m.rn - ri) * sc[i].Cps
	}
	m.computeHeteroPartition()
	return m, nil
}

// computeHeteroPartition evaluates the generalised recurrence over the
// per-node link costs and inflated compute costs.
func (m *Model) computeHeteroPartition() {
	n := len(m.avail)
	m.alphas = make([]float64, n)
	prod := 1.0
	sum := 0.0
	prods := make([]float64, n)
	prods[0] = 1
	for i := 1; i < n; i++ {
		x := m.cpsI[i-1] / (m.costs[i].Cms + m.cpsI[i])
		prod *= x
		prods[i] = prod
		sum += prod
	}
	a1 := 1 / (1 + sum)
	sendSum := 0.0
	for i := 0; i < n; i++ {
		m.alphas[i] = prods[i] * a1
		sendSum += m.alphas[i] * m.costs[i].Cms
	}
	m.exec = m.sigma*sendSum + m.alphas[n-1]*m.sigma*m.cpsI[n-1]
}

// Hetero reports whether the model was built over per-node cost
// coefficients (NewHetero) rather than the paper's single homogeneous pair.
func (m *Model) Hetero() bool { return m.costs != nil }

// NodeCosts returns the per-node cost coefficients in processor order
// (sorted by available time), or nil for a homogeneous model. The slice is
// shared with the model and must not be modified.
func (m *Model) NodeCosts() []dlt.NodeCost { return m.costs }

// Order maps each processor position back to the caller's input: every
// accessor (Avail, NodeCosts, CpsI, Alphas, the Dispatch timelines) is
// ordered by available time, and position i corresponds to index
// Order()[i] of the avail/costs slices passed to NewHetero. The stable
// sort breaks availability ties by input index. Order returns nil for
// homogeneous models, where all processors are interchangeable. The slice
// is shared with the model and must not be modified.
func (m *Model) Order() []int { return m.order }

// baseCms returns processor i's own link cost.
func (m *Model) baseCms(i int) float64 {
	if m.costs != nil {
		return m.costs[i].Cms
	}
	return m.p.Cms
}

// baseCps returns processor i's own compute cost before Eq. 1 inflation.
func (m *Model) baseCps(i int) float64 {
	if m.costs != nil {
		return m.costs[i].Cps
	}
	return m.p.Cps
}
