package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/dlt"
)

func uniformCostsSlice(p dlt.Params, n int) []dlt.NodeCost {
	cs := make([]dlt.NodeCost, n)
	for i := range cs {
		cs[i] = dlt.NodeCost{Cms: p.Cms, Cps: p.Cps}
	}
	return cs
}

func randomHeteroCosts(rng *rand.Rand, n int) []dlt.NodeCost {
	cs := make([]dlt.NodeCost, n)
	for i := range cs {
		cs[i] = dlt.NodeCost{
			Cms: math.Exp(rng.Float64()*3 - 1.5),
			Cps: math.Exp(rng.Float64()*3-1.5) * 80,
		}
	}
	return cs
}

// TestNewHeteroUniformMatchesLegacy: with every node cost equal, the
// generalised construction must agree with the paper's homogeneous model —
// same partition, execution time and completion estimate (up to
// floating-point association; the scalar path keeps its closed forms).
func TestNewHeteroUniformMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(10)
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = rng.Float64() * 2000
		}
		sigma := 1 + rng.Float64()*500
		legacy, err := New(baseline, sigma, avail)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := NewHetero(uniformCostsSlice(baseline, n), sigma, avail)
		if err != nil {
			t.Fatal(err)
		}
		if !gen.Hetero() || legacy.Hetero() {
			t.Fatalf("Hetero flags wrong: gen=%v legacy=%v", gen.Hetero(), legacy.Hetero())
		}
		relEq := func(a, b float64, what string) {
			t.Helper()
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b))) {
				t.Fatalf("%s differs: %v vs %v", what, a, b)
			}
		}
		relEq(gen.NoIITExecTime(), legacy.NoIITExecTime(), "E")
		relEq(gen.ExecTime(), legacy.ExecTime(), "Ê")
		relEq(gen.EstCompletion(), legacy.EstCompletion(), "estimate")
		for i := range legacy.Alphas() {
			relEq(gen.Alphas()[i], legacy.Alphas()[i], "alpha")
			relEq(gen.CpsI()[i], legacy.CpsI()[i], "CpsI")
		}
	}
}

// TestNewHeteroSortsPairs: avail times and costs must be permuted
// together, keeping each processor's own coefficients.
func TestNewHeteroSortsPairs(t *testing.T) {
	costs := []dlt.NodeCost{{Cms: 1, Cps: 100}, {Cms: 2, Cps: 50}, {Cms: 3, Cps: 400}}
	avail := []float64{500, 0, 250}
	m, err := NewHetero(costs, 100, avail)
	if err != nil {
		t.Fatal(err)
	}
	wantAvail := []float64{0, 250, 500}
	wantCosts := []dlt.NodeCost{{Cms: 2, Cps: 50}, {Cms: 3, Cps: 400}, {Cms: 1, Cps: 100}}
	wantOrder := []int{1, 2, 0}
	for i := range wantAvail {
		if m.Avail()[i] != wantAvail[i] {
			t.Fatalf("avail not sorted: %v", m.Avail())
		}
		if m.NodeCosts()[i] != wantCosts[i] {
			t.Fatalf("costs not permuted with avail: %v", m.NodeCosts())
		}
		if m.Order()[i] != wantOrder[i] {
			t.Fatalf("Order() = %v, want %v", m.Order(), wantOrder)
		}
	}

	// Availability ties break by input position (stable sort), so Order
	// stays recoverable even for identical times.
	m, err = NewHetero([]dlt.NodeCost{{Cms: 1, Cps: 100}, {Cms: 2, Cps: 50}}, 10, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Order()[0] != 0 || m.Order()[1] != 1 {
		t.Fatalf("tied avail times must keep input order: %v", m.Order())
	}
}

// TestNewHeteroInvariants: partition validity and the Eq. 9 analogue
// (inflating compute power never lengthens the optimal makespan) across
// random heterogeneous inputs; the exact dispatch must also run clean.
func TestNewHeteroInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(10)
		costs := randomHeteroCosts(rng, n)
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = rng.Float64() * 5000
		}
		sigma := 1 + rng.Float64()*400
		m, err := NewHetero(costs, sigma, avail)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, a := range m.Alphas() {
			if !(a > 0) || math.IsNaN(a) {
				t.Fatalf("invalid alpha %v", a)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("alphas sum to %v", sum)
		}
		if !m.CheckEq9() {
			t.Fatalf("Ê=%v exceeds E=%v", m.ExecTime(), m.NoIITExecTime())
		}
		if !m.CheckAssertion3() {
			t.Fatalf("Assertion 3 analogue violated")
		}
		if _, err := m.Dispatch(); err != nil {
			t.Fatalf("dispatch: %v", err)
		}
		// MakespanFor at the model's own partition equals Ê (all model
		// nodes finish together).
		if got := m.MakespanFor(m.Alphas()); math.Abs(got-m.ExecTime()) > 1e-6*math.Max(1, m.ExecTime()) {
			t.Fatalf("MakespanFor(alphas)=%v != Ê=%v", got, m.ExecTime())
		}
	}
}

// TestNewHeteroPerNodeCpsTheorem4: with a common Cms but per-node base
// Cps, the availability transformation inherits the paper's Theorem-4
// structure; the exact dispatch should not exceed the Ê-based estimate.
func TestNewHeteroPerNodeCpsTheorem4(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(8)
		costs := make([]dlt.NodeCost, n)
		for i := range costs {
			costs[i] = dlt.NodeCost{Cms: 1, Cps: 20 + rng.Float64()*300}
		}
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = rng.Float64() * 3000
		}
		m, err := NewHetero(costs, 1+rng.Float64()*300, avail)
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Dispatch()
		if err != nil {
			t.Fatal(err)
		}
		if d.Completion > m.EstCompletion()*(1+1e-9) {
			t.Fatalf("actual completion %v exceeds estimate %v (common-Cms case)",
				d.Completion, m.EstCompletion())
		}
	}
}

// TestNewHeteroDegenerate covers the degenerate inputs: a single free
// node, a zero-Cms link, identical available times.
func TestNewHeteroDegenerate(t *testing.T) {
	// One free node.
	m, err := NewHetero([]dlt.NodeCost{{Cms: 1, Cps: 100}}, 50, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Alphas()[0] != 1 {
		t.Fatalf("single node must take the whole load: %v", m.Alphas())
	}
	if got, want := m.EstCompletion(), 50*101.0; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("single-node estimate %v, want %v", got, want)
	}

	// Zero-Cms link in the set.
	m, err = NewHetero([]dlt.NodeCost{{Cms: 0, Cps: 100}, {Cms: 1, Cps: 100}}, 50, []float64{0, 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Dispatch(); err != nil {
		t.Fatal(err)
	}

	// Identical available times: the transformation degenerates to the
	// plain heterogeneous simultaneous-start partition (CpsI == Cps).
	costs := []dlt.NodeCost{{Cms: 1, Cps: 100}, {Cms: 2, Cps: 50}, {Cms: 1, Cps: 300}}
	m, err = NewHetero(costs, 80, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range costs {
		if math.Abs(m.CpsI()[i]-c.Cps) > 1e-12*c.Cps {
			t.Fatalf("equal avail times must not inflate: CpsI=%v", m.CpsI())
		}
	}
	e, err := dlt.HeteroExecTime(costs, 80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ExecTime()-e) > 1e-9*e {
		t.Fatalf("Ê=%v, want plain hetero E=%v", m.ExecTime(), e)
	}

	// Validation failures.
	if _, err := NewHetero(nil, 50, nil); err == nil {
		t.Fatalf("empty model must fail")
	}
	if _, err := NewHetero([]dlt.NodeCost{{Cms: 1, Cps: 100}}, 50, []float64{0, 1}); err == nil {
		t.Fatalf("length mismatch must fail")
	}
	if _, err := NewHetero([]dlt.NodeCost{{Cms: 1, Cps: 0}}, 50, []float64{0}); err == nil {
		t.Fatalf("invalid cost must fail")
	}
	if _, err := NewHetero([]dlt.NodeCost{{Cms: 1, Cps: 100}}, -1, []float64{0}); err == nil {
		t.Fatalf("negative sigma must fail")
	}
	if _, err := NewHetero([]dlt.NodeCost{{Cms: 1, Cps: 100}}, 50, []float64{math.NaN()}); err == nil {
		t.Fatalf("NaN avail must fail")
	}
}
