// Package core implements the primary contribution of Lin, Lu, Deogun and
// Goddard, "Real-Time Divisible Load Scheduling with Different Processor
// Available Times" (TR-UNL-CSE-2007-0013 / ICPP 2007): the transformation
// of a homogeneous cluster whose processors become available to a task at
// different times into an equivalent heterogeneous cluster in which all
// processors are allocated simultaneously, and the DLT analysis on that
// model — the load partition α (Eqs. 4–5), the execution-time estimate
// Ê(σ,n) (Eq. 6), the completion-time estimate r_n + Ê (Eq. 7), and the
// Theorem-4 guarantee that the actual completion in the homogeneous cluster
// never exceeds the estimate.
package core

import (
	"fmt"
	"math"
	"sort"

	"rtdls/internal/dlt"
)

// Model is the heterogeneous cluster model constructed for one task from
// the available times of the homogeneous processors assigned to it
// (Sec. 4.1.1 A of the paper). Processor i (0-based here; P_{i+1} in the
// paper) becomes available at Avail[i]; in the model all n processors are
// allocated at Rn = Avail[n-1] and processor i is given the inflated power
//
//	CpsI[i] = E/(E + Rn − Avail[i]) · Cps          (Eq. 1)
//
// where E = E(σ,n) is the no-IIT execution time on n nodes. Link speeds are
// unchanged (Eq. 2). A Model is immutable after construction.
type Model struct {
	p     dlt.Params
	sigma float64
	avail []float64 // sorted non-decreasing, len n ≥ 1
	rn    float64   // avail[n-1]
	e     float64   // E(σ,n): no-IIT execution time
	cpsI  []float64 // heterogeneous unit processing costs (Eq. 1)

	alphas []float64 // optimal partition on the model (Eqs. 4–5)
	exec   float64   // Ê(σ,n) (Eq. 6)

	// costs holds per-node base coefficients for models built over an
	// already-heterogeneous cluster (NewHetero); nil for the paper's
	// homogeneous construction, whose code paths are unchanged.
	costs []dlt.NodeCost
	// order maps each sorted processor position to its index in the
	// slices the caller passed to NewHetero; nil for homogeneous models.
	order []int
}

// New constructs the heterogeneous model for a task of data size sigma
// whose assigned homogeneous processors have the given available times.
// The avail slice is copied and sorted; it must be non-empty and free of
// NaN/Inf, and sigma must be positive and finite.
func New(p dlt.Params, sigma float64, avail []float64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("core: sigma must be positive and finite, got %v", sigma)
	}
	n := len(avail)
	if n == 0 {
		return nil, fmt.Errorf("core: need at least one processor available time")
	}
	a := make([]float64, n)
	copy(a, avail)
	for i, r := range a {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("core: avail[%d] = %v is not a finite time", i, r)
		}
	}
	sort.Float64s(a)

	m := &Model{
		p:     p,
		sigma: sigma,
		avail: a,
		rn:    a[n-1],
		e:     p.ExecTime(sigma, n),
		cpsI:  make([]float64, n),
	}
	for i, ri := range a {
		m.cpsI[i] = m.e / (m.e + m.rn - ri) * p.Cps
	}
	m.computePartition()
	return m, nil
}

// computePartition evaluates the recursion of Sec. 4.1.1 B:
//
//	X_i = Cps_{i-1} / (Cms + Cps_i)       for i = 2..n
//	α_1 = 1 / (1 + Σ_{i=2..n} Π_{j=2..i} X_j)
//	α_i = Π_{j=2..i} X_j · α_1
//	Ê   = σ·Cms + α_n·σ·Cps_n             (Eq. 6; Cps_n = Cps)
func (m *Model) computePartition() {
	n := len(m.avail)
	m.alphas = make([]float64, n)
	prod := 1.0 // Π_{j=2..i} X_j, running
	sum := 0.0  // Σ_{i=2..n} Π X_j
	prods := make([]float64, n)
	prods[0] = 1
	for i := 1; i < n; i++ {
		x := m.cpsI[i-1] / (m.p.Cms + m.cpsI[i])
		prod *= x
		prods[i] = prod
		sum += prod
	}
	a1 := 1 / (1 + sum)
	for i := 0; i < n; i++ {
		m.alphas[i] = prods[i] * a1
	}
	m.exec = m.sigma*m.p.Cms + m.alphas[n-1]*m.sigma*m.cpsI[n-1]
}

// N returns the number of processors in the model.
func (m *Model) N() int { return len(m.avail) }

// Sigma returns the task data size the model was built for.
func (m *Model) Sigma() float64 { return m.sigma }

// Params returns the homogeneous cluster cost parameters. For a model
// built with NewHetero it is the zero value; use NodeCosts instead.
func (m *Model) Params() dlt.Params { return m.p }

// Rn returns r_n, the latest processor available time — the instant at
// which all n heterogeneous nodes are considered allocated.
func (m *Model) Rn() float64 { return m.rn }

// NoIITExecTime returns E(σ,n), the execution time when the inserted idle
// times are not utilised (the [22] baseline and the E of Eq. 1).
func (m *Model) NoIITExecTime() float64 { return m.e }

// Avail returns the sorted processor available times. The returned slice
// is shared with the model and must not be modified.
func (m *Model) Avail() []float64 { return m.avail }

// CpsI returns the heterogeneous unit processing costs Cps_i of Eq. 1,
// in processor order. The slice is shared with the model and must not be
// modified. CpsI[n-1] always equals the last processor's own Cps; for the
// homogeneous construction the sequence is non-decreasing
// (earlier-available processors are modelled as more powerful).
func (m *Model) CpsI() []float64 { return m.cpsI }

// Alphas returns the data distribution vector α of Eqs. 4–5: Alphas()[i] is
// the fraction of the load assigned to the processor with the i-th earliest
// available time. Entries are positive and sum to 1 (up to rounding). The
// slice is shared with the model and must not be modified.
func (m *Model) Alphas() []float64 { return m.alphas }

// ExecTime returns Ê(σ,n) of Eq. 6, the execution time of the task in the
// heterogeneous model, measured from Rn. Eq. 9 guarantees
// ExecTime() ≤ NoIITExecTime().
func (m *Model) ExecTime() float64 { return m.exec }

// EstCompletion returns the completion-time estimate C(n) = Rn + Ê(σ,n)
// (Eq. 7). By Theorem 4, executing the α-partition on the homogeneous
// cluster at the original staggered available times completes no later than
// this estimate, so a scheduler may admit tasks against it.
func (m *Model) EstCompletion() float64 { return m.rn + m.exec }

// Dispatch simulates the actual sequential dispatch of the α-partition on
// the homogeneous cluster at the staggered available times, returning exact
// per-node send and finish times. Theorem 4 asserts
// Dispatch().Completion ≤ EstCompletion().
func (m *Model) Dispatch() (*dlt.Dispatch, error) {
	if m.costs != nil {
		return dlt.SimulateDispatchHetero(m.costs, m.sigma, m.avail, m.alphas)
	}
	return dlt.SimulateDispatch(m.p, m.sigma, m.avail, m.alphas)
}

// MakespanFor evaluates the heterogeneous model's execution time for an
// arbitrary load partition: all n nodes are allocated at Rn, chunks are
// transmitted sequentially in node order, and node i computes its chunk at
// unit cost CpsI[i]. The model's own Alphas() minimise this quantity (all
// nodes finish simultaneously — Eq. 3); MakespanFor lets tests and analyses
// verify that optimality directly. It panics if len(alphas) != N().
func (m *Model) MakespanFor(alphas []float64) float64 {
	if len(alphas) != len(m.avail) {
		panic(fmt.Sprintf("core: MakespanFor: %d alphas for %d nodes", len(alphas), len(m.avail)))
	}
	sendEnd := 0.0
	makespan := 0.0
	for i, a := range alphas {
		sendEnd += a * m.sigma * m.baseCms(i)
		finish := sendEnd + a*m.sigma*m.cpsI[i]
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}
