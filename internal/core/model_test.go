package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/dlt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s: got %v, want %v (rel tol %v)", msg, got, want, tol)
	}
}

// randModel builds a model from a random but valid configuration.
func randModel(rng *rand.Rand) *Model {
	p := dlt.Params{Cms: 0.05 + 8*rng.Float64(), Cps: 0.5 + 800*rng.Float64()}
	sigma := 0.5 + 900*rng.Float64()
	n := 1 + rng.IntN(32)
	avail := make([]float64, n)
	cur := 1000 * rng.Float64()
	for i := range avail {
		avail[i] = cur
		// Gaps between availability times, occasionally zero and
		// occasionally comparable to the whole execution time.
		cur += rng.Float64() * rng.Float64() * p.ExecTime(sigma, n)
	}
	m, err := New(p, sigma, avail)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		p     dlt.Params
		sigma float64
		avail []float64
	}{
		{"bad params", dlt.Params{}, 1, []float64{0}},
		{"zero sigma", baseline, 0, []float64{0}},
		{"negative sigma", baseline, -2, []float64{0}},
		{"NaN sigma", baseline, math.NaN(), []float64{0}},
		{"Inf sigma", baseline, math.Inf(1), []float64{0}},
		{"empty avail", baseline, 1, nil},
		{"NaN avail", baseline, 1, []float64{0, math.NaN()}},
		{"Inf avail", baseline, 1, []float64{math.Inf(1)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.p, c.sigma, c.avail); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}

func TestNewSortsAndCopies(t *testing.T) {
	avail := []float64{30, 10, 20}
	m, err := New(baseline, 100, avail)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30}
	for i, v := range m.Avail() {
		if v != want[i] {
			t.Fatalf("Avail()[%d] = %v, want %v", i, v, want[i])
		}
	}
	if avail[0] != 30 {
		t.Fatalf("caller slice mutated: %v", avail)
	}
	if m.Rn() != 30 {
		t.Fatalf("Rn = %v, want 30", m.Rn())
	}
}

func TestSingleNodeDegenerates(t *testing.T) {
	m, err := New(baseline, 200, []float64{42})
	if err != nil {
		t.Fatal(err)
	}
	// n=1: no parallelism, no IIT — Ê = E = σ(Cms+Cps).
	almostEq(t, m.ExecTime(), 200*101, 1e-12, "Ê(σ,1)")
	almostEq(t, m.NoIITExecTime(), 200*101, 1e-12, "E(σ,1)")
	almostEq(t, m.EstCompletion(), 42+200*101, 1e-12, "completion")
	if a := m.Alphas(); len(a) != 1 || math.Abs(a[0]-1) > 1e-12 {
		t.Fatalf("Alphas = %v, want [1]", a)
	}
}

func TestEqualAvailTimesReduceToHomogeneous(t *testing.T) {
	// When every node is available at the same instant there are no IITs,
	// so the heterogeneous model must coincide with the classic homogeneous
	// optimum: Cps_i = Cps, α = homogeneous α, Ê = E.
	for _, n := range []int{1, 2, 4, 16, 64} {
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = 7.5
		}
		m, err := New(baseline, 321, avail)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range m.CpsI() {
			almostEq(t, c, baseline.Cps, 1e-12, "CpsI homogeneous")
			_ = i
		}
		want := baseline.Alphas(n)
		for i, a := range m.Alphas() {
			almostEq(t, a, want[i], 1e-9, "alpha homogeneous")
		}
		almostEq(t, m.ExecTime(), m.NoIITExecTime(), 1e-9, "Ê == E")
	}
}

func TestCpsIStructure(t *testing.T) {
	m, err := New(baseline, 200, []float64{0, 100, 500, 1300})
	if err != nil {
		t.Fatal(err)
	}
	cps := m.CpsI()
	// Eq. 1: Cps_n = Cps exactly (the last node has no IIT).
	almostEq(t, cps[len(cps)-1], baseline.Cps, 1e-12, "Cps_n == Cps")
	for i, c := range cps {
		if c <= 0 || c > baseline.Cps*(1+1e-12) {
			t.Fatalf("CpsI[%d] = %v out of (0, Cps]", i, c)
		}
		if i > 0 && c < cps[i-1]-1e-12 {
			t.Fatalf("CpsI not non-decreasing at %d: %v < %v", i, c, cps[i-1])
		}
	}
	// Explicit Eq. 1 value for the first node.
	e := m.NoIITExecTime()
	almostEq(t, cps[0], e/(e+1300-0)*baseline.Cps, 1e-12, "Eq. 1 literal")
}

func TestAlphasArePartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 500; trial++ {
		m := randModel(rng)
		sum := 0.0
		for i, a := range m.Alphas() {
			if a <= 0 || a > 1+1e-12 {
				t.Fatalf("alpha[%d] = %v out of (0,1]", i, a)
			}
			sum += a
		}
		almostEq(t, sum, 1, 1e-9, "alphas sum to 1")
	}
}

// TestEq3Levels verifies the defining property of the partition (Eq. 3):
// every node of the heterogeneous model finishes at the same instant, i.e.
// for all i,  Σ_{j≤i} α_j·σ·Cms + α_i·σ·Cps_i == Ê.
func TestEq3Levels(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 300; trial++ {
		m := randModel(rng)
		alphas := m.Alphas()
		cps := m.CpsI()
		prefix := 0.0
		for i := range alphas {
			prefix += alphas[i] * m.Sigma() * m.Params().Cms
			level := prefix + alphas[i]*m.Sigma()*cps[i]
			almostEq(t, level, m.ExecTime(), 1e-7, "Eq. 3 level")
		}
	}
}

func TestEq9ExecAtMostNoIIT(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 1000; trial++ {
		m := randModel(rng)
		if !m.CheckEq9() {
			t.Fatalf("Eq. 9 violated: Ê=%v > E=%v (n=%d)", m.ExecTime(), m.NoIITExecTime(), m.N())
		}
	}
}

func TestEq9StrictWithIITs(t *testing.T) {
	// With a genuine IIT the estimate must strictly improve on E.
	m, err := New(baseline, 200, []float64{0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !(m.ExecTime() < m.NoIITExecTime()) {
		t.Fatalf("expected strict improvement: Ê=%v, E=%v", m.ExecTime(), m.NoIITExecTime())
	}
}

func TestAssertionsAndLemma(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	for trial := 0; trial < 1000; trial++ {
		m := randModel(rng)
		if !m.CheckAssertion1() {
			t.Fatalf("Assertion 1 violated: alphas=%v", m.Alphas())
		}
		if !m.CheckLemma2() {
			t.Fatalf("Lemma 2 violated (n=%d)", m.N())
		}
		if !m.CheckAssertion3() {
			t.Fatalf("Assertion 3 violated (n=%d)", m.N())
		}
	}
}

// TestTheorem4 is the paper's central result: the actual completion of the
// partitioned subtasks in the homogeneous cluster, with its staggered
// starts and sequential link, never exceeds the heterogeneous-model
// estimate r_n + Ê.
func TestTheorem4(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	for trial := 0; trial < 2000; trial++ {
		m := randModel(rng)
		slack, ok := m.CheckTheorem4()
		if !ok {
			d, _ := m.Dispatch()
			t.Fatalf("Theorem 4 violated: actual %v > est %v (n=%d, slack=%v)",
				d.Completion, m.EstCompletion(), m.N(), slack)
		}
	}
}

func TestTheorem4TightWhenNoIIT(t *testing.T) {
	// With equal availability the estimate is exact: slack == 0.
	avail := []float64{5, 5, 5, 5}
	m, err := New(baseline, 100, avail)
	if err != nil {
		t.Fatal(err)
	}
	slack, ok := m.CheckTheorem4()
	if !ok {
		t.Fatalf("theorem must hold")
	}
	almostEq(t, slack, 0, 1e-9, "estimate exact without IITs")
}

func TestDispatchStartsAtOwnAvailability(t *testing.T) {
	// The point of the construction: each node starts receiving data at (or
	// as soon after its own availability as the link allows), not at r_n.
	m, err := New(baseline, 200, []float64{0, 400, 800, 3000})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Dispatch()
	if err != nil {
		t.Fatal(err)
	}
	if d.SendStart[0] != 0 {
		t.Fatalf("first node should start immediately, got %v", d.SendStart[0])
	}
	if d.SendStart[1] >= m.Rn() {
		t.Fatalf("second node should start before r_n=%v, got %v", m.Rn(), d.SendStart[1])
	}
}

func TestAccessors(t *testing.T) {
	m, err := New(baseline, 200, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Sigma() != 200 {
		t.Fatalf("Sigma = %v", m.Sigma())
	}
	if m.Params() != baseline {
		t.Fatalf("Params = %+v", m.Params())
	}
	if m.EstCompletion() != m.Rn()+m.ExecTime() {
		t.Fatalf("EstCompletion inconsistent")
	}
}

// TestEstimateVsLargeGaps exercises numerically extreme IITs (gaps orders
// of magnitude beyond E) where Cps_i becomes very small.
func TestEstimateVsLargeGaps(t *testing.T) {
	m, err := New(baseline, 10, []float64{0, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !m.CheckEq9() {
		t.Fatalf("Eq. 9 must hold for extreme gaps")
	}
	if _, ok := m.CheckTheorem4(); !ok {
		t.Fatalf("Theorem 4 must hold for extreme gaps")
	}
	// The first node has an enormous IIT, so it should be handed almost all
	// of the load.
	if a := m.Alphas(); a[0] < 0.99 {
		t.Fatalf("expected node with huge IIT to take nearly all load, got α=%v", a)
	}
}
