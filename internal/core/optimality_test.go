package core

import (
	"math/rand/v2"
	"testing"
)

// TestMakespanForMatchesExecTime: evaluating the model's own partition
// reproduces Ê exactly.
func TestMakespanForMatchesExecTime(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for trial := 0; trial < 300; trial++ {
		m := randModel(rng)
		got := m.MakespanFor(m.Alphas())
		almostEq(t, got, m.ExecTime(), 1e-9, "MakespanFor(Alphas) == Ê")
	}
}

// TestPartitionIsOptimal is the deepest validation of Eqs. 4–5: the
// model's α vector minimises the heterogeneous-model makespan. Any
// perturbation that moves load between two nodes (keeping Σα = 1 and
// α ≥ 0) must not finish earlier.
func TestPartitionIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	for trial := 0; trial < 200; trial++ {
		m := randModel(rng)
		n := m.N()
		if n < 2 {
			continue
		}
		base := m.ExecTime()
		alphas := m.Alphas()
		for probe := 0; probe < 25; probe++ {
			i, j := rng.IntN(n), rng.IntN(n)
			if i == j {
				continue
			}
			eps := rng.Float64() * 0.5 * alphas[i]
			perturbed := make([]float64, n)
			copy(perturbed, alphas)
			perturbed[i] -= eps
			perturbed[j] += eps
			if got := m.MakespanFor(perturbed); got < base*(1-1e-9) {
				t.Fatalf("perturbation improved the optimum: %v < %v (n=%d, i=%d, j=%d, eps=%v)",
					got, base, n, i, j, eps)
			}
		}
	}
}

// TestUniformPartitionNeverBeatsOptimal: the User-Split equal partition
// evaluated on the same heterogeneous model is at best equal to the DLT
// optimum — the analytical root of the Fig. 5 results.
func TestUniformPartitionNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	for trial := 0; trial < 300; trial++ {
		m := randModel(rng)
		n := m.N()
		uniform := make([]float64, n)
		for i := range uniform {
			uniform[i] = 1 / float64(n)
		}
		if got := m.MakespanFor(uniform); got < m.ExecTime()*(1-1e-9) {
			t.Fatalf("uniform partition beat the optimum: %v < %v (n=%d)", got, m.ExecTime(), n)
		}
	}
}

func TestMakespanForPanics(t *testing.T) {
	m, err := New(baseline, 10, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on length mismatch")
		}
	}()
	m.MakespanFor([]float64{1})
}
