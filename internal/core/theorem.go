package core

import "math"

// This file exposes the paper's intermediate results (Assertion 1, Lemma 2,
// Assertion 3, Theorem 4) as checkable predicates. They are used by the
// property-based tests to validate the implementation against the paper's
// proofs, and by callers that want defence-in-depth verification of a
// schedule before committing it.

// relEps is the relative tolerance used when verifying the paper's
// inequalities under floating-point arithmetic.
const relEps = 1e-9

func leq(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return a <= b+relEps*scale
}

// CheckAssertion1 verifies α_i < α_1 for i = 2..n (Assertion 1): the
// earliest-available processor always receives the largest fraction.
func (m *Model) CheckAssertion1() bool {
	for i := 1; i < len(m.alphas); i++ {
		if !leq(m.alphas[i], m.alphas[0]) {
			return false
		}
	}
	return true
}

// CheckLemma2 verifies α_i < (Cps_1/Cps_i)·α_1 for i = 2..n (Lemma 2).
func (m *Model) CheckLemma2() bool {
	for i := 1; i < len(m.alphas); i++ {
		if !leq(m.alphas[i], m.cpsI[0]/m.cpsI[i]*m.alphas[0]) {
			return false
		}
	}
	return true
}

// CheckAssertion3 verifies r_n − r_i ≥ (Cps/Cps_i)·Ê − Ê (Assertion 3),
// with each node's own base Cps for heterogeneous models.
func (m *Model) CheckAssertion3() bool {
	for i, ri := range m.avail {
		lhs := m.rn - ri
		rhs := m.baseCps(i)/m.cpsI[i]*m.exec - m.exec
		if !leq(rhs, lhs) {
			return false
		}
	}
	return true
}

// CheckEq9 verifies Ê(σ,n) ≤ E(σ,n) (Eq. 9): utilising inserted idle times
// never increases the execution-time estimate.
func (m *Model) CheckEq9() bool {
	return leq(m.exec, m.e)
}

// CheckTheorem4 simulates the actual dispatch and verifies that every
// processor finishes no later than the estimated completion time
// (Theorem 4). It returns the worst observed slack
// (estimate − latest actual finish, ≥ 0 when the theorem holds).
func (m *Model) CheckTheorem4() (slack float64, ok bool) {
	d, err := m.Dispatch()
	if err != nil {
		return 0, false
	}
	est := m.EstCompletion()
	slack = est - d.Completion
	return slack, leq(d.Completion, est)
}
