package dlt

import "testing"

func BenchmarkExecTime(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += baseline.ExecTime(200, 16)
	}
	_ = sink
}

func BenchmarkAlphas16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = baseline.Alphas(16)
	}
}

func BenchmarkAlphas256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = baseline.Alphas(256)
	}
}

func BenchmarkMinNodesBound(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n, _ = MinNodesBound(baseline, 200, 2718)
	}
	_ = n
}

func BenchmarkSimulateDispatch16(b *testing.B) {
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = float64(i * 50)
	}
	alphas := baseline.Alphas(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDispatch(baseline, 200, avail, alphas); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUserSplitDispatch16(b *testing.B) {
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = float64(i * 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UserSplitDispatch(baseline, 200, avail); err != nil {
			b.Fatal(err)
		}
	}
}
