package dlt

import (
	"fmt"
	"math"

	"rtdls/internal/errs"
)

// Dispatch records the exact timeline of a single-round sequential dispatch
// of a partitioned divisible load: the head node sends chunk i to node i
// only after finishing the transmission to node i-1, and a chunk cannot be
// sent before its node is available. Node i computes its chunk immediately
// after receiving it.
//
// All slices are indexed by node position (the same order as the avail
// vector passed to SimulateDispatch, i.e. nodes sorted by available time).
type Dispatch struct {
	SendStart []float64 // b_i: when transmission of chunk i begins
	SendEnd   []float64 // f_i = b_i + αᵢ·σ·Cms: when node i has its data
	Finish    []float64 // f_i + αᵢ·σ·Cps: when node i finishes computing
	// Completion is the task completion time, max_i Finish[i].
	Completion float64
}

// SimulateDispatch computes the exact per-node timeline for distributing a
// load σ partitioned by alphas to nodes with the given available times.
//
// avail must be sorted in non-decreasing order (the transmission order is
// the node order, and the paper always transmits to the earliest-available
// node first). alphas must have the same length as avail, with non-negative
// entries; it need not sum to exactly 1 (callers may dispatch a fraction of
// a task, as the multi-round extension does).
//
// This is the machinery behind Theorem 4: the actual per-node finish times
// it returns are compared against the heterogeneous-model estimate.
func SimulateDispatch(p Params, sigma float64, avail, alphas []float64) (*Dispatch, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(avail)
	if n == 0 {
		return nil, fmt.Errorf("dlt: SimulateDispatch needs at least one node: %w", errs.ErrBadConfig)
	}
	if len(alphas) != n {
		return nil, fmt.Errorf("dlt: SimulateDispatch: %d avail times but %d alphas: %w", n, len(alphas), errs.ErrBadConfig)
	}
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("dlt: SimulateDispatch: invalid sigma %v: %w", sigma, errs.ErrBadConfig)
	}
	for i := 1; i < n; i++ {
		if avail[i] < avail[i-1] {
			return nil, fmt.Errorf("dlt: SimulateDispatch: avail times not sorted (avail[%d]=%v < avail[%d]=%v): %w",
				i, avail[i], i-1, avail[i-1], errs.ErrBadConfig)
		}
	}
	d := &Dispatch{
		SendStart:  make([]float64, n),
		SendEnd:    make([]float64, n),
		Finish:     make([]float64, n),
		Completion: math.Inf(-1), // max over finishes; times may be negative
	}
	linkFree := math.Inf(-1)
	for i := 0; i < n; i++ {
		if alphas[i] < 0 {
			return nil, fmt.Errorf("dlt: SimulateDispatch: negative alpha[%d]=%v: %w", i, alphas[i], errs.ErrBadConfig)
		}
		b := math.Max(avail[i], linkFree)
		send := alphas[i] * sigma * p.Cms
		comp := alphas[i] * sigma * p.Cps
		d.SendStart[i] = b
		d.SendEnd[i] = b + send
		d.Finish[i] = b + send + comp
		linkFree = d.SendEnd[i]
		if d.Finish[i] > d.Completion {
			d.Completion = d.Finish[i]
		}
	}
	return d, nil
}
