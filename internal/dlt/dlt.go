// Package dlt implements single-round divisible load theory (DLT) for a
// star-topology cluster: one head node that sequentially transmits data
// chunks over identical links to homogeneous processing nodes.
//
// Following the linear cost model of Veeravalli, Ghose and Robertazzi
// ("Divisible load theory: a new paradigm", Cluster Computing 2003), the
// transmission time of a load σ is σ·Cms and its computation time is σ·Cps.
// Output transfer is not modelled (the paper's applications return
// negligibly small results).
//
// The package provides the closed forms used by Lin et al. (TR-UNL-CSE-
// 2007-0013): the optimal single-round partition for simultaneously
// available nodes, the execution-time function E(σ,n), the ñ_min node-count
// bound, the User-Split analysis, and an exact simulator for the sequential
// dispatch of an arbitrary partition to nodes with arbitrary available
// times. Heterogeneous-model machinery specific to the paper's contribution
// lives in package core.
package dlt

import (
	"fmt"
	"math"

	"rtdls/internal/errs"
)

// Params holds the linear cost coefficients of the cluster.
//
// Cms is the time to transmit one unit of workload from the head node to a
// processing node; Cps is the time to process one unit of workload on a
// single processing node. Both must be positive and finite.
type Params struct {
	Cms float64 // unit transmission cost
	Cps float64 // unit processing cost
}

// Validate reports whether the parameters describe a usable cluster.
func (p Params) Validate() error {
	if !(p.Cms > 0) || math.IsInf(p.Cms, 0) {
		return fmt.Errorf("dlt: Cms must be positive and finite, got %v: %w", p.Cms, errs.ErrBadConfig)
	}
	if !(p.Cps > 0) || math.IsInf(p.Cps, 0) {
		return fmt.Errorf("dlt: Cps must be positive and finite, got %v: %w", p.Cps, errs.ErrBadConfig)
	}
	return nil
}

// Beta returns β = Cps/(Cms+Cps), the geometric ratio between consecutive
// chunk sizes in the optimal single-round partition (Eq. 8 of the paper).
// 0 < β < 1 for valid parameters.
func (p Params) Beta() float64 {
	return p.Cps / (p.Cms + p.Cps)
}

// UnitCost returns Cms+Cps, the time to ship and process one unit of load
// on a single node.
func (p Params) UnitCost() float64 {
	return p.Cms + p.Cps
}

// ExecTime returns E(σ,n), the optimal single-round execution time of a
// divisible load σ on n homogeneous nodes that all become available at the
// same instant:
//
//	E(σ,n) = (1-β)/(1-βⁿ) · σ·(Cms+Cps) = σ·Cms / (1-βⁿ)
//
// This is the no-IIT execution time from the authors' RTAS'07 paper [22],
// reused here both as the baseline (OPR) cost and as the E term of the
// heterogeneous model construction (Eq. 1). ExecTime panics if n < 1 or
// σ < 0; σ = 0 yields 0.
func (p Params) ExecTime(sigma float64, n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("dlt: ExecTime needs n >= 1, got %d", n))
	}
	if sigma < 0 {
		panic(fmt.Sprintf("dlt: ExecTime needs sigma >= 0, got %v", sigma))
	}
	beta := p.Beta()
	return sigma * p.Cms / (1 - math.Pow(beta, float64(n)))
}

// Alphas returns the optimal single-round data distribution vector for n
// simultaneously available homogeneous nodes: αᵢ = βⁱ⁻¹·(1-β)/(1-βⁿ).
// The entries are positive, strictly decreasing and sum to 1 (up to
// floating-point rounding). Alphas panics if n < 1.
func (p Params) Alphas(n int) []float64 {
	if n < 1 {
		panic(fmt.Sprintf("dlt: Alphas needs n >= 1, got %d", n))
	}
	beta := p.Beta()
	a := make([]float64, n)
	a[0] = (1 - beta) / (1 - math.Pow(beta, float64(n)))
	for i := 1; i < n; i++ {
		a[i] = a[i-1] * beta
	}
	return a
}

// EqualAlphas returns the User-Split distribution vector: n equal chunks.
// It panics if n < 1.
func EqualAlphas(n int) []float64 {
	if n < 1 {
		panic(fmt.Sprintf("dlt: EqualAlphas needs n >= 1, got %d", n))
	}
	a := make([]float64, n)
	for i := range a {
		a[i] = 1 / float64(n)
	}
	return a
}
