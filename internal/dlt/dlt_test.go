package dlt

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// baseline is the paper's baseline cluster configuration.
var baseline = Params{Cms: 1, Cps: 100}

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s: got %v, want %v (rel tol %v)", msg, got, want, tol)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"baseline", baseline, true},
		{"tiny", Params{Cms: 1e-9, Cps: 1e-9}, true},
		{"zero Cms", Params{Cms: 0, Cps: 1}, false},
		{"zero Cps", Params{Cms: 1, Cps: 0}, false},
		{"negative Cms", Params{Cms: -1, Cps: 1}, false},
		{"negative Cps", Params{Cms: 1, Cps: -2}, false},
		{"NaN Cms", Params{Cms: math.NaN(), Cps: 1}, false},
		{"NaN Cps", Params{Cms: 1, Cps: math.NaN()}, false},
		{"Inf Cms", Params{Cms: math.Inf(1), Cps: 1}, false},
		{"Inf Cps", Params{Cms: 1, Cps: math.Inf(1)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) error = %v, want ok=%v", c.p, err, c.ok)
			}
		})
	}
}

func TestBeta(t *testing.T) {
	almostEq(t, baseline.Beta(), 100.0/101.0, 1e-15, "beta baseline")
	almostEq(t, Params{Cms: 1, Cps: 1}.Beta(), 0.5, 1e-15, "beta symmetric")
	if b := baseline.Beta(); b <= 0 || b >= 1 {
		t.Fatalf("beta out of (0,1): %v", b)
	}
}

func TestUnitCost(t *testing.T) {
	almostEq(t, baseline.UnitCost(), 101, 1e-15, "unit cost")
}

func TestExecTimeSingleNode(t *testing.T) {
	// With one node there is no parallelism: E(σ,1) = σ(Cms+Cps).
	almostEq(t, baseline.ExecTime(200, 1), 200*101, 1e-12, "E(200,1)")
}

func TestExecTimeBaseline(t *testing.T) {
	// E(σ,n) = σ·Cms/(1-βⁿ); independently recompute via the α recursion:
	// the first chunk's send+compute time equals the whole execution time.
	for _, n := range []int{1, 2, 3, 4, 8, 16, 64, 256} {
		a := baseline.Alphas(n)
		want := a[0] * 200 * baseline.UnitCost()
		almostEq(t, baseline.ExecTime(200, n), want, 1e-10, "E vs alpha recursion")
	}
}

func TestExecTimeMonotonicInN(t *testing.T) {
	prev := math.Inf(1)
	for n := 1; n <= 128; n++ {
		e := baseline.ExecTime(200, n)
		if e >= prev {
			t.Fatalf("E(σ,n) not strictly decreasing at n=%d: %v >= %v", n, e, prev)
		}
		prev = e
	}
}

func TestExecTimeLinearInSigma(t *testing.T) {
	e1 := baseline.ExecTime(100, 16)
	e2 := baseline.ExecTime(200, 16)
	almostEq(t, e2, 2*e1, 1e-12, "E linear in sigma")
	if got := baseline.ExecTime(0, 16); got != 0 {
		t.Fatalf("E(0,n) = %v, want 0", got)
	}
}

func TestExecTimeLowerBoundedByCms(t *testing.T) {
	// Even with infinitely many nodes, the sequential transmission of the
	// whole input bounds E(σ,n) > σ·Cms.
	for _, n := range []int{1, 16, 1024} {
		if e := baseline.ExecTime(200, n); e <= 200*baseline.Cms {
			t.Fatalf("E(200,%d) = %v not > σCms = %v", n, e, 200*baseline.Cms)
		}
	}
}

func TestExecTimePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":        func() { baseline.ExecTime(1, 0) },
		"negative σ": func() { baseline.ExecTime(-1, 1) },
		"alphas n=0": func() { baseline.Alphas(0) },
		"equal n=0":  func() { EqualAlphas(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestAlphasProperties(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 100} {
		a := baseline.Alphas(n)
		if len(a) != n {
			t.Fatalf("len(Alphas(%d)) = %d", n, len(a))
		}
		sum := 0.0
		beta := baseline.Beta()
		for i, v := range a {
			if v <= 0 || v > 1 {
				t.Fatalf("alpha[%d] = %v out of (0,1]", i, v)
			}
			if i > 0 {
				almostEq(t, v/a[i-1], beta, 1e-12, "geometric ratio")
			}
			sum += v
		}
		almostEq(t, sum, 1, 1e-10, "alphas sum")
	}
}

func TestEqualAlphas(t *testing.T) {
	a := EqualAlphas(4)
	for i, v := range a {
		almostEq(t, v, 0.25, 1e-15, "equal alpha")
		_ = i
	}
}

func TestSimulateDispatchErrors(t *testing.T) {
	cases := []struct {
		name   string
		p      Params
		sigma  float64
		avail  []float64
		alphas []float64
	}{
		{"no nodes", baseline, 1, nil, nil},
		{"len mismatch", baseline, 1, []float64{0, 1}, []float64{1}},
		{"unsorted", baseline, 1, []float64{2, 1}, []float64{0.5, 0.5}},
		{"negative alpha", baseline, 1, []float64{0, 1}, []float64{1.5, -0.5}},
		{"negative sigma", baseline, -1, []float64{0}, []float64{1}},
		{"NaN sigma", baseline, math.NaN(), []float64{0}, []float64{1}},
		{"bad params", Params{}, 1, []float64{0}, []float64{1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := SimulateDispatch(c.p, c.sigma, c.avail, c.alphas); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}

func TestDispatchOptimalPartitionFinishesSimultaneously(t *testing.T) {
	// The defining property of the optimal single-round partition: with all
	// nodes available at the same instant, every node finishes at exactly
	// E(σ,n).
	const sigma = 200.0
	for _, n := range []int{1, 2, 4, 16} {
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = 50 // all available at t=50
		}
		d, err := SimulateDispatch(baseline, sigma, avail, baseline.Alphas(n))
		if err != nil {
			t.Fatal(err)
		}
		want := 50 + baseline.ExecTime(sigma, n)
		for i, f := range d.Finish {
			almostEq(t, f, want, 1e-10, "finish[i] simultaneous")
			_ = i
		}
		almostEq(t, d.Completion, want, 1e-10, "completion")
	}
}

func TestDispatchLinkSerialization(t *testing.T) {
	avail := []float64{0, 0, 0, 0}
	d, err := SimulateDispatch(baseline, 100, avail, EqualAlphas(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if d.SendStart[i] < d.SendEnd[i-1] {
			t.Fatalf("send %d started at %v before send %d ended at %v",
				i, d.SendStart[i], i-1, d.SendEnd[i-1])
		}
	}
	// With equal chunks and equal availability the link is saturated:
	// SendStart[i] == SendEnd[i-1].
	for i := 1; i < 4; i++ {
		almostEq(t, d.SendStart[i], d.SendEnd[i-1], 1e-12, "link saturated")
	}
}

func TestDispatchRespectsAvailability(t *testing.T) {
	avail := []float64{0, 1000, 2000}
	d, err := SimulateDispatch(baseline, 10, avail, EqualAlphas(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range avail {
		if d.SendStart[i] < avail[i] {
			t.Fatalf("node %d send started at %v before it was available at %v",
				i, d.SendStart[i], avail[i])
		}
	}
}

func TestDispatchZeroAlphaNode(t *testing.T) {
	// A node given no data finishes the moment its (empty) send completes.
	d, err := SimulateDispatch(baseline, 100, []float64{0, 5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, d.Finish[0], 100*baseline.UnitCost(), 1e-12, "loaded node")
	almostEq(t, d.Finish[1], math.Max(5, d.SendEnd[0]), 1e-12, "empty node")
}

func TestDispatchNegativeTimes(t *testing.T) {
	// Regression (found by FuzzModelInvariants): with all-negative
	// availability times the completion must still be the max finish, not
	// the zero value.
	d, err := SimulateDispatch(baseline, 1, []float64{-170, -77, -65, -48}, EqualAlphas(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Completion >= 0 {
		t.Fatalf("completion %v should be negative", d.Completion)
	}
	want := d.Finish[0]
	for _, f := range d.Finish {
		if f > want {
			want = f
		}
	}
	if d.Completion != want {
		t.Fatalf("completion %v != max finish %v", d.Completion, want)
	}
}

func TestUserSplitMatchesPaperRecurrence(t *testing.T) {
	// Cross-check UserSplitDispatch against a literal transcription of the
	// paper's Sec. 4.1.2 recurrence.
	p := baseline
	sigma := 137.0
	avail := []float64{3, 3, 90, 91, 400}
	n := len(avail)
	d, err := UserSplitDispatch(p, sigma, avail)
	if err != nil {
		t.Fatal(err)
	}
	chunkSend := sigma * p.Cms / float64(n)
	chunkComp := sigma * p.Cps / float64(n)
	s := make([]float64, n)
	s[0] = avail[0]
	for i := 1; i < n; i++ {
		s[i] = math.Max(avail[i], s[i-1]+chunkSend)
	}
	for i := 0; i < n; i++ {
		almostEq(t, d.SendStart[i], s[i], 1e-12, "send start recurrence")
		almostEq(t, d.Finish[i], s[i]+chunkSend+chunkComp, 1e-12, "finish recurrence")
	}
	almostEq(t, d.Completion, s[n-1]+chunkSend+chunkComp, 1e-12, "C = C_n")
}

func TestUserSplitCompletionIsLastNode(t *testing.T) {
	d, err := UserSplitDispatch(baseline, 55, []float64{0, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if d.Completion != d.Finish[len(d.Finish)-1] {
		t.Fatalf("user-split completion %v != last node finish %v",
			d.Completion, d.Finish[len(d.Finish)-1])
	}
}

func TestUserSplitMinNodes(t *testing.T) {
	// σ=200, D=2000: Nmin = ⌈200·100/(2000-200)⌉ = ⌈11.11⌉ = 12.
	n, ok := UserSplitMinNodes(baseline, 200, 2000)
	if !ok || n != 12 {
		t.Fatalf("got (%d,%v), want (12,true)", n, ok)
	}
	// Exactly integral quotient: σ=100, D=1100-? σCms=100, σCps=10000;
	// D=10100 → slack=10000 → 10000/10000 = 1 → Nmin=1.
	n, ok = UserSplitMinNodes(baseline, 100, 10100)
	if !ok || n != 1 {
		t.Fatalf("integral case: got (%d,%v), want (1,true)", n, ok)
	}
	// Deadline too tight for transmission alone.
	if _, ok := UserSplitMinNodes(baseline, 200, 200); ok {
		t.Fatalf("D == σCms should be infeasible")
	}
	if _, ok := UserSplitMinNodes(baseline, 200, 100); ok {
		t.Fatalf("D < σCms should be infeasible")
	}
	if _, ok := UserSplitMinNodes(baseline, 200, 0); ok {
		t.Fatalf("D = 0 should be infeasible")
	}
	if n, ok := UserSplitMinNodes(baseline, 0, 10); !ok || n != 1 {
		t.Fatalf("σ=0 should need 1 node, got (%d, %v)", n, ok)
	}
}

func TestUserSplitMinNodesSufficiency(t *testing.T) {
	// Starting immediately on an idle cluster with Nmin nodes must meet the
	// deadline: σCms + σCps/Nmin ≤ D.
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 500; trial++ {
		p := Params{Cms: 0.1 + 5*rng.Float64(), Cps: 1 + 500*rng.Float64()}
		sigma := 1 + 300*rng.Float64()
		d := sigma*p.Cms*(1+rng.Float64()) + sigma*p.Cps*rng.Float64()
		n, ok := UserSplitMinNodes(p, sigma, d)
		if !ok {
			continue
		}
		c := sigma*p.Cms + sigma*p.Cps/float64(n)
		if c > d*(1+1e-9) {
			t.Fatalf("Nmin=%d insufficient: completion %v > D %v (p=%+v σ=%v)", n, c, d, p, sigma)
		}
		// And Nmin is minimal: n-1 nodes must miss (when n > 1).
		if n > 1 {
			c := sigma*p.Cms + sigma*p.Cps/float64(n-1)
			if c <= d*(1-1e-9) {
				t.Fatalf("Nmin=%d not minimal: %d nodes already meet D (p=%+v σ=%v D=%v)", n, n-1, p, sigma, d)
			}
		}
	}
}

func TestMinNodesBoundKnownValues(t *testing.T) {
	// Baseline task: σ=200, slack=2718 (≈ 2·E(200,16)).
	n, ok := MinNodesBound(baseline, 200, 2718)
	if !ok {
		t.Fatalf("expected feasible")
	}
	// γ = 1-200/2718 = 0.92642..., β=100/101, ñ = ⌈ln γ/ln β⌉ = ⌈7.6786…⌉ = 8.
	if n != 8 {
		t.Fatalf("ñ_min = %d, want 8", n)
	}
}

func TestMinNodesBoundRejects(t *testing.T) {
	if _, ok := MinNodesBound(baseline, 200, 0); ok {
		t.Fatalf("slack=0 must be rejected")
	}
	if _, ok := MinNodesBound(baseline, 200, -5); ok {
		t.Fatalf("negative slack must be rejected")
	}
	// γ ≤ 0: slack ≤ σ·Cms.
	if _, ok := MinNodesBound(baseline, 200, 200); ok {
		t.Fatalf("slack = σCms must be rejected (γ=0)")
	}
	if _, ok := MinNodesBound(baseline, 200, 150); ok {
		t.Fatalf("slack < σCms must be rejected (γ<0)")
	}
	if _, ok := MinNodesBound(baseline, 200, math.NaN()); ok {
		t.Fatalf("NaN slack must be rejected")
	}
}

func TestMinNodesBoundHugeSlack(t *testing.T) {
	n, ok := MinNodesBound(baseline, 1e-9, 1e12)
	if !ok || n != 1 {
		t.Fatalf("huge slack should need one node, got (%d,%v)", n, ok)
	}
	if n, ok := MinNodesBound(baseline, 0, 10); !ok || n != 1 {
		t.Fatalf("σ=0 should need one node, got (%d,%v)", n, ok)
	}
}

// TestMinNodesBoundGuarantee is the load-bearing property: allocating ñ_min
// nodes with latest available time r_n (slack = deadline − r_n) satisfies
// E(σ,ñ_min) ≤ slack, hence the deadline is met even without using IITs.
func TestMinNodesBoundGuarantee(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(cmsU, cpsU, sigmaU, slackU uint32) bool {
		p := Params{
			Cms: 0.01 + float64(cmsU%10000)/100,   // (0.01, 100)
			Cps: 0.01 + float64(cpsU%1000000)/100, // (0.01, 10000)
		}
		sigma := 0.01 + float64(sigmaU%100000)/100
		slack := sigma*p.Cms*0.5 + float64(slackU%10000000)/10
		n, ok := MinNodesBound(p, sigma, slack)
		if !ok {
			// Must genuinely be infeasible: with unbounded nodes the best
			// possible time still exceeds the slack (E(σ,n) → σCms).
			return slack <= sigma*p.Cms
		}
		e := p.ExecTime(sigma, n)
		return e <= slack*(1+1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMinNodesBoundTightness: the bound should not be grossly loose — for
// n = ñ_min−1 the *bound's* inequality β^n ≤ γ must fail (that is what
// makes ñ_min the minimal integer satisfying the sufficient condition).
func TestMinNodesBoundTightness(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 1000; trial++ {
		p := Params{Cms: 0.1 + 3*rng.Float64(), Cps: 1 + 300*rng.Float64()}
		sigma := 1 + 500*rng.Float64()
		slack := sigma*p.Cms + sigma*p.Cps*rng.Float64()
		n, ok := MinNodesBound(p, sigma, slack)
		if !ok || n == 1 {
			continue
		}
		gamma := 1 - sigma*p.Cms/slack
		if math.Pow(p.Beta(), float64(n-1)) <= gamma*(1-1e-9) {
			t.Fatalf("ñ_min=%d not minimal: β^(n-1) already ≤ γ (p=%+v σ=%v slack=%v)",
				n, p, sigma, slack)
		}
	}
}

// TestDispatchCompletionMonotoneInAvail: delaying a node's availability can
// never finish the task earlier.
func TestDispatchCompletionMonotoneInAvail(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(12)
		avail := make([]float64, n)
		cur := 0.0
		for i := range avail {
			cur += 100 * rng.Float64()
			avail[i] = cur
		}
		alphas := EqualAlphas(n)
		d1, err := SimulateDispatch(baseline, 50, avail, alphas)
		if err != nil {
			t.Fatal(err)
		}
		avail[n-1] += 1 + 100*rng.Float64()
		d2, err := SimulateDispatch(baseline, 50, avail, alphas)
		if err != nil {
			t.Fatal(err)
		}
		if d2.Completion < d1.Completion-1e-9 {
			t.Fatalf("delaying a node improved completion: %v -> %v", d1.Completion, d2.Completion)
		}
	}
}
