package dlt

import (
	"math"
	"testing"
)

// FuzzMinNodesBound fuzzes the node-count bound: whenever it declares a
// task feasible, the no-IIT execution time on the returned node count must
// fit in the slack; whenever it rejects, the slack must genuinely be below
// the transmission floor.
func FuzzMinNodesBound(f *testing.F) {
	f.Add(1.0, 100.0, 200.0, 2718.0)
	f.Add(0.5, 10.0, 1.0, 5.0)
	f.Add(8.0, 10000.0, 800.0, 1e6)
	f.Add(0.001, 0.01, 0.1, 0.2)
	f.Fuzz(func(t *testing.T, cms, cps, sigma, slack float64) {
		p := Params{Cms: cms, Cps: cps}
		if p.Validate() != nil {
			t.Skip()
		}
		if !(sigma > 0) || !(slack > 0) || math.IsInf(sigma, 0) || math.IsInf(slack, 0) {
			t.Skip()
		}
		if sigma > 1e12 || slack > 1e15 || cms > 1e9 || cps > 1e9 {
			t.Skip() // keep the arithmetic in a range where fp guarantees hold
		}
		n, ok := MinNodesBound(p, sigma, slack)
		if !ok {
			if slack > sigma*p.Cms*(1+1e-9) {
				t.Fatalf("rejected although transmission fits: slack=%v σCms=%v", slack, sigma*p.Cms)
			}
			return
		}
		if n < 1 {
			t.Fatalf("non-positive node count %d", n)
		}
		if n > 1<<40 {
			return // astronomically tight; ExecTime would be degenerate
		}
		if e := p.ExecTime(sigma, n); e > slack*(1+1e-6) {
			t.Fatalf("bound unsound: E(σ,%d)=%v > slack=%v", n, e, slack)
		}
	})
}

// FuzzSimulateDispatch fuzzes the dispatch timeline invariants for a
// three-node cluster: link exclusivity, availability causality and the
// completion being the max finish.
func FuzzSimulateDispatch(f *testing.F) {
	f.Add(200.0, 0.0, 10.0, 500.0, 0.5, 0.3, 0.2)
	f.Add(1.0, 5.0, 5.0, 5.0, 1.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, sigma, a1, a2, a3, x1, x2, x3 float64) {
		if !(sigma >= 0) || sigma > 1e9 || math.IsInf(sigma, 0) {
			t.Skip()
		}
		for _, v := range []float64{a1, a2, a3, x1, x2, x3} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		if x1 < 0 || x2 < 0 || x3 < 0 {
			t.Skip()
		}
		avail := []float64{a1, a2, a3}
		if avail[1] < avail[0] || avail[2] < avail[1] {
			t.Skip()
		}
		alphas := []float64{x1, x2, x3}
		d, err := SimulateDispatch(baseline, sigma, avail, alphas)
		if err != nil {
			t.Skip()
		}
		for i := 0; i < 3; i++ {
			if d.SendStart[i] < avail[i] {
				t.Fatalf("send %d before availability", i)
			}
			if i > 0 && d.SendStart[i] < d.SendEnd[i-1]-1e-9 {
				t.Fatalf("link not exclusive at %d", i)
			}
			if d.Finish[i] > d.Completion+1e-9 {
				t.Fatalf("finish beyond completion")
			}
		}
	})
}
