package dlt

import (
	"fmt"
	"math"

	"rtdls/internal/errs"
)

// This file generalises the linear cost model from one scalar (Cms, Cps)
// pair shared by every node to per-node coefficients (Cms_i, Cps_i),
// following the heterogeneous star-network analyses of Gallet, Robert and
// Vivien ("Comments on 'Design and performance evaluation of load
// distribution strategies…'") and Wu, Cao and Robertazzi ("Optimal
// Divisible Load Scheduling for Resource-Sharing Network").
//
// The homogeneous formulas of dlt.go are the special case where every
// NodeCost is equal; CostModel detects that case so uniform cost models can
// be routed through the original closed forms, reproducing the legacy
// scheduler bit for bit.

// NodeCost holds one processing node's linear cost coefficients: Cms is the
// time to transmit one unit of load over that node's link, Cps the time to
// process one unit on that node. Cps must be positive and finite; Cms must
// be non-negative and finite (a zero Cms models an infinitely fast link,
// the degenerate end of the heterogeneity range).
type NodeCost struct {
	Cms float64
	Cps float64
}

// Validate reports whether the coefficients describe a usable node.
func (c NodeCost) Validate() error {
	if !(c.Cms >= 0) || math.IsInf(c.Cms, 0) {
		return fmt.Errorf("dlt: node Cms must be non-negative and finite, got %v: %w", c.Cms, errs.ErrBadConfig)
	}
	if !(c.Cps > 0) || math.IsInf(c.Cps, 0) {
		return fmt.Errorf("dlt: node Cps must be positive and finite, got %v: %w", c.Cps, errs.ErrBadConfig)
	}
	return nil
}

// Params converts the node's coefficients to a scalar Params value.
func (c NodeCost) Params() Params { return Params{Cms: c.Cms, Cps: c.Cps} }

// CostModel is an immutable per-node cost table for a cluster of N nodes,
// indexed by node id. A CostModel whose entries are all equal is "uniform":
// every consumer routes uniform models through the original homogeneous
// closed forms, so a uniform CostModel reproduces the scalar-Params code
// paths exactly.
type CostModel struct {
	costs   []NodeCost
	uniform bool
	fastest NodeCost // componentwise minima, precomputed so Fastest is O(1)
}

// NewCostModel builds a cost model from per-node coefficients (indexed by
// node id). The slice is copied; it must be non-empty and every entry must
// validate.
func NewCostModel(costs []NodeCost) (*CostModel, error) {
	if len(costs) == 0 {
		return nil, fmt.Errorf("dlt: cost model needs at least one node: %w", errs.ErrBadConfig)
	}
	cp := make([]NodeCost, len(costs))
	copy(cp, costs)
	uniform := true
	for i, c := range cp {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("dlt: cost model node %d: %w", i, err)
		}
		if c != cp[0] {
			uniform = false
		}
	}
	if uniform && !(cp[0].Cms > 0) {
		// The homogeneous closed forms require Cms > 0 (β < 1); keep a
		// uniform zero-Cms model on the general path instead.
		uniform = false
	}
	return &CostModel{costs: cp, uniform: uniform, fastest: minCost(cp)}, nil
}

// minCost returns the componentwise minima over the (non-empty) table.
func minCost(costs []NodeCost) NodeCost {
	f := costs[0]
	for _, c := range costs[1:] {
		f.Cms = math.Min(f.Cms, c.Cms)
		f.Cps = math.Min(f.Cps, c.Cps)
	}
	return f
}

// UniformCosts returns the cost model in which every one of the n nodes has
// the scalar coefficients p — the legacy homogeneous cluster.
func UniformCosts(p Params, n int) (*CostModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("dlt: cost model needs at least one node, got %d: %w", n, errs.ErrBadConfig)
	}
	costs := make([]NodeCost, n)
	for i := range costs {
		costs[i] = NodeCost{Cms: p.Cms, Cps: p.Cps}
	}
	return &CostModel{costs: costs, uniform: true, fastest: costs[0]}, nil
}

// N returns the number of nodes.
func (m *CostModel) N() int { return len(m.costs) }

// At returns node id's coefficients.
func (m *CostModel) At(id int) NodeCost { return m.costs[id] }

// Uniform reports whether every node has identical coefficients, i.e. the
// model is the legacy homogeneous cluster.
func (m *CostModel) Uniform() bool { return m.uniform }

// Reference returns the scalar Params consumers use as the model's
// normalisation anchor (workload calibration, ñ_min seeds): for a uniform
// model the shared coefficients themselves — bit-identical to the legacy
// scalars — and otherwise the arithmetic per-node means.
func (m *CostModel) Reference() Params {
	if m.uniform {
		return m.costs[0].Params()
	}
	var cms, cps float64
	for _, c := range m.costs {
		cms += c.Cms
		cps += c.Cps
	}
	n := float64(len(m.costs))
	return Params{Cms: cms / n, Cps: cps / n}
}

// Fastest returns the componentwise minima over all nodes — an "optimistic
// uniform cluster" at least as fast as any real subset, used for safe lower
// bounds such as HeteroMinNodesBound and the admission fast-reject. O(1):
// the minima are precomputed at construction.
func (m *CostModel) Fastest() NodeCost { return m.fastest }

// Select returns the coefficients of the given node ids, in id-slice order
// (the caller's dispatch order). The result is freshly allocated.
func (m *CostModel) Select(ids []int) []NodeCost {
	out := make([]NodeCost, len(ids))
	for i, id := range ids {
		out[i] = m.costs[id]
	}
	return out
}

// SimulateFor re-simulates the single-round dispatch of a plan that
// occupies the given node ids (in dispatch order, with parallel avail and
// alphas): the scalar fast path for uniform models — bit-identical to the
// legacy SimulateDispatch — and per-node costs otherwise. Both the driver
// and the independent verifier re-check committed plans through this one
// helper so their timelines cannot diverge.
func (m *CostModel) SimulateFor(ids []int, sigma float64, avail, alphas []float64) (*Dispatch, error) {
	if m.uniform {
		return SimulateDispatch(m.costs[0].Params(), sigma, avail, alphas)
	}
	return SimulateDispatchHetero(m.Select(ids), sigma, avail, alphas)
}

// Costs returns a copy of the full per-node table, indexed by node id.
func (m *CostModel) Costs() []NodeCost {
	out := make([]NodeCost, len(m.costs))
	copy(out, m.costs)
	return out
}

// validateCosts checks a dispatch-ordered coefficient slice.
func validateCosts(costs []NodeCost) error {
	if len(costs) == 0 {
		return fmt.Errorf("dlt: need at least one node cost: %w", errs.ErrBadConfig)
	}
	for i, c := range costs {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("dlt: costs[%d]: %w", i, err)
		}
	}
	return nil
}

// HeteroAlphas returns the optimal single-round partition for heterogeneous
// nodes that all become available simultaneously, dispatched sequentially
// in slice order. Equalising consecutive finish times gives the recurrence
//
//	α_{i+1} = α_i · Cps_i / (Cms_{i+1} + Cps_{i+1})
//
// whose homogeneous special case is the geometric αᵢ = βⁱ⁻¹·α₁ of
// Params.Alphas. Entries are positive and sum to 1 (up to rounding).
func HeteroAlphas(costs []NodeCost) ([]float64, error) {
	if err := validateCosts(costs); err != nil {
		return nil, err
	}
	n := len(costs)
	prods := make([]float64, n)
	prods[0] = 1
	prod, sum := 1.0, 0.0
	for i := 1; i < n; i++ {
		prod *= costs[i-1].Cps / (costs[i].Cms + costs[i].Cps)
		prods[i] = prod
		sum += prod
	}
	a1 := 1 / (1 + sum)
	for i := range prods {
		prods[i] *= a1
	}
	return prods, nil
}

// HeteroExecTime returns the optimal single-round execution time of a load
// σ on heterogeneous nodes that all become available at the same instant,
// dispatched sequentially in slice order — the generalisation of E(σ,n).
// Under the optimal partition every node finishes simultaneously, so the
// makespan is the first node's send-plus-compute time
//
//	E = α₁·σ·(Cms₁ + Cps₁)
//
// which for uniform costs reduces to σ·Cms/(1−βⁿ).
func HeteroExecTime(costs []NodeCost, sigma float64) (float64, error) {
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return 0, fmt.Errorf("dlt: HeteroExecTime needs sigma >= 0, got %v: %w", sigma, errs.ErrBadConfig)
	}
	alphas, err := HeteroAlphas(costs)
	if err != nil {
		return 0, err
	}
	return alphas[0] * sigma * (costs[0].Cms + costs[0].Cps), nil
}

// HeteroMinNodesBound returns a safe lower bound on the number of nodes a
// task with data size σ needs to finish within the slack on a cluster with
// the given cost model: the homogeneous ñ_min bound evaluated at the
// model's componentwise-fastest coefficients. Because every real node is at
// least as slow, the true requirement can only be larger, so partitioners
// use the bound as the starting point of their upward node-count search.
// ok=false means the task is infeasible even on the optimistic cluster —
// and hence on the real one.
func HeteroMinNodesBound(m *CostModel, sigma, slack float64) (n int, ok bool) {
	f := m.Fastest()
	if f.Cms <= 0 {
		// A free link breaks the closed-form bound (β = 1); transmission
		// costs nothing in the optimistic cluster, so a single node needs
		// only its compute time and the bound degenerates to feasibility of
		// the slack itself.
		if slack <= 0 || math.IsNaN(slack) {
			return 0, false
		}
		return 1, true
	}
	return MinNodesBound(f.Params(), sigma, slack)
}

// SimulateDispatchHetero computes the exact per-node timeline for
// sequentially distributing a load σ, partitioned by alphas, to
// heterogeneous nodes with the given available times. costs, avail and
// alphas are parallel, in dispatch order; avail must be sorted
// non-decreasing. It generalises SimulateDispatch, whose homogeneous loop
// it reproduces operation for operation when every cost is equal.
func SimulateDispatchHetero(costs []NodeCost, sigma float64, avail, alphas []float64) (*Dispatch, error) {
	if err := validateCosts(costs); err != nil {
		return nil, err
	}
	n := len(costs)
	if len(avail) != n || len(alphas) != n {
		return nil, fmt.Errorf("dlt: SimulateDispatchHetero: %d costs, %d avail times, %d alphas: %w",
			n, len(avail), len(alphas), errs.ErrBadConfig)
	}
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("dlt: SimulateDispatchHetero: invalid sigma %v: %w", sigma, errs.ErrBadConfig)
	}
	for i := 1; i < n; i++ {
		if avail[i] < avail[i-1] {
			return nil, fmt.Errorf("dlt: SimulateDispatchHetero: avail times not sorted (avail[%d]=%v < avail[%d]=%v): %w",
				i, avail[i], i-1, avail[i-1], errs.ErrBadConfig)
		}
	}
	d := &Dispatch{
		SendStart:  make([]float64, n),
		SendEnd:    make([]float64, n),
		Finish:     make([]float64, n),
		Completion: math.Inf(-1),
	}
	linkFree := math.Inf(-1)
	for i := 0; i < n; i++ {
		if alphas[i] < 0 {
			return nil, fmt.Errorf("dlt: SimulateDispatchHetero: negative alpha[%d]=%v: %w", i, alphas[i], errs.ErrBadConfig)
		}
		b := math.Max(avail[i], linkFree)
		send := alphas[i] * sigma * costs[i].Cms
		comp := alphas[i] * sigma * costs[i].Cps
		d.SendStart[i] = b
		d.SendEnd[i] = b + send
		d.Finish[i] = b + send + comp
		linkFree = d.SendEnd[i]
		if d.Finish[i] > d.Completion {
			d.Completion = d.Finish[i]
		}
	}
	return d, nil
}
