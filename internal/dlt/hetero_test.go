package dlt

import (
	"math"
	"math/rand/v2"
	"testing"
)

// uniformCostsSlice returns n copies of the scalar pair p.
func uniformCostsSlice(p Params, n int) []NodeCost {
	cs := make([]NodeCost, n)
	for i := range cs {
		cs[i] = NodeCost{Cms: p.Cms, Cps: p.Cps}
	}
	return cs
}

func randomCosts(rng *rand.Rand, n int) []NodeCost {
	cs := make([]NodeCost, n)
	for i := range cs {
		cs[i] = NodeCost{
			Cms: math.Exp(rng.Float64()*4 - 2),    // ~[0.14, 7.4]
			Cps: math.Exp(rng.Float64()*4-2) * 50, // ~[7, 370]
		}
	}
	return cs
}

func TestNodeCostValidate(t *testing.T) {
	cases := []struct {
		name string
		c    NodeCost
		ok   bool
	}{
		{"baseline", NodeCost{Cms: 1, Cps: 100}, true},
		{"zero Cms (free link)", NodeCost{Cms: 0, Cps: 100}, true},
		{"zero Cps", NodeCost{Cms: 1, Cps: 0}, false},
		{"negative Cms", NodeCost{Cms: -1, Cps: 1}, false},
		{"NaN Cps", NodeCost{Cms: 1, Cps: math.NaN()}, false},
		{"inf Cms", NodeCost{Cms: math.Inf(1), Cps: 1}, false},
	}
	for _, c := range cases {
		if err := c.c.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCostModelUniformDetection(t *testing.T) {
	cm, err := UniformCosts(baseline, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !cm.Uniform() {
		t.Fatalf("UniformCosts model must report Uniform")
	}
	if got := cm.Reference(); got != baseline {
		t.Fatalf("uniform Reference = %v, want the exact scalar pair %v", got, baseline)
	}

	cm2, err := NewCostModel(uniformCostsSlice(baseline, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !cm2.Uniform() {
		t.Fatalf("NewCostModel over equal entries must report Uniform")
	}
	if got := cm2.Reference(); got != baseline {
		t.Fatalf("Reference = %v, want bit-identical %v", got, baseline)
	}

	costs := uniformCostsSlice(baseline, 5)
	costs[3].Cps = 200
	cm3, err := NewCostModel(costs)
	if err != nil {
		t.Fatal(err)
	}
	if cm3.Uniform() {
		t.Fatalf("non-equal entries must not report Uniform")
	}

	// A uniform zero-Cms table cannot use the homogeneous closed forms
	// (β would be 1) and must stay on the general path.
	cm4, err := NewCostModel(uniformCostsSlice(Params{Cms: 0, Cps: 100}, 3))
	if err == nil && cm4.Uniform() {
		t.Fatalf("uniform zero-Cms model must not claim the closed-form path")
	}
}

func TestCostModelSelectAndFastest(t *testing.T) {
	costs := []NodeCost{{1, 100}, {2, 50}, {0.5, 400}, {3, 10}}
	cm, err := NewCostModel(costs)
	if err != nil {
		t.Fatal(err)
	}
	sel := cm.Select([]int{3, 0})
	if sel[0] != costs[3] || sel[1] != costs[0] {
		t.Fatalf("Select order broken: %v", sel)
	}
	if f := cm.Fastest(); f != (NodeCost{Cms: 0.5, Cps: 10}) {
		t.Fatalf("Fastest = %v, want componentwise minima", f)
	}
	ref := cm.Reference()
	almostEq(t, ref.Cms, (1+2+0.5+3)/4, 1e-12, "reference Cms")
	almostEq(t, ref.Cps, (100+50+400+10)/4, 1e-12, "reference Cps")
}

// TestHeteroAlphasUniformMatchesClosedForm checks the homogeneous special
// case: the generalised recurrence must reproduce the geometric closed
// form of Params.Alphas.
func TestHeteroAlphasUniformMatchesClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16, 64} {
		want := baseline.Alphas(n)
		got, err := HeteroAlphas(uniformCostsSlice(baseline, n))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			almostEq(t, got[i], want[i], 1e-12, "alpha")
		}
		e, err := HeteroExecTime(uniformCostsSlice(baseline, n), 200)
		if err != nil {
			t.Fatal(err)
		}
		almostEq(t, e, baseline.ExecTime(200, n), 1e-12, "exec time")
	}
}

// TestHeteroAlphasSimultaneousFinish verifies the defining property of the
// optimal partition: dispatched to simultaneously available nodes, every
// node finishes at the same instant, and that instant is HeteroExecTime.
func TestHeteroAlphasSimultaneousFinish(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(12)
		costs := randomCosts(rng, n)
		sigma := math.Exp(rng.Float64()*6 - 1)
		alphas, err := HeteroAlphas(costs)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, a := range alphas {
			if !(a > 0) {
				t.Fatalf("non-positive alpha %v", a)
			}
			sum += a
		}
		almostEq(t, sum, 1, 1e-9, "alphas sum")

		d, err := SimulateDispatchHetero(costs, sigma, make([]float64, n), alphas)
		if err != nil {
			t.Fatal(err)
		}
		e, err := HeteroExecTime(costs, sigma)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range d.Finish {
			almostEq(t, f, e, 1e-9, "finish time of node "+itoa(i))
		}
	}
}

// TestHeteroAlphasOptimality perturbs the partition: moving load between
// two nodes must never lower the makespan below the optimum.
func TestHeteroAlphasOptimality(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(8)
		costs := randomCosts(rng, n)
		sigma := 100.0
		alphas, err := HeteroAlphas(costs)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := HeteroExecTime(costs, sigma)
		if err != nil {
			t.Fatal(err)
		}
		i, j := rng.IntN(n), rng.IntN(n)
		if i == j {
			continue
		}
		eps := alphas[i] * 0.1
		pert := append([]float64(nil), alphas...)
		pert[i] -= eps
		pert[j] += eps
		d, err := SimulateDispatchHetero(costs, sigma, make([]float64, n), pert)
		if err != nil {
			t.Fatal(err)
		}
		if d.Completion < opt*(1-1e-9) {
			t.Fatalf("perturbed makespan %v beats optimum %v", d.Completion, opt)
		}
	}
}

// TestSimulateDispatchHeteroUniformBitIdentical checks that the
// heterogeneous simulator with a uniform cost table reproduces the
// homogeneous simulator exactly — the same floating-point operations in
// the same order.
func TestSimulateDispatchHeteroUniformBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 23))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(10)
		avail := make([]float64, n)
		acc := 0.0
		for i := range avail {
			acc += rng.Float64() * 100
			avail[i] = acc
		}
		alphas := make([]float64, n)
		for i := range alphas {
			alphas[i] = rng.Float64()
		}
		sigma := rng.Float64() * 500
		want, err := SimulateDispatch(baseline, sigma, avail, alphas)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateDispatchHetero(uniformCostsSlice(baseline, n), sigma, avail, alphas)
		if err != nil {
			t.Fatal(err)
		}
		if got.Completion != want.Completion {
			t.Fatalf("completion differs: %v vs %v", got.Completion, want.Completion)
		}
		for i := 0; i < n; i++ {
			if got.SendStart[i] != want.SendStart[i] || got.SendEnd[i] != want.SendEnd[i] || got.Finish[i] != want.Finish[i] {
				t.Fatalf("node %d timeline differs: %+v vs %+v", i, got, want)
			}
		}
	}
}

// TestHeteroMinNodesBoundSound checks the bound's two guarantees: when it
// reports infeasible the task is infeasible on any subset (the optimistic
// uniform cluster is at least as fast), and the returned count never
// exceeds the count at which the optimistic cluster itself fits the slack.
func TestHeteroMinNodesBoundSound(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(16)
		costs := randomCosts(rng, n)
		cm, err := NewCostModel(costs)
		if err != nil {
			t.Fatal(err)
		}
		sigma := math.Exp(rng.Float64() * 5)
		slack := math.Exp(rng.Float64() * 9)
		b, ok := HeteroMinNodesBound(cm, sigma, slack)
		fast := cm.Fastest().Params()
		if !ok {
			// Infeasible even with the fastest coefficients: the pure
			// transmission floor must exceed the slack.
			if slack > sigma*fast.Cms*(1+1e-9) {
				t.Fatalf("rejected although optimistic transmission fits: slack=%v σCms=%v", slack, sigma*fast.Cms)
			}
			continue
		}
		if b < 1 {
			t.Fatalf("bound %d < 1", b)
		}
		if b > 1<<32 {
			continue
		}
		if e := fast.ExecTime(sigma, b); e > slack*(1+1e-6) {
			t.Fatalf("optimistic E(σ,%d)=%v exceeds slack %v", b, e, slack)
		}
		// The real heterogeneous cluster is at least as slow as the
		// optimistic one: any real subset of fewer than b nodes must also
		// exceed the slack whenever the optimistic cluster does at b−1.
		if b > 1 && b-1 <= n {
			if eOpt := fast.ExecTime(sigma, b-1); eOpt <= slack {
				t.Fatalf("bound not minimal for the optimistic cluster: E(σ,%d)=%v fits slack %v", b-1, eOpt, slack)
			}
		}
	}
}

// TestHeteroExecTimeDominatesOptimistic: the real mixed-speed cluster can
// never beat the uniform cluster built from its componentwise-fastest
// coefficients — the fact HeteroMinNodesBound relies on.
func TestHeteroExecTimeDominatesOptimistic(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(10)
		costs := randomCosts(rng, n)
		cm, err := NewCostModel(costs)
		if err != nil {
			t.Fatal(err)
		}
		sigma := 100.0
		e, err := HeteroExecTime(costs, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if eOpt := cm.Fastest().Params().ExecTime(sigma, n); e < eOpt*(1-1e-9) {
			t.Fatalf("hetero E=%v beats optimistic uniform E=%v", e, eOpt)
		}
	}
}

// TestHeteroDegenerateNodes covers the degenerate ends of the
// heterogeneity range: a single node, a free link (Cms = 0) and a
// near-zero-bandwidth link (astronomical Cms).
func TestHeteroDegenerateNodes(t *testing.T) {
	// One node: the whole load, exec = σ(Cms+Cps).
	one := []NodeCost{{Cms: 2, Cps: 30}}
	alphas, err := HeteroAlphas(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(alphas) != 1 || alphas[0] != 1 {
		t.Fatalf("single-node partition = %v, want [1]", alphas)
	}
	e, err := HeteroExecTime(one, 10)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, e, 10*(2+30), 1e-12, "single-node exec")

	// Free link: valid partition, node 0 receives instantly.
	free := []NodeCost{{Cms: 0, Cps: 100}, {Cms: 1, Cps: 100}, {Cms: 2, Cps: 50}}
	alphas, err = HeteroAlphas(free)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range alphas {
		if !(a > 0) {
			t.Fatalf("free-link partition has non-positive alpha: %v", alphas)
		}
		sum += a
	}
	almostEq(t, sum, 1, 1e-9, "free-link alphas sum")
	d, err := SimulateDispatchHetero(free, 50, []float64{0, 0, 0}, alphas)
	if err != nil {
		t.Fatal(err)
	}
	if d.SendEnd[0] != d.SendStart[0] {
		t.Fatalf("free link must transmit instantly: send [%v, %v]", d.SendStart[0], d.SendEnd[0])
	}

	// Near-zero bandwidth: the stalled link starves everything behind it,
	// and the optimal partition responds by starving the slow node.
	choked := []NodeCost{{Cms: 1, Cps: 100}, {Cms: 1e9, Cps: 100}, {Cms: 1, Cps: 100}}
	alphas, err = HeteroAlphas(choked)
	if err != nil {
		t.Fatal(err)
	}
	if alphas[1] >= alphas[0]*1e-3 {
		t.Fatalf("choked node should receive a vanishing share: %v", alphas)
	}
	if _, err := SimulateDispatchHetero(choked, 50, []float64{0, 0, 0}, alphas); err != nil {
		t.Fatal(err)
	}
}

// FuzzHeteroAlphas fuzzes the generalised partition over three nodes:
// validity, the simultaneous-finish property and agreement between
// HeteroExecTime and the simulated makespan.
func FuzzHeteroAlphas(f *testing.F) {
	f.Add(1.0, 100.0, 2.0, 50.0, 0.5, 400.0, 200.0)
	f.Add(0.0, 10.0, 1.0, 10.0, 1.0, 10.0, 1.0)
	f.Fuzz(func(t *testing.T, cms1, cps1, cms2, cps2, cms3, cps3, sigma float64) {
		costs := []NodeCost{{cms1, cps1}, {cms2, cps2}, {cms3, cps3}}
		for _, c := range costs {
			if c.Validate() != nil {
				t.Skip()
			}
			if c.Cms > 1e9 || c.Cps > 1e9 || c.Cps < 1e-9 {
				t.Skip()
			}
		}
		if !(sigma > 0) || sigma > 1e9 {
			t.Skip()
		}
		alphas, err := HeteroAlphas(costs)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, a := range alphas {
			if math.IsNaN(a) || a < 0 {
				t.Fatalf("invalid alpha %v", a)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("alphas sum to %v", sum)
		}
		e, err := HeteroExecTime(costs, sigma)
		if err != nil {
			t.Fatal(err)
		}
		d, err := SimulateDispatchHetero(costs, sigma, []float64{0, 0, 0}, alphas)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Completion-e) > 1e-6*math.Max(1, e) {
			t.Fatalf("simulated makespan %v != closed-form %v", d.Completion, e)
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
