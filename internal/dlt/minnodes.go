package dlt

import "math"

// ceilGuard absorbs floating-point noise before a Ceil so that values that
// are mathematically integral do not round up to the next integer.
const ceilGuard = 1e-12

// MinNodesBound returns ñ_min = ⌈ln γ / ln β⌉ (Sec. 4.1.1 B of the paper),
// the upper bound on the minimum number of nodes required for a task with
// data size σ to finish within the given slack when its n nodes' latest
// available time is r_n, where
//
//	slack = A + D − r_n,   β = Cps/(Cms+Cps),   γ = 1 − σ·Cms/slack.
//
// Allocating at least ñ_min nodes whose latest available time is r_n
// guarantees r_n + E(σ,ñ_min) ≤ A+D, and hence (by Eq. 9, Ê ≤ E) also
// r_n + Ê ≤ A+D for the heterogeneous-model partition.
//
// ok is false when the task must be rejected: slack ≤ 0 (the deadline
// precedes the start) or γ ≤ 0 (not enough time even for the sequential
// transmission of the input data, σ·Cms ≥ slack).
func MinNodesBound(p Params, sigma, slack float64) (n int, ok bool) {
	if slack <= 0 || math.IsNaN(slack) {
		return 0, false
	}
	if sigma <= 0 {
		return 1, true
	}
	gamma := 1 - sigma*p.Cms/slack
	if gamma <= 0 {
		return 0, false
	}
	beta := p.Beta()
	// 0 < β < 1 and 0 < γ; γ ≥ 1 means even one node has slack to spare.
	if gamma >= 1 {
		return 1, true
	}
	x := math.Log(gamma) / math.Log(beta)
	n = int(math.Ceil(x - ceilGuard))
	if n < 1 {
		n = 1
	}
	return n, true
}
