package dlt

import (
	"fmt"
	"math"
	"sort"

	"rtdls/internal/errs"
)

// The paper's system model ships only input data, because its target
// applications return a negligibly small result, and notes that "the
// extension to consider the transfer of output data using DLT is
// straightforward" (Sec. 3). This file provides that extension at the
// model level: result collection over the same sequential head-node link.

// OutputDispatch extends Dispatch with the result-collection phase.
type OutputDispatch struct {
	Dispatch
	// ResultStart and ResultEnd bracket each node's result transfer back
	// to the head node, indexed like the input slices.
	ResultStart []float64
	ResultEnd   []float64
	// OutputCompletion is when the last result reaches the head node; it
	// replaces Dispatch.Completion as the task completion time.
	OutputCompletion float64
}

// SimulateDispatchWithOutput models a single-round dispatch where node i
// additionally returns a result of size delta·αᵢ·σ (delta = output/input
// ratio, ≥ 0). Input chunks are transmitted exactly as in SimulateDispatch;
// results are collected over the same link, which is shared: a result
// transfer can start only when the node has finished computing, all input
// transmissions are done (input has absolute priority — it keeps the
// computation pipeline busy), and the link is free. Ready results are
// collected in compute-completion order.
//
// With delta = 0 the timeline reduces exactly to SimulateDispatch.
func SimulateDispatchWithOutput(p Params, sigma, delta float64, avail, alphas []float64) (*OutputDispatch, error) {
	if delta < 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("dlt: output ratio delta must be finite and >= 0, got %v: %w", delta, errs.ErrBadConfig)
	}
	d, err := SimulateDispatch(p, sigma, avail, alphas)
	if err != nil {
		return nil, err
	}
	n := len(avail)
	od := &OutputDispatch{
		Dispatch:    *d,
		ResultStart: make([]float64, n),
		ResultEnd:   make([]float64, n),
	}
	// The link is busy with input until the last SendEnd.
	linkFree := d.SendEnd[n-1]
	// Collect results in compute-completion order (stable on index).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return d.Finish[order[a]] < d.Finish[order[b]]
	})
	for _, i := range order {
		start := math.Max(d.Finish[i], linkFree)
		end := start + delta*alphas[i]*sigma*p.Cms
		od.ResultStart[i] = start
		od.ResultEnd[i] = end
		linkFree = end
		if end > od.OutputCompletion {
			od.OutputCompletion = end
		}
	}
	return od, nil
}

// OutputAwareExecTimeBound returns a safe upper bound on the completion of
// a single-round dispatch with result collection: the input-only
// completion plus the full serialised result traffic δ·σ·Cms. It bounds
// SimulateDispatchWithOutput's OutputCompletion for any partition, because
// the link can always drain all results within δ·σ·Cms once the last node
// finishes.
func OutputAwareExecTimeBound(inputCompletion float64, p Params, sigma, delta float64) float64 {
	return inputCompletion + delta*sigma*p.Cms
}
