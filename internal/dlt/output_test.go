package dlt

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestOutputZeroDeltaReducesToDispatch(t *testing.T) {
	avail := []float64{0, 10, 300}
	alphas := baseline.Alphas(3)
	od, err := SimulateDispatchWithOutput(baseline, 150, 0, avail, alphas)
	if err != nil {
		t.Fatal(err)
	}
	d, err := SimulateDispatch(baseline, 150, avail, alphas)
	if err != nil {
		t.Fatal(err)
	}
	if od.OutputCompletion != d.Completion {
		t.Fatalf("δ=0 completion %v != input-only %v", od.OutputCompletion, d.Completion)
	}
	for i := range avail {
		if od.ResultStart[i] != od.ResultEnd[i] {
			t.Fatalf("δ=0 result transfer must be instantaneous")
		}
	}
}

func TestOutputDeltaValidation(t *testing.T) {
	avail := []float64{0}
	alphas := []float64{1}
	for _, delta := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := SimulateDispatchWithOutput(baseline, 1, delta, avail, alphas); err == nil {
			t.Fatalf("delta %v must be rejected", delta)
		}
	}
}

func TestOutputMonotoneInDelta(t *testing.T) {
	avail := []float64{0, 50, 200, 900}
	alphas := baseline.Alphas(4)
	prev := 0.0
	for _, delta := range []float64{0, 0.05, 0.2, 0.5, 1, 2} {
		od, err := SimulateDispatchWithOutput(baseline, 120, delta, avail, alphas)
		if err != nil {
			t.Fatal(err)
		}
		if od.OutputCompletion < prev {
			t.Fatalf("completion not monotone in δ at %v", delta)
		}
		prev = od.OutputCompletion
	}
}

func TestOutputLinkExclusive(t *testing.T) {
	// Result transfers must not overlap each other nor the input phase.
	avail := []float64{0, 0, 0, 0}
	alphas := baseline.Alphas(4)
	od, err := SimulateDispatchWithOutput(baseline, 200, 0.3, avail, alphas)
	if err != nil {
		t.Fatal(err)
	}
	inputEnd := od.SendEnd[len(od.SendEnd)-1]
	type iv struct{ s, e float64 }
	var ivs []iv
	for i := range avail {
		if od.ResultStart[i] < inputEnd-1e-9 {
			t.Fatalf("result %d started at %v during input phase ending %v",
				i, od.ResultStart[i], inputEnd)
		}
		if od.ResultStart[i] < od.Finish[i]-1e-9 {
			t.Fatalf("result %d sent before compute finished", i)
		}
		ivs = append(ivs, iv{od.ResultStart[i], od.ResultEnd[i]})
	}
	for a := range ivs {
		for b := range ivs {
			if a == b {
				continue
			}
			if ivs[a].s < ivs[b].e-1e-9 && ivs[b].s < ivs[a].e-1e-9 &&
				ivs[a].e-ivs[a].s > 1e-12 && ivs[b].e-ivs[b].s > 1e-12 {
				t.Fatalf("result transfers overlap: %v and %v", ivs[a], ivs[b])
			}
		}
	}
}

func TestOutputBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.IntN(12)
		avail := make([]float64, n)
		cur := 0.0
		for i := range avail {
			cur += 300 * rng.Float64()
			avail[i] = cur
		}
		sigma := 1 + 300*rng.Float64()
		delta := 2 * rng.Float64()
		alphas := baseline.Alphas(n)
		od, err := SimulateDispatchWithOutput(baseline, sigma, delta, avail, alphas)
		if err != nil {
			t.Fatal(err)
		}
		bound := OutputAwareExecTimeBound(od.Completion, baseline, sigma, delta)
		if od.OutputCompletion > bound*(1+1e-9) {
			t.Fatalf("output completion %v exceeds bound %v (n=%d δ=%v)",
				od.OutputCompletion, bound, n, delta)
		}
		if od.OutputCompletion < od.Completion-1e-9 {
			t.Fatalf("output completion %v below input completion %v",
				od.OutputCompletion, od.Completion)
		}
	}
}

func BenchmarkSimulateDispatchWithOutput16(b *testing.B) {
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = float64(i * 40)
	}
	alphas := baseline.Alphas(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDispatchWithOutput(baseline, 200, 0.2, avail, alphas); err != nil {
			b.Fatal(err)
		}
	}
}
