package dlt

import (
	"fmt"
	"math"

	"rtdls/internal/errs"
)

// UserSplitDispatch computes the exact completion timeline of the
// User-Split partitioning method (Sec. 4.1.2 of the paper): the task is
// split into n = len(avail) equal chunks, one per node, dispatched
// sequentially in order of node availability. It is equivalent to
// SimulateDispatch with EqualAlphas and matches the paper's recurrence
//
//	s₁ = r₁,  sᵢ = max(rᵢ, sᵢ₋₁ + σ·Cms/n)
//	Cᵢ = sᵢ + σ·Cms/n + σ·Cps/n,  C = Cₙ
//
// exactly (the send start sᵢ here is Dispatch.SendStart[i]).
func UserSplitDispatch(p Params, sigma float64, avail []float64) (*Dispatch, error) {
	if len(avail) == 0 {
		return nil, fmt.Errorf("dlt: UserSplitDispatch needs at least one node: %w", errs.ErrBadConfig)
	}
	return SimulateDispatch(p, sigma, avail, EqualAlphas(len(avail)))
}

// UserSplitMinNodes returns Nmin = ⌈σ·Cps / (D − σ·Cms)⌉, the minimum
// number of equal chunks that lets a task with data size σ and relative
// deadline D meet its deadline when started immediately upon arrival on an
// otherwise idle cluster (Sec. 4.1.2). ok is false when the deadline cannot
// be met by any number of nodes, i.e. when D ≤ σ·Cms (the input data alone
// cannot be shipped in time).
func UserSplitMinNodes(p Params, sigma, relDeadline float64) (n int, ok bool) {
	if sigma < 0 || relDeadline <= 0 {
		return 0, false
	}
	if sigma == 0 {
		return 1, true
	}
	slack := relDeadline - sigma*p.Cms
	if slack <= 0 {
		return 0, false
	}
	x := sigma * p.Cps / slack
	n = int(math.Ceil(x - ceilGuard))
	if n < 1 {
		n = 1
	}
	return n, true
}
