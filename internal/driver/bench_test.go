package driver

import "testing"

// BenchmarkRun measures one full end-to-end simulation (arrivals,
// schedulability tests, commits, metrics) at the baseline configuration
// and 1e5 time units per algorithm.
func BenchmarkRun(b *testing.B) {
	for _, alg := range Algorithms() {
		b.Run(alg, func(b *testing.B) {
			cfg := Default()
			cfg.Algorithm = alg
			cfg.SystemLoad = 0.8
			cfg.Horizon = 1e5
			cfg.Seed = 9
			var arrivals int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				arrivals = r.Arrivals
			}
			b.StopTimer()
			b.ReportMetric(float64(arrivals), "tasks/run")
		})
	}
}
