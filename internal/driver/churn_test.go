package driver

import (
	"reflect"
	"testing"

	"rtdls/internal/fleet"
)

// churnCfg is a moderately loaded run with a fail/restore cycle in the
// middle of the arrival window.
func churnCfg(schedule string, shards int) Config {
	cfg := Default()
	cfg.SystemLoad = 0.9
	cfg.Horizon = 2e5
	cfg.Seed = 7
	if shards > 0 {
		cfg.N = 8
		cfg.Shards = shards
	}
	sch, err := fleet.ParseSchedule(schedule)
	if err != nil {
		panic(err)
	}
	cfg.Churn = sch
	return cfg
}

// TestChurnAccountingIdentity: under churn the driver's internal check is
// the relaxed identity committed + displaced − readmitted == accepted;
// this exercises it at the API surface for both engines and pins the
// hard-real-time side condition LateCommits == 0.
func TestChurnAccountingIdentity(t *testing.T) {
	for _, shards := range []int{0, 4} {
		res, err := Run(churnCfg("t=40000 fail n3; t=90000 drain n5; t=140000 restore n3; t=160000 restore n5", shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Arrivals == 0 {
			t.Fatalf("shards=%d: no arrivals", shards)
		}
		if res.Committed+res.Displaced-res.Readmitted != res.Accepted {
			t.Fatalf("shards=%d: %d committed + %d displaced - %d readmitted != %d accepted",
				shards, res.Committed, res.Displaced, res.Readmitted, res.Accepted)
		}
		if res.LateCommits != 0 {
			t.Fatalf("shards=%d: %d late commits — churn must displace, never break deadlines", shards, res.LateCommits)
		}
		if tol := 1e-6 * res.Span; res.MaxLateness > tol {
			t.Fatalf("shards=%d: max lateness %v under churn", shards, res.MaxLateness)
		}
	}
}

// TestChurnDisplacesUnderLoad: failing half an 8-node cluster at 90%
// load must actually unseat waiting work — otherwise the churn path is
// dead code in this test suite.
func TestChurnDisplacesUnderLoad(t *testing.T) {
	cfg := churnCfg("t=50000 fail n0; t=50000 fail n1; t=50000 fail n2; t=50000 fail n3; t=150000 restore n0; t=150000 restore n1; t=150000 restore n2; t=150000 restore n3", 0)
	cfg.N = 8
	cfg.SystemLoad = 1.5
	cfg.DCRatio = 12 // slack deadlines keep a waiting queue for the failure to hit
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced == 0 {
		t.Fatalf("no displacements: %+v", res)
	}
	// A single cluster has nowhere to re-seat displaced work.
	if res.Readmitted != 0 {
		t.Fatalf("readmitted = %d on a single cluster", res.Readmitted)
	}
}

// TestChurnPoolReadmits: on a sharded pool a failed shard's displaced
// tasks go back through placement, so some must land on a live shard.
func TestChurnPoolReadmits(t *testing.T) {
	cfg := churnCfg("t=50000 fail n0; t=50000 fail n1; t=50000 fail n2; t=50000 fail n3; "+
		"t=50000 fail n4; t=50000 fail n5; t=50000 fail n6; t=50000 fail n7", 4)
	cfg.SystemLoad = 1.5
	cfg.DCRatio = 12 // slack deadlines keep per-shard waiting queues for the failure to hit
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced == 0 {
		t.Fatalf("failing a whole shard displaced nothing: %+v", res)
	}
	if res.Readmitted == 0 {
		t.Fatalf("pool re-admitted nothing of %d displaced: %+v", res.Displaced, res)
	}
	if res.Readmitted > res.Displaced {
		t.Fatalf("readmitted %d > displaced %d", res.Readmitted, res.Displaced)
	}
}

// TestChurnReproducible: a churn schedule runs on the simulated clock, so
// the same seed and schedule must reproduce the run bit for bit.
func TestChurnReproducible(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := churnCfg("t=40000 fail n3; t=140000 restore n3", shards)
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: churn run not reproducible:\n%+v\n%+v", shards, a, b)
		}
	}
}

// TestChurnBadNode: a schedule naming a node outside the fleet must fail
// the run with a typed error, not corrupt it.
func TestChurnBadNode(t *testing.T) {
	if _, err := Run(churnCfg("t=1000 fail n99", 0)); err == nil {
		t.Fatal("out-of-range churn node must fail the run")
	}
	if _, err := Run(churnCfg("t=1000 fail n99", 4)); err == nil {
		t.Fatal("out-of-range churn node must fail the pool run")
	}
}

// TestNoChurnFieldsZero: without churn the new Result fields stay zero and
// the classic strict identity holds (Committed == Accepted).
func TestNoChurnFieldsZero(t *testing.T) {
	res, err := Run(quickCfg(AlgDLTIIT, 0.7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced != 0 || res.Readmitted != 0 || res.LateCommits != 0 {
		t.Fatalf("churn fields nonzero without churn: %+v", res)
	}
	if res.Committed != res.Accepted {
		t.Fatalf("strict identity broken without churn: %+v", res)
	}
}
