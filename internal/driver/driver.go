// Package driver replays a synthetic workload through the admission
// service: a workload generator feeds arrivals into a service.Service bound
// to a SimClock, the discrete-event engine sequences arrivals and commit
// instants, and the run's admission and execution metrics are collected
// into a Result. Run is deliberately a thin adapter — the schedulability
// test, commit processing and metric accumulation all live in the service,
// so the simulated engine is the same one a deployment drives under
// wall-clock time.
package driver

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/fleet"
	"rtdls/internal/multiround"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
	"rtdls/internal/sim"
	"rtdls/internal/workload"
)

// Algorithm names accepted by Config.Algorithm.
const (
	AlgDLTIIT    = "dlt-iit"    // this paper: DLT partitioning utilising IITs
	AlgOPRMN     = "opr-mn"     // [22] baseline: optimal partition, min nodes, no IITs
	AlgOPRAN     = "opr-an"     // [22]: always all N nodes
	AlgUserSplit = "user-split" // manual equal split, user-chosen node count
	AlgDLTMR     = "dlt-mr"     // multi-round extension of dlt-iit (paper §6)
)

// Algorithms lists every supported algorithm name.
func Algorithms() []string {
	return []string{AlgDLTIIT, AlgOPRMN, AlgOPRAN, AlgUserSplit, AlgDLTMR}
}

// Config fully specifies one simulation run. The zero value is not usable;
// see Default for the paper's baseline.
type Config struct {
	N          int     // processing nodes
	Cms        float64 // unit transmission cost (reference when heterogeneous)
	Cps        float64 // unit processing cost (reference when heterogeneous)
	Policy     string  // "edf" or "fifo"
	Algorithm  string  // one of the Alg* constants
	SystemLoad float64
	AvgSigma   float64
	DCRatio    float64
	Horizon    float64 // arrival window; the run drains remaining work after it
	Seed       uint64
	Rounds     int // dispatch rounds for AlgDLTMR (default 2)

	// NodeCosts optionally gives every node its own cost coefficients
	// (len must equal N). A uniform table reproduces the scalar Cms/Cps
	// run bit for bit; a non-uniform one switches every partitioner to the
	// heterogeneous path. When set, the workload is calibrated against the
	// table's reference (mean) coefficients instead of Cms/Cps.
	NodeCosts []dlt.NodeCost

	// CmsSpread and CpsSpread, when > 1 and NodeCosts is empty, generate a
	// deterministic per-node cost table around (Cms, Cps): each node's
	// coefficient is drawn log-uniformly from [x/√s, x·√s], preserving the
	// geometric mean. The workload stays calibrated against the scalar
	// Cms/Cps so a spread sweep holds the offered load constant. 0 or 1
	// leaves the corresponding coefficient homogeneous.
	CmsSpread float64
	CpsSpread float64
	// HeteroSeed seeds the spread draw (independent of the workload Seed,
	// so paired-seed runs share one cluster).
	HeteroSeed uint64

	// Shards splits the fleet into K independent clusters fronted by the
	// Placement routing layer (see internal/pool). 0 or unset runs the
	// classic single cluster; any shard option — including Shards=1 —
	// routes through the pool engine instead. The workload's arrival rate
	// scales with the pool's aggregate capacity so SystemLoad keeps its
	// meaning (see runPool).
	Shards int

	// Placement routes each arrival to a shard; nil defaults to round
	// robin. Parse names with pool.ParsePlacement.
	Placement pool.Placement

	// ShardNodes optionally sizes each shard individually (len fixes the
	// shard count); unset shards copy N.
	ShardNodes []int

	// ShardNodeCosts optionally gives every shard its own explicit
	// per-node cost table (len fixes the shard count); it overrides
	// ShardNodes and the spread draw.
	ShardNodeCosts [][]dlt.NodeCost

	// Churn optionally scripts node drain/fail/restore operations into the
	// run (parse with fleet.ParseSchedule). Offsets are simulation time
	// units; each op fires as a discrete event at sim.PrioDefault — after
	// commits due at that instant, before arrivals at it — so a churn run
	// is exactly as reproducible as a churn-free one. Tasks displaced by a
	// capacity loss keep their accept in the counters but never commit,
	// which relaxes the run invariant to
	// Committed + Displaced - Readmitted == Accepted.
	Churn fleet.Schedule

	Observer rt.Observer // optional lifecycle hooks
}

// Default returns the paper's baseline configuration (Sec. 5.1): N=16,
// Cms=1, Cps=100, Avgσ=200, DCRatio=2, EDF-DLT, horizon 10⁷.
func Default() Config {
	return Config{
		N: 16, Cms: 1, Cps: 100,
		Policy: "edf", Algorithm: AlgDLTIIT,
		SystemLoad: 0.5, AvgSigma: 200, DCRatio: 2,
		Horizon: 1e7, Seed: 1,
	}
}

// Params returns the scalar reference cost parameters.
func (c Config) Params() dlt.Params { return dlt.Params{Cms: c.Cms, Cps: c.Cps} }

// CostModel resolves the per-node cost table the run executes against:
// NodeCosts verbatim when given, a spread-generated table when CmsSpread
// or CpsSpread exceeds 1, and the uniform scalar model otherwise.
func (c Config) CostModel() (*dlt.CostModel, error) {
	for _, s := range []float64{c.CmsSpread, c.CpsSpread} {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return nil, fmt.Errorf("driver: invalid cost spread %v: %w", s, errs.ErrBadConfig)
		}
	}
	if len(c.NodeCosts) > 0 {
		if len(c.NodeCosts) != c.N {
			return nil, fmt.Errorf("driver: %d node costs for N=%d nodes: %w", len(c.NodeCosts), c.N, errs.ErrBadConfig)
		}
		return dlt.NewCostModel(c.NodeCosts)
	}
	if c.CmsSpread > 1 || c.CpsSpread > 1 {
		costs, err := SpreadCosts(c.N, c.Params(), c.CmsSpread, c.CpsSpread, c.HeteroSeed)
		if err != nil {
			return nil, err
		}
		return dlt.NewCostModel(costs)
	}
	return dlt.UniformCosts(c.Params(), c.N)
}

// SpreadCosts generates a deterministic heterogeneous cost table around
// the scalar reference p: node i's Cms is drawn log-uniformly from
// [Cms/√s, Cms·√s] with s = cmsSpread (likewise Cps with cpsSpread), so
// the per-node geometric mean stays at the reference. A spread ≤ 1 leaves
// that coefficient at its reference value; the same seed always yields the
// same table.
func SpreadCosts(n int, p dlt.Params, cmsSpread, cpsSpread float64, seed uint64) ([]dlt.NodeCost, error) {
	if n < 1 {
		return nil, fmt.Errorf("driver: SpreadCosts needs n >= 1, got %d: %w", n, errs.ErrBadConfig)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, s := range []float64{cmsSpread, cpsSpread} {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return nil, fmt.Errorf("driver: invalid spread %v: %w", s, errs.ErrBadConfig)
		}
	}
	rng := rand.New(rand.NewPCG(seed^0xa076_1d64_78bd_642f, seed+0xe703_7ed1_a0b4_28db))
	costs := make([]dlt.NodeCost, n)
	draw := func(ref, spread float64) float64 {
		if spread <= 1 {
			return ref
		}
		// log-uniform over [ref/√spread, ref·√spread]
		u := rng.Float64() - 0.5
		return ref * math.Exp(u*math.Log(spread))
	}
	for i := range costs {
		costs[i] = dlt.NodeCost{
			Cms: draw(p.Cms, cmsSpread),
			Cps: draw(p.Cps, cpsSpread),
		}
	}
	return costs, nil
}

// NewPartitioner constructs the rt.Partitioner named by the configuration.
func (c Config) NewPartitioner() (rt.Partitioner, error) {
	switch c.Algorithm {
	case AlgDLTIIT:
		return rt.IITDLT{}, nil
	case AlgOPRMN:
		return rt.OPR{}, nil
	case AlgOPRAN:
		return rt.OPR{AllNodes: true}, nil
	case AlgUserSplit:
		return rt.UserSplit{}, nil
	case AlgDLTMR:
		r := c.Rounds
		if r == 0 {
			r = 2
		}
		return multiround.New(r)
	default:
		return nil, fmt.Errorf("driver: unknown algorithm %q (want one of %v): %w", c.Algorithm, Algorithms(), errs.ErrBadConfig)
	}
}

// Result aggregates one run's metrics.
type Result struct {
	Config Config

	Arrivals int
	Accepted int
	Rejected int
	// RejectRatio = Rejected/Arrivals, the paper's evaluation metric.
	RejectRatio float64

	Committed int
	// MeanResponse is the mean actual completion − arrival over committed
	// tasks; MeanNodes the mean assigned node count.
	MeanResponse float64
	MeanNodes    float64
	// MaxLateness is max(actual completion − absolute deadline) over
	// committed tasks. The real-time guarantee requires it to be ≤ 0.
	MaxLateness float64
	// MeanEstSlack is the mean (estimate − actual completion): how
	// conservative the Theorem-4 estimate was in practice.
	MeanEstSlack float64

	Utilization      float64 // busy node·time / (N × span)
	ReservedIdleFrac float64 // wasted IIT node·time / (N × span), OPR only
	MaxQueueLen      int
	Span             float64 // max(horizon, last committed release)

	// Shards is the number of clusters the run executed on (1 = the
	// classic single cluster). The remaining fields are populated only for
	// pool runs: Placement names the routing layer, Spillovers counts
	// accepted tasks that needed at least one spillover retry, and
	// ShardRejectRatios is each shard's own reject ratio (a spilled-over
	// task counts at every shard that refused it).
	Shards            int       `json:",omitempty"`
	Placement         string    `json:",omitempty"`
	Spillovers        int       `json:",omitempty"`
	ShardRejectRatios []float64 `json:",omitempty"`

	// Fleet-churn accounting, populated only when Config.Churn is set:
	// Displaced counts accepted tasks that lost their seat to a node
	// drain/fail, Readmitted how many of those a pool re-seated on another
	// shard, and LateCommits how many committed tasks finished past their
	// deadline (must stay 0 — displacement, not lateness, is how the model
	// sheds load).
	Displaced   int `json:",omitempty"`
	Readmitted  int `json:",omitempty"`
	LateCommits int `json:",omitempty"`
}

// PartitionerFor builds the partitioner named by algorithm through the
// shared Config constructor path, with the cluster's cost model filled in
// (node count, reference coefficients, per-node table). rounds applies to
// AlgDLTMR (0 = the default of 2). Today's partitioners read per-node
// costs at plan time via rt.PlanContext, so the table is carried here for
// uniform validation and for any future construction-time use, not
// because current construction depends on it. This is the single
// constructor path shared by the service options and the legacy
// NewScheduler facade.
func PartitionerFor(algorithm string, rounds int, cm *dlt.CostModel) (rt.Partitioner, error) {
	cfg := Config{Algorithm: algorithm, Rounds: rounds}
	if cm != nil {
		ref := cm.Reference()
		cfg.N = cm.N()
		cfg.Cms = ref.Cms
		cfg.Cps = ref.Cps
		cfg.NodeCosts = cm.Costs()
	}
	return cfg.NewPartitioner()
}

// NewService assembles the admission service a run executes against: the
// resolved cost model's cluster, the parsed policy, the configured
// partitioner, and the given clock. It is the shared construction path of
// Run and of callers that want to drive the same engine themselves.
func (c Config) NewService(clock service.Clock) (*service.Service, error) {
	pol, err := rt.ParsePolicy(c.Policy)
	if err != nil {
		return nil, err
	}
	part, err := c.NewPartitioner()
	if err != nil {
		return nil, err
	}
	cm, err := c.CostModel()
	if err != nil {
		return nil, err
	}
	cl, err := cluster.NewHetero(cm.Costs())
	if err != nil {
		return nil, err
	}
	return service.New(service.Config{
		Cluster:     cl,
		Policy:      pol,
		Partitioner: part,
		Clock:       clock,
		Observer:    c.Observer,
	})
}

// Run executes one simulation and returns its metrics. It is a thin
// adapter over the admission service: a SimClock binds the service to the
// discrete-event engine, arrival events submit generated tasks, commit
// events start due transmissions, and the Result is assembled from the
// service's statistics.
func Run(cfg Config) (*Result, error) {
	if cfg.multiShard() {
		return runPool(cfg)
	}
	s := sim.New()
	svc, err := cfg.NewService(service.SimClock{Sim: s})
	if err != nil {
		return nil, err
	}
	// The workload is calibrated against the scalar reference coefficients
	// so a heterogeneity sweep holds the offered load constant; explicit
	// NodeCosts anchor it to the table's own reference instead. The table
	// is read back from the service's cluster — the one the run actually
	// schedules against — rather than resolved a second time.
	wp := cfg.Params()
	if len(cfg.NodeCosts) > 0 {
		wp = svc.Cluster().Costs().Reference()
	}
	gen, err := workload.New(workload.Config{
		N: cfg.N, Params: wp,
		SystemLoad: cfg.SystemLoad, AvgSigma: cfg.AvgSigma,
		DCRatio: cfg.DCRatio, Horizon: cfg.Horizon, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	var (
		ctx          = context.Background()
		commitHandle sim.Handle
		runErr       error
	)
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// Commit events start every transmission that is due; the service
	// records the execution metrics from the exact dispatch timelines.
	var rearmCommit func()
	onCommit := func() {
		if err := svc.CommitDue(s.Now()); err != nil {
			fail(err)
			return
		}
		rearmCommit()
	}
	rearmCommit = func() {
		commitHandle.Cancel()
		if at, ok := svc.NextCommit(); ok {
			commitHandle = s.AtPrio(at, sim.PrioCommit, onCommit)
		}
	}

	// Arrival chain: each arrival event submits its task and schedules the
	// next arrival.
	var onArrival func(t *rt.Task)
	scheduleNext := func() {
		if t, ok := gen.Next(); ok {
			s.AtPrio(t.Arrival, sim.PrioArrival, func() { onArrival(t) })
		}
	}
	onArrival = func(t *rt.Task) {
		if _, err := svc.Submit(ctx, *t); err != nil {
			fail(err)
			return
		}
		rearmCommit()
		scheduleNext()
	}
	scheduleNext()

	// Churn ops are ordinary discrete events at PrioDefault: after commits
	// due at the same instant, before arrivals at it. A displacement can
	// change the earliest pending commit, so the commit chain is re-armed.
	for _, op := range cfg.Churn.Sorted() {
		op := op
		s.AtPrio(op.At, sim.PrioDefault, func() {
			if _, err := fleet.Apply(svc, op); err != nil {
				fail(fmt.Errorf("driver: churn %q: %w", op.String(), err))
				return
			}
			rearmCommit()
		})
	}

	// Run to completion: arrivals stop at the horizon, then the waiting
	// queue drains through its remaining commit events.
	for runErr == nil && s.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}

	st := svc.Stats()
	ex := svc.Exec()
	res := &Result{
		Config:      cfg,
		Arrivals:    st.Arrivals,
		Accepted:    st.Accepts,
		Rejected:    st.Rejects,
		Committed:   ex.Committed,
		MaxLateness: ex.MaxLateness,
		MaxQueueLen: st.MaxQueueLen,
		Displaced:   st.Displaced,
		Readmitted:  st.Readmitted,
		LateCommits: st.LateCommits,
	}
	if st.QueueLen != 0 {
		return nil, fmt.Errorf("driver: %d tasks still waiting after drain", st.QueueLen)
	}
	if res.Arrivals != res.Accepted+res.Rejected {
		return nil, fmt.Errorf("driver: accounting mismatch: %d arrivals != %d accepted + %d rejected",
			res.Arrivals, res.Accepted, res.Rejected)
	}
	// Under churn an accepted task may be displaced instead of committed
	// (and, on a pool, re-seated — its commit then lands normally); without
	// churn both correction terms are zero and the identity collapses to
	// the classic committed == accepted.
	if res.Committed+res.Displaced-res.Readmitted != res.Accepted {
		return nil, fmt.Errorf("driver: %d committed + %d displaced - %d readmitted != %d accepted",
			res.Committed, res.Displaced, res.Readmitted, res.Accepted)
	}

	if res.Arrivals > 0 {
		res.RejectRatio = float64(res.Rejected) / float64(res.Arrivals)
	}
	if res.Committed > 0 {
		res.MeanResponse = ex.RespSum / float64(res.Committed)
		res.MeanEstSlack = ex.SlackSum / float64(res.Committed)
		res.MeanNodes = float64(ex.NodeSum) / float64(res.Committed)
	} else {
		res.MaxLateness = 0
	}
	cl := svc.Cluster()
	res.Shards = 1
	res.Span = math.Max(cfg.Horizon, cl.LastRelease())
	res.Utilization = cl.Utilization(res.Span)
	res.ReservedIdleFrac = cl.ReservedIdle() / (float64(cfg.N) * res.Span)
	return res, nil
}
