package driver

import (
	"math"
	"testing"
)

// TestDrainBeyondHorizon: tasks admitted shortly before the horizon still
// commit during the drain phase; accounting must balance exactly.
func TestDrainBeyondHorizon(t *testing.T) {
	cfg := Default()
	cfg.SystemLoad = 1.0
	cfg.Horizon = 2e5
	cfg.Seed = 4
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Span <= cfg.Horizon {
		t.Fatalf("span %v should extend beyond the horizon %v (drain)", r.Span, cfg.Horizon)
	}
	if r.Committed != r.Accepted {
		t.Fatalf("drain incomplete: %d committed, %d accepted", r.Committed, r.Accepted)
	}
}

// TestPairedSeedsShareWorkload: with the same seed, two algorithms see the
// identical arrival count — the pairing property the experiment harness
// depends on.
func TestPairedSeedsShareWorkload(t *testing.T) {
	a, err := Run(quickCfg(AlgDLTIIT, 0.8, 123))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(AlgUserSplit, 0.8, 123))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(quickCfg(AlgOPRMN, 0.8, 123))
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Arrivals != c.Arrivals {
		t.Fatalf("paired runs saw different workloads: %d/%d/%d",
			a.Arrivals, b.Arrivals, c.Arrivals)
	}
}

// TestRoundsPropagation: the configured installment count reaches the
// multi-round partitioner and changes behaviour relative to rounds=1.
func TestRoundsPropagation(t *testing.T) {
	base := quickCfg(AlgDLTMR, 0.9, 6)
	base.Rounds = 1
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Rounds = 8
	r8, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// rounds=1 admits against the exact dispatch timeline instead of the
	// Eq. 6 upper bound, so it can only do better than plain dlt-iit.
	iit, err := Run(quickCfg(AlgDLTIIT, 0.9, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r1.RejectRatio > iit.RejectRatio+1e-9 {
		t.Fatalf("dlt-mr rounds=1 (%v) worse than dlt-iit (%v)",
			r1.RejectRatio, iit.RejectRatio)
	}
	if r8.RejectRatio > r1.RejectRatio+1e-9 {
		t.Fatalf("more rounds should not reject more: %v vs %v", r8.RejectRatio, r1.RejectRatio)
	}
}

// TestOverloadStillGuaranteed: far beyond saturation the reject ratio
// climbs but admitted tasks still never miss.
func TestOverloadStillGuaranteed(t *testing.T) {
	cfg := quickCfg(AlgDLTIIT, 5.0, 8) // 5× overload
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.RejectRatio < 0.5 {
		t.Fatalf("5x overload should reject most tasks, got %v", r.RejectRatio)
	}
	if r.MaxLateness > 1e-6 {
		t.Fatalf("deadline miss under overload: %v", r.MaxLateness)
	}
}

// TestLowLoadNearZeroRejects: at 1% load with loose deadlines nearly
// everything is admitted.
func TestLowLoadNearZeroRejects(t *testing.T) {
	cfg := quickCfg(AlgDLTIIT, 0.01, 2)
	cfg.DCRatio = 10
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.RejectRatio > 0.02 {
		t.Fatalf("low load rejected %v", r.RejectRatio)
	}
}

// TestUtilizationTracksLoad: utilization grows monotonically-ish with load
// for the same seed (coarse sanity on the accounting).
func TestUtilizationTracksLoad(t *testing.T) {
	prev := -1.0
	for _, load := range []float64{0.1, 0.4, 0.8} {
		r, err := Run(quickCfg(AlgDLTIIT, load, 9))
		if err != nil {
			t.Fatal(err)
		}
		if r.Utilization < prev-0.05 {
			t.Fatalf("utilization dropped sharply with load: %v after %v", r.Utilization, prev)
		}
		prev = r.Utilization
	}
	if prev < 0.2 {
		t.Fatalf("high-load utilization implausibly low: %v", prev)
	}
}

// TestMeanEstSlackOnlyForIIT: the Theorem-4 slack is strictly positive in
// aggregate for dlt-iit (staggered starts) and ~zero for opr-mn (estimate
// exact).
func TestMeanEstSlackOnlyForIIT(t *testing.T) {
	d, err := Run(quickCfg(AlgDLTIIT, 0.9, 14))
	if err != nil {
		t.Fatal(err)
	}
	o, err := Run(quickCfg(AlgOPRMN, 0.9, 14))
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanEstSlack <= 0 {
		t.Fatalf("dlt-iit should have positive mean estimate slack, got %v", d.MeanEstSlack)
	}
	if math.Abs(o.MeanEstSlack) > 1e-6 {
		t.Fatalf("opr-mn estimate should be exact, slack %v", o.MeanEstSlack)
	}
}
