package driver

import (
	"math"
	"testing"

	"rtdls/internal/trace"
)

func quickCfg(alg string, load float64, seed uint64) Config {
	cfg := Default()
	cfg.Algorithm = alg
	cfg.SystemLoad = load
	cfg.Horizon = 3e5
	cfg.Seed = seed
	return cfg
}

func TestRunValidation(t *testing.T) {
	bad := Default()
	bad.Algorithm = "nonsense"
	if _, err := Run(bad); err == nil {
		t.Fatalf("unknown algorithm must fail")
	}
	bad = Default()
	bad.Policy = "lifo"
	if _, err := Run(bad); err == nil {
		t.Fatalf("unknown policy must fail")
	}
	bad = Default()
	bad.N = 0
	if _, err := Run(bad); err == nil {
		t.Fatalf("empty cluster must fail")
	}
	bad = Default()
	bad.SystemLoad = 0
	if _, err := Run(bad); err == nil {
		t.Fatalf("zero load must fail")
	}
}

func TestAlgorithmsListMatchesFactory(t *testing.T) {
	for _, alg := range Algorithms() {
		cfg := Default()
		cfg.Algorithm = alg
		if _, err := cfg.NewPartitioner(); err != nil {
			t.Fatalf("listed algorithm %q not constructible: %v", alg, err)
		}
	}
}

func TestAccountingConservation(t *testing.T) {
	for _, alg := range Algorithms() {
		r, err := Run(quickCfg(alg, 0.6, 3))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if r.Arrivals == 0 {
			t.Fatalf("%s: no arrivals", alg)
		}
		if r.Arrivals != r.Accepted+r.Rejected {
			t.Fatalf("%s: %d != %d + %d", alg, r.Arrivals, r.Accepted, r.Rejected)
		}
		if r.Committed != r.Accepted {
			t.Fatalf("%s: committed %d != accepted %d", alg, r.Committed, r.Accepted)
		}
		want := float64(r.Rejected) / float64(r.Arrivals)
		if math.Abs(r.RejectRatio-want) > 1e-12 {
			t.Fatalf("%s: reject ratio %v, want %v", alg, r.RejectRatio, want)
		}
	}
}

// TestNoDeadlineMisses is the end-to-end real-time guarantee: across every
// algorithm and several loads, no admitted task ever finishes after its
// absolute deadline.
func TestNoDeadlineMisses(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, load := range []float64{0.3, 0.9} {
			for seed := uint64(1); seed <= 3; seed++ {
				r, err := Run(quickCfg(alg, load, seed))
				if err != nil {
					t.Fatalf("%s load %v seed %d: %v", alg, load, seed, err)
				}
				tol := 1e-6 * math.Max(1, r.Span)
				if r.Committed > 0 && r.MaxLateness > tol {
					t.Fatalf("%s load %v seed %d: max lateness %v > 0",
						alg, load, seed, r.MaxLateness)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, alg := range []string{AlgDLTIIT, AlgOPRMN, AlgUserSplit} {
		a, err := Run(quickCfg(alg, 0.7, 11))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(quickCfg(alg, 0.7, 11))
		if err != nil {
			t.Fatal(err)
		}
		if a.RejectRatio != b.RejectRatio || a.Arrivals != b.Arrivals ||
			a.MeanResponse != b.MeanResponse || a.Utilization != b.Utilization {
			t.Fatalf("%s: same seed produced different results", alg)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a, _ := Run(quickCfg(AlgDLTIIT, 0.7, 1))
	b, _ := Run(quickCfg(AlgDLTIIT, 0.7, 2))
	if a.Arrivals == b.Arrivals && a.RejectRatio == b.RejectRatio && a.MeanResponse == b.MeanResponse {
		t.Fatalf("different seeds produced identical runs (suspicious)")
	}
}

// TestHeadlineResult is the paper's central claim at baseline parameters:
// utilising IITs (EDF-DLT) never rejects more than the no-IIT baseline
// (EDF-OPR-MN) under paired seeds, and strictly less in aggregate.
func TestHeadlineResult(t *testing.T) {
	var dltSum, oprSum float64
	for _, load := range []float64{0.4, 0.7, 1.0} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfgD := quickCfg(AlgDLTIIT, load, seed)
			cfgD.Horizon = 5e5
			d, err := Run(cfgD)
			if err != nil {
				t.Fatal(err)
			}
			cfgO := quickCfg(AlgOPRMN, load, seed)
			cfgO.Horizon = 5e5
			o, err := Run(cfgO)
			if err != nil {
				t.Fatal(err)
			}
			dltSum += d.RejectRatio
			oprSum += o.RejectRatio
		}
	}
	if !(dltSum < oprSum) {
		t.Fatalf("EDF-DLT aggregate reject %v not below EDF-OPR-MN %v", dltSum, oprSum)
	}
}

// TestMultiRoundImproves: the future-work extension should not be worse
// than single-round DLT in aggregate.
func TestMultiRoundImproves(t *testing.T) {
	var srSum, mrSum float64
	for seed := uint64(1); seed <= 3; seed++ {
		sr, err := Run(quickCfg(AlgDLTIIT, 0.8, seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := quickCfg(AlgDLTMR, 0.8, seed)
		cfg.Rounds = 4
		mr, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srSum += sr.RejectRatio
		mrSum += mr.RejectRatio
	}
	if mrSum > srSum+1e-9 {
		t.Fatalf("multi-round aggregate %v worse than single-round %v", mrSum, srSum)
	}
}

func TestOPRReservesIdleTime(t *testing.T) {
	o, err := Run(quickCfg(AlgOPRMN, 0.9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if o.ReservedIdleFrac <= 0 {
		t.Fatalf("OPR-MN at high load should waste some IIT, got %v", o.ReservedIdleFrac)
	}
	d, err := Run(quickCfg(AlgDLTIIT, 0.9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if d.ReservedIdleFrac != 0 {
		t.Fatalf("dlt-iit must not reserve idle time, got %v", d.ReservedIdleFrac)
	}
}

func TestObserverWiring(t *testing.T) {
	cfg := quickCfg(AlgDLTIIT, 0.6, 9)
	ring := trace.NewRing(64)
	cfg.Observer = ring
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Accepts() != r.Accepted || ring.Rejects() != r.Rejected || ring.Commits() != r.Committed {
		t.Fatalf("observer saw %d/%d/%d, driver counted %d/%d/%d",
			ring.Accepts(), ring.Rejects(), ring.Commits(),
			r.Accepted, r.Rejected, r.Committed)
	}
}

func TestUtilizationSane(t *testing.T) {
	r, err := Run(quickCfg(AlgDLTIIT, 1.0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v out of (0,1]", r.Utilization)
	}
	if r.Span < r.Config.Horizon {
		t.Fatalf("span %v below horizon", r.Span)
	}
	if r.MeanNodes < 1 || r.MeanNodes > float64(r.Config.N) {
		t.Fatalf("mean nodes %v out of range", r.MeanNodes)
	}
	if r.MeanResponse <= 0 {
		t.Fatalf("mean response %v", r.MeanResponse)
	}
	if r.MeanEstSlack < -1e-9 {
		t.Fatalf("estimate slack must be non-negative (Theorem 4), got %v", r.MeanEstSlack)
	}
}

func TestDefaultRoundsApplied(t *testing.T) {
	cfg := Default()
	cfg.Algorithm = AlgDLTMR
	cfg.Rounds = 0 // should default to 2
	p, err := cfg.NewPartitioner()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "dlt-mr2" {
		t.Fatalf("default rounds not applied: %s", p.Name())
	}
}
