package driver

import (
	"fmt"
	"math"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/rt"
	"rtdls/internal/sim"
	"rtdls/internal/workload"
)

// referenceRun is the pre-redesign driver loop, kept verbatim as the
// ground truth: it drives an rt.Scheduler directly from the discrete-event
// engine, with no service layer in between. The equivalence test proves
// that Run — now a thin adapter over service.Service — reproduces its
// Result bit for bit.
func referenceRun(cfg Config) (*Result, error) {
	pol, err := rt.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	part, err := cfg.NewPartitioner()
	if err != nil {
		return nil, err
	}
	cm, err := cfg.CostModel()
	if err != nil {
		return nil, err
	}
	cl, err := cluster.NewHetero(cm.Costs())
	if err != nil {
		return nil, err
	}
	wp := cfg.Params()
	if len(cfg.NodeCosts) > 0 {
		wp = cm.Reference()
	}
	gen, err := workload.New(workload.Config{
		N: cfg.N, Params: wp,
		SystemLoad: cfg.SystemLoad, AvgSigma: cfg.AvgSigma,
		DCRatio: cfg.DCRatio, Horizon: cfg.Horizon, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	sched := rt.NewScheduler(cl, pol, part)
	res := &Result{Config: cfg, MaxLateness: math.Inf(-1)}
	var (
		s            = sim.New()
		commitHandle sim.Handle
		runErr       error
		respSum      float64
		slackSum     float64
		nodeSum      int
	)
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	var rearmCommit func()
	onCommit := func() {
		plans, err := sched.CommitDue(s.Now())
		if err != nil {
			fail(err)
			return
		}
		for _, pl := range plans {
			actual := pl.Est
			if pl.Rounds <= 1 && !pl.SimultaneousStart {
				d, derr := cl.Costs().SimulateFor(pl.Nodes, pl.Task.Sigma, pl.Starts, pl.Alphas)
				if derr != nil {
					fail(fmt.Errorf("reference: dispatching task %d: %w", pl.Task.ID, derr))
					return
				}
				actual = d.Completion
			}
			res.Committed++
			respSum += actual - pl.Task.Arrival
			slackSum += pl.Est - actual
			nodeSum += len(pl.Nodes)
			if l := actual - pl.Task.AbsDeadline(); l > res.MaxLateness {
				res.MaxLateness = l
			}
		}
		rearmCommit()
	}
	rearmCommit = func() {
		commitHandle.Cancel()
		if at, ok := sched.NextCommit(); ok {
			commitHandle = s.AtPrio(at, sim.PrioCommit, onCommit)
		}
	}
	var onArrival func(t *rt.Task)
	scheduleNext := func() {
		if t, ok := gen.Next(); ok {
			s.AtPrio(t.Arrival, sim.PrioArrival, func() { onArrival(t) })
		}
	}
	onArrival = func(t *rt.Task) {
		res.Arrivals++
		accepted, err := sched.Submit(t, s.Now())
		if err != nil {
			fail(err)
			return
		}
		if accepted {
			res.Accepted++
		} else {
			res.Rejected++
		}
		rearmCommit()
		scheduleNext()
	}
	scheduleNext()
	for runErr == nil && s.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}
	if res.Arrivals > 0 {
		res.RejectRatio = float64(res.Rejected) / float64(res.Arrivals)
	}
	if res.Committed > 0 {
		res.MeanResponse = respSum / float64(res.Committed)
		res.MeanEstSlack = slackSum / float64(res.Committed)
		res.MeanNodes = float64(nodeSum) / float64(res.Committed)
	} else {
		res.MaxLateness = 0
	}
	res.Span = math.Max(cfg.Horizon, cl.LastRelease())
	res.Utilization = cl.Utilization(res.Span)
	res.ReservedIdleFrac = cl.ReservedIdle() / (float64(cfg.N) * res.Span)
	res.MaxQueueLen = sched.Stats().MaxQueueLen
	return res, nil
}

// requireBitIdentical compares every metric field with exact equality —
// float64 bit patterns included.
func requireBitIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	cmps := []struct {
		name        string
		want, got   float64
		exactInt    bool
		wantI, gotI int
	}{
		{name: "Arrivals", exactInt: true, wantI: want.Arrivals, gotI: got.Arrivals},
		{name: "Accepted", exactInt: true, wantI: want.Accepted, gotI: got.Accepted},
		{name: "Rejected", exactInt: true, wantI: want.Rejected, gotI: got.Rejected},
		{name: "Committed", exactInt: true, wantI: want.Committed, gotI: got.Committed},
		{name: "MaxQueueLen", exactInt: true, wantI: want.MaxQueueLen, gotI: got.MaxQueueLen},
		{name: "RejectRatio", want: want.RejectRatio, got: got.RejectRatio},
		{name: "MeanResponse", want: want.MeanResponse, got: got.MeanResponse},
		{name: "MeanNodes", want: want.MeanNodes, got: got.MeanNodes},
		{name: "MaxLateness", want: want.MaxLateness, got: got.MaxLateness},
		{name: "MeanEstSlack", want: want.MeanEstSlack, got: got.MeanEstSlack},
		{name: "Utilization", want: want.Utilization, got: got.Utilization},
		{name: "ReservedIdleFrac", want: want.ReservedIdleFrac, got: got.ReservedIdleFrac},
		{name: "Span", want: want.Span, got: got.Span},
	}
	for _, c := range cmps {
		if c.exactInt {
			if c.wantI != c.gotI {
				t.Errorf("%s: %s differs: reference %d, service adapter %d", label, c.name, c.wantI, c.gotI)
			}
			continue
		}
		if math.Float64bits(c.want) != math.Float64bits(c.got) {
			t.Errorf("%s: %s differs: reference %v (bits %x), service adapter %v (bits %x)",
				label, c.name, c.want, math.Float64bits(c.want), c.got, math.Float64bits(c.got))
		}
	}
}

// TestRunEquivalence proves the acceptance property of the 2.0 redesign:
// the legacy Run(Config) adapter reproduces the pre-redesign Result bit
// for bit for every algorithm, across seeds, loads and a heterogeneous
// cluster.
func TestRunEquivalence(t *testing.T) {
	type variant struct {
		label string
		mut   func(*Config)
	}
	variants := []variant{
		{"base", func(c *Config) {}},
		{"fifo-load0.9-seed7", func(c *Config) { c.Policy = "fifo"; c.SystemLoad = 0.9; c.Seed = 7 }},
		{"hetero-spread4", func(c *Config) { c.CpsSpread = 4; c.CmsSpread = 2; c.HeteroSeed = 3 }},
	}
	for _, alg := range Algorithms() {
		for _, v := range variants {
			cfg := Default()
			cfg.Algorithm = alg
			cfg.SystemLoad = 0.75
			cfg.Horizon = 1.5e5
			if alg == AlgDLTMR {
				cfg.Rounds = 3
			}
			v.mut(&cfg)
			label := alg + "/" + v.label
			want, err := referenceRun(cfg)
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: Run: %v", label, err)
			}
			requireBitIdentical(t, label, want, got)
		}
	}
}

// TestRunEquivalenceExplicitCosts covers the explicit per-node cost table
// path, whose workload is calibrated against the table's own reference.
func TestRunEquivalenceExplicitCosts(t *testing.T) {
	costs, err := SpreadCosts(8, Default().Params(), 3, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.N = 8
	cfg.NodeCosts = costs
	cfg.SystemLoad = 0.8
	cfg.Horizon = 1e5
	want, err := referenceRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "explicit-costs", want, got)
}
