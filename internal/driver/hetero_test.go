package driver

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/dlt"
	"rtdls/internal/verify"
)

// sameResult compares every metric of two runs for exact (bit-identical)
// equality; Config is excluded since the two runs are configured through
// different mechanisms on purpose.
func sameResult(t *testing.T, a, b *Result, what string) {
	t.Helper()
	if a.Arrivals != b.Arrivals || a.Accepted != b.Accepted || a.Rejected != b.Rejected ||
		a.Committed != b.Committed || a.MaxQueueLen != b.MaxQueueLen {
		t.Fatalf("%s: admission counts differ:\n%+v\n%+v", what, a, b)
	}
	exact := []struct {
		name string
		x, y float64
	}{
		{"RejectRatio", a.RejectRatio, b.RejectRatio},
		{"MeanResponse", a.MeanResponse, b.MeanResponse},
		{"MeanNodes", a.MeanNodes, b.MeanNodes},
		{"MaxLateness", a.MaxLateness, b.MaxLateness},
		{"MeanEstSlack", a.MeanEstSlack, b.MeanEstSlack},
		{"Utilization", a.Utilization, b.Utilization},
		{"ReservedIdleFrac", a.ReservedIdleFrac, b.ReservedIdleFrac},
		{"Span", a.Span, b.Span},
	}
	for _, e := range exact {
		if e.x != e.y && !(math.IsInf(e.x, -1) && math.IsInf(e.y, -1)) {
			t.Fatalf("%s: %s differs bit-for-bit: %v vs %v", what, e.name, e.x, e.y)
		}
	}
}

// TestHomogeneousEquivalenceProperty is the refactor's acceptance
// property: for randomized homogeneous configurations, a run configured
// through the generalized per-node path (an explicit uniform NodeCosts
// table) reproduces the legacy scalar-Params run bit for bit — identical
// plans, admission decisions and metrics — across every algorithm and
// policy.
func TestHomogeneousEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 103))
	algs := Algorithms()
	policies := []string{"edf", "fifo"}
	for trial := 0; trial < 24; trial++ {
		cfg := Config{
			N:          2 + rng.IntN(15),
			Cms:        math.Exp(rng.Float64()*2 - 1),
			Cps:        math.Exp(rng.Float64()*2) * 20,
			Policy:     policies[rng.IntN(len(policies))],
			Algorithm:  algs[trial%len(algs)],
			SystemLoad: 0.2 + rng.Float64()*0.8,
			AvgSigma:   50 + rng.Float64()*300,
			DCRatio:    1 + rng.Float64()*9,
			Horizon:    5e4,
			Seed:       rng.Uint64(),
			Rounds:     1 + rng.IntN(4),
		}
		legacy, err := Run(cfg)
		if err != nil {
			t.Fatalf("legacy run (%+v): %v", cfg, err)
		}

		gen := cfg
		gen.NodeCosts = make([]dlt.NodeCost, cfg.N)
		for i := range gen.NodeCosts {
			gen.NodeCosts[i] = dlt.NodeCost{Cms: cfg.Cms, Cps: cfg.Cps}
		}
		generalized, err := Run(gen)
		if err != nil {
			t.Fatalf("generalized run (%+v): %v", gen, err)
		}
		sameResult(t, legacy, generalized, cfg.Algorithm+"/"+cfg.Policy)
	}
}

// TestHeteroRunGuarantees: heterogeneous runs across every algorithm keep
// the hard real-time guarantee (no committed task misses its deadline) and
// pass the independent verifier.
func TestHeteroRunGuarantees(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, spread := range []struct{ cms, cps float64 }{{1, 4}, {4, 1}, {3, 3}} {
			cfg := Default()
			cfg.Algorithm = alg
			cfg.SystemLoad = 0.7
			cfg.Horizon = 2e5
			cfg.CmsSpread = spread.cms
			cfg.CpsSpread = spread.cps
			cfg.HeteroSeed = 42

			cm, err := cfg.CostModel()
			if err != nil {
				t.Fatal(err)
			}
			if (spread.cms > 1 || spread.cps > 1) && cm.Uniform() {
				t.Fatalf("spread config must produce a heterogeneous model")
			}
			chk := verify.NewCheckerCosts(cm)
			cfg.Observer = chk

			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s spread=%v: %v", alg, spread, err)
			}
			if res.Committed > 0 && res.MaxLateness > 0 {
				t.Fatalf("%s spread=%v: deadline missed, MaxLateness=%v", alg, spread, res.MaxLateness)
			}
			if !chk.OK() {
				t.Fatalf("%s spread=%v: verifier failed:\n%s", alg, spread, chk.Report())
			}
			if res.Arrivals == 0 || res.Committed == 0 {
				t.Fatalf("%s spread=%v: degenerate run %+v", alg, spread, res)
			}
		}
	}
}

// TestExplicitNodeCostsRun: an explicitly heterogeneous table (including a
// free link and a slow straggler) runs clean end to end.
func TestExplicitNodeCostsRun(t *testing.T) {
	cfg := Default()
	cfg.N = 4
	cfg.Horizon = 2e5
	cfg.SystemLoad = 0.6
	cfg.NodeCosts = []dlt.NodeCost{
		{Cms: 0, Cps: 100}, // free link
		{Cms: 1, Cps: 100}, // baseline
		{Cms: 1, Cps: 400}, // slow CPU
		{Cms: 4, Cps: 50},  // slow link, fast CPU
	}
	cm, err := cfg.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	chk := verify.NewCheckerCosts(cm)
	cfg.Observer = chk
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed > 0 && res.MaxLateness > 0 {
		t.Fatalf("deadline missed: %v", res.MaxLateness)
	}
	if !chk.OK() {
		t.Fatalf("verifier failed:\n%s", chk.Report())
	}
}

func TestConfigCostModelValidation(t *testing.T) {
	cfg := Default()
	cfg.NodeCosts = []dlt.NodeCost{{Cms: 1, Cps: 100}} // N is 16
	if _, err := Run(cfg); err == nil {
		t.Fatalf("length-mismatched NodeCosts must fail")
	}
	cfg = Default()
	cfg.NodeCosts = make([]dlt.NodeCost, cfg.N)
	for i := range cfg.NodeCosts {
		cfg.NodeCosts[i] = dlt.NodeCost{Cms: 1, Cps: -5}
	}
	if _, err := Run(cfg); err == nil {
		t.Fatalf("invalid node cost must fail")
	}
	cfg = Default()
	cfg.CpsSpread = math.Inf(1)
	if _, err := Run(cfg); err == nil {
		t.Fatalf("infinite spread must fail")
	}
	cfg = Default()
	cfg.CpsSpread = -3
	if _, err := Run(cfg); err == nil {
		t.Fatalf("negative spread must fail, not silently run homogeneous")
	}
}

func TestSpreadCostsDeterministicAndCalibrated(t *testing.T) {
	p := dlt.Params{Cms: 1, Cps: 100}
	a, err := SpreadCosts(32, p, 4, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpreadCosts(32, p, 4, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must reproduce the same table")
		}
	}
	c, err := SpreadCosts(32, p, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds should draw different tables")
	}
	for i, nc := range a {
		if nc.Cms < p.Cms/2-1e-12 || nc.Cms > p.Cms*2+1e-12 {
			t.Fatalf("node %d Cms=%v outside [ref/√s, ref·√s]", i, nc.Cms)
		}
		if nc.Cps < p.Cps/2-1e-12 || nc.Cps > p.Cps*2+1e-12 {
			t.Fatalf("node %d Cps=%v outside [ref/√s, ref·√s]", i, nc.Cps)
		}
	}
	// spread ≤ 1 keeps the coefficient at its reference.
	u, err := SpreadCosts(8, p, 1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range u {
		if nc != (dlt.NodeCost{Cms: 1, Cps: 100}) {
			t.Fatalf("unit spread must stay at the reference: %v", nc)
		}
	}
}
