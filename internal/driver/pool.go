package driver

import (
	"context"
	"fmt"
	"math"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/fleet"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
	"rtdls/internal/sim"
	"rtdls/internal/workload"
)

// multiShard reports whether the configuration describes a sharded pool
// rather than the classic single cluster. Any shard option — including an
// explicit Shards=1 or a placement — routes through the pool engine, whose
// K=1 behaviour is property-tested to match the single cluster.
func (c Config) multiShard() bool {
	return c.Shards != 0 || len(c.ShardNodes) > 0 || len(c.ShardNodeCosts) > 0 || c.Placement != nil
}

// ShardPlan resolves the pool layout the configuration describes: the
// shard count and one cost model per shard. Per-shard node counts
// (ShardNodes) and explicit per-shard cost tables (ShardNodeCosts) both
// fix the shard count; when only Shards is given, every shard is a copy
// of the single-cluster configuration — except that a spread draw
// (CmsSpread/CpsSpread) seeds shard j with HeteroSeed+j, so a fleet of
// spread shards gets distinct tables while shard 0 reproduces the
// single-cluster draw.
func (c Config) ShardPlan() (int, []*dlt.CostModel, error) {
	k := c.Shards
	if k < 0 {
		return 0, nil, fmt.Errorf("driver: negative shard count %d: %w", k, errs.ErrBadConfig)
	}
	if len(c.NodeCosts) > 0 && (len(c.ShardNodes) > 0 || len(c.ShardNodeCosts) > 0) {
		// A single-cluster cost table cannot size individually-shaped
		// shards; dropping it silently would simulate the wrong cost model.
		return 0, nil, fmt.Errorf("driver: NodeCosts conflicts with per-shard sizing; give each shard its own table via ShardNodeCosts: %w", errs.ErrBadConfig)
	}
	if n := len(c.ShardNodeCosts); n > 0 {
		if k != 0 && k != n {
			return 0, nil, fmt.Errorf("driver: %d shard cost tables for Shards=%d: %w", n, k, errs.ErrBadConfig)
		}
		k = n
	}
	if n := len(c.ShardNodes); n > 0 {
		if k != 0 && k != n {
			return 0, nil, fmt.Errorf("driver: %d shard node counts for %d shards: %w", n, k, errs.ErrBadConfig)
		}
		k = n
	}
	if k == 0 {
		k = 1
	}
	cms := make([]*dlt.CostModel, k)
	for j := range cms {
		var err error
		if len(c.ShardNodeCosts) > 0 {
			cms[j], err = dlt.NewCostModel(c.ShardNodeCosts[j])
		} else {
			cj := c
			cj.Shards, cj.ShardNodes, cj.ShardNodeCosts, cj.Placement = 0, nil, nil, nil
			if len(c.ShardNodes) > 0 {
				cj.N = c.ShardNodes[j]
			}
			cj.HeteroSeed = c.HeteroSeed + uint64(j)
			cms[j], err = cj.CostModel()
		}
		if err != nil {
			return 0, nil, fmt.Errorf("driver: shard %d: %w", j, err)
		}
	}
	return k, cms, nil
}

// NewPool assembles the sharded admission pool a multi-cluster run
// executes against, sharing the given clock across every shard. It is the
// pool analogue of Config.NewService.
func (c Config) NewPool(clock service.Clock) (*pool.Pool, error) {
	k, cms, err := c.ShardPlan()
	if err != nil {
		return nil, err
	}
	pol, err := rt.ParsePolicy(c.Policy)
	if err != nil {
		return nil, err
	}
	shards := make([]pool.ShardConfig, k)
	for j := range shards {
		part, err := PartitionerFor(c.Algorithm, c.Rounds, cms[j])
		if err != nil {
			return nil, err
		}
		cl, err := cluster.NewHetero(cms[j].Costs())
		if err != nil {
			return nil, err
		}
		shards[j] = pool.ShardConfig{Cluster: cl, Policy: pol, Partitioner: part, Observer: c.Observer}
	}
	return pool.New(pool.Config{Shards: shards, Placement: c.Placement, Clock: clock})
}

// shardExecTime returns E(σ, shard): the execution time of a load σ on the
// whole shard, generalised to heterogeneous shard cost tables.
func shardExecTime(cm *dlt.CostModel, sigma float64) (float64, error) {
	if cm.Uniform() {
		return cm.Reference().ExecTime(sigma, cm.N()), nil
	}
	return dlt.HeteroExecTime(cm.Costs(), sigma)
}

// runPool executes a multi-cluster simulation: one workload stream,
// scaled to the pool's aggregate capacity, routed through the placement
// layer onto K independent shards sharing the discrete-event clock.
func runPool(cfg Config) (*Result, error) {
	s := sim.New()
	pl, err := cfg.NewPool(service.SimClock{Sim: s})
	if err != nil {
		return nil, err
	}
	k := pl.Shards()

	// The workload keeps SystemLoad's meaning — the fraction of the fleet's
	// aggregate capacity the stream offers: the single-cluster arrival rate
	// SystemLoad/E(Avgσ, N) is multiplied by Σ_j E(Avgσ, N)/E(Avgσ, shard j)
	// (= K for identical shards). The reference coefficients follow the
	// single-cluster rule: scalar Cms/Cps unless explicit cost tables are
	// given, in which case shard 0's table reference anchors it.
	wp := cfg.Params()
	if len(cfg.NodeCosts) > 0 || len(cfg.ShardNodeCosts) > 0 {
		wp = pl.Shard(0).Cluster().Costs().Reference()
	}
	eRef := wp.ExecTime(cfg.AvgSigma, cfg.N)
	scale := 0.0
	for j := 0; j < k; j++ {
		ej, err := shardExecTime(pl.Shard(j).Cluster().Costs(), cfg.AvgSigma)
		if err != nil {
			return nil, fmt.Errorf("driver: shard %d exec time: %w", j, err)
		}
		scale += eRef / ej
	}
	gen, err := workload.New(workload.Config{
		N: cfg.N, Params: wp,
		SystemLoad: cfg.SystemLoad * scale, AvgSigma: cfg.AvgSigma,
		DCRatio: cfg.DCRatio, Horizon: cfg.Horizon, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	var (
		ctx          = context.Background()
		commitHandle sim.Handle
		runErr       error
	)
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	var rearmCommit func()
	onCommit := func() {
		if err := pl.CommitDue(s.Now()); err != nil {
			fail(err)
			return
		}
		rearmCommit()
	}
	rearmCommit = func() {
		commitHandle.Cancel()
		if at, ok := pl.NextCommit(); ok {
			commitHandle = s.AtPrio(at, sim.PrioCommit, onCommit)
		}
	}
	var onArrival func(t *rt.Task)
	scheduleNext := func() {
		if t, ok := gen.Next(); ok {
			s.AtPrio(t.Arrival, sim.PrioArrival, func() { onArrival(t) })
		}
	}
	onArrival = func(t *rt.Task) {
		if _, err := pl.Submit(ctx, *t); err != nil {
			fail(err)
			return
		}
		rearmCommit()
		scheduleNext()
	}
	scheduleNext()
	// Churn ops fire at PrioDefault like in the single-cluster run; on the
	// pool a displaced task is offered to the other live shards before it
	// counts as lost, so re-admissions show up as Readmitted.
	for _, op := range cfg.Churn.Sorted() {
		op := op
		s.AtPrio(op.At, sim.PrioDefault, func() {
			if _, err := fleet.Apply(pl, op); err != nil {
				fail(fmt.Errorf("driver: churn %q: %w", op.String(), err))
				return
			}
			rearmCommit()
		})
	}
	for runErr == nil && s.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}

	st := pl.Stats()
	ex := pl.Exec()
	res := &Result{
		Config:      cfg,
		Arrivals:    st.Arrivals,
		Accepted:    st.Accepts,
		Rejected:    st.Rejects,
		Committed:   ex.Committed,
		MaxLateness: ex.MaxLateness,
		MaxQueueLen: st.MaxQueueLen,
		Shards:      k,
		Spillovers:  pl.Spillovers(),
		Placement:   pl.Placement().Name(),
		Displaced:   st.Displaced,
		Readmitted:  st.Readmitted,
		LateCommits: st.LateCommits,
	}
	if st.QueueLen != 0 {
		return nil, fmt.Errorf("driver: %d tasks still waiting after drain", st.QueueLen)
	}
	if res.Arrivals != res.Accepted+res.Rejected {
		return nil, fmt.Errorf("driver: accounting mismatch: %d arrivals != %d accepted + %d rejected",
			res.Arrivals, res.Accepted, res.Rejected)
	}
	// See Run: displacements (minus pool re-admissions) relax the classic
	// committed == accepted identity.
	if res.Committed+res.Displaced-res.Readmitted != res.Accepted {
		return nil, fmt.Errorf("driver: %d committed + %d displaced - %d readmitted != %d accepted",
			res.Committed, res.Displaced, res.Readmitted, res.Accepted)
	}
	if res.Arrivals > 0 {
		res.RejectRatio = float64(res.Rejected) / float64(res.Arrivals)
	}
	if res.Committed > 0 {
		res.MeanResponse = ex.RespSum / float64(res.Committed)
		res.MeanEstSlack = ex.SlackSum / float64(res.Committed)
		res.MeanNodes = float64(ex.NodeSum) / float64(res.Committed)
	} else {
		res.MaxLateness = 0
	}
	for _, ss := range pl.ShardStats() {
		res.ShardRejectRatios = append(res.ShardRejectRatios, ss.RejectRatio())
	}
	totalN := 0
	for _, cl := range pl.Clusters() {
		totalN += cl.N()
	}
	res.Span = math.Max(cfg.Horizon, st.LastRelease)
	res.Utilization = st.BusyTime / (float64(totalN) * res.Span)
	res.ReservedIdleFrac = st.ReservedIdle / (float64(totalN) * res.Span)
	return res, nil
}
