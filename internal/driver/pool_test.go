package driver

import (
	"errors"
	"testing"

	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/pool"
)

// TestPoolRunSingleShardMatchesClassic: a Shards=1 pool run routes
// through the pool engine yet must reproduce the classic single-cluster
// Run bit for bit — the K=1 special-case property at the driver level.
func TestPoolRunSingleShardMatchesClassic(t *testing.T) {
	for _, alg := range []string{AlgDLTIIT, AlgOPRMN, AlgUserSplit, AlgOPRAN, AlgDLTMR} {
		cfg := Default()
		cfg.Algorithm = alg
		cfg.SystemLoad = 0.85
		cfg.Horizon = 1e5
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: classic: %v", alg, err)
		}
		cfg.Shards = 1
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: pool: %v", alg, err)
		}
		if got.Shards != 1 || want.Shards != 1 {
			t.Fatalf("%s: shards %d / %d", alg, want.Shards, got.Shards)
		}
		requireBitIdentical(t, alg+"/shards=1", want, got)
	}
}

func TestPoolRunMultiShard(t *testing.T) {
	cfg := Default()
	cfg.N = 8
	cfg.Shards = 4
	cfg.SystemLoad = 0.8
	cfg.Horizon = 2e5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || res.Placement != "round-robin" {
		t.Fatalf("result = %+v", res)
	}
	if len(res.ShardRejectRatios) != 4 {
		t.Fatalf("shard reject ratios = %v", res.ShardRejectRatios)
	}
	if res.Arrivals < 100 {
		t.Fatalf("only %d arrivals — aggregate arrival rate not scaled to the fleet", res.Arrivals)
	}
	if tol := 1e-6 * res.Span; res.MaxLateness > tol {
		t.Fatalf("hard real-time violation: max lateness %v", res.MaxLateness)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %v", res.Utilization)
	}

	// Spillover over the same fleet and workload must not reject more.
	sp := cfg
	sp.Placement = pool.Spillover{Inner: pool.RoundRobin{}}
	spill, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if spill.Placement != "spillover(round-robin)" {
		t.Fatalf("placement = %q", spill.Placement)
	}
	if spill.Rejected > res.Rejected {
		t.Fatalf("spillover rejected more than round robin: %d vs %d", spill.Rejected, res.Rejected)
	}
}

// TestPoolRunShardNodesCapacity: splitting the same 32 nodes into 4×8
// keeps the offered load constant — the aggregate arrival count must be
// close to the monolithic 32-node run's.
func TestPoolRunShardNodesCapacity(t *testing.T) {
	mono := Default()
	mono.N = 32
	mono.SystemLoad = 0.5
	mono.Horizon = 2e5
	wantRes, err := Run(mono)
	if err != nil {
		t.Fatal(err)
	}
	sharded := Default()
	sharded.N = 8
	sharded.ShardNodes = []int{8, 8, 8, 8}
	sharded.SystemLoad = 0.5
	sharded.Horizon = 2e5
	gotRes, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := wantRes.Arrivals*7/10, wantRes.Arrivals*13/10
	if gotRes.Arrivals < lo || gotRes.Arrivals > hi {
		t.Fatalf("sharded arrivals %d outside [%d, %d] of monolithic %d — load calibration broken",
			gotRes.Arrivals, lo, hi, wantRes.Arrivals)
	}
}

func TestShardPlanValidation(t *testing.T) {
	cfg := Default()
	cfg.Shards = -1
	if _, _, err := cfg.ShardPlan(); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("negative shards: %v", err)
	}
	cfg = Default()
	cfg.Shards = 3
	cfg.ShardNodes = []int{8, 8}
	if _, _, err := cfg.ShardPlan(); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("mismatched shard nodes: %v", err)
	}
	cfg = Default()
	cfg.Shards = 2
	cfg.ShardNodeCosts = [][]dlt.NodeCost{{{Cms: 1, Cps: 100}}}
	if _, _, err := cfg.ShardPlan(); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("mismatched shard cost tables: %v", err)
	}

	// A single-cluster cost table cannot size individually-shaped shards;
	// silently dropping it would run the wrong cost model.
	cfg = Default()
	cfg.NodeCosts = []dlt.NodeCost{{Cms: 1, Cps: 100}, {Cms: 1, Cps: 200}}
	cfg.ShardNodes = []int{2, 2}
	if _, _, err := cfg.ShardPlan(); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("NodeCosts with ShardNodes: %v", err)
	}
	cfg = Default()
	cfg.NodeCosts = []dlt.NodeCost{{Cms: 1, Cps: 100}}
	cfg.ShardNodeCosts = [][]dlt.NodeCost{{{Cms: 1, Cps: 100}}}
	if _, _, err := cfg.ShardPlan(); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("NodeCosts with ShardNodeCosts: %v", err)
	}

	cfg = Default()
	cfg.ShardNodes = []int{16, 4}
	k, cms, err := cfg.ShardPlan()
	if err != nil || k != 2 || cms[0].N() != 16 || cms[1].N() != 4 {
		t.Fatalf("plan = %d shards, %v, %v", k, cms, err)
	}

	// Spread draws differ per shard but shard 0 matches the single draw.
	cfg = Default()
	cfg.Shards = 2
	cfg.CpsSpread = 4
	cfg.HeteroSeed = 9
	_, cms, err = cfg.ShardPlan()
	if err != nil {
		t.Fatal(err)
	}
	single := Default()
	single.CpsSpread = 4
	single.HeteroSeed = 9
	want, err := single.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.N(); i++ {
		if cms[0].At(i) != want.At(i) {
			t.Fatalf("shard 0 spread table diverges from single-cluster draw at node %d", i)
		}
	}
	same := true
	for i := 0; i < want.N(); i++ {
		if cms[1].At(i) != cms[0].At(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("shard 1 drew the identical table — fleet heterogeneity lost")
	}
}
