// Package errs defines the sentinel errors shared across the whole stack
// and the wire-stable encoding of failure classes. Every layer — the DLT
// closed forms, the rt scheduling framework, the driver and the public
// service — wraps its failures around one of these sentinels, so callers
// can distinguish the failure classes with errors.Is without depending on
// message text or on the internal package that raised the error. The root
// rtdls package re-exports them.
//
// For anything that crosses a process boundary (the dlserve HTTP front
// end, serialized decisions, the event stream) the package additionally
// defines two stable encodings that are part of the public wire contract:
//
//   - Reason, a string enum naming a rejection class ("infeasible",
//     "deadline-past", "busy", ...). Reason values serialize identically in
//     JSON decisions and stream events, round-trip through ParseReason, and
//     still satisfy errors.Is against the sentinels.
//   - Code, mapping any error in the stack to a stable integer wire status.
//     The values are deliberately HTTP-compatible so the server can use
//     them directly as response status codes.
package errs

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrInfeasible marks a clean admission rejection: no node assignment
	// can meet the task's deadline against the current cluster state. It is
	// not an input error — rejection is a first-class outcome of the
	// schedulability test (in a deployment it triggers deadline
	// renegotiation, the paper's footnote 1).
	ErrInfeasible = errors.New("rtdls: no feasible assignment meets the deadline")

	// ErrDeadlinePast marks a task whose absolute deadline had already
	// passed when it was submitted: it is rejected without running the
	// schedulability test.
	ErrDeadlinePast = errors.New("rtdls: absolute deadline already past at submission")

	// ErrClusterBusy marks a submission the service could not consider at
	// all: the waiting queue is at its configured bound, the service is
	// draining, or it has been closed.
	ErrClusterBusy = errors.New("rtdls: cluster cannot accept submissions now")

	// ErrBadConfig marks invalid input — malformed tasks, cost tables,
	// options or configurations — as opposed to an infeasible but
	// well-formed admission request.
	ErrBadConfig = errors.New("rtdls: invalid configuration")

	// ErrDisplaced marks a task that lost its admitted-but-uncommitted
	// seat because fleet capacity changed underneath it: a node its plan
	// depended on was drained or failed, and the re-run schedulability
	// test could not find it a new feasible seat. Emitted on the event
	// stream (never as a Submit decision — the submission it displaces was
	// already answered).
	ErrDisplaced = errors.New("rtdls: admitted task displaced by node unavailability")
)

// Wire status codes, the stable integer encoding of the failure classes.
// The values are HTTP-compatible on purpose: dlserve uses them verbatim as
// response status codes, and clients that never speak HTTP still get a
// stable small-integer discriminator. They are part of the public wire
// contract and must never be renumbered.
const (
	CodeOK           = 200 // accepted / no error
	CodeBadRequest   = 400 // ErrBadConfig: malformed task, option or payload
	CodeDeadlinePast = 410 // ErrDeadlinePast: absolute deadline already gone
	CodeInfeasible   = 422 // ErrInfeasible: well-formed but unschedulable
	CodeBusy         = 429 // ErrClusterBusy: queue bound hit, draining or closed
	CodeCancelled    = 499 // context cancelled or its deadline exceeded
	CodeInternal     = 500 // anything else — a bug, by definition

	// CodeNodeUnavailable encodes ErrDisplaced: capacity vanished under a
	// committed-but-undispatched plan. 503 on purpose — on the wire it
	// means "the fleet lost the node you were placed on, retry", which
	// clients already treat as retryable without special-casing.
	CodeNodeUnavailable = 503
)

// Code maps an error anywhere in the stack to its stable wire status code.
// A nil error (and a Reason of ReasonNone unwrapped to nil) is CodeOK;
// wrapped errors are classified with errors.Is, so any layer's decoration
// is transparent; an error outside every known class is CodeInternal.
func Code(err error) int {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrBadConfig):
		return CodeBadRequest
	case errors.Is(err, ErrDeadlinePast):
		return CodeDeadlinePast
	case errors.Is(err, ErrInfeasible):
		return CodeInfeasible
	case errors.Is(err, ErrClusterBusy):
		return CodeBusy
	case errors.Is(err, ErrDisplaced):
		return CodeNodeUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCancelled
	default:
		return CodeInternal
	}
}

// Reason is the stable, documented string enum naming a rejection class.
// The string value is the wire token: a Reason marshals to JSON as itself,
// so a decision carried over HTTP, over the SSE event stream, or compared
// in a test serializes identically everywhere. Reason also implements
// error — Err/Unwrap map it back onto the sentinel — so pre-3.0 code that
// matched Decision.Reason with errors.Is keeps working unchanged.
//
// The full enum (wire token → sentinel → code):
//
//	""              nil              200  accepted (ReasonNone)
//	"infeasible"    ErrInfeasible    422
//	"deadline-past" ErrDeadlinePast  410
//	"busy"          ErrClusterBusy   429
//	"bad-request"      ErrBadConfig     400  (wire errors only, never a Decision)
//	"cancelled"        context.Canceled 499  (wire errors only, never a Decision)
//	"internal"         —                500  (wire errors only, never a Decision)
//	"node-unavailable" ErrDisplaced     503  (displacement events only, never a Decision)
//
// Tokens are append-only: new classes may be added, existing tokens are
// never renamed or reused.
type Reason string

const (
	// ReasonNone is the zero Reason: the task was accepted.
	ReasonNone Reason = ""
	// ReasonInfeasible: the schedulability test found no node assignment
	// meeting the deadline (sentinel ErrInfeasible).
	ReasonInfeasible Reason = "infeasible"
	// ReasonDeadlinePast: the absolute deadline had already passed at
	// submission (sentinel ErrDeadlinePast).
	ReasonDeadlinePast Reason = "deadline-past"
	// ReasonBusy: the waiting queue is at its bound, the service is
	// draining, or it is closed (sentinel ErrClusterBusy).
	ReasonBusy Reason = "busy"
	// ReasonBadRequest labels malformed wire input (sentinel ErrBadConfig).
	// It appears in wire-level error bodies only, never in a Decision.
	ReasonBadRequest Reason = "bad-request"
	// ReasonCancelled labels a submission abandoned by its context. Wire
	// errors only, never a Decision.
	ReasonCancelled Reason = "cancelled"
	// ReasonInternal labels an unclassified server-side failure. Wire
	// errors only, never a Decision.
	ReasonInternal Reason = "internal"
	// ReasonNodeUnavailable: an admitted-but-uncommitted task lost its
	// seat because a node it was planned onto was drained or failed, and
	// re-admission found no feasible replacement (sentinel ErrDisplaced).
	// Carried by displacement events on the stream, never by a Decision.
	ReasonNodeUnavailable Reason = "node-unavailable"
)

// Reasons lists every documented wire token, ReasonNone first.
func Reasons() []Reason {
	return []Reason{
		ReasonNone, ReasonInfeasible, ReasonDeadlinePast, ReasonBusy,
		ReasonBadRequest, ReasonCancelled, ReasonInternal, ReasonNodeUnavailable,
	}
}

// String returns the wire token ("" for ReasonNone).
func (r Reason) String() string { return string(r) }

// OK reports whether the Reason denotes acceptance (ReasonNone).
func (r Reason) OK() bool { return r == ReasonNone }

// Err returns the sentinel error the Reason encodes: nil for ReasonNone,
// the matching sentinel for every documented rejection token, and a
// descriptive unclassified error for anything else (including
// ReasonInternal, which has no sentinel).
func (r Reason) Err() error {
	switch r {
	case ReasonNone:
		return nil
	case ReasonInfeasible:
		return ErrInfeasible
	case ReasonDeadlinePast:
		return ErrDeadlinePast
	case ReasonBusy:
		return ErrClusterBusy
	case ReasonBadRequest:
		return ErrBadConfig
	case ReasonCancelled:
		return context.Canceled
	case ReasonNodeUnavailable:
		return ErrDisplaced
	default:
		return fmt.Errorf("rtdls: unclassified rejection reason %q", string(r))
	}
}

// Error implements error, so errors.Is(decision.Reason, ErrInfeasible)
// works exactly as it did when Decision.Reason was a bare error value.
func (r Reason) Error() string {
	if err := r.Err(); err != nil {
		return err.Error()
	}
	return "rtdls: accepted (no rejection reason)"
}

// Unwrap exposes the sentinel to the errors.Is/errors.As chain.
func (r Reason) Unwrap() error { return r.Err() }

// Code returns the Reason's stable wire status code.
func (r Reason) Code() int {
	if r == ReasonNone {
		return CodeOK
	}
	return Code(r.Err())
}

// ReasonFor classifies an error into its wire Reason: nil maps to
// ReasonNone, each sentinel (wrapped or not) to its token, context
// cancellation to ReasonCancelled, and everything else to ReasonInternal.
func ReasonFor(err error) Reason {
	switch Code(err) {
	case CodeOK:
		return ReasonNone
	case CodeBadRequest:
		return ReasonBadRequest
	case CodeDeadlinePast:
		return ReasonDeadlinePast
	case CodeInfeasible:
		return ReasonInfeasible
	case CodeBusy:
		return ReasonBusy
	case CodeCancelled:
		return ReasonCancelled
	case CodeNodeUnavailable:
		return ReasonNodeUnavailable
	default:
		return ReasonInternal
	}
}

// ParseReason parses a wire token back into its Reason, accepting exactly
// the documented enum ("" parses to ReasonNone). Unknown tokens fail with
// ErrBadConfig so a client talking to a newer server detects — rather than
// silently mislabels — a reason class it does not know.
func ParseReason(s string) (Reason, error) {
	for _, r := range Reasons() {
		if s == string(r) {
			return r, nil
		}
	}
	return ReasonNone, fmt.Errorf("errs: unknown reason token %q: %w", s, ErrBadConfig)
}
