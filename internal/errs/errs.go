// Package errs defines the sentinel errors shared across the whole stack.
// Every layer — the DLT closed forms, the rt scheduling framework, the
// driver and the public service — wraps its failures around one of these
// sentinels, so callers can distinguish the failure classes with errors.Is
// without depending on message text or on the internal package that raised
// the error. The root rtdls package re-exports them.
package errs

import "errors"

var (
	// ErrInfeasible marks a clean admission rejection: no node assignment
	// can meet the task's deadline against the current cluster state. It is
	// not an input error — rejection is a first-class outcome of the
	// schedulability test (in a deployment it triggers deadline
	// renegotiation, the paper's footnote 1).
	ErrInfeasible = errors.New("rtdls: no feasible assignment meets the deadline")

	// ErrDeadlinePast marks a task whose absolute deadline had already
	// passed when it was submitted: it is rejected without running the
	// schedulability test.
	ErrDeadlinePast = errors.New("rtdls: absolute deadline already past at submission")

	// ErrClusterBusy marks a submission the service could not consider at
	// all: the waiting queue is at its configured bound, or the service has
	// been closed.
	ErrClusterBusy = errors.New("rtdls: cluster cannot accept submissions now")

	// ErrBadConfig marks invalid input — malformed tasks, cost tables,
	// options or configurations — as opposed to an infeasible but
	// well-formed admission request.
	ErrBadConfig = errors.New("rtdls: invalid configuration")
)
