package errs_test

import (
	"errors"
	"fmt"
	"testing"

	"rtdls/internal/errs"
)

func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		errs.ErrInfeasible, errs.ErrDeadlinePast, errs.ErrClusterBusy, errs.ErrBadConfig,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}

func TestWrappedMatch(t *testing.T) {
	err := fmt.Errorf("driver: N must be >= 1, got 0: %w", errs.ErrBadConfig)
	if !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("wrapped error does not match ErrBadConfig: %v", err)
	}
	if errors.Is(err, errs.ErrInfeasible) {
		t.Fatalf("wrapped error wrongly matches ErrInfeasible")
	}
}
