package errs_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"rtdls/internal/errs"
)

func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		errs.ErrInfeasible, errs.ErrDeadlinePast, errs.ErrClusterBusy, errs.ErrBadConfig,
		errs.ErrDisplaced,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}

func TestWrappedMatch(t *testing.T) {
	err := fmt.Errorf("driver: N must be >= 1, got 0: %w", errs.ErrBadConfig)
	if !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("wrapped error does not match ErrBadConfig: %v", err)
	}
	if errors.Is(err, errs.ErrInfeasible) {
		t.Fatalf("wrapped error wrongly matches ErrInfeasible")
	}
}

func TestCodeStable(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, errs.CodeOK},
		{errs.ErrBadConfig, errs.CodeBadRequest},
		{errs.ErrDeadlinePast, errs.CodeDeadlinePast},
		{errs.ErrInfeasible, errs.CodeInfeasible},
		{errs.ErrClusterBusy, errs.CodeBusy},
		{fmt.Errorf("pool: shard 2: %w", errs.ErrClusterBusy), errs.CodeBusy},
		{errs.ErrDisplaced, errs.CodeNodeUnavailable},
		{fmt.Errorf("fleet: node 3 failed: %w", errs.ErrDisplaced), errs.CodeNodeUnavailable},
		{context.Canceled, errs.CodeCancelled},
		{context.DeadlineExceeded, errs.CodeCancelled},
		{errors.New("boom"), errs.CodeInternal},
	}
	for _, c := range cases {
		if got := errs.Code(c.err); got != c.want {
			t.Errorf("Code(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	// The numeric values are wire contract: renumbering is a breaking change.
	if errs.CodeOK != 200 || errs.CodeBadRequest != 400 || errs.CodeDeadlinePast != 410 ||
		errs.CodeInfeasible != 422 || errs.CodeBusy != 429 || errs.CodeCancelled != 499 ||
		errs.CodeInternal != 500 || errs.CodeNodeUnavailable != 503 {
		t.Fatalf("wire status codes were renumbered")
	}
}

func TestReasonRoundTrip(t *testing.T) {
	for _, r := range errs.Reasons() {
		got, err := errs.ParseReason(r.String())
		if err != nil {
			t.Fatalf("ParseReason(%q): %v", r, err)
		}
		if got != r {
			t.Fatalf("ParseReason(%q) = %q", r, got)
		}
	}
	if _, err := errs.ParseReason("no-such-token"); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("unknown token must fail with ErrBadConfig, got %v", err)
	}
	// The tokens themselves are wire contract.
	if errs.ReasonInfeasible != "infeasible" || errs.ReasonDeadlinePast != "deadline-past" ||
		errs.ReasonBusy != "busy" || errs.ReasonBadRequest != "bad-request" ||
		errs.ReasonCancelled != "cancelled" || errs.ReasonInternal != "internal" ||
		errs.ReasonNodeUnavailable != "node-unavailable" {
		t.Fatalf("reason tokens were renamed")
	}
}

func TestReasonAsError(t *testing.T) {
	// Reason implements error and unwraps to its sentinel, so pre-3.0
	// errors.Is matching over Decision.Reason keeps working.
	if !errors.Is(errs.ReasonInfeasible, errs.ErrInfeasible) {
		t.Fatalf("ReasonInfeasible does not match ErrInfeasible")
	}
	if !errors.Is(errs.ReasonBusy, errs.ErrClusterBusy) {
		t.Fatalf("ReasonBusy does not match ErrClusterBusy")
	}
	if errors.Is(errs.ReasonBusy, errs.ErrInfeasible) {
		t.Fatalf("ReasonBusy wrongly matches ErrInfeasible")
	}
	if !errors.Is(errs.ReasonNodeUnavailable, errs.ErrDisplaced) {
		t.Fatalf("ReasonNodeUnavailable does not match ErrDisplaced")
	}
	if errors.Is(errs.ReasonNone, errs.ErrInfeasible) || !errs.ReasonNone.OK() {
		t.Fatalf("ReasonNone must match nothing and report OK")
	}
	if errs.ReasonNone.Err() != nil {
		t.Fatalf("ReasonNone.Err() = %v", errs.ReasonNone.Err())
	}
}

func TestReasonForInvertsCode(t *testing.T) {
	errsIn := []error{
		nil,
		errs.ErrBadConfig,
		fmt.Errorf("wrapped: %w", errs.ErrDeadlinePast),
		errs.ErrInfeasible,
		errs.ErrClusterBusy,
		errs.ErrDisplaced,
		context.Canceled,
		errors.New("boom"),
	}
	wants := []errs.Reason{
		errs.ReasonNone, errs.ReasonBadRequest, errs.ReasonDeadlinePast,
		errs.ReasonInfeasible, errs.ReasonBusy, errs.ReasonNodeUnavailable,
		errs.ReasonCancelled, errs.ReasonInternal,
	}
	for i, e := range errsIn {
		r := errs.ReasonFor(e)
		if r != wants[i] {
			t.Errorf("ReasonFor(%v) = %q, want %q", e, r, wants[i])
		}
		if r.Code() != errs.Code(e) {
			t.Errorf("ReasonFor(%v).Code() = %d, Code = %d", e, r.Code(), errs.Code(e))
		}
	}
}
