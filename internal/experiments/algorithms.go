// Package experiments encodes the paper's entire evaluation (Sec. 5,
// Figures 3–16 plus the aggregate comparison and the unshown cluster-size
// sweep) as data, and provides a parallel runner that regenerates every
// panel: Task Reject Ratio vs SystemLoad, averaged over paired-seed runs,
// with 95% confidence intervals.
package experiments

import "rtdls/internal/driver"

// Algorithm names a (policy, partitioner) combination under its paper name.
type Algorithm struct {
	Name      string // paper nomenclature, e.g. "EDF-DLT"
	Policy    string // "edf" or "fifo"
	Algorithm string // driver algorithm identifier
	Rounds    int    // multi-round installments (AlgDLTMR only)
}

// The algorithms evaluated in the paper plus the multi-round extension.
var (
	EDFDLT        = Algorithm{Name: "EDF-DLT", Policy: "edf", Algorithm: driver.AlgDLTIIT}
	EDFOPRMN      = Algorithm{Name: "EDF-OPR-MN", Policy: "edf", Algorithm: driver.AlgOPRMN}
	EDFOPRAN      = Algorithm{Name: "EDF-OPR-AN", Policy: "edf", Algorithm: driver.AlgOPRAN}
	EDFUserSplit  = Algorithm{Name: "EDF-UserSplit", Policy: "edf", Algorithm: driver.AlgUserSplit}
	FIFODLT       = Algorithm{Name: "FIFO-DLT", Policy: "fifo", Algorithm: driver.AlgDLTIIT}
	FIFOOPRMN     = Algorithm{Name: "FIFO-OPR-MN", Policy: "fifo", Algorithm: driver.AlgOPRMN}
	FIFOOPRAN     = Algorithm{Name: "FIFO-OPR-AN", Policy: "fifo", Algorithm: driver.AlgOPRAN}
	FIFOUserSplit = Algorithm{Name: "FIFO-UserSplit", Policy: "fifo", Algorithm: driver.AlgUserSplit}
)

// EDFDLTMR returns the multi-round extension of EDF-DLT with R rounds.
func EDFDLTMR(rounds int) Algorithm {
	return Algorithm{
		Name:      "EDF-DLT-MR" + itoa(rounds),
		Policy:    "edf",
		Algorithm: driver.AlgDLTMR,
		Rounds:    rounds,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
