package experiments

import (
	"fmt"
	"strings"
)

// Comparison aggregates head-to-head results between two algorithms across
// many panel×load cells, reproducing the statistic of Sec. 5.2: in how many
// configurations each side wins and with what reject-ratio gains.
type Comparison struct {
	AName, BName string
	Cells        int
	AWins        int // cells where A's mean reject ratio is strictly lower
	BWins        int
	Ties         int

	// Gains are reject-ratio differences in the winner's favour.
	AvgGainA, MaxGainA, MinGainA float64
	AvgGainB, MaxGainB, MinGainB float64
}

// Compare scans the results for panels whose first two algorithms are
// (aName, bName) in either order and aggregates every load cell.
func Compare(results []*PanelResult, aName, bName string) (*Comparison, error) {
	c := &Comparison{AName: aName, BName: bName, MinGainA: 1e300, MinGainB: 1e300}
	for _, r := range results {
		ai, bi := -1, -1
		for i, a := range r.Panel.Algs {
			switch a.Name {
			case aName:
				ai = i
			case bName:
				bi = i
			}
		}
		if ai < 0 || bi < 0 {
			continue
		}
		for _, cell := range r.Cells {
			c.Cells++
			av := cell.RejectRatio[ai].Mean
			bv := cell.RejectRatio[bi].Mean
			switch {
			case av < bv:
				c.AWins++
				g := bv - av
				c.AvgGainA += g
				if g > c.MaxGainA {
					c.MaxGainA = g
				}
				if g < c.MinGainA {
					c.MinGainA = g
				}
			case bv < av:
				c.BWins++
				g := av - bv
				c.AvgGainB += g
				if g > c.MaxGainB {
					c.MaxGainB = g
				}
				if g < c.MinGainB {
					c.MinGainB = g
				}
			default:
				c.Ties++
			}
		}
	}
	if c.Cells == 0 {
		return nil, fmt.Errorf("experiments: no cells compare %q vs %q", aName, bName)
	}
	if c.AWins > 0 {
		c.AvgGainA /= float64(c.AWins)
	} else {
		c.MinGainA = 0
	}
	if c.BWins > 0 {
		c.AvgGainB /= float64(c.BWins)
	} else {
		c.MinGainB = 0
	}
	return c, nil
}

// String formats the comparison the way Sec. 5.2 reports it.
func (c *Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s over %d simulations:\n", c.AName, c.BName, c.Cells)
	fmt.Fprintf(&b, "  %s better: %d cells (%.2f%%); gains avg=%.3f max=%.3f min=%.3f\n",
		c.AName, c.AWins, 100*float64(c.AWins)/float64(c.Cells),
		c.AvgGainA, c.MaxGainA, c.MinGainA)
	fmt.Fprintf(&b, "  %s better: %d cells (%.2f%%); gains avg=%.3f max=%.3f min=%.3f\n",
		c.BName, c.BWins, 100*float64(c.BWins)/float64(c.Cells),
		c.AvgGainB, c.MaxGainB, c.MinGainB)
	fmt.Fprintf(&b, "  ties: %d\n", c.Ties)
	return b.String()
}
