package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Horizon: 1.5e5, Runs: 2, BaseSeed: 7, Workers: 2}
}

func TestAllPanelsWellFormed(t *testing.T) {
	panels := AllPanels()
	if len(panels) < 60 {
		t.Fatalf("expected the full figure inventory, got %d panels", len(panels))
	}
	seen := map[string]bool{}
	for _, p := range panels {
		if p.ID == "" || p.Figure == "" || p.Title == "" {
			t.Fatalf("panel missing metadata: %+v", p)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate panel ID %s", p.ID)
		}
		seen[p.ID] = true
		if p.N < 1 || p.Cms <= 0 || p.Cps <= 0 || p.AvgSigma <= 0 || p.DCRatio <= 0 {
			t.Fatalf("panel %s has invalid parameters: %+v", p.ID, p)
		}
		if len(p.Algs) < 2 {
			t.Fatalf("panel %s compares fewer than two algorithms", p.ID)
		}
		if len(p.Loads) != 10 {
			t.Fatalf("panel %s does not sweep the paper's ten loads", p.ID)
		}
	}
	// Every paper figure must be present.
	for _, id := range []string{
		"f03", "f04a", "f04d", "f05a", "f05b", "f06a", "f06d", "f07a", "f07d",
		"f08a", "f08f", "f09a", "f10a", "f11a", "f12a", "f13a", "f14a", "f14h",
		"f15a", "f16a", "f16h", "xNa", "xMR", "xAN",
	} {
		if !seen[id] {
			t.Fatalf("missing panel %s", id)
		}
	}
}

func TestPanelByID(t *testing.T) {
	p, ok := PanelByID("f05b")
	if !ok || p.DCRatio != 10 {
		t.Fatalf("PanelByID(f05b) = %+v, %v", p, ok)
	}
	if _, ok := PanelByID("nope"); ok {
		t.Fatalf("unknown ID must not resolve")
	}
}

func TestSeedForDistinctAndStable(t *testing.T) {
	a := SeedFor(1, "f03", 0, 0)
	b := SeedFor(1, "f03", 0, 1)
	c := SeedFor(1, "f03", 1, 0)
	d := SeedFor(1, "f04a", 0, 0)
	e := SeedFor(2, "f03", 0, 0)
	if a == b || a == c || a == d || a == e {
		t.Fatalf("seeds collide: %v %v %v %v %v", a, b, c, d, e)
	}
	if a != SeedFor(1, "f03", 0, 0) {
		t.Fatalf("seed not stable")
	}
}

func TestRunBaselinePanel(t *testing.T) {
	p, _ := PanelByID("f03")
	p.Loads = []float64{0.2, 0.6, 1.0}
	r, err := Run(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3 {
		t.Fatalf("%d cells", len(r.Cells))
	}
	for _, c := range r.Cells {
		for ai, s := range c.RejectRatio {
			if s.N != 2 {
				t.Fatalf("load %v alg %d: %d runs", c.Load, ai, s.N)
			}
			if s.Mean < 0 || s.Mean > 1 {
				t.Fatalf("reject ratio %v out of [0,1]", s.Mean)
			}
		}
	}
	// The headline ordering: EDF-DLT (alg 0) at or below EDF-OPR-MN (alg 1)
	// in aggregate across the sweep.
	var dlt, opr float64
	for _, c := range r.Cells {
		dlt += c.RejectRatio[0].Mean
		opr += c.RejectRatio[1].Mean
	}
	if dlt > opr {
		t.Fatalf("EDF-DLT aggregate %v above EDF-OPR-MN %v", dlt, opr)
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := PanelByID("f03")
	p.Loads = []float64{0.5}
	a, err := Run(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells[0].RejectRatio[0].Mean != b.Cells[0].RejectRatio[0].Mean {
		t.Fatalf("panel runs not deterministic")
	}
}

func TestRunValidation(t *testing.T) {
	p, _ := PanelByID("f03")
	p.Algs = nil
	if _, err := Run(p, quickOpts()); err == nil {
		t.Fatalf("panel without algorithms must fail")
	}
	p, _ = PanelByID("f03")
	p.Loads = nil
	if _, err := Run(p, quickOpts()); err == nil {
		t.Fatalf("panel without loads must fail")
	}
}

func TestFormats(t *testing.T) {
	p, _ := PanelByID("f03")
	p.Loads = []float64{0.4, 0.8}
	r, err := Run(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "load,EDF-DLT_mean") {
		t.Fatalf("csv header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != 3 { // header + two loads
		t.Fatalf("csv rows: %q", csv)
	}
	dat := r.GnuplotDat()
	if !strings.Contains(dat, "# Fig. 3a/3b") || !strings.Contains(dat, "0.40") {
		t.Fatalf("gnuplot dat malformed: %q", dat)
	}
	tbl := r.Table()
	if !strings.Contains(tbl, "EDF-OPR-MN") || !strings.Contains(tbl, "±") {
		t.Fatalf("table malformed: %q", tbl)
	}
	aux := r.AuxCSV()
	if !strings.HasPrefix(aux, "load,EDF-DLT_util,EDF-DLT_resp") {
		t.Fatalf("aux csv header wrong: %q", strings.SplitN(aux, "\n", 2)[0])
	}
	if strings.Count(aux, "\n") != 3 {
		t.Fatalf("aux csv rows: %q", aux)
	}
	chart := r.Chart(40, 10)
	if !strings.Contains(chart, "Task Reject Ratio") {
		t.Fatalf("chart missing labels: %q", chart)
	}
}

func TestRunAllWithProgress(t *testing.T) {
	panels := []Panel{}
	for _, id := range []string{"f03", "f05a"} {
		p, _ := PanelByID(id)
		p.Loads = []float64{0.5}
		panels = append(panels, p)
	}
	calls := 0
	rs, err := RunAll(panels, quickOpts(), func(done, total int, p Panel) {
		calls++
		if total != 2 {
			t.Fatalf("total = %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || calls != 2 {
		t.Fatalf("results %d, progress calls %d", len(rs), calls)
	}
}

func TestCompare(t *testing.T) {
	p, _ := PanelByID("f05a")
	p.Loads = []float64{0.2, 0.5, 0.8}
	r, err := Run(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare([]*PanelResult{r}, "EDF-DLT", "EDF-UserSplit")
	if err != nil {
		t.Fatal(err)
	}
	if c.Cells != 3 {
		t.Fatalf("cells = %d", c.Cells)
	}
	if c.AWins+c.BWins+c.Ties != c.Cells {
		t.Fatalf("win accounting broken: %+v", c)
	}
	if c.String() == "" {
		t.Fatalf("empty comparison string")
	}
	if _, err := Compare([]*PanelResult{r}, "EDF-DLT", "NoSuchAlg"); err == nil {
		t.Fatalf("unknown algorithm must fail")
	}
}

func TestEDFDLTMRNaming(t *testing.T) {
	a := EDFDLTMR(4)
	if a.Name != "EDF-DLT-MR4" || a.Rounds != 4 {
		t.Fatalf("EDFDLTMR(4) = %+v", a)
	}
	if itoa(0) != "0" || itoa(123) != "123" {
		t.Fatalf("itoa broken")
	}
}
