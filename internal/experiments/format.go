package experiments

import (
	"fmt"
	"strings"

	"rtdls/internal/plot"
)

// CSV renders the panel as comma-separated values with one row per load
// and, per algorithm, mean / std / 95% CI half-width columns.
func (r *PanelResult) CSV() string {
	var b strings.Builder
	b.WriteString("load")
	for _, a := range r.Panel.Algs {
		fmt.Fprintf(&b, ",%s_mean,%s_std,%s_ci95", a.Name, a.Name, a.Name)
	}
	b.WriteString("\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%.2f", c.Load)
		for _, s := range c.RejectRatio {
			fmt.Fprintf(&b, ",%.6f,%.6f,%.6f", s.Mean, s.Std, s.CI95Half)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// GnuplotDat renders the panel in the whitespace-separated format of the
// paper's figures: load, then mean and CI per algorithm, with a commented
// header.
func (r *PanelResult) GnuplotDat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", r.Panel.Figure, r.Panel.Title)
	fmt.Fprintf(&b, "# nodes=%d, Cms=%g, Cps=%g, average data size = %g, dcratio=%g%s\n",
		r.Panel.N, r.Panel.Cms, r.Panel.Cps, r.Panel.AvgSigma, r.Panel.DCRatio, r.Panel.heteroSuffix())
	fmt.Fprintf(&b, "# horizon=%g, runs=%d\n", r.Opts.Horizon, r.Opts.Runs)
	b.WriteString("# load")
	for _, a := range r.Panel.Algs {
		fmt.Fprintf(&b, "  %s  ci95", a.Name)
	}
	b.WriteString("\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%.2f", c.Load)
		for _, s := range c.RejectRatio {
			fmt.Fprintf(&b, "  %.6f  %.6f", s.Mean, s.CI95Half)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders an aligned text table of the panel, the form EXPERIMENTS.md
// quotes.
func (r *PanelResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Panel.Figure, r.Panel.Title)
	fmt.Fprintf(&b, "nodes=%d Cms=%g Cps=%g avgσ=%g dcratio=%g%s (horizon=%g, runs=%d)\n",
		r.Panel.N, r.Panel.Cms, r.Panel.Cps, r.Panel.AvgSigma, r.Panel.DCRatio,
		r.Panel.heteroSuffix(), r.Opts.Horizon, r.Opts.Runs)
	fmt.Fprintf(&b, "%-6s", "load")
	for _, a := range r.Panel.Algs {
		fmt.Fprintf(&b, " %22s", a.Name)
	}
	b.WriteString("\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-6.2f", c.Load)
		for _, s := range c.RejectRatio {
			fmt.Fprintf(&b, "    %8.4f ± %-8.4f", s.Mean, s.CI95Half)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AuxCSV renders the auxiliary metrics the paper does not plot but which
// explain its curves: per-algorithm mean cluster utilization and mean task
// response time at every load.
func (r *PanelResult) AuxCSV() string {
	var b strings.Builder
	b.WriteString("load")
	for _, a := range r.Panel.Algs {
		fmt.Fprintf(&b, ",%s_util,%s_resp", a.Name, a.Name)
	}
	b.WriteString("\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%.2f", c.Load)
		for ai := range r.Panel.Algs {
			fmt.Fprintf(&b, ",%.6f,%.3f", c.Utilization[ai], c.MeanResponse[ai])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders the panel as an ASCII figure mirroring the paper's plots:
// Task Reject Ratio over System Load, one marker per algorithm.
func (r *PanelResult) Chart(width, height int) string {
	series := make([]plot.Series, len(r.Panel.Algs))
	for ai, a := range r.Panel.Algs {
		s := plot.Series{Name: a.Name}
		for _, c := range r.Cells {
			s.X = append(s.X, c.Load)
			s.Y = append(s.Y, c.RejectRatio[ai].Mean)
		}
		series[ai] = s
	}
	title := fmt.Sprintf("%s — %s\nnodes=%d, Cms=%g, Cps=%g, average data size = %g, dcratio=%g%s",
		r.Panel.Figure, r.Panel.Title, r.Panel.N, r.Panel.Cms, r.Panel.Cps,
		r.Panel.AvgSigma, r.Panel.DCRatio, r.Panel.heteroSuffix())
	return plot.Chart(title, "System Load", "Task Reject Ratio", series, width, height)
}
