package experiments

import (
	"strings"
	"testing"
)

// TestHeteroPanelsPresent: the heterogeneous extension panels are part of
// the inventory and carry their spread parameters.
func TestHeteroPanelsPresent(t *testing.T) {
	for _, id := range []string{"xHETa", "xHETb", "xHETc", "xHETd", "xHETe"} {
		p, ok := PanelByID(id)
		if !ok {
			t.Fatalf("panel %s missing", id)
		}
		if p.CmsSpread <= 1 && p.CpsSpread <= 1 {
			t.Fatalf("panel %s is not heterogeneous: %+v", id, p)
		}
	}
	if p, _ := PanelByID("xHETd"); p.CmsSpread != 4 || p.CpsSpread != 4 {
		t.Fatalf("xHETd spreads wrong: %+v", p)
	}
}

// TestHeteroPanelRuns executes a trimmed heterogeneous panel end to end:
// paired seeds, spread costs, every cell populated, and the table header
// reporting the heterogeneity.
func TestHeteroPanelRuns(t *testing.T) {
	p, ok := PanelByID("xHETb")
	if !ok {
		t.Fatalf("panel xHETb missing")
	}
	p.Loads = []float64{0.3, 0.8}
	r, err := Run(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells: %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		for ai := range p.Algs {
			s := c.RejectRatio[ai]
			if s.N != quickOpts().Runs {
				t.Fatalf("load %v alg %d: %d runs aggregated, want %d", c.Load, ai, s.N, quickOpts().Runs)
			}
			if s.Mean < 0 || s.Mean > 1 {
				t.Fatalf("load %v alg %d: reject ratio %v out of range", c.Load, ai, s.Mean)
			}
		}
	}
	tbl := r.Table()
	if !strings.Contains(tbl, "cps-spread=4") {
		t.Fatalf("table header must report the spread:\n%s", tbl)
	}
	dat := r.GnuplotDat()
	if !strings.Contains(dat, "cps-spread=4") {
		t.Fatalf("gnuplot header must report the spread:\n%s", dat)
	}
}
