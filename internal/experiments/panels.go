package experiments

import "fmt"

// Panel is one figure panel of the evaluation: a fixed cluster/workload
// configuration, the algorithms being compared, and the SystemLoad sweep.
type Panel struct {
	ID     string // stable identifier, e.g. "f04b"
	Figure string // the paper figure it reproduces, e.g. "Fig. 4b"
	Title  string

	N        int
	Cms      float64
	Cps      float64
	AvgSigma float64
	DCRatio  float64

	// CmsSpread and CpsSpread (>1) make the panel's cluster heterogeneous:
	// per-node costs are drawn log-uniformly around (Cms, Cps), with one
	// deterministic cluster per panel shared by every algorithm, load and
	// run, so comparisons stay paired. 0 leaves the cluster homogeneous.
	CmsSpread float64
	CpsSpread float64

	Algs  []Algorithm
	Loads []float64
}

// heteroSuffix formats the heterogeneity parameters for table headers, or
// returns "" for a homogeneous panel.
func (p Panel) heteroSuffix() string {
	if p.CmsSpread <= 1 && p.CpsSpread <= 1 {
		return ""
	}
	return fmt.Sprintf(", cms-spread=%g, cps-spread=%g", p.CmsSpread, p.CpsSpread)
}

// DefaultLoads returns the paper's SystemLoad sweep {0.1, 0.2, …, 1.0}.
func DefaultLoads() []float64 {
	loads := make([]float64, 10)
	for i := range loads {
		loads[i] = float64(i+1) / 10
	}
	return loads
}

// base returns the paper's baseline panel (Sec. 5.1): N=16, Cms=1, Cps=100,
// Avgσ=200, DCRatio=2.
func base(id, figure, title string, algs ...Algorithm) Panel {
	return Panel{
		ID: id, Figure: figure, Title: title,
		N: 16, Cms: 1, Cps: 100, AvgSigma: 200, DCRatio: 2,
		Algs: algs, Loads: DefaultLoads(),
	}
}

// AllPanels returns every evaluation panel: each figure of the paper plus
// the unshown cluster-size sweep (xN*) and the multi-round ablation (xMR)
// for the paper's future-work extension. See DESIGN.md §4 for the index.
func AllPanels() []Panel {
	var ps []Panel
	add := func(p Panel) { ps = append(ps, p) }

	// Fig. 3a/3b: baseline IIT benefit (3b is the same data with 95% CIs,
	// which every output format includes).
	add(base("f03", "Fig. 3a/3b", "Benefits of Utilizing IITs — baseline", EDFDLT, EDFOPRMN))

	// Fig. 4: DCRatio effects, EDF.
	for i, dcr := range []float64{3, 10, 20, 100} {
		p := base(fmt.Sprintf("f04%c", 'a'+i), fmt.Sprintf("Fig. 4%c", 'a'+i),
			fmt.Sprintf("IIT benefits, DCRatio=%g", dcr), EDFDLT, EDFOPRMN)
		p.DCRatio = dcr
		add(p)
	}

	// Fig. 5: DLT vs User-Split, EDF.
	add(base("f05a", "Fig. 5a", "DLT vs User-Split — baseline", EDFDLT, EDFUserSplit))
	{
		p := base("f05b", "Fig. 5b", "DLT vs User-Split, DCRatio=10", EDFDLT, EDFUserSplit)
		p.DCRatio = 10
		add(p)
	}

	// Fig. 6: Avgσ effects, EDF.
	for i, s := range []float64{100, 200, 400, 800} {
		p := base(fmt.Sprintf("f06%c", 'a'+i), fmt.Sprintf("Fig. 6%c", 'a'+i),
			fmt.Sprintf("IIT benefits, Avgσ=%g", s), EDFDLT, EDFOPRMN)
		p.AvgSigma = s
		add(p)
	}

	// Fig. 7: Cms effects, EDF. (The paper's 7c is titled Cms=2 but plots
	// Cms=4 per the caption; we sweep {1,2,4,8}.)
	for i, cms := range []float64{1, 2, 4, 8} {
		p := base(fmt.Sprintf("f07%c", 'a'+i), fmt.Sprintf("Fig. 7%c", 'a'+i),
			fmt.Sprintf("IIT benefits, Cms=%g", cms), EDFDLT, EDFOPRMN)
		p.Cms = cms
		add(p)
	}

	// Fig. 8: Cps effects, EDF.
	for i, cps := range []float64{10, 50, 500, 1000, 5000, 10000} {
		p := base(fmt.Sprintf("f08%c", 'a'+i), fmt.Sprintf("Fig. 8%c", 'a'+i),
			fmt.Sprintf("IIT benefits, Cps=%g", cps), EDFDLT, EDFOPRMN)
		p.Cps = cps
		add(p)
	}

	// Fig. 9–12: the FIFO mirrors of Figs. 4, 6, 7, 8.
	for i, dcr := range []float64{3, 10, 20, 100} {
		p := base(fmt.Sprintf("f09%c", 'a'+i), fmt.Sprintf("Fig. 9%c", 'a'+i),
			fmt.Sprintf("IIT benefits (FIFO), DCRatio=%g", dcr), FIFODLT, FIFOOPRMN)
		p.DCRatio = dcr
		add(p)
	}
	for i, s := range []float64{100, 200, 400, 800} {
		p := base(fmt.Sprintf("f10%c", 'a'+i), fmt.Sprintf("Fig. 10%c", 'a'+i),
			fmt.Sprintf("IIT benefits (FIFO), Avgσ=%g", s), FIFODLT, FIFOOPRMN)
		p.AvgSigma = s
		add(p)
	}
	for i, cms := range []float64{1, 2, 4, 8} {
		p := base(fmt.Sprintf("f11%c", 'a'+i), fmt.Sprintf("Fig. 11%c", 'a'+i),
			fmt.Sprintf("IIT benefits (FIFO), Cms=%g", cms), FIFODLT, FIFOOPRMN)
		p.Cms = cms
		add(p)
	}
	for i, cps := range []float64{10, 50, 500, 1000, 5000, 10000} {
		p := base(fmt.Sprintf("f12%c", 'a'+i), fmt.Sprintf("Fig. 12%c", 'a'+i),
			fmt.Sprintf("IIT benefits (FIFO), Cps=%g", cps), FIFODLT, FIFOOPRMN)
		p.Cps = cps
		add(p)
	}

	// Fig. 13–14: DLT vs User-Split sweeps, EDF.
	for i, s := range []float64{100, 200, 400, 800} {
		p := base(fmt.Sprintf("f13%c", 'a'+i), fmt.Sprintf("Fig. 13%c", 'a'+i),
			fmt.Sprintf("DLT vs User-Split, Avgσ=%g", s), EDFDLT, EDFUserSplit)
		p.AvgSigma = s
		add(p)
	}
	for i, cps := range []float64{10, 50, 500, 1000, 5000, 10000} {
		p := base(fmt.Sprintf("f14%c", 'a'+i), fmt.Sprintf("Fig. 14%c", 'a'+i),
			fmt.Sprintf("DLT vs User-Split, Cps=%g", cps), EDFDLT, EDFUserSplit)
		p.Cps = cps
		add(p)
	}
	for i, dcr := range []float64{3, 10} {
		p := base(fmt.Sprintf("f14%c", 'g'+i), fmt.Sprintf("Fig. 14%c", 'g'+i),
			fmt.Sprintf("DLT vs User-Split, DCRatio=%g", dcr), EDFDLT, EDFUserSplit)
		p.DCRatio = dcr
		add(p)
	}

	// Fig. 15–16: DLT vs User-Split sweeps, FIFO.
	for i, s := range []float64{100, 200, 400, 800} {
		p := base(fmt.Sprintf("f15%c", 'a'+i), fmt.Sprintf("Fig. 15%c", 'a'+i),
			fmt.Sprintf("DLT vs User-Split (FIFO), Avgσ=%g", s), FIFODLT, FIFOUserSplit)
		p.AvgSigma = s
		add(p)
	}
	for i, cps := range []float64{10, 50, 500, 1000, 5000, 10000} {
		p := base(fmt.Sprintf("f16%c", 'a'+i), fmt.Sprintf("Fig. 16%c", 'a'+i),
			fmt.Sprintf("DLT vs User-Split (FIFO), Cps=%g", cps), FIFODLT, FIFOUserSplit)
		p.Cps = cps
		add(p)
	}
	for i, dcr := range []float64{3, 10} {
		p := base(fmt.Sprintf("f16%c", 'g'+i), fmt.Sprintf("Fig. 16%c", 'g'+i),
			fmt.Sprintf("DLT vs User-Split (FIFO), DCRatio=%g", dcr), FIFODLT, FIFOUserSplit)
		p.DCRatio = dcr
		add(p)
	}

	// Unshown in the paper ("we carried out the same type of simulations by
	// changing … cluster size N; results are similar"): N sweep.
	for i, n := range []int{8, 32, 64} {
		p := base(fmt.Sprintf("xN%c", 'a'+i), "Sec. 5.1 (unshown)",
			fmt.Sprintf("IIT benefits, N=%d", n), EDFDLT, EDFOPRMN)
		p.N = n
		add(p)
	}

	// Multi-round ablation for the paper's future-work extension (Sec. 6).
	add(base("xMR", "Sec. 6 (future work)", "Multi-round extension ablation",
		EDFDLT, EDFDLTMR(2), EDFDLTMR(4), EDFDLTMR(8)))

	// OPR-AN context panel: why "run on all N nodes" is excluded from the
	// paper's comparisons despite lacking IITs.
	add(base("xAN", "Sec. 5 (context)", "OPR-AN vs OPR-MN vs DLT",
		EDFDLT, EDFOPRMN, EDFOPRAN))

	// Heterogeneous-cluster panels (beyond the paper, after Gallet/Robert/
	// Vivien and Wu/Cao/Robertazzi): per-node cost spread around the
	// baseline coefficients. xHETa–c widen the compute spread; xHETd also
	// spreads the link costs; xHETe pits DLT against User-Split when node
	// speeds differ (equal chunks hurt most there).
	for i, sp := range []float64{2, 4, 8} {
		p := base(fmt.Sprintf("xHET%c", 'a'+i), "Extension (hetero)",
			fmt.Sprintf("Heterogeneous cluster, Cps spread ×%g", sp), EDFDLT, EDFOPRMN)
		p.CpsSpread = sp
		add(p)
	}
	{
		p := base("xHETd", "Extension (hetero)", "Heterogeneous cluster, Cms & Cps spread ×4",
			EDFDLT, EDFOPRMN)
		p.CmsSpread = 4
		p.CpsSpread = 4
		add(p)
	}
	{
		p := base("xHETe", "Extension (hetero)", "DLT vs User-Split, Cps spread ×4",
			EDFDLT, EDFUserSplit)
		p.CpsSpread = 4
		add(p)
	}

	return ps
}

// PanelByID returns the panel with the given ID from AllPanels.
func PanelByID(id string) (Panel, bool) {
	for _, p := range AllPanels() {
		if p.ID == id {
			return p, true
		}
	}
	return Panel{}, false
}
