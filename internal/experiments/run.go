package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"rtdls/internal/driver"
	"rtdls/internal/stats"
)

// Options controls how a panel sweep is executed.
type Options struct {
	// Horizon is the arrival window per run in simulated time units. The
	// paper uses 1e7; the default here is 2e6, which preserves every
	// ordering and crossover at a fraction of the cost (DESIGN.md §3).
	Horizon float64
	// Runs is the number of paired-seed repetitions per (load, algorithm)
	// point. The paper uses 10.
	Runs int
	// BaseSeed offsets every derived seed, letting callers draw an entirely
	// fresh set of workloads.
	BaseSeed uint64
	// Workers bounds the number of concurrent simulations (default:
	// GOMAXPROCS).
	Workers int
}

// DefaultOptions returns reduced-cost defaults suitable for a laptop; pass
// {Horizon: 1e7, Runs: 10} for the paper's full scale.
func DefaultOptions() Options {
	return Options{Horizon: 2e6, Runs: 5, BaseSeed: 1, Workers: runtime.GOMAXPROCS(0)}
}

func (o Options) normalized() Options {
	if o.Horizon <= 0 {
		o.Horizon = 2e6
	}
	if o.Runs < 1 {
		o.Runs = 5
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// SeedFor derives the deterministic workload seed for one (panel, load
// index, run) cell. All algorithms share the seed, so comparisons are
// paired: every algorithm sees the bit-identical task stream.
func SeedFor(base uint64, panelID string, loadIdx, run int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", base, panelID, loadIdx, run)
	s := h.Sum64()
	if s == 0 { // PCG accepts 0, but keep seeds trivially distinguishable
		s = 0x9e3779b97f4a7c15
	}
	return s
}

// Cell is one load point of a panel: per-algorithm reject-ratio summaries
// over the paired runs, plus mean auxiliary metrics.
type Cell struct {
	Load float64
	// RejectRatio[i] summarises algorithm Panel.Algs[i] across runs.
	RejectRatio []stats.Summary
	// Utilization[i] and MeanResponse[i] are run-averaged auxiliaries.
	Utilization  []float64
	MeanResponse []float64
}

// PanelResult is a fully executed panel.
type PanelResult struct {
	Panel Panel
	Opts  Options
	Cells []Cell
}

// Run executes every (load, algorithm, run) simulation of the panel on a
// bounded worker pool and aggregates the results.
func Run(p Panel, o Options) (*PanelResult, error) {
	o = o.normalized()
	if len(p.Algs) == 0 {
		return nil, fmt.Errorf("experiments: panel %s has no algorithms", p.ID)
	}
	if len(p.Loads) == 0 {
		return nil, fmt.Errorf("experiments: panel %s has no loads", p.ID)
	}

	type job struct{ li, ai, run int }
	type outcome struct {
		job
		res *driver.Result
		err error
	}
	jobs := make(chan job)
	outs := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				alg := p.Algs[j.ai]
				cfg := driver.Config{
					N: p.N, Cms: p.Cms, Cps: p.Cps,
					Policy:     alg.Policy,
					Algorithm:  alg.Algorithm,
					Rounds:     alg.Rounds,
					SystemLoad: p.Loads[j.li],
					AvgSigma:   p.AvgSigma,
					DCRatio:    p.DCRatio,
					Horizon:    o.Horizon,
					Seed:       SeedFor(o.BaseSeed, p.ID, j.li, j.run),
					CmsSpread:  p.CmsSpread,
					CpsSpread:  p.CpsSpread,
					// One deterministic cluster per panel: every load,
					// algorithm and run shares the same node cost table.
					HeteroSeed: SeedFor(o.BaseSeed, p.ID+"/hetero", 0, 0),
				}
				res, err := driver.Run(cfg)
				outs <- outcome{j, res, err}
			}
		}()
	}
	go func() {
		for li := range p.Loads {
			for ai := range p.Algs {
				for run := 0; run < o.Runs; run++ {
					jobs <- job{li, ai, run}
				}
			}
		}
		close(jobs)
		wg.Wait()
		close(outs)
	}()

	type acc struct {
		rr        stats.Online
		util, mrt stats.Online
	}
	accs := make([][]acc, len(p.Loads))
	for li := range accs {
		accs[li] = make([]acc, len(p.Algs))
	}
	var firstErr error
	for out := range outs {
		if out.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: panel %s load %v alg %s: %w",
					p.ID, p.Loads[out.li], p.Algs[out.ai].Name, out.err)
			}
			continue
		}
		a := &accs[out.li][out.ai]
		a.rr.Add(out.res.RejectRatio)
		a.util.Add(out.res.Utilization)
		a.mrt.Add(out.res.MeanResponse)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	pr := &PanelResult{Panel: p, Opts: o, Cells: make([]Cell, len(p.Loads))}
	for li, load := range p.Loads {
		cell := Cell{
			Load:         load,
			RejectRatio:  make([]stats.Summary, len(p.Algs)),
			Utilization:  make([]float64, len(p.Algs)),
			MeanResponse: make([]float64, len(p.Algs)),
		}
		for ai := range p.Algs {
			a := &accs[li][ai]
			cell.RejectRatio[ai] = a.rr.Summary()
			cell.Utilization[ai] = a.util.Mean()
			cell.MeanResponse[ai] = a.mrt.Mean()
		}
		pr.Cells[li] = cell
	}
	return pr, nil
}

// RunAll executes the given panels sequentially (each panel parallelises
// internally), reporting progress through the optional callback.
func RunAll(panels []Panel, o Options, progress func(done, total int, p Panel)) ([]*PanelResult, error) {
	results := make([]*PanelResult, 0, len(panels))
	for i, p := range panels {
		pr, err := Run(p, o)
		if err != nil {
			return nil, err
		}
		results = append(results, pr)
		if progress != nil {
			progress(i+1, len(panels), p)
		}
	}
	return results, nil
}
