// Package fleet implements the node-lifecycle subsystem's declarative
// side: a churn schedule — a reproducible script of drain/fail/restore
// operations against the engine's fleet — with one grammar shared by every
// binary, so the same chaos run executes identically under the simulator's
// SimClock (dlsim applies ops at simulated instants) and under wall-clock
// time (dlserve applies them in-process, dlload over the admin API).
//
// Grammar, entries separated by ";":
//
//	schedule := entry (";" entry)*
//	entry    := "t=" time action node
//	time     := float                 (the runner's native time base)
//	          | Go duration           ("5s", "250ms" — converted to seconds)
//	action   := "drain" | "fail" | "restore"
//	node     := "n" id | id           (engine-wide node id, shard-major)
//
// Example: "t=5s fail n3; t=12s restore n3". Offsets are interpreted by
// whoever runs the schedule: wall seconds from process start for
// dlserve/dlload, simulation time units for dlsim.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"rtdls/internal/errs"
	"rtdls/internal/service"
)

// Action is one churn operation kind.
type Action uint8

const (
	// ActionDrain: stop placing on the node, finish committed work.
	ActionDrain Action = iota
	// ActionFail: the node's capacity vanishes now.
	ActionFail
	// ActionRestore: return a drained or failed node to service.
	ActionRestore
)

// String returns the action's schedule token.
func (a Action) String() string {
	switch a {
	case ActionDrain:
		return "drain"
	case ActionFail:
		return "fail"
	case ActionRestore:
		return "restore"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// ParseAction parses a schedule action token.
func ParseAction(s string) (Action, error) {
	switch s {
	case "drain":
		return ActionDrain, nil
	case "fail":
		return ActionFail, nil
	case "restore":
		return ActionRestore, nil
	default:
		return 0, fmt.Errorf("fleet: unknown action %q (want drain, fail or restore): %w", s, errs.ErrBadConfig)
	}
}

// Op is one scheduled churn operation: at offset At (in the runner's
// native time base), apply Action to node Node.
type Op struct {
	At     float64
	Action Action
	Node   int
}

// String renders the op in schedule grammar.
func (o Op) String() string {
	return fmt.Sprintf("t=%s %s n%d", strconv.FormatFloat(o.At, 'g', -1, 64), o.Action, o.Node)
}

// Schedule is an ordered churn script. Entries keep their written order;
// runners execute them in At order (stable for equal offsets).
type Schedule []Op

// String renders the schedule in its own grammar, so a parsed schedule
// round-trips: ParseSchedule(s.String()) reproduces s exactly.
func (sch Schedule) String() string {
	parts := make([]string, len(sch))
	for i, op := range sch {
		parts[i] = op.String()
	}
	return strings.Join(parts, "; ")
}

// ParseSchedule parses a churn schedule (see the package comment for the
// grammar). An empty or all-whitespace input yields an empty schedule.
// Offsets must be finite and non-negative; duration-suffixed offsets
// ("5s") are converted to float seconds.
func ParseSchedule(s string) (Schedule, error) {
	var sch Schedule
	for _, raw := range strings.Split(s, ";") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		fields := strings.Fields(entry)
		if len(fields) != 3 {
			return nil, fmt.Errorf("fleet: entry %q: want \"t=<time> <action> <node>\": %w", entry, errs.ErrBadConfig)
		}
		tTok, ok := strings.CutPrefix(fields[0], "t=")
		if !ok {
			return nil, fmt.Errorf("fleet: entry %q: time must be written t=<offset>: %w", entry, errs.ErrBadConfig)
		}
		at, err := parseOffset(tTok)
		if err != nil {
			return nil, fmt.Errorf("fleet: entry %q: %w", entry, err)
		}
		action, err := ParseAction(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fleet: entry %q: %w", entry, err)
		}
		node, err := parseNode(fields[2])
		if err != nil {
			return nil, fmt.Errorf("fleet: entry %q: %w", entry, err)
		}
		sch = append(sch, Op{At: at, Action: action, Node: node})
	}
	return sch, nil
}

// parseOffset accepts a bare float (native time units) or a Go duration
// ("5s", "250ms"), which is converted to seconds.
func parseOffset(tok string) (float64, error) {
	if at, err := strconv.ParseFloat(tok, 64); err == nil {
		if math.IsNaN(at) || math.IsInf(at, 0) || at < 0 {
			return 0, fmt.Errorf("fleet: offset %q must be finite and non-negative: %w", tok, errs.ErrBadConfig)
		}
		return at, nil
	}
	d, err := time.ParseDuration(tok)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("fleet: bad offset %q (want a number or a non-negative duration): %w", tok, errs.ErrBadConfig)
	}
	return d.Seconds(), nil
}

// parseNode accepts "n<id>" or a bare non-negative integer.
func parseNode(tok string) (int, error) {
	trimmed := strings.TrimPrefix(tok, "n")
	id, err := strconv.Atoi(trimmed)
	if err != nil || id < 0 || trimmed != strconv.Itoa(id) {
		return 0, fmt.Errorf("fleet: bad node %q (want n<id> or a non-negative id): %w", tok, errs.ErrBadConfig)
	}
	return id, nil
}

// Sorted returns a copy of the schedule in execution order: ascending At,
// stable for equal offsets.
func (sch Schedule) Sorted() Schedule {
	out := make(Schedule, len(sch))
	copy(out, sch)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Controller is the slice of the engine surface a churn runner drives —
// both service.Service and pool.Pool implement it, as does an HTTP admin
// client.
type Controller interface {
	DrainNode(node int) (service.FleetResult, error)
	FailNode(node int) (service.FleetResult, error)
	RestoreNode(node int) (service.FleetResult, error)
}

// Apply dispatches one op to the controller.
func Apply(c Controller, op Op) (service.FleetResult, error) {
	switch op.Action {
	case ActionDrain:
		return c.DrainNode(op.Node)
	case ActionFail:
		return c.FailNode(op.Node)
	case ActionRestore:
		return c.RestoreNode(op.Node)
	default:
		return service.FleetResult{}, fmt.Errorf("fleet: unknown action %d: %w", op.Action, errs.ErrBadConfig)
	}
}

// Run executes the schedule against wall time: each op fires At seconds
// after Run starts (ops are executed in At order). apply performs one op —
// use Apply against an engine, or an HTTP client against a remote admin
// API — and its error aborts the run. Run returns when the schedule is
// exhausted, apply fails, or done is closed/cancelled.
func Run(done <-chan struct{}, sch Schedule, apply func(Op) error) error {
	start := time.Now()
	for _, op := range sch.Sorted() {
		delay := time.Duration(op.At*float64(time.Second)) - time.Since(start)
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-done:
				timer.Stop()
				return nil
			case <-timer.C:
			}
		} else {
			select {
			case <-done:
				return nil
			default:
			}
		}
		if err := apply(op); err != nil {
			return fmt.Errorf("fleet: applying %q: %w", op.String(), err)
		}
	}
	return nil
}
