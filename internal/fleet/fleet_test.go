package fleet_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rtdls/internal/errs"
	"rtdls/internal/fleet"
	"rtdls/internal/service"
)

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in   string
		want fleet.Schedule
	}{
		{"", nil},
		{"   ;  ; ", nil},
		{"t=5 fail n3", fleet.Schedule{{At: 5, Action: fleet.ActionFail, Node: 3}}},
		{"t=5s fail n3", fleet.Schedule{{At: 5, Action: fleet.ActionFail, Node: 3}}},
		{"t=250ms drain 0", fleet.Schedule{{At: 0.25, Action: fleet.ActionDrain, Node: 0}}},
		{"t=1.5 restore n12", fleet.Schedule{{At: 1.5, Action: fleet.ActionRestore, Node: 12}}},
		{
			"t=5s fail n3; t=12s restore n3",
			fleet.Schedule{
				{At: 5, Action: fleet.ActionFail, Node: 3},
				{At: 12, Action: fleet.ActionRestore, Node: 3},
			},
		},
		{
			"  t=0 drain n1 ;t=2 fail n0;  ",
			fleet.Schedule{
				{At: 0, Action: fleet.ActionDrain, Node: 1},
				{At: 2, Action: fleet.ActionFail, Node: 0},
			},
		},
	}
	for _, tc := range cases {
		got, err := fleet.ParseSchedule(tc.in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): unexpected error %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSchedule(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"fail n3",              // missing t=
		"t=5 fail",             // missing node
		"t=5 explode n3",       // unknown action
		"t=-1 fail n3",         // negative offset
		"t=NaN fail n3",        // non-finite offset
		"t=+Inf fail n3",       // non-finite offset
		"t=x fail n3",          // unparsable offset
		"t=5 fail n-1",         // negative node
		"t=5 fail nx",          // unparsable node
		"t=5 fail n03",         // non-canonical node id
		"t=5 fail n3 extra",    // trailing token
		"t=5s fail n3; waffle", // bad second entry
	}
	for _, in := range bad {
		if _, err := fleet.ParseSchedule(in); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("ParseSchedule(%q): want ErrBadConfig, got %v", in, err)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	sch := fleet.Schedule{
		{At: 0.25, Action: fleet.ActionDrain, Node: 0},
		{At: 5, Action: fleet.ActionFail, Node: 3},
		{At: 12, Action: fleet.ActionRestore, Node: 3},
	}
	s := sch.String()
	back, err := fleet.ParseSchedule(s)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s, err)
	}
	if !reflect.DeepEqual(back, sch) {
		t.Fatalf("round trip: %q parsed to %+v, want %+v", s, back, sch)
	}
}

func TestSortedIsStableAndNonMutating(t *testing.T) {
	sch := fleet.Schedule{
		{At: 12, Action: fleet.ActionRestore, Node: 3},
		{At: 5, Action: fleet.ActionFail, Node: 3},
		{At: 5, Action: fleet.ActionDrain, Node: 1}, // same offset: keeps written order
	}
	orig := make(fleet.Schedule, len(sch))
	copy(orig, sch)
	got := sch.Sorted()
	want := fleet.Schedule{sch[1], sch[2], sch[0]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sorted() = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(sch, orig) {
		t.Fatalf("Sorted() mutated its receiver: %+v", sch)
	}
}

// recorder implements fleet.Controller and records the ops it receives.
type recorder struct {
	ops []string
	err error
}

func (r *recorder) note(kind string, node int) (service.FleetResult, error) {
	r.ops = append(r.ops, fmt.Sprintf("%s n%d", kind, node))
	return service.FleetResult{Node: node}, r.err
}

func (r *recorder) DrainNode(n int) (service.FleetResult, error)   { return r.note("drain", n) }
func (r *recorder) FailNode(n int) (service.FleetResult, error)    { return r.note("fail", n) }
func (r *recorder) RestoreNode(n int) (service.FleetResult, error) { return r.note("restore", n) }

func TestApplyDispatches(t *testing.T) {
	rec := &recorder{}
	sch, err := fleet.ParseSchedule("t=0 drain n1; t=0 fail n2; t=0 restore n2")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range sch {
		if _, err := fleet.Apply(rec, op); err != nil {
			t.Fatalf("Apply(%v): %v", op, err)
		}
	}
	want := []string{"drain n1", "fail n2", "restore n2"}
	if !reflect.DeepEqual(rec.ops, want) {
		t.Fatalf("applied ops = %v, want %v", rec.ops, want)
	}
}

func TestRunExecutesInOrderAndStopsOnError(t *testing.T) {
	rec := &recorder{}
	sch := fleet.Schedule{
		{At: 0.002, Action: fleet.ActionRestore, Node: 1},
		{At: 0, Action: fleet.ActionFail, Node: 1},
	}
	err := fleet.Run(nil, sch, func(op fleet.Op) error {
		_, err := fleet.Apply(rec, op)
		return err
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"fail n1", "restore n1"}
	if !reflect.DeepEqual(rec.ops, want) {
		t.Fatalf("run order = %v, want %v", rec.ops, want)
	}

	boom := errors.New("boom")
	calls := 0
	err = fleet.Run(nil, sch, func(fleet.Op) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run after apply failure: want boom, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("Run kept going after apply failure: %d calls", calls)
	}
}

func TestRunHonoursDone(t *testing.T) {
	done := make(chan struct{})
	close(done)
	sch := fleet.Schedule{{At: 3600, Action: fleet.ActionFail, Node: 0}}
	start := time.Now()
	if err := fleet.Run(done, sch, func(fleet.Op) error {
		t.Fatal("apply called after done")
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run ignored done for %v", elapsed)
	}
}

// FuzzParseSchedule checks that the parser never panics and that every
// schedule it accepts survives a String→ParseSchedule round trip intact —
// the property the CI fuzz smoke exercises.
func FuzzParseSchedule(f *testing.F) {
	f.Add("t=5s fail n3; t=12s restore n3")
	f.Add("t=0 drain 0")
	f.Add("t=1.5e-3 restore n12")
	f.Add(" ; ;; ")
	f.Add("t=250ms drain n1")
	f.Add("t=5 fail n3 extra")
	f.Add("t=NaN fail n3")
	f.Fuzz(func(t *testing.T, in string) {
		sch, err := fleet.ParseSchedule(in)
		if err != nil {
			if !errors.Is(err, errs.ErrBadConfig) {
				t.Fatalf("ParseSchedule(%q): non-config error %v", in, err)
			}
			return
		}
		s := sch.String()
		back, err := fleet.ParseSchedule(s)
		if err != nil {
			t.Fatalf("ParseSchedule(%q) ok, but re-parse of %q failed: %v", in, s, err)
		}
		if len(back) != len(sch) {
			t.Fatalf("round trip of %q: %d ops became %d", in, len(sch), len(back))
		}
		for i := range sch {
			if back[i] != sch[i] {
				t.Fatalf("round trip of %q: op %d %+v became %+v", in, i, sch[i], back[i])
			}
		}
	})
}
