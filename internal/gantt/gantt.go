// Package gantt renders ASCII Gantt charts of node occupation from
// committed plans. It makes the paper's core phenomenon visible: under the
// OPR baseline a waiting task's early nodes show reserved-idle stretches
// ('·') before execution ('█'-style letters), while under IIT-DLT every
// node is working from the moment it is released.
package gantt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rtdls/internal/rt"
)

// interval is one task's occupation of one node.
type interval struct {
	node     int
	from, to float64
	execFrom float64 // when computation (as opposed to reservation) begins
	taskID   int64
}

// Collector implements rt.Observer and records committed node occupation.
// Attach it via Scheduler.SetObserver or driver Config.Observer.
type Collector struct {
	n         int
	intervals []interval
	maxTime   float64
}

// NewCollector returns a collector for a cluster of n nodes.
func NewCollector(n int) *Collector { return &Collector{n: n} }

// OnAccept implements rt.Observer.
func (c *Collector) OnAccept(now float64, t *rt.Task, p *rt.Plan) {}

// OnReject implements rt.Observer.
func (c *Collector) OnReject(now float64, t *rt.Task) {}

// OnCommit implements rt.Observer.
func (c *Collector) OnCommit(now float64, p *rt.Plan) {
	rn := p.Rn()
	for i, id := range p.Nodes {
		execFrom := p.Starts[i]
		if p.SimultaneousStart {
			// OPR-style plan: the node is held from its release but only
			// executes once all nodes are free.
			execFrom = rn
		}
		iv := interval{
			node: id, from: p.Starts[i], to: p.Release[i],
			execFrom: execFrom, taskID: p.Task.ID,
		}
		c.intervals = append(c.intervals, iv)
		if iv.to > c.maxTime {
			c.maxTime = iv.to
		}
	}
}

// Intervals returns the number of recorded node-occupation intervals.
func (c *Collector) Intervals() int { return len(c.intervals) }

// Render draws the node timelines over [from, to] using width columns.
// Each task is labelled by a letter cycling through a–z (derived from its
// ID); '·' marks reserved idle time (node held but not yet executing) and
// spaces mark genuinely free time.
func (c *Collector) Render(from, to float64, width int) string {
	if width < 10 {
		width = 10
	}
	if to <= from {
		to = c.maxTime
		if to <= from {
			to = from + 1
		}
	}
	scale := float64(width) / (to - from)
	col := func(t float64) int {
		x := int(math.Floor((t - from) * scale))
		if x < 0 {
			return 0
		}
		if x >= width {
			return width - 1
		}
		return x
	}

	rows := make([][]byte, c.n)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	ivs := append([]interval(nil), c.intervals...)
	sort.SliceStable(ivs, func(a, b int) bool { return ivs[a].from < ivs[b].from })
	for _, iv := range ivs {
		if iv.node < 0 || iv.node >= c.n || iv.to < from || iv.from > to {
			continue
		}
		label := byte('a' + iv.taskID%26)
		lo, hi := col(iv.from), col(iv.to)
		ex := col(iv.execFrom)
		for x := lo; x <= hi; x++ {
			if x < ex {
				rows[iv.node][x] = '.'
			} else {
				rows[iv.node][x] = label
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "node timeline  t ∈ [%.0f, %.0f]  ('.' = reserved idle, letters = task execution)\n", from, to)
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", i+1, string(row))
	}
	return b.String()
}
