package gantt

import (
	"strings"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func TestCollectorRecordsCommits(t *testing.T) {
	c := NewCollector(4)
	p := &rt.Plan{
		Task:    &rt.Task{ID: 0, Sigma: 10, RelDeadline: 1e6},
		Nodes:   []int{0, 2},
		Starts:  []float64{0, 100},
		Release: []float64{500, 500},
		Alphas:  []float64{0.6, 0.4},
	}
	c.OnCommit(0, p)
	if c.Intervals() != 2 {
		t.Fatalf("intervals = %d", c.Intervals())
	}
	out := c.Render(0, 500, 50)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "P4") {
		t.Fatalf("missing node rows:\n%s", out)
	}
	if !strings.ContainsRune(out, 'a') {
		t.Fatalf("task label missing:\n%s", out)
	}
	// Node P2 (index 1) must be empty.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "P2") && strings.ContainsAny(line, "abcdefghijklmnopqrstuvwxyz.") {
			t.Fatalf("unused node shows occupation: %s", line)
		}
	}
}

func TestReservedIdleRendersDots(t *testing.T) {
	c := NewCollector(2)
	p := &rt.Plan{
		Task:         &rt.Task{ID: 1, Sigma: 10, RelDeadline: 1e6},
		Nodes:        []int{0, 1},
		Starts:       []float64{0, 400},
		Release:      []float64{800, 800},
		Alphas:       []float64{0.5, 0.5},
		ReservedIdle: 400, // OPR-style: node 0 held idle until rn=400
	}
	c.OnCommit(0, p)
	out := c.Render(0, 800, 80)
	if !strings.Contains(out, ".") {
		t.Fatalf("reserved idle not rendered:\n%s", out)
	}
}

func TestRenderDefaults(t *testing.T) {
	c := NewCollector(1)
	// Degenerate calls must not panic.
	_ = c.Render(0, 0, 0)
	c.OnCommit(0, &rt.Plan{
		Task:    &rt.Task{ID: 2, Sigma: 1, RelDeadline: 10},
		Nodes:   []int{0},
		Starts:  []float64{0},
		Release: []float64{10},
		Alphas:  []float64{1},
	})
	out := c.Render(0, 0, 40) // to ≤ from: falls back to maxTime
	if !strings.ContainsRune(out, 'c') {
		t.Fatalf("fallback range missed the interval:\n%s", out)
	}
}

// TestEndToEndTimelines drives real schedulers and checks the visual
// signature: under OPR the chart contains reserved-idle dots, under
// IIT-DLT it never does.
func TestEndToEndTimelines(t *testing.T) {
	run := func(part rt.Partitioner) string {
		cl, err := cluster.New(8, baseline)
		if err != nil {
			t.Fatal(err)
		}
		s := rt.NewScheduler(cl, rt.EDF, part)
		col := NewCollector(8)
		s.SetObserver(col)
		now := 0.0
		for i := 0; i < 40; i++ {
			task := &rt.Task{
				ID:          int64(i),
				Arrival:     now,
				Sigma:       80 + float64(i%5)*40,
				RelDeadline: 4000,
			}
			if _, err := s.Submit(task, now); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CommitDue(now); err != nil {
				t.Fatal(err)
			}
			now += 300
		}
		return col.Render(0, now, 100)
	}
	body := func(chart string) string {
		// Drop the legend line; only node rows matter.
		if i := strings.IndexByte(chart, '\n'); i >= 0 {
			return chart[i+1:]
		}
		return chart
	}
	opr := run(rt.OPR{})
	if !strings.Contains(body(opr), ".") {
		t.Fatalf("OPR timeline shows no inserted idle time:\n%s", opr)
	}
	iit := run(rt.IITDLT{})
	if strings.Contains(body(iit), ".") {
		t.Fatalf("IIT-DLT timeline must not reserve idle time:\n%s", iit)
	}
}

var _ rt.Observer = (*Collector)(nil)
