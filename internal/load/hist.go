package load

import "math"

// Histogram is a log-bucketed latency histogram in the HDR style: bucket
// boundaries grow geometrically, so relative error is bounded (~5%) across
// the full range from 1 µs to 120 s, and quantiles far into the tail stay
// meaningful without storing every sample. Values are wall seconds.
//
// A Histogram is not safe for concurrent use; give each worker its own and
// Merge them.
type Histogram struct {
	counts   []uint64
	total    uint64
	sum      float64
	max      float64
	underMin uint64 // samples below histMin, counted in bucket 0
}

const (
	histMin    = 1e-6 // 1 µs
	histMax    = 120  // 2 min
	histGrowth = 1.05
)

var histBuckets = int(math.Ceil(math.Log(histMax/histMin)/math.Log(histGrowth))) + 2

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

func bucketFor(v float64) int {
	if v <= histMin {
		return 0
	}
	idx := int(math.Ceil(math.Log(v/histMin) / math.Log(histGrowth)))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper is the inclusive upper bound of bucket idx in seconds.
func bucketUpper(idx int) float64 {
	return histMin * math.Pow(histGrowth, float64(idx))
}

// Record adds one sample (in seconds). Negative samples are clamped to
// zero — they can only arise from clock skew between goroutines.
func (h *Histogram) Record(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	h.counts[bucketFor(seconds)]++
	h.total++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact arithmetic mean of the samples in seconds.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the exact largest sample in seconds.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in
// seconds: the upper edge of the bucket containing the q·Count-th sample,
// so the true quantile is at most ~5% below the returned value. The exact
// maximum is used for the final bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			up := bucketUpper(i)
			if up > h.max {
				up = h.max
			}
			return up
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	h.underMin += other.underMin
}
