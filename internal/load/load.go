// Package load is the wire-level load harness behind cmd/dlload: it
// drives a dlserve endpoint with closed-loop (fixed concurrency) or
// open-loop (scheduled arrival) traffic, classifies every response by the
// stable wire code, verifies that busy rejections carry usable Retry-After
// hints, and summarises latency with an HDR-style log-bucketed histogram.
//
// Open-loop latency is measured from each request's *intended* arrival
// instant, not from when a worker got around to sending it, so a stalled
// server inflates the tail instead of silently slowing the generator
// (the coordinated-omission trap).
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtdls/internal/errs"
	"rtdls/internal/fleet"
)

// Options configures one load run.
type Options struct {
	// URL is the dlserve base URL, e.g. "http://127.0.0.1:8080".
	URL string

	// Mode is "closed" (Workers goroutines, each submitting back to back)
	// or "open" (N arrivals on a generated schedule).
	Mode string

	// Workers is the closed-loop concurrency; in open mode it caps the
	// requests in flight (defaults: 16 closed, 1024 open).
	Workers int

	// N is the total number of submissions.
	N int

	// Rate is the open-loop mean arrival rate in requests per second.
	Rate float64

	// Burst groups open-loop arrivals: tasks arrive in bursts of this
	// size with exponential gaps between bursts, keeping the mean rate at
	// Rate. 1 (or 0) means plain Poisson arrivals.
	Burst int

	// Replay, when non-empty, is an explicit open-loop arrival schedule:
	// offsets in seconds from the start of the run. Overrides Rate/Burst
	// and N.
	Replay []float64

	// Sigma and Deadline shape the submitted tasks (simulation units).
	// SigmaSpread draws each task's sigma uniformly from
	// [Sigma/SigmaSpread, Sigma*SigmaSpread]; <= 1 means constant.
	Sigma       float64
	Deadline    float64
	SigmaSpread float64

	// Seed feeds the arrival-schedule and sigma RNG.
	Seed int64

	// Timeout bounds one HTTP request (default 10 s).
	Timeout time.Duration

	// Churn, when non-empty, drives the server's fleet admin API during
	// the run: each op is POSTed to /v1/nodes/{id}/{action} at its
	// wall-second offset from the start. The traffic side keeps running
	// regardless of individual op failures; the run waits for the schedule
	// to finish (so a trailing restore always lands) before the post-run
	// stats and metrics scrapes.
	Churn fleet.Schedule

	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// ChurnReport summarises the churn schedule the harness drove over the
// fleet admin API — part of BENCH_wire.json for chaos runs.
type ChurnReport struct {
	Schedule   string `json:"schedule"`
	Applied    int64  `json:"applied"`
	Failed     int64  `json:"failed"`
	Displaced  int64  `json:"displaced"`
	Readmitted int64  `json:"readmitted"`
}

// RetryAfterReport summarises the Retry-After hints observed on busy
// rejections (429) and drain refusals (503). Compliant means every such
// response carried a parseable hint of at least one second.
type RetryAfterReport struct {
	Observed   int64   `json:"observed"`
	Missing    int64   `json:"missing"`
	MinSeconds float64 `json:"min_seconds,omitempty"`
	MaxSeconds float64 `json:"max_seconds,omitempty"`
	Compliant  bool    `json:"compliant"`
}

// LatencyReport summarises the merged histogram in milliseconds.
type LatencyReport struct {
	Samples uint64  `json:"samples"`
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
	P99Ms   float64 `json:"p99_ms"`
	P999Ms  float64 `json:"p999_ms"`
	MeanMs  float64 `json:"mean_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// Report is the result of one load run — the content of BENCH_wire.json.
//
// HTTP5xx counts hard server errors (status >= 500 except 503); 503 is the
// server's deliberate drain backpressure and is tallied as Unavailable.
type Report struct {
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	Seed       int64   `json:"seed"`

	Requests         int64   `json:"requests"`
	DurationSeconds  float64 `json:"duration_seconds"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	Accepted           int64 `json:"accepted"`
	RejectedInfeasible int64 `json:"rejected_infeasible"`
	RejectedDeadline   int64 `json:"rejected_deadline"`
	RejectedBusy       int64 `json:"rejected_busy"`
	BadRequest         int64 `json:"bad_request"`
	Unavailable        int64 `json:"unavailable"`
	HTTP5xx            int64 `json:"http_5xx"`
	TransportErrors    int64 `json:"transport_errors"`
	OtherStatus        int64 `json:"other_status"`

	RetryAfter RetryAfterReport `json:"retry_after"`
	Latency    LatencyReport    `json:"latency"`

	// ServerStats is the server's /v1/stats snapshot taken after the run.
	ServerStats json.RawMessage `json:"server_stats,omitempty"`

	// ServerMetrics is the before→after delta of the server's /metrics
	// exposition over the run: per-stage admission latency quantiles,
	// per-shard outcome counters, the queue-depth high-water mark and the
	// event-drop count. Omitted when the server has no /metrics endpoint.
	ServerMetrics *ServerMetrics `json:"server_metrics,omitempty"`

	// Churn summarises the fleet churn schedule the run drove, when one
	// was configured.
	Churn *ChurnReport `json:"churn,omitempty"`
}

// AcceptRatio returns accepted / requests (0 with no requests).
func (r *Report) AcceptRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Accepted) / float64(r.Requests)
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// counters is the shared outcome tally, updated lock-free by workers.
type counters struct {
	accepted, infeasible, deadline, busy int64
	badReq, unavailable, fivexx          int64
	transport, other                     int64

	raObserved, raMissing int64
	raMin, raMax          atomicFloat
}

// atomicFloat is a CAS min/max accumulator for the Retry-After bounds.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) update(v float64, better func(candidate, current float64) bool) {
	for {
		cur := a.bits.Load()
		if cur != 0 && !better(v, math.Float64frombits(cur)) {
			return
		}
		if a.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}
func (a *atomicFloat) value() float64 { return math.Float64frombits(a.bits.Load()) }

type taskBody struct {
	ID       int64   `json:"id"`
	Sigma    float64 `json:"sigma"`
	Deadline float64 `json:"deadline"`
}

// Run executes one load run and returns its report. The context cancels
// the run early; requests already in flight still complete.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("load: empty URL")
	}
	if opts.Mode == "" {
		opts.Mode = "closed"
	}
	if opts.Mode != "closed" && opts.Mode != "open" {
		return nil, fmt.Errorf("load: unknown mode %q (want closed or open)", opts.Mode)
	}
	if opts.N <= 0 && len(opts.Replay) == 0 {
		return nil, fmt.Errorf("load: N must be positive")
	}
	if opts.Workers <= 0 {
		if opts.Mode == "closed" {
			opts.Workers = 16
		} else {
			opts.Workers = 1024
		}
	}
	if opts.Mode == "open" && opts.Rate <= 0 && len(opts.Replay) == 0 {
		return nil, fmt.Errorf("load: open mode needs a positive rate")
	}
	if opts.Sigma <= 0 {
		opts.Sigma = 200
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 20000
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        opts.Workers * 2,
				MaxIdleConnsPerHost: opts.Workers * 2,
			},
		}
	}

	var (
		cnt   counters
		hists = make([]*Histogram, opts.Workers)
		seq   atomic.Int64
	)

	submitURL := opts.URL + "/v1/submit"
	body := func(rng *rand.Rand) taskBody {
		sigma := opts.Sigma
		if opts.SigmaSpread > 1 {
			lo, hi := opts.Sigma/opts.SigmaSpread, opts.Sigma*opts.SigmaSpread
			sigma = lo + rng.Float64()*(hi-lo)
		}
		return taskBody{ID: seq.Add(1), Sigma: sigma, Deadline: opts.Deadline}
	}

	// Scrape /metrics before the run so the report can carry server-side
	// deltas; a server without the endpoint just skips this section.
	preScrape, preErr := ScrapeMetrics(ctx, client, opts.URL)

	// The churn schedule runs concurrently with the traffic, POSTing each
	// op to the fleet admin API at its wall offset. Individual op failures
	// are tallied, not fatal — the traffic is the experiment.
	var churnRep *ChurnReport
	churnDone := make(chan struct{})
	if len(opts.Churn) > 0 {
		churnRep = &ChurnReport{Schedule: opts.Churn.String()}
		go func() {
			defer close(churnDone)
			fleet.Run(ctx.Done(), opts.Churn, func(op fleet.Op) error {
				if err := applyChurnOp(ctx, client, opts.URL, op, churnRep); err != nil {
					churnRep.Failed++
				} else {
					churnRep.Applied++
				}
				return nil // keep driving the rest of the schedule
			})
		}()
	} else {
		close(churnDone)
	}

	start := time.Now()
	switch opts.Mode {
	case "closed":
		var wg sync.WaitGroup
		var issued atomic.Int64
		for w := 0; w < opts.Workers; w++ {
			h := NewHistogram()
			hists[w] = h
			wg.Add(1)
			go func(rng *rand.Rand) {
				defer wg.Done()
				for {
					if issued.Add(1) > int64(opts.N) || ctx.Err() != nil {
						return
					}
					t0 := time.Now()
					doSubmit(ctx, client, submitURL, body(rng), &cnt)
					h.Record(time.Since(t0).Seconds())
				}
			}(rand.New(rand.NewSource(opts.Seed + int64(w))))
		}
		wg.Wait()
	case "open":
		offsets := opts.Replay
		if len(offsets) == 0 {
			offsets = arrivalSchedule(opts.N, opts.Rate, opts.Burst, opts.Seed)
		}
		rng := rand.New(rand.NewSource(opts.Seed ^ 0x9e3779b9))
		bodies := make([]taskBody, len(offsets))
		for i := range bodies {
			bodies[i] = body(rng)
		}
		slots := make(chan int, opts.Workers)
		for w := 0; w < opts.Workers; w++ {
			slots <- w
			hists[w] = NewHistogram()
		}
		var wg sync.WaitGroup
		for i, off := range offsets {
			intended := start.Add(time.Duration(off * float64(time.Second)))
			if d := time.Until(intended); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
			if ctx.Err() != nil {
				break
			}
			w := <-slots // blocks when Workers requests are in flight
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				defer func() { slots <- w }()
				doSubmit(ctx, client, submitURL, bodies[i], &cnt)
				// Latency from the intended arrival instant: queueing
				// behind a saturated in-flight cap counts against the
				// server, not the generator.
				hists[w].Record(time.Since(intended).Seconds())
			}(i, w)
		}
		wg.Wait()
	}
	elapsed := time.Since(start).Seconds()

	merged := NewHistogram()
	for _, h := range hists {
		merged.Merge(h)
	}

	rep := &Report{
		Mode:       opts.Mode,
		Workers:    opts.Workers,
		RatePerSec: opts.Rate,
		Burst:      opts.Burst,
		Seed:       opts.Seed,

		Requests: cnt.accepted + cnt.infeasible + cnt.deadline + cnt.busy +
			cnt.badReq + cnt.unavailable + cnt.fivexx + cnt.transport + cnt.other,
		DurationSeconds: elapsed,

		Accepted:           cnt.accepted,
		RejectedInfeasible: cnt.infeasible,
		RejectedDeadline:   cnt.deadline,
		RejectedBusy:       cnt.busy,
		BadRequest:         cnt.badReq,
		Unavailable:        cnt.unavailable,
		HTTP5xx:            cnt.fivexx,
		TransportErrors:    cnt.transport,
		OtherStatus:        cnt.other,

		RetryAfter: RetryAfterReport{
			Observed:   cnt.raObserved,
			Missing:    cnt.raMissing,
			MinSeconds: cnt.raMin.value(),
			MaxSeconds: cnt.raMax.value(),
			Compliant:  cnt.raMissing == 0,
		},
		Latency: LatencyReport{
			Samples: merged.Count(),
			P50Ms:   merged.Quantile(0.50) * 1e3,
			P90Ms:   merged.Quantile(0.90) * 1e3,
			P99Ms:   merged.Quantile(0.99) * 1e3,
			P999Ms:  merged.Quantile(0.999) * 1e3,
			MeanMs:  merged.Mean() * 1e3,
			MaxMs:   merged.Max() * 1e3,
		},
	}
	if elapsed > 0 {
		rep.ThroughputPerSec = float64(rep.Requests) / elapsed
	}
	// Let a trailing restore land before the post-run scrapes, so the
	// final stats and fleet gauges describe the recovered fleet.
	<-churnDone
	rep.Churn = churnRep
	if stats, err := fetchStats(ctx, client, opts.URL); err == nil {
		rep.ServerStats = stats
	}
	if preErr == nil {
		if postScrape, err := ScrapeMetrics(ctx, client, opts.URL); err == nil {
			rep.ServerMetrics = MetricsDelta(preScrape, postScrape)
		}
	}
	return rep, nil
}

// arrivalSchedule draws N offsets (seconds): bursts of size burst with
// exponential gaps between bursts, preserving a mean rate of rate req/s.
// burst <= 1 is plain Poisson.
func arrivalSchedule(n int, rate float64, burst int, seed int64) []float64 {
	if burst < 1 {
		burst = 1
	}
	rng := rand.New(rand.NewSource(seed))
	gapRate := rate / float64(burst)
	offsets := make([]float64, 0, n)
	t := 0.0
	for len(offsets) < n {
		t += rng.ExpFloat64() / gapRate
		for b := 0; b < burst && len(offsets) < n; b++ {
			offsets = append(offsets, t)
		}
	}
	return offsets
}

// doSubmit sends one submission and classifies the outcome.
func doSubmit(ctx context.Context, client *http.Client, url string, tb taskBody, cnt *counters) {
	raw, _ := json.Marshal(tb)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		atomic.AddInt64(&cnt.transport, 1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		atomic.AddInt64(&cnt.transport, 1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		atomic.AddInt64(&cnt.accepted, 1)
	case errs.CodeInfeasible:
		atomic.AddInt64(&cnt.infeasible, 1)
	case errs.CodeDeadlinePast:
		atomic.AddInt64(&cnt.deadline, 1)
	case errs.CodeBusy:
		atomic.AddInt64(&cnt.busy, 1)
		observeRetryAfter(resp, cnt)
	case http.StatusBadRequest:
		atomic.AddInt64(&cnt.badReq, 1)
	case http.StatusServiceUnavailable:
		atomic.AddInt64(&cnt.unavailable, 1)
		observeRetryAfter(resp, cnt)
	default:
		if resp.StatusCode >= 500 {
			atomic.AddInt64(&cnt.fivexx, 1)
		} else {
			atomic.AddInt64(&cnt.other, 1)
		}
	}
}

// observeRetryAfter records whether a backpressure response carried a
// usable Retry-After hint (an integer of at least one second).
func observeRetryAfter(resp *http.Response, cnt *counters) {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		atomic.AddInt64(&cnt.raMissing, 1)
		return
	}
	atomic.AddInt64(&cnt.raObserved, 1)
	v := float64(secs)
	cnt.raMin.update(v, func(new, cur float64) bool { return new < cur })
	cnt.raMax.update(v, func(new, cur float64) bool { return new > cur })
}

// applyChurnOp POSTs one churn op to the fleet admin API and folds the
// reported displacement counts into the churn report.
func applyChurnOp(ctx context.Context, client *http.Client, base string, op fleet.Op, rep *ChurnReport) error {
	url := fmt.Sprintf("%s/v1/nodes/%d/%s", base, op.Node, op.Action)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("load: churn %q: status %d", op.String(), resp.StatusCode)
	}
	var res struct {
		Displaced  int64 `json:"displaced"`
		Readmitted int64 `json:"readmitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return err
	}
	rep.Displaced += res.Displaced
	rep.Readmitted += res.Readmitted
	return nil
}

// fetchStats grabs the server's /v1/stats snapshot verbatim.
func fetchStats(ctx context.Context, client *http.Client, base string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: stats returned %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
