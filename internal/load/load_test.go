package load

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/rt"
	"rtdls/internal/server"
	"rtdls/internal/service"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms, uniform: p50 ≈ 0.5 s, p99 ≈ 0.99 s, within the ~5%
	// bucket resolution.
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q, want float64) {
		t.Helper()
		got := h.Quantile(q)
		if got < want || got > want*1.06 {
			t.Errorf("q%.3f = %v, want within [%v, %v]", q, got, want, want*1.06)
		}
	}
	check(0.50, 0.500)
	check(0.90, 0.900)
	check(0.99, 0.990)
	if got := h.Quantile(1); got != 1.0 {
		t.Errorf("q1 = %v, want exact max 1.0", got)
	}
	if mean := h.Mean(); math.Abs(mean-0.5005) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(0.001)
		b.Record(1.0)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if q := a.Quantile(0.25); q > 0.0011 {
		t.Errorf("p25 = %v, want ~1ms", q)
	}
	if q := a.Quantile(0.99); q < 0.9 {
		t.Errorf("p99 = %v, want ~1s", q)
	}
	if a.Max() != 1.0 {
		t.Errorf("max = %v", a.Max())
	}
}

func TestHistogramRange(t *testing.T) {
	h := NewHistogram()
	h.Record(-1)   // clamped
	h.Record(1e-9) // below range
	h.Record(1e4)  // above range, clamped into last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1e4 {
		t.Fatalf("max = %v", h.Max())
	}
}

// newWireServer boots a full dlserve handler over a fresh engine.
func newWireServer(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	cl, err := cluster.New(16, dlt.Params{Cms: 1, Cps: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := service.New(service.Config{
		Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{},
		Clock: service.NewWallClock(100000),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: eng, Scale: 100000, Version: "load-test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestRunClosedLoop(t *testing.T) {
	ts, _ := newWireServer(t)
	rep, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "closed", Workers: 8, N: 200,
		Sigma: 200, Deadline: 1e6, Seed: 1,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 {
		t.Fatalf("requests = %d, want 200", rep.Requests)
	}
	if rep.HTTP5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("errors: %+v", rep)
	}
	if rep.Accepted == 0 {
		t.Fatalf("no task accepted: %+v", rep)
	}
	if rep.Latency.Samples != 200 || rep.Latency.P99Ms <= 0 {
		t.Fatalf("latency = %+v", rep.Latency)
	}
	if rep.ServerStats == nil {
		t.Fatal("missing server stats snapshot")
	}
	var st map[string]any
	if err := json.Unmarshal(rep.ServerStats, &st); err != nil {
		t.Fatal(err)
	}
	if got := st["Arrivals"]; got != float64(200) {
		t.Fatalf("server arrivals = %v", got)
	}

	out := filepath.Join(t.TempDir(), "BENCH_wire.json")
	if err := rep.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunOpenLoop(t *testing.T) {
	ts, _ := newWireServer(t)
	rep, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "open", N: 100, Rate: 2000, Burst: 10,
		Sigma: 200, Deadline: 1e6, Seed: 7,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 || rep.HTTP5xx != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Latency.Samples != 100 {
		t.Fatalf("latency samples = %d", rep.Latency.Samples)
	}
}

// TestRunObservesRetryAfter saturates a MaxQueue=1 engine so busy
// rejections occur, and asserts the harness sees their Retry-After hints.
func TestRunObservesRetryAfter(t *testing.T) {
	cl, err := cluster.New(4, dlt.Params{Cms: 1, Cps: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := service.New(service.Config{
		Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{},
		Clock: service.NewManualClock(0), MaxQueue: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: eng, Scale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The clock never advances, so accepted plans stay queued: after the
	// first couple of admissions everything else bounces busy.
	rep, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "closed", Workers: 4, N: 50,
		Sigma: 200, Deadline: 1e6, Seed: 3,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedBusy == 0 {
		t.Fatalf("expected busy rejections: %+v", rep)
	}
	if !rep.RetryAfter.Compliant || rep.RetryAfter.Observed != rep.RejectedBusy {
		t.Fatalf("retry-after = %+v (busy=%d)", rep.RetryAfter, rep.RejectedBusy)
	}
	if rep.RetryAfter.MinSeconds < 1 {
		t.Fatalf("retry-after min = %v", rep.RetryAfter.MinSeconds)
	}
}

func TestArrivalSchedule(t *testing.T) {
	offs := arrivalSchedule(1000, 500, 1, 42)
	if len(offs) != 1000 {
		t.Fatalf("len = %d", len(offs))
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatalf("schedule not monotone at %d", i)
		}
	}
	// Mean rate within 20% of nominal over 1000 draws.
	rate := float64(len(offs)) / offs[len(offs)-1]
	if rate < 400 || rate > 600 {
		t.Fatalf("empirical rate = %v, want ~500", rate)
	}
	// Bursty schedule: same count, grouped offsets.
	burst := arrivalSchedule(100, 500, 10, 42)
	if len(burst) != 100 {
		t.Fatalf("burst len = %d", len(burst))
	}
	if burst[0] != burst[9] {
		t.Fatalf("first burst not grouped: %v vs %v", burst[0], burst[9])
	}
	if burst[9] == burst[10] {
		t.Fatal("burst boundary missing gap")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("empty URL accepted")
	}
	if _, err := Run(context.Background(), Options{URL: "http://x", Mode: "weird", N: 1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Run(context.Background(), Options{URL: "http://x", Mode: "open", N: 10}); err == nil {
		t.Fatal("open mode without rate accepted")
	}
}
