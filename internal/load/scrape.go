package load

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Scrape is one parsed Prometheus text exposition: a flat list of samples,
// each a metric name plus its label set and value. The parser accepts
// exactly what the server's zero-dependency registry renders (format
// 0.0.4) — HELP/TYPE comments are skipped, label values may contain the
// escaped forms \\, \" and \n.
type Scrape struct {
	samples []Sample
}

// Sample is one exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ScrapeMetrics fetches and parses base+"/metrics". A server without a
// metrics registry answers 404; that is returned as an error the caller
// can treat as "no server-side metrics".
func ScrapeMetrics(ctx context.Context, client *http.Client, base string) (*Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: metrics returned %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(string(raw)), nil
}

// ParseMetrics parses an exposition body. Unparseable lines are skipped —
// the harness degrades to fewer server-side numbers instead of failing a
// load run over a scrape artifact.
func ParseMetrics(text string) *Scrape {
	sc := &Scrape{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s, ok := parseSample(line); ok {
			sc.samples = append(sc.samples, s)
		}
	}
	return sc
}

// parseSample parses one `name{k="v",...} value` line.
func parseSample(line string) (Sample, bool) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		body := rest[i+1:]
		end := -1
		// Scan for the closing brace outside quotes.
		inQuote, escaped := false, false
		for j := 0; j < len(body); j++ {
			c := body[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, false
		}
		if !parseLabels(body[:end], s.Labels) {
			return s, false
		}
		rest = strings.TrimSpace(body[end+1:])
	} else {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			return s, false
		}
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	// Drop an optional trailing timestamp.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, false
	}
	s.Value = v
	return s, s.Name != ""
}

// parseLabels parses `k="v",k2="v2"` into the map, unescaping values.
func parseLabels(body string, into map[string]string) bool {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return false
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+2:]
		var val strings.Builder
		j, closed := 0, false
		for ; j < len(rest); j++ {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				j++
				switch rest[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[j])
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return false
		}
		into[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[j+1:]), ",")
	}
	return true
}

// matches reports whether the sample carries every key=value of want
// (extra labels on the sample are fine).
func (s Sample) matches(name string, want map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the value of the first sample matching name and the label
// subset, or ok=false.
func (sc *Scrape) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range sc.samples {
		if s.matches(name, want) {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample matching name and the label subset.
func (sc *Scrape) Sum(name string, want map[string]string) float64 {
	total := 0.0
	for _, s := range sc.samples {
		if s.matches(name, want) {
			total += s.Value
		}
	}
	return total
}

// LabelValues returns the sorted distinct values label takes across the
// samples of one metric family.
func (sc *Scrape) LabelValues(name, label string) []string {
	seen := map[string]bool{}
	for _, s := range sc.samples {
		if s.Name == name {
			if v, ok := s.Labels[label]; ok && !seen[v] {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// histDelta is the difference of one labeled histogram between two
// scrapes: delta cumulative counts over the union of rendered bucket
// bounds. The server renders buckets sparsely, so the union (with each
// scrape read as a step function) is what makes before/after comparable.
type histDelta struct {
	les   []float64 // sorted upper bounds, +Inf last when present
	cum   []float64 // delta cumulative count at each bound
	count float64   // delta _count
	sum   float64   // delta _sum (seconds)
}

// cumAt evaluates a scrape's cumulative bucket count at bound le: the
// rendered cumulative of the largest bound <= le (0 below the first).
func cumAt(pairs [][2]float64, le float64) float64 {
	c := 0.0
	for _, p := range pairs {
		if p[0] <= le {
			c = p[1]
		}
	}
	return c
}

// bucketPairs extracts the sorted (le, cumulative) pairs of one labeled
// histogram from a scrape.
func bucketPairs(sc *Scrape, name string, want map[string]string) [][2]float64 {
	var pairs [][2]float64
	for _, s := range sc.samples {
		if !s.matches(name+"_bucket", want) {
			continue
		}
		raw, ok := s.Labels["le"]
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			if raw == "+Inf" {
				le = math.Inf(1)
			} else {
				continue
			}
		}
		pairs = append(pairs, [2]float64{le, s.Value})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return pairs
}

// histogramDelta computes the before→after delta of one labeled histogram.
func histogramDelta(before, after *Scrape, name string, want map[string]string) histDelta {
	bp := bucketPairs(before, name, want)
	ap := bucketPairs(after, name, want)
	seen := map[float64]bool{}
	var les []float64
	for _, p := range append(append([][2]float64{}, bp...), ap...) {
		if !seen[p[0]] {
			seen[p[0]] = true
			les = append(les, p[0])
		}
	}
	sort.Float64s(les)
	d := histDelta{les: les, cum: make([]float64, len(les))}
	for i, le := range les {
		if c := cumAt(ap, le) - cumAt(bp, le); c > 0 {
			d.cum[i] = c
		}
	}
	bc, _ := before.Value(name+"_count", want)
	ac, _ := after.Value(name+"_count", want)
	d.count = ac - bc
	bs, _ := before.Value(name+"_sum", want)
	as, _ := after.Value(name+"_sum", want)
	d.sum = as - bs
	return d
}

// quantile returns an upper bound on the q-quantile in seconds of the
// delta distribution; the +Inf bucket reports the largest finite bound.
func (d histDelta) quantile(q float64) float64 {
	if d.count <= 0 || len(d.les) == 0 {
		return 0
	}
	rank := math.Ceil(q * d.count)
	if rank < 1 {
		rank = 1
	}
	for i, c := range d.cum {
		if c >= rank {
			le := d.les[i]
			if math.IsInf(le, 1) {
				break
			}
			return le
		}
	}
	// Landed in +Inf (or rounding starved the finite buckets): report the
	// largest finite bound seen.
	for i := len(d.les) - 1; i >= 0; i-- {
		if !math.IsInf(d.les[i], 1) {
			return d.les[i]
		}
	}
	return 0
}

// StageLatency is the server-side latency of one admission pipeline stage
// over the load run, from the /metrics before/after delta.
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MeanUs float64 `json:"mean_us"`
}

// ShardCounters is one shard's admission outcomes over the load run.
// Displacements counts tasks unseated by node churn on this shard;
// FleetNodes is the shard's node count by lifecycle state at the end of
// the run (a point-in-time gauge, not a delta).
type ShardCounters struct {
	Shard         string           `json:"shard"`
	Submits       int64            `json:"submits"`
	Accepts       int64            `json:"accepts"`
	Rejects       int64            `json:"rejects"`
	Commits       int64            `json:"commits"`
	Displacements int64            `json:"displacements,omitempty"`
	Speculative   int64            `json:"speculative,omitempty"`
	Conflicts     int64            `json:"conflicts,omitempty"`
	QueueDepthMax float64          `json:"queue_depth_max"`
	FleetNodes    map[string]int64 `json:"fleet_nodes,omitempty"`
}

// ReadmissionLatency summarises the server's re-admission latency
// histogram (rtdls_readmission_seconds) over the run: how long displaced
// tasks spent between losing their seat and passing the schedulability
// test again.
type ReadmissionLatency struct {
	Count  int64   `json:"count"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MeanUs float64 `json:"mean_us"`
}

// ServerMetrics is the server-side view of one load run, computed as the
// delta of two /metrics scrapes (before and after). It closes the loop
// between client-observed latency and what the admission pipeline itself
// measured.
type ServerMetrics struct {
	Stages        []StageLatency  `json:"stages,omitempty"`
	Shards        []ShardCounters `json:"shards,omitempty"`
	QueueDepthMax float64         `json:"queue_depth_max"`
	EventsDropped float64         `json:"events_dropped"`
	Displacements int64           `json:"displacements,omitempty"`

	// Speculative and Conflicts total the optimistic-admission outcome
	// counters across shards over the run; ConflictRate is the fraction of
	// off-lock planned admissions that lost the install race and replayed
	// serialized — the wire-level health signal for the two-phase admission
	// path under this workload's concurrency.
	Speculative  int64               `json:"speculative"`
	Conflicts    int64               `json:"conflicts"`
	ConflictRate float64             `json:"conflict_rate"`
	Readmission  *ReadmissionLatency `json:"readmission,omitempty"`
}

// MetricsDelta summarises the before→after difference of two scrapes.
func MetricsDelta(before, after *Scrape) *ServerMetrics {
	sm := &ServerMetrics{}
	const stageName = "rtdls_admission_stage_seconds"
	for _, stage := range after.LabelValues(stageName+"_bucket", "stage") {
		d := histogramDelta(before, after, stageName, map[string]string{"stage": stage})
		if d.count <= 0 {
			continue
		}
		sl := StageLatency{
			Stage:  stage,
			Count:  int64(d.count),
			P50Us:  d.quantile(0.50) * 1e6,
			P99Us:  d.quantile(0.99) * 1e6,
			MeanUs: d.sum / d.count * 1e6,
		}
		sm.Stages = append(sm.Stages, sl)
	}
	counterDelta := func(name string, want map[string]string) int64 {
		return int64(after.Sum(name, want) - before.Sum(name, want))
	}
	for _, shard := range after.LabelValues("rtdls_submits_total", "shard") {
		want := map[string]string{"shard": shard}
		scs := ShardCounters{
			Shard:         shard,
			Submits:       counterDelta("rtdls_submits_total", want),
			Accepts:       counterDelta("rtdls_accepts_total", want),
			Rejects:       counterDelta("rtdls_rejects_total", want),
			Commits:       counterDelta("rtdls_commits_total", want),
			Displacements: counterDelta("rtdls_displacements_total", want),
			Speculative:   counterDelta("rtdls_admission_speculative_total", want),
			Conflicts:     counterDelta("rtdls_admission_conflicts_total", want),
		}
		scs.QueueDepthMax, _ = after.Value("rtdls_queue_depth_max", want)
		if scs.QueueDepthMax > sm.QueueDepthMax {
			sm.QueueDepthMax = scs.QueueDepthMax
		}
		// Fleet-node gauges are a point-in-time snapshot, not a delta: the
		// after scrape answers "what state is the fleet in now".
		for _, st := range after.LabelValues("rtdls_fleet_nodes", "state") {
			v, ok := after.Value("rtdls_fleet_nodes", map[string]string{"shard": shard, "state": st})
			if !ok {
				continue
			}
			if scs.FleetNodes == nil {
				scs.FleetNodes = map[string]int64{}
			}
			scs.FleetNodes[st] = int64(v)
		}
		sm.Displacements += scs.Displacements
		sm.Speculative += scs.Speculative
		sm.Conflicts += scs.Conflicts
		sm.Shards = append(sm.Shards, scs)
	}
	if attempts := sm.Speculative + sm.Conflicts; attempts > 0 {
		sm.ConflictRate = float64(sm.Conflicts) / float64(attempts)
	}
	sm.EventsDropped = after.Sum("rtdls_events_dropped_total", nil) - before.Sum("rtdls_events_dropped_total", nil)
	if d := histogramDelta(before, after, "rtdls_readmission_seconds", nil); d.count > 0 {
		sm.Readmission = &ReadmissionLatency{
			Count:  int64(d.count),
			P50Us:  d.quantile(0.50) * 1e6,
			P99Us:  d.quantile(0.99) * 1e6,
			MeanUs: d.sum / d.count * 1e6,
		}
	}
	return sm
}
