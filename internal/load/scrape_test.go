package load

import (
	"math"
	"strings"
	"testing"

	"rtdls/internal/metrics"
)

func TestParseMetricsBasics(t *testing.T) {
	sc := ParseMetrics(strings.Join([]string{
		"# HELP x help text",
		"# TYPE x counter",
		`x{shard="0"} 3`,
		`x{shard="1"} 4`,
		"plain 7",
		`escaped{path="a\\b\"c\nd"} 1`,
		"with_ts 9 1712345678",
		"garbage line that is not a sample",
		"",
	}, "\n"))

	if v, ok := sc.Value("x", map[string]string{"shard": "1"}); !ok || v != 4 {
		t.Fatalf("Value(x, shard=1) = %v, %v", v, ok)
	}
	if got := sc.Sum("x", nil); got != 7 {
		t.Fatalf("Sum(x) = %g, want 7", got)
	}
	if v, ok := sc.Value("plain", nil); !ok || v != 7 {
		t.Fatalf("Value(plain) = %v, %v", v, ok)
	}
	if v, ok := sc.Value("with_ts", nil); !ok || v != 9 {
		t.Fatalf("timestamped sample = %v, %v", v, ok)
	}
	want := "a\\b\"c\nd"
	if v, ok := sc.Value("escaped", map[string]string{"path": want}); !ok || v != 1 {
		t.Fatalf("escaped label value not unescaped (%v, %v)", v, ok)
	}
	if got := sc.LabelValues("x", "shard"); len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("LabelValues = %v", got)
	}
}

// TestMetricsDeltaRoundTrip drives the real registry: observe, render,
// parse, observe more, render again, and check the delta summary — the
// exact pipeline dlload runs against a live server.
func TestMetricsDeltaRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("rtdls_admission_stage_seconds",
		"Admission stage latency.", metrics.Labels{"stage": "plan"})
	submits := reg.Counter("rtdls_submits_total", "h", metrics.Labels{"shard": "0"})
	accepts := reg.Counter("rtdls_accepts_total", "h", metrics.Labels{"shard": "0"})
	rejects := reg.Counter("rtdls_rejects_total", "h",
		metrics.Labels{"shard": "0", "reason": "infeasible"})
	commits := reg.Counter("rtdls_commits_total", "h", metrics.Labels{"shard": "0"})
	depthMax := reg.Gauge("rtdls_queue_depth_max", "h", metrics.Labels{"shard": "0"})
	drops := reg.Counter("rtdls_events_dropped_total", "h", nil)

	render := func() *Scrape {
		var b strings.Builder
		if _, err := reg.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return ParseMetrics(b.String())
	}

	// Warm-up traffic that the delta must subtract out.
	h.Observe(0.010)
	submits.Add(10)
	accepts.Add(10)
	commits.Add(10)
	before := render()

	for i := 0; i < 99; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.0)
	submits.Add(40)
	accepts.Add(30)
	rejects.Add(10)
	commits.Add(25)
	depthMax.SetMax(7)
	drops.Add(2)
	after := render()

	sm := MetricsDelta(before, after)
	if len(sm.Stages) != 1 || sm.Stages[0].Stage != "plan" {
		t.Fatalf("stages = %+v", sm.Stages)
	}
	st := sm.Stages[0]
	if st.Count != 100 {
		t.Fatalf("stage count = %d, want 100 (warm-up subtracted)", st.Count)
	}
	// p50 of 99×1ms + 1×1s sits in the ~1ms bucket; p99 may land on the 1s
	// sample's bucket or below, p50 must not exceed one growth step above
	// 1ms.
	if st.P50Us < 1000*0.95 || st.P50Us > 1000*1.06 {
		t.Fatalf("p50 = %g µs, want ≈1000", st.P50Us)
	}
	if st.P99Us < st.P50Us {
		t.Fatalf("p99 %g < p50 %g", st.P99Us, st.P50Us)
	}
	wantMean := (99*0.001 + 1.0) / 100 * 1e6
	if math.Abs(st.MeanUs-wantMean) > wantMean*0.01 {
		t.Fatalf("mean = %g µs, want ≈%g", st.MeanUs, wantMean)
	}

	if len(sm.Shards) != 1 {
		t.Fatalf("shards = %+v", sm.Shards)
	}
	sh := sm.Shards[0]
	if sh.Submits != 40 || sh.Accepts != 30 || sh.Rejects != 10 || sh.Commits != 25 {
		t.Fatalf("shard counters = %+v", sh)
	}
	if sh.QueueDepthMax != 7 || sm.QueueDepthMax != 7 {
		t.Fatalf("queue depth max = %g / %g, want 7", sh.QueueDepthMax, sm.QueueDepthMax)
	}
	if sm.EventsDropped != 2 {
		t.Fatalf("events dropped = %g, want 2", sm.EventsDropped)
	}
}

func TestHistogramDeltaSparseBucketUnion(t *testing.T) {
	// The before scrape rendered fewer buckets than the after scrape; the
	// delta must still line up by evaluating both as step functions.
	before := ParseMetrics(strings.Join([]string{
		`h_bucket{le="0.001"} 5`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 0.005`,
		`h_count 5`,
	}, "\n"))
	after := ParseMetrics(strings.Join([]string{
		`h_bucket{le="0.001"} 5`,
		`h_bucket{le="0.5"} 8`,
		`h_bucket{le="+Inf"} 8`,
		`h_sum 1.505`,
		`h_count 8`,
	}, "\n"))
	d := histogramDelta(before, after, "h", nil)
	if d.count != 3 {
		t.Fatalf("delta count = %g, want 3", d.count)
	}
	// All three new samples are in (0.001, 0.5]: every quantile reports 0.5.
	if got := d.quantile(0.50); got != 0.5 {
		t.Fatalf("p50 = %g, want 0.5", got)
	}
	if got := d.quantile(0.99); got != 0.5 {
		t.Fatalf("p99 = %g, want 0.5", got)
	}
}
