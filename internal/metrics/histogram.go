package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a log-bucketed latency histogram in the HDR style, sharing
// the bucket scheme of internal/load's client-side histogram: boundaries
// grow geometrically by 5% from 1 µs, so relative quantile error is
// bounded (~5%) across the full range up to 2 minutes. Values are seconds.
//
// Unlike the load generator's single-writer histogram, every cell is an
// atomic: Observe may be called from any goroutine and a concurrent scrape
// reads a near-consistent snapshot without blocking writers. Observe is
// two atomic adds — the sample count lives in the bucket cells and the sum
// accumulates in fixed-point nanoseconds — so the admission hot path never
// spins on a CAS.
type Histogram struct {
	counts   []atomic.Uint64
	sumNanos atomic.Uint64 // nanoseconds; sub-ns residue of a sample is dropped
}

// Bucket scheme constants — identical to internal/load/hist.go so
// client-side and server-side quantiles are directly comparable.
const (
	histMin    = 1e-6 // 1 µs
	histMax    = 120  // 2 min
	histGrowth = 1.05
)

var (
	histBuckets = int(math.Ceil(math.Log(histMax/histMin)/math.Log(histGrowth))) + 2

	// histBounds[i] is the inclusive upper bound of bucket i; the last
	// bucket is unbounded (+Inf) and has no entry here.
	histBounds = func() []float64 {
		b := make([]float64, histBuckets-1)
		for i := range b {
			b[i] = histMin * math.Pow(histGrowth, float64(i))
		}
		return b
	}()

	invLogGrowth = 1 / math.Log(histGrowth)
)

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, histBuckets)}
}

// NewHistogram returns an unregistered histogram (tests and ad-hoc use;
// production code registers via Registry.Histogram).
func NewHistogram() *Histogram { return newHistogram() }

// BucketFor returns the bucket index for a sample of v seconds. Bucket
// upper bounds are inclusive, matching Prometheus `le` semantics: a value
// exactly on a boundary counts in that boundary's bucket.
func BucketFor(v float64) int {
	if v <= histMin {
		return 0
	}
	idx := int(math.Ceil(math.Log(v/histMin) * invLogGrowth))
	// Guard the boundary cases: floating-point log error can push a value
	// equal to histBounds[i] into bucket i+1 (pull it back), or leave a
	// value just above histBounds[i] in bucket i (push it forward).
	if idx > 0 && idx-1 < len(histBounds) && v <= histBounds[idx-1] {
		idx--
	} else if idx < len(histBounds) && v > histBounds[idx] {
		idx++
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// BucketUpper is the inclusive upper bound of bucket idx in seconds. The
// final bucket's bound renders as +Inf.
func BucketUpper(idx int) float64 {
	if idx >= len(histBounds) {
		return math.Inf(1)
	}
	return histBounds[idx]
}

// NumBuckets returns the bucket count of the scheme.
func NumBuckets() int { return histBuckets }

// Observe records one sample in seconds. Negative and NaN samples clamp to
// zero — they can only arise from clock skew.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	h.counts[BucketFor(seconds)].Add(1)
	h.sumNanos.Add(uint64(seconds * 1e9))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of recorded samples in seconds.
func (h *Histogram) Sum() float64 {
	return float64(h.sumNanos.Load()) * 1e-9
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in
// seconds: the upper edge of the bucket containing the q·Count-th sample.
func (h *Histogram) Quantile(q float64) float64 {
	snap := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range snap {
		seen += c
		if seen >= rank {
			up := BucketUpper(i)
			if math.IsInf(up, 1) {
				return histMax
			}
			return up
		}
	}
	return histMax
}

// write renders the histogram family member: sparse cumulative buckets,
// the +Inf bucket, _sum and _count.
func (h *Histogram) write(b *strings.Builder, name, labels string) {
	// Snapshot counts first so cumulative sums are monotone even while
	// writers race the scrape.
	snap := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	sum := h.Sum()

	var cum uint64
	for i, c := range snap {
		if c == 0 {
			continue
		}
		cum += c
		writeBucket(b, name, labels, formatFloat(BucketUpper(i)), cum)
	}
	writeBucket(b, name, labels, "+Inf", total)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(total, 10))
	b.WriteByte('\n')
}

// writeBucket renders one `name_bucket{...,le="x"} n` line, merging the le
// label into the series' constant label block.
func writeBucket(b *strings.Builder, name, labels, le string, n uint64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(labels[:len(labels)-1])
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(n, 10))
	b.WriteByte('\n')
}
