// Package metrics is a zero-dependency instrumentation layer: atomic
// counters, float gauges and log-bucketed latency histograms behind a
// Registry that renders the Prometheus text exposition format (version
// 0.0.4). It exists so the admission engine can be observed — per-stage
// latency, queue depth, per-shard outcomes — without ever taking the
// scheduler lock on the read path: every instrument update and every
// scrape read is a plain atomic operation.
//
// Instruments are identified by a metric family name plus an optional set
// of constant labels; registering the same (name, labels) pair twice
// returns the same instrument, so concurrent registration from several
// shards is safe and idempotent. Families render sorted by name and label
// signature, making scrapes byte-stable for a fixed set of values.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop; safe from any goroutine).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (e.g. peak queue depth).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// instrument is the render surface every concrete instrument implements.
type instrument interface {
	// write renders the instrument's sample lines for the series name
	// (already label-qualified for counters/gauges; histograms expand it).
	write(b *strings.Builder, name, labels string)
}

func (c *Counter) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.Value(), 10))
	b.WriteByte('\n')
}

func (g *Gauge) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

// funcInstrument evaluates a closure at render time — used for values
// maintained elsewhere on atomics (e.g. the event bus's drop counter).
type funcInstrument struct {
	fn func() float64
}

func (f *funcInstrument) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f.fn()))
	b.WriteByte('\n')
}

// series is one labeled instrument within a family.
type series struct {
	labels string // rendered label block, e.g. `{shard="0"}` ("" when unlabeled)
	inst   instrument
}

// family is one metric name: a TYPE/HELP header plus its labeled series.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	mu     sync.Mutex
	series map[string]*series // by label signature
	order  []string           // signatures in registration order; sorted at render
}

// Registry holds the instruments and renders them. The zero value is not
// usable; construct with NewRegistry. All methods are safe for concurrent
// use: registration takes a registry-level mutex, instrument updates are
// lock-free atomics, and rendering snapshots values without blocking
// writers.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string
	sizeHint atomic.Int64 // last rendered size, pre-sizes the next render
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Labels is an optional set of constant labels attached to one series.
type Labels map[string]string

// signature renders the sorted, escaped label block ("" when empty).
func (l Labels) signature() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		if !validName(k) {
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float sample value ("+Inf"/"-Inf"/"NaN" included).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// lookup finds or creates the (family, series) slot, enforcing type
// consistency. build constructs the instrument on first registration.
func (r *Registry) lookup(name, help, typ string, labels Labels, build func() instrument) instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	sig := labels.signature()

	r.mu.Lock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	r.mu.Unlock()

	if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.typ, typ))
	}

	fam.mu.Lock()
	defer fam.mu.Unlock()
	if s, ok := fam.series[sig]; ok {
		return s.inst
	}
	inst := build()
	fam.series[sig] = &series{labels: sig, inst: inst}
	fam.order = append(fam.order, sig)
	sort.Strings(fam.order)
	return inst
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. Registering an existing name with a different instrument
// type panics — a programmer error, like a duplicate flag.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram registered under (name, labels). Values
// are seconds; buckets follow the package's geometric scheme.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.lookup(name, help, "histogram", labels, func() instrument { return newHistogram() }).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for monotone counts maintained elsewhere on atomics.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, "counter", labels, func() instrument { return &funcInstrument{fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, "gauge", labels, func() instrument { return &funcInstrument{fn: fn} })
}

// WriteTo renders every family in the Prometheus text exposition format,
// sorted by metric name and label signature.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()

	var b strings.Builder
	if hint := r.sizeHint.Load(); hint > 0 {
		b.Grow(int(hint) + int(hint)/8)
	}
	for _, fam := range fams {
		fam.mu.Lock()
		order := append([]string(nil), fam.order...)
		rows := make([]*series, len(order))
		for i, sig := range order {
			rows[i] = fam.series[sig]
		}
		fam.mu.Unlock()

		b.WriteString("# HELP ")
		b.WriteString(fam.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(fam.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(fam.name)
		b.WriteByte(' ')
		b.WriteString(fam.typ)
		b.WriteByte('\n')
		for _, s := range rows {
			s.inst.write(&b, fam.name, s.labels)
		}
	}
	r.sizeHint.Store(int64(b.Len()))
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ServeHTTP serves the rendered exposition — mount as GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteTo(w) //nolint:errcheck // client disconnects are not actionable
}
