package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestBucketEdges(t *testing.T) {
	// A value exactly on a bucket's upper bound must land in that bucket
	// (inclusive `le` semantics), and the next representable float above it
	// in the next one. Exercise every finite boundary — this is where the
	// float-log guard in BucketFor earns its keep.
	for i := 0; i < NumBuckets()-1; i++ {
		up := BucketUpper(i)
		if got := BucketFor(up); got != i {
			t.Fatalf("BucketFor(BucketUpper(%d)=%g) = %d, want %d", i, up, got, i)
		}
		next := math.Nextafter(up, math.Inf(1))
		want := i + 1
		if want > NumBuckets()-1 {
			want = NumBuckets() - 1
		}
		if got := BucketFor(next); got != want {
			t.Fatalf("BucketFor(just above bucket %d bound) = %d, want %d", i, got, want)
		}
	}
	if got := BucketFor(0); got != 0 {
		t.Fatalf("BucketFor(0) = %d, want 0", got)
	}
	if got := BucketFor(histMax * 10); got != NumBuckets()-1 {
		t.Fatalf("BucketFor(over max) = %d, want last bucket %d", got, NumBuckets()-1)
	}
	if !math.IsInf(BucketUpper(NumBuckets()-1), 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", BucketUpper(NumBuckets()-1))
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	prev := 0.0
	for i := 0; i < NumBuckets()-1; i++ {
		up := BucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket bounds not strictly increasing at %d: %g <= %g", i, up, prev)
		}
		prev = up
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(0.001) // 1 ms
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Sum = %g, want 1.0", got)
	}
	// All mass in one bucket: every quantile reports that bucket's upper
	// bound, which must cover 1 ms within the 5% growth factor.
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 != p99 {
		t.Fatalf("single-bucket histogram: p50 %g != p99 %g", p50, p99)
	}
	if p50 < 0.001 || p50 > 0.001*histGrowth {
		t.Fatalf("p50 = %g, want within one growth factor above 1 ms", p50)
	}
	// Negative and NaN clamp to zero rather than corrupting a bucket index.
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Count() != 1002 {
		t.Fatalf("Count after clamped observes = %d, want 1002", h.Count())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtdls_test_seconds", "Test latency.", Labels{"stage": "plan"})
	h.Observe(0.001)
	h.Observe(0.001)
	h.Observe(1.0)
	out := render(t, r)

	for _, want := range []string{
		"# HELP rtdls_test_seconds Test latency.",
		"# TYPE rtdls_test_seconds histogram",
		`rtdls_test_seconds_bucket{stage="plan",le="+Inf"} 3`,
		`rtdls_test_seconds_count{stage="plan"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sparse: two observed bands → two finite bucket lines plus +Inf.
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "rtdls_test_seconds_bucket") {
			buckets++
		}
	}
	if buckets != 3 {
		t.Fatalf("rendered %d bucket lines, want 3 (two bands + Inf):\n%s", buckets, out)
	}
	// Cumulative counts must be monotone in rendered (le-sorted) order.
	if !strings.Contains(out, `,le="0.001`) {
		t.Fatalf("missing ~1ms bucket line:\n%s", out)
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("rtdls_esc_total", `Help with \ backslash and`+"\nnewline.", Labels{
		"path": `a\b"c` + "\nd",
	}).Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP rtdls_esc_total Help with \\ backslash and\nnewline.`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `rtdls_esc_total{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestGaugeSetMaxAndAdd(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.SetMax(2)
	if g.Value() != 3 {
		t.Fatalf("SetMax lowered the gauge: %g", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("SetMax(7) = %g", g.Value())
	}
	g.Add(-2.5)
	if g.Value() != 4.5 {
		t.Fatalf("Add(-2.5) = %g", g.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("rtdls_idem_total", "h", Labels{"shard": "0"})
	b := r.Counter("rtdls_idem_total", "h", Labels{"shard": "0"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("rtdls_idem_total", "h", Labels{"shard": "1"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("rtdls_idem_total", "h", nil)
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "h", nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid label name did not panic")
			}
		}()
		r.Counter("rtdls_ok_total", "h", Labels{"bad-label": "x"})
	}()
}

func TestFuncInstrumentsAndSortedRender(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("zz_last", "Rendered last.", nil, func() float64 { return 1.5 })
	r.CounterFunc("aa_first", "Rendered first.", nil, func() float64 { return 42 })
	out := render(t, r)
	first := strings.Index(out, "aa_first")
	last := strings.Index(out, "zz_last")
	if first < 0 || last < 0 || first > last {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, "aa_first 42") || !strings.Contains(out, "zz_last 1.5") {
		t.Fatalf("func instruments not rendered:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.001:        "0.001",
		1:            "1",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%g) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Fatalf("formatFloat(NaN) = %q", got)
	}
}

// TestConcurrentRegistryUnderRace hammers registration, updates, and
// scrapes from many goroutines; run with -race to verify the lock-free
// read path.
func TestConcurrentRegistryUnderRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shard := Labels{"shard": string(rune('0' + g))}
			for i := 0; i < 2000; i++ {
				r.Counter("rtdls_conc_total", "h", shard).Inc()
				r.Gauge("rtdls_conc_depth", "h", shard).Set(float64(i))
				r.Gauge("rtdls_conc_depth_max", "h", shard).SetMax(float64(i))
				r.Histogram("rtdls_conc_seconds", "h", shard).Observe(float64(i) * 1e-6)
			}
		}(g)
	}
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if _, err := r.WriteTo(&b); err != nil {
					t.Errorf("WriteTo: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()

	total := 0.0
	for g := 0; g < 4; g++ {
		total += float64(r.Counter("rtdls_conc_total", "h", Labels{"shard": string(rune('0' + g))}).Value())
	}
	if total != 8000 {
		t.Fatalf("lost counter increments: %g, want 8000", total)
	}
}
