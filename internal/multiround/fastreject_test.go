package multiround

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

// planOnly hides the FastRejecter extension, forcing the scheduler down
// the full plan-everything path — the control arm for the decision
// equivalence test below. (The indexed-view half of the hot path is proven
// bit for bit inside package rt; here we isolate the fast-reject half for
// the fifth algorithm, which rt's in-package suite cannot construct
// because multiround imports rt.)
type planOnly struct{ p Partitioner }

func (w planOnly) Name() string                                           { return w.p.Name() }
func (w planOnly) Plan(ctx *rt.PlanContext, t *rt.Task) (*rt.Plan, error) { return w.p.Plan(ctx, t) }

func mrCluster(t *testing.T, n int, hetero bool) *cluster.Cluster {
	t.Helper()
	if !hetero {
		cl, err := cluster.New(n, baseline)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	costs := make([]dlt.NodeCost, n)
	for i := range costs {
		costs[i] = dlt.NodeCost{Cms: 0.7 + 0.04*float64(i%6), Cps: 60 + 11*float64((i*5)%9)}
	}
	cl, err := cluster.NewHetero(costs)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestFastRejectDecisionEquivalence drives a multiround scheduler with the
// fast-reject enabled against one with it hidden, over identical bursty
// streams salted with hopeless tasks, and requires identical decisions,
// plans, stats and commit sequences.
func TestFastRejectDecisionEquivalence(t *testing.T) {
	for _, hetero := range []bool{false, true} {
		for _, rounds := range []int{1, 4} {
			p, err := New(rounds)
			if err != nil {
				t.Fatal(err)
			}
			const n = 10
			a := rt.NewScheduler(mrCluster(t, n, hetero), rt.EDF, p)
			b := rt.NewScheduler(mrCluster(t, n, hetero), rt.EDF, planOnly{p})
			rng := rand.New(rand.NewPCG(uint64(rounds), 99))
			now := 0.0
			for i := 0; i < 400; i++ {
				now += rng.ExpFloat64() * 500
				sigma := 1 + 300*rng.Float64()
				var d float64
				switch rng.IntN(4) {
				case 0:
					d = sigma * baseline.Cms * (0.2 + 0.7*rng.Float64())
				case 1:
					d = baseline.ExecTime(sigma, n) * (0.9 + 0.3*rng.Float64())
				default:
					d = 1500 + 6000*rng.Float64()
				}
				if d <= 0 {
					d = 1
				}
				ta := rt.Task{ID: int64(i + 1), Arrival: now, Sigma: sigma, RelDeadline: d}
				tb := ta
				oka, ea := a.Submit(&ta, now)
				okb, eb := b.Submit(&tb, now)
				if oka != okb || (ea == nil) != (eb == nil) {
					t.Fatalf("hetero=%v rounds=%d step %d: Submit diverges: (%v,%v) vs (%v,%v)",
						hetero, rounds, i, oka, ea, okb, eb)
				}
				pa, ea := a.CommitDue(now)
				pb, eb := b.CommitDue(now)
				if (ea == nil) != (eb == nil) || len(pa) != len(pb) {
					t.Fatalf("hetero=%v rounds=%d step %d: CommitDue diverges", hetero, rounds, i)
				}
				for j := range pa {
					if pa[j].Task.ID != pb[j].Task.ID ||
						!slices.Equal(pa[j].Nodes, pb[j].Nodes) ||
						!slices.Equal(pa[j].Release, pb[j].Release) ||
						pa[j].Est != pb[j].Est {
						t.Fatalf("hetero=%v rounds=%d step %d: committed plan %d diverges", hetero, rounds, i, j)
					}
				}
			}
			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Fatalf("hetero=%v rounds=%d: stats diverge: %+v vs %+v", hetero, rounds, sa, sb)
			}
			if sa := a.Stats(); sa.Accepts == 0 || sa.Rejects == 0 {
				t.Fatalf("degenerate stream: %+v", sa)
			}
		}
	}
}

// TestFastRejectSoundness pins the property directly: when FastReject
// fires on a committed state, the full Plan must reject (ErrInfeasible or
// an estimate past the deadline tolerance).
func TestFastRejectSoundness(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 31))
	for _, hetero := range []bool{false, true} {
		for _, rounds := range []int{1, 2, 8} {
			p, err := New(rounds)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 400; trial++ {
				n := 2 + rng.IntN(12)
				cl := mrCluster(t, n, hetero)
				avail := make([]float64, n)
				for i := range avail {
					avail[i] = rng.Float64() * 8000
				}
				ctx := rt.PlanContext{P: cl.Params(), N: n, Now: rng.Float64() * 2000,
					View: rt.NewAvailView(avail), Costs: cl.Costs()}
				task := &rt.Task{ID: 1, Arrival: ctx.Now * rng.Float64(),
					Sigma: 1 + 400*rng.Float64(), RelDeadline: 10 + 7000*rng.Float64()}
				if !p.FastReject(&ctx, task) {
					continue
				}
				pl, err := p.Plan(&ctx, task)
				if err == rt.ErrInfeasible {
					continue
				}
				if err != nil {
					t.Fatalf("rounds=%d hetero=%v: FastReject fired but Plan hard-errored: %v", rounds, hetero, err)
				}
				absD := task.AbsDeadline()
				if pl.Est > absD+1e-9*math.Max(1, math.Abs(absD)) {
					continue
				}
				t.Fatalf("rounds=%d hetero=%v: FastReject fired but the full path admits (Est=%v absD=%v task=%+v avail=%v)",
					rounds, hetero, pl.Est, absD, task, avail)
			}
		}
	}
}
