package multiround

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

// TestScheduleHeteroUniformBitIdentical: the per-node-cost timeline with a
// uniform table reproduces the homogeneous Schedule exactly.
func TestScheduleHeteroUniformBitIdentical(t *testing.T) {
	p := dlt.Params{Cms: 1, Cps: 100}
	rng := rand.New(rand.NewPCG(43, 47))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(8)
		costs := make([]dlt.NodeCost, n)
		for i := range costs {
			costs[i] = dlt.NodeCost{Cms: p.Cms, Cps: p.Cps}
		}
		avail := make([]float64, n)
		acc := 0.0
		for i := range avail {
			acc += rng.Float64() * 200
			avail[i] = acc
		}
		totals := make([]float64, n)
		for i := range totals {
			totals[i] = rng.Float64()
		}
		rounds := 1 + rng.IntN(5)
		sigma := rng.Float64() * 300
		want, err := Schedule(p, sigma, avail, totals, rounds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ScheduleHetero(costs, sigma, avail, totals, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if got.Completion != want.Completion {
			t.Fatalf("completion differs: %v vs %v", got.Completion, want.Completion)
		}
		for i := range want.Finish {
			if got.Finish[i] != want.Finish[i] {
				t.Fatalf("finish %d differs: %v vs %v", i, got.Finish[i], want.Finish[i])
			}
		}
	}
}

// TestHeteroPlanExactEstimate: on a heterogeneous cluster the multi-round
// partitioner's admission estimate is exactly reproducible — re-simulating
// the returned plan's timeline yields Est.
func TestHeteroPlanExactEstimate(t *testing.T) {
	costs := []dlt.NodeCost{
		{Cms: 1, Cps: 100},
		{Cms: 1, Cps: 300},
		{Cms: 2, Cps: 60},
		{Cms: 0.5, Cps: 150},
	}
	cl, err := cluster.NewHetero(costs)
	if err != nil {
		t.Fatal(err)
	}
	part, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.NewScheduler(cl, rt.EDF, part)
	task := &rt.Task{ID: 1, Arrival: 0, Sigma: 120, RelDeadline: 50000}
	acc, err := s.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !acc {
		t.Fatalf("task rejected")
	}
	pl := s.PlanFor(task.ID)
	sel := cl.Costs().Select(pl.Nodes)
	var completion float64
	if pl.Rounds > 1 {
		tl, err := ScheduleHetero(sel, task.Sigma, pl.Starts, pl.Alphas, pl.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		completion = tl.Completion
	} else {
		d, err := dlt.SimulateDispatchHetero(sel, task.Sigma, pl.Starts, pl.Alphas)
		if err != nil {
			t.Fatal(err)
		}
		completion = d.Completion
	}
	if math.Abs(completion-pl.Est) > 1e-9*math.Max(1, pl.Est) {
		t.Fatalf("Est=%v but exact timeline completes at %v", pl.Est, completion)
	}
	if pl.Est > task.AbsDeadline() {
		t.Fatalf("estimate %v past deadline %v", pl.Est, task.AbsDeadline())
	}
}
