// Package multiround implements the paper's stated future work (Sec. 6):
// multi-round (multi-installment) dispatch on top of the heterogeneous-
// model partition, to further improve Inserted Idle Time utilisation.
//
// Each node's DLT-assigned share is split into R equal installments. The
// head node cycles through the nodes R times on its sequential link; a node
// may receive a later installment while computing an earlier one (the
// standard multi-installment assumption of Bharadwaj, Robertazzi and Ghose
// [10]), so computation starts earlier and overlaps communication. The
// admission estimate is the exactly simulated completion time, so the
// real-time guarantee is preserved without a new theorem; when a single
// round is better for a particular task (large per-chunk latency), the
// partitioner falls back to the single-round plan.
package multiround

import (
	"fmt"
	"math"

	"rtdls/internal/core"
	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

// Timeline is the exact execution timeline of a multi-round dispatch.
type Timeline struct {
	Finish     []float64 // per node: completion of its last installment
	Completion float64   // max over Finish
}

// Schedule simulates dispatching a load σ to nodes with the given available
// times (sorted non-decreasing), where node i receives totals[i]·σ split
// into `rounds` equal installments, transmitted round-robin (round 1 to all
// nodes in order, then round 2, …) over the sequential link.
func Schedule(p dlt.Params, sigma float64, avail, totals []float64, rounds int) (*Timeline, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(avail)
	if n == 0 || len(totals) != n {
		return nil, fmt.Errorf("multiround: %d avail times, %d totals", n, len(totals))
	}
	if rounds < 1 {
		return nil, fmt.Errorf("multiround: rounds must be >= 1, got %d", rounds)
	}
	if !(sigma >= 0) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("multiround: invalid sigma %v", sigma)
	}
	for i := 1; i < n; i++ {
		if avail[i] < avail[i-1] {
			return nil, fmt.Errorf("multiround: avail times not sorted at %d", i)
		}
	}
	linkFree := math.Inf(-1)
	compEnd := make([]float64, n)
	for i := range compEnd {
		compEnd[i] = math.Inf(-1)
	}
	tl := &Timeline{Finish: make([]float64, n), Completion: math.Inf(-1)}
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			if totals[i] < 0 {
				return nil, fmt.Errorf("multiround: negative total[%d]=%v", i, totals[i])
			}
			chunk := totals[i] * sigma / float64(rounds)
			sendStart := math.Max(linkFree, avail[i])
			sendEnd := sendStart + chunk*p.Cms
			linkFree = sendEnd
			compStart := math.Max(sendEnd, compEnd[i])
			compEnd[i] = compStart + chunk*p.Cps
		}
	}
	for i := 0; i < n; i++ {
		tl.Finish[i] = math.Max(compEnd[i], avail[i])
		if tl.Finish[i] > tl.Completion {
			tl.Completion = tl.Finish[i]
		}
	}
	return tl, nil
}

// ScheduleHetero is Schedule over per-node cost coefficients: node i's
// installments are transmitted at its own Cms_i and computed at its own
// Cps_i. costs, avail and totals are parallel, in dispatch order. With
// every cost equal it reproduces Schedule operation for operation.
func ScheduleHetero(costs []dlt.NodeCost, sigma float64, avail, totals []float64, rounds int) (*Timeline, error) {
	n := len(costs)
	if n == 0 || len(avail) != n || len(totals) != n {
		return nil, fmt.Errorf("multiround: %d costs, %d avail times, %d totals", n, len(avail), len(totals))
	}
	for i, c := range costs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("multiround: costs[%d]: %w", i, err)
		}
	}
	if rounds < 1 {
		return nil, fmt.Errorf("multiround: rounds must be >= 1, got %d", rounds)
	}
	if !(sigma >= 0) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("multiround: invalid sigma %v", sigma)
	}
	for i := 1; i < n; i++ {
		if avail[i] < avail[i-1] {
			return nil, fmt.Errorf("multiround: avail times not sorted at %d", i)
		}
	}
	linkFree := math.Inf(-1)
	compEnd := make([]float64, n)
	for i := range compEnd {
		compEnd[i] = math.Inf(-1)
	}
	tl := &Timeline{Finish: make([]float64, n), Completion: math.Inf(-1)}
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			if totals[i] < 0 {
				return nil, fmt.Errorf("multiround: negative total[%d]=%v", i, totals[i])
			}
			chunk := totals[i] * sigma / float64(rounds)
			sendStart := math.Max(linkFree, avail[i])
			sendEnd := sendStart + chunk*costs[i].Cms
			linkFree = sendEnd
			compStart := math.Max(sendEnd, compEnd[i])
			compEnd[i] = compStart + chunk*costs[i].Cps
		}
	}
	for i := 0; i < n; i++ {
		tl.Finish[i] = math.Max(compEnd[i], avail[i])
		if tl.Finish[i] > tl.Completion {
			tl.Completion = tl.Finish[i]
		}
	}
	return tl, nil
}

// Partitioner is an rt.Partitioner implementing the multi-round extension.
// Create one with New.
type Partitioner struct {
	rounds int
}

// New returns a multi-round partitioner with the given number of
// installments per node. rounds = 1 degenerates to single-round dispatch of
// the heterogeneous-model partition, but — like every multi-round plan —
// admission is checked against the exact simulated timeline rather than the
// Eq. 6 upper bound, so it can admit slightly more than IITDLT.
func New(rounds int) (Partitioner, error) {
	if rounds < 1 {
		return Partitioner{}, fmt.Errorf("multiround: rounds must be >= 1, got %d", rounds)
	}
	return Partitioner{rounds: rounds}, nil
}

// Rounds returns the configured number of installments.
func (p Partitioner) Rounds() int { return p.rounds }

// Name implements rt.Partitioner.
func (p Partitioner) Name() string { return fmt.Sprintf("dlt-mr%d", p.rounds) }

// FastReject implements rt.FastRejecter. The node search starts at the
// same ñ_min(t) bound as the single-round partitioners, and both the
// multi-round and the single-round-fallback completion estimates strictly
// exceed the shared lower bounds (the latest required node's release, and
// the sequential transmission of the whole load), so the min-nodes fast
// reject is sound for the min of the two.
func (p Partitioner) FastReject(ctx *rt.PlanContext, t *rt.Task) bool {
	return ctx.FastRejectMinNodes(t)
}

// Plan implements rt.Partitioner. The node count follows the same ñ_min(t)
// rule as the single-round IIT-DLT partitioner (so comparing the two
// isolates the value of multi-round dispatch); the chosen node set is then
// evaluated with the exact multi-round timeline, and whichever of the
// multi-round and single-round schedules completes earlier is returned.
// Because the multi-round estimate is an exact simulation (and the
// single-round estimate is the Theorem-4 upper bound), admission against it
// preserves the real-time guarantee.
func (p Partitioner) Plan(ctx *rt.PlanContext, t *rt.Task) (*rt.Plan, error) {
	if cm := ctx.Costs; cm != nil && !cm.Uniform() {
		return p.planHetero(cm, ctx, t)
	}
	floor := math.Max(ctx.Now, t.Arrival)
	absD := t.AbsDeadline()
	slack := absD - floor
	n0, ok := dlt.MinNodesBound(ctx.P, t.Sigma, slack)
	if !ok || n0 > ctx.N {
		return nil, rt.ErrInfeasible
	}
	eps := 1e-9 * math.Max(1, math.Abs(absD))
	for n := n0; n <= ctx.N; n++ {
		ids, starts := ctx.ClampedStarts(t, n)
		m, err := core.New(ctx.P, t.Sigma, starts)
		if err != nil {
			return nil, fmt.Errorf("multiround: heterogeneous model: %w", err)
		}
		tl, err := Schedule(ctx.P, t.Sigma, starts, m.Alphas(), p.rounds)
		if err != nil {
			return nil, err
		}
		srEst := m.EstCompletion()
		if math.Min(tl.Completion, srEst) > absD+eps {
			// Expand beyond ñ_min(t) when waiting pushed the completion
			// past the deadline, as the single-round partitioner does.
			continue
		}
		if tl.Completion <= srEst {
			release := make([]float64, n)
			copy(release, tl.Finish)
			return &rt.Plan{
				Task:    t,
				Nodes:   ids,
				Starts:  starts,
				Release: release,
				Alphas:  m.Alphas(),
				Est:     tl.Completion,
				Rounds:  p.rounds,
			}, nil
		}
		// Single-round dispatch is better for this task (per-chunk latency
		// outweighs the overlap); fall back to the exact single-round
		// timeline.
		d, err := m.Dispatch()
		if err != nil {
			return nil, fmt.Errorf("multiround: single-round dispatch: %w", err)
		}
		release := make([]float64, n)
		for i := range release {
			release[i] = math.Max(d.Finish[i], starts[i])
		}
		return &rt.Plan{
			Task:    t,
			Nodes:   ids,
			Starts:  starts,
			Release: release,
			Alphas:  m.Alphas(),
			Est:     srEst,
			Rounds:  1,
		}, nil
	}
	return nil, rt.ErrInfeasible
}

// planHetero is the per-node-cost branch of Plan: the heterogeneous model
// partition of core.NewHetero, installments at each node's own
// coefficients, and both the multi-round and the single-round fallback
// admitted against exactly simulated timelines (the Theorem-4 bound is not
// available for per-node Cms, and exact simulation preserves the hard
// real-time guarantee by itself).
func (p Partitioner) planHetero(cm *dlt.CostModel, ctx *rt.PlanContext, t *rt.Task) (*rt.Plan, error) {
	floor := math.Max(ctx.Now, t.Arrival)
	absD := t.AbsDeadline()
	slack := absD - floor
	n0, ok := dlt.HeteroMinNodesBound(cm, t.Sigma, slack)
	if !ok || n0 > ctx.N {
		return nil, rt.ErrInfeasible
	}
	eps := 1e-9 * math.Max(1, math.Abs(absD))
	for n := n0; n <= ctx.N; n++ {
		ids, starts := ctx.ClampedStarts(t, n)
		costs := cm.Select(ids)
		m, err := core.NewHetero(costs, t.Sigma, starts)
		if err != nil {
			return nil, fmt.Errorf("multiround: heterogeneous model: %w", err)
		}
		tl, err := ScheduleHetero(costs, t.Sigma, starts, m.Alphas(), p.rounds)
		if err != nil {
			return nil, err
		}
		d, err := m.Dispatch()
		if err != nil {
			return nil, fmt.Errorf("multiround: single-round dispatch: %w", err)
		}
		srEst := d.Completion
		if math.Min(tl.Completion, srEst) > absD+eps {
			continue
		}
		if tl.Completion <= srEst {
			release := make([]float64, n)
			for i := range release {
				release[i] = math.Max(tl.Finish[i], starts[i])
			}
			return &rt.Plan{
				Task:    t,
				Nodes:   ids,
				Starts:  starts,
				Release: release,
				Alphas:  m.Alphas(),
				Est:     tl.Completion,
				Rounds:  p.rounds,
			}, nil
		}
		release := make([]float64, n)
		for i := range release {
			release[i] = math.Max(d.Finish[i], starts[i])
		}
		return &rt.Plan{
			Task:    t,
			Nodes:   ids,
			Starts:  starts,
			Release: release,
			Alphas:  m.Alphas(),
			Est:     srEst,
			Rounds:  1,
		}, nil
	}
	return nil, rt.ErrInfeasible
}
