package multiround

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/core"
	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatalf("rounds=0 must fail")
	}
	if _, err := New(-1); err == nil {
		t.Fatalf("negative rounds must fail")
	}
	p, err := New(4)
	if err != nil || p.Rounds() != 4 {
		t.Fatalf("New(4) = %v, %v", p, err)
	}
	if p.Name() != "dlt-mr4" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name   string
		avail  []float64
		totals []float64
		rounds int
		sigma  float64
	}{
		{"empty", nil, nil, 1, 1},
		{"len mismatch", []float64{0}, []float64{0.5, 0.5}, 1, 1},
		{"zero rounds", []float64{0}, []float64{1}, 0, 1},
		{"unsorted", []float64{5, 1}, []float64{0.5, 0.5}, 2, 1},
		{"negative total", []float64{0, 1}, []float64{1.5, -0.5}, 2, 1},
		{"bad sigma", []float64{0}, []float64{1}, 1, math.Inf(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Schedule(baseline, c.sigma, c.avail, c.totals, c.rounds); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}

func TestSingleRoundMatchesDispatch(t *testing.T) {
	// With R=1, the multi-round timeline is exactly the single-round
	// sequential dispatch.
	avail := []float64{0, 10, 400}
	totals := []float64{0.5, 0.3, 0.2}
	tl, err := Schedule(baseline, 123, avail, totals, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dlt.SimulateDispatch(baseline, 123, avail, totals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl.Completion-d.Completion) > 1e-9 {
		t.Fatalf("R=1 completion %v != dispatch %v", tl.Completion, d.Completion)
	}
	for i := range avail {
		if math.Abs(tl.Finish[i]-d.Finish[i]) > 1e-9 {
			t.Fatalf("R=1 finish[%d] %v != dispatch %v", i, tl.Finish[i], d.Finish[i])
		}
	}
}

func TestMoreRoundsNeverWorseOnEqualAvail(t *testing.T) {
	// With all nodes available simultaneously and the homogeneous-optimal
	// totals, splitting into installments lets computation start earlier on
	// every node, so completion can only improve or stay equal.
	totals := baseline.Alphas(8)
	avail := make([]float64, 8)
	base, err := Schedule(baseline, 200, avail, totals, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := base.Completion
	for _, r := range []int{2, 4, 8, 16} {
		tl, err := Schedule(baseline, 200, avail, totals, r)
		if err != nil {
			t.Fatal(err)
		}
		if tl.Completion > prev+1e-9 {
			t.Fatalf("R=%d completion %v worse than previous %v", r, tl.Completion, prev)
		}
		prev = tl.Completion
	}
	if !(prev < base.Completion) {
		t.Fatalf("multi-round should strictly improve the single-round time")
	}
}

func TestTimelineRespectsAvailability(t *testing.T) {
	avail := []float64{0, 500, 1000}
	totals := []float64{0.4, 0.35, 0.25}
	tl, err := Schedule(baseline, 100, avail, totals, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range avail {
		if tl.Finish[i] < avail[i] {
			t.Fatalf("node %d finished at %v before it was available at %v",
				i, tl.Finish[i], avail[i])
		}
	}
	if tl.Completion < avail[2] {
		t.Fatalf("completion before last availability")
	}
}

func TestZeroSigma(t *testing.T) {
	tl, err := Schedule(baseline, 0, []float64{3, 7}, []float64{0.5, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Completion != 7 {
		t.Fatalf("zero load should complete at the last availability, got %v", tl.Completion)
	}
}

func newCtx(avail []float64, now float64) *rt.PlanContext {
	times := make([]float64, len(avail))
	copy(times, avail)
	return &rt.PlanContext{P: baseline, N: len(avail), Now: now, View: rt.NewAvailView(times)}
}

func TestPlanMeetsDeadlineOrRejects(t *testing.T) {
	part, _ := New(3)
	rng := rand.New(rand.NewPCG(3, 14))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.IntN(15)
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = 1500 * rng.Float64() * float64(rng.IntN(2))
		}
		task := &rt.Task{
			ID:          int64(trial),
			Arrival:     0,
			Sigma:       10 + 400*rng.Float64(),
			RelDeadline: 800 + 5000*rng.Float64(),
		}
		pl, err := part.Plan(newCtx(avail, 0), task)
		if err != nil {
			if !errors.Is(err, rt.ErrInfeasible) {
				t.Fatalf("unexpected error: %v", err)
			}
			continue
		}
		if pl.Est > task.AbsDeadline()*(1+1e-9) {
			// The scheduler would reject this plan; the partitioner may
			// legitimately return it only if it meets the deadline.
			t.Fatalf("plan misses deadline: est %v > %v", pl.Est, task.AbsDeadline())
		}
		for i := range pl.Release {
			if pl.Release[i] < pl.Starts[i]-1e-9 {
				t.Fatalf("release before start at node %d", i)
			}
		}
	}
}

func TestPlanNeverWorseThanSingleRound(t *testing.T) {
	// The partitioner takes min(multi-round, single-round) for the same
	// node set, so its estimate is never above the single-round Theorem-4
	// estimate for that allocation.
	part, _ := New(4)
	rng := rand.New(rand.NewPCG(7, 21))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.IntN(15)
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = 1200 * rng.Float64() * float64(rng.IntN(2))
		}
		task := &rt.Task{
			ID:          int64(trial),
			Arrival:     0,
			Sigma:       10 + 300*rng.Float64(),
			RelDeadline: 2000 + 6000*rng.Float64(),
		}
		pl, err := part.Plan(newCtx(avail, 0), task)
		if err != nil {
			continue
		}
		m, err := core.New(baseline, task.Sigma, pl.Starts)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Est > m.EstCompletion()*(1+1e-9) {
			t.Fatalf("multi-round plan est %v worse than single-round %v",
				pl.Est, m.EstCompletion())
		}
	}
}

var _ rt.Partitioner = Partitioner{}
