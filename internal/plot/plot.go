// Package plot renders simple ASCII line/scatter charts for terminal
// output of the evaluation figures. It is intentionally small: distinct
// per-series markers on a character grid with labelled axes — enough to see
// who wins, by how much, and where curves cross.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// DefaultMarkers are assigned to series lacking an explicit marker.
var DefaultMarkers = []rune{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Chart renders the series on a width×height grid (plot area, excluding
// axis labels). Invalid dimensions are clamped to sensible minimums.
func Chart(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extreme points are not drawn on the
	// frame itself.
	ypad := (ymax - ymin) * 0.05
	ymin -= ypad
	ymax += ypad

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = DefaultMarkers[si%len(DefaultMarkers)]
		}
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			r := height - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1)))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = marker
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = DefaultMarkers[si%len(DefaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s", marker, s.Name)
		if si != len(series)-1 {
			b.WriteString("   ")
		}
	}
	b.WriteString("\n")
	yLabelTop := fmt.Sprintf("%.4g", ymax)
	yLabelBot := fmt.Sprintf("%.4g", ymin)
	labelW := len(yLabelTop)
	if len(yLabelBot) > labelW {
		labelW = len(yLabelBot)
	}
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |", labelW, yLabelTop)
		case height - 1:
			fmt.Fprintf(&b, "%*s |", labelW, yLabelBot)
		default:
			fmt.Fprintf(&b, "%*s |", labelW, "")
		}
		b.WriteString(string(grid[r]))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*s%s\n", labelW, "", width-len(fmt.Sprintf("%.4g", xmax)),
		fmt.Sprintf("%.4g", xmin), fmt.Sprintf("%.4g", xmax))
	if xlabel != "" || ylabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", labelW, "", xlabel, ylabel)
	}
	return b.String()
}
