package plot

import (
	"math"
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "A", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "B", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
}

func TestChartBasics(t *testing.T) {
	out := Chart("title", "load", "reject", twoSeries(), 40, 10)
	for _, want := range []string{"title", "A", "B", "x: load", "y: reject"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Default markers must both appear in the plot area.
	if !strings.ContainsRune(out, 'o') || !strings.ContainsRune(out, '+') {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestChartCustomMarker(t *testing.T) {
	s := twoSeries()
	s[0].Marker = '!'
	out := Chart("", "", "", s, 30, 8)
	if !strings.ContainsRune(out, '!') {
		t.Fatalf("custom marker ignored:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", "", "", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart should say so: %q", out)
	}
	out = Chart("empty", "", "", []Series{{Name: "A"}}, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("series without points should be empty: %q", out)
	}
}

func TestChartNaNSkipped(t *testing.T) {
	s := []Series{{Name: "A", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}}}
	out := Chart("", "", "", s, 30, 8)
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("NaN handling broken:\n%s", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	s := []Series{{Name: "A", X: []float64{1}, Y: []float64{5}}}
	out := Chart("", "", "", s, 30, 8)
	if !strings.ContainsRune(out, 'o') {
		t.Fatalf("single point not drawn:\n%s", out)
	}
	s = []Series{{Name: "A", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}}}
	out = Chart("", "", "", s, 30, 8)
	if !strings.ContainsRune(out, 'o') {
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	out := Chart("", "", "", twoSeries(), 1, 1)
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("dimensions not clamped:\n%s", out)
	}
}

func TestMismatchedXYLengths(t *testing.T) {
	s := []Series{{Name: "A", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2}}}
	out := Chart("", "", "", s, 30, 8) // must not panic
	if out == "" {
		t.Fatalf("no output")
	}
}
