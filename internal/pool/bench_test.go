package pool_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// benchPool builds a K-shard pool of 16-node DLT-IIT clusters on a manual
// clock.
func benchPool(b *testing.B, k int, place pool.Placement, clock service.Clock) *pool.Pool {
	b.Helper()
	params := dlt.Params{Cms: 1, Cps: 100}
	shards := make([]pool.ShardConfig, k)
	for i := range shards {
		cl, err := cluster.New(16, params)
		if err != nil {
			b.Fatal(err)
		}
		shards[i] = pool.ShardConfig{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}}
	}
	p, err := pool.New(pool.Config{Shards: shards, Placement: place, Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPoolSubmitParallel measures concurrent Submit throughput as the
// shard count grows: every goroutine runs the full admission path
// (auto-commit plus the Fig. 2 schedulability test) but contends only on
// the shard the placement picks, so on multi-core hardware throughput
// scales with the shard count where the single-lock 1-shard baseline
// serialises. The offered load per shard is held constant (the clock
// advances K× slower per submission), so the per-submission work matches
// the single-service benchmark at every K.
func BenchmarkPoolSubmitParallel(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			clock := service.NewManualClock(0)
			p := benchPool(b, k, pool.RoundRobin{}, clock)
			defer p.Close()
			var id atomic.Int64
			step := 2600.0 / float64(k) // ≈ one mean task per shard service time
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := context.Background()
				for pb.Next() {
					n := id.Add(1)
					clock.Advance(step)
					if _, err := p.Submit(ctx, rt.Task{
						ID:          n,
						Sigma:       150 + float64(n%8)*12.5,
						RelDeadline: 5200,
					}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkPoolSubmitPlacement isolates the routing layer's cost per
// placement policy on a fixed 4-shard pool.
func BenchmarkPoolSubmitPlacement(b *testing.B) {
	placements := []pool.Placement{
		pool.RoundRobin{},
		pool.LeastLoaded{},
		pool.PowerOfTwoChoices{Seed: 1},
		pool.Spillover{Inner: pool.LeastLoaded{}},
	}
	for _, place := range placements {
		b.Run(place.Name(), func(b *testing.B) {
			clock := service.NewManualClock(0)
			p := benchPool(b, 4, place, clock)
			defer p.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(650)
				if _, err := p.Submit(ctx, rt.Task{
					ID:          int64(i + 1),
					Sigma:       150 + float64(i%8)*12.5,
					RelDeadline: 5200,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
