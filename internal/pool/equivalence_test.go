package pool_test

import (
	"context"
	"math"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/driver"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/workload"
)

// record is one admission decision captured from a reference run.
type record struct {
	accepted   bool
	est        float64
	nodes      int
	firstStart float64
}

// recorder captures per-task decisions through the legacy observer hooks.
type recorder struct {
	decisions map[int64]record
	order     []int64
}

func newRecorder() *recorder { return &recorder{decisions: make(map[int64]record)} }

func (r *recorder) OnAccept(_ float64, t *rt.Task, p *rt.Plan) {
	r.decisions[t.ID] = record{accepted: true, est: p.Est, nodes: len(p.Nodes), firstStart: p.FirstStart()}
	r.order = append(r.order, t.ID)
}

func (r *recorder) OnReject(_ float64, t *rt.Task) {
	r.decisions[t.ID] = record{}
	r.order = append(r.order, t.ID)
}

func (r *recorder) OnCommit(float64, *rt.Plan) {}

// TestPoolReproducesIndependentSimulations is the sharding acceptance
// property: a K-shard pool of identical clusters under RoundRobin, fed K
// workload streams in lockstep (stream j's tasks land on shard j), makes
// exactly the decisions K independent single-cluster simulations make —
// the pool layer adds routing, not behaviour.
func TestPoolReproducesIndependentSimulations(t *testing.T) {
	const (
		k       = 3
		n       = 8
		horizon = 2e5
		load    = 0.9
	)
	for _, alg := range []string{driver.AlgDLTIIT, driver.AlgOPRMN, driver.AlgUserSplit} {
		t.Run(alg, func(t *testing.T) {
			cfg := driver.Default()
			cfg.N = n
			cfg.Algorithm = alg
			cfg.SystemLoad = load
			cfg.Horizon = horizon

			// Reference: K independent single-cluster simulations.
			recs := make([]*recorder, k)
			for j := 0; j < k; j++ {
				c := cfg
				c.Seed = uint64(100 + j)
				recs[j] = newRecorder()
				c.Observer = recs[j]
				if _, err := driver.Run(c); err != nil {
					t.Fatalf("reference run %d: %v", j, err)
				}
			}

			// Regenerate the same K task streams the runs consumed.
			streams := make([][]*rt.Task, k)
			minLen := math.MaxInt
			for j := 0; j < k; j++ {
				gen, err := workload.New(workload.Config{
					N: n, Params: cfg.Params(),
					SystemLoad: load, AvgSigma: cfg.AvgSigma,
					DCRatio: cfg.DCRatio, Horizon: horizon, Seed: uint64(100 + j),
				})
				if err != nil {
					t.Fatal(err)
				}
				for {
					task, ok := gen.Next()
					if !ok {
						break
					}
					streams[j] = append(streams[j], task)
				}
				if len(streams[j]) < minLen {
					minLen = len(streams[j])
				}
				if len(streams[j]) != len(recs[j].order) {
					t.Fatalf("stream %d: regenerated %d tasks, reference decided %d",
						j, len(streams[j]), len(recs[j].order))
				}
			}
			if minLen < 30 {
				t.Fatalf("streams too short (%d) to be meaningful", minLen)
			}

			// Pool: K identical shards, round robin, lockstep submission so
			// stream j lands on shard j. (Round robin routes by sequence
			// number, so streams beyond the shortest one are compared over
			// the common prefix — decisions never depend on later arrivals.)
			shards := make([]pool.ShardConfig, k)
			for j := range shards {
				cl, err := cluster.New(n, cfg.Params())
				if err != nil {
					t.Fatal(err)
				}
				part, err := cfg.NewPartitioner()
				if err != nil {
					t.Fatal(err)
				}
				shards[j] = pool.ShardConfig{Cluster: cl, Policy: rt.EDF, Partitioner: part}
			}
			p, err := pool.New(pool.Config{Shards: shards, Placement: pool.RoundRobin{}})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			ctx := context.Background()
			for i := 0; i < minLen; i++ {
				for j := 0; j < k; j++ {
					task := streams[j][i]
					d, err := p.Submit(ctx, *task)
					if err != nil {
						t.Fatalf("stream %d task %d: %v", j, task.ID, err)
					}
					if d.Shard != j {
						t.Fatalf("stream %d task %d placed on shard %d", j, task.ID, d.Shard)
					}
					want := recs[j].decisions[task.ID]
					if d.Accepted != want.accepted {
						t.Fatalf("%s stream %d task %d: pool accepted=%v, simulation accepted=%v",
							alg, j, task.ID, d.Accepted, want.accepted)
					}
					if !d.Accepted {
						continue
					}
					if math.Float64bits(d.Est) != math.Float64bits(want.est) || len(d.Nodes) != want.nodes {
						t.Fatalf("%s stream %d task %d: pool plan (est %v, %d nodes) != simulation (est %v, %d nodes)",
							alg, j, task.ID, d.Est, len(d.Nodes), want.est, want.nodes)
					}
					first := math.Inf(1)
					for _, s := range d.Starts {
						first = math.Min(first, s)
					}
					if math.Float64bits(first) != math.Float64bits(want.firstStart) {
						t.Fatalf("%s stream %d task %d: first start %v != %v",
							alg, j, task.ID, first, want.firstStart)
					}
				}
			}

			// Shard counters must match the reference decisions over the
			// compared prefix, and draining must commit every accept.
			if err := p.Drain(); err != nil {
				t.Fatal(err)
			}
			for j, ss := range p.ShardStats() {
				wantAcc := 0
				for i := 0; i < minLen; i++ {
					if recs[j].decisions[streams[j][i].ID].accepted {
						wantAcc++
					}
				}
				if ss.Arrivals != minLen || ss.Accepts != wantAcc {
					t.Fatalf("shard %d stats %+v, want %d arrivals / %d accepts", j, ss, minLen, wantAcc)
				}
				if ss.Commits != ss.Accepts || ss.QueueLen != 0 {
					t.Fatalf("shard %d drain incomplete: %+v", j, ss)
				}
			}
		})
	}
}
