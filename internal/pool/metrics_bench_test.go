package pool_test

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/metrics"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// benchObservedPool mirrors benchPool with the metrics layer wired in.
func benchObservedPool(b *testing.B, k int, clock service.Clock) (*pool.Pool, *metrics.Registry) {
	b.Helper()
	params := dlt.Params{Cms: 1, Cps: 100}
	shards := make([]pool.ShardConfig, k)
	for i := range shards {
		cl, err := cluster.New(16, params)
		if err != nil {
			b.Fatal(err)
		}
		shards[i] = pool.ShardConfig{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}}
	}
	reg := metrics.NewRegistry()
	p, err := pool.New(pool.Config{
		Shards: shards, Placement: pool.RoundRobin{}, Clock: clock,
		Metrics: service.NewMetrics(reg),
	})
	if err != nil {
		b.Fatal(err)
	}
	return p, reg
}

// BenchmarkPoolSubmitParallelObserved is BenchmarkPoolSubmitParallel with
// the full metrics layer installed (per-stage histograms, per-shard
// counters). The scrape=on rows add a background goroutine rendering the
// registry every 10ms — three orders of magnitude hotter than any real
// Prometheus scrape interval. Comparing scrape=off against scrape=on isolates the
// cost of scraping itself; the acceptance bar is under 5% on submit
// throughput, which holds because a scrape only reads atomics and never
// touches a scheduler lock. (Comparing scrape=off against the plain
// benchmark instead measures the cost of instrumentation on the admission
// hot path: per-stage clock reads plus a handful of atomic adds per
// submission.)
func BenchmarkPoolSubmitParallelObserved(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		for _, scrape := range []bool{false, true} {
			b.Run(fmt.Sprintf("shards=%d/scrape=%v", k, scrape), func(b *testing.B) {
				clock := service.NewManualClock(0)
				p, reg := benchObservedPool(b, k, clock)
				defer p.Close()

				if scrape {
					stop := make(chan struct{})
					done := make(chan struct{})
					go func() {
						defer close(done)
						ticker := time.NewTicker(10 * time.Millisecond)
						defer ticker.Stop()
						for {
							select {
							case <-stop:
								return
							case <-ticker.C:
								reg.WriteTo(io.Discard) //nolint:errcheck // Discard never fails
							}
						}
					}()
					defer func() { close(stop); <-done }()
				}

				var id atomic.Int64
				step := 2600.0 / float64(k)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					ctx := context.Background()
					for pb.Next() {
						n := id.Add(1)
						clock.Advance(step)
						if _, err := p.Submit(ctx, rt.Task{
							ID:          n,
							Sigma:       150 + float64(n%8)*12.5,
							RelDeadline: 5200,
						}); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
			})
		}
	}
}
