package pool

import (
	"fmt"

	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// ShardLoad is the cheap point-in-time load signal the pool samples from
// every shard before each placement decision. Live is sampled on every
// submit (the pool skips shards with no live nodes); QueueLen and Nodes
// are sampled only for load-aware placements.
type ShardLoad struct {
	Shard    int // shard index
	QueueLen int // admitted-but-uncommitted tasks on the shard
	Nodes    int // shard cluster size (grows with AddNode)
	Live     int // placeable (up, neither draining nor down) nodes
}

// Placement decides which shard(s) should be offered a task. It is the
// pool's routing layer — the "which cluster" decision that multi-source
// divisible-load systems put in front of independently-fed clusters.
//
// Implementations must be stateless or internally synchronised: Order is
// called concurrently from every submitting goroutine. The pool passes a
// monotone submission sequence number so stateless implementations (round
// robin, deterministic sampling) stay reproducible without shared mutable
// state.
type Placement interface {
	// Name returns the placement's identifier (e.g. "round-robin").
	Name() string
	// Order appends to dst the shard indices to try, best first, and
	// returns it. A single-choice placement returns one index; a spillover
	// placement returns a preference order the pool walks until a shard
	// accepts. dst is a scratch buffer (length 0); loads has one entry per
	// shard, indexed by shard.
	Order(dst []int, seq uint64, loads []ShardLoad, t *rt.Task) []int
}

// LoadAware is the optional interface a Placement implements to tell the
// pool whether Order reads the QueueLen load signal. Sampling it costs
// one scheduler-mutex acquisition per shard per submission, so the pool
// skips the sweep — and the cross-shard lock contention it causes — for
// placements that report false. A placement that does not implement
// LoadAware is assumed to need the loads.
type LoadAware interface {
	NeedsLoads() bool
}

// RoundRobin cycles submissions across shards in sequence order —
// placement with zero load inspection, ideal for homogeneous shards and
// for deterministic replays (submission i goes to shard i mod K).
type RoundRobin struct{}

// Name implements Placement.
func (RoundRobin) Name() string { return "round-robin" }

// NeedsLoads implements LoadAware: round robin never reads the queue
// lengths, so the pool skips sampling them.
func (RoundRobin) NeedsLoads() bool { return false }

// Order implements Placement.
func (RoundRobin) Order(dst []int, seq uint64, loads []ShardLoad, _ *rt.Task) []int {
	return append(dst, int(seq%uint64(len(loads))))
}

// LeastLoaded routes every task to the shard with the shortest waiting
// queue, breaking ties toward the larger and then the lower-indexed shard.
type LeastLoaded struct{}

// Name implements Placement.
func (LeastLoaded) Name() string { return "least-loaded" }

// Order implements Placement.
func (LeastLoaded) Order(dst []int, _ uint64, loads []ShardLoad, _ *rt.Task) []int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if loadBefore(loads[i], loads[best]) {
			best = i
		}
	}
	return append(dst, best)
}

// loadBefore reports whether shard a should be preferred over shard b:
// shorter queue first, then more live capacity, then more nodes, then
// lower index. With a fully-up fleet Live == Nodes everywhere and the
// order is exactly the pre-fleet (queue, nodes, index) one.
func loadBefore(a, b ShardLoad) bool {
	if a.QueueLen != b.QueueLen {
		return a.QueueLen < b.QueueLen
	}
	if a.Live != b.Live {
		return a.Live > b.Live
	}
	if a.Nodes != b.Nodes {
		return a.Nodes > b.Nodes
	}
	return a.Shard < b.Shard
}

// PowerOfTwoChoices samples two distinct shards pseudo-randomly and routes
// to the less loaded of the pair — the classic load-balancing compromise
// that avoids both round robin's blindness and least-loaded's full scan
// (and its herding under stale signals). The sampling is a deterministic
// function of (Seed, sequence number), so replays reproduce bit for bit.
type PowerOfTwoChoices struct {
	Seed uint64
}

// Name implements Placement.
func (PowerOfTwoChoices) Name() string { return "power-of-two" }

// Order implements Placement.
func (p PowerOfTwoChoices) Order(dst []int, seq uint64, loads []ShardLoad, _ *rt.Task) []int {
	k := uint64(len(loads))
	if k == 1 {
		return append(dst, 0)
	}
	h := splitmix64(p.Seed ^ (seq + 0x9e3779b97f4a7c15))
	a := int(h % k)
	b := int((h >> 32) % (k - 1))
	if b >= a {
		b++ // distinct second sample
	}
	if loadBefore(loads[b], loads[a]) {
		a = b
	}
	return append(dst, a)
}

// splitmix64 is the SplitMix64 mixing function: a cheap, high-quality
// stateless hash from a sequence number to 64 pseudo-random bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Spillover wraps another placement and, instead of a single choice,
// produces a full preference order: the inner placement's pick first, then
// every remaining shard from least to most loaded. The pool retries a
// rejected task down this order, so a task one shard cannot fit is only
// rejected once every shard has refused it — trading extra schedulability
// tests for a lower pool-wide reject ratio.
type Spillover struct {
	// Inner picks the first shard to try; nil defaults to LeastLoaded.
	Inner Placement
}

// Name implements Placement.
func (s Spillover) Name() string { return "spillover(" + s.inner().Name() + ")" }

func (s Spillover) inner() Placement {
	if s.Inner == nil {
		return LeastLoaded{}
	}
	return s.Inner
}

// Order implements Placement. The inner placement's picks (usually one,
// but any number — including zero — is tolerated) come first in their own
// order, then every shard not already picked from least to most loaded.
func (s Spillover) Order(dst []int, seq uint64, loads []ShardLoad, t *rt.Task) []int {
	dst = s.inner().Order(dst, seq, loads, t)
	picked := len(dst)
	// Insert the remaining shards in load order (insertion sort with a
	// linear dedup scan: K is small and dst must stay allocation-free).
	for i := range loads {
		taken := false
		for _, j := range dst[:picked] {
			if j == i {
				taken = true
				break
			}
		}
		if taken {
			continue
		}
		dst = append(dst, i)
		for at := len(dst) - 1; at > picked && loadBefore(loads[dst[at]], loads[dst[at-1]]); at-- {
			dst[at], dst[at-1] = dst[at-1], dst[at]
		}
	}
	return dst
}

// ParsePlacement resolves a placement by name: "round-robin" (or "rr"),
// "least-loaded" (or "ll"), "power-of-two" (or "p2c"), and "spillover"
// (Spillover over LeastLoaded); "spillover-rr" and "spillover-p2c" select
// the other inner placements. PowerOfTwoChoices variants use seed.
func ParsePlacement(name string, seed uint64) (Placement, error) {
	switch name {
	case "round-robin", "rr", "":
		return RoundRobin{}, nil
	case "least-loaded", "ll":
		return LeastLoaded{}, nil
	case "power-of-two", "p2c":
		return PowerOfTwoChoices{Seed: seed}, nil
	case "spillover":
		return Spillover{}, nil
	case "spillover-rr":
		return Spillover{Inner: RoundRobin{}}, nil
	case "spillover-p2c":
		return Spillover{Inner: PowerOfTwoChoices{Seed: seed}}, nil
	default:
		return nil, fmt.Errorf("pool: unknown placement %q (want round-robin, least-loaded, power-of-two, spillover, spillover-rr or spillover-p2c): %w",
			name, errs.ErrBadConfig)
	}
}

// Placements lists every placement name ParsePlacement accepts.
func Placements() []string {
	return []string{"round-robin", "least-loaded", "power-of-two", "spillover", "spillover-rr", "spillover-p2c"}
}
