package pool

import (
	"errors"
	"testing"

	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

func loads(queues ...int) []ShardLoad {
	out := make([]ShardLoad, len(queues))
	for i, q := range queues {
		out[i] = ShardLoad{Shard: i, QueueLen: q, Nodes: 8}
	}
	return out
}

func TestRoundRobinOrder(t *testing.T) {
	var rr RoundRobin
	ls := loads(0, 0, 0)
	for seq := uint64(0); seq < 7; seq++ {
		got := rr.Order(nil, seq, ls, &rt.Task{})
		if len(got) != 1 || got[0] != int(seq%3) {
			t.Fatalf("seq %d: order = %v", seq, got)
		}
	}
}

func TestLeastLoadedOrder(t *testing.T) {
	var ll LeastLoaded
	if got := ll.Order(nil, 0, loads(3, 1, 2), &rt.Task{}); got[0] != 1 {
		t.Fatalf("order = %v, want shard 1", got)
	}
	// Queue tie: prefer more nodes, then the lower index.
	tied := []ShardLoad{{Shard: 0, QueueLen: 2, Nodes: 4}, {Shard: 1, QueueLen: 2, Nodes: 16}}
	if got := ll.Order(nil, 0, tied, &rt.Task{}); got[0] != 1 {
		t.Fatalf("node tiebreak: order = %v, want shard 1", got)
	}
	if got := ll.Order(nil, 0, loads(2, 2, 2), &rt.Task{}); got[0] != 0 {
		t.Fatalf("index tiebreak: order = %v, want shard 0", got)
	}
}

func TestPowerOfTwoChoicesOrder(t *testing.T) {
	p := PowerOfTwoChoices{Seed: 42}
	ls := loads(5, 0, 5, 5)
	hits := map[int]int{}
	for seq := uint64(0); seq < 200; seq++ {
		got := p.Order(nil, seq, ls, &rt.Task{})
		if len(got) != 1 || got[0] < 0 || got[0] >= len(ls) {
			t.Fatalf("seq %d: order = %v", seq, got)
		}
		hits[got[0]]++
		// Deterministic: the same (seed, seq) always picks the same shard.
		if again := p.Order(nil, seq, ls, &rt.Task{}); again[0] != got[0] {
			t.Fatalf("seq %d not deterministic: %v then %v", seq, got, again)
		}
	}
	// The idle shard wins every pair it appears in: ~2/k of draws ≈ 100.
	if hits[1] < 60 {
		t.Fatalf("idle shard picked only %d/200 times: %v", hits[1], hits)
	}
	// Single shard degenerates cleanly.
	if got := p.Order(nil, 9, loads(1), &rt.Task{}); got[0] != 0 {
		t.Fatalf("k=1 order = %v", got)
	}
}

func TestSpilloverOrder(t *testing.T) {
	s := Spillover{Inner: LeastLoaded{}}
	got := s.Order(nil, 0, loads(3, 1, 2, 0), &rt.Task{})
	// Inner pick (shard 3, empty) first, then the rest least-loaded first.
	want := []int{3, 1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// Spillover over round robin keeps the rotation as the first pick.
	srr := Spillover{Inner: RoundRobin{}}
	got = srr.Order(nil, 2, loads(0, 0, 0), &rt.Task{})
	if got[0] != 2 || len(got) != 3 {
		t.Fatalf("spillover-rr order = %v", got)
	}
}

// emptyInner is a degenerate custom placement that never picks a shard.
type emptyInner struct{}

func (emptyInner) Name() string { return "empty" }
func (emptyInner) Order(dst []int, _ uint64, _ []ShardLoad, _ *rt.Task) []int {
	return dst
}

// pairInner picks the two highest-indexed shards, testing a multi-pick
// inner placement.
type pairInner struct{}

func (pairInner) Name() string { return "pair" }
func (pairInner) Order(dst []int, _ uint64, loads []ShardLoad, _ *rt.Task) []int {
	return append(dst, len(loads)-1, len(loads)-2)
}

func TestSpilloverToleratesDegenerateInner(t *testing.T) {
	// An inner placement returning no shard must not panic; the order
	// degrades to every shard from least to most loaded.
	s := Spillover{Inner: emptyInner{}}
	got := s.Order(nil, 0, loads(3, 1, 2, 0), &rt.Task{})
	want := []int{3, 1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// A multi-pick inner keeps its picks first, and none of them is
	// offered twice.
	p := Spillover{Inner: pairInner{}}
	got = p.Order(nil, 0, loads(3, 1, 2, 0), &rt.Task{})
	want = []int{3, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("pair order = %v, want %v", got, want)
	}
	seen := map[int]bool{}
	for i := range want {
		if got[i] != want[i] || seen[got[i]] {
			t.Fatalf("pair order = %v, want %v", got, want)
		}
		seen[got[i]] = true
	}
}

func TestLoadAwareDeclarations(t *testing.T) {
	// RoundRobin declares it never reads the load signal (the pool skips
	// the per-shard sampling sweep for it); the load-driven placements
	// must not declare load-freedom.
	if la, ok := Placement(RoundRobin{}).(LoadAware); !ok || la.NeedsLoads() {
		t.Fatal("RoundRobin must report NeedsLoads() == false")
	}
	for _, p := range []Placement{LeastLoaded{}, PowerOfTwoChoices{}, Spillover{}, Spillover{Inner: RoundRobin{}}} {
		if la, ok := p.(LoadAware); ok && !la.NeedsLoads() {
			t.Fatalf("%s reads loads but reports NeedsLoads() == false", p.Name())
		}
	}
}

func TestParsePlacement(t *testing.T) {
	cases := map[string]string{
		"round-robin":   "round-robin",
		"rr":            "round-robin",
		"":              "round-robin",
		"least-loaded":  "least-loaded",
		"ll":            "least-loaded",
		"power-of-two":  "power-of-two",
		"p2c":           "power-of-two",
		"spillover":     "spillover(least-loaded)",
		"spillover-rr":  "spillover(round-robin)",
		"spillover-p2c": "spillover(power-of-two)",
	}
	for in, want := range cases {
		p, err := ParsePlacement(in, 1)
		if err != nil {
			t.Fatalf("ParsePlacement(%q): %v", in, err)
		}
		if p.Name() != want {
			t.Fatalf("ParsePlacement(%q).Name() = %q, want %q", in, p.Name(), want)
		}
	}
	if _, err := ParsePlacement("bogus", 1); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if len(Placements()) != 6 {
		t.Fatalf("Placements() = %v", Placements())
	}
}
