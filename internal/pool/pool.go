// Package pool shards the admission-control service across K independent
// clusters with a pluggable placement layer in front — the architecture of
// multi-source divisible-load systems (Wu/Cao/Robertazzi): several
// independently-fed clusters, each with its own scheduler and lock, and a
// routing decision deciding which cluster is offered each arriving task.
//
// A Pool owns K service.Service shards that share one Clock and one event
// Bus (events and decisions are shard-tagged), while every shard keeps its
// own cluster.Cluster, rt.Scheduler and commit pump. Submissions from any
// number of goroutines therefore contend only on the shard they are placed
// on, never on a pool-global lock — Submit throughput scales with the
// shard count instead of serialising on one O(queue × plan) replan.
//
// The single-cluster Service is exactly the K=1 special case: a one-shard
// pool under any placement reproduces it decision for decision, stat for
// stat.
package pool

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// ShardConfig assembles one shard: its cluster substrate, execution-order
// policy and partitioning module. Cluster and Partitioner are mandatory.
type ShardConfig struct {
	Cluster     *cluster.Cluster
	Policy      rt.Policy
	Partitioner rt.Partitioner

	// MaxQueue bounds the shard's waiting queue (0 = unbounded); a full
	// shard refuses with ErrClusterBusy, which a Spillover placement
	// retries elsewhere.
	MaxQueue int

	// Observer optionally receives the shard's legacy lifecycle callbacks.
	Observer rt.Observer
}

// Config assembles a Pool.
type Config struct {
	// Shards configures the member clusters; at least one is required.
	// Shards may differ in size, cost model, policy and partitioner — a
	// heterogeneous fleet of clusters.
	Shards []ShardConfig

	// Placement routes each submission; nil defaults to RoundRobin.
	Placement Placement

	// Clock is shared by every shard; nil defaults to a ManualClock at 0.
	Clock service.Clock

	// Metrics optionally instruments the pool: every shard records its
	// outcome counters, load gauges and per-stage admission histograms on
	// the shared instance, plus pool-level spillover and event-drop
	// counters. Nil disables instrumentation.
	Metrics *service.Metrics
}

// Pool is the sharded, concurrency-safe admission-control engine. It
// implements the same Engine surface as a single service.Service; see the
// package comment for the architecture.
type Pool struct {
	shards []*service.Service
	place  Placement
	clock  service.Clock
	bus    *service.Bus
	met    *service.Metrics // nil when uninstrumented
	total  atomic.Int64     // Σ shard cluster sizes (grows with AddNode)

	needLoads bool // placement reads QueueLen (see LoadAware)

	seq        atomic.Uint64 // submission sequence (placement input)
	arrivals   atomic.Int64  // pool-level decisions (a spillover retry is one arrival)
	accepts    atomic.Int64
	rejects    atomic.Int64
	spillovers atomic.Int64 // accepts that needed at least one retry
	closed     atomic.Bool
	draining   atomic.Bool // admission gate (SetAccepting(false))

	// fleetMu serialises fleet operations and guards the global node-id
	// registry. Submissions never touch it: node ids are append-only and
	// the placement layer reads only the shards' lock-free mirrors.
	fleetMu      sync.Mutex
	nodeOf       []nodeRef    // global node id (shard-major, append-only) → location
	readmissions atomic.Int64 // displaced tasks re-admitted on another shard

	scratch sync.Pool // *placeScratch, reused across submissions
}

// nodeRef locates one global node id inside the pool.
type nodeRef struct{ shard, local int }

type placeScratch struct {
	loads []ShardLoad
	order []int
}

var _ service.Engine = (*Pool)(nil)

// New validates the configuration and returns a ready pool.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("pool: need at least one shard: %w", errs.ErrBadConfig)
	}
	place := cfg.Placement
	if place == nil {
		place = RoundRobin{}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = service.NewManualClock(0)
	}
	p := &Pool{
		place:  place,
		clock:  clock,
		bus:    service.NewBus(),
		met:    cfg.Metrics,
		shards: make([]*service.Service, 0, len(cfg.Shards)),
	}
	for i, sc := range cfg.Shards {
		sh, err := service.New(service.Config{
			Cluster:     sc.Cluster,
			Policy:      sc.Policy,
			Partitioner: sc.Partitioner,
			Clock:       clock,
			Observer:    sc.Observer,
			MaxQueue:    sc.MaxQueue,
			Shard:       i,
			Bus:         p.bus,
			Metrics:     cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("pool: shard %d: %w", i, err)
		}
		p.shards = append(p.shards, sh)
		for local := 0; local < sc.Cluster.N(); local++ {
			p.nodeOf = append(p.nodeOf, nodeRef{shard: i, local: local})
		}
		p.total.Add(int64(sc.Cluster.N()))
	}
	p.needLoads = true
	if la, ok := place.(LoadAware); ok {
		p.needLoads = la.NeedsLoads()
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Registry().CounterFunc("rtdls_spillovers_total",
			"Accepted tasks that needed at least one spillover retry.", nil,
			func() float64 { return float64(p.spillovers.Load()) })
	}
	k := len(cfg.Shards)
	p.scratch.New = func() any {
		sc := &placeScratch{loads: make([]ShardLoad, k), order: make([]int, 0, k)}
		for i := range sc.loads {
			sc.loads[i] = ShardLoad{Shard: i}
		}
		return sc
	}
	return p, nil
}

// Shards returns the number of member clusters.
func (p *Pool) Shards() int { return len(p.shards) }

// Shard returns shard i's service (for per-shard inspection).
func (p *Pool) Shard(i int) *service.Service { return p.shards[i] }

// Placement returns the routing layer.
func (p *Pool) Placement() Placement { return p.place }

// Clock returns the clock shared by every shard.
func (p *Pool) Clock() service.Clock { return p.clock }

// Clusters returns every shard's cluster, indexed by shard.
func (p *Pool) Clusters() []*cluster.Cluster {
	out := make([]*cluster.Cluster, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.Cluster()
	}
	return out
}

// Spillovers returns how many accepted tasks needed at least one
// spillover retry (0 under single-choice placements).
func (p *Pool) Spillovers() int { return int(p.spillovers.Load()) }

// Submit routes the task through the placement layer and runs the
// admission test on the chosen shard. Under a spillover placement a
// rejected task is retried down the preference order until a shard
// accepts or every listed shard has refused; the returned decision
// reports the placing shard in Decision.Shard. The error return reports
// malformed input, a cancelled context or a closed pool — never
// infeasibility.
func (p *Pool) Submit(ctx context.Context, task rt.Task) (service.Decision, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return service.Decision{}, err
		}
	}
	if p.closed.Load() {
		return service.Decision{}, fmt.Errorf("pool: closed: %w", errs.ErrClusterBusy)
	}
	if p.draining.Load() {
		return service.Decision{}, fmt.Errorf("pool: draining: %w", errs.ErrClusterBusy)
	}
	seq := p.seq.Add(1) - 1

	sc := p.scratch.Get().(*placeScratch)
	defer p.scratch.Put(sc)
	// Live is sampled on every submit (placements skip drained shards);
	// queue lengths and node counts only for load-aware placements. All
	// three are lock-free mirror reads.
	for i, sh := range p.shards {
		sc.loads[i].Live = sh.LiveNodes()
		if p.needLoads {
			sc.loads[i].QueueLen = sh.QueueLen()
			sc.loads[i].Nodes = sh.Nodes()
		}
	}
	order := p.place.Order(sc.order[:0], seq, sc.loads, &task)
	sc.order = order[:0]
	if len(order) == 0 {
		return service.Decision{}, fmt.Errorf("pool: placement %s returned no shard: %w", p.place.Name(), errs.ErrBadConfig)
	}

	var last service.Decision
	tried, done := 0, false
	try := func(idx int) (service.Decision, bool, error) {
		d, err := p.shards[idx].Submit(ctx, task)
		if err != nil {
			return d, false, err
		}
		tried++
		if d.Accepted {
			p.arrivals.Add(1)
			p.accepts.Add(1)
			if tried > 1 {
				p.spillovers.Add(1)
			}
			return d, true, nil
		}
		last = d
		// A past deadline on the shared clock dooms the task everywhere:
		// spilling over is pointless.
		done = errors.Is(d.Reason, errs.ErrDeadlinePast)
		return d, false, nil
	}
	for _, idx := range order {
		if idx < 0 || idx >= len(p.shards) {
			return service.Decision{}, fmt.Errorf("pool: placement %s picked shard %d of %d: %w",
				p.place.Name(), idx, len(p.shards), errs.ErrBadConfig)
		}
		if sc.loads[idx].Live == 0 {
			continue // the whole shard is drained or down
		}
		d, accepted, err := try(idx)
		if err != nil {
			return d, err
		}
		if accepted {
			return d, nil
		}
		if done {
			break
		}
	}
	if tried == 0 && !done {
		// Every shard the placement picked is drained: fall through to the
		// remaining live shards in index order rather than losing the task
		// to a dead pick (single-choice placements under churn).
		for idx := range p.shards {
			if sc.loads[idx].Live == 0 || sliceContains(order, idx) {
				continue
			}
			d, accepted, err := try(idx)
			if err != nil {
				return d, err
			}
			if accepted {
				return d, nil
			}
			if done {
				break
			}
		}
	}
	if tried == 0 {
		return service.Decision{}, fmt.Errorf("pool: no live shard available: %w", errs.ErrClusterBusy)
	}
	p.arrivals.Add(1)
	p.rejects.Add(1)
	return last, nil
}

// sliceContains reports whether order already lists idx (K is small; a
// linear scan keeps the hot path allocation-free).
func sliceContains(order []int, idx int) bool {
	for _, o := range order {
		if o == idx {
			return true
		}
	}
	return false
}

// SubmitBatch submits several tasks, returning one decision per considered
// task in input order. The batch fans out: every task is routed up front
// (placement sequence numbers follow input order), the per-shard sub-batches
// run concurrently — one goroutine per target shard, each a single
// group-installed shard batch — and the decisions are re-stitched into input
// order. Tasks a shard refuses are then retried down their placement order
// exactly as Submit spills over. Unlike a single service, the batch is not
// atomic pool-wide: concurrent submitters may interleave between sub-batches.
// On a hard error the decisions made so far (in input order) are returned
// alongside it.
func (p *Pool) SubmitBatch(ctx context.Context, tasks []rt.Task) ([]service.Decision, error) {
	decisions := make([]service.Decision, 0, len(tasks))
	if len(tasks) == 0 {
		return decisions, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return decisions, err
		}
	}
	if p.closed.Load() {
		return decisions, fmt.Errorf("pool: closed: %w", errs.ErrClusterBusy)
	}
	if p.draining.Load() {
		return decisions, fmt.Errorf("pool: draining: %w", errs.ErrClusterBusy)
	}

	// Route every task first, in input order. Loads are sampled once; for
	// load-aware placements each routed task optimistically grows its target
	// shard's queue so the batch keeps spreading the way per-task sampling
	// would.
	sc := p.scratch.Get().(*placeScratch)
	defer p.scratch.Put(sc)
	for i, sh := range p.shards {
		sc.loads[i].Live = sh.LiveNodes()
		if p.needLoads {
			sc.loads[i].QueueLen = sh.QueueLen()
			sc.loads[i].Nodes = sh.Nodes()
		}
	}
	orders := make([][]int, len(tasks))
	target := make([]int, len(tasks))
	subTasks := make([][]rt.Task, len(p.shards))
	for i := range tasks {
		seq := p.seq.Add(1) - 1
		order := p.place.Order(sc.order[:0], seq, sc.loads, &tasks[i])
		sc.order = order[:0]
		if len(order) == 0 {
			return decisions, fmt.Errorf("pool: placement %s returned no shard: %w", p.place.Name(), errs.ErrBadConfig)
		}
		target[i] = -1
		for _, idx := range order {
			if idx < 0 || idx >= len(p.shards) {
				return decisions, fmt.Errorf("pool: placement %s picked shard %d of %d: %w",
					p.place.Name(), idx, len(p.shards), errs.ErrBadConfig)
			}
			if target[i] < 0 && sc.loads[idx].Live > 0 {
				target[i] = idx
			}
		}
		orders[i] = append([]int(nil), order...)
		if t := target[i]; t >= 0 {
			subTasks[t] = append(subTasks[t], tasks[i])
			if p.needLoads {
				sc.loads[t].QueueLen++
			}
		}
	}

	// Fan out: one goroutine per target shard, each submitting its
	// sub-batch in one shard-level (speculative, group-installed) batch.
	subDec := make([][]service.Decision, len(p.shards))
	subErr := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for s := range p.shards {
		if len(subTasks[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			subDec[s], subErr[s] = p.shards[s].SubmitBatch(ctx, subTasks[s])
		}(s)
	}
	wg.Wait()

	// Stitch the decisions back into input order; rejected tasks spill over
	// down their placement order, dead-pick tasks fall through to the
	// remaining live shards — both exactly as Submit does.
	pos := make([]int, len(p.shards))
	for i := range tasks {
		t := target[i]
		if t < 0 {
			d, err := p.deadPickFallthrough(ctx, tasks[i], orders[i])
			if err != nil {
				return decisions, err
			}
			decisions = append(decisions, d)
			continue
		}
		j := pos[t]
		pos[t]++
		if j >= len(subDec[t]) {
			// The shard's sub-batch stopped early on a hard error; this is
			// the first input-order task it never decided.
			return decisions, subErr[t]
		}
		d := subDec[t][j]
		if d.Accepted {
			p.arrivals.Add(1)
			p.accepts.Add(1)
			decisions = append(decisions, d)
			continue
		}
		d, err := p.spillOver(ctx, tasks[i], orders[i], t, d)
		if err != nil {
			return decisions, err
		}
		decisions = append(decisions, d)
	}
	return decisions, nil
}

// spillOver retries a task its first shard refused down the rest of its
// placement order, mirroring Submit's retry loop and counter discipline.
func (p *Pool) spillOver(ctx context.Context, task rt.Task, order []int, first int, firstDec service.Decision) (service.Decision, error) {
	last := firstDec
	if !errors.Is(last.Reason, errs.ErrDeadlinePast) {
		for _, idx := range order {
			if idx == first || p.shards[idx].LiveNodes() == 0 {
				continue
			}
			d, err := p.shards[idx].Submit(ctx, task)
			if err != nil {
				return d, err
			}
			if d.Accepted {
				p.arrivals.Add(1)
				p.accepts.Add(1)
				p.spillovers.Add(1)
				return d, nil
			}
			last = d
			if errors.Is(d.Reason, errs.ErrDeadlinePast) {
				break
			}
		}
	}
	p.arrivals.Add(1)
	p.rejects.Add(1)
	return last, nil
}

// deadPickFallthrough handles a task whose every placement pick was dead at
// routing time: offer it to the remaining live shards in index order, as
// Submit's fall-through does.
func (p *Pool) deadPickFallthrough(ctx context.Context, task rt.Task, order []int) (service.Decision, error) {
	var last service.Decision
	tried := 0
	for idx := range p.shards {
		if sliceContains(order, idx) || p.shards[idx].LiveNodes() == 0 {
			continue
		}
		d, err := p.shards[idx].Submit(ctx, task)
		if err != nil {
			return d, err
		}
		tried++
		if d.Accepted {
			p.arrivals.Add(1)
			p.accepts.Add(1)
			if tried > 1 {
				p.spillovers.Add(1)
			}
			return d, nil
		}
		last = d
		if errors.Is(d.Reason, errs.ErrDeadlinePast) {
			break
		}
	}
	if tried == 0 {
		return service.Decision{}, fmt.Errorf("pool: no live shard available: %w", errs.ErrClusterBusy)
	}
	p.arrivals.Add(1)
	p.rejects.Add(1)
	return last, nil
}

// Subscribe attaches a consumer to the pool-wide event stream: one merged,
// shard-tagged sequence over all shards. The returned cancel function
// detaches it and closes the channel.
func (p *Pool) Subscribe(buffer int) (<-chan Event, func()) {
	return p.bus.Subscribe(buffer)
}

// SubscribeStream attaches a consumer to the merged stream and returns its
// Subscription handle, exposing the subscriber's own dropped-event count.
func (p *Pool) SubscribeStream(buffer int) *service.Subscription {
	return p.bus.SubscribeStream(buffer)
}

// SetAccepting flips the pool-wide admission gate: while false, every
// submission fails fast with ErrClusterBusy before placement runs, while
// commits and the event stream keep operating — the first step of a
// graceful drain. Reversible until Close.
func (p *Pool) SetAccepting(accepting bool) { p.draining.Store(!accepting) }

// Accepting reports whether the pool-wide admission gate is open:
// true until SetAccepting(false) or Close. Lock-free — the health
// endpoint's readiness signal.
func (p *Pool) Accepting() bool { return !p.draining.Load() && !p.closed.Load() }

// SetSpeculation toggles optimistic two-phase admission on every shard
// (on by default; see service.Service.SetSpeculation).
func (p *Pool) SetSpeculation(on bool) {
	for _, sh := range p.shards {
		sh.SetSpeculation(on)
	}
}

// Event re-exports the service event type for pool subscribers.
type Event = service.Event

// Stats returns the pool-wide aggregate of every shard's snapshot:
// admission counters from the pool's final decisions (a task spilled over
// N shards counts once, not N times), capacity accounting summed over the
// shards, MaxQueueLen as the sum of per-shard peaks (an upper bound on the
// peak total), and Utilization over the combined node count. Per-shard
// views come from ShardStats.
func (p *Pool) Stats() service.Stats {
	now := p.clock.Now()
	agg := service.Stats{
		Time:     now,
		Arrivals: int(p.arrivals.Load()),
		Accepts:  int(p.accepts.Load()),
		Rejects:  int(p.rejects.Load()),
	}
	for _, sh := range p.shards {
		st := sh.Stats()
		agg.Commits += st.Commits
		agg.QueueLen += st.QueueLen
		agg.MaxQueueLen += st.MaxQueueLen
		agg.BusyTime += st.BusyTime
		agg.ReservedIdle += st.ReservedIdle
		agg.NodesUp += st.NodesUp
		agg.NodesDraining += st.NodesDraining
		agg.NodesDown += st.NodesDown
		agg.Displaced += st.Displaced
		agg.LateCommits += st.LateCommits
		agg.Speculative += st.Speculative
		agg.Conflicts += st.Conflicts
		if st.LastRelease > agg.LastRelease {
			agg.LastRelease = st.LastRelease
		}
	}
	agg.Readmitted = int(p.readmissions.Load())
	if span := math.Max(now, agg.LastRelease); span > 0 {
		agg.Utilization = agg.BusyTime / (float64(p.total.Load()) * span)
	}
	agg.EventsDropped = p.bus.DroppedTotal()
	return agg
}

// ShardStats returns every shard's own snapshot, indexed by shard. Note
// that shard-level Arrivals/Rejects count what the shard saw — under a
// spillover placement a retried task appears on every shard that refused
// it. EventsDropped is bus-wide (the shards share one bus).
func (p *Pool) ShardStats() []service.Stats {
	out := make([]service.Stats, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Exec returns the execution metrics of committed plans aggregated over
// all shards.
func (p *Pool) Exec() service.ExecStats {
	agg := service.ExecStats{MaxLateness: math.Inf(-1)}
	for _, sh := range p.shards {
		ex := sh.Exec()
		agg.Committed += ex.Committed
		agg.RespSum += ex.RespSum
		agg.SlackSum += ex.SlackSum
		agg.NodeSum += ex.NodeSum
		if ex.MaxLateness > agg.MaxLateness {
			agg.MaxLateness = ex.MaxLateness
		}
	}
	return agg
}

// NextCommit returns the earliest pending first-transmission time across
// all shards, or ok=false when every waiting queue is empty.
func (p *Pool) NextCommit() (at float64, ok bool) {
	at = math.Inf(1)
	for _, sh := range p.shards {
		if t, has := sh.NextCommit(); has && t < at {
			at = t
		}
	}
	return at, !math.IsInf(at, 1)
}

// CommitDue starts every transmission due at the given time on every
// shard.
func (p *Pool) CommitDue(now float64) error {
	for i, sh := range p.shards {
		if err := sh.CommitDue(now); err != nil {
			return fmt.Errorf("pool: shard %d: %w", i, err)
		}
	}
	return nil
}

// Pump commits everything due at the current clock reading.
func (p *Pool) Pump() error { return p.CommitDue(p.clock.Now()) }

// Drain commits every remaining waiting plan on every shard regardless of
// the clock — the shutdown/flush path.
func (p *Pool) Drain() error {
	for i, sh := range p.shards {
		if err := sh.Drain(); err != nil {
			return fmt.Errorf("pool: shard %d: %w", i, err)
		}
	}
	return nil
}

// DrainNode stops placing new work on the node (committed work runs to
// completion); waiting plans on its shard are re-validated and displaced
// tasks are re-admitted on the remaining live shards through the normal
// schedulability test. The node id is pool-global (shard-major).
func (p *Pool) DrainNode(node int) (service.FleetResult, error) {
	return p.fleetOp(node, service.NodeDraining)
}

// FailNode removes the node's capacity immediately; displacement and
// re-admission work exactly as for DrainNode.
func (p *Pool) FailNode(node int) (service.FleetResult, error) {
	return p.fleetOp(node, service.NodeDown)
}

// RestoreNode returns a drained or failed node to service; nothing is
// displaced.
func (p *Pool) RestoreNode(node int) (service.FleetResult, error) {
	return p.fleetOp(node, service.NodeUp)
}

func (p *Pool) fleetOp(node int, st service.NodeState) (service.FleetResult, error) {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	if p.closed.Load() {
		return service.FleetResult{}, fmt.Errorf("pool: closed: %w", errs.ErrClusterBusy)
	}
	if node < 0 || node >= len(p.nodeOf) {
		return service.FleetResult{}, fmt.Errorf("pool: node id %d out of range [0,%d): %w",
			node, len(p.nodeOf), errs.ErrBadConfig)
	}
	ref := p.nodeOf[node]
	disp, err := p.shards[ref.shard].SetNodeState(ref.local, st)
	if err != nil {
		return service.FleetResult{}, err
	}
	res := service.FleetResult{Node: node, State: st, StateToken: st.String(), Displaced: len(disp)}
	for _, t := range disp {
		if p.readmit(t, ref.shard) {
			res.Readmitted++
		}
	}
	return res, nil
}

// readmit offers a displaced task to every other live shard, in index
// order, through the normal Submit path (so its accept, or eventual
// commit, is counted exactly like any other admission at the shard that
// takes it). The originating shard is skipped: the whole-queue test there
// just proved the task no longer fits.
func (p *Pool) readmit(t rt.Task, origin int) bool {
	var start time.Time
	if p.met != nil {
		start = time.Now()
	}
	for i, sh := range p.shards {
		if i == origin || sh.LiveNodes() == 0 {
			continue
		}
		d, err := sh.Submit(context.Background(), t)
		if err != nil {
			continue // shard closed underneath us; try the next
		}
		if d.Accepted {
			p.readmissions.Add(1)
			if p.met != nil {
				p.met.Readmission().Observe(time.Since(start).Seconds())
			}
			return true
		}
		if errors.Is(d.Reason, errs.ErrDeadlinePast) {
			return false
		}
	}
	return false
}

// AddNode grows the shard with the fewest live nodes (ties toward the
// lowest index) by one node with the given cost coefficients and returns
// its pool-global id. Ids are append-only: existing ids never shift.
func (p *Pool) AddNode(nc dlt.NodeCost) (int, error) {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	if p.closed.Load() {
		return 0, fmt.Errorf("pool: closed: %w", errs.ErrClusterBusy)
	}
	best := 0
	for i := 1; i < len(p.shards); i++ {
		if p.shards[i].LiveNodes() < p.shards[best].LiveNodes() {
			best = i
		}
	}
	local, err := p.shards[best].AddNode(nc)
	if err != nil {
		return 0, err
	}
	p.nodeOf = append(p.nodeOf, nodeRef{shard: best, local: local})
	p.total.Add(1)
	return len(p.nodeOf) - 1, nil
}

// NodeStates returns every node's lifecycle state indexed by pool-global
// node id.
func (p *Pool) NodeStates() []service.NodeState {
	p.fleetMu.Lock()
	defer p.fleetMu.Unlock()
	per := make([][]service.NodeState, len(p.shards))
	for i, sh := range p.shards {
		per[i] = sh.NodeStates()
	}
	out := make([]service.NodeState, len(p.nodeOf))
	for g, ref := range p.nodeOf {
		out[g] = per[ref.shard][ref.local]
	}
	return out
}

// Readmissions returns how many displaced tasks were re-admitted on
// another shard.
func (p *Pool) Readmissions() int { return int(p.readmissions.Load()) }

// Close marks the pool closed — subsequent submissions fail with
// ErrClusterBusy — closes every shard and then the shared event bus.
// Waiting plans are not committed; call Drain first to flush them. Close
// is idempotent.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for _, sh := range p.shards {
		sh.Close() //nolint:errcheck // always nil; bus ownership is the pool's
	}
	p.bus.Close()
	return nil
}
