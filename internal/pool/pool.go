// Package pool shards the admission-control service across K independent
// clusters with a pluggable placement layer in front — the architecture of
// multi-source divisible-load systems (Wu/Cao/Robertazzi): several
// independently-fed clusters, each with its own scheduler and lock, and a
// routing decision deciding which cluster is offered each arriving task.
//
// A Pool owns K service.Service shards that share one Clock and one event
// Bus (events and decisions are shard-tagged), while every shard keeps its
// own cluster.Cluster, rt.Scheduler and commit pump. Submissions from any
// number of goroutines therefore contend only on the shard they are placed
// on, never on a pool-global lock — Submit throughput scales with the
// shard count instead of serialising on one O(queue × plan) replan.
//
// The single-cluster Service is exactly the K=1 special case: a one-shard
// pool under any placement reproduces it decision for decision, stat for
// stat.
package pool

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"rtdls/internal/cluster"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// ShardConfig assembles one shard: its cluster substrate, execution-order
// policy and partitioning module. Cluster and Partitioner are mandatory.
type ShardConfig struct {
	Cluster     *cluster.Cluster
	Policy      rt.Policy
	Partitioner rt.Partitioner

	// MaxQueue bounds the shard's waiting queue (0 = unbounded); a full
	// shard refuses with ErrClusterBusy, which a Spillover placement
	// retries elsewhere.
	MaxQueue int

	// Observer optionally receives the shard's legacy lifecycle callbacks.
	Observer rt.Observer
}

// Config assembles a Pool.
type Config struct {
	// Shards configures the member clusters; at least one is required.
	// Shards may differ in size, cost model, policy and partitioner — a
	// heterogeneous fleet of clusters.
	Shards []ShardConfig

	// Placement routes each submission; nil defaults to RoundRobin.
	Placement Placement

	// Clock is shared by every shard; nil defaults to a ManualClock at 0.
	Clock service.Clock

	// Metrics optionally instruments the pool: every shard records its
	// outcome counters, load gauges and per-stage admission histograms on
	// the shared instance, plus pool-level spillover and event-drop
	// counters. Nil disables instrumentation.
	Metrics *service.Metrics
}

// Pool is the sharded, concurrency-safe admission-control engine. It
// implements the same Engine surface as a single service.Service; see the
// package comment for the architecture.
type Pool struct {
	shards []*service.Service
	place  Placement
	clock  service.Clock
	bus    *service.Bus
	nodes  []int // per-shard cluster sizes
	total  int   // Σ nodes

	needLoads bool // placement reads QueueLen (see LoadAware)

	seq        atomic.Uint64 // submission sequence (placement input)
	arrivals   atomic.Int64  // pool-level decisions (a spillover retry is one arrival)
	accepts    atomic.Int64
	rejects    atomic.Int64
	spillovers atomic.Int64 // accepts that needed at least one retry
	closed     atomic.Bool
	draining   atomic.Bool // admission gate (SetAccepting(false))

	scratch sync.Pool // *placeScratch, reused across submissions
}

type placeScratch struct {
	loads []ShardLoad
	order []int
}

var _ service.Engine = (*Pool)(nil)

// New validates the configuration and returns a ready pool.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("pool: need at least one shard: %w", errs.ErrBadConfig)
	}
	place := cfg.Placement
	if place == nil {
		place = RoundRobin{}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = service.NewManualClock(0)
	}
	p := &Pool{
		place:  place,
		clock:  clock,
		bus:    service.NewBus(),
		shards: make([]*service.Service, 0, len(cfg.Shards)),
		nodes:  make([]int, 0, len(cfg.Shards)),
	}
	for i, sc := range cfg.Shards {
		sh, err := service.New(service.Config{
			Cluster:     sc.Cluster,
			Policy:      sc.Policy,
			Partitioner: sc.Partitioner,
			Clock:       clock,
			Observer:    sc.Observer,
			MaxQueue:    sc.MaxQueue,
			Shard:       i,
			Bus:         p.bus,
			Metrics:     cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("pool: shard %d: %w", i, err)
		}
		p.shards = append(p.shards, sh)
		p.nodes = append(p.nodes, sc.Cluster.N())
		p.total += sc.Cluster.N()
	}
	p.needLoads = true
	if la, ok := place.(LoadAware); ok {
		p.needLoads = la.NeedsLoads()
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Registry().CounterFunc("rtdls_spillovers_total",
			"Accepted tasks that needed at least one spillover retry.", nil,
			func() float64 { return float64(p.spillovers.Load()) })
	}
	k := len(cfg.Shards)
	p.scratch.New = func() any {
		sc := &placeScratch{loads: make([]ShardLoad, k), order: make([]int, 0, k)}
		for i := range sc.loads {
			sc.loads[i] = ShardLoad{Shard: i, Nodes: p.nodes[i]}
		}
		return sc
	}
	return p, nil
}

// Shards returns the number of member clusters.
func (p *Pool) Shards() int { return len(p.shards) }

// Shard returns shard i's service (for per-shard inspection).
func (p *Pool) Shard(i int) *service.Service { return p.shards[i] }

// Placement returns the routing layer.
func (p *Pool) Placement() Placement { return p.place }

// Clock returns the clock shared by every shard.
func (p *Pool) Clock() service.Clock { return p.clock }

// Clusters returns every shard's cluster, indexed by shard.
func (p *Pool) Clusters() []*cluster.Cluster {
	out := make([]*cluster.Cluster, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.Cluster()
	}
	return out
}

// Spillovers returns how many accepted tasks needed at least one
// spillover retry (0 under single-choice placements).
func (p *Pool) Spillovers() int { return int(p.spillovers.Load()) }

// Submit routes the task through the placement layer and runs the
// admission test on the chosen shard. Under a spillover placement a
// rejected task is retried down the preference order until a shard
// accepts or every listed shard has refused; the returned decision
// reports the placing shard in Decision.Shard. The error return reports
// malformed input, a cancelled context or a closed pool — never
// infeasibility.
func (p *Pool) Submit(ctx context.Context, task rt.Task) (service.Decision, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return service.Decision{}, err
		}
	}
	if p.closed.Load() {
		return service.Decision{}, fmt.Errorf("pool: closed: %w", errs.ErrClusterBusy)
	}
	if p.draining.Load() {
		return service.Decision{}, fmt.Errorf("pool: draining: %w", errs.ErrClusterBusy)
	}
	seq := p.seq.Add(1) - 1

	sc := p.scratch.Get().(*placeScratch)
	defer p.scratch.Put(sc)
	if p.needLoads {
		// Shard and Nodes are constant and prefilled when the scratch is
		// created; only the queue lengths need a fresh sample.
		for i, sh := range p.shards {
			sc.loads[i].QueueLen = sh.QueueLen()
		}
	}
	order := p.place.Order(sc.order[:0], seq, sc.loads, &task)
	sc.order = order[:0]
	if len(order) == 0 {
		return service.Decision{}, fmt.Errorf("pool: placement %s returned no shard: %w", p.place.Name(), errs.ErrBadConfig)
	}

	var last service.Decision
	for attempt, idx := range order {
		if idx < 0 || idx >= len(p.shards) {
			return service.Decision{}, fmt.Errorf("pool: placement %s picked shard %d of %d: %w",
				p.place.Name(), idx, len(p.shards), errs.ErrBadConfig)
		}
		d, err := p.shards[idx].Submit(ctx, task)
		if err != nil {
			return d, err
		}
		if d.Accepted {
			p.arrivals.Add(1)
			p.accepts.Add(1)
			if attempt > 0 {
				p.spillovers.Add(1)
			}
			return d, nil
		}
		last = d
		if errors.Is(d.Reason, errs.ErrDeadlinePast) {
			// The deadline has passed on the shared clock: no shard can
			// take it, so spilling over is pointless.
			break
		}
	}
	p.arrivals.Add(1)
	p.rejects.Add(1)
	return last, nil
}

// SubmitBatch submits several tasks in order, returning one decision per
// considered task. Unlike a single service, the batch is not atomic
// pool-wide: each task is placed and tested individually, so concurrent
// submitters may interleave between them. On a hard error the decisions
// made so far are returned alongside it.
func (p *Pool) SubmitBatch(ctx context.Context, tasks []rt.Task) ([]service.Decision, error) {
	decisions := make([]service.Decision, 0, len(tasks))
	for _, t := range tasks {
		d, err := p.Submit(ctx, t)
		if err != nil {
			return decisions, err
		}
		decisions = append(decisions, d)
	}
	return decisions, nil
}

// Subscribe attaches a consumer to the pool-wide event stream: one merged,
// shard-tagged sequence over all shards. The returned cancel function
// detaches it and closes the channel.
func (p *Pool) Subscribe(buffer int) (<-chan Event, func()) {
	return p.bus.Subscribe(buffer)
}

// SubscribeStream attaches a consumer to the merged stream and returns its
// Subscription handle, exposing the subscriber's own dropped-event count.
func (p *Pool) SubscribeStream(buffer int) *service.Subscription {
	return p.bus.SubscribeStream(buffer)
}

// SetAccepting flips the pool-wide admission gate: while false, every
// submission fails fast with ErrClusterBusy before placement runs, while
// commits and the event stream keep operating — the first step of a
// graceful drain. Reversible until Close.
func (p *Pool) SetAccepting(accepting bool) { p.draining.Store(!accepting) }

// Accepting reports whether the pool-wide admission gate is open:
// true until SetAccepting(false) or Close. Lock-free — the health
// endpoint's readiness signal.
func (p *Pool) Accepting() bool { return !p.draining.Load() && !p.closed.Load() }

// Event re-exports the service event type for pool subscribers.
type Event = service.Event

// Stats returns the pool-wide aggregate of every shard's snapshot:
// admission counters from the pool's final decisions (a task spilled over
// N shards counts once, not N times), capacity accounting summed over the
// shards, MaxQueueLen as the sum of per-shard peaks (an upper bound on the
// peak total), and Utilization over the combined node count. Per-shard
// views come from ShardStats.
func (p *Pool) Stats() service.Stats {
	now := p.clock.Now()
	agg := service.Stats{
		Time:     now,
		Arrivals: int(p.arrivals.Load()),
		Accepts:  int(p.accepts.Load()),
		Rejects:  int(p.rejects.Load()),
	}
	for _, sh := range p.shards {
		st := sh.Stats()
		agg.Commits += st.Commits
		agg.QueueLen += st.QueueLen
		agg.MaxQueueLen += st.MaxQueueLen
		agg.BusyTime += st.BusyTime
		agg.ReservedIdle += st.ReservedIdle
		if st.LastRelease > agg.LastRelease {
			agg.LastRelease = st.LastRelease
		}
	}
	if span := math.Max(now, agg.LastRelease); span > 0 {
		agg.Utilization = agg.BusyTime / (float64(p.total) * span)
	}
	agg.EventsDropped = p.bus.DroppedTotal()
	return agg
}

// ShardStats returns every shard's own snapshot, indexed by shard. Note
// that shard-level Arrivals/Rejects count what the shard saw — under a
// spillover placement a retried task appears on every shard that refused
// it. EventsDropped is bus-wide (the shards share one bus).
func (p *Pool) ShardStats() []service.Stats {
	out := make([]service.Stats, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Exec returns the execution metrics of committed plans aggregated over
// all shards.
func (p *Pool) Exec() service.ExecStats {
	agg := service.ExecStats{MaxLateness: math.Inf(-1)}
	for _, sh := range p.shards {
		ex := sh.Exec()
		agg.Committed += ex.Committed
		agg.RespSum += ex.RespSum
		agg.SlackSum += ex.SlackSum
		agg.NodeSum += ex.NodeSum
		if ex.MaxLateness > agg.MaxLateness {
			agg.MaxLateness = ex.MaxLateness
		}
	}
	return agg
}

// NextCommit returns the earliest pending first-transmission time across
// all shards, or ok=false when every waiting queue is empty.
func (p *Pool) NextCommit() (at float64, ok bool) {
	at = math.Inf(1)
	for _, sh := range p.shards {
		if t, has := sh.NextCommit(); has && t < at {
			at = t
		}
	}
	return at, !math.IsInf(at, 1)
}

// CommitDue starts every transmission due at the given time on every
// shard.
func (p *Pool) CommitDue(now float64) error {
	for i, sh := range p.shards {
		if err := sh.CommitDue(now); err != nil {
			return fmt.Errorf("pool: shard %d: %w", i, err)
		}
	}
	return nil
}

// Pump commits everything due at the current clock reading.
func (p *Pool) Pump() error { return p.CommitDue(p.clock.Now()) }

// Drain commits every remaining waiting plan on every shard regardless of
// the clock — the shutdown/flush path.
func (p *Pool) Drain() error {
	for i, sh := range p.shards {
		if err := sh.Drain(); err != nil {
			return fmt.Errorf("pool: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close marks the pool closed — subsequent submissions fail with
// ErrClusterBusy — closes every shard and then the shared event bus.
// Waiting plans are not committed; call Drain first to flush them. Close
// is idempotent.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for _, sh := range p.shards {
		sh.Close() //nolint:errcheck // always nil; bus ownership is the pool's
	}
	p.bus.Close()
	return nil
}
