package pool

import (
	"context"
	"errors"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

// newPool builds a homogeneous K-shard pool of n-node DLT-IIT clusters.
func newPool(t testing.TB, k, n int, place Placement) *Pool {
	t.Helper()
	shards := make([]ShardConfig, k)
	for i := range shards {
		cl, err := cluster.New(n, baseline)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = ShardConfig{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}}
	}
	p, err := New(Config{Shards: shards, Placement: place})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("empty config: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{Shards: []ShardConfig{{}}}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("nil cluster shard: err = %v, want ErrBadConfig", err)
	}
}

func TestRoundRobinRoutesBySequence(t *testing.T) {
	p := newPool(t, 3, 8, RoundRobin{})
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 9; i++ {
		d, err := p.Submit(ctx, rt.Task{ID: int64(i + 1), Sigma: 50, RelDeadline: 1e6})
		if err != nil || !d.Accepted {
			t.Fatalf("submit %d: %+v, %v", i, d, err)
		}
		if d.Shard != i%3 {
			t.Fatalf("submission %d placed on shard %d, want %d", i, d.Shard, i%3)
		}
	}
	st := p.Stats()
	if st.Arrivals != 9 || st.Accepts != 9 || st.Rejects != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, ss := range p.ShardStats() {
		if ss.Accepts != 3 {
			t.Fatalf("shard %d accepts = %d, want 3", i, ss.Accepts)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Commits != 9 || st.QueueLen != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

// TestSpilloverRetriesInfeasibleShard forces the retry path
// deterministically: round robin offers the task to a 1-node shard that
// cannot meet the deadline, and spillover re-offers it to the 16-node
// sibling, which accepts. Pool-level counters must count the task once.
func TestSpilloverRetriesInfeasibleShard(t *testing.T) {
	small, err := cluster.New(1, baseline)
	if err != nil {
		t.Fatal(err)
	}
	big, err := cluster.New(16, baseline)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Shards: []ShardConfig{
			{Cluster: small, Policy: rt.EDF, Partitioner: rt.IITDLT{}},
			{Cluster: big, Policy: rt.EDF, Partitioner: rt.IITDLT{}},
		},
		Placement: Spillover{Inner: RoundRobin{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// E(100, 1) = 100·(Cms+Cps) = 10100 > 3000, but 16 nodes finish well
	// inside the deadline.
	d, err := p.Submit(context.Background(), rt.Task{ID: 1, Sigma: 100, RelDeadline: 3000})
	if err != nil || !d.Accepted {
		t.Fatalf("decision = %+v, %v", d, err)
	}
	if d.Shard != 1 {
		t.Fatalf("placed on shard %d, want the 16-node shard 1", d.Shard)
	}
	if p.Spillovers() != 1 {
		t.Fatalf("Spillovers = %d, want 1", p.Spillovers())
	}
	ss := p.ShardStats()
	if ss[0].Rejects != 1 || ss[1].Accepts != 1 {
		t.Fatalf("shard stats = %+v", ss)
	}
	if st := p.Stats(); st.Arrivals != 1 || st.Accepts != 1 || st.Rejects != 0 {
		t.Fatalf("pool stats double-counted the spillover: %+v", st)
	}
}

// feedStream submits a deterministic bursty task stream and returns the
// pool's final stats.
func feedStream(t *testing.T, p *Pool, tasks int) service.Stats {
	t.Helper()
	ctx := context.Background()
	now := 0.0
	rng := uint64(12345)
	next := func(mod uint64) float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64((rng >> 33) % mod)
	}
	for i := 0; i < tasks; i++ {
		now += next(300) // bursty: mean interarrival ≪ mean execution
		task := rt.Task{
			ID:          int64(i + 1),
			Arrival:     now,
			Sigma:       1 + next(400),
			RelDeadline: 1500 + next(5000),
		}
		if _, err := p.Submit(ctx, task); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	return p.Stats()
}

// TestSpilloverCutsRejectRatio drives the same overloaded stream through
// single-choice round robin and its spillover variant: retrying rejected
// tasks on the other shards must not lose capacity, and on this fixed
// stream it rescues a measurable number of tasks.
func TestSpilloverCutsRejectRatio(t *testing.T) {
	single := newPool(t, 4, 4, RoundRobin{})
	defer single.Close()
	spill := newPool(t, 4, 4, Spillover{Inner: RoundRobin{}})
	defer spill.Close()

	const tasks = 400
	sSingle := feedStream(t, single, tasks)
	sSpill := feedStream(t, spill, tasks)
	if sSingle.Arrivals != tasks || sSpill.Arrivals != tasks {
		t.Fatalf("arrivals %d / %d, want %d", sSingle.Arrivals, sSpill.Arrivals, tasks)
	}
	if sSpill.Rejects >= sSingle.Rejects {
		t.Fatalf("spillover did not cut rejects: %d (spillover) vs %d (round robin)",
			sSpill.Rejects, sSingle.Rejects)
	}
	if spill.Spillovers() == 0 {
		t.Fatalf("no spillover retries happened — stream not stressful enough")
	}
	if sSpill.Commits != sSpill.Accepts || sSpill.QueueLen != 0 {
		t.Fatalf("drain incomplete: %+v", sSpill)
	}
}

func TestDeadlinePastSkipsSpillover(t *testing.T) {
	clock := service.NewManualClock(1000)
	shards := make([]ShardConfig, 2)
	for i := range shards {
		cl, _ := cluster.New(4, baseline)
		shards[i] = ShardConfig{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}}
	}
	p, err := New(Config{Shards: shards, Placement: Spillover{}, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := p.Submit(context.Background(), rt.Task{ID: 1, Arrival: 10, Sigma: 10, RelDeadline: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(d.Reason, errs.ErrDeadlinePast) {
		t.Fatalf("reason = %v, want ErrDeadlinePast", d.Reason)
	}
	// Only one shard should have seen it (no pointless retries).
	saw := 0
	for _, ss := range p.ShardStats() {
		saw += ss.Arrivals
	}
	if saw != 1 {
		t.Fatalf("%d shard arrivals for a past-deadline task, want 1", saw)
	}
}

func TestMergedEventStreamIsShardTagged(t *testing.T) {
	p := newPool(t, 3, 8, RoundRobin{})
	events, cancel := p.Subscribe(64)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := p.Submit(ctx, rt.Task{ID: int64(i + 1), Sigma: 50, RelDeadline: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	cancel()
	counts := map[int]int{}
	kinds := map[service.EventKind]int{}
	for ev := range events {
		counts[ev.Shard]++
		kinds[ev.Kind]++
	}
	if kinds[service.EventAccept] != 6 || kinds[service.EventCommit] != 6 {
		t.Fatalf("event kinds = %v", kinds)
	}
	for shard := 0; shard < 3; shard++ {
		if counts[shard] != 4 { // 2 accepts + 2 commits each
			t.Fatalf("shard %d events = %d, want 4 (%v)", shard, counts[shard], counts)
		}
	}
}

func TestClosedPool(t *testing.T) {
	p := newPool(t, 2, 4, nil)
	p.Close()
	if _, err := p.Submit(context.Background(), rt.Task{ID: 1, Sigma: 1, RelDeadline: 100}); !errors.Is(err, errs.ErrClusterBusy) {
		t.Fatalf("err = %v, want ErrClusterBusy", err)
	}
	p.Close() // idempotent
}

func TestHeterogeneousShardSizes(t *testing.T) {
	big, err := cluster.New(16, baseline)
	if err != nil {
		t.Fatal(err)
	}
	small, err := cluster.New(2, baseline)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Shards: []ShardConfig{
			{Cluster: big, Policy: rt.EDF, Partitioner: rt.IITDLT{}},
			{Cluster: small, Policy: rt.EDF, Partitioner: rt.IITDLT{}},
		},
		Placement: LeastLoaded{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Empty queues tie — least-loaded must prefer the larger shard.
	d, err := p.Submit(context.Background(), rt.Task{ID: 1, Sigma: 50, RelDeadline: 1e6})
	if err != nil || !d.Accepted || d.Shard != 0 {
		t.Fatalf("decision = %+v, %v; want shard 0", d, err)
	}
	if got := p.Clusters(); len(got) != 2 || got[0].N() != 16 || got[1].N() != 2 {
		t.Fatalf("Clusters() = %v", got)
	}
}

func TestPoolSetAcceptingGate(t *testing.T) {
	p := newPool(t, 2, 8, RoundRobin{})
	defer p.Close()
	ctx := context.Background()
	if d, err := p.Submit(ctx, rt.Task{ID: 1, Sigma: 150, RelDeadline: 1e6}); err != nil || !d.Accepted {
		t.Fatalf("submit before gate: %+v, %v", d, err)
	}
	p.SetAccepting(false)
	if _, err := p.Submit(ctx, rt.Task{ID: 2, Sigma: 150, RelDeadline: 1e6}); !errors.Is(err, errs.ErrClusterBusy) {
		t.Fatalf("gated submit err = %v, want ErrClusterBusy", err)
	}
	p.SetAccepting(true)
	if d, err := p.Submit(ctx, rt.Task{ID: 3, Sigma: 150, RelDeadline: 1e6}); err != nil || !d.Accepted {
		t.Fatalf("submit after reopen: %+v, %v", d, err)
	}
	// Drain after gating commits everything accepted.
	p.SetAccepting(false)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("drain lost work: %+v", st)
	}
}

func TestPoolSubscribeStreamGap(t *testing.T) {
	p := newPool(t, 2, 8, RoundRobin{})
	defer p.Close()
	sub := p.SubscribeStream(1)
	defer sub.Cancel()
	ctx := context.Background()
	for i := 1; i <= 4; i++ {
		if _, err := p.Submit(ctx, rt.Task{ID: int64(i), Sigma: 150, RelDeadline: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	if sub.Dropped() < 3 {
		t.Fatalf("Dropped() = %d, want >= 3", sub.Dropped())
	}
	if st := p.Stats(); st.EventsDropped != sub.Dropped() {
		t.Fatalf("aggregate EventsDropped %d != subscriber %d", st.EventsDropped, sub.Dropped())
	}
}
