package pool_test

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/metrics"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
	"rtdls/internal/verify"
)

// TestPoolConcurrentSubmitRace is the pool's -race acceptance stress
// test: many goroutines submit through a spillover placement (so retries
// cross shard locks), decision totals must reconcile with pool and shard
// stats, and an independent verifier per shard re-checks every commitment
// (no node overlap, Theorem-4 safety, no deadline misses).
func TestPoolConcurrentSubmitRace(t *testing.T) {
	const (
		k       = 4
		n       = 8
		workers = 10
		each    = 120
	)
	params := dlt.Params{Cms: 1, Cps: 100}
	checkers := make([]*verify.Checker, k)
	shards := make([]pool.ShardConfig, k)
	for i := range shards {
		cl, err := cluster.New(n, params)
		if err != nil {
			t.Fatal(err)
		}
		checkers[i] = verify.NewChecker(params, n)
		shards[i] = pool.ShardConfig{
			Cluster:     cl,
			Policy:      rt.EDF,
			Partitioner: rt.IITDLT{},
			Observer:    checkers[i],
		}
	}
	p, err := pool.New(pool.Config{Shards: shards, Placement: pool.Spillover{Inner: pool.PowerOfTwoChoices{Seed: 7}}})
	if err != nil {
		t.Fatal(err)
	}

	events, cancelSub := p.Subscribe(1 << 15)
	streamed := make(chan map[service.EventKind]int, 1)
	go func() {
		counts := make(map[service.EventKind]int)
		for ev := range events {
			if ev.Shard < 0 || ev.Shard >= k {
				t.Errorf("event with shard %d", ev.Shard)
			}
			counts[ev.Kind]++
		}
		streamed <- counts
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		rejected int
	)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			la, lr := 0, 0
			for i := 0; i < each; i++ {
				id := int64(w*each + i + 1)
				dec, err := p.Submit(ctx, rt.Task{
					ID:          id,
					Sigma:       20 + float64((id*37)%400),
					RelDeadline: 1500 + float64((id*91)%8000),
				})
				if err != nil {
					t.Errorf("worker %d task %d: %v", w, id, err)
					return
				}
				if dec.Accepted {
					if dec.Shard < 0 || dec.Shard >= k {
						t.Errorf("task %d placed on shard %d", id, dec.Shard)
					}
					la++
				} else {
					lr++
				}
			}
			mu.Lock()
			accepted += la
			rejected += lr
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	p.Close()
	cancelSub()
	counts := <-streamed

	if st.Arrivals != workers*each {
		t.Fatalf("arrivals = %d, want %d", st.Arrivals, workers*each)
	}
	if accepted+rejected != st.Arrivals || st.Accepts != accepted || st.Rejects != rejected {
		t.Fatalf("decision totals %d+%d disagree with stats %+v", accepted, rejected, st)
	}
	if st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	shardAccepts := 0
	for i, ss := range p.ShardStats() {
		shardAccepts += ss.Accepts
		if ss.Commits != ss.Accepts {
			t.Fatalf("shard %d: %d commits != %d accepts", i, ss.Commits, ss.Accepts)
		}
	}
	if shardAccepts != st.Accepts {
		t.Fatalf("shard accepts %d != pool accepts %d", shardAccepts, st.Accepts)
	}
	if st.EventsDropped == 0 {
		// Spillover retries add shard-level reject events, so the stream
		// carries at least one event per pool decision plus one per commit.
		total := counts[service.EventAccept] + counts[service.EventReject] + counts[service.EventCommit]
		if want := st.Accepts + st.Rejects + st.Commits; total < want {
			t.Fatalf("stream saw %d events, want at least %d", total, want)
		}
		if counts[service.EventAccept] != st.Accepts || counts[service.EventCommit] != st.Commits {
			t.Fatalf("stream counts %v disagree with stats %+v", counts, st)
		}
	}
	for i, chk := range checkers {
		if !chk.OK() {
			t.Fatalf("shard %d verifier found violations:\n%s", i, chk.Report())
		}
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Fatalf("utilization = %v", st.Utilization)
	}
}

// TestPoolConcurrentFleetOpsRace runs fleet churn concurrently with the
// submit storm: goroutines drain, fail and restore nodes while workers
// submit through spillover placement. At quiescence every shard must
// reconcile accepts == commits + displacements, the pool-level identity
// must account for readmissions, and the fleet gauges must partition the
// full node count.
func TestPoolConcurrentFleetOpsRace(t *testing.T) {
	const (
		k       = 4
		n       = 8
		workers = 8
		each    = 100
	)
	params := dlt.Params{Cms: 1, Cps: 100}
	shards := make([]pool.ShardConfig, k)
	for i := range shards {
		cl, err := cluster.New(n, params)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = pool.ShardConfig{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}}
	}
	reg := metrics.NewRegistry()
	p, err := pool.New(pool.Config{
		Shards:    shards,
		Placement: pool.Spillover{Inner: pool.LeastLoaded{}},
		Metrics:   service.NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := int64(w*each + i + 1)
				if _, err := p.Submit(ctx, rt.Task{
					ID:          id,
					Sigma:       20 + float64((id*37)%400),
					RelDeadline: 4000 + float64((id*91)%20000),
				}); err != nil {
					t.Errorf("worker %d task %d: %v", w, id, err)
					return
				}
			}
		}(w)
	}
	// Churn goroutines: each cycles a disjoint set of nodes through
	// fail → restore and drain → restore while the submitters run.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				node := g*2*n/4 + rep%(2*n/4) + (g%2)*k*n/2
				node %= k * n
				if rep%2 == 0 {
					if _, err := p.FailNode(node); err != nil {
						t.Errorf("fail %d: %v", node, err)
					}
				} else {
					if _, err := p.DrainNode(node); err != nil {
						t.Errorf("drain %d: %v", node, err)
					}
				}
				if _, err := p.RestoreNode(node); err != nil {
					t.Errorf("restore %d: %v", node, err)
				}
			}
		}(g)
	}
	wg.Wait()
	// Leave every node up so the drain below has full capacity.
	for node := 0; node < k*n; node++ {
		if _, err := p.RestoreNode(node); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()

	if st.Arrivals != workers*each {
		t.Fatalf("arrivals = %d, want %d", st.Arrivals, workers*each)
	}
	if st.QueueLen != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	if st.Accepts != st.Commits+st.Displaced-st.Readmitted {
		t.Fatalf("pool identity broken: accepts %d != commits %d + displaced %d - readmitted %d",
			st.Accepts, st.Commits, st.Displaced, st.Readmitted)
	}
	if st.LateCommits != 0 {
		t.Fatalf("%d late commits under churn", st.LateCommits)
	}
	for i, ss := range p.ShardStats() {
		if ss.Accepts != ss.Commits+ss.Displaced {
			t.Fatalf("shard %d identity broken: accepts %d != commits %d + displaced %d",
				i, ss.Accepts, ss.Commits, ss.Displaced)
		}
	}
	if st.NodesUp != k*n || st.NodesDraining != 0 || st.NodesDown != 0 {
		t.Fatalf("fleet not fully restored: %+v", st)
	}

	// The rendered gauges must agree: per shard, the fleet_nodes states
	// partition n; pool-wide the displacement counters sum to the stats.
	var buf strings.Builder
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var gaugeSum, dispSum float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "rtdls_fleet_nodes{") {
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("bad gauge line %q", line)
			}
			gaugeSum += v
		}
		if strings.HasPrefix(line, "rtdls_displacements_total{") {
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("bad counter line %q", line)
			}
			dispSum += v
		}
	}
	if int(gaugeSum) != k*n {
		t.Fatalf("fleet gauges sum to %v, want %d", gaugeSum, k*n)
	}
	if int(dispSum) != st.Displaced {
		t.Fatalf("displacement counters sum to %v, stats say %d", dispSum, st.Displaced)
	}
}
