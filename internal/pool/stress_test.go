package pool_test

import (
	"context"
	"sync"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
	"rtdls/internal/verify"
)

// TestPoolConcurrentSubmitRace is the pool's -race acceptance stress
// test: many goroutines submit through a spillover placement (so retries
// cross shard locks), decision totals must reconcile with pool and shard
// stats, and an independent verifier per shard re-checks every commitment
// (no node overlap, Theorem-4 safety, no deadline misses).
func TestPoolConcurrentSubmitRace(t *testing.T) {
	const (
		k       = 4
		n       = 8
		workers = 10
		each    = 120
	)
	params := dlt.Params{Cms: 1, Cps: 100}
	checkers := make([]*verify.Checker, k)
	shards := make([]pool.ShardConfig, k)
	for i := range shards {
		cl, err := cluster.New(n, params)
		if err != nil {
			t.Fatal(err)
		}
		checkers[i] = verify.NewChecker(params, n)
		shards[i] = pool.ShardConfig{
			Cluster:     cl,
			Policy:      rt.EDF,
			Partitioner: rt.IITDLT{},
			Observer:    checkers[i],
		}
	}
	p, err := pool.New(pool.Config{Shards: shards, Placement: pool.Spillover{Inner: pool.PowerOfTwoChoices{Seed: 7}}})
	if err != nil {
		t.Fatal(err)
	}

	events, cancelSub := p.Subscribe(1 << 15)
	streamed := make(chan map[service.EventKind]int, 1)
	go func() {
		counts := make(map[service.EventKind]int)
		for ev := range events {
			if ev.Shard < 0 || ev.Shard >= k {
				t.Errorf("event with shard %d", ev.Shard)
			}
			counts[ev.Kind]++
		}
		streamed <- counts
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		rejected int
	)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			la, lr := 0, 0
			for i := 0; i < each; i++ {
				id := int64(w*each + i + 1)
				dec, err := p.Submit(ctx, rt.Task{
					ID:          id,
					Sigma:       20 + float64((id*37)%400),
					RelDeadline: 1500 + float64((id*91)%8000),
				})
				if err != nil {
					t.Errorf("worker %d task %d: %v", w, id, err)
					return
				}
				if dec.Accepted {
					if dec.Shard < 0 || dec.Shard >= k {
						t.Errorf("task %d placed on shard %d", id, dec.Shard)
					}
					la++
				} else {
					lr++
				}
			}
			mu.Lock()
			accepted += la
			rejected += lr
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	p.Close()
	cancelSub()
	counts := <-streamed

	if st.Arrivals != workers*each {
		t.Fatalf("arrivals = %d, want %d", st.Arrivals, workers*each)
	}
	if accepted+rejected != st.Arrivals || st.Accepts != accepted || st.Rejects != rejected {
		t.Fatalf("decision totals %d+%d disagree with stats %+v", accepted, rejected, st)
	}
	if st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	shardAccepts := 0
	for i, ss := range p.ShardStats() {
		shardAccepts += ss.Accepts
		if ss.Commits != ss.Accepts {
			t.Fatalf("shard %d: %d commits != %d accepts", i, ss.Commits, ss.Accepts)
		}
	}
	if shardAccepts != st.Accepts {
		t.Fatalf("shard accepts %d != pool accepts %d", shardAccepts, st.Accepts)
	}
	if st.EventsDropped == 0 {
		// Spillover retries add shard-level reject events, so the stream
		// carries at least one event per pool decision plus one per commit.
		total := counts[service.EventAccept] + counts[service.EventReject] + counts[service.EventCommit]
		if want := st.Accepts + st.Rejects + st.Commits; total < want {
			t.Fatalf("stream saw %d events, want at least %d", total, want)
		}
		if counts[service.EventAccept] != st.Accepts || counts[service.EventCommit] != st.Commits {
			t.Fatalf("stream counts %v disagree with stats %+v", counts, st)
		}
	}
	for i, chk := range checkers {
		if !chk.OK() {
			t.Fatalf("shard %d verifier found violations:\n%s", i, chk.Report())
		}
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Fatalf("utilization = %v", st.Utilization)
	}
}
