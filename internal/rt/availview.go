package rt

import (
	"fmt"
	"slices"
)

// AvailView is a mutable view of per-node release times used while running
// the schedulability test: the test stacks tentative assignments for every
// task in the waiting queue on top of the committed cluster state, and
// discards the view if any task would miss its deadline.
//
// Earliest returns the k nodes that become available soonest — the
// "identify the earliest time t when AN(t) ≥ n" step of Fig. 2 generalised
// to per-node release times.
//
// The view is an order-statistic index over the (eligible, time, id) total
// order, implemented as a size-augmented treap on an arena of parallel
// arrays (no per-node allocations). Per-node retiming (Apply, Rollback,
// CommitBase) is O(log n); Earliest(k) materialises the first k nodes of
// the in-order walk incrementally, so a partitioner growing k one node at a
// time across its search loop pays O(1) amortised per inspected node; and
// EarliestTimeAt(k) answers the pure order-statistic query in O(log n)
// without materialising anything. A full rebuild — O(n log n) — happens
// only on Reset and SetEligible, i.e. when the scheduler resynchronises
// against a changed fleet, not on the per-submit path.
//
// Tentative assignments are undo-logged: Rollback restores the view to its
// base (committed) state in O(changed · log n), and CommitBase folds
// committed release times into that base, so the scheduler can keep one
// view alive across submissions instead of re-sorting a fresh snapshot per
// arrival.
type AvailView struct {
	times []float64 // per node id: current (tentative) release time

	// elig optionally masks nodes out of placement (drained or failed
	// fleet members): ineligible nodes sort after every eligible one and
	// Earliest never returns them. nil means every node is eligible — the
	// fixed-fleet path pays a nil check and nothing else.
	elig     []bool
	eligible int // count of eligible nodes (== len(times) when elig is nil)

	// Size-augmented treap over node ids, keyed by (eligible, time, id).
	// Children and subtree sizes live in arenas indexed by node id; -1 is
	// the nil child. Priorities come from a deterministic xorshift stream,
	// so runs are reproducible.
	left  []int32
	right []int32
	size  []int32
	prio  []uint64
	root  int32
	dirty bool   // tree must be rebuilt from times/elig before the next query
	rng   uint64 // xorshift64 state for treap priorities

	// Undo log for tentative Apply calls, replayed in reverse by Rollback.
	undoID   []int
	undoTime []float64

	// Materialised prefix of the in-order walk: pids/ptimes[:plen] are the
	// plen earliest nodes. walk is the suspended walk continuation (the
	// right-spine stack), so extending the prefix by one node is O(1)
	// amortised. Any mutation invalidates the prefix.
	pids     []int
	ptimes   []float64
	plen     int
	walk     []int32
	walkInit bool

	// refMode serves every query from a full reference sort instead of the
	// treap — the testing hook behind the differential and equivalence
	// suites (the sort is the specification the index must match bit for
	// bit).
	refMode bool
}

// NewAvailView wraps the given per-node release times. The slice is owned
// by the view afterwards.
func NewAvailView(times []float64) *AvailView {
	v := &AvailView{rng: 0x9e3779b97f4a7c15, root: -1}
	v.Reset(times)
	return v
}

// Reset re-points the view at a new per-node release-time snapshot, reusing
// the internal index arenas. The slice is owned by the view afterwards. The
// eligibility mask is cleared (every node eligible again) and any pending
// tentative assignments are forgotten — the snapshot is the new base.
func (v *AvailView) Reset(times []float64) {
	v.times = times
	n := len(times)
	if cap(v.pids) < n {
		v.pids = make([]int, n)
		v.ptimes = make([]float64, n)
		v.left = make([]int32, n)
		v.right = make([]int32, n)
		v.size = make([]int32, n)
		v.prio = make([]uint64, n)
	} else {
		v.pids = v.pids[:n]
		v.ptimes = v.ptimes[:n]
		v.left = v.left[:n]
		v.right = v.right[:n]
		v.size = v.size[:n]
		v.prio = v.prio[:n]
	}
	v.elig = nil
	v.eligible = n
	v.undoID = v.undoID[:0]
	v.undoTime = v.undoTime[:0]
	v.dirty = true
	v.invalidatePrefix()
}

// SetEligible masks nodes out of placement: node id is placeable iff
// elig[id]. The slice is referenced, not copied — the caller keeps it
// alive and unmodified until the next Reset, which clears the mask (every
// node eligible again). A nil or all-true mask reproduces the unmasked
// ordering bit for bit.
func (v *AvailView) SetEligible(elig []bool) {
	if elig != nil && len(elig) != len(v.times) {
		panic(fmt.Sprintf("rt: AvailView.SetEligible: %d mask entries, %d nodes", len(elig), len(v.times)))
	}
	v.elig = elig
	v.eligible = len(v.times)
	if elig != nil {
		v.eligible = 0
		for _, e := range elig {
			if e {
				v.eligible++
			}
		}
	}
	v.dirty = true
	v.invalidatePrefix()
}

// N returns the number of nodes.
func (v *AvailView) N() int { return len(v.times) }

// Eligible returns the number of placeable nodes — callers size Earliest's
// k against it, not against N, when a mask is installed.
func (v *AvailView) Eligible() int { return v.eligible }

// before reports whether node a (at time ta) sorts before node b (at tb)
// under the view's total order (eligible, time, id) — the single comparison
// both the treap and the reference full sort use, so they agree bit for
// bit. Without a mask (or with every node eligible) it is exactly the
// (time, id) order.
func (v *AvailView) before(ta float64, a int, tb float64, b int) bool {
	if v.elig != nil && v.elig[a] != v.elig[b] {
		return v.elig[a]
	}
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (v *AvailView) beforeID(a, b int32) bool {
	return v.before(v.times[a], int(a), v.times[b], int(b))
}

func (v *AvailView) nextPrio() uint64 {
	v.rng ^= v.rng << 13
	v.rng ^= v.rng >> 7
	v.rng ^= v.rng << 17
	return v.rng
}

func (v *AvailView) invalidatePrefix() {
	v.plen = 0
	v.walkInit = false
}

// ensureTree rebuilds the treap from times/elig when the whole key space
// changed (Reset, SetEligible). Single retimings never set dirty — they are
// repaired in place by remove+insert.
func (v *AvailView) ensureTree() {
	if !v.dirty {
		return
	}
	v.root = -1
	for id := range v.times {
		v.prio[id] = v.nextPrio()
		v.root = v.insert(v.root, int32(id))
	}
	v.dirty = false
}

func (v *AvailView) fix(n int32) {
	s := int32(1)
	if l := v.left[n]; l >= 0 {
		s += v.size[l]
	}
	if r := v.right[n]; r >= 0 {
		s += v.size[r]
	}
	v.size[n] = s
}

// insert adds id (keyed by its current time) under root and returns the new
// subtree root, rotating to restore the heap order on priorities.
func (v *AvailView) insert(root, id int32) int32 {
	if root < 0 {
		v.left[id], v.right[id], v.size[id] = -1, -1, 1
		return id
	}
	if v.beforeID(id, root) {
		l := v.insert(v.left[root], id)
		v.left[root] = l
		if v.prio[l] > v.prio[root] {
			v.left[root] = v.right[l]
			v.right[l] = root
			v.fix(root)
			v.fix(l)
			return l
		}
	} else {
		r := v.insert(v.right[root], id)
		v.right[root] = r
		if v.prio[r] > v.prio[root] {
			v.right[root] = v.left[r]
			v.left[r] = root
			v.fix(root)
			v.fix(r)
			return r
		}
	}
	v.fix(root)
	return root
}

// remove detaches id from the subtree at root; id's key must still be the
// time it was inserted under.
func (v *AvailView) remove(root, id int32) int32 {
	if root == id {
		return v.mergeSub(v.left[root], v.right[root])
	}
	if v.beforeID(id, root) {
		v.left[root] = v.remove(v.left[root], id)
	} else {
		v.right[root] = v.remove(v.right[root], id)
	}
	v.size[root]--
	return root
}

func (v *AvailView) mergeSub(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if v.prio[a] > v.prio[b] {
		v.right[a] = v.mergeSub(v.right[a], b)
		v.fix(a)
		return a
	}
	v.left[b] = v.mergeSub(a, v.left[b])
	v.fix(b)
	return b
}

// setTime retimes one node, repairing the index in place unless a rebuild
// is already pending (in which case the rebuild will pick the new time up).
func (v *AvailView) setTime(id int, t float64) {
	if v.dirty || v.refMode {
		v.times[id] = t
		return
	}
	v.root = v.remove(v.root, int32(id))
	v.times[id] = t
	v.root = v.insert(v.root, int32(id))
}

// ensurePrefix extends the materialised in-order prefix to at least k
// nodes. The walk stack persists between calls, so a caller growing k by
// one each iteration pays O(1) amortised per new node.
func (v *AvailView) ensurePrefix(k int) {
	if v.refMode {
		if v.plen < len(v.times) {
			v.refSort()
		}
		return
	}
	if v.plen >= k {
		return
	}
	v.ensureTree()
	if !v.walkInit {
		v.walk = v.walk[:0]
		for n := v.root; n >= 0; n = v.left[n] {
			v.walk = append(v.walk, n)
		}
		v.walkInit = true
	}
	for v.plen < k {
		top := v.walk[len(v.walk)-1]
		v.walk = v.walk[:len(v.walk)-1]
		v.pids[v.plen] = int(top)
		v.ptimes[v.plen] = v.times[top]
		v.plen++
		for n := v.right[top]; n >= 0; n = v.left[n] {
			v.walk = append(v.walk, n)
		}
	}
}

// refSort materialises the full order by sorting — the reference
// implementation the treap is differentially tested against.
func (v *AvailView) refSort() {
	for i := range v.pids {
		v.pids[i] = i
	}
	slices.SortFunc(v.pids, func(a, b int) int {
		if v.before(v.times[a], a, v.times[b], b) {
			return -1
		}
		return 1
	})
	for i, id := range v.pids {
		v.ptimes[i] = v.times[id]
	}
	v.plen = len(v.pids)
}

func (v *AvailView) checkK(k int) {
	if k < 1 || k > v.eligible {
		panic(fmt.Sprintf("rt: AvailView.Earliest(%d) with %d eligible of %d nodes", k, v.eligible, len(v.times)))
	}
}

// Earliest returns the ids and release times of the k earliest-available
// eligible nodes, ordered by (release time, id). The returned slices are
// fresh copies owned by the caller — they stay valid across subsequent
// Apply/Earliest/Rollback calls. It panics if k is out of range — callers
// size k against Eligible() (== N() without a mask). Hot paths that already
// own suitably-sized buffers should prefer EarliestInto.
func (v *AvailView) Earliest(k int) (ids []int, times []float64) {
	v.checkK(k)
	v.ensurePrefix(k)
	ids = make([]int, k)
	times = make([]float64, k)
	copy(ids, v.pids[:k])
	copy(times, v.ptimes[:k])
	return ids, times
}

// EarliestInto fills ids and times (which must have equal length k) with
// the k earliest-available eligible nodes, ordered by (release time, id) —
// the allocation-free form of Earliest for callers that own the buffers.
func (v *AvailView) EarliestInto(ids []int, times []float64) {
	if len(ids) != len(times) {
		panic(fmt.Sprintf("rt: AvailView.EarliestInto: %d ids, %d times", len(ids), len(times)))
	}
	k := len(ids)
	v.checkK(k)
	v.ensurePrefix(k)
	copy(ids, v.pids[:k])
	copy(times, v.ptimes[:k])
}

// EarliestTimeAt returns the release time of the k-th earliest eligible
// node (1-based) — the pure order-statistic query behind the admission
// fast-reject. O(log n); it does not materialise the prefix.
func (v *AvailView) EarliestTimeAt(k int) float64 {
	v.checkK(k)
	if v.refMode || k <= v.plen {
		v.ensurePrefix(k)
		return v.ptimes[k-1]
	}
	v.ensureTree()
	n := v.root
	kk := int32(k)
	for {
		var ls int32
		if l := v.left[n]; l >= 0 {
			ls = v.size[l]
		}
		if kk <= ls {
			n = v.left[n]
			continue
		}
		if kk == ls+1 {
			return v.times[n]
		}
		kk -= ls + 1
		n = v.right[n]
	}
}

// Apply records tentative assignments: node ids[i] will next be free at
// release[i]. Every change is undo-logged so Rollback can restore the base
// snapshot.
func (v *AvailView) Apply(ids []int, release []float64) {
	if len(ids) != len(release) {
		panic(fmt.Sprintf("rt: AvailView.Apply: %d ids, %d releases", len(ids), len(release)))
	}
	mutated := false
	for i, id := range ids {
		r := release[i]
		if r == v.times[id] {
			continue
		}
		v.undoID = append(v.undoID, id)
		v.undoTime = append(v.undoTime, v.times[id])
		v.setTime(id, r)
		mutated = true
	}
	if mutated {
		v.invalidatePrefix()
	}
}

// Rollback undoes every Apply since the last Reset/CommitBase, restoring
// the base snapshot in O(changed · log n). A view with no tentative
// assignments rolls back for free.
func (v *AvailView) Rollback() {
	if len(v.undoID) == 0 {
		return
	}
	for i := len(v.undoID) - 1; i >= 0; i-- {
		v.setTime(v.undoID[i], v.undoTime[i])
	}
	v.undoID = v.undoID[:0]
	v.undoTime = v.undoTime[:0]
	v.invalidatePrefix()
}

// CommitBase folds committed release times into the view's base snapshot:
// node ids[i] is busy until release[i] in the cluster's committed state
// now, so subsequent Rollbacks keep the new times. It must not be called
// with tentative assignments pending — Rollback first.
func (v *AvailView) CommitBase(ids []int, release []float64) {
	if len(v.undoID) != 0 {
		panic("rt: AvailView.CommitBase with tentative assignments pending")
	}
	if len(ids) != len(release) {
		panic(fmt.Sprintf("rt: AvailView.CommitBase: %d ids, %d releases", len(ids), len(release)))
	}
	mutated := false
	for i, id := range ids {
		r := release[i]
		if r == v.times[id] {
			continue
		}
		v.setTime(id, r)
		mutated = true
	}
	if mutated {
		v.invalidatePrefix()
	}
}

// Times returns the underlying per-node release times (not a copy). The
// times reflect any tentative assignments currently applied.
func (v *AvailView) Times() []float64 { return v.times }
