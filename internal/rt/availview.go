package rt

import (
	"fmt"
	"slices"
)

// AvailView is a mutable view of per-node release times used while running
// the schedulability test: the test stacks tentative assignments for every
// task in the waiting queue on top of the committed cluster state, and
// discards the view if any task would miss its deadline.
//
// Earliest returns the k nodes that become available soonest — the
// "identify the earliest time t when AN(t) ≥ n" step of Fig. 2 generalised
// to per-node release times.
//
// The view is built for reuse on the admission hot path: Reset re-points it
// at a fresh snapshot without reallocating, and Apply repairs the sorted
// order incrementally (only the re-timed nodes are re-inserted) instead of
// re-sorting all N nodes after every tentative assignment.
type AvailView struct {
	times []float64 // per node id
	order []int     // node ids sorted by (eligible, times, id)
	srt   []float64 // times in sorted order, parallel to order
	dirty []int     // node ids re-timed since the last sort
	mark  []bool    // per node id: whether it is queued in dirty
	full  bool      // a full re-sort is required (fresh snapshot)

	// elig optionally masks nodes out of placement (drained or failed
	// fleet members): ineligible nodes sort after every eligible one and
	// Earliest never returns them. nil means every node is eligible — the
	// fixed-fleet path pays a nil check and nothing else.
	elig     []bool
	eligible int // count of eligible nodes (== len(times) when elig is nil)
}

// NewAvailView wraps the given per-node release times. The slice is owned
// by the view afterwards.
func NewAvailView(times []float64) *AvailView {
	v := &AvailView{}
	v.Reset(times)
	return v
}

// Reset re-points the view at a new per-node release-time snapshot, reusing
// the internal sort buffers. The slice is owned by the view afterwards.
func (v *AvailView) Reset(times []float64) {
	v.times = times
	n := len(times)
	if cap(v.order) < n {
		v.order = make([]int, n)
		v.srt = make([]float64, n)
		v.mark = make([]bool, n)
	} else {
		v.order = v.order[:n]
		v.srt = v.srt[:n]
		v.mark = v.mark[:n]
		clear(v.mark)
	}
	v.dirty = v.dirty[:0]
	v.full = true
	v.elig = nil
	v.eligible = n
}

// SetEligible masks nodes out of placement: node id is placeable iff
// elig[id]. The slice is referenced, not copied — the caller keeps it
// alive and unmodified until the next Reset, which clears the mask (every
// node eligible again). A nil or all-true mask reproduces the unmasked
// ordering bit for bit.
func (v *AvailView) SetEligible(elig []bool) {
	if elig != nil && len(elig) != len(v.times) {
		panic(fmt.Sprintf("rt: AvailView.SetEligible: %d mask entries, %d nodes", len(elig), len(v.times)))
	}
	v.elig = elig
	v.eligible = len(v.times)
	if elig != nil {
		v.eligible = 0
		for _, e := range elig {
			if e {
				v.eligible++
			}
		}
	}
	v.full = true
}

// N returns the number of nodes.
func (v *AvailView) N() int { return len(v.times) }

// Eligible returns the number of placeable nodes — callers size Earliest's
// k against it, not against N, when a mask is installed.
func (v *AvailView) Eligible() int { return v.eligible }

// before reports whether node a (at time ta) sorts before node b (at tb)
// under the view's total order (eligible, time, id) — the single comparison
// both the full sort and the incremental repair use, so they agree bit for
// bit. Without a mask (or with every node eligible) it is exactly the old
// (time, id) order.
func (v *AvailView) before(ta float64, a int, tb float64, b int) bool {
	if v.elig != nil && v.elig[a] != v.elig[b] {
		return v.elig[a]
	}
	if ta != tb {
		return ta < tb
	}
	return a < b
}

func (v *AvailView) ensureSorted() {
	n := len(v.times)
	// A repair that would move a large fraction of the nodes costs more
	// than re-sorting outright.
	if !v.full && len(v.dirty)*4 >= n {
		v.full = true
	}
	if v.full {
		for i := range v.order {
			v.order[i] = i
		}
		slices.SortFunc(v.order, func(a, b int) int {
			if v.before(v.times[a], a, v.times[b], b) {
				return -1
			}
			return 1
		})
		for i, id := range v.order {
			v.srt[i] = v.times[id]
		}
		for _, id := range v.dirty {
			v.mark[id] = false
		}
		v.dirty = v.dirty[:0]
		v.full = false
		return
	}
	if len(v.dirty) == 0 {
		return
	}
	// Incremental repair: compact the untouched ids (their relative order is
	// unchanged), then re-insert each re-timed id at its new position. The
	// (time, id) order is total, so this reproduces the full sort exactly.
	w := 0
	for r, id := range v.order {
		if v.mark[id] {
			continue
		}
		v.order[w] = id
		v.srt[w] = v.srt[r]
		w++
	}
	for _, id := range v.dirty {
		t := v.times[id]
		lo, hi := 0, w
		for lo < hi {
			m := int(uint(lo+hi) >> 1)
			if v.before(v.srt[m], v.order[m], t, id) {
				lo = m + 1
			} else {
				hi = m
			}
		}
		copy(v.order[lo+1:w+1], v.order[lo:w])
		copy(v.srt[lo+1:w+1], v.srt[lo:w])
		v.order[lo] = id
		v.srt[lo] = t
		v.mark[id] = false
		w++
	}
	v.dirty = v.dirty[:0]
}

// Earliest returns the ids and release times of the k earliest-available
// eligible nodes, ordered by (release time, id). The returned slices alias
// internal storage: they are valid until the next Apply call and must not
// be modified. It panics if k is out of range — callers size k against
// Eligible() (== N() without a mask).
func (v *AvailView) Earliest(k int) (ids []int, times []float64) {
	if k < 1 || k > v.eligible {
		panic(fmt.Sprintf("rt: AvailView.Earliest(%d) with %d eligible of %d nodes", k, v.eligible, len(v.times)))
	}
	v.ensureSorted()
	return v.order[:k], v.srt[:k]
}

// Apply records tentative assignments: node ids[i] will next be free at
// release[i].
func (v *AvailView) Apply(ids []int, release []float64) {
	if len(ids) != len(release) {
		panic(fmt.Sprintf("rt: AvailView.Apply: %d ids, %d releases", len(ids), len(release)))
	}
	for i, id := range ids {
		v.times[id] = release[i]
		if !v.full && !v.mark[id] {
			v.mark[id] = true
			v.dirty = append(v.dirty, id)
		}
	}
}

// Times returns the underlying per-node release times (not a copy).
func (v *AvailView) Times() []float64 { return v.times }
