package rt

import (
	"fmt"
	"sort"
)

// AvailView is a mutable view of per-node release times used while running
// the schedulability test: the test stacks tentative assignments for every
// task in the waiting queue on top of the committed cluster state, and
// discards the view if any task would miss its deadline.
//
// Earliest returns the k nodes that become available soonest — the
// "identify the earliest time t when AN(t) ≥ n" step of Fig. 2 generalised
// to per-node release times.
type AvailView struct {
	times []float64 // per node id
	order []int     // node ids sorted by (times, id)
	srt   []float64 // times in sorted order, parallel to order
	dirty bool
}

// NewAvailView wraps the given per-node release times. The slice is owned
// by the view afterwards.
func NewAvailView(times []float64) *AvailView {
	v := &AvailView{
		times: times,
		order: make([]int, len(times)),
		srt:   make([]float64, len(times)),
		dirty: true,
	}
	return v
}

// N returns the number of nodes.
func (v *AvailView) N() int { return len(v.times) }

func (v *AvailView) ensureSorted() {
	if !v.dirty {
		return
	}
	for i := range v.order {
		v.order[i] = i
	}
	sort.Slice(v.order, func(a, b int) bool {
		ia, ib := v.order[a], v.order[b]
		if v.times[ia] != v.times[ib] {
			return v.times[ia] < v.times[ib]
		}
		return ia < ib
	})
	for i, id := range v.order {
		v.srt[i] = v.times[id]
	}
	v.dirty = false
}

// Earliest returns the ids and release times of the k earliest-available
// nodes, ordered by (release time, id). The returned slices alias internal
// storage: they are valid until the next Apply call and must not be
// modified. It panics if k is out of range — callers size k against N().
func (v *AvailView) Earliest(k int) (ids []int, times []float64) {
	if k < 1 || k > len(v.times) {
		panic(fmt.Sprintf("rt: AvailView.Earliest(%d) with %d nodes", k, len(v.times)))
	}
	v.ensureSorted()
	return v.order[:k], v.srt[:k]
}

// Apply records tentative assignments: node ids[i] will next be free at
// release[i].
func (v *AvailView) Apply(ids []int, release []float64) {
	if len(ids) != len(release) {
		panic(fmt.Sprintf("rt: AvailView.Apply: %d ids, %d releases", len(ids), len(release)))
	}
	for i, id := range ids {
		v.times[id] = release[i]
	}
	v.dirty = true
}

// Times returns the underlying per-node release times (not a copy).
func (v *AvailView) Times() []float64 { return v.times }
