package rt

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// refModel is an independent full-sort reference implementation of the
// AvailView contract: the differential and fuzz suites drive it in
// lockstep with the treap index (and with the view's own refMode hook) and
// require identical output for every query.
type refModel struct {
	base  []float64 // committed base snapshot
	times []float64 // base + tentative assignments
	elig  []bool
}

func newRefModel(times []float64) *refModel {
	m := &refModel{}
	m.reset(times)
	return m
}

func (m *refModel) reset(times []float64) {
	m.base = append(m.base[:0], times...)
	m.times = append(m.times[:0], times...)
	m.elig = nil
}

func (m *refModel) setEligible(elig []bool) { m.elig = elig }

func (m *refModel) eligible() int {
	if m.elig == nil {
		return len(m.times)
	}
	n := 0
	for _, e := range m.elig {
		if e {
			n++
		}
	}
	return n
}

func (m *refModel) apply(ids []int, rel []float64) {
	for i, id := range ids {
		m.times[id] = rel[i]
	}
}

func (m *refModel) rollback() { copy(m.times, m.base) }

func (m *refModel) commitBase(ids []int, rel []float64) {
	for i, id := range ids {
		m.base[id] = rel[i]
		m.times[id] = rel[i]
	}
}

func (m *refModel) earliest(k int) (ids []int, times []float64) {
	order := make([]int, len(m.times))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if m.elig != nil && m.elig[a] != m.elig[b] {
			return m.elig[a]
		}
		if m.times[a] != m.times[b] {
			return m.times[a] < m.times[b]
		}
		return a < b
	})
	ids = order[:k]
	times = make([]float64, k)
	for i, id := range ids {
		times[i] = m.times[id]
	}
	return ids, times
}

// driveAvailView interprets data as an op stream over an AvailView, a
// second view pinned to refMode, and the independent reference model, and
// fails the moment any query diverges. Times are drawn from a coarse grid
// so ties (the id tie-break) occur constantly, and apply batches range
// from one node to the whole cluster, covering both the
// few-dirty-nodes regime and the everything-retimed regime that used to
// straddle the old implementation's len(dirty)*4 >= n full-resort
// threshold.
func driveAvailView(t *testing.T, data []byte) {
	t.Helper()
	off := 0
	next := func() byte {
		if off >= len(data) {
			return 0
		}
		b := data[off]
		off++
		return b
	}
	mkTime := func() float64 { return float64(int(next())%48-8) * 0.5 }

	n := 2 + int(next())%32
	base := make([]float64, n)
	for i := range base {
		base[i] = mkTime()
	}
	v := NewAvailView(append([]float64(nil), base...))
	vr := NewAvailView(append([]float64(nil), base...))
	vr.refMode = true
	model := newRefModel(base)

	check := func(k int) {
		wantIDs, wantTimes := model.earliest(k)
		for _, view := range []*AvailView{v, vr} {
			ids, times := view.Earliest(k)
			if !slices.Equal(ids, wantIDs) || !slices.Equal(times, wantTimes) {
				t.Fatalf("Earliest(%d) refMode=%v:\n got  %v %v\n want %v %v\n(times=%v elig=%v)",
					k, view.refMode, ids, times, wantIDs, wantTimes, model.times, model.elig)
			}
			gotIDs := make([]int, k)
			gotTimes := make([]float64, k)
			view.EarliestInto(gotIDs, gotTimes)
			if !slices.Equal(gotIDs, wantIDs) || !slices.Equal(gotTimes, wantTimes) {
				t.Fatalf("EarliestInto(%d) refMode=%v: got %v %v want %v %v",
					k, view.refMode, gotIDs, gotTimes, wantIDs, wantTimes)
			}
			if at := view.EarliestTimeAt(k); at != wantTimes[k-1] {
				t.Fatalf("EarliestTimeAt(%d) refMode=%v: got %v want %v", k, view.refMode, at, wantTimes[k-1])
			}
		}
	}

	pending := false
	for steps := 0; steps < 512 && off < len(data); steps++ {
		switch next() % 8 {
		case 0: // Reset to a fresh snapshot
			for i := range base {
				base[i] = mkTime()
			}
			v.Reset(append([]float64(nil), base...))
			vr.Reset(append([]float64(nil), base...))
			vr.refMode = true
			model.reset(base)
			pending = false
		case 1: // SetEligible with a random mask (at least one node up)
			elig := make([]bool, n)
			any := false
			for i := range elig {
				elig[i] = next()%4 != 0
				any = any || elig[i]
			}
			if !any {
				elig[int(next())%n] = true
			}
			v.SetEligible(elig)
			vr.SetEligible(elig)
			model.setEligible(elig)
		case 2: // Apply a tentative batch (duplicates allowed)
			m := 1 + int(next())%n
			ids := make([]int, m)
			rel := make([]float64, m)
			for j := range ids {
				ids[j] = int(next()) % n
				rel[j] = mkTime()
			}
			v.Apply(ids, rel)
			vr.Apply(ids, rel)
			model.apply(ids, rel)
			pending = true
		case 3, 4: // query a random prefix
			check(1 + int(next())%v.Eligible())
		case 5: // order-statistic query without materialising
			k := 1 + int(next())%v.Eligible()
			_, wantTimes := model.earliest(k)
			if at := v.EarliestTimeAt(k); at != wantTimes[k-1] {
				t.Fatalf("EarliestTimeAt(%d): got %v want %v (times=%v elig=%v)",
					k, at, wantTimes[k-1], model.times, model.elig)
			}
		case 6: // Rollback to base
			v.Rollback()
			vr.Rollback()
			model.rollback()
			pending = false
		case 7: // CommitBase (requires no tentative assignments)
			if pending {
				v.Rollback()
				vr.Rollback()
				model.rollback()
				pending = false
			}
			m := 1 + int(next())%n
			ids := make([]int, m)
			rel := make([]float64, m)
			for j := range ids {
				ids[j] = int(next()) % n
				rel[j] = mkTime()
			}
			v.CommitBase(ids, rel)
			vr.CommitBase(ids, rel)
			model.commitBase(ids, rel)
		}
	}
	check(v.Eligible())
	v.Rollback()
	vr.Rollback()
	model.rollback()
	check(v.Eligible())
}

// TestAvailViewDifferential drives long random op sequences over the
// indexed view, its refMode full-sort twin and the independent reference
// model, across a spread of cluster sizes and seeds.
func TestAvailViewDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 80+rng.Intn(2000))
		rng.Read(data)
		driveAvailView(t, data)
	}
}

// FuzzAvailView is the fuzz entry over the same differential driver,
// registered in the Makefile FUZZ_PKGS CI smoke.
func FuzzAvailView(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 10, 20, 30, 40, 50, 2, 1, 7, 3, 0})
	f.Add([]byte{31, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
		16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31,
		2, 5, 9, 0, 3, 1, 6, 7, 12, 40, 3, 2, 5, 5, 5})
	rng := rand.New(rand.NewSource(41))
	seed := make([]byte, 300)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		driveAvailView(t, data)
	})
}

// TestAvailViewEarliestNoAliasing is the regression test for the Earliest
// aliasing contract: slices returned by one Earliest call must survive
// later Apply and Earliest calls unchanged. The pre-index implementation
// returned aliases of its sort buffers and the next query's in-place
// compaction silently rewrote them under the caller.
func TestAvailViewEarliestNoAliasing(t *testing.T) {
	v := NewAvailView([]float64{5, 1, 3, 2, 4})
	ids, times := v.Earliest(3)
	wantIDs := append([]int(nil), ids...)
	wantTimes := append([]float64(nil), times...)

	// Retime one of the held nodes and query again: the compaction/repair
	// work of the second query must not leak into the held slices.
	v.Apply([]int{1}, []float64{100})
	v.Earliest(3)
	if !slices.Equal(ids, wantIDs) || !slices.Equal(times, wantTimes) {
		t.Fatalf("Earliest results mutated by later Apply+Earliest:\n got  %v %v\n want %v %v",
			ids, times, wantIDs, wantTimes)
	}
}

// TestAvailViewRollbackRestoresBase covers the undo log: any interleaving
// of Apply batches is fully reversed by one Rollback.
func TestAvailViewRollbackRestoresBase(t *testing.T) {
	base := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	v := NewAvailView(append([]float64(nil), base...))
	wantIDs, wantTimes := v.Earliest(8)
	v.Apply([]int{1, 3, 5}, []float64{50, 60, 70})
	v.Apply([]int{1, 0}, []float64{80, 90})
	v.Rollback()
	ids, times := v.Earliest(8)
	if !slices.Equal(ids, wantIDs) || !slices.Equal(times, wantTimes) {
		t.Fatalf("Rollback did not restore base order: got %v %v want %v %v", ids, times, wantIDs, wantTimes)
	}
	if !slices.Equal(v.Times(), base) {
		t.Fatalf("Rollback did not restore base times: got %v want %v", v.Times(), base)
	}
}

// TestAvailViewCommitBaseSticks covers the base-sync path: committed
// release times survive subsequent Rollbacks.
func TestAvailViewCommitBaseSticks(t *testing.T) {
	v := NewAvailView([]float64{0, 0, 0, 0})
	v.Apply([]int{0, 1}, []float64{10, 20})
	v.Rollback()
	v.CommitBase([]int{0, 1}, []float64{10, 20})
	v.Apply([]int{2}, []float64{99})
	v.Rollback()
	want := []float64{10, 20, 0, 0}
	if !slices.Equal(v.Times(), want) {
		t.Fatalf("after CommitBase+Rollback: times %v want %v", v.Times(), want)
	}
	ids, _ := v.Earliest(2)
	if ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("Earliest(2) after CommitBase = %v, want [2 3]", ids)
	}
}

// TestAvailViewCommitBasePanicsOnPending pins the CommitBase precondition.
func TestAvailViewCommitBasePanicsOnPending(t *testing.T) {
	v := NewAvailView([]float64{0, 0})
	v.Apply([]int{0}, []float64{5})
	defer func() {
		if recover() == nil {
			t.Fatal("CommitBase with tentative assignments pending did not panic")
		}
	}()
	v.CommitBase([]int{1}, []float64{7})
}

// TestAvailViewEarliestIntoPanics pins the buffer-length contract.
func TestAvailViewEarliestIntoPanics(t *testing.T) {
	v := NewAvailView([]float64{1, 2, 3})
	for _, tc := range []struct {
		ids   []int
		times []float64
	}{
		{make([]int, 2), make([]float64, 3)},
		{make([]int, 0), make([]float64, 0)},
		{make([]int, 4), make([]float64, 4)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("EarliestInto(len %d, len %d) did not panic", len(tc.ids), len(tc.times))
				}
			}()
			v.EarliestInto(tc.ids, tc.times)
		}()
	}
}
