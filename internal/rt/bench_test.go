package rt

import (
	"testing"

	"rtdls/internal/cluster"
)

// benchSubmit measures steady-state schedulability-test cost: a rolling
// window of arrivals against a 16-node cluster.
func benchSubmit(b *testing.B, part Partitioner, pol Policy) {
	cl, err := cluster.New(16, baseline)
	if err != nil {
		b.Fatal(err)
	}
	s := NewScheduler(cl, pol, part)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := &Task{
			ID:          int64(i),
			Arrival:     now,
			Sigma:       100 + float64(i%7)*50,
			RelDeadline: 3000 + float64(i%5)*500,
			UserN:       4 + i%12,
		}
		if _, err := s.Submit(task, now); err != nil {
			b.Fatal(err)
		}
		if _, err := s.CommitDue(now); err != nil {
			b.Fatal(err)
		}
		now += 400
	}
}

func BenchmarkSubmitIITDLT(b *testing.B)    { benchSubmit(b, IITDLT{}, EDF) }
func BenchmarkSubmitOPRMN(b *testing.B)     { benchSubmit(b, OPR{}, EDF) }
func BenchmarkSubmitUserSplit(b *testing.B) { benchSubmit(b, UserSplit{}, EDF) }
func BenchmarkSubmitFIFO(b *testing.B)      { benchSubmit(b, IITDLT{}, FIFO) }

func BenchmarkPlanIITDLT(b *testing.B) {
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = float64(i%3) * 700
	}
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 4000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := newCtx(baseline, avail, 0)
		if _, err := (IITDLT{}).Plan(ctx, task); err != nil {
			b.Fatal(err)
		}
	}
}
