package rt

import (
	"fmt"
	"testing"

	"rtdls/internal/cluster"
)

// benchSubmit measures steady-state schedulability-test cost: a rolling
// window of arrivals against a 16-node cluster.
func benchSubmit(b *testing.B, part Partitioner, pol Policy) {
	cl, err := cluster.New(16, baseline)
	if err != nil {
		b.Fatal(err)
	}
	s := NewScheduler(cl, pol, part)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := &Task{
			ID:          int64(i),
			Arrival:     now,
			Sigma:       100 + float64(i%7)*50,
			RelDeadline: 3000 + float64(i%5)*500,
			UserN:       4 + i%12,
		}
		if _, err := s.Submit(task, now); err != nil {
			b.Fatal(err)
		}
		if _, err := s.CommitDue(now); err != nil {
			b.Fatal(err)
		}
		now += 400
	}
}

func BenchmarkSubmitIITDLT(b *testing.B)    { benchSubmit(b, IITDLT{}, EDF) }
func BenchmarkSubmitOPRMN(b *testing.B)     { benchSubmit(b, OPR{}, EDF) }
func BenchmarkSubmitUserSplit(b *testing.B) { benchSubmit(b, UserSplit{}, EDF) }
func BenchmarkSubmitFIFO(b *testing.B)      { benchSubmit(b, IITDLT{}, FIFO) }

// submitScaleSizes is the cluster-size sweep shared by the index-scaling
// benchmarks below. scripts/bench_index.sh runs them into BENCH_index.json
// and cmd/benchgate gates the nodes=10000 vs nodes=100 ns/op ratio, so the
// sub-linear per-submit contract of the availability index is enforced in
// CI without machine-dependent absolute thresholds.
var submitScaleSizes = []int{100, 1000, 10000}

// BenchmarkSubmit measures the steady-state accept path as the fleet
// grows: every task is feasible, commits on the next sweep, and touches
// only its ñ_min nodes, so per-submit cost is dominated by the
// availability-view maintenance — one rollback of the previous test's
// tentative assignments plus O(k log n) index updates. Before the treap
// index this path re-sorted all n nodes per submission.
func BenchmarkSubmit(b *testing.B) {
	for _, n := range submitScaleSizes {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			cl, err := cluster.New(n, baseline)
			if err != nil {
				b.Fatal(err)
			}
			s := NewScheduler(cl, EDF, IITDLT{})
			now := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task := &Task{
					ID:          int64(i + 1),
					Arrival:     now,
					Sigma:       150 + float64(i%8)*12.5,
					RelDeadline: 5200,
				}
				ok, err := s.Submit(task, now)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatalf("steady-state task %d rejected", task.ID)
				}
				if _, err := s.CommitDue(now); err != nil {
					b.Fatal(err)
				}
				now += 2600
			}
		})
	}
}

// BenchmarkSubmitFastReject measures the hopeless-task path: the whole
// fleet is committed busy far beyond every deadline, so each submission
// resolves at the O(log n) order-statistic probe of the committed index
// without calling the partitioner. The cost should be flat in the fleet
// size up to the logarithmic factor.
func BenchmarkSubmitFastReject(b *testing.B) {
	for _, n := range submitScaleSizes {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			cl, err := cluster.New(n, baseline)
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]int, n)
			starts := make([]float64, n)
			release := make([]float64, n)
			for i := range ids {
				ids[i] = i
				release[i] = 1e9
			}
			if err := cl.Commit(ids, starts, release, 0); err != nil {
				b.Fatal(err)
			}
			s := NewScheduler(cl, EDF, IITDLT{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task := &Task{ID: int64(i + 1), Arrival: 0, Sigma: 200, RelDeadline: 5000}
				ok, err := s.Submit(task, 0)
				if err != nil {
					b.Fatal(err)
				}
				if ok {
					b.Fatalf("task %d admitted on a saturated fleet", task.ID)
				}
			}
		})
	}
}

func BenchmarkPlanIITDLT(b *testing.B) {
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = float64(i%3) * 700
	}
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 4000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := newCtx(baseline, avail, 0)
		if _, err := (IITDLT{}).Plan(ctx, task); err != nil {
			b.Fatal(err)
		}
	}
}
