package rt

import (
	"fmt"
	"math"

	"rtdls/internal/core"
	"rtdls/internal/dlt"
)

// This file holds the heterogeneous-cluster branches of the three
// single-round partitioners. Node selection stays availability-ordered (the
// paper's rule); what changes is the partition mathematics — per-node
// (Cms_i, Cps_i) coefficients via core.NewHetero and the dlt hetero closed
// forms — and the admission estimate. The paper proves the Ê bound
// (Theorem 4) only for a common Cms, so heterogeneous plans are admitted
// against the exactly simulated dispatch timeline instead: the linear cost
// model makes that timeline fully deterministic, which preserves the hard
// real-time guarantee without a new theorem (the same argument package
// multiround uses for its exact-simulation estimates).

// planHeteroIIT is the IITDLT partitioner over per-node costs.
func planHeteroIIT(cm *dlt.CostModel, ctx *PlanContext, t *Task) (*Plan, error) {
	absD := t.AbsDeadline()
	slack := absD - ctx.startFloor(t)
	n0, ok := dlt.HeteroMinNodesBound(cm, t.Sigma, slack)
	if !ok || n0 > ctx.N {
		return nil, ErrInfeasible
	}
	for n := n0; n <= ctx.N; n++ {
		ids, starts := clampedStarts(ctx, t, n)
		costs := cm.Select(ids)
		m, err := core.NewHetero(costs, t.Sigma, starts)
		if err != nil {
			return nil, fmt.Errorf("rt: dlt-iit: building heterogeneous model: %w", err)
		}
		d, err := m.Dispatch()
		if err != nil {
			return nil, fmt.Errorf("rt: dlt-iit: dispatching: %w", err)
		}
		est := d.Completion
		if est > absD+deadlineEps(absD) {
			continue
		}
		release := make([]float64, n)
		for i := range release {
			release[i] = math.Max(d.Finish[i], starts[i])
		}
		return &Plan{
			Task:    t,
			Nodes:   ids,
			Starts:  starts,
			Release: release,
			Alphas:  m.Alphas(),
			Est:     est,
			Rounds:  1,
		}, nil
	}
	return nil, ErrInfeasible
}

// planHeteroOPR is the OPR baseline over per-node costs: the task starts
// only once all n nodes are free (at r_n), wasting the inserted idle times,
// and runs the optimal heterogeneous simultaneous-start partition. Because
// every node starts at r_n and the partition equalises finish times, the
// estimate r_n + E({costs}, σ) is exact.
func planHeteroOPR(o OPR, cm *dlt.CostModel, ctx *PlanContext, t *Task) (*Plan, error) {
	absD := t.AbsDeadline()
	n0 := ctx.N
	if !o.AllNodes {
		slack := absD - ctx.startFloor(t)
		var ok bool
		n0, ok = dlt.HeteroMinNodesBound(cm, t.Sigma, slack)
		if !ok || n0 > ctx.N {
			return nil, ErrInfeasible
		}
	}
	for n := n0; n <= ctx.N; n++ {
		ids, starts := clampedStarts(ctx, t, n)
		rn := starts[n-1]
		costs := cm.Select(ids)
		e, err := dlt.HeteroExecTime(costs, t.Sigma)
		if err != nil {
			return nil, fmt.Errorf("rt: %s: heterogeneous execution time: %w", o.Name(), err)
		}
		est := rn + e
		if est > absD+deadlineEps(absD) {
			continue
		}
		alphas, err := dlt.HeteroAlphas(costs)
		if err != nil {
			return nil, fmt.Errorf("rt: %s: heterogeneous partition: %w", o.Name(), err)
		}
		reserved := 0.0
		for _, s := range starts {
			reserved += rn - s
		}
		return &Plan{
			Task:              t,
			Nodes:             ids,
			Starts:            starts,
			Release:           uniform(n, est),
			Alphas:            alphas,
			Est:               est,
			ReservedIdle:      reserved,
			SimultaneousStart: true,
			Rounds:            1,
		}, nil
	}
	return nil, ErrInfeasible
}

// planHeteroUserSplit is the User-Split practice over per-node costs: n
// equal chunks dispatched in availability order, each node's exact finish
// taken from the heterogeneous dispatch simulation.
func planHeteroUserSplit(cm *dlt.CostModel, ctx *PlanContext, t *Task) (*Plan, error) {
	k := t.UserN
	if k < 1 {
		return nil, ErrInfeasible
	}
	if k > ctx.N {
		return nil, fmt.Errorf("rt: user-split: task %d requests %d nodes but the cluster has %d",
			t.ID, k, ctx.N)
	}
	ids, starts := clampedStarts(ctx, t, k)
	d, err := dlt.SimulateDispatchHetero(cm.Select(ids), t.Sigma, starts, dlt.EqualAlphas(k))
	if err != nil {
		return nil, fmt.Errorf("rt: user-split: %w", err)
	}
	release := make([]float64, k)
	copy(release, d.Finish)
	return &Plan{
		Task:    t,
		Nodes:   ids,
		Starts:  starts,
		Release: release,
		Alphas:  dlt.EqualAlphas(k),
		Est:     d.Completion,
		Rounds:  1,
	}, nil
}
