package rt

import (
	"math"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
)

func heteroCluster(t *testing.T, costs []dlt.NodeCost) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.NewHetero(costs)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

var heteroFour = []dlt.NodeCost{
	{Cms: 1, Cps: 100},
	{Cms: 1, Cps: 400}, // slow CPU
	{Cms: 2, Cps: 50},  // slow link, fast CPU
	{Cms: 0, Cps: 200}, // free link
}

// submitOK submits a task and requires admission.
func submitOK(t *testing.T, s *Scheduler, task *Task, now float64) *Plan {
	t.Helper()
	acc, err := s.Submit(task, now)
	if err != nil {
		t.Fatal(err)
	}
	if !acc {
		t.Fatalf("task %d unexpectedly rejected", task.ID)
	}
	return s.PlanFor(task.ID)
}

// TestHeteroPlansRespectCosts: each partitioner on a heterogeneous cluster
// produces a plan whose estimate matches its own exact dispatch semantics
// and meets the deadline.
func TestHeteroPlansRespectCosts(t *testing.T) {
	for _, part := range []Partitioner{IITDLT{}, OPR{}, OPR{AllNodes: true}} {
		cl := heteroCluster(t, heteroFour)
		s := NewScheduler(cl, EDF, part)
		task := &Task{ID: 1, Arrival: 0, Sigma: 100, RelDeadline: 40000}
		pl := submitOK(t, s, task, 0)
		if pl == nil {
			t.Fatalf("%s: missing plan", part.Name())
		}
		if pl.Est > task.AbsDeadline() {
			t.Fatalf("%s: estimate %v past deadline", part.Name(), pl.Est)
		}
		if !pl.SimultaneousStart {
			// IIT-style plan: Est is the exact staggered dispatch
			// completion under per-node costs.
			d, err := dlt.SimulateDispatchHetero(cl.Costs().Select(pl.Nodes), task.Sigma, pl.Starts, pl.Alphas)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(d.Completion-pl.Est) > 1e-9*math.Max(1, pl.Est) {
				t.Fatalf("%s: Est=%v but exact dispatch completes at %v", part.Name(), pl.Est, d.Completion)
			}
		}
		sum := 0.0
		for _, a := range pl.Alphas {
			sum += a
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s: alphas sum to %v", part.Name(), sum)
		}
	}
}

// TestHeteroUserSplit: the User-Split practice on a heterogeneous cluster
// uses equal chunks and the exact per-node finish times.
func TestHeteroUserSplit(t *testing.T) {
	cl := heteroCluster(t, heteroFour)
	s := NewScheduler(cl, EDF, UserSplit{})
	task := &Task{ID: 1, Arrival: 0, Sigma: 100, RelDeadline: 60000, UserN: 4}
	pl := submitOK(t, s, task, 0)
	for _, a := range pl.Alphas {
		if a != 0.25 {
			t.Fatalf("user-split must use equal chunks: %v", pl.Alphas)
		}
	}
	d, err := dlt.SimulateDispatchHetero(cl.Costs().Select(pl.Nodes), task.Sigma, pl.Starts, pl.Alphas)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Est != d.Completion {
		t.Fatalf("user-split Est=%v, want exact %v", pl.Est, d.Completion)
	}
}

// TestHeteroIdenticalDeadlines: two tasks with the same absolute deadline
// on a heterogeneous cluster exercise the EDF tie-break (arrival, then ID);
// both must be admitted and committed without overlap.
func TestHeteroIdenticalDeadlines(t *testing.T) {
	cl := heteroCluster(t, heteroFour)
	s := NewScheduler(cl, EDF, IITDLT{})
	a := &Task{ID: 1, Arrival: 0, Sigma: 60, RelDeadline: 50000}
	b := &Task{ID: 2, Arrival: 0, Sigma: 60, RelDeadline: 50000}
	if a.AbsDeadline() != b.AbsDeadline() {
		t.Fatalf("test setup: deadlines differ")
	}
	submitOK(t, s, a, 0)
	submitOK(t, s, b, 0)
	if !s.Policy().Less(a, b) || s.Policy().Less(b, a) {
		t.Fatalf("identical deadlines must tie-break to the lower ID first")
	}
	plans, err := s.CommitDue(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("committed %d plans, want 2", len(plans))
	}
}

// TestHeteroSingleFreeNode: a one-node heterogeneous "cluster" (the
// degenerate free-node case) admits exactly what fits sequentially.
func TestHeteroSingleFreeNode(t *testing.T) {
	cl := heteroCluster(t, []dlt.NodeCost{{Cms: 2, Cps: 30}})
	if !cl.Hetero() {
		// A single node is trivially uniform; the point is the pipeline
		// still works end to end through the uniform fast path.
		t.Logf("single-node cluster is uniform, as expected")
	}
	s := NewScheduler(cl, EDF, IITDLT{})
	// σ(Cms+Cps) = 10·32 = 320.
	fits := &Task{ID: 1, Arrival: 0, Sigma: 10, RelDeadline: 320}
	submitOK(t, s, fits, 0)
	tooTight := &Task{ID: 2, Arrival: 0, Sigma: 10, RelDeadline: 300}
	acc, err := s.Submit(tooTight, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc {
		t.Fatalf("task needing 320 time units must be rejected at deadline 300 behind task 1")
	}
}

// TestHeteroSingleSlowNodeGeneralPath exercises the genuinely
// heterogeneous single-free-node case by pairing a workhorse with an
// unusably slow straggler: every plan should avoid the straggler while the
// workhorse is free.
func TestHeteroSingleSlowNodeGeneralPath(t *testing.T) {
	cl := heteroCluster(t, []dlt.NodeCost{
		{Cms: 1, Cps: 50},
		{Cms: 1e6, Cps: 1e6}, // near-zero bandwidth and compute
	})
	if !cl.Hetero() {
		t.Fatalf("cluster must be heterogeneous")
	}
	s := NewScheduler(cl, EDF, IITDLT{})
	task := &Task{ID: 1, Arrival: 0, Sigma: 10, RelDeadline: 600}
	pl := submitOK(t, s, task, 0)
	if len(pl.Nodes) != 1 || pl.Nodes[0] != 0 {
		t.Fatalf("plan should use only the workhorse node: %v", pl.Nodes)
	}
}

// TestHeteroSchedulerDrain: a stream of tasks over a heterogeneous cluster
// commits cleanly and never double-books a node (cluster.Commit would
// error).
func TestHeteroSchedulerDrain(t *testing.T) {
	cl := heteroCluster(t, heteroFour)
	s := NewScheduler(cl, EDF, IITDLT{})
	now := 0.0
	id := int64(0)
	for i := 0; i < 50; i++ {
		id++
		task := &Task{ID: id, Arrival: now, Sigma: 20 + float64(i%7)*30, RelDeadline: 30000}
		if _, err := s.Submit(task, now); err != nil {
			t.Fatal(err)
		}
		if at, ok := s.NextCommit(); ok && at <= now {
			if _, err := s.CommitDue(now); err != nil {
				t.Fatal(err)
			}
		}
		now += 400
	}
	for s.Stats().QueueLen > 0 {
		at, ok := s.NextCommit()
		if !ok {
			t.Fatalf("%d tasks stuck without a commit time", s.Stats().QueueLen)
		}
		now = math.Max(now, at)
		if _, err := s.CommitDue(now); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Commits != st.Accepts {
		t.Fatalf("%d commits != %d accepts", st.Commits, st.Accepts)
	}
}
