package rt

import (
	"fmt"
	"math"

	"rtdls/internal/core"
	"rtdls/internal/dlt"
)

// IITDLT is the paper's DLT-based partitioner: it utilises Inserted Idle
// Times by starting a task on each processor as soon as that processor is
// released, partitioning the load via the heterogeneous-model analysis of
// Sec. 4.1.1 and assigning the task ñ_min nodes.
//
// Following the Fig. 2 pseudocode, ñ_min is evaluated at the current test
// time t ("n ← ñ_min(t)"), i.e. with slack A+D−t, *before* the start times
// are known; the safety net is the explicit admission check of the Eq. 6
// completion estimate Ê + r_n against the absolute deadline, which the
// scheduler performs on the plan returned here. This is where utilising
// IITs pays: when a task must wait for its later nodes, the early nodes
// compute during the wait, so Ê can undercut the no-IIT execution time E by
// far more than the ñ_min bound assumes — admitting tasks the OPR baseline
// must reject.
type IITDLT struct{}

// Name implements Partitioner.
func (IITDLT) Name() string { return "dlt-iit" }

// FastReject implements FastRejecter: the search starts at ñ_min(t), so a
// task is certainly rejected when the bound fails or the ñ_min earliest
// nodes are provably too late.
func (IITDLT) FastReject(ctx *PlanContext, t *Task) bool {
	return ctx.FastRejectMinNodes(t)
}

// Plan implements Partitioner.
func (IITDLT) Plan(ctx *PlanContext, t *Task) (*Plan, error) {
	if cm := ctx.heteroCosts(); cm != nil {
		return planHeteroIIT(cm, ctx, t)
	}
	absD := t.AbsDeadline()
	slack := absD - ctx.startFloor(t)
	n0, ok := dlt.MinNodesBound(ctx.P, t.Sigma, slack)
	if !ok || n0 > ctx.N {
		// Even starting immediately the deadline cannot be met (γ ≤ 0 or
		// the whole cluster is too small).
		return nil, ErrInfeasible
	}
	for n := n0; n <= ctx.N; n++ {
		ids, starts := clampedStarts(ctx, t, n)
		m, err := core.New(ctx.P, t.Sigma, starts)
		if err != nil {
			return nil, fmt.Errorf("rt: dlt-iit: building heterogeneous model: %w", err)
		}
		est := m.EstCompletion()
		if est > absD+deadlineEps(absD) {
			// ñ_min(t) underestimates the requirement when the task must
			// wait for busy nodes; allocate more until the Eq. 6 estimate
			// meets the deadline.
			continue
		}
		// Admission is checked against the Theorem-4 estimate (Eq. 6), but
		// each node is released at its exact actual finish time: the linear
		// cost model makes the dispatch timeline fully deterministic, so
		// the head node knows precisely when every node frees up.
		d, err := m.Dispatch()
		if err != nil {
			return nil, fmt.Errorf("rt: dlt-iit: dispatching: %w", err)
		}
		release := make([]float64, n)
		for i := range release {
			release[i] = math.Max(d.Finish[i], starts[i])
		}
		return &Plan{
			Task:    t,
			Nodes:   ids,
			Starts:  starts,
			Release: release,
			Alphas:  m.Alphas(),
			Est:     est,
			Rounds:  1,
		}, nil
	}
	return nil, ErrInfeasible
}
