package rt

import (
	"rtdls/internal/dlt"
)

// OPR is the baseline partitioner from the authors' RTAS'07 paper [22]:
// the Optimal Partitioning Rule for simultaneously allocated homogeneous
// nodes, *without* IIT utilisation. A task assigned n nodes cannot start
// until all n are free (time r_n); nodes released earlier are held idle
// until then — the Inserted Idle Times this paper eliminates. Its node
// count uses the same ñ_min(t) rule as IITDLT (the formulas coincide), so
// comparing the two isolates the value of utilising IITs.
//
// With AllNodes false this is OPR-MN (minimum-node assignment, the
// strongest baseline of [22]); with AllNodes true it is OPR-AN (always run
// on the whole cluster — no IITs by construction, but "rarely adopted in
// real-life clusters due to obvious drawbacks").
type OPR struct {
	AllNodes bool
}

// Name implements Partitioner.
func (o OPR) Name() string {
	if o.AllNodes {
		return "opr-an"
	}
	return "opr-mn"
}

// FastReject implements FastRejecter. OPR-MN shares the ñ_min(t) bound
// with IITDLT; OPR-AN always waits for the whole cluster, so the provable
// lower bound is anchored at the N-th (last) release time.
func (o OPR) FastReject(ctx *PlanContext, t *Task) bool {
	if !o.AllNodes {
		return ctx.FastRejectMinNodes(t)
	}
	return ctx.ProvablyLate(t, ctx.N)
}

// Plan implements Partitioner.
func (o OPR) Plan(ctx *PlanContext, t *Task) (*Plan, error) {
	if cm := ctx.heteroCosts(); cm != nil {
		return planHeteroOPR(o, cm, ctx, t)
	}
	absD := t.AbsDeadline()
	n0 := ctx.N
	if !o.AllNodes {
		slack := absD - ctx.startFloor(t)
		var ok bool
		n0, ok = dlt.MinNodesBound(ctx.P, t.Sigma, slack)
		if !ok || n0 > ctx.N {
			return nil, ErrInfeasible
		}
	}
	for n := n0; n <= ctx.N; n++ {
		ids, starts := clampedStarts(ctx, t, n)
		rn := starts[n-1]
		est := rn + ctx.P.ExecTime(t.Sigma, n)
		if est > absD+deadlineEps(absD) {
			// Like IITDLT, expand beyond ñ_min(t) when waiting for busy
			// nodes pushed the completion past the deadline — but OPR must
			// buy the speed-up with E(σ,n), never with the waiting time
			// itself.
			continue
		}
		// The task occupies each node from that node's own release (the
		// reservation that wastes the IIT) but only executes from rn, when
		// all n nodes are free simultaneously.
		reserved := 0.0
		for _, s := range starts {
			reserved += rn - s
		}
		return &Plan{
			Task:              t,
			Nodes:             ids,
			Starts:            starts,
			Release:           uniform(n, est),
			Alphas:            ctx.P.Alphas(n),
			Est:               est,
			ReservedIdle:      reserved,
			SimultaneousStart: true,
			Rounds:            1,
		}, nil
	}
	return nil, ErrInfeasible
}
