package rt

import (
	"math"

	"rtdls/internal/dlt"
	"rtdls/internal/errs"
)

// ErrInfeasible is returned by partitioners when no assignment can meet the
// task's deadline; the schedulability test then fails and the new arrival
// is rejected (in a deployment, rejection triggers deadline renegotiation —
// the paper's footnote 1; see examples/admission). It is the shared
// errs.ErrInfeasible sentinel, so errors.Is matches across packages.
var ErrInfeasible = errs.ErrInfeasible

// PlanContext carries the cluster state a partitioner plans against.
type PlanContext struct {
	P     dlt.Params     // reference cost coefficients (the shared pair when homogeneous)
	N     int            // cluster size
	Now   float64        // current time; starts are clamped to max(Now, task arrival)
	View  *AvailView     // tentative per-node release times
	Costs *dlt.CostModel // per-node cost coefficients; nil or uniform = homogeneous
}

// heteroCosts returns the per-node cost model when the cluster is genuinely
// heterogeneous, and nil otherwise. Uniform cost models deliberately return
// nil so every partitioner routes them through the legacy homogeneous
// formulas — that is what makes a uniform CostModel reproduce the scalar
// (Cms, Cps) scheduler bit for bit.
func (ctx *PlanContext) heteroCosts() *dlt.CostModel {
	if ctx.Costs != nil && !ctx.Costs.Uniform() {
		return ctx.Costs
	}
	return nil
}

// startFloor returns the earliest instant the task may occupy a node.
func (ctx *PlanContext) startFloor(t *Task) float64 {
	return math.Max(ctx.Now, t.Arrival)
}

// Partitioner is the framework's task-partitioning module (Decision #2)
// fused with the node-assignment rule (Decision #3): given the tentative
// cluster state it selects the nodes, start times, load fractions and the
// completion estimate for one task.
//
// Plan must not mutate the view — the scheduler applies the returned plan's
// releases itself after checking the deadline.
type Partitioner interface {
	// Name returns the partitioner's identifier (e.g. "dlt-iit").
	Name() string
	Plan(ctx *PlanContext, t *Task) (*Plan, error)
}

// clampedStarts materialises r_k = max(Release(node_k), A_i, now) for the k
// earliest-available nodes (Fig. 2's "set processor available times",
// clamped so replanned waiting tasks cannot start in the past). The
// returned slices are freshly allocated; ids is copied from the view.
func clampedStarts(ctx *PlanContext, t *Task, k int) (ids []int, starts []float64) {
	vids, vtimes := ctx.View.Earliest(k)
	ids = make([]int, k)
	starts = make([]float64, k)
	copy(ids, vids)
	floor := ctx.startFloor(t)
	for i, tm := range vtimes {
		starts[i] = math.Max(tm, floor)
	}
	return ids, starts
}

// deadlineEps returns the absolute tolerance for comparing a completion
// estimate against an absolute deadline, scaled to the magnitudes involved
// so the mathematically guaranteed inequalities survive floating point.
func deadlineEps(absDeadline float64) float64 {
	return 1e-9 * math.Max(1, math.Abs(absDeadline))
}

// uniform returns a slice of n copies of v.
func uniform(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
