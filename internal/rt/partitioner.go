package rt

import (
	"math"

	"rtdls/internal/dlt"
	"rtdls/internal/errs"
)

// ErrInfeasible is returned by partitioners when no assignment can meet the
// task's deadline; the schedulability test then fails and the new arrival
// is rejected (in a deployment, rejection triggers deadline renegotiation —
// the paper's footnote 1; see examples/admission). It is the shared
// errs.ErrInfeasible sentinel, so errors.Is matches across packages.
var ErrInfeasible = errs.ErrInfeasible

// PlanContext carries the cluster state a partitioner plans against.
type PlanContext struct {
	P     dlt.Params     // reference cost coefficients (the shared pair when homogeneous)
	N     int            // cluster size
	Now   float64        // current time; starts are clamped to max(Now, task arrival)
	View  *AvailView     // tentative per-node release times
	Costs *dlt.CostModel // per-node cost coefficients; nil or uniform = homogeneous
}

// heteroCosts returns the per-node cost model when the cluster is genuinely
// heterogeneous, and nil otherwise. Uniform cost models deliberately return
// nil so every partitioner routes them through the legacy homogeneous
// formulas — that is what makes a uniform CostModel reproduce the scalar
// (Cms, Cps) scheduler bit for bit.
func (ctx *PlanContext) heteroCosts() *dlt.CostModel {
	if ctx.Costs != nil && !ctx.Costs.Uniform() {
		return ctx.Costs
	}
	return nil
}

// startFloor returns the earliest instant the task may occupy a node.
func (ctx *PlanContext) startFloor(t *Task) float64 {
	return math.Max(ctx.Now, t.Arrival)
}

// Partitioner is the framework's task-partitioning module (Decision #2)
// fused with the node-assignment rule (Decision #3): given the tentative
// cluster state it selects the nodes, start times, load fractions and the
// completion estimate for one task.
//
// Plan must not mutate the view — the scheduler applies the returned plan's
// releases itself after checking the deadline.
type Partitioner interface {
	// Name returns the partitioner's identifier (e.g. "dlt-iit").
	Name() string
	Plan(ctx *PlanContext, t *Task) (*Plan, error)
}

// FastRejecter is an optional Partitioner extension consulted by the
// scheduler before the full O(queue × plan) replan: FastReject reports
// whether Plan is *certain* to find no deadline-meeting assignment for t
// against the given committed cluster state. Implementations must be sound
// — a true return must imply the full admission test would reject t — and
// cheap: O(log n) against the availability index, never a partitioner run.
// The context's view carries the committed base state (no tentative
// assignments) when FastReject is called.
type FastRejecter interface {
	FastReject(ctx *PlanContext, t *Task) bool
}

// ClampedStarts materialises r_k = max(Release(node_k), A_i, now) for the k
// earliest-available nodes (Fig. 2's "set processor available times",
// clamped so replanned waiting tasks cannot start in the past). The
// returned slices are freshly allocated and owned by the caller; external
// partitioners (package multiround) use it for the same node-selection rule.
func (ctx *PlanContext) ClampedStarts(t *Task, k int) (ids []int, starts []float64) {
	ids = make([]int, k)
	starts = make([]float64, k)
	ctx.View.EarliestInto(ids, starts)
	floor := ctx.startFloor(t)
	for i, tm := range starts {
		starts[i] = math.Max(tm, floor)
	}
	return ids, starts
}

// clampedStarts is the in-package shorthand for ClampedStarts.
func clampedStarts(ctx *PlanContext, t *Task, k int) (ids []int, starts []float64) {
	return ctx.ClampedStarts(t, k)
}

// ProvablyLate reports whether any plan that (a) uses at least the k
// earliest-available eligible nodes and (b) transmits the whole load over
// the (fastest) link provably completes past t's deadline. Every
// partitioner's completion estimate strictly exceeds both max(floor, r_k)
// — the task cannot finish before its latest required node frees up — and
// floor + σ·Cms — the load must cross the network before the last byte
// computes — so when either lower bound already reaches the deadline (with
// the same ε tolerance the admission check uses), the full test is certain
// to reject. O(log n): one order-statistic query against the index.
func (ctx *PlanContext) ProvablyLate(t *Task, k int) bool {
	absD := t.AbsDeadline()
	floor := ctx.startFloor(t)
	lb := math.Max(floor, ctx.View.EarliestTimeAt(k))
	cms := ctx.P.Cms
	if cm := ctx.heteroCosts(); cm != nil {
		cms = cm.Fastest().Cms
	}
	if send := floor + t.Sigma*cms; send > lb {
		lb = send
	}
	return lb >= absD+deadlineEps(absD)
}

// FastRejectMinNodes is the shared FastReject implementation for
// partitioners whose node search starts at the ñ_min(t) bound (IITDLT,
// OPR-MN, multiround): infeasible when the bound itself fails (γ ≤ 0 or
// ñ_min > N — exactly the pre-loop check Plan performs), or when even the
// ñ_min earliest nodes are provably too late.
func (ctx *PlanContext) FastRejectMinNodes(t *Task) bool {
	absD := t.AbsDeadline()
	slack := absD - ctx.startFloor(t)
	var n0 int
	var ok bool
	if cm := ctx.heteroCosts(); cm != nil {
		n0, ok = dlt.HeteroMinNodesBound(cm, t.Sigma, slack)
	} else {
		n0, ok = dlt.MinNodesBound(ctx.P, t.Sigma, slack)
	}
	if !ok || n0 > ctx.N {
		return true
	}
	return ctx.ProvablyLate(t, n0)
}

// deadlineEps returns the absolute tolerance for comparing a completion
// estimate against an absolute deadline, scaled to the magnitudes involved
// so the mathematically guaranteed inequalities survive floating point.
func deadlineEps(absDeadline float64) float64 {
	return 1e-9 * math.Max(1, math.Abs(absDeadline))
}

// uniform returns a slice of n copies of v.
func uniform(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
