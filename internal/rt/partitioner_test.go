package rt

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

// newCtx builds a plan context over the given per-node availability.
func newCtx(p dlt.Params, avail []float64, now float64) *PlanContext {
	times := make([]float64, len(avail))
	copy(times, avail)
	return &PlanContext{P: p, N: len(avail), Now: now, View: NewAvailView(times)}
}

func TestIITDLTIdleCluster(t *testing.T) {
	// On a fully idle cluster ñ_min(t) suffices and starts are "now".
	ctx := newCtx(baseline, make([]float64, 16), 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}
	pl, err := IITDLT{}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	// ñ_min for slack 2718 is 8 (cf. dlt tests).
	if len(pl.Nodes) != 8 {
		t.Fatalf("allocated %d nodes, want 8", len(pl.Nodes))
	}
	for _, s := range pl.Starts {
		if s != 0 {
			t.Fatalf("idle cluster should start at 0, got %v", pl.Starts)
		}
	}
	if pl.Est > task.AbsDeadline() {
		t.Fatalf("est %v misses deadline %v", pl.Est, task.AbsDeadline())
	}
	// No IITs ⇒ the estimate equals r_n + E(σ,n).
	wantEst := baseline.ExecTime(200, 8)
	if math.Abs(pl.Est-wantEst) > 1e-9*wantEst {
		t.Fatalf("est = %v, want %v", pl.Est, wantEst)
	}
	if pl.ReservedIdle != 0 {
		t.Fatalf("dlt-iit must not reserve idle time")
	}
}

func TestIITDLTUsesIITs(t *testing.T) {
	// 6 nodes idle now, 10 released at 1500 by a running task. The task
	// needs more than 6 nodes, so it must wait for node 7 — but under
	// IIT-DLT the idle nodes compute during the wait, so the estimate beats
	// r_n + E(σ,n).
	avail := []float64{0, 0, 0, 0, 0, 0, 1500, 1500, 1500, 1500, 1500, 1500, 1500, 1500, 1500, 1500}
	ctx := newCtx(baseline, avail, 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718} // ñ_min(t) = 8 > 6 idle
	pl, err := IITDLT{}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	n := len(pl.Nodes)
	if n <= 6 {
		t.Fatalf("task should need more than the 6 idle nodes, got %d", n)
	}
	rn := pl.Rn()
	if rn != 1500 {
		t.Fatalf("rn = %v, want 1500", rn)
	}
	noIIT := rn + baseline.ExecTime(200, n)
	if !(pl.Est < noIIT-1) {
		t.Fatalf("est %v should clearly beat the no-IIT completion %v", pl.Est, noIIT)
	}
}

func TestIITDLTExpandsBeyondNminT(t *testing.T) {
	// ñ_min(t) = 8 for slack 2718, but with every node busy until 1200 the
	// 8-node estimate misses the deadline; the partitioner must allocate
	// more nodes to compensate.
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = 1200
	}
	ctx := newCtx(baseline, avail, 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}
	pl, err := IITDLT{}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Nodes) <= 8 {
		t.Fatalf("expected expansion beyond ñ_min(t)=8, got %d nodes", len(pl.Nodes))
	}
	if pl.Est > task.AbsDeadline()+1e-6 {
		t.Fatalf("est %v misses deadline %v", pl.Est, task.AbsDeadline())
	}
}

func TestIITDLTInfeasible(t *testing.T) {
	// Deadline shorter than the input transmission time: γ ≤ 0.
	ctx := newCtx(baseline, make([]float64, 4), 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 150}
	if _, err := (IITDLT{}).Plan(ctx, task); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	// Cluster too small: ñ_min(t) > N.
	ctx = newCtx(baseline, make([]float64, 2), 0)
	task = &Task{ID: 2, Arrival: 0, Sigma: 200, RelDeadline: 2718} // needs 8
	if _, err := (IITDLT{}).Plan(ctx, task); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	// All nodes busy so long that no expansion can help.
	avail := make([]float64, 16)
	for i := range avail {
		avail[i] = 1e6
	}
	ctx = newCtx(baseline, avail, 0)
	task = &Task{ID: 3, Arrival: 0, Sigma: 200, RelDeadline: 2718}
	if _, err := (IITDLT{}).Plan(ctx, task); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestIITDLTPerNodeReleases(t *testing.T) {
	avail := []float64{0, 0, 0, 800, 800, 800, 800, 800}
	ctx := newCtx(baseline, avail, 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 150, RelDeadline: 3500}
	pl, err := IITDLT{}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pl.Release {
		if pl.Release[i] > pl.Est+1e-9*pl.Est {
			t.Fatalf("release[%d]=%v exceeds Theorem-4 estimate %v", i, pl.Release[i], pl.Est)
		}
		if pl.Release[i] < pl.Starts[i] {
			t.Fatalf("release[%d]=%v before start %v", i, pl.Release[i], pl.Starts[i])
		}
	}
}

func TestOPRStartsSimultaneously(t *testing.T) {
	avail := []float64{0, 0, 0, 0, 0, 0, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000}
	ctx := newCtx(baseline, avail, 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 4000}
	pl, err := OPR{}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	n := len(pl.Nodes)
	rn := pl.Rn()
	want := rn + baseline.ExecTime(200, n)
	if math.Abs(pl.Est-want) > 1e-9*want {
		t.Fatalf("OPR est = %v, want rn+E = %v", pl.Est, want)
	}
	// The idle nodes are reserved from their own release to rn.
	wantReserved := 0.0
	for _, s := range pl.Starts {
		wantReserved += rn - s
	}
	if math.Abs(pl.ReservedIdle-wantReserved) > 1e-9 {
		t.Fatalf("ReservedIdle = %v, want %v", pl.ReservedIdle, wantReserved)
	}
	if n > 6 && pl.ReservedIdle == 0 {
		t.Fatalf("mixing idle and busy nodes must waste IITs under OPR")
	}
}

func TestOPRNeverBeatsIITDLT(t *testing.T) {
	// On identical cluster states, the IIT-utilising estimate is never
	// worse than the OPR estimate for the same or fewer nodes.
	rng := rand.New(rand.NewPCG(8, 15))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.IntN(13)
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = float64(rng.IntN(3)) * 900 * rng.Float64()
		}
		task := &Task{
			ID:          int64(trial),
			Arrival:     0,
			Sigma:       20 + 400*rng.Float64(),
			RelDeadline: 2000 + 4000*rng.Float64(),
		}
		dltPlan, dltErr := IITDLT{}.Plan(newCtx(baseline, avail, 0), task)
		oprPlan, oprErr := OPR{}.Plan(newCtx(baseline, avail, 0), task)
		if oprErr != nil {
			continue // OPR infeasible; DLT may or may not be.
		}
		if dltErr != nil {
			t.Fatalf("trial %d: OPR feasible but DLT not: %v", trial, dltErr)
		}
		if len(dltPlan.Nodes) > len(oprPlan.Nodes) {
			t.Fatalf("trial %d: DLT needed more nodes (%d) than OPR (%d)",
				trial, len(dltPlan.Nodes), len(oprPlan.Nodes))
		}
		if len(dltPlan.Nodes) == len(oprPlan.Nodes) && dltPlan.Est > oprPlan.Est*(1+1e-9) {
			t.Fatalf("trial %d: DLT est %v worse than OPR est %v at equal n",
				trial, dltPlan.Est, oprPlan.Est)
		}
	}
}

func TestOPRAllNodes(t *testing.T) {
	avail := []float64{0, 5, 10, 15}
	ctx := newCtx(baseline, avail, 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 50, RelDeadline: 1e6}
	pl, err := OPR{AllNodes: true}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Nodes) != 4 {
		t.Fatalf("OPR-AN must use all nodes, got %d", len(pl.Nodes))
	}
	want := 15 + baseline.ExecTime(50, 4)
	if math.Abs(pl.Est-want) > 1e-9*want {
		t.Fatalf("est = %v, want %v", pl.Est, want)
	}
}

func TestUserSplitPlan(t *testing.T) {
	avail := []float64{0, 0, 100, 100}
	ctx := newCtx(baseline, avail, 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 40, RelDeadline: 5000, UserN: 4}
	pl, err := UserSplit{}.Plan(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Nodes) != 4 {
		t.Fatalf("user-split must use exactly UserN nodes")
	}
	d, err := dlt.UserSplitDispatch(baseline, 40, pl.Starts)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Est != d.Completion {
		t.Fatalf("est %v != exact completion %v", pl.Est, d.Completion)
	}
	for i := range pl.Release {
		if pl.Release[i] != d.Finish[i] {
			t.Fatalf("user-split releases each node at its own finish")
		}
	}
	for i, a := range pl.Alphas {
		if math.Abs(a-0.25) > 1e-12 {
			t.Fatalf("alpha[%d]=%v, want equal chunks", i, a)
		}
	}
}

func TestUserSplitInfeasibleWithoutRequest(t *testing.T) {
	ctx := newCtx(baseline, make([]float64, 4), 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 40, RelDeadline: 5000, UserN: 0}
	if _, err := (UserSplit{}).Plan(ctx, task); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("UserN=0 must be infeasible, got %v", err)
	}
}

func TestUserSplitRequestExceedsCluster(t *testing.T) {
	ctx := newCtx(baseline, make([]float64, 4), 0)
	task := &Task{ID: 1, Arrival: 0, Sigma: 40, RelDeadline: 5000, UserN: 9}
	if _, err := (UserSplit{}).Plan(ctx, task); err == nil || errors.Is(err, ErrInfeasible) {
		t.Fatalf("UserN > N is a hard error, got %v", err)
	}
}

func TestClampedStartsFloorsPastReleases(t *testing.T) {
	// Nodes idle since t=2 must not let a task start in the past.
	ctx := newCtx(baseline, []float64{2, 2, 2, 2}, 10)
	task := &Task{ID: 1, Arrival: 6, Sigma: 5, RelDeadline: 5000}
	_, starts := clampedStarts(ctx, task, 4)
	for _, s := range starts {
		if s != 10 {
			t.Fatalf("starts must clamp to now=10, got %v", starts)
		}
	}
}

// TestPartitionerDeadlineGuarantee: whatever plan any partitioner emits,
// the exact dispatch of that plan finishes within the admission estimate —
// the property the scheduler's deadline check relies on.
func TestPartitionerDeadlineGuarantee(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 34))
	parts := []Partitioner{IITDLT{}, OPR{}, OPR{AllNodes: true}, UserSplit{}}
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.IntN(15)
		avail := make([]float64, n)
		for i := range avail {
			avail[i] = 2000 * rng.Float64() * float64(rng.IntN(2))
		}
		task := &Task{
			ID:          int64(trial),
			Arrival:     0,
			Sigma:       10 + 500*rng.Float64(),
			RelDeadline: 1000 + 6000*rng.Float64(),
			UserN:       1 + rng.IntN(n),
		}
		for _, part := range parts {
			pl, err := part.Plan(newCtx(baseline, avail, 0), task)
			if err != nil {
				continue
			}
			if part.Name() == "opr-mn" || part.Name() == "opr-an" {
				// OPR computes from r_n; dispatch at starts=r_i would model
				// IIT use it does not perform. Its est is exact by
				// construction: r_n + E.
				continue
			}
			d, err := dlt.SimulateDispatch(baseline, task.Sigma, pl.Starts, pl.Alphas)
			if err != nil {
				t.Fatalf("%s: dispatch failed: %v", part.Name(), err)
			}
			if d.Completion > pl.Est*(1+1e-9) {
				t.Fatalf("%s trial %d: actual %v exceeds estimate %v",
					part.Name(), trial, d.Completion, pl.Est)
			}
		}
	}
}

// Silence unused import when the cluster package is only used by other test
// files in this package.
var _ = cluster.New
