package rt

import "math"

// Plan is a tentative (or, once committed, final) resource assignment for
// one task: which nodes it uses, from when to when, how the load is split
// across them, and the completion estimate the admission decision was based
// on. Slices are parallel and ordered by node available time (the paper's
// P1…Pn ordering, which is also the transmission order).
type Plan struct {
	Task *Task

	Nodes  []int     // node ids, ordered by available time
	Starts []float64 // per node: when the node is occupied by this task
	// Release holds the per-node release times used for bookkeeping. For
	// DLT-IIT and the OPR baselines every entry equals Est; for User-Split
	// it is the analytically exact per-node completion time C_i.
	Release []float64
	Alphas  []float64 // load fractions, αᵢ ≥ 0, Σαᵢ = 1

	// Est is the completion-time estimate used by the schedulability test:
	// r_n + Ê for DLT-IIT (Theorem 4 upper-bounds the actual completion by
	// it), r_n + E for OPR, and the exact C(σ,n) for User-Split.
	Est float64

	// ReservedIdle is the inserted idle time this assignment wastes by
	// holding nodes before the task can start on all of them — nonzero only
	// for the non-IIT-utilising OPR baselines (Σᵢ r_n − r_i).
	ReservedIdle float64

	// SimultaneousStart marks OPR-style plans whose execution begins only
	// when all nodes are free (at Rn): their actual completion equals Est
	// exactly, and simulating the staggered dispatch would wrongly credit
	// them with IIT utilisation.
	SimultaneousStart bool

	// Rounds is the number of dispatch rounds (1 for all single-round
	// partitioners; >1 for the multi-round extension).
	Rounds int
}

// FirstStart returns the earliest node occupation time — the moment the
// task's first data transmission can begin and the plan becomes committed
// (non-replannable).
func (p *Plan) FirstStart() float64 {
	first := math.Inf(1)
	for _, s := range p.Starts {
		if s < first {
			first = s
		}
	}
	return first
}

// Rn returns the latest node start time (the r_n of the analysis).
func (p *Plan) Rn() float64 {
	last := math.Inf(-1)
	for _, s := range p.Starts {
		if s > last {
			last = s
		}
	}
	return last
}
