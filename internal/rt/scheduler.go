package rt

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"rtdls/internal/cluster"
	"rtdls/internal/errs"
)

// Observer receives admission-control lifecycle callbacks. All methods may
// be nil-safe no-ops; see package trace for ready-made implementations.
type Observer interface {
	OnAccept(now float64, t *Task, p *Plan)
	OnReject(now float64, t *Task)
	OnCommit(now float64, p *Plan)
}

// Scheduler implements the paper's Fig. 2 schedulability test and the
// surrounding admission control. On every arrival it tentatively re-plans
// the entire waiting queue (ordered by the policy) on top of the committed
// cluster state; the new task is accepted only if every task in the
// tentative schedule meets its deadline, in which case the tentative
// schedule replaces the previous plan. A waiting task becomes committed —
// occupying its nodes, no longer replannable — when its first data
// transmission begins (its plan's earliest node start time).
//
// All methods are safe for concurrent use: a single mutex serialises
// submissions, commits and statistic reads, so one scheduler can be driven
// from many goroutines (the service package builds on this).
type Scheduler struct {
	mu   sync.Mutex
	cl   *cluster.Cluster
	pol  Policy
	part Partitioner

	waiting []*Task         // admitted, not yet committed; in policy order
	plans   map[int64]*Plan // current feasible schedule for waiting tasks

	// Scratch state reused across submissions so the admission hot path
	// allocates only what the accepted plans themselves need. scratch and
	// waiting are double-buffered (never share a backing array); spare and
	// plans likewise.
	scratch  []*Task
	spare    map[int64]*Plan
	view     *AvailView
	availBuf []float64
	pctx     PlanContext

	arrivals int
	accepts  int
	rejects  int
	commits  int
	maxQueue int

	obs Observer
}

// NewScheduler builds a scheduler for the given cluster, policy and
// partitioning module.
func NewScheduler(cl *cluster.Cluster, pol Policy, part Partitioner) *Scheduler {
	if cl == nil {
		panic("rt: NewScheduler: nil cluster")
	}
	if part == nil {
		panic("rt: NewScheduler: nil partitioner")
	}
	return &Scheduler{
		cl:    cl,
		pol:   pol,
		part:  part,
		plans: make(map[int64]*Plan),
		spare: make(map[int64]*Plan),
	}
}

// SetObserver installs lifecycle callbacks (nil disables them). Callbacks
// run with the scheduler lock held and must not call back into it.
func (s *Scheduler) SetObserver(obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = obs
}

// Cluster returns the cluster the scheduler manages.
func (s *Scheduler) Cluster() *cluster.Cluster { return s.cl }

// Policy returns the execution-order policy.
func (s *Scheduler) Policy() Policy { return s.pol }

// Partitioner returns the partitioning module.
func (s *Scheduler) Partitioner() Partitioner { return s.part }

// Submit runs the schedulability test for a newly arrived task and either
// admits it (installing the new feasible schedule for the whole waiting
// queue) or rejects it (leaving the previous schedule untouched). The
// returned error reports malformed input or internal inconsistencies, not
// infeasibility — an infeasible task is a clean (false, nil) rejection.
func (s *Scheduler) Submit(t *Task, now float64) (accepted bool, err error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Arrival > now {
		return false, fmt.Errorf("rt: task %d submitted at %v before its arrival %v: %w",
			t.ID, now, t.Arrival, errs.ErrBadConfig)
	}
	if _, dup := s.plans[t.ID]; dup {
		return false, fmt.Errorf("rt: task %d is already waiting: %w", t.ID, errs.ErrBadConfig)
	}
	s.arrivals++

	// TempTaskList ← NewTask + TaskWaitingQueue, ordered by the policy. The
	// candidate list is a scratch buffer double-buffered against waiting.
	cand := s.scratch[:0]
	inserted := false
	for _, w := range s.waiting {
		if !inserted && s.pol.Less(t, w) {
			cand = append(cand, t)
			inserted = true
		}
		cand = append(cand, w)
	}
	if !inserted {
		cand = append(cand, t)
	}
	s.scratch = cand

	s.availBuf = s.cl.AvailInto(s.availBuf)
	if s.view == nil {
		s.view = NewAvailView(s.availBuf)
	} else {
		s.view.Reset(s.availBuf)
	}
	view := s.view
	s.pctx = PlanContext{P: s.cl.Params(), N: s.cl.N(), Now: now, View: view, Costs: s.cl.Costs()}
	newPlans := s.spare
	discard := func() {
		clear(newPlans)
		clear(cand)
	}
	for _, ti := range cand {
		pl, perr := s.part.Plan(&s.pctx, ti)
		if perr != nil {
			if errors.Is(perr, ErrInfeasible) {
				s.reject(now, t)
				discard()
				return false, nil
			}
			discard()
			return false, perr
		}
		absD := ti.AbsDeadline()
		if pl.Est > absD+deadlineEps(absD) {
			s.reject(now, t)
			discard()
			return false, nil
		}
		view.Apply(pl.Nodes, pl.Release)
		newPlans[ti.ID] = pl
	}

	// All tasks in the cluster are schedulable: accept TempSchedule. The
	// previous waiting slice and plan map become the next scratch buffers.
	old := s.waiting
	s.waiting = cand
	clear(old)
	s.scratch = old
	oldPlans := s.plans
	s.plans = newPlans
	clear(oldPlans)
	s.spare = oldPlans
	s.accepts++
	if len(s.waiting) > s.maxQueue {
		s.maxQueue = len(s.waiting)
	}
	if s.obs != nil {
		s.obs.OnAccept(now, t, newPlans[t.ID])
	}
	return true, nil
}

func (s *Scheduler) reject(now float64, t *Task) {
	s.rejects++
	if s.obs != nil {
		s.obs.OnReject(now, t)
	}
}

// NextCommit returns the earliest plan start time among waiting tasks, or
// ok=false when the queue is empty. The driver schedules a commit event at
// this instant.
func (s *Scheduler) NextCommit() (at float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at = math.Inf(1)
	for _, pl := range s.plans {
		if fs := pl.FirstStart(); fs < at {
			at = fs
		}
	}
	return at, !math.IsInf(at, 1)
}

// commitEps tolerates event-time rounding when deciding whether a plan's
// first transmission is due.
const commitEps = 1e-9

// CommitDue commits every waiting plan whose first transmission start is ≤
// now, in queue order, updating the cluster's release times and accounting.
// It returns the committed plans (possibly none).
func (s *Scheduler) CommitDue(now float64) ([]*Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Plan
	rest := s.waiting[:0]
	tol := commitEps * math.Max(1, math.Abs(now))
	for _, w := range s.waiting {
		pl := s.plans[w.ID]
		if pl == nil {
			return out, fmt.Errorf("rt: waiting task %d has no plan", w.ID)
		}
		if pl.FirstStart() <= now+tol {
			if err := s.cl.Commit(pl.Nodes, pl.Starts, pl.Release, pl.ReservedIdle); err != nil {
				return out, fmt.Errorf("rt: committing task %d: %w", w.ID, err)
			}
			delete(s.plans, w.ID)
			s.commits++
			if s.obs != nil {
				s.obs.OnCommit(now, pl)
			}
			out = append(out, pl)
			continue
		}
		rest = append(rest, w)
	}
	// Drop the stale tail references left behind by the in-place filter.
	tail := s.waiting[len(rest):]
	clear(tail)
	s.waiting = rest
	return out, nil
}

// PlanFor returns the current plan for a waiting task, or nil.
func (s *Scheduler) PlanFor(taskID int64) *Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans[taskID]
}

// Stats is a consistent snapshot of the scheduler's admission counters.
type Stats struct {
	Arrivals    int // submitted tasks
	Accepts     int // admitted tasks
	Rejects     int // rejected tasks
	Commits     int // committed (started) tasks
	QueueLen    int // admitted-but-uncommitted tasks right now
	MaxQueueLen int // largest waiting-queue length observed
}

// RejectRatio returns Rejects/Arrivals, the paper's evaluation metric
// (0 when nothing has arrived).
func (st Stats) RejectRatio() float64 {
	if st.Arrivals == 0 {
		return 0
	}
	return float64(st.Rejects) / float64(st.Arrivals)
}

// Stats returns a consistent snapshot of all admission counters, taken
// under the scheduler lock.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Arrivals:    s.arrivals,
		Accepts:     s.accepts,
		Rejects:     s.rejects,
		Commits:     s.commits,
		QueueLen:    len(s.waiting),
		MaxQueueLen: s.maxQueue,
	}
}
