package rt

import (
	"errors"
	"fmt"
	"math"

	"rtdls/internal/cluster"
)

// Observer receives admission-control lifecycle callbacks. All methods may
// be nil-safe no-ops; see package trace for ready-made implementations.
type Observer interface {
	OnAccept(now float64, t *Task, p *Plan)
	OnReject(now float64, t *Task)
	OnCommit(now float64, p *Plan)
}

// Scheduler implements the paper's Fig. 2 schedulability test and the
// surrounding admission control. On every arrival it tentatively re-plans
// the entire waiting queue (ordered by the policy) on top of the committed
// cluster state; the new task is accepted only if every task in the
// tentative schedule meets its deadline, in which case the tentative
// schedule replaces the previous plan. A waiting task becomes committed —
// occupying its nodes, no longer replannable — when its first data
// transmission begins (its plan's earliest node start time).
type Scheduler struct {
	cl   *cluster.Cluster
	pol  Policy
	part Partitioner

	waiting []*Task         // admitted, not yet committed; in policy order
	plans   map[int64]*Plan // current feasible schedule for waiting tasks

	arrivals int
	accepts  int
	rejects  int
	commits  int
	maxQueue int

	obs Observer
}

// NewScheduler builds a scheduler for the given cluster, policy and
// partitioning module.
func NewScheduler(cl *cluster.Cluster, pol Policy, part Partitioner) *Scheduler {
	if cl == nil {
		panic("rt: NewScheduler: nil cluster")
	}
	if part == nil {
		panic("rt: NewScheduler: nil partitioner")
	}
	return &Scheduler{
		cl:    cl,
		pol:   pol,
		part:  part,
		plans: make(map[int64]*Plan),
	}
}

// SetObserver installs lifecycle callbacks (nil disables them).
func (s *Scheduler) SetObserver(obs Observer) { s.obs = obs }

// Cluster returns the cluster the scheduler manages.
func (s *Scheduler) Cluster() *cluster.Cluster { return s.cl }

// Policy returns the execution-order policy.
func (s *Scheduler) Policy() Policy { return s.pol }

// Partitioner returns the partitioning module.
func (s *Scheduler) Partitioner() Partitioner { return s.part }

// Submit runs the schedulability test for a newly arrived task and either
// admits it (installing the new feasible schedule for the whole waiting
// queue) or rejects it (leaving the previous schedule untouched). The
// returned error reports malformed input or internal inconsistencies, not
// infeasibility — an infeasible task is a clean (false, nil) rejection.
func (s *Scheduler) Submit(t *Task, now float64) (accepted bool, err error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	if t.Arrival > now {
		return false, fmt.Errorf("rt: task %d submitted at %v before its arrival %v", t.ID, now, t.Arrival)
	}
	if _, dup := s.plans[t.ID]; dup {
		return false, fmt.Errorf("rt: task %d is already waiting", t.ID)
	}
	s.arrivals++

	// TempTaskList ← NewTask + TaskWaitingQueue, ordered by the policy.
	cand := make([]*Task, 0, len(s.waiting)+1)
	inserted := false
	for _, w := range s.waiting {
		if !inserted && s.pol.Less(t, w) {
			cand = append(cand, t)
			inserted = true
		}
		cand = append(cand, w)
	}
	if !inserted {
		cand = append(cand, t)
	}

	view := NewAvailView(s.cl.AvailTimes())
	ctx := &PlanContext{P: s.cl.Params(), N: s.cl.N(), Now: now, View: view, Costs: s.cl.Costs()}
	newPlans := make(map[int64]*Plan, len(cand))
	for _, ti := range cand {
		pl, perr := s.part.Plan(ctx, ti)
		if perr != nil {
			if errors.Is(perr, ErrInfeasible) {
				s.reject(now, t)
				return false, nil
			}
			return false, perr
		}
		absD := ti.AbsDeadline()
		if pl.Est > absD+deadlineEps(absD) {
			s.reject(now, t)
			return false, nil
		}
		view.Apply(pl.Nodes, pl.Release)
		newPlans[ti.ID] = pl
	}

	// All tasks in the cluster are schedulable: accept TempSchedule.
	s.waiting = cand
	s.plans = newPlans
	s.accepts++
	if len(s.waiting) > s.maxQueue {
		s.maxQueue = len(s.waiting)
	}
	if s.obs != nil {
		s.obs.OnAccept(now, t, newPlans[t.ID])
	}
	return true, nil
}

func (s *Scheduler) reject(now float64, t *Task) {
	s.rejects++
	if s.obs != nil {
		s.obs.OnReject(now, t)
	}
}

// NextCommit returns the earliest plan start time among waiting tasks, or
// ok=false when the queue is empty. The driver schedules a commit event at
// this instant.
func (s *Scheduler) NextCommit() (at float64, ok bool) {
	at = math.Inf(1)
	for _, pl := range s.plans {
		if fs := pl.FirstStart(); fs < at {
			at = fs
		}
	}
	return at, !math.IsInf(at, 1)
}

// commitEps tolerates event-time rounding when deciding whether a plan's
// first transmission is due.
const commitEps = 1e-9

// CommitDue commits every waiting plan whose first transmission start is ≤
// now, in queue order, updating the cluster's release times and accounting.
// It returns the committed plans (possibly none).
func (s *Scheduler) CommitDue(now float64) ([]*Plan, error) {
	var out []*Plan
	rest := s.waiting[:0]
	tol := commitEps * math.Max(1, math.Abs(now))
	for _, w := range s.waiting {
		pl := s.plans[w.ID]
		if pl == nil {
			return out, fmt.Errorf("rt: waiting task %d has no plan", w.ID)
		}
		if pl.FirstStart() <= now+tol {
			if err := s.cl.Commit(pl.Nodes, pl.Starts, pl.Release, pl.ReservedIdle); err != nil {
				return out, fmt.Errorf("rt: committing task %d: %w", w.ID, err)
			}
			delete(s.plans, w.ID)
			s.commits++
			if s.obs != nil {
				s.obs.OnCommit(now, pl)
			}
			out = append(out, pl)
			continue
		}
		rest = append(rest, w)
	}
	s.waiting = rest
	return out, nil
}

// PlanFor returns the current plan for a waiting task, or nil.
func (s *Scheduler) PlanFor(taskID int64) *Plan { return s.plans[taskID] }

// QueueLen returns the number of admitted-but-uncommitted tasks.
func (s *Scheduler) QueueLen() int { return len(s.waiting) }

// MaxQueueLen returns the largest waiting-queue length observed.
func (s *Scheduler) MaxQueueLen() int { return s.maxQueue }

// Arrivals returns the number of submitted tasks.
func (s *Scheduler) Arrivals() int { return s.arrivals }

// Accepts returns the number of admitted tasks.
func (s *Scheduler) Accepts() int { return s.accepts }

// Rejects returns the number of rejected tasks.
func (s *Scheduler) Rejects() int { return s.rejects }

// Commits returns the number of committed (started) tasks.
func (s *Scheduler) Commits() int { return s.commits }

// RejectRatio returns rejects/arrivals, the paper's evaluation metric
// (0 when nothing has arrived).
func (s *Scheduler) RejectRatio() float64 {
	if s.arrivals == 0 {
		return 0
	}
	return float64(s.rejects) / float64(s.arrivals)
}
