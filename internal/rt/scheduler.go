package rt

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
)

// Observer receives admission-control lifecycle callbacks. All methods may
// be nil-safe no-ops; see package trace for ready-made implementations.
type Observer interface {
	OnAccept(now float64, t *Task, p *Plan)
	OnReject(now float64, t *Task)
	OnCommit(now float64, p *Plan)
}

// Scheduler implements the paper's Fig. 2 schedulability test and the
// surrounding admission control. On every arrival it tentatively re-plans
// the entire waiting queue (ordered by the policy) on top of the committed
// cluster state; the new task is accepted only if every task in the
// tentative schedule meets its deadline, in which case the tentative
// schedule replaces the previous plan. A waiting task becomes committed —
// occupying its nodes, no longer replannable — when its first data
// transmission begins (its plan's earliest node start time).
//
// All methods are safe for concurrent use: a single mutex serialises
// submissions, commits and statistic reads, so one scheduler can be driven
// from many goroutines (the service package builds on this).
type Scheduler struct {
	mu   sync.Mutex
	cl   *cluster.Cluster
	pol  Policy
	part Partitioner

	waiting []*Task         // admitted, not yet committed; in policy order
	plans   map[int64]*Plan // current feasible schedule for waiting tasks

	// Scratch state reused across submissions so the admission hot path
	// allocates only what the accepted plans themselves need. scratch and
	// waiting are double-buffered (never share a backing array); spare and
	// plans likewise.
	scratch  []*Task
	spare    map[int64]*Plan
	view     *AvailView
	availBuf []float64
	eligBuf  []bool
	pctx     PlanContext

	// The availability view is kept base-synced across submissions:
	// clVersion records the cluster mutation counter the view's base
	// snapshot reflects. While it matches, a fresh test costs one
	// O(changed·log n) Rollback of the previous test's tentative
	// assignments; on a mismatch (node churn, fleet growth, out-of-band
	// commits) the view is rebuilt from a full snapshot. liveCache is the
	// live-node count at the last sync — LiveNodes is O(n) under churn.
	clVersion uint64
	liveCache int

	// queueGen counts waiting-queue mutations that leave the cluster's own
	// mutation counter untouched (accepts, revalidations). Together with
	// cluster.Version() it forms the Epoch optimistic submissions validate
	// against — see speculate.go. Rejections don't bump it: they change
	// nothing a later admission test reads.
	queueGen uint64

	// Testing hooks (never set in production): noFastReject skips the
	// FastRejecter consultation, forceRefView serves every view query from
	// the full-sort reference implementation, and resyncEachUse rebuilds
	// the view from a fresh snapshot on every test — together they
	// reproduce the legacy per-submit sorted-slice behaviour for the
	// bit-for-bit equivalence suite.
	noFastReject  bool
	forceRefView  bool
	resyncEachUse bool

	// Admission counters live on atomics so Stats() — and every observer
	// built on it, including the /metrics scrape — never takes the
	// scheduler lock. Writes still happen inside locked sections, so the
	// counters remain mutually consistent at quiescence.
	arrivals atomic.Int64
	accepts  atomic.Int64
	rejects  atomic.Int64
	commits  atomic.Int64
	queueLen atomic.Int64
	maxQueue atomic.Int64

	obs      Observer
	stageObs StageObserver
}

// NewScheduler builds a scheduler for the given cluster, policy and
// partitioning module.
func NewScheduler(cl *cluster.Cluster, pol Policy, part Partitioner) *Scheduler {
	if cl == nil {
		panic("rt: NewScheduler: nil cluster")
	}
	if part == nil {
		panic("rt: NewScheduler: nil partitioner")
	}
	return &Scheduler{
		cl:    cl,
		pol:   pol,
		part:  part,
		plans: make(map[int64]*Plan),
		spare: make(map[int64]*Plan),
	}
}

// SetObserver installs lifecycle callbacks (nil disables them). Callbacks
// run with the scheduler lock held and must not call back into it. If obs
// also implements StageObserver, per-stage timing spans are enabled too.
func (s *Scheduler) SetObserver(obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = obs
	if so, ok := obs.(StageObserver); ok && s.stageObs == nil {
		s.stageObs = so
	}
}

// SetStageObserver installs per-stage timing callbacks (nil disables
// them). The observer runs with the scheduler lock held, once per
// admission test, and must be cheap and concurrency-safe.
func (s *Scheduler) SetStageObserver(so StageObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stageObs = so
}

// Cluster returns the cluster the scheduler manages.
func (s *Scheduler) Cluster() *cluster.Cluster { return s.cl }

// Policy returns the execution-order policy.
func (s *Scheduler) Policy() Policy { return s.pol }

// Partitioner returns the partitioning module.
func (s *Scheduler) Partitioner() Partitioner { return s.part }

// Submit runs the schedulability test for a newly arrived task and either
// admits it (installing the new feasible schedule for the whole waiting
// queue) or rejects it (leaving the previous schedule untouched). The
// returned error reports malformed input or internal inconsistencies, not
// infeasibility — an infeasible task is a clean (false, nil) rejection.
func (s *Scheduler) Submit(t *Task, now float64) (accepted bool, err error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Arrival > now {
		return false, fmt.Errorf("rt: task %d submitted at %v before its arrival %v: %w",
			t.ID, now, t.Arrival, errs.ErrBadConfig)
	}
	if _, dup := s.plans[t.ID]; dup {
		return false, fmt.Errorf("rt: task %d is already waiting: %w", t.ID, errs.ErrBadConfig)
	}
	s.arrivals.Add(1)

	// Per-stage timing spans are measured only when an observer is
	// installed; the nil path costs a single predictable branch.
	stageObs := s.stageObs
	var t0 time.Time
	var candDur, planDur time.Duration
	if stageObs != nil {
		t0 = time.Now()
	}

	view, live := s.freshViewLocked()
	if live == 0 {
		// The whole fleet is drained or down: nothing is placeable. The
		// stage spans are still recorded — every submit contributes one
		// sample per stage, whichever path it takes, so the stage
		// histograms stay reconcilable with rtdls_submits_total.
		s.reject(now, t)
		s.observeEarlyReject(stageObs, t0)
		return false, nil
	}
	s.pctx = PlanContext{P: s.cl.Params(), N: live, Now: now, View: view, Costs: s.cl.Costs()}

	// Infeasibility fast-reject: a hopeless task — provably unable to meet
	// its deadline even under the partitioner's most optimistic bounds —
	// is rejected with one O(log n) order-statistic query against the
	// committed availability index, skipping the O(queue × plan) replan.
	// FastReject is sound (never fires on a task the full test would
	// accept), so the admission decision stream is unchanged.
	if !s.noFastReject {
		if fr, ok := s.part.(FastRejecter); ok && fr.FastReject(&s.pctx, t) {
			s.reject(now, t)
			s.observeEarlyReject(stageObs, t0)
			return false, nil
		}
	}

	// TempTaskList ← NewTask + TaskWaitingQueue, ordered by the policy. The
	// candidate list is a scratch buffer double-buffered against waiting.
	cand := s.scratch[:0]
	inserted := false
	for _, w := range s.waiting {
		if !inserted && s.pol.Less(t, w) {
			cand = append(cand, t)
			inserted = true
		}
		cand = append(cand, w)
	}
	if !inserted {
		cand = append(cand, t)
	}
	s.scratch = cand
	if stageObs != nil {
		// Candidate selection ends once the availability view is set up;
		// everything after splits into planning (the partitioner calls) and
		// the schedulability check (deadline comparisons + view updates).
		candDur = time.Since(t0)
		defer func() {
			stageObs.ObserveStage(StageCandidate, candDur.Seconds())
			stageObs.ObserveStage(StagePlan, planDur.Seconds())
			check := time.Since(t0) - candDur - planDur
			if check < 0 {
				check = 0
			}
			stageObs.ObserveStage(StageCheck, check.Seconds())
		}()
	}
	newPlans := s.spare
	discard := func() {
		clear(newPlans)
		clear(cand)
	}
	for _, ti := range cand {
		var pl *Plan
		var perr error
		if stageObs != nil {
			tp := time.Now()
			pl, perr = s.part.Plan(&s.pctx, ti)
			planDur += time.Since(tp)
		} else {
			pl, perr = s.part.Plan(&s.pctx, ti)
		}
		if perr != nil {
			if errors.Is(perr, ErrInfeasible) {
				s.reject(now, t)
				discard()
				return false, nil
			}
			discard()
			return false, perr
		}
		absD := ti.AbsDeadline()
		if pl.Est > absD+deadlineEps(absD) {
			s.reject(now, t)
			discard()
			return false, nil
		}
		view.Apply(pl.Nodes, pl.Release)
		newPlans[ti.ID] = pl
	}

	// All tasks in the cluster are schedulable: accept TempSchedule. The
	// previous waiting slice and plan map become the next scratch buffers.
	old := s.waiting
	s.waiting = cand
	clear(old)
	s.scratch = old
	oldPlans := s.plans
	s.plans = newPlans
	clear(oldPlans)
	s.spare = oldPlans
	s.accepts.Add(1)
	q := int64(len(s.waiting))
	s.queueLen.Store(q)
	storeMax(&s.maxQueue, q)
	s.queueGen++
	if s.obs != nil {
		s.obs.OnAccept(now, t, newPlans[t.ID])
	}
	return true, nil
}

// freshViewLocked hands the admission test an availability view holding
// exactly the committed cluster state. While the cluster's mutation
// counter still matches the view's base snapshot, that is one
// O(changed·log n) Rollback of the previous test's tentative assignments
// — the steady-state path, since CommitDue folds commits into the base
// incrementally. On a version mismatch (node churn, fleet growth,
// out-of-band commits) the view is rebuilt from a fresh snapshot, the
// placement-eligibility mask is reinstalled when any node is drained or
// down, and the live (placeable) node count is recached. A fully-up fleet
// takes exactly the pre-fleet path: no mask, live == N.
func (s *Scheduler) freshViewLocked() (view *AvailView, live int) {
	if s.view != nil && !s.resyncEachUse && s.clVersion == s.cl.Version() {
		s.view.Rollback()
		return s.view, s.liveCache
	}
	s.availBuf = s.cl.AvailInto(s.availBuf)
	if s.view == nil {
		s.view = NewAvailView(s.availBuf)
	} else {
		s.view.Reset(s.availBuf)
	}
	s.view.refMode = s.forceRefView
	live = s.cl.LiveNodes()
	if live < s.cl.N() {
		s.eligBuf = s.cl.EligibleInto(s.eligBuf)
		s.view.SetEligible(s.eligBuf)
	}
	s.clVersion = s.cl.Version()
	s.liveCache = live
	return s.view, live
}

// observeEarlyReject records the stage spans for an admission test that
// ended before planning began (fleet down, fast-reject): the elapsed time
// is all candidate work, and the plan/check stages contribute explicit
// zero-length spans so every submit yields exactly one sample per stage.
func (s *Scheduler) observeEarlyReject(so StageObserver, t0 time.Time) {
	if so == nil {
		return
	}
	so.ObserveStage(StageCandidate, time.Since(t0).Seconds())
	so.ObserveStage(StagePlan, 0)
	so.ObserveStage(StageCheck, 0)
}

// SetNodeState transitions one cluster node and, on a capacity loss
// (draining or down), re-runs the schedulability test over the whole
// waiting queue: tasks whose plans no longer fit the remaining live nodes
// are removed and returned as displaced — their original accept stands in
// the counters, but they will never commit here. Restoring a node never
// displaces anything (capacity only grows); waiting plans are left as
// planned and re-optimised naturally on the next arrival.
func (s *Scheduler) SetNodeState(id int, st cluster.NodeState, now float64) (displaced []*Task, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cl.SetNodeState(id, st); err != nil {
		// Bad node id / state is a caller mistake, not an engine fault: tag
		// it so the wire layer maps it to 400 rather than 500.
		return nil, fmt.Errorf("%v: %w", err, errs.ErrBadConfig)
	}
	if st == cluster.NodeUp {
		return nil, nil
	}
	return s.revalidateLocked(now)
}

// AddNode grows the cluster by one node with the given cost coefficients,
// available from availFrom, and returns its id. Waiting plans are
// untouched — the new capacity is picked up by the next admission test.
func (s *Scheduler) AddNode(nc dlt.NodeCost, availFrom float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.AddNode(nc, availFrom)
}

// Revalidate re-runs the schedulability test for every waiting task
// against the current fleet, in policy order, and removes (returning) the
// tasks that no longer fit. It is the capacity-loss analogue of Submit's
// whole-queue test: kept tasks get fresh plans stacked on the live nodes,
// displaced tasks keep their accept counted but will never commit.
func (s *Scheduler) Revalidate(now float64) (displaced []*Task, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revalidateLocked(now)
}

func (s *Scheduler) revalidateLocked(now float64) (displaced []*Task, err error) {
	if len(s.waiting) == 0 {
		return nil, nil
	}
	view, live := s.freshViewLocked()
	s.pctx = PlanContext{P: s.cl.Params(), N: live, Now: now, View: view, Costs: s.cl.Costs()}
	keep := s.scratch[:0]
	newPlans := s.spare
	for _, w := range s.waiting {
		if live == 0 {
			displaced = append(displaced, w)
			continue
		}
		pl, perr := s.part.Plan(&s.pctx, w)
		if perr != nil {
			if errors.Is(perr, ErrInfeasible) {
				displaced = append(displaced, w)
				continue
			}
			clear(newPlans)
			clear(keep)
			return nil, perr
		}
		absD := w.AbsDeadline()
		if pl.Est > absD+deadlineEps(absD) {
			displaced = append(displaced, w)
			continue
		}
		view.Apply(pl.Nodes, pl.Release)
		newPlans[w.ID] = pl
		keep = append(keep, w)
	}
	old := s.waiting
	s.waiting = keep
	clear(old)
	s.scratch = old
	oldPlans := s.plans
	s.plans = newPlans
	clear(oldPlans)
	s.spare = oldPlans
	s.queueLen.Store(int64(len(s.waiting)))
	s.queueGen++
	return displaced, nil
}

// storeMax raises the atomic to v if v exceeds the current value.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (s *Scheduler) reject(now float64, t *Task) {
	s.rejects.Add(1)
	if s.obs != nil {
		s.obs.OnReject(now, t)
	}
}

// NextCommit returns the earliest plan start time among waiting tasks, or
// ok=false when the queue is empty. The driver schedules a commit event at
// this instant.
func (s *Scheduler) NextCommit() (at float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at = math.Inf(1)
	for _, pl := range s.plans {
		if fs := pl.FirstStart(); fs < at {
			at = fs
		}
	}
	return at, !math.IsInf(at, 1)
}

// commitEps tolerates event-time rounding when deciding whether a plan's
// first transmission is due.
const commitEps = 1e-9

// CommitDue commits every waiting plan whose first transmission start is ≤
// now, in queue order, updating the cluster's release times and accounting.
// It returns the committed plans (possibly none).
func (s *Scheduler) CommitDue(now float64) ([]*Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stageObs := s.stageObs
	var t0 time.Time
	if stageObs != nil {
		t0 = time.Now()
	}
	var out []*Plan
	rest := s.waiting[:0]
	tol := commitEps * math.Max(1, math.Abs(now))
	// While the view is base-synced, fold each commit into its base
	// incrementally (O(nodes·log n)) instead of forcing the next admission
	// test to resnapshot and re-sort all N nodes. The tentative
	// assignments of the last test are rolled back first — CommitBase
	// mutates the base, not the tentative overlay. An error path below
	// leaves clVersion stale, which safely forces a full resync.
	synced := s.view != nil && !s.resyncEachUse && s.clVersion == s.cl.Version()
	if synced {
		s.view.Rollback()
	}
	for _, w := range s.waiting {
		pl := s.plans[w.ID]
		if pl == nil {
			return out, fmt.Errorf("rt: waiting task %d has no plan", w.ID)
		}
		if pl.FirstStart() <= now+tol {
			if err := s.cl.Commit(pl.Nodes, pl.Starts, pl.Release, pl.ReservedIdle); err != nil {
				return out, fmt.Errorf("rt: committing task %d: %w", w.ID, err)
			}
			if synced {
				s.view.CommitBase(pl.Nodes, pl.Release)
			}
			delete(s.plans, w.ID)
			s.commits.Add(1)
			if s.obs != nil {
				s.obs.OnCommit(now, pl)
			}
			out = append(out, pl)
			continue
		}
		rest = append(rest, w)
	}
	// Drop the stale tail references left behind by the in-place filter.
	tail := s.waiting[len(rest):]
	clear(tail)
	s.waiting = rest
	s.queueLen.Store(int64(len(rest)))
	if synced {
		s.clVersion = s.cl.Version()
	}
	if stageObs != nil && len(out) > 0 {
		stageObs.ObserveStage(StageCommit, time.Since(t0).Seconds())
	}
	return out, nil
}

// PlanFor returns the current plan for a waiting task, or nil.
func (s *Scheduler) PlanFor(taskID int64) *Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans[taskID]
}

// Stats is a consistent snapshot of the scheduler's admission counters.
type Stats struct {
	Arrivals    int // submitted tasks
	Accepts     int // admitted tasks
	Rejects     int // rejected tasks
	Commits     int // committed (started) tasks
	QueueLen    int // admitted-but-uncommitted tasks right now
	MaxQueueLen int // largest waiting-queue length observed
}

// RejectRatio returns Rejects/Arrivals, the paper's evaluation metric
// (0 when nothing has arrived).
func (st Stats) RejectRatio() float64 {
	if st.Arrivals == 0 {
		return 0
	}
	return float64(st.Rejects) / float64(st.Arrivals)
}

// Stats returns a snapshot of all admission counters. It is lock-free —
// each counter is read atomically, so a snapshot taken while submissions
// are in flight may be mid-update by one task (e.g. Arrivals incremented
// before the matching Accepts), but never blocks or delays admission. At
// quiescence the snapshot is exact.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Arrivals:    int(s.arrivals.Load()),
		Accepts:     int(s.accepts.Load()),
		Rejects:     int(s.rejects.Load()),
		Commits:     int(s.commits.Load()),
		QueueLen:    int(s.queueLen.Load()),
		MaxQueueLen: int(s.maxQueue.Load()),
	}
}
