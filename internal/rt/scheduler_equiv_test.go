package rt

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
)

// This file proves the tentpole's bit-for-bit claim end to end: a
// production scheduler — persistent treap-indexed view, incremental
// base sync, infeasibility fast-reject — must emit exactly the same
// admission decisions, plans, commits, displacements and counters as a
// scheduler forced into the legacy behaviour (full re-sorted snapshot per
// submit via the reference full-sort view, no fast-reject) over identical
// randomized streams with fleet churn and hopeless tasks mixed in.

func equivClusters(t *testing.T, n int, hetero bool) (*cluster.Cluster, *cluster.Cluster) {
	t.Helper()
	mk := func() *cluster.Cluster {
		if !hetero {
			cl, err := cluster.New(n, baseline)
			if err != nil {
				t.Fatal(err)
			}
			return cl
		}
		costs := make([]dlt.NodeCost, n)
		for i := range costs {
			costs[i] = dlt.NodeCost{
				Cms: 0.6 + 0.05*float64(i%5),
				Cps: 70 + 9*float64((i*7)%13),
			}
		}
		cl, err := cluster.NewHetero(costs)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	return mk(), mk()
}

func planEqual(a, b *Plan) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return slices.Equal(a.Nodes, b.Nodes) &&
		slices.Equal(a.Starts, b.Starts) &&
		slices.Equal(a.Release, b.Release) &&
		slices.Equal(a.Alphas, b.Alphas) &&
		a.Est == b.Est &&
		a.ReservedIdle == b.ReservedIdle &&
		a.SimultaneousStart == b.SimultaneousStart &&
		a.Rounds == b.Rounds
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// equivDrive runs the paired stream. Task generation deliberately mixes
// three regimes: clearly feasible tasks, tasks whose deadline is below the
// bare transmission time (the γ ≤ 0 fast-reject), and tasks that are
// hopeless only because the committed queue occupies the cluster (the
// order-statistic r_k fast-reject) — plus node drain/fail/restore and
// fleet growth, which force full view resyncs between incremental ones.
func equivDrive(t *testing.T, pol Policy, part Partitioner, hetero bool, seed uint64, tasks int) {
	t.Helper()
	const n = 12
	cla, clb := equivClusters(t, n, hetero)
	a := NewScheduler(cla, pol, part)
	b := NewScheduler(clb, pol, part)
	b.noFastReject = true
	b.forceRefView = true
	b.resyncEachUse = true

	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	now := 0.0
	states := []cluster.NodeState{cluster.NodeUp, cluster.NodeDraining, cluster.NodeDown}
	for i := 0; i < tasks; i++ {
		now += rng.ExpFloat64() * 500
		if i > 0 && i%25 == 0 {
			id := rng.IntN(a.Cluster().N())
			st := states[rng.IntN(len(states))]
			da, ea := a.SetNodeState(id, st, now)
			db, eb := b.SetNodeState(id, st, now)
			if !errEqual(ea, eb) {
				t.Fatalf("step %d: SetNodeState errors diverge: %v vs %v", i, ea, eb)
			}
			if len(da) != len(db) {
				t.Fatalf("step %d: displaced %d vs %d tasks", i, len(da), len(db))
			}
			for j := range da {
				if da[j].ID != db[j].ID {
					t.Fatalf("step %d: displaced[%d] = %d vs %d", i, j, da[j].ID, db[j].ID)
				}
			}
		}
		if i > 0 && i%80 == 0 {
			nc := dlt.NodeCost{Cms: 0.8, Cps: 95}
			ida, ea := a.AddNode(nc, now)
			idb, eb := b.AddNode(nc, now)
			if !errEqual(ea, eb) || ida != idb {
				t.Fatalf("step %d: AddNode diverges: (%d,%v) vs (%d,%v)", i, ida, ea, idb, eb)
			}
		}

		sigma := 1 + 350*rng.Float64()
		var d float64
		switch rng.IntN(4) {
		case 0: // hopeless by transmission time alone (γ ≤ 0 bound)
			d = sigma * baseline.Cms * (0.2 + 0.7*rng.Float64())
		case 1: // tight: hopeless iff the committed queue is in the way
			d = baseline.ExecTime(sigma, n) * (0.9 + 0.3*rng.Float64())
		default: // generous
			d = 1500 + 6000*rng.Float64()
		}
		if d <= 0 {
			d = 1
		}
		task := &Task{ID: int64(i + 1), Arrival: now, Sigma: sigma, RelDeadline: d}
		if rng.IntN(6) > 0 {
			task.UserN = rng.IntN(a.Cluster().N() + 1) // 0 occasionally: clean reject path
		}
		ta, tb := *task, *task

		oka, ea := a.Submit(&ta, now)
		okb, eb := b.Submit(&tb, now)
		if oka != okb || !errEqual(ea, eb) {
			t.Fatalf("step %d (task %+v): Submit diverges: (%v,%v) vs (%v,%v)", i, task, oka, ea, okb, eb)
		}
		if !planEqual(a.PlanFor(task.ID), b.PlanFor(task.ID)) {
			t.Fatalf("step %d: plans diverge for task %d:\n a=%+v\n b=%+v",
				i, task.ID, a.PlanFor(task.ID), b.PlanFor(task.ID))
		}
		if sa, sb := a.Stats(), b.Stats(); sa != sb {
			t.Fatalf("step %d: stats diverge: %+v vs %+v", i, sa, sb)
		}

		pa, ea := a.CommitDue(now)
		pb, eb := b.CommitDue(now)
		if !errEqual(ea, eb) || len(pa) != len(pb) {
			t.Fatalf("step %d: CommitDue diverges: (%d,%v) vs (%d,%v)", i, len(pa), ea, len(pb), eb)
		}
		for j := range pa {
			if pa[j].Task.ID != pb[j].Task.ID || !planEqual(pa[j], pb[j]) {
				t.Fatalf("step %d: committed plan %d diverges:\n a=%+v\n b=%+v", i, j, pa[j], pb[j])
			}
		}
	}

	// Drain both queues and require identical commit tails.
	for a.Stats().QueueLen > 0 || b.Stats().QueueLen > 0 {
		ata, oka := a.NextCommit()
		atb, okb := b.NextCommit()
		if oka != okb || (oka && ata != atb) {
			t.Fatalf("drain: NextCommit diverges: (%v,%v) vs (%v,%v)", ata, oka, atb, okb)
		}
		if !oka {
			t.Fatalf("stuck queues: %d vs %d", a.Stats().QueueLen, b.Stats().QueueLen)
		}
		now = math.Max(now, ata)
		pa, ea := a.CommitDue(now)
		pb, eb := b.CommitDue(now)
		if !errEqual(ea, eb) || len(pa) != len(pb) {
			t.Fatalf("drain: CommitDue diverges: (%d,%v) vs (%d,%v)", len(pa), ea, len(pb), eb)
		}
		for j := range pa {
			if pa[j].Task.ID != pb[j].Task.ID || !planEqual(pa[j], pb[j]) {
				t.Fatalf("drain: committed plan %d diverges", j)
			}
		}
	}
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Fatalf("final stats diverge: %+v vs %+v", sa, sb)
	}
	if sa := a.Stats(); sa.Accepts == 0 || sa.Rejects == 0 {
		t.Fatalf("degenerate stream (accepts=%d rejects=%d): wanted both paths exercised", sa.Accepts, sa.Rejects)
	}
}

func TestSchedulerIndexedEquivalence(t *testing.T) {
	parts := []Partitioner{IITDLT{}, OPR{}, OPR{AllNodes: true}, UserSplit{}}
	for _, hetero := range []bool{false, true} {
		for _, pol := range []Policy{EDF, FIFO} {
			for _, part := range parts {
				name := fmt.Sprintf("%s/%s/hetero=%v", part.Name(), pol, hetero)
				t.Run(name, func(t *testing.T) {
					equivDrive(t, pol, part, hetero, 1000+uint64(len(name)), 400)
				})
			}
		}
	}
}

// TestFastRejectSoundness is the direct property: whenever FastReject
// fires against a committed state, the full admission path must reject the
// same task — Plan returns ErrInfeasible, or the returned plan's estimate
// fails the scheduler's deadline check (UserSplit leaves that check to the
// scheduler). (The converse — FastReject may miss hopeless tasks — is
// fine; soundness is what keeps decisions identical.)
func TestFastRejectSoundness(t *testing.T) {
	parts := []Partitioner{IITDLT{}, OPR{}, OPR{AllNodes: true}, UserSplit{}}
	rng := rand.New(rand.NewPCG(7, 77))
	for _, hetero := range []bool{false, true} {
		for trial := 0; trial < 600; trial++ {
			n := 2 + rng.IntN(14)
			cla, _ := equivClusters(t, n, hetero)
			avail := make([]float64, n)
			for i := range avail {
				avail[i] = rng.Float64() * 8000
			}
			view := NewAvailView(avail)
			ctx := PlanContext{P: cla.Params(), N: n, Now: rng.Float64() * 2000, View: view, Costs: cla.Costs()}
			task := &Task{
				ID:          1,
				Arrival:     ctx.Now * rng.Float64(),
				Sigma:       1 + 400*rng.Float64(),
				RelDeadline: 10 + 7000*rng.Float64(),
				UserN:       rng.IntN(n + 1),
			}
			for _, part := range parts {
				fr := part.(FastRejecter)
				if !fr.FastReject(&ctx, task) {
					continue
				}
				pl, err := part.Plan(&ctx, task)
				if err == ErrInfeasible {
					continue
				}
				if err != nil {
					t.Fatalf("%s hetero=%v: FastReject fired but Plan hard-errored: %v (task %+v)",
						part.Name(), hetero, err, task)
				}
				absD := task.AbsDeadline()
				if pl.Est > absD+deadlineEps(absD) {
					continue // the scheduler's deadline check rejects it
				}
				t.Fatalf("%s hetero=%v: FastReject fired but the full path admits (Est=%v absD=%v, task %+v, avail %v, now %v)",
					part.Name(), hetero, pl.Est, absD, task, avail, ctx.Now)
			}
		}
	}
}
