package rt

import (
	"math"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
)

func newSched(t *testing.T, n int, pol Policy, part Partitioner) *Scheduler {
	t.Helper()
	cl, err := cluster.New(n, baseline)
	if err != nil {
		t.Fatal(err)
	}
	return NewScheduler(cl, pol, part)
}

func TestSubmitAcceptsFeasibleTask(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0)
	if err != nil || !ok {
		t.Fatalf("Submit = %v, %v", ok, err)
	}
	if st := s.Stats(); st.Arrivals != 1 || st.Accepts != 1 || st.Rejects != 0 {
		t.Fatalf("counters: %d/%d/%d", st.Arrivals, st.Accepts, st.Rejects)
	}
	if st := s.Stats(); st.QueueLen != 1 {
		t.Fatalf("QueueLen = %d", st.QueueLen)
	}
	if pl := s.PlanFor(1); pl == nil || pl.Task.ID != 1 {
		t.Fatalf("PlanFor(1) = %v", pl)
	}
}

func TestSubmitRejectsInfeasibleTask(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	// Deadline below the transmission time of the data.
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("infeasible task accepted")
	}
	if st := s.Stats(); st.Rejects != 1 || st.QueueLen != 0 {
		t.Fatalf("rejects=%d queue=%d", st.Rejects, st.QueueLen)
	}
	if s.Stats().RejectRatio() != 1 {
		t.Fatalf("RejectRatio = %v", s.Stats().RejectRatio())
	}
}

func TestSubmitValidatesInput(t *testing.T) {
	s := newSched(t, 4, EDF, IITDLT{})
	if _, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: -1, RelDeadline: 10}, 0); err == nil {
		t.Fatalf("invalid task must error")
	}
	if _, err := s.Submit(&Task{ID: 1, Arrival: 10, Sigma: 1, RelDeadline: 10}, 0); err == nil {
		t.Fatalf("submitting before arrival must error")
	}
	ok, err := s.Submit(&Task{ID: 7, Arrival: 0, Sigma: 1, RelDeadline: 1e6}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, err := s.Submit(&Task{ID: 7, Arrival: 0, Sigma: 1, RelDeadline: 1e6}, 0); err == nil {
		t.Fatalf("duplicate waiting ID must error")
	}
}

func TestRejectionKeepsExistingSchedule(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	// Fill the cluster with a heavy task whose deadline forces all 16
	// nodes (E(2000,16) ≈ 13589) and precedes the next task's under EDF.
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 2000, RelDeadline: 14000}, 0)
	if err != nil || !ok {
		t.Fatalf("heavy task: %v %v", ok, err)
	}
	before := s.PlanFor(1)
	// A second heavy task with a slightly later deadline cannot fit behind
	// the first.
	ok, err = s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 2000, RelDeadline: 15000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("expected rejection")
	}
	after := s.PlanFor(1)
	if after == nil || after != before {
		t.Fatalf("rejection must not replace existing plans")
	}
	if st := s.Stats(); st.QueueLen != 1 {
		t.Fatalf("queue corrupted by rejection: %d", st.QueueLen)
	}
}

func TestEDFReordersQueue(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	// Task 1: loose deadline, arrives first.
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 400, RelDeadline: 1e6}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Task 2: much tighter deadline, arrives second; EDF plans it first so
	// it gets the idle nodes.
	ok, err = s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0)
	if err != nil || !ok {
		t.Fatalf("EDF should accept the tighter task: %v %v", ok, err)
	}
	p1, p2 := s.PlanFor(1), s.PlanFor(2)
	if p2.FirstStart() > p1.FirstStart() {
		t.Fatalf("EDF should start the tight task first: %v vs %v",
			p2.FirstStart(), p1.FirstStart())
	}
	if p2.Est > p2.Task.AbsDeadline()+1e-6 {
		t.Fatalf("tight task misses deadline after reordering")
	}
}

func TestFIFOKeepsArrivalOrder(t *testing.T) {
	s := newSched(t, 16, FIFO, IITDLT{})
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 400, RelDeadline: 1e6}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Tighter task arrives later: FIFO plans it behind task 1 and may have
	// to reject it even though EDF would save it.
	ok, err = s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		p1, p2 := s.PlanFor(1), s.PlanFor(2)
		if p2.FirstStart() < p1.FirstStart()-1e-9 {
			t.Fatalf("FIFO must not start a later arrival first")
		}
	} else if s.Stats().Rejects != 1 {
		t.Fatalf("rejection not counted")
	}
}

func TestCommitLifecycle(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	at, hasCommit := s.NextCommit()
	if !hasCommit || at != 0 {
		t.Fatalf("NextCommit = %v,%v; want 0,true", at, hasCommit)
	}
	plans, err := s.CommitDue(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Task.ID != 1 {
		t.Fatalf("CommitDue = %v", plans)
	}
	if st := s.Stats(); st.QueueLen != 0 || st.Commits != 1 {
		t.Fatalf("queue=%d commits=%d", st.QueueLen, st.Commits)
	}
	if _, has := s.NextCommit(); has {
		t.Fatalf("no commits should remain")
	}
	// Cluster must now show the committed usage.
	avails := s.Cluster().AvailTimes()
	busy := 0
	for _, a := range avails {
		if a > 0 {
			busy++
		}
	}
	if busy != len(plans[0].Nodes) {
		t.Fatalf("%d nodes busy, want %d", busy, len(plans[0].Nodes))
	}
}

func TestCommitNotDueEarly(t *testing.T) {
	s := newSched(t, 4, EDF, IITDLT{})
	// Occupy the whole cluster first (ñ_min = 4 for this deadline) so the
	// next task starts later.
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 500, RelDeadline: 13000}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, err := s.CommitDue(0); err != nil {
		t.Fatal(err)
	}
	ok, err = s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 500, RelDeadline: 30000}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	at, has := s.NextCommit()
	if !has || at <= 0 {
		t.Fatalf("second task should start later, NextCommit=%v", at)
	}
	plans, err := s.CommitDue(at / 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 0 {
		t.Fatalf("committed before due: %v", plans)
	}
	plans, err = s.CommitDue(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("due commit missed")
	}
}

func TestWaitingTaskReplannedOnArrival(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 800, RelDeadline: 1e8}, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, err := s.CommitDue(0); err != nil { // commit the running task
		t.Fatal(err)
	}
	ok, err = s.Submit(&Task{ID: 2, Arrival: 10, Sigma: 400, RelDeadline: 1e8}, 10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	planBefore := s.PlanFor(2)
	// A new arrival with an earlier deadline forces task 2 to be replanned.
	ok, err = s.Submit(&Task{ID: 3, Arrival: 20, Sigma: 100, RelDeadline: 40000}, 20)
	if err != nil || !ok {
		t.Fatal(err)
	}
	planAfter := s.PlanFor(2)
	if planAfter == planBefore {
		t.Fatalf("waiting task plan must be rebuilt on arrival")
	}
}

type countingObs struct {
	accepts, rejects, commits int
	lastEst                   float64
}

func (c *countingObs) OnAccept(now float64, t *Task, p *Plan) { c.accepts++; c.lastEst = p.Est }
func (c *countingObs) OnReject(now float64, t *Task)          { c.rejects++ }
func (c *countingObs) OnCommit(now float64, p *Plan)          { c.commits++ }

func TestObserverCallbacks(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	obs := &countingObs{}
	s.SetObserver(obs)
	if ok, _ := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0); !ok {
		t.Fatal("accept failed")
	}
	if ok, _ := s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 200, RelDeadline: 201}, 0); ok {
		t.Fatal("should reject")
	}
	if _, err := s.CommitDue(0); err != nil {
		t.Fatal(err)
	}
	if obs.accepts != 1 || obs.rejects != 1 || obs.commits != 1 {
		t.Fatalf("observer saw %d/%d/%d", obs.accepts, obs.rejects, obs.commits)
	}
	if obs.lastEst <= 0 {
		t.Fatalf("observer plan estimate missing")
	}
}

// TestNoAdmittedDeadlineMiss floods a small cluster and verifies the
// paper's correctness property end to end at the scheduler level: every
// committed plan's exact dispatch meets its absolute deadline.
func TestNoAdmittedDeadlineMiss(t *testing.T) {
	for _, pol := range []Policy{EDF, FIFO} {
		for _, part := range []Partitioner{IITDLT{}, OPR{}, UserSplit{}} {
			s := newSched(t, 8, pol, part)
			now := 0.0
			id := int64(0)
			for i := 0; i < 400; i++ {
				id++
				task := &Task{
					ID:          id,
					Arrival:     now,
					Sigma:       50 + float64((i*37)%400),
					RelDeadline: 3000 + float64((i*113)%4000),
				}
				if nmin, feas := dlt.UserSplitMinNodes(baseline, task.Sigma, task.RelDeadline); feas && nmin <= 8 {
					task.UserN = nmin + int(id)%(8-nmin+1)
				}
				if _, err := s.Submit(task, now); err != nil {
					t.Fatalf("%v/%s: %v", pol, part.Name(), err)
				}
				plans, err := s.CommitDue(now)
				if err != nil {
					t.Fatalf("%v/%s: %v", pol, part.Name(), err)
				}
				checkPlansMeetDeadlines(t, plans)
				now += 150
			}
			// Drain the queue.
			for s.Stats().QueueLen > 0 {
				at, ok := s.NextCommit()
				if !ok {
					t.Fatalf("queue nonempty but no commit pending")
				}
				now = math.Max(now, at)
				plans, err := s.CommitDue(now)
				if err != nil {
					t.Fatal(err)
				}
				checkPlansMeetDeadlines(t, plans)
			}
		}
	}
}

func checkPlansMeetDeadlines(t *testing.T, plans []*Plan) {
	t.Helper()
	for _, pl := range plans {
		absD := pl.Task.AbsDeadline()
		if pl.Est > absD+1e-6*math.Max(1, absD) {
			t.Fatalf("committed plan estimate %v misses deadline %v", pl.Est, absD)
		}
		if pl.Rounds == 1 {
			// The exact dispatch completion is bounded by the estimate for
			// every single-round partitioner (Theorem 4 for dlt-iit, exact
			// equality for OPR at r_n, exact recurrence for user-split), so
			// it must also meet the deadline.
			d, err := dlt.SimulateDispatch(baseline, pl.Task.Sigma, pl.Starts, pl.Alphas)
			if err != nil {
				t.Fatal(err)
			}
			if d.Completion > absD+1e-6*math.Max(1, absD) {
				t.Fatalf("committed plan actually misses deadline: %v > %v", d.Completion, absD)
			}
		}
	}
}
