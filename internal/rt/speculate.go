package rt

import (
	"errors"
	"math"
	"time"

	"rtdls/internal/dlt"
)

// This file is the scheduler half of optimistic two-phase admission.
//
// Phase 1 runs lock-free: a submitting goroutine captures an epoch-stamped
// snapshot of the committed state (SnapshotInto), simulates the due-commit
// sweep (SpecContext.CommitDue) and runs the full Fig. 2 schedulability
// test (Speculate) against a private AvailView with per-goroutine scratch
// buffers — candidate selection, planning and the deadline check all
// happen without the scheduler lock.
//
// Phase 2 is the short critical section: the service compares the snapshot
// epoch against the live one (EpochIs) under its lock and, if nothing
// changed, installs the precomputed outcome (InstallSpeculativeAccept /
// InstallSpeculativeReject) — the in-lock window shrinks from "the whole
// admission test" to "an epoch comparison plus a buffer swap". On an epoch
// mismatch the speculation is discarded and the submission replays through
// the ordinary serialized Submit, so every decision is still made against
// serialized state and the decision stream is bit-for-bit what a purely
// serialized execution would produce.

// Epoch identifies one version of the scheduler's decision-relevant state:
// the cluster mutation counter (commits, node churn, fleet growth) plus a
// queue generation counter covering waiting-queue changes that leave the
// cluster untouched (accepts). Rejections are epoch-neutral — they change
// nothing a later admission test reads — which is exactly why reject-heavy
// traffic speculates with almost no conflicts.
type Epoch struct {
	cluster uint64
	queue   uint64
}

// SpecStages carries the per-stage wall-clock spans measured during a
// speculative admission test. They are recorded into the stage histograms
// only when the speculation installs, so every scheduler-reaching submit
// still contributes exactly one sample per stage.
type SpecStages struct {
	Cand  float64 // seconds in candidate selection
	Plan  float64 // seconds in partitioner calls
	Check float64 // seconds in the schedulability check
	Timed bool    // a StageObserver was installed at snapshot time
}

// SpecOutcome classifies one speculative admission test.
type SpecOutcome uint8

const (
	// SpecFallback: the speculation hit a case it cannot decide off-lock
	// (duplicate task id in the snapshot, a hard partitioner error) — the
	// submission must replay through the serialized path, which reproduces
	// the identical outcome under the lock.
	SpecFallback SpecOutcome = iota
	// SpecReject: the schedulability test rejected (fleet down,
	// fast-reject, infeasible, or a deadline miss in the tentative
	// schedule). Rejections leave the serialized state untouched, so an
	// unchanged epoch lets the reject install as-is.
	SpecReject
	// SpecAccept: every task in the tentative schedule meets its deadline;
	// the precomputed queue and plans are ready to install.
	SpecAccept
)

// SpecContext is one goroutine's speculation scratch: the epoch-stamped
// snapshot, a private availability view, and the candidate/plan buffers the
// off-lock test runs against. Contexts are reused via a pool; none of the
// state survives a snapshot except the allocations.
type SpecContext struct {
	epoch   Epoch
	avail   []float64 // committed release times (evolves as dues fold in)
	elig    []bool    // placement eligibility mask (hasElig only)
	hasElig bool
	live    int
	p       dlt.Params
	costs   *dlt.CostModel
	timed   bool

	// The snapshot's waiting queue and plans, parallel slices. CommitDue
	// and an accepting Speculate evolve them exactly as the serialized
	// scheduler would, so a batch speculates task after task against the
	// same context.
	waiting []*Task
	plans   []*Plan

	view   *AvailView
	synced bool // view currently reflects avail/elig (Reset done)
	pctx   PlanContext

	// Double buffers for the candidate queue under test; on accept they
	// swap with waiting/plans.
	cand      []*Task
	candPlans []*Plan

	plan   *Plan // the submitted task's own plan (SpecAccept)
	stages SpecStages
}

// Epoch returns the snapshot's epoch stamp.
func (sc *SpecContext) Epoch() Epoch { return sc.epoch }

// QueueLen returns the current length of the speculated waiting queue —
// after CommitDue it is exactly what the serialized busy check would see.
func (sc *SpecContext) QueueLen() int { return len(sc.waiting) }

// Waiting returns the speculated waiting queue (valid until the next
// CommitDue/Speculate call against this context).
func (sc *SpecContext) Waiting() []*Task { return sc.waiting }

// Plans returns the plans parallel to Waiting.
func (sc *SpecContext) Plans() []*Plan { return sc.plans }

// AcceptedPlan returns the submitted task's plan after a SpecAccept.
func (sc *SpecContext) AcceptedPlan() *Plan { return sc.plan }

// Stages returns the stage spans of the last Speculate call.
func (sc *SpecContext) Stages() SpecStages { return sc.stages }

// SnapshotInto captures an epoch-stamped copy of the committed state: the
// per-node release times, the eligibility mask, and the waiting queue with
// its plans. Task and Plan objects are immutable after creation, so the
// element copies share them safely with the live scheduler. The context's
// view is marked stale and rebuilt lazily by the first CommitDue.
func (s *Scheduler) SnapshotInto(sc *SpecContext) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Epoch{cluster: s.cl.Version(), queue: s.queueGen}
	if sc.synced && e == sc.epoch {
		// The epoch hasn't moved since this context's last snapshot, so the
		// committed base, eligibility mask and waiting queue it holds —
		// including its own incremental CommitDue work — are still exact.
		// Skipping the refresh avoids the O(n log n) view rebuild, which is
		// what makes reject storms (no epoch movement at all) speculate at
		// nearly the serialized per-op cost with none of the serialization.
		sc.plan = nil
		return
	}
	sc.epoch = e
	sc.avail = s.cl.AvailInto(sc.avail)
	sc.live = s.cl.LiveNodes()
	sc.hasElig = sc.live < s.cl.N()
	if sc.hasElig {
		sc.elig = s.cl.EligibleInto(sc.elig)
	}
	sc.p = s.cl.Params()
	sc.costs = s.cl.Costs()
	sc.timed = s.stageObs != nil
	sc.waiting = append(sc.waiting[:0], s.waiting...)
	sc.plans = sc.plans[:0]
	for _, w := range s.waiting {
		sc.plans = append(sc.plans, s.plans[w.ID])
	}
	sc.synced = false
	sc.plan = nil
}

// EpochIs reports whether the scheduler's decision-relevant state still
// matches the snapshot epoch. The caller (the service) holds its own outer
// lock, so a true answer stays true until that lock is released.
func (s *Scheduler) EpochIs(e Epoch) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Version() == e.cluster && s.queueGen == e.queue
}

// syncView brings the private view in line with the snapshot: a full Reset
// on first use after SnapshotInto, a cheap undo-log Rollback afterwards
// (exactly the scheduler's own freshViewLocked discipline).
func (sc *SpecContext) syncView() {
	if sc.synced {
		sc.view.Rollback()
		return
	}
	if sc.view == nil {
		sc.view = NewAvailView(sc.avail)
	} else {
		sc.view.Reset(sc.avail)
	}
	if sc.hasElig {
		sc.view.SetEligible(sc.elig)
	}
	sc.synced = true
}

// CommitDue simulates the due-commit sweep the serialized submit performs
// before testing a new arrival: every speculated plan whose first
// transmission is due by now folds into the view's base (the release times
// cl.Commit would install) and leaves the waiting queue. It returns false
// on an internal anomaly (a waiting task without a plan), which the caller
// must treat as a fallback.
func (sc *SpecContext) CommitDue(now float64) bool {
	sc.syncView()
	tol := commitEps * math.Max(1, math.Abs(now))
	rest := sc.waiting[:0]
	restPlans := sc.plans[:0]
	for i, w := range sc.waiting {
		pl := sc.plans[i]
		if pl == nil {
			return false
		}
		if pl.FirstStart() <= now+tol {
			sc.view.CommitBase(pl.Nodes, pl.Release)
			continue
		}
		rest = append(rest, w)
		restPlans = append(restPlans, pl)
	}
	sc.waiting = rest
	sc.plans = restPlans
	return true
}

// Speculate runs the full admission test for t off-lock against the
// context's speculated state (call CommitDue(now) first). It mirrors the
// serialized Submit decision for decision: same candidate order, same
// partitioner calls against an equivalent view, same deadline tolerance.
// On SpecAccept the context's waiting queue and plans advance to the
// accepted schedule, so a batch can keep speculating subsequent tasks.
//
// The scheduler's policy and partitioner are immutable after construction,
// so reading them without the lock is safe; nothing else of the live
// scheduler is touched.
func (s *Scheduler) Speculate(sc *SpecContext, t *Task, now float64) SpecOutcome {
	sc.stages = SpecStages{Timed: sc.timed}
	var t0 time.Time
	if sc.timed {
		t0 = time.Now()
	}
	// A duplicate id is a hard error on the serialized path; produce it
	// there rather than deciding off-lock.
	for _, w := range sc.waiting {
		if w.ID == t.ID {
			return SpecFallback
		}
	}
	sc.view.Rollback() // discard tentative applies of a prior speculation
	if sc.live == 0 {
		sc.observeEarly(t0)
		return SpecReject
	}
	sc.pctx = PlanContext{P: sc.p, N: sc.live, Now: now, View: sc.view, Costs: sc.costs}
	if !s.noFastReject {
		if fr, ok := s.part.(FastRejecter); ok && fr.FastReject(&sc.pctx, t) {
			sc.observeEarly(t0)
			return SpecReject
		}
	}
	cand := sc.cand[:0]
	inserted := false
	for _, w := range sc.waiting {
		if !inserted && s.pol.Less(t, w) {
			cand = append(cand, t)
			inserted = true
		}
		cand = append(cand, w)
	}
	if !inserted {
		cand = append(cand, t)
	}
	sc.cand = cand
	var candDur, planDur time.Duration
	if sc.timed {
		candDur = time.Since(t0)
	}
	candPlans := sc.candPlans[:0]
	sc.candPlans = candPlans
	for _, ti := range cand {
		var pl *Plan
		var perr error
		if sc.timed {
			tp := time.Now()
			pl, perr = s.part.Plan(&sc.pctx, ti)
			planDur += time.Since(tp)
		} else {
			pl, perr = s.part.Plan(&sc.pctx, ti)
		}
		if perr != nil {
			if errors.Is(perr, ErrInfeasible) {
				sc.observeFull(t0, candDur, planDur)
				return SpecReject
			}
			return SpecFallback // hard error: the serialized replay reproduces it
		}
		absD := ti.AbsDeadline()
		if pl.Est > absD+deadlineEps(absD) {
			sc.observeFull(t0, candDur, planDur)
			return SpecReject
		}
		sc.view.Apply(pl.Nodes, pl.Release)
		candPlans = append(candPlans, pl)
		if ti == t {
			sc.plan = pl
		}
	}
	sc.candPlans = candPlans
	sc.observeFull(t0, candDur, planDur)
	// Adopt the accepted schedule: the candidate buffers become the
	// context's waiting state, the old ones the next scratch.
	sc.waiting, sc.cand = sc.cand, sc.waiting
	sc.plans, sc.candPlans = sc.candPlans, sc.plans
	return SpecAccept
}

// observeEarly records the stage spans of a test that ended before
// planning, mirroring the serialized observeEarlyReject.
func (sc *SpecContext) observeEarly(t0 time.Time) {
	if !sc.timed {
		return
	}
	sc.stages.Cand = time.Since(t0).Seconds()
	sc.stages.Plan = 0
	sc.stages.Check = 0
}

// observeFull splits the elapsed test time into the candidate / plan /
// check spans, mirroring the serialized Submit's deferred observation.
func (sc *SpecContext) observeFull(t0 time.Time, candDur, planDur time.Duration) {
	if !sc.timed {
		return
	}
	sc.stages.Cand = candDur.Seconds()
	sc.stages.Plan = planDur.Seconds()
	check := time.Since(t0) - candDur - planDur
	if check < 0 {
		check = 0
	}
	sc.stages.Check = check.Seconds()
}

// InstallSpeculativeAccept installs a precomputed accept under the lock:
// the speculated candidate queue and plans replace the live ones through
// the same double-buffer swap the serialized accept performs. The caller
// has validated the epoch under its own outer lock and already committed
// the due plans, so cand/plans are exactly what the serialized test would
// have produced. Stage spans recorded during speculation are emitted here,
// keeping one sample per stage per scheduler-reaching submit.
func (s *Scheduler) InstallSpeculativeAccept(t *Task, now float64, cand []*Task, plans []*Plan, st SpecStages) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arrivals.Add(1)
	newCand := append(s.scratch[:0], cand...)
	newPlans := s.spare
	for i, ti := range newCand {
		newPlans[ti.ID] = plans[i]
	}
	old := s.waiting
	s.waiting = newCand
	clear(old)
	s.scratch = old
	oldPlans := s.plans
	s.plans = newPlans
	clear(oldPlans)
	s.spare = oldPlans
	s.accepts.Add(1)
	q := int64(len(s.waiting))
	s.queueLen.Store(q)
	storeMax(&s.maxQueue, q)
	s.queueGen++
	s.emitStagesLocked(st)
	if s.obs != nil {
		s.obs.OnAccept(now, t, newPlans[t.ID])
	}
}

// InstallSpeculativeReject installs a precomputed scheduler-level reject
// under the lock. Rejections are epoch-neutral — the live queue, plans and
// cluster are untouched — so only the counters, the observer callback and
// the stage samples land.
func (s *Scheduler) InstallSpeculativeReject(t *Task, now float64, st SpecStages) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arrivals.Add(1)
	s.reject(now, t)
	s.emitStagesLocked(st)
}

// emitStagesLocked replays the speculation's stage spans into the stage
// observer, if one is installed.
func (s *Scheduler) emitStagesLocked(st SpecStages) {
	if !st.Timed || s.stageObs == nil {
		return
	}
	s.stageObs.ObserveStage(StageCandidate, st.Cand)
	s.stageObs.ObserveStage(StagePlan, st.Plan)
	s.stageObs.ObserveStage(StageCheck, st.Check)
}
