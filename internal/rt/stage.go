package rt

// Stage labels one phase of the admission pipeline, matching the paper's
// Fig. 2 structure: on every arrival the scheduler (1) builds the candidate
// schedule over the processor available times, (2) partitions each task via
// the planning module, (3) checks every completion estimate against its
// deadline while applying tentative releases, and — asynchronously — (4)
// commits plans whose first transmission is due.
type Stage uint8

const (
	// StageCandidate: building the policy-ordered candidate list and
	// snapshotting the per-node available times.
	StageCandidate Stage = iota
	// StagePlan: the partitioning module's Plan calls across the candidate
	// schedule (node selection + load split).
	StagePlan
	// StageCheck: the schedulability check — deadline comparisons and
	// tentative availability updates around the planning calls.
	StageCheck
	// StageCommit: committing due plans (release-time bookkeeping).
	StageCommit

	// NumStages is the number of pipeline stages.
	NumStages = 4
)

// String returns the stage's metric label.
func (s Stage) String() string {
	switch s {
	case StageCandidate:
		return "candidate"
	case StagePlan:
		return "plan"
	case StageCheck:
		return "check"
	case StageCommit:
		return "commit"
	default:
		return "unknown"
	}
}

// StageObserver receives per-stage wall-clock timing spans from the
// scheduler: one ObserveStage call per stage per admission test (and one
// StageCommit span per commit batch). Implementations must be cheap and
// safe for concurrent use — the scheduler calls them with its lock held,
// once per Submit, on the hot path. The metrics layer implements it with
// atomic histograms.
type StageObserver interface {
	ObserveStage(stage Stage, seconds float64)
}
