package rt

import (
	"sync"
	"testing"

	"rtdls/internal/cluster"
)

// stageRecorder collects ObserveStage spans; guarded because the contract
// requires observers to be concurrency-safe.
type stageRecorder struct {
	mu    sync.Mutex
	spans map[Stage][]float64
}

func (r *stageRecorder) ObserveStage(stage Stage, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = make(map[Stage][]float64)
	}
	r.spans[stage] = append(r.spans[stage], seconds)
}

func (r *stageRecorder) count(stage Stage) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans[stage])
}

func TestStageObserverSpans(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	rec := &stageRecorder{}
	s.SetStageObserver(rec)

	// One accept, one reject: both run the full candidate/plan/check
	// pipeline.
	if ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0); err != nil || !ok {
		t.Fatalf("Submit = %v, %v", ok, err)
	}
	if ok, _ := s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 200, RelDeadline: 201}, 0); ok {
		t.Fatal("should reject")
	}
	for _, st := range []Stage{StageCandidate, StagePlan, StageCheck} {
		if got := rec.count(st); got != 2 {
			t.Fatalf("stage %v observed %d times, want 2", st, got)
		}
	}
	if got := rec.count(StageCommit); got != 0 {
		t.Fatalf("commit observed %d times before CommitDue", got)
	}

	if _, err := s.CommitDue(0); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(StageCommit); got != 1 {
		t.Fatalf("commit observed %d times, want 1", got)
	}
	// An empty commit sweep must not record a span.
	if _, err := s.CommitDue(1); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(StageCommit); got != 1 {
		t.Fatalf("empty CommitDue recorded a span (count %d)", got)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	for st, spans := range rec.spans {
		for _, sec := range spans {
			if sec < 0 {
				t.Fatalf("stage %v recorded negative span %g", st, sec)
			}
		}
	}
}

// TestStageSpansOnEarlyRejects is the regression test for the dropped-
// sample bug: rejects that resolve before planning begins — the whole
// fleet drained or down, or the infeasibility fast-reject — used to
// return before the deferred ObserveStage calls were armed, so those
// submits left no stage samples and the stage histograms drifted from
// rtdls_submits_total. Every submit must now contribute exactly one
// sample per admission stage, with explicit zero-length plan/check spans
// on the early paths.
func TestStageSpansOnEarlyRejects(t *testing.T) {
	s := newSched(t, 4, EDF, IITDLT{})
	rec := &stageRecorder{}
	s.SetStageObserver(rec)

	// Fast-reject path: the deadline is below the bare sequential
	// transmission time, so admission resolves at the index probe.
	if ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 1000, RelDeadline: 1}, 0); err != nil || ok {
		t.Fatalf("hopeless task: Submit = %v, %v", ok, err)
	}
	for _, st := range []Stage{StageCandidate, StagePlan, StageCheck} {
		if got := rec.count(st); got != 1 {
			t.Fatalf("after fast-reject: stage %v observed %d times, want 1", st, got)
		}
	}

	// Fleet-down path: no placeable node, rejected before the plan loop.
	for id := 0; id < 4; id++ {
		if _, err := s.SetNodeState(id, cluster.NodeDown, 0); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 100, RelDeadline: 5000}, 0); err != nil || ok {
		t.Fatalf("fleet-down task: Submit = %v, %v", ok, err)
	}
	for _, st := range []Stage{StageCandidate, StagePlan, StageCheck} {
		if got := rec.count(st); got != 2 {
			t.Fatalf("after fleet-down reject: stage %v observed %d times, want 2", st, got)
		}
	}

	// Both early paths do no planning or checking: their spans are the
	// explicit zeros, while the candidate span carries the elapsed time.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, st := range []Stage{StagePlan, StageCheck} {
		for i, sec := range rec.spans[st] {
			if sec != 0 {
				t.Fatalf("early reject %d: stage %v span = %g, want explicit 0", i, st, sec)
			}
		}
	}
	if st := s.Stats(); st.Rejects != 2 || st.Arrivals != 2 {
		t.Fatalf("stats = %+v, want 2 arrivals / 2 rejects", st)
	}
}

func TestStageObserverViaSetObserver(t *testing.T) {
	// A decision observer that also implements StageObserver is picked up
	// by plain SetObserver — the service layer installs its Metrics this
	// way.
	s := newSched(t, 4, EDF, IITDLT{})
	type both struct {
		countingObs
		stageRecorder
	}
	obs := &both{}
	s.SetObserver(obs)
	if ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 100, RelDeadline: 5000}, 0); err != nil || !ok {
		t.Fatalf("Submit = %v, %v", ok, err)
	}
	if obs.accepts != 1 {
		t.Fatalf("decision observer missed the accept")
	}
	if got := obs.count(StagePlan); got != 1 {
		t.Fatalf("stage observer missed plan span (count %d)", got)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageCandidate: "candidate",
		StagePlan:      "plan",
		StageCheck:     "check",
		StageCommit:    "commit",
		Stage(99):      "unknown",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("Stage(%d).String() = %q, want %q", st, st.String(), s)
		}
	}
}
