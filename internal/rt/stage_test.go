package rt

import (
	"sync"
	"testing"
)

// stageRecorder collects ObserveStage spans; guarded because the contract
// requires observers to be concurrency-safe.
type stageRecorder struct {
	mu    sync.Mutex
	spans map[Stage][]float64
}

func (r *stageRecorder) ObserveStage(stage Stage, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = make(map[Stage][]float64)
	}
	r.spans[stage] = append(r.spans[stage], seconds)
}

func (r *stageRecorder) count(stage Stage) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans[stage])
}

func TestStageObserverSpans(t *testing.T) {
	s := newSched(t, 16, EDF, IITDLT{})
	rec := &stageRecorder{}
	s.SetStageObserver(rec)

	// One accept, one reject: both run the full candidate/plan/check
	// pipeline.
	if ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0); err != nil || !ok {
		t.Fatalf("Submit = %v, %v", ok, err)
	}
	if ok, _ := s.Submit(&Task{ID: 2, Arrival: 0, Sigma: 200, RelDeadline: 201}, 0); ok {
		t.Fatal("should reject")
	}
	for _, st := range []Stage{StageCandidate, StagePlan, StageCheck} {
		if got := rec.count(st); got != 2 {
			t.Fatalf("stage %v observed %d times, want 2", st, got)
		}
	}
	if got := rec.count(StageCommit); got != 0 {
		t.Fatalf("commit observed %d times before CommitDue", got)
	}

	if _, err := s.CommitDue(0); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(StageCommit); got != 1 {
		t.Fatalf("commit observed %d times, want 1", got)
	}
	// An empty commit sweep must not record a span.
	if _, err := s.CommitDue(1); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(StageCommit); got != 1 {
		t.Fatalf("empty CommitDue recorded a span (count %d)", got)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	for st, spans := range rec.spans {
		for _, sec := range spans {
			if sec < 0 {
				t.Fatalf("stage %v recorded negative span %g", st, sec)
			}
		}
	}
}

func TestStageObserverViaSetObserver(t *testing.T) {
	// A decision observer that also implements StageObserver is picked up
	// by plain SetObserver — the service layer installs its Metrics this
	// way.
	s := newSched(t, 4, EDF, IITDLT{})
	type both struct {
		countingObs
		stageRecorder
	}
	obs := &both{}
	s.SetObserver(obs)
	if ok, err := s.Submit(&Task{ID: 1, Arrival: 0, Sigma: 100, RelDeadline: 5000}, 0); err != nil || !ok {
		t.Fatalf("Submit = %v, %v", ok, err)
	}
	if obs.accepts != 1 {
		t.Fatalf("decision observer missed the accept")
	}
	if got := obs.count(StagePlan); got != 1 {
		t.Fatalf("stage observer missed plan span (count %d)", got)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageCandidate: "candidate",
		StagePlan:      "plan",
		StageCheck:     "check",
		StageCommit:    "commit",
		Stage(99):      "unknown",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("Stage(%d).String() = %q, want %q", st, st.String(), s)
		}
	}
}
