package rt

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtdls/internal/cluster"
)

// stressDrive pushes a randomized arrival stream through a scheduler,
// committing as time advances, and returns the committed plans for
// invariant checking. It exercises queue churn, EDF reordering and
// replanning much harder than the unit tests.
func stressDrive(t *testing.T, pol Policy, part Partitioner, seed uint64, tasks int) []*Plan {
	t.Helper()
	cl, err := cluster.New(12, baseline)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(cl, pol, part)
	rng := rand.New(rand.NewPCG(seed, seed^777))
	now := 0.0
	var committed []*Plan
	for i := 0; i < tasks; i++ {
		now += rng.ExpFloat64() * 600 // bursty: mean interarrival ≪ execution
		sigma := 1 + 350*rng.Float64()
		d := 1500 + 6000*rng.Float64()
		if min := baseline.ExecTime(sigma, 12); d < min {
			d = min
		}
		task := &Task{ID: int64(i), Arrival: now, Sigma: sigma, RelDeadline: d}
		if nmin, feas := userSplitMinNodesFor(task); feas && nmin <= 12 {
			task.UserN = nmin + rng.IntN(12-nmin+1)
		}
		if _, err := s.Submit(task, now); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		plans, err := s.CommitDue(now)
		if err != nil {
			t.Fatalf("commit at %v: %v", now, err)
		}
		committed = append(committed, plans...)
	}
	for s.Stats().QueueLen > 0 {
		at, ok := s.NextCommit()
		if !ok {
			t.Fatalf("stuck queue of %d", s.Stats().QueueLen)
		}
		now = math.Max(now, at)
		plans, err := s.CommitDue(now)
		if err != nil {
			t.Fatal(err)
		}
		committed = append(committed, plans...)
	}
	if got := s.Stats().Accepts; got != len(committed) {
		t.Fatalf("accepted %d but committed %d", got, len(committed))
	}
	return committed
}

// userSplitMinNodesFor computes Nmin = ⌈σCps/(D−σCms)⌉ for a task under
// the package baseline costs.
func userSplitMinNodesFor(task *Task) (int, bool) {
	slack := task.RelDeadline - task.Sigma*baseline.Cms
	if slack <= 0 {
		return 0, false
	}
	n := int(math.Ceil(task.Sigma * baseline.Cps / slack))
	if n < 1 {
		n = 1
	}
	return n, true
}

// TestStressNoOverlapNoMiss runs every partitioner under both policies
// through a bursty stream and checks, per node, that committed busy
// intervals never overlap and every dispatch meets its deadline.
func TestStressNoOverlapNoMiss(t *testing.T) {
	for _, pol := range []Policy{EDF, FIFO} {
		for _, part := range []Partitioner{IITDLT{}, OPR{}, OPR{AllNodes: true}, UserSplit{}} {
			for seed := uint64(1); seed <= 3; seed++ {
				committed := stressDrive(t, pol, part, seed, 500)
				busyUntil := make([]float64, 12)
				for _, pl := range committed {
					for i, id := range pl.Nodes {
						if pl.Starts[i] < busyUntil[id]-1e-6 {
							t.Fatalf("%v/%s seed %d: node %d overlap (start %v < busy-until %v)",
								pol, part.Name(), seed, id, pl.Starts[i], busyUntil[id])
						}
						busyUntil[id] = pl.Release[i]
					}
					absD := pl.Task.AbsDeadline()
					if pl.Est > absD+1e-6*math.Max(1, absD) {
						t.Fatalf("%v/%s seed %d: est %v past deadline %v",
							pol, part.Name(), seed, pl.Est, absD)
					}
				}
			}
		}
	}
}

// TestStressCommitOrderMatchesFirstStart: plans commit in non-decreasing
// FirstStart order — the property the driver's single pending commit event
// relies on.
func TestStressCommitOrderMatchesFirstStart(t *testing.T) {
	committed := stressDrive(t, EDF, IITDLT{}, 11, 600)
	prev := math.Inf(-1)
	for _, pl := range committed {
		fs := pl.FirstStart()
		if fs < prev-1e-6 {
			t.Fatalf("commit order violates FirstStart monotonicity: %v after %v", fs, prev)
		}
		prev = fs
	}
}

// TestStressEDFVsFIFOAdmissions: with identical streams, EDF should admit
// at least as many tasks as FIFO in aggregate for the DLT partitioner
// (it can rescue tight-deadline arrivals FIFO would reject). This is a
// statistical property over several seeds, not a per-seed theorem.
func TestStressEDFVsFIFOAdmissions(t *testing.T) {
	var edf, fifo int
	for seed := uint64(1); seed <= 5; seed++ {
		edf += len(stressDrive(t, EDF, IITDLT{}, seed, 400))
		fifo += len(stressDrive(t, FIFO, IITDLT{}, seed, 400))
	}
	if edf < fifo-10 {
		t.Fatalf("EDF admitted clearly fewer tasks than FIFO: %d vs %d", edf, fifo)
	}
}
