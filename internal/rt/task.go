// Package rt implements the paper's real-time divisible load scheduling
// framework (Sec. 4): the aperiodic task model, EDF/FIFO execution-order
// policies, the pluggable task-partitioning module (DLT-based with IIT
// utilisation, the OPR baselines of [22], and User-Split), and the Fig. 2
// schedulability test with admission control.
package rt

import (
	"fmt"
	"math"

	"rtdls/internal/errs"
)

// Task is an aperiodic arbitrarily divisible task T = (A, σ, D): a single
// invocation with arrival time A, total data size σ and relative deadline D
// (Sec. 3). UserN carries the node count a user would request under the
// User-Split practice; it is 0 when unset or when no node count can meet
// the deadline (Nmin > N).
type Task struct {
	ID          int64
	Arrival     float64 // A
	Sigma       float64 // σ
	RelDeadline float64 // D
	UserN       int     // user-requested nodes for User-Split; 0 = infeasible/unset
}

// AbsDeadline returns the absolute deadline A + D.
func (t *Task) AbsDeadline() float64 { return t.Arrival + t.RelDeadline }

// Validate reports whether the task parameters are usable.
func (t *Task) Validate() error {
	if math.IsNaN(t.Arrival) || math.IsInf(t.Arrival, 0) {
		return fmt.Errorf("rt: task %d: non-finite arrival %v: %w", t.ID, t.Arrival, errs.ErrBadConfig)
	}
	if !(t.Sigma > 0) || math.IsInf(t.Sigma, 0) {
		return fmt.Errorf("rt: task %d: data size must be positive and finite, got %v: %w", t.ID, t.Sigma, errs.ErrBadConfig)
	}
	if !(t.RelDeadline > 0) || math.IsInf(t.RelDeadline, 0) {
		return fmt.Errorf("rt: task %d: relative deadline must be positive and finite, got %v: %w", t.ID, t.RelDeadline, errs.ErrBadConfig)
	}
	return nil
}

// Policy selects the task execution order used by the schedulability test
// (the framework's Decision #1).
type Policy uint8

const (
	// FIFO orders tasks by arrival time (first in, first out).
	FIFO Policy = iota
	// EDF orders tasks by absolute deadline (earliest deadline first).
	EDF
)

// String returns the conventional name of the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy parses "edf" or "fifo" (case-insensitive as written here).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "edf", "EDF":
		return EDF, nil
	case "fifo", "FIFO":
		return FIFO, nil
	default:
		return 0, fmt.Errorf("rt: unknown policy %q (want \"edf\" or \"fifo\"): %w", s, errs.ErrBadConfig)
	}
}

// Less reports whether task a precedes task b under the policy. Ties break
// by arrival time and then by task ID so the order is total and stable.
func (p Policy) Less(a, b *Task) bool {
	switch p {
	case EDF:
		da, db := a.AbsDeadline(), b.AbsDeadline()
		if da != db {
			return da < db
		}
	case FIFO:
		// fall through to arrival comparison
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}
