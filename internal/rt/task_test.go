package rt

import (
	"math"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	good := Task{ID: 1, Arrival: 0, Sigma: 10, RelDeadline: 100}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Task{
		{Sigma: 0, RelDeadline: 1},
		{Sigma: -1, RelDeadline: 1},
		{Sigma: math.Inf(1), RelDeadline: 1},
		{Sigma: 1, RelDeadline: 0},
		{Sigma: 1, RelDeadline: -2},
		{Sigma: 1, RelDeadline: math.NaN()},
		{Arrival: math.NaN(), Sigma: 1, RelDeadline: 1},
		{Arrival: math.Inf(-1), Sigma: 1, RelDeadline: 1},
	}
	for i, task := range bad {
		if err := task.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, task)
		}
	}
}

func TestAbsDeadline(t *testing.T) {
	task := Task{Arrival: 10, RelDeadline: 5}
	if task.AbsDeadline() != 15 {
		t.Fatalf("AbsDeadline = %v", task.AbsDeadline())
	}
}

func TestPolicyString(t *testing.T) {
	if EDF.String() != "EDF" || FIFO.String() != "FIFO" {
		t.Fatalf("policy names wrong: %v %v", EDF, FIFO)
	}
	if Policy(9).String() == "" {
		t.Fatalf("unknown policy should still format")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"edf": EDF, "EDF": EDF, "fifo": FIFO, "FIFO": FIFO} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatalf("expected error for unknown policy")
	}
}

func TestEDFOrder(t *testing.T) {
	early := &Task{ID: 2, Arrival: 5, RelDeadline: 10} // absD 15
	late := &Task{ID: 1, Arrival: 0, RelDeadline: 100} // absD 100
	if !EDF.Less(early, late) {
		t.Fatalf("EDF must order by absolute deadline")
	}
	if EDF.Less(late, early) {
		t.Fatalf("EDF comparison not antisymmetric")
	}
	// Deadline tie: earlier arrival first.
	a := &Task{ID: 9, Arrival: 1, RelDeadline: 9}
	b := &Task{ID: 3, Arrival: 4, RelDeadline: 6}
	if !EDF.Less(a, b) {
		t.Fatalf("EDF tie must break by arrival")
	}
	// Full tie: smaller ID first.
	c := &Task{ID: 1, Arrival: 1, RelDeadline: 9}
	d := &Task{ID: 2, Arrival: 1, RelDeadline: 9}
	if !EDF.Less(c, d) || EDF.Less(d, c) {
		t.Fatalf("EDF tie must break by ID")
	}
}

func TestFIFOOrder(t *testing.T) {
	first := &Task{ID: 2, Arrival: 1, RelDeadline: 1000}
	second := &Task{ID: 1, Arrival: 5, RelDeadline: 1}
	if !FIFO.Less(first, second) {
		t.Fatalf("FIFO must order by arrival regardless of deadline")
	}
	// Arrival tie: smaller ID first.
	a := &Task{ID: 1, Arrival: 5}
	b := &Task{ID: 2, Arrival: 5}
	if !FIFO.Less(a, b) || FIFO.Less(b, a) {
		t.Fatalf("FIFO tie must break by ID")
	}
}

func TestPlanFirstStartRn(t *testing.T) {
	p := Plan{Starts: []float64{3, 7, 5}}
	if p.FirstStart() != 3 {
		t.Fatalf("FirstStart = %v", p.FirstStart())
	}
	if p.Rn() != 7 {
		t.Fatalf("Rn = %v", p.Rn())
	}
}

func TestAvailView(t *testing.T) {
	v := NewAvailView([]float64{30, 10, 20})
	if v.N() != 3 {
		t.Fatalf("N = %d", v.N())
	}
	ids, times := v.Earliest(2)
	if ids[0] != 1 || ids[1] != 2 || times[0] != 10 || times[1] != 20 {
		t.Fatalf("Earliest(2) = %v %v", ids, times)
	}
	v.Apply([]int{1}, []float64{50})
	ids, times = v.Earliest(3)
	if ids[0] != 2 || ids[1] != 0 || ids[2] != 1 {
		t.Fatalf("after Apply: %v %v", ids, times)
	}
	if times[2] != 50 {
		t.Fatalf("release not applied: %v", times)
	}
}

func TestAvailViewTieBreaksByID(t *testing.T) {
	v := NewAvailView([]float64{5, 5, 5})
	ids, _ := v.Earliest(3)
	for i, id := range ids {
		if id != i {
			t.Fatalf("equal times must order by id: %v", ids)
		}
	}
}

func TestAvailViewPanics(t *testing.T) {
	v := NewAvailView([]float64{1, 2})
	for name, fn := range map[string]func(){
		"zero":      func() { v.Earliest(0) },
		"too many":  func() { v.Earliest(3) },
		"apply len": func() { v.Apply([]int{0}, []float64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}
