package rt

import (
	"fmt"

	"rtdls/internal/dlt"
)

// UserSplit emulates the current practice at cluster facilities such as the
// U.S. CMS Tier-2 sites (Sec. 4.1.2): the user manually splits a task into
// n equal-sized subtasks, where n is the user-requested node count drawn
// uniformly from [Nmin, N] at submission time (Task.UserN). Subtasks start
// on each node as soon as it is released, so the method does utilise IITs —
// the comparison against IITDLT isolates the value of DLT-guided,
// deadline-adaptive partitioning.
type UserSplit struct{}

// Name implements Partitioner.
func (UserSplit) Name() string { return "user-split" }

// FastReject implements FastRejecter: the node count is the user's fixed
// request, so the lower bound is anchored at the k-th release time. A
// request exceeding the cluster is deliberately NOT fast-rejected — the
// full path reports it as a hard configuration error, not a clean reject,
// and the fast path must preserve that distinction.
func (UserSplit) FastReject(ctx *PlanContext, t *Task) bool {
	k := t.UserN
	if k < 1 {
		return true
	}
	if k > ctx.N {
		return false
	}
	return ctx.ProvablyLate(t, k)
}

// Plan implements Partitioner.
func (UserSplit) Plan(ctx *PlanContext, t *Task) (*Plan, error) {
	if cm := ctx.heteroCosts(); cm != nil {
		return planHeteroUserSplit(cm, ctx, t)
	}
	k := t.UserN
	if k < 1 {
		// No node count can meet the deadline even on an idle cluster
		// (Nmin > N), or the workload generator did not set a request.
		return nil, ErrInfeasible
	}
	if k > ctx.N {
		return nil, fmt.Errorf("rt: user-split: task %d requests %d nodes but the cluster has %d",
			t.ID, k, ctx.N)
	}
	ids, starts := clampedStarts(ctx, t, k)
	d, err := dlt.UserSplitDispatch(ctx.P, t.Sigma, starts)
	if err != nil {
		return nil, fmt.Errorf("rt: user-split: %w", err)
	}
	release := make([]float64, k)
	copy(release, d.Finish)
	return &Plan{
		Task:    t,
		Nodes:   ids,
		Starts:  starts,
		Release: release,
		Alphas:  dlt.EqualAlphas(k),
		Est:     d.Completion,
		Rounds:  1,
	}, nil
}
