package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rtdls/internal/service"
)

// postNodeOp POSTs one fleet operation and returns the recorder.
func postNodeOp(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestNodeOpEndpoints(t *testing.T) {
	srv, eng, _ := newTestServer(t)
	h := srv.Handler()

	w := postNodeOp(t, h, "/v1/nodes/3/drain")
	if w.Code != http.StatusOK {
		t.Fatalf("drain status = %d, body %s", w.Code, w.Body)
	}
	var res service.FleetResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Node != 3 || res.StateToken != "draining" || res.Displaced != 0 {
		t.Fatalf("result = %+v", res)
	}

	if w = postNodeOp(t, h, "/v1/nodes/4/fail"); w.Code != http.StatusOK {
		t.Fatalf("fail status = %d, body %s", w.Code, w.Body)
	}
	if states := eng.NodeStates(); states[3] != service.NodeDraining || states[4] != service.NodeDown {
		t.Fatalf("engine states = %v", states[:5])
	}

	if w = postNodeOp(t, h, "/v1/nodes/3/restore"); w.Code != http.StatusOK {
		t.Fatalf("restore status = %d, body %s", w.Code, w.Body)
	}
	if states := eng.NodeStates(); states[3] != service.NodeUp {
		t.Fatalf("node 3 not restored: %v", states[:5])
	}
}

func TestNodeOpBadRequests(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()

	// Unknown action, malformed id, and out-of-range node all map to 400.
	for _, path := range []string{"/v1/nodes/3/reboot", "/v1/nodes/abc/drain", "/v1/nodes/99/drain"} {
		if w := postNodeOp(t, h, path); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", path, w.Code, w.Body)
		}
	}
	// GET on the fleet route is not served.
	req := httptest.NewRequest(http.MethodGet, "/v1/nodes/3/drain", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Fatalf("GET on a fleet op answered %d", w.Code)
	}
}

func TestStatsCarriesNodeStates(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()
	postNodeOp(t, h, "/v1/nodes/0/fail")
	postNodeOp(t, h, "/v1/nodes/1/drain")

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.NodeStates) != 16 {
		t.Fatalf("node_states = %v", st.NodeStates)
	}
	if st.NodeStates[0] != "down" || st.NodeStates[1] != "draining" || st.NodeStates[2] != "up" {
		t.Fatalf("node_states = %v", st.NodeStates[:3])
	}
	if st.NodesUp != 14 || st.NodesDown != 1 || st.NodesDraining != 1 {
		t.Fatalf("fleet counts = %d/%d/%d", st.NodesUp, st.NodesDraining, st.NodesDown)
	}
}
