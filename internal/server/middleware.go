package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"rtdls/internal/metrics"
)

// statusRecorder captures the response status for accounting and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the SSE handler still sees an
// http.Flusher through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TimeoutHeader is the request header carrying a per-request deadline in
// wall seconds (a float, e.g. "0.25"). The server propagates it as a
// context deadline, so a submission abandoned by its client stops before
// taking the scheduler lock and returns 499.
const TimeoutHeader = "X-Request-Timeout"

// RequestIDHeader carries the request correlation id. A client-supplied id
// is echoed back verbatim; otherwise the server generates one. Every
// structured request log record carries it.
const RequestIDHeader = "X-Request-ID"

// newRequestID returns a 16-hex-char random correlation id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// routeLabel normalizes a request path onto the server's fixed route set so
// HTTP metrics stay bounded-cardinality no matter what clients request.
func routeLabel(path string) string {
	switch path {
	case "/v1/submit", "/v1/submit/batch", "/v1/stats", "/v1/events", "/healthz", "/metrics":
		return path
	}
	return "other"
}

// middleware wraps the mux with panic recovery, request/5xx accounting,
// request-id propagation, optional logging (structured or printf), HTTP
// metrics, and per-request deadline propagation.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		s.requests.Add(1)

		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
		}
		rec.Header().Set(RequestIDHeader, reqID)

		if v := r.Header.Get(TimeoutHeader); v != "" {
			if secs, err := strconv.ParseFloat(v, 64); err == nil && secs > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(secs*float64(time.Second)))
				defer cancel()
				r = r.WithContext(ctx)
			}
		}

		defer func() {
			if p := recover(); p != nil {
				if rec.status == 0 {
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
				if s.logger != nil {
					s.logger.Error("panic",
						slog.String("method", r.Method), slog.String("path", r.URL.Path),
						slog.String("request_id", reqID), slog.Any("panic", p),
						slog.String("stack", string(debug.Stack())))
				} else if s.logf != nil {
					s.logf("panic: %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
			}
			if rec.status >= 500 {
				s.fivexx.Add(1)
			}
			elapsed := time.Since(start)
			if s.reg != nil {
				route := routeLabel(r.URL.Path)
				s.reg.Counter("rtdls_http_requests_total",
					"HTTP requests by route and status code.",
					metrics.Labels{"route": route, "status": strconv.Itoa(rec.status)}).Inc()
				s.reg.Histogram("rtdls_http_request_seconds",
					"HTTP request duration in seconds by route.",
					metrics.Labels{"route": route}).Observe(elapsed.Seconds())
			}
			if s.logger != nil {
				s.logger.Info("request",
					slog.String("method", r.Method), slog.String("path", r.URL.Path),
					slog.Int("status", rec.status), slog.Duration("duration", elapsed),
					slog.String("request_id", reqID))
			} else if s.logf != nil {
				s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond))
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
