package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// statusRecorder captures the response status for accounting and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the SSE handler still sees an
// http.Flusher through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TimeoutHeader is the request header carrying a per-request deadline in
// wall seconds (a float, e.g. "0.25"). The server propagates it as a
// context deadline, so a submission abandoned by its client stops before
// taking the scheduler lock and returns 499.
const TimeoutHeader = "X-Request-Timeout"

// middleware wraps the mux with panic recovery, request/5xx accounting,
// optional logging, and per-request deadline propagation.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		s.requests.Add(1)

		if v := r.Header.Get(TimeoutHeader); v != "" {
			if secs, err := strconv.ParseFloat(v, 64); err == nil && secs > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(secs*float64(time.Second)))
				defer cancel()
				r = r.WithContext(ctx)
			}
		}

		defer func() {
			if p := recover(); p != nil {
				if rec.status == 0 {
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
				if s.logf != nil {
					s.logf("panic: %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
			}
			if rec.status >= 500 {
				s.fivexx.Add(1)
			}
			if s.logf != nil {
				s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
