package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/metrics"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// newObservedServer builds a server with a metrics registry wired through
// the engine, mirroring how dlserve assembles the stack.
func newObservedServer(t *testing.T) (*Server, *service.Service, *metrics.Registry) {
	t.Helper()
	cl, err := cluster.New(16, baseline)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	met := service.NewMetrics(reg)
	eng, err := service.New(service.Config{
		Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{},
		Clock: service.NewManualClock(0), Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Scale: 1000, Version: "test", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return srv, eng, reg
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealthzReadiness(t *testing.T) {
	srv, eng, _ := newObservedServer(t)
	h := srv.Handler()

	w := get(t, h, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
	if hr := decode[HealthResponse](t, w); hr.Status != "ok" || hr.Draining {
		t.Fatalf("healthz body = %+v", hr)
	}

	// Closing the engine's admission gate directly (no server Drain) must
	// flip readiness: load balancers stop routing before the first 503.
	eng.SetAccepting(false)
	w = get(t, h, "/healthz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with gate closed = %d, want 503", w.Code)
	}
	if hr := decode[HealthResponse](t, w); !hr.Draining || hr.Status != "draining" {
		t.Fatalf("healthz body = %+v", hr)
	}

	// Reopening the gate restores readiness.
	eng.SetAccepting(true)
	if w = get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after reopen = %d, want 200", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := newObservedServer(t)
	h := srv.Handler()

	// One accept, one infeasible reject, then scrape.
	postJSON(t, h, "/v1/submit", TaskRequest{ID: 1, Sigma: 200, Deadline: 2800})
	postJSON(t, h, "/v1/submit", TaskRequest{ID: 2, Sigma: 1e6, Deadline: 1})

	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d, want 200", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE rtdls_admission_stage_seconds histogram",
		`rtdls_admission_stage_seconds_count{stage="plan"} 2`,
		`rtdls_submits_total{shard="0"} 2`,
		`rtdls_accepts_total{shard="0"} 1`,
		`rtdls_rejects_total{reason="infeasible",shard="0"} 1`,
		`rtdls_queue_depth_max{shard="0"} 1`,
		"# TYPE rtdls_http_requests_total counter",
		`rtdls_info{version="test"} 1`,
		"rtdls_events_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// The scrape itself shows up in HTTP metrics on the next scrape, under
	// the normalized route label.
	w = get(t, h, "/metrics")
	if !strings.Contains(w.Body.String(), `rtdls_http_requests_total{route="/metrics",status="200"}`) {
		t.Fatalf("scrape not accounted in HTTP metrics:\n%s", w.Body.String())
	}
	// Unknown paths collapse into the "other" route label.
	get(t, h, "/no/such/path")
	w = get(t, h, "/metrics")
	if !strings.Contains(w.Body.String(), `rtdls_http_requests_total{route="other",status="404"}`) {
		t.Fatalf("unknown route not normalized:\n%s", w.Body.String())
	}
}

func TestMetricsDisabledWithoutRegistry(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if w := get(t, srv.Handler(), "/metrics"); w.Code != http.StatusNotFound {
		t.Fatalf("metrics without registry = %d, want 404", w.Code)
	}
}

func TestRequestIDEchoed(t *testing.T) {
	srv, _, _ := newObservedServer(t)
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(RequestIDHeader, "client-supplied-id")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get(RequestIDHeader); got != "client-supplied-id" {
		t.Fatalf("request id not echoed: %q", got)
	}

	w = get(t, h, "/healthz")
	if got := w.Header().Get(RequestIDHeader); len(got) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", got)
	}
}

func TestSubscriberDropsInStats(t *testing.T) {
	srv, eng, reg := newObservedServer(t)
	h := srv.Handler()

	// A one-slot subscriber tracked exactly as handleEvents tracks it; the
	// channel fills after the first event and the bus drops the rest.
	sub := eng.SubscribeStream(1)
	defer sub.Cancel()
	id := srv.trackSub(sub)
	defer srv.untrackSub(id)

	for i := 1; i <= 6; i++ {
		postJSON(t, h, "/v1/submit", TaskRequest{ID: int64(i), Sigma: 1e6, Deadline: 1})
	}

	w := get(t, h, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats = %d", w.Code)
	}
	resp := decode[StatsResponse](t, w)
	if len(resp.Subscribers) != 1 {
		t.Fatalf("subscribers = %+v, want one entry", resp.Subscribers)
	}
	if got := resp.Subscribers[0].Dropped; got != 5 {
		t.Fatalf("subscriber dropped = %d, want 5 (6 events, buffer 1)", got)
	}

	// The same drops surface in the exposition.
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rtdls_events_dropped_total 5") {
		t.Fatalf("bus drops missing from exposition:\n%s", b.String())
	}

	// After the subscriber goes away, stats stop listing it.
	srv.untrackSub(id)
	resp = decode[StatsResponse](t, get(t, h, "/v1/stats"))
	if len(resp.Subscribers) != 0 {
		t.Fatalf("subscribers after untrack = %+v", resp.Subscribers)
	}
}
