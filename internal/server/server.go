// Package server puts the admission-control engine on the wire: an
// HTTP/JSON front end over the same Engine surface the in-process API
// exposes, so the paper's schedulability test is reachable from any
// language and measurable under real network load.
//
// The wire contract (all request/response bodies are JSON):
//
//	POST /v1/submit        one task  → one decision
//	POST /v1/submit/batch  {"tasks": [...]} → {"decisions": [...]}
//	GET  /v1/stats         aggregate admission/cluster snapshot
//	GET  /v1/events        Server-Sent Events stream of accept/reject/
//	                       commit events (plus explicit "gap" notices when
//	                       the subscriber lost events)
//	GET  /healthz          liveness + readiness: 200 while accepting, 503
//	                       with {"draining": true} once the admission gate
//	                       closes (SetAccepting(false) or Drain)
//	GET  /metrics          Prometheus text exposition (when a metrics
//	                       registry is configured)
//	POST /v1/nodes/{id}/{action}
//	                       fleet admin: action is "drain", "fail" or
//	                       "restore"; {id} is the engine-wide node id
//	                       (shard-major on a pool). Returns the fleet
//	                       result — node, new state, tasks displaced and
//	                       re-admitted — with 200; an unknown node or
//	                       action is 400. Current per-node states appear
//	                       in /v1/stats as "node_states".
//
// Response status codes are exactly the stable wire codes of
// internal/errs: an accepted submission is 200; a clean rejection carries
// the decision body under the reason's code (422 infeasible, 410 deadline
// past, 429 busy); malformed input is 400. Busy rejections (and the 503
// during drain) carry a Retry-After header derived from the engine's
// current queue slack — the next pending commit instant converted to wall
// seconds — so well-behaved clients back off for exactly as long as the
// backlog needs to move.
//
// Shutdown is graceful: Drain flips the engine's admission gate (new
// submissions bounce with 503 + Retry-After), pumps every committed-but-
// waiting plan, then closes the engine, which ends every event stream.
// No accepted task is ever lost to a SIGTERM.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtdls/internal/errs"
	"rtdls/internal/fleet"
	"rtdls/internal/metrics"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// Engine is the admission surface the server fronts. Both the public
// rtdls.Service (single cluster or sharded pool) and the internal
// service.Engine implementations satisfy it.
type Engine interface {
	Submit(ctx context.Context, t rt.Task) (service.Decision, error)
	SubmitBatch(ctx context.Context, tasks []rt.Task) ([]service.Decision, error)
	SubscribeStream(buffer int) *service.Subscription
	Stats() service.Stats
	NextCommit() (at float64, ok bool)
	SetAccepting(accepting bool)
	Accepting() bool
	Drain() error
	Close() error
	Clock() service.Clock
	DrainNode(node int) (service.FleetResult, error)
	FailNode(node int) (service.FleetResult, error)
	RestoreNode(node int) (service.FleetResult, error)
	NodeStates() []service.NodeState
}

// Config assembles a Server. Engine is mandatory.
type Config struct {
	Engine Engine

	// Scale is the engine clock's simulation-time units per wall second
	// (the value passed to NewWallClock). It converts queue slack into
	// Retry-After seconds; <= 0 defaults to 1.
	Scale float64

	// MaxBody bounds a request body in bytes (default 1 MiB).
	MaxBody int64

	// MaxBatch bounds the task count of one batch submission (default
	// 4096); larger batches are refused with 413.
	MaxBatch int

	// MaxRetryAfter caps the advertised Retry-After in seconds (default
	// 60).
	MaxRetryAfter float64

	// Version is reported by /v1/stats (e.g. rtdls.Version).
	Version string

	// Logf, when non-nil, receives one line per request and per lifecycle
	// transition (drain, panic recovery). Superseded by Logger; kept for
	// callers that only want printf-style lines.
	Logf func(format string, args ...any)

	// Logger, when non-nil, receives structured request and lifecycle
	// records (method, route, status, duration, request_id) and takes
	// precedence over Logf.
	Logger *slog.Logger

	// Metrics, when non-nil, is served at GET /metrics and additionally
	// records the server's own HTTP metrics (rtdls_http_requests_total,
	// rtdls_http_request_seconds) and the rtdls_info gauge. Pass the same
	// registry the engine was instrumented with to get one exposition.
	Metrics *metrics.Registry
}

// Server is the HTTP front end. Construct with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	eng           Engine
	scale         float64
	maxBody       int64
	maxBatch      int
	maxRetryAfter float64
	version       string
	logf          func(string, ...any)
	logger        *slog.Logger
	reg           *metrics.Registry
	start         time.Time

	draining atomic.Bool
	requests atomic.Int64
	fivexx   atomic.Int64

	// Active SSE subscriptions, keyed by a server-assigned id, so
	// /v1/stats can surface each subscriber's own drop count.
	subMu  sync.Mutex
	subSeq int64
	subs   map[int64]*service.Subscription
}

// New validates the configuration and returns a ready server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine: %w", errs.ErrBadConfig)
	}
	if cfg.Scale <= 0 || math.IsNaN(cfg.Scale) || math.IsInf(cfg.Scale, 0) {
		cfg.Scale = 1
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 60
	}
	s := &Server{
		eng:           cfg.Engine,
		scale:         cfg.Scale,
		maxBody:       cfg.MaxBody,
		maxBatch:      cfg.MaxBatch,
		maxRetryAfter: cfg.MaxRetryAfter,
		version:       cfg.Version,
		logf:          cfg.Logf,
		logger:        cfg.Logger,
		reg:           cfg.Metrics,
		start:         time.Now(),
		subs:          make(map[int64]*service.Subscription),
	}
	if s.reg != nil {
		s.reg.Gauge("rtdls_info",
			"Constant 1, labeled with the server build version.",
			metrics.Labels{"version": s.version}).Set(1)
	}
	return s, nil
}

// Handler returns the server's routed handler with the standard middleware
// (panic recovery, 5xx accounting, per-request deadline propagation)
// applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/submit/batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/nodes/{id}/{action}", s.handleNodeOp)
	if s.reg != nil {
		mux.Handle("GET /metrics", s.reg)
	}
	return s.middleware(mux)
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Requests returns how many HTTP requests the server has handled and how
// many of them ended in a 5xx status.
func (s *Server) Requests() (total, fivexx int64) {
	return s.requests.Load(), s.fivexx.Load()
}

// Drain performs the graceful-shutdown sequence: stop accepting (both at
// the HTTP layer and at the engine's admission gate), commit every waiting
// plan, then close the engine, which flushes and terminates every event
// subscriber. Safe to call once; the ctx bounds only the caller's
// patience — the engine drain itself is not abortable halfway (a plan is
// either committed or still queued, never lost).
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	s.sayf("drain: admission gate closed, pumping committed work")
	s.eng.SetAccepting(false)
	done := make(chan error, 1)
	go func() { done <- s.eng.Drain() }()
	var err error
	select {
	case err = <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if cerr := s.eng.Close(); err == nil {
		err = cerr
	}
	st := s.eng.Stats()
	s.sayf("drain: done (accepts=%d commits=%d queue=%d err=%v)",
		st.Accepts, st.Commits, st.QueueLen, err)
	return err
}

// sayf emits one lifecycle line: through the structured logger when
// configured, else the legacy printf sink.
func (s *Server) sayf(format string, args ...any) {
	switch {
	case s.logger != nil:
		s.logger.Info(fmt.Sprintf(format, args...))
	case s.logf != nil:
		s.logf(format, args...)
	}
}

// retryAfterSeconds derives the Retry-After hint from the engine's current
// queue slack: the earliest pending commit instant, converted from
// simulation units to wall seconds. With nothing queued (or the commit
// already due) the floor of one second applies, so clients never busy-loop.
func (s *Server) retryAfterSeconds() float64 {
	now := s.eng.Clock().Now()
	secs := 1.0
	if at, ok := s.eng.NextCommit(); ok && at > now {
		secs = (at - now) / s.scale
	}
	if secs < 1 {
		secs = 1
	}
	if secs > s.maxRetryAfter {
		secs = s.maxRetryAfter
	}
	return secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	var req TaskRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	task, err := req.Task()
	if err != nil {
		s.writeError(w, err)
		return
	}
	dec, err := s.eng.Submit(r.Context(), task)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeDecision(w, dec)
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Tasks) == 0 {
		s.writeError(w, fmt.Errorf("server: empty batch: %w", errs.ErrBadConfig))
		return
	}
	if len(req.Tasks) > s.maxBatch {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error:  fmt.Sprintf("server: batch of %d exceeds limit %d", len(req.Tasks), s.maxBatch),
			Code:   http.StatusRequestEntityTooLarge,
			Reason: errs.ReasonBadRequest,
		})
		return
	}
	tasks := make([]rt.Task, len(req.Tasks))
	for i, tr := range req.Tasks {
		t, err := tr.Task()
		if err != nil {
			s.writeError(w, fmt.Errorf("server: batch task %d: %w", i, err))
			return
		}
		tasks[i] = t
	}
	decs, err := s.eng.SubmitBatch(r.Context(), tasks)
	resp := BatchResponse{Decisions: make([]DecisionResponse, len(decs))}
	for i, d := range decs {
		resp.Decisions[i] = decisionResponse(d, s)
		if d.Accepted {
			resp.Accepted++
		} else {
			resp.Rejected++
		}
	}
	if err != nil {
		// Partial batch: return the decisions made so far under the hard
		// error's status so the client can resubmit the tail.
		resp.Error = err.Error()
		resp.ErrorReason = errs.ReasonFor(err)
		s.writeJSON(w, errs.Code(err), resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	total, fivexx := s.Requests()
	resp := StatsResponse{
		Stats:         st,
		Version:       s.version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		HTTPRequests:  total,
		HTTP5xx:       fivexx,
		RejectRatio:   st.RejectRatio(),
	}
	if at, ok := s.eng.NextCommit(); ok {
		resp.NextCommit = &at
	}
	resp.Subscribers = s.subscriberStats()
	states := s.eng.NodeStates()
	resp.NodeStates = make([]string, len(states))
	for i, st := range states {
		resp.NodeStates[i] = st.String()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleNodeOp serves the fleet admin surface: POST /v1/nodes/{id}/{action}
// with action drain, fail or restore. The operation is applied through the
// engine (on a pool the node id is shard-major and displaced tasks are
// re-admitted on other shards); the response is the fleet result. Bad ids
// and unknown actions map to 400 via errs.ErrBadConfig.
func (s *Server) handleNodeOp(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, fmt.Errorf("server: bad node id %q: %w", r.PathValue("id"), errs.ErrBadConfig))
		return
	}
	action, err := fleet.ParseAction(r.PathValue("action"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	res, err := fleet.Apply(s.eng, fleet.Op{Action: action, Node: id})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.sayf("fleet: node %d -> %s (displaced=%d readmitted=%d)", res.Node, res.StateToken, res.Displaced, res.Readmitted)
	s.writeJSON(w, http.StatusOK, res)
}

// handleHealthz is the liveness + readiness probe. Readiness follows the
// engine's lock-free admission gate, not just the server's own drain flag:
// an engine whose gate was closed directly (SetAccepting(false)) reports
// draining too, so load balancers stop routing before the first 503'd
// submission.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || !s.eng.Accepting() {
		s.writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining", Draining: true})
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// trackSub registers an active SSE subscription for /v1/stats visibility
// and returns its server-assigned id.
func (s *Server) trackSub(sub *service.Subscription) int64 {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	s.subSeq++
	s.subs[s.subSeq] = sub
	return s.subSeq
}

func (s *Server) untrackSub(id int64) {
	s.subMu.Lock()
	delete(s.subs, id)
	s.subMu.Unlock()
}

// subscriberStats snapshots every active subscriber's drop count, ordered
// by subscription id.
func (s *Server) subscriberStats() []SubscriberStats {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	out := make([]SubscriberStats, 0, len(s.subs))
	for id, sub := range s.subs {
		out = append(out, SubscriberStats{ID: id, Dropped: sub.Dropped()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// writeUnavailable answers a submission received while draining: 503 with
// a Retry-After so load balancers and clients move on promptly.
func (s *Server) writeUnavailable(w http.ResponseWriter) {
	secs := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(secs))))
	s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error:      "server: draining, not accepting submissions",
		Code:       http.StatusServiceUnavailable,
		Reason:     errs.ReasonBusy,
		RetryAfter: secs,
	})
}

// writeDecision maps a clean decision onto the wire: 200 for an accept,
// the reason's stable code for a rejection, with Retry-After on busy.
func (s *Server) writeDecision(w http.ResponseWriter, d service.Decision) {
	resp := decisionResponse(d, s)
	status := http.StatusOK
	if !d.Accepted {
		status = d.Reason.Code()
		if status == errs.CodeBusy {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(resp.RetryAfter))))
		}
	}
	s.writeJSON(w, status, resp)
}

// writeError maps a hard error (malformed input, closed/draining engine,
// cancelled context) onto its stable wire code.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := errs.Code(err)
	resp := ErrorResponse{Error: err.Error(), Code: code, Reason: errs.ReasonFor(err)}
	if code == errs.CodeBusy {
		resp.RetryAfter = s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(resp.RetryAfter))))
	}
	s.writeJSON(w, code, resp)
}

// decodeBody parses a JSON request body with the size bound and strict
// field checking; on failure it writes the 400 and reports false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error:  fmt.Sprintf("server: body exceeds %d bytes", maxErr.Limit),
				Code:   http.StatusRequestEntityTooLarge,
				Reason: errs.ReasonBadRequest,
			})
			return false
		}
		s.writeError(w, fmt.Errorf("server: malformed request body: %v: %w", err, errs.ErrBadConfig))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(body); err != nil && s.logf != nil {
		s.logf("write: %v", err)
	}
}
