package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

// newTestServer builds a server over a fresh 16-node engine. The returned
// clock lets tests drive time explicitly.
func newTestServer(t *testing.T, opts ...func(*service.Config)) (*Server, *service.Service, *service.ManualClock) {
	t.Helper()
	cl, err := cluster.New(16, baseline)
	if err != nil {
		t.Fatal(err)
	}
	clock := service.NewManualClock(0)
	cfg := service.Config{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}, Clock: clock}
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Scale: 1000, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return srv, eng, clock
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return out
}

func TestSubmitAccepted(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()
	w := postJSON(t, h, "/v1/submit", TaskRequest{ID: 1, Sigma: 200, Deadline: 2800})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	d := decode[DecisionResponse](t, w)
	if !d.Accepted || d.Code != errs.CodeOK || d.Reason != errs.ReasonNone {
		t.Fatalf("decision = %+v", d)
	}
	if len(d.Nodes) == 0 || len(d.Nodes) != len(d.Starts) || len(d.Nodes) != len(d.Alphas) || d.Est <= 0 {
		t.Fatalf("plan missing from accepted decision: %+v", d)
	}
}

func TestSubmitRejectionStatuses(t *testing.T) {
	srv, _, clock := newTestServer(t)
	h := srv.Handler()
	clock.Set(1000)

	// Deadline already past → 410 with the stable token.
	w := postJSON(t, h, "/v1/submit", TaskRequest{ID: 1, Arrival: 10, Sigma: 10, Deadline: 20})
	if w.Code != errs.CodeDeadlinePast {
		t.Fatalf("deadline-past status = %d, body %s", w.Code, w.Body)
	}
	if d := decode[DecisionResponse](t, w); d.Reason != errs.ReasonDeadlinePast || d.Code != errs.CodeDeadlinePast {
		t.Fatalf("decision = %+v", d)
	}

	// Infeasible → 422.
	w = postJSON(t, h, "/v1/submit", TaskRequest{ID: 2, Sigma: 1e6, Deadline: 1})
	if w.Code != errs.CodeInfeasible {
		t.Fatalf("infeasible status = %d, body %s", w.Code, w.Body)
	}
	if d := decode[DecisionResponse](t, w); d.Reason != errs.ReasonInfeasible {
		t.Fatalf("decision = %+v", d)
	}
}

func TestSubmitBusyCarriesRetryAfter(t *testing.T) {
	srv, _, _ := newTestServer(t, func(c *service.Config) { c.MaxQueue = 1 })
	h := srv.Handler()
	// Saturate the cluster, then fill the one queue slot; the third task
	// must bounce with 429.
	tight := baseline.ExecTime(400, 16) * 1.01
	w := postJSON(t, h, "/v1/submit", TaskRequest{ID: 1, Sigma: 400, Deadline: tight})
	if w.Code != http.StatusOK {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	w = postJSON(t, h, "/v1/submit", TaskRequest{ID: 2, Sigma: 50, Deadline: 50000})
	if w.Code != http.StatusOK {
		t.Fatalf("second submit: %d %s", w.Code, w.Body)
	}
	w = postJSON(t, h, "/v1/submit", TaskRequest{ID: 3, Sigma: 50, Deadline: 50000})
	if w.Code != errs.CodeBusy {
		t.Fatalf("third submit status = %d, body %s", w.Code, w.Body)
	}
	ra := w.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q", ra)
	}
	d := decode[DecisionResponse](t, w)
	if d.Reason != errs.ReasonBusy || d.RetryAfter <= 0 {
		t.Fatalf("decision = %+v", d)
	}
	// The hint derives from queue slack: task 2 starts when task 1's
	// window ends, so at scale 1000 the advertised wait is bounded by the
	// remaining sim time / 1000 (and by the 60 s cap).
	if d.RetryAfter > 60 {
		t.Fatalf("retry_after %v above cap", d.RetryAfter)
	}
}

func TestSubmitMalformed(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()

	for name, body := range map[string]string{
		"bad json":      "{not json",
		"unknown field": `{"sigma": 10, "deadline": 100, "bogus": 1}`,
		"bad sigma":     `{"sigma": -5, "deadline": 100}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/submit", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", name, w.Code, w.Body)
		}
		if e := decode[ErrorResponse](t, w); e.Reason != errs.ReasonBadRequest || e.Code != errs.CodeBadRequest {
			t.Errorf("%s: error body = %+v", name, e)
		}
	}
}

func TestSubmitBatchMixed(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()
	w := postJSON(t, h, "/v1/submit/batch", BatchRequest{Tasks: []TaskRequest{
		{ID: 1, Sigma: 200, Deadline: 2800},
		{ID: 2, Sigma: 1e6, Deadline: 1},
		{ID: 3, Sigma: 100, Deadline: 5000},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	b := decode[BatchResponse](t, w)
	if len(b.Decisions) != 3 || b.Accepted != 2 || b.Rejected != 1 {
		t.Fatalf("batch = %+v", b)
	}
	if b.Decisions[1].Reason != errs.ReasonInfeasible {
		t.Fatalf("middle decision = %+v", b.Decisions[1])
	}
}

func TestBatchLimit(t *testing.T) {
	srv, _, _ := newTestServer(t)
	srv.maxBatch = 2
	h := srv.Handler()
	w := postJSON(t, h, "/v1/submit/batch", BatchRequest{Tasks: make([]TaskRequest, 3)})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()
	postJSON(t, h, "/v1/submit", TaskRequest{ID: 1, Sigma: 200, Deadline: 2800})
	postJSON(t, h, "/v1/submit", TaskRequest{ID: 2, Sigma: 1e6, Deadline: 1})

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Arrivals != 2 || st.Accepts != 1 || st.Rejects != 1 || st.Version != "test" {
		t.Fatalf("stats = %+v", st)
	}
	if st.HTTPRequests < 3 || st.HTTP5xx != 0 {
		t.Fatalf("request accounting = %d/%d", st.HTTPRequests, st.HTTP5xx)
	}
}

func TestTimeoutHeaderPropagatesDeadline(t *testing.T) {
	srv, _, _ := newTestServer(t)
	h := srv.Handler()
	raw, _ := json.Marshal(TaskRequest{ID: 1, Sigma: 200, Deadline: 2800})
	req := httptest.NewRequest(http.MethodPost, "/v1/submit", bytes.NewReader(raw))
	// An already-expired budget: the context deadline passes before the
	// engine is reached, so the submission returns the cancellation code
	// without touching the scheduler.
	req.Header.Set(TimeoutHeader, "0.000000001")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != errs.CodeCancelled {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if st := srv.eng.Stats(); st.Arrivals != 0 {
		t.Fatalf("cancelled request reached the scheduler: %+v", st)
	}
}

// TestDrainLosesNoCommittedTask is the acceptance property of graceful
// shutdown: every task accepted before SIGTERM is committed by the drain,
// and post-drain submissions are refused with 503 + Retry-After.
func TestDrainLosesNoCommittedTask(t *testing.T) {
	srv, eng, _ := newTestServer(t)
	h := srv.Handler()
	accepted := 0
	for i := 1; i <= 8; i++ {
		w := postJSON(t, h, "/v1/submit", TaskRequest{ID: int64(i), Sigma: 150, Deadline: 1e6})
		if w.Code == http.StatusOK {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no task accepted")
	}
	if st := eng.Stats(); st.QueueLen == 0 {
		t.Fatalf("want a non-empty waiting queue before drain, got %+v", st)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("drain lost committed work: %+v", st)
	}

	// New submissions bounce with 503 and a Retry-After.
	w := postJSON(t, h, "/v1/submit", TaskRequest{ID: 99, Sigma: 100, Deadline: 1e6})
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("post-drain submit: %d, Retry-After %q", w.Code, w.Header().Get("Retry-After"))
	}
	// Health flips to draining.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d", rw.Code)
	}
	// Drain is idempotent.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestEventStream exercises the SSE surface end to end over a real
// connection: accept/reject/commit events arrive with stable reason
// tokens, and a drain terminates the stream with an "end" event.
func TestEventStream(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/events?buffer=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Submissions over the same server; the subscriber must see them.
	client := ts.Client()
	submit := func(tr TaskRequest) {
		raw, _ := json.Marshal(tr)
		r, err := client.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	submit(TaskRequest{ID: 1, Sigma: 200, Deadline: 2800})
	submit(TaskRequest{ID: 2, Sigma: 1e6, Deadline: 1})

	done := make(chan error, 1)
	go func() { done <- srv.Drain(context.Background()) }()

	kinds := map[string]int{}
	var rejectData EventResponse
	sc := bufio.NewScanner(resp.Body)
	var current string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			kinds[current]++
		case strings.HasPrefix(line, "data: ") && current == "reject":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rejectData); err != nil {
				t.Errorf("reject data: %v", err)
			}
		}
		if current == "end" {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if kinds["accept"] != 1 || kinds["reject"] != 1 || kinds["commit"] != 1 || kinds["end"] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
	if rejectData.Reason != errs.ReasonInfeasible || rejectData.Code != errs.CodeInfeasible {
		t.Fatalf("reject event = %+v", rejectData)
	}
}

// TestWireReasonTokensStable pins the serialized form of a decision: the
// reason token in the JSON body must round-trip through ParseReason and
// match the event-stream encoding byte for byte.
func TestWireReasonTokensStable(t *testing.T) {
	srv, _, clock := newTestServer(t)
	h := srv.Handler()
	clock.Set(500)
	w := postJSON(t, h, "/v1/submit", TaskRequest{ID: 7, Arrival: 1, Sigma: 5, Deadline: 10})
	var raw map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	tok, _ := raw["reason"].(string)
	parsed, err := errs.ParseReason(tok)
	if err != nil || parsed != errs.ReasonDeadlinePast {
		t.Fatalf("wire token %q did not round-trip: %v", tok, err)
	}
	if fmt.Sprint(raw["code"]) != strconv.Itoa(errs.CodeDeadlinePast) {
		t.Fatalf("wire code = %v", raw["code"])
	}
}
