package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// handleEvents streams the decision/lifecycle bus to the client as
// Server-Sent Events: one "message" event per accept/reject/commit, plus
// explicit "gap" events whenever this subscriber's buffer overflowed, so a
// lossy consumer knows exactly how many decisions it missed. The stream
// ends when the client disconnects or the engine closes (drain/shutdown).
//
// Query parameters: buffer (subscriber channel buffer, default 1024,
// capped at 65536).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusNotImplemented, ErrorResponse{
			Error: "server: streaming unsupported by this connection", Code: http.StatusNotImplemented,
		})
		return
	}
	buffer := 1024
	if v := r.URL.Query().Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1<<16 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "server: buffer must be an integer in [1, 65536]", Code: http.StatusBadRequest,
			})
			return
		}
		buffer = n
	}

	sub := s.eng.SubscribeStream(buffer)
	defer sub.Cancel()
	subID := s.trackSub(sub)
	defer s.untrackSub(subID)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Reconnect hint for EventSource clients.
	_, _ = w.Write([]byte("retry: 1000\n\n"))
	flusher.Flush()

	// Heartbeat keeps idle connections alive through proxies and gives the
	// loop a periodic chance to notice client disconnects and gaps.
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()

	var reportedDrops uint64
	writeEvent := func(name string, body any) bool {
		data, err := json.Marshal(body)
		if err != nil {
			return false
		}
		if _, err := w.Write([]byte("event: " + name + "\ndata: " + string(data) + "\n\n")); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	checkGap := func() bool {
		total := sub.Dropped()
		if total == reportedDrops {
			return true
		}
		delta := total - reportedDrops
		reportedDrops = total
		return writeEvent("gap", EventResponse{Kind: "gap", Dropped: delta, DroppedTotal: total})
	}

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-heartbeat.C:
			if !checkGap() {
				return
			}
			if _, err := w.Write([]byte(": keep-alive\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-sub.C():
			if !ok {
				// Engine closed (drain finished): tell the client the stream
				// ended cleanly rather than just dropping the connection.
				writeEvent("end", EventResponse{Kind: "end"})
				return
			}
			if !writeEvent(ev.Kind.String(), eventResponse(ev)) {
				return
			}
			if !checkGap() {
				return
			}
		}
	}
}
