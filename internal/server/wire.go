package server

import (
	"fmt"

	"rtdls/internal/errs"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// TaskRequest is the wire form of one divisible task T = (A, σ, D). Times
// are in the cluster's simulation units; a zero (or omitted) arrival means
// "arrives now" on the server's clock.
type TaskRequest struct {
	ID       int64   `json:"id,omitempty"`
	Arrival  float64 `json:"arrival,omitempty"`
	Sigma    float64 `json:"sigma"`
	Deadline float64 `json:"deadline"` // relative deadline D
	UserN    int     `json:"user_n,omitempty"`
}

// Task converts the wire form into the engine's task, validating it so a
// malformed request fails before it reaches the scheduler lock.
func (r TaskRequest) Task() (rt.Task, error) {
	t := rt.Task{ID: r.ID, Arrival: r.Arrival, Sigma: r.Sigma, RelDeadline: r.Deadline, UserN: r.UserN}
	if err := t.Validate(); err != nil {
		return rt.Task{}, fmt.Errorf("server: invalid task: %w", err)
	}
	return t, nil
}

// BatchRequest is the wire form of one SubmitBatch call.
type BatchRequest struct {
	Tasks []TaskRequest `json:"tasks"`
}

// DecisionResponse is the wire form of one admission decision. Reason is
// the stable string enum token and Code its stable integer status — the
// same values whether the decision arrives as a submit response or on the
// event stream.
type DecisionResponse struct {
	TaskID   int64       `json:"task_id"`
	Accepted bool        `json:"accepted"`
	At       float64     `json:"at"`
	Shard    int         `json:"shard"`
	Reason   errs.Reason `json:"reason,omitempty"`
	Code     int         `json:"code"`

	// RetryAfter (wall seconds) is set on busy rejections only: the queue
	// slack until the next pending commit frees capacity.
	RetryAfter float64 `json:"retry_after,omitempty"`

	// Plan details, accepted decisions only.
	Nodes  []int     `json:"nodes,omitempty"`
	Starts []float64 `json:"starts,omitempty"`
	Alphas []float64 `json:"alphas,omitempty"`
	Est    float64   `json:"est,omitempty"`
	Rounds int       `json:"rounds,omitempty"`
}

// decisionResponse converts an engine decision to its wire form.
func decisionResponse(d service.Decision, s *Server) DecisionResponse {
	resp := DecisionResponse{
		TaskID:   d.TaskID,
		Accepted: d.Accepted,
		At:       d.At,
		Shard:    d.Shard,
		Reason:   d.Reason,
		Code:     d.Reason.Code(),
		Nodes:    d.Nodes,
		Starts:   d.Starts,
		Alphas:   d.Alphas,
		Est:      d.Est,
		Rounds:   d.Rounds,
	}
	if d.Reason == errs.ReasonBusy {
		resp.RetryAfter = s.retryAfterSeconds()
	}
	return resp
}

// BatchResponse is the wire form of one SubmitBatch result. On a hard
// mid-batch error the decisions made so far are included alongside the
// error, so the client can resubmit exactly the unconsidered tail.
type BatchResponse struct {
	Decisions []DecisionResponse `json:"decisions"`
	Accepted  int                `json:"accepted"`
	Rejected  int                `json:"rejected"`

	Error       string      `json:"error,omitempty"`
	ErrorReason errs.Reason `json:"error_reason,omitempty"`
}

// ErrorResponse is the wire form of a hard error (malformed input, closed
// or draining service, cancelled context).
type ErrorResponse struct {
	Error      string      `json:"error"`
	Code       int         `json:"code"`
	Reason     errs.Reason `json:"reason,omitempty"`
	RetryAfter float64     `json:"retry_after,omitempty"`
}

// StatsResponse is the wire form of /v1/stats: the engine snapshot plus
// server-level accounting.
type StatsResponse struct {
	service.Stats
	RejectRatio   float64  `json:"reject_ratio"`
	NextCommit    *float64 `json:"next_commit,omitempty"`
	Version       string   `json:"version,omitempty"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Draining      bool     `json:"draining"`
	HTTPRequests  int64    `json:"http_requests"`
	HTTP5xx       int64    `json:"http_5xx"`

	// Subscribers lists every active event-stream subscriber with its own
	// dropped-event count (Stats.EventsDropped is the bus-wide total).
	Subscribers []SubscriberStats `json:"subscribers,omitempty"`

	// NodeStates lists every node's lifecycle state token ("up",
	// "draining", "down"), indexed by the engine-wide node id (shard-major
	// on a pool) — the target surface of POST /v1/nodes/{id}/{action}.
	NodeStates []string `json:"node_states,omitempty"`
}

// SubscriberStats is one active SSE subscriber's view in /v1/stats.
type SubscriberStats struct {
	ID      int64  `json:"id"`
	Dropped uint64 `json:"dropped"`
}

// HealthResponse is the wire form of /healthz: Status is "ok" (200) while
// the admission gate is open, "draining" (503) once it closes.
type HealthResponse struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
}

// EventResponse is the wire form of one stream event. Gap events (kind
// "gap") report Dropped — how many events this subscriber lost since the
// previous gap notice — so consumers detect missing decisions instead of
// silently skipping them.
type EventResponse struct {
	Kind  string  `json:"kind"`
	Time  float64 `json:"time"`
	Shard int     `json:"shard"`

	TaskID   int64   `json:"task_id,omitempty"`
	Sigma    float64 `json:"sigma,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	Arrival  float64 `json:"arrival,omitempty"`

	Nodes int     `json:"nodes,omitempty"`
	Est   float64 `json:"est,omitempty"`

	Reason errs.Reason `json:"reason,omitempty"`
	Code   int         `json:"code,omitempty"`

	// Gap events only.
	Dropped      uint64 `json:"dropped,omitempty"`
	DroppedTotal uint64 `json:"dropped_total,omitempty"`
}

// eventResponse converts a bus event to its wire form.
func eventResponse(ev service.Event) EventResponse {
	resp := EventResponse{
		Kind:     ev.Kind.String(),
		Time:     ev.Time,
		Shard:    ev.Shard,
		TaskID:   ev.Task.ID,
		Sigma:    ev.Task.Sigma,
		Deadline: ev.Task.RelDeadline,
		Arrival:  ev.Task.Arrival,
		Nodes:    ev.Nodes,
		Est:      ev.Est,
		Reason:   ev.Reason,
	}
	if ev.Kind == service.EventReject {
		resp.Code = ev.Reason.Code()
	}
	return resp
}
