package service

import (
	"math"
	"sync"
	"time"

	"rtdls/internal/sim"
)

// Clock supplies the service's notion of "now" in simulation time units.
// The same admission engine runs unchanged under the discrete-event
// simulator (SimClock), under real time (WallClock) or under test control
// (ManualClock). Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time. It must be monotonically
	// non-decreasing across calls.
	Now() float64
}

// SimClock adapts a discrete-event simulator to the Clock interface: the
// service's "now" is the timestamp of the event currently executing. The
// driver uses it to replay workloads deterministically.
type SimClock struct{ Sim *sim.Simulator }

// Now implements Clock.
func (c SimClock) Now() float64 { return c.Sim.Now() }

// WallClock maps real time onto simulation time units: Now returns the
// number of units elapsed since the clock was created, at Scale units per
// second. It is what a deployed admission-control service runs under.
type WallClock struct {
	start time.Time
	scale float64
}

// NewWallClock returns a wall clock starting at 0 that advances scale
// simulation time units per real second (scale <= 0 defaults to 1).
func NewWallClock(scale float64) *WallClock {
	if !(scale > 0) || math.IsInf(scale, 0) {
		scale = 1
	}
	return &WallClock{start: time.Now(), scale: scale}
}

// Now implements Clock.
func (c *WallClock) Now() float64 { return time.Since(c.start).Seconds() * c.scale }

// ManualClock is an explicitly advanced clock for tests and for callers
// that drive time themselves (e.g. replaying a trace). The zero value is
// ready to use at time 0.
type ManualClock struct {
	mu  sync.Mutex
	now float64
}

// NewManualClock returns a manual clock set to t.
func NewManualClock(t float64) *ManualClock {
	return &ManualClock{now: t}
}

// Now implements Clock.
func (c *ManualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves the clock to t. Moving backwards is a no-op: the clock is
// monotone, matching every other Clock implementation.
func (c *ManualClock) Set(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Advance moves the clock forward by d (negative d is a no-op) and returns
// the new time.
func (c *ManualClock) Advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}
