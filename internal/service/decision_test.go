package service

import (
	"testing"

	"rtdls/internal/rt"
)

// TestNewDecisionAllocs pins the accepted-Decision construction to exactly
// two heap allocations: one float64 slab backing both Starts and Alphas,
// and one []int for Nodes. BenchmarkServiceSubmit's allocs/op rides on
// this — a third allocation here shows up directly on the accept hot path.
func TestNewDecisionAllocs(t *testing.T) {
	pl := &rt.Plan{
		Nodes:  []int{3, 1, 4, 1, 5},
		Starts: []float64{0, 1, 2, 3, 4},
		Alphas: []float64{0.2, 0.2, 0.2, 0.2, 0.2},
		Est:    42,
		Rounds: 1,
	}
	allocs := testing.AllocsPerRun(100, func() {
		d := newDecision(7, 1.5, 0, pl)
		if len(d.Starts) != len(pl.Starts) {
			t.Fatal("decision lost its starts")
		}
	})
	if allocs != 2 {
		t.Fatalf("newDecision allocates %.0f times per call, want exactly 2 (one float slab + one node slice)", allocs)
	}
}

// TestNewDecisionIndependence verifies the slab-backed copies really are
// copies: mutating the source plan after the fact must not leak into the
// returned Decision, and the two float views must not alias each other.
func TestNewDecisionIndependence(t *testing.T) {
	pl := &rt.Plan{
		Nodes:  []int{0, 1},
		Starts: []float64{10, 20},
		Alphas: []float64{0.5, 0.5},
	}
	d := newDecision(1, 0, 0, pl)
	pl.Nodes[0], pl.Starts[0], pl.Alphas[0] = 9, 99, 0.9
	if d.Nodes[0] != 0 || d.Starts[0] != 10 || d.Alphas[0] != 0.5 {
		t.Fatalf("decision aliases the plan: %+v", d)
	}
	d.Starts = append(d.Starts, 30) // must not clobber Alphas' backing array
	if d.Alphas[0] != 0.5 || d.Alphas[1] != 0.5 {
		t.Fatalf("Starts append clobbered Alphas: %v", d.Alphas)
	}
}
