package service

import (
	"context"

	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

// Engine is the admission-control surface shared by a single-cluster
// Service and a multi-shard pool.Pool: everything the public rtdls.Service
// needs — submissions, the event stream, statistics and lifecycle — works
// identically whether one scheduler or K shards sit behind it. The
// single-cluster Service is exactly the K=1 special case.
type Engine interface {
	// Submit runs the admission test for one task and returns the decision.
	Submit(ctx context.Context, t rt.Task) (Decision, error)
	// SubmitBatch submits several tasks in order, one decision per task.
	SubmitBatch(ctx context.Context, tasks []rt.Task) ([]Decision, error)
	// Subscribe attaches a consumer to the decision/lifecycle event stream.
	Subscribe(buffer int) (<-chan Event, func())
	// SubscribeStream attaches a consumer and returns its Subscription
	// handle, exposing the subscriber's own dropped-event count.
	SubscribeStream(buffer int) *Subscription
	// SetAccepting flips the admission gate: while false, submissions fail
	// fast with ErrClusterBusy while commits and the event stream keep
	// running — the first step of a graceful drain.
	SetAccepting(accepting bool)
	// Accepting reports whether the admission gate is open (lock-free; the
	// health endpoint's readiness signal).
	Accepting() bool
	// Stats returns a snapshot of admission counters and cluster accounting,
	// aggregated over every shard.
	Stats() Stats
	// Exec returns the accumulated execution metrics of committed plans,
	// aggregated over every shard.
	Exec() ExecStats
	// NextCommit returns the earliest pending first-transmission time over
	// all shards, or ok=false when nothing is waiting.
	NextCommit() (at float64, ok bool)
	// CommitDue starts every transmission due at the given time.
	CommitDue(now float64) error
	// Pump commits everything due at the current clock reading.
	Pump() error
	// Drain commits every remaining waiting plan regardless of the clock.
	Drain() error
	// Clock returns the engine's clock.
	Clock() Clock
	// DrainNode stops placing new work on the node (committed work runs to
	// completion), re-validating every waiting plan; tasks that no longer
	// fit are displaced and, on a pool, re-admitted elsewhere.
	DrainNode(node int) (FleetResult, error)
	// FailNode removes the node's capacity immediately; waiting plans are
	// re-validated exactly as for DrainNode.
	FailNode(node int) (FleetResult, error)
	// RestoreNode returns a drained or failed node to service; nothing is
	// displaced (capacity only grows).
	RestoreNode(node int) (FleetResult, error)
	// AddNode grows the fleet by one node with the given cost coefficients
	// and returns its engine-wide node id.
	AddNode(nc dlt.NodeCost) (int, error)
	// NodeStates returns every node's lifecycle state, indexed by the
	// engine-wide node id (shard-major for a pool).
	NodeStates() []NodeState
	// SetSpeculation toggles optimistic (two-phase) admission on every
	// shard. On by default; off forces the fully serialized path.
	SetSpeculation(on bool)
	// Close marks the engine closed and tears down the event stream.
	Close() error
}

// Service implements Engine; pool.Pool provides the multi-shard
// implementation.
var _ Engine = (*Service)(nil)
