package service

import (
	"fmt"
	"sync"

	"rtdls/internal/rt"
)

// EventKind labels a service lifecycle event.
type EventKind uint8

const (
	// EventAccept: the task passed the schedulability test and joined the
	// waiting queue.
	EventAccept EventKind = iota
	// EventReject: the task was rejected (see Event.Reason for the typed
	// cause: ErrInfeasible, ErrDeadlinePast or ErrClusterBusy).
	EventReject
	// EventCommit: the task's first data transmission began; its plan is
	// final and its nodes are occupied.
	EventCommit
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventAccept:
		return "accept"
	case EventReject:
		return "reject"
	case EventCommit:
		return "commit"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of the service's decision/lifecycle stream.
type Event struct {
	Kind EventKind
	Time float64 // service time of the event
	Task rt.Task // the task, by value

	// Shard identifies the cluster shard the event happened on: always 0
	// for a standalone Service, the shard index for a pool member.
	Shard int

	// Nodes and Est describe the plan (Accept/Commit events only).
	Nodes int
	Est   float64

	// Reason is the typed rejection cause (Reject events only): one of
	// errs.ErrInfeasible, errs.ErrDeadlinePast, errs.ErrClusterBusy.
	Reason error
}

// subscriber is one event-stream consumer with a private buffered channel.
type subscriber struct {
	ch      chan Event
	dropped uint64
}

// Bus fans lifecycle events out to any number of subscribers. Publishing
// never blocks: a subscriber that falls behind its buffer loses events
// (counted per subscriber) rather than stalling admission control. A Bus
// can be private to one Service (the default) or shared by every shard of
// a pool, giving consumers one merged, shard-tagged stream.
type Bus struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	lost   uint64 // drops accumulated from detached subscribers
	closed bool
}

// NewBus returns an empty event bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*subscriber]struct{})}
}

// Subscribe registers a consumer with the given channel buffer (minimum 1)
// and returns its channel plus a cancel function. After cancel (or bus
// close) the channel is closed.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	s := &subscriber{ch: make(chan Event, buffer)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			_, live := b.subs[s]
			delete(b.subs, s)
			if live {
				b.lost += s.dropped
			}
			b.mu.Unlock()
			if live {
				close(s.ch)
			}
		})
	}
	return s.ch, cancel
}

// Publish delivers ev to every subscriber without blocking.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
}

// DroppedTotal returns the number of events lost over the bus's lifetime:
// drops at current subscribers plus drops carried over from detached ones.
// It is monotone — cancelling a lagging subscriber does not erase its
// losses.
func (b *Bus) DroppedTotal() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.lost
	for s := range b.subs {
		n += s.dropped
	}
	return n
}

// Close closes every subscriber channel and rejects future subscriptions.
// It is idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		b.lost += s.dropped
		close(s.ch)
		delete(b.subs, s)
	}
}

// HasSubscribers reports whether any consumer is attached (fast path to
// skip event construction entirely on hot simulation loops).
func (b *Bus) HasSubscribers() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs) > 0
}
