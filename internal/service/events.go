package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// EventKind labels a service lifecycle event.
type EventKind uint8

const (
	// EventAccept: the task passed the schedulability test and joined the
	// waiting queue.
	EventAccept EventKind = iota
	// EventReject: the task was rejected (see Event.Reason for the typed
	// cause: ErrInfeasible, ErrDeadlinePast or ErrClusterBusy).
	EventReject
	// EventCommit: the task's first data transmission began; its plan is
	// final and its nodes are occupied.
	EventCommit
	// EventDisplace: an admitted-but-uncommitted task lost its seat
	// because fleet capacity changed (a node drained or failed) and the
	// re-run schedulability test found no replacement on this shard. The
	// event's Reason is ReasonNodeUnavailable. A pool re-admits displaced
	// tasks on its remaining shards; a fresh EventAccept on another shard
	// follows when that succeeds.
	EventDisplace
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventAccept:
		return "accept"
	case EventReject:
		return "reject"
	case EventCommit:
		return "commit"
	case EventDisplace:
		return "displace"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of the service's decision/lifecycle stream.
type Event struct {
	Kind EventKind
	Time float64 // service time of the event
	Task rt.Task // the task, by value

	// Shard identifies the cluster shard the event happened on: always 0
	// for a standalone Service, the shard index for a pool member.
	Shard int

	// Nodes and Est describe the plan (Accept/Commit events only).
	Nodes int
	Est   float64

	// Reason is the wire-stable rejection reason (Reject events only):
	// ReasonInfeasible, ReasonDeadlinePast or ReasonBusy. It serializes as
	// its string token and still matches the sentinels under errors.Is.
	Reason errs.Reason `json:",omitempty"`
}

// subscriber is one event-stream consumer with a private buffered channel.
type subscriber struct {
	ch      chan Event
	dropped atomic.Uint64
}

// Bus fans lifecycle events out to any number of subscribers. Publishing
// never blocks: a subscriber that falls behind its buffer loses events
// (counted per subscriber) rather than stalling admission control. A Bus
// can be private to one Service (the default) or shared by every shard of
// a pool, giving consumers one merged, shard-tagged stream.
//
// The subscriber count and drop totals live on atomics so the submit fast
// path (HasSubscribers) and the /metrics scrape (DroppedTotal) never touch
// the bus mutex, which Publish holds while the admission lock is held.
type Bus struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	nsubs  atomic.Int64
	drops  atomic.Uint64 // lifetime drop total, surviving subscriber detach
	closed bool
}

// NewBus returns an empty event bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*subscriber]struct{})}
}

// Subscribe registers a consumer with the given channel buffer (minimum 1)
// and returns its channel plus a cancel function. After cancel (or bus
// close) the channel is closed. Consumers that need to detect their own
// gaps should use SubscribeStream instead, whose handle exposes the
// per-subscriber dropped count.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	sub := b.SubscribeStream(buffer)
	return sub.C(), sub.Cancel
}

// Subscription is one consumer's handle on the event stream. Unlike the
// plain Subscribe channel, it exposes the subscriber's own dropped-event
// count, so a lossy consumer (an SSE streamer, a remote replicator) can
// detect exactly how many events it missed and surface the gap instead of
// silently skipping decisions.
type Subscription struct {
	b    *Bus
	s    *subscriber
	once sync.Once
}

// SubscribeStream registers a consumer with the given channel buffer
// (minimum 1) and returns its Subscription handle. On a closed bus the
// returned subscription is already terminated (its channel is closed).
func (b *Bus) SubscribeStream(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &subscriber{ch: make(chan Event, buffer)}
	sub := &Subscription{b: b, s: s}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.ch)
		sub.once.Do(func() {}) // already terminated; Cancel is a no-op
		return sub
	}
	b.subs[s] = struct{}{}
	b.nsubs.Store(int64(len(b.subs)))
	b.mu.Unlock()
	return sub
}

// C returns the subscription's event channel. It is closed by Cancel or
// when the bus closes.
func (sub *Subscription) C() <-chan Event { return sub.s.ch }

// Dropped returns how many events this subscriber has lost so far because
// its buffer was full. The count is monotone and remains readable after
// the subscription ends.
func (sub *Subscription) Dropped() uint64 { return sub.s.dropped.Load() }

// Cancel detaches the subscriber and closes its channel. Idempotent, and a
// no-op after the bus itself has closed the subscription.
func (sub *Subscription) Cancel() {
	sub.once.Do(func() {
		sub.b.mu.Lock()
		_, live := sub.b.subs[sub.s]
		delete(sub.b.subs, sub.s)
		sub.b.nsubs.Store(int64(len(sub.b.subs)))
		sub.b.mu.Unlock()
		if live {
			close(sub.s.ch)
		}
	})
}

// Publish delivers ev to every subscriber without blocking.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.drops.Add(1)
		}
	}
}

// DroppedTotal returns the number of events lost over the bus's lifetime.
// It is monotone — cancelling a lagging subscriber does not erase its
// losses — and lock-free, so metrics scrapes read it without contending
// with publishers.
func (b *Bus) DroppedTotal() uint64 { return b.drops.Load() }

// Close closes every subscriber channel and rejects future subscriptions.
// It is idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		close(s.ch)
		delete(b.subs, s)
	}
	b.nsubs.Store(0)
}

// HasSubscribers reports whether any consumer is attached — the lock-free
// fast path that lets hot loops skip event construction entirely.
func (b *Bus) HasSubscribers() bool { return b.nsubs.Load() > 0 }
