package service

import (
	"fmt"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// NodeState re-exports the cluster lifecycle states so Engine consumers
// (the wire server, the pool) never import the cluster package directly.
type NodeState = cluster.NodeState

// Node lifecycle states.
const (
	NodeUp       = cluster.NodeUp
	NodeDraining = cluster.NodeDraining
	NodeDown     = cluster.NodeDown
)

// FleetResult reports the outcome of one fleet operation. Displaced counts
// the admitted-but-uncommitted tasks that lost their seat; Readmitted the
// displaced tasks re-seated on another shard through the normal
// schedulability test (always 0 for a standalone service, which has
// nowhere else to put them — replanning the same queue on the same shard
// cannot revive a task the whole-queue test just dropped).
type FleetResult struct {
	Node       int       `json:"node"`
	State      NodeState `json:"-"`
	StateToken string    `json:"state"`
	Displaced  int       `json:"displaced"`
	Readmitted int       `json:"readmitted"`
}

// DrainNode stops placing new work on the node; committed work runs to
// completion. Waiting plans touching the node are replanned onto the live
// fleet, and tasks that no longer fit are displaced (EventDisplace with
// ReasonNodeUnavailable on the stream).
func (s *Service) DrainNode(node int) (FleetResult, error) {
	return s.setNodeState(node, NodeDraining)
}

// FailNode removes the node's capacity immediately. Like DrainNode for
// waiting plans; the model keeps committed transmissions on their
// timeline (interrupted work is not re-simulated), so FailNode differs
// from DrainNode only in the reported state until RestoreNode.
func (s *Service) FailNode(node int) (FleetResult, error) {
	return s.setNodeState(node, NodeDown)
}

// RestoreNode returns a drained or failed node to service. The node's
// release time was never touched, so a fail-then-restore cycle with no
// interim admissions leaves the scheduler bit-identical to one that never
// failed. Nothing is displaced; waiting plans pick the node up on the
// next admission test.
func (s *Service) RestoreNode(node int) (FleetResult, error) {
	return s.setNodeState(node, NodeUp)
}

// SetNodeState transitions one node and re-validates the waiting queue on
// capacity loss; the displaced tasks are returned so a pool can try to
// re-admit them elsewhere. Direct callers normally use the
// DrainNode/FailNode/RestoreNode wrappers.
func (s *Service) SetNodeState(node int, st NodeState) ([]rt.Task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, fmt.Errorf("service: closed: %w", errs.ErrClusterBusy)
	}
	now := s.clock.Now()
	// Commit everything already due first: a transmission that should have
	// started by now is committed work, not displaceable.
	if err := s.commitDueLocked(now); err != nil {
		return nil, err
	}
	disp, err := s.sched.SetNodeState(node, st, now)
	if err != nil {
		return nil, err
	}
	s.refreshFleetLocked()
	var out []rt.Task
	for _, t := range disp {
		s.displaced.Add(1)
		if s.inst != nil {
			s.inst.displacements.Inc()
		}
		s.publishLocked(Event{Kind: EventDisplace, Time: now, Task: *t, Reason: errs.ReasonNodeUnavailable})
		out = append(out, *t)
	}
	if s.inst != nil {
		s.noteQueueLocked()
	}
	return out, nil
}

func (s *Service) setNodeState(node int, st NodeState) (FleetResult, error) {
	disp, err := s.SetNodeState(node, st)
	if err != nil {
		return FleetResult{}, err
	}
	return FleetResult{Node: node, State: st, StateToken: st.String(), Displaced: len(disp)}, nil
}

// AddNode grows the cluster by one node with the given cost coefficients,
// available from the current clock reading, and returns its id. Existing
// ids and release times are untouched.
func (s *Service) AddNode(nc dlt.NodeCost) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return 0, fmt.Errorf("service: closed: %w", errs.ErrClusterBusy)
	}
	id, err := s.sched.AddNode(nc, s.clock.Now())
	if err != nil {
		return 0, err
	}
	s.nodesTotal.Store(int64(s.cl.N()))
	s.refreshFleetLocked()
	return id, nil
}

// NodeStates returns every node's lifecycle state, indexed by node id.
func (s *Service) NodeStates() []NodeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.NodeStateList()
}

// LiveNodes returns the number of placeable (NodeUp) nodes — lock-free,
// sampled by the pool's placement layer on every submit.
func (s *Service) LiveNodes() int { return int(s.nodesUp.Load()) }

// Nodes returns the current cluster size (it grows with AddNode) without
// touching the admission lock.
func (s *Service) Nodes() int { return int(s.nodesTotal.Load()) }

// refreshFleetLocked re-derives the lock-free fleet mirrors and gauges
// from the cluster's node states. Callers hold s.mu (or, during New, have
// exclusive access).
func (s *Service) refreshFleetLocked() {
	up, draining, down := s.cl.StateCounts()
	s.nodesUp.Store(int64(up))
	s.nodesDraining.Store(int64(draining))
	s.nodesDown.Store(int64(down))
	if s.inst != nil {
		s.inst.setFleet(up, draining, down)
	}
}
