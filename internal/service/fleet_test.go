package service

import (
	"context"
	"errors"
	"testing"

	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// saturate fills all 16 nodes with a task that commits at once, then
// admits a second task that must wait for released capacity.
func saturate(t *testing.T, svc *Service) (waitingID int64) {
	t.Helper()
	ctx := context.Background()
	tight := baseline.ExecTime(400, 16) * 1.01
	if dec, err := svc.Submit(ctx, rt.Task{ID: 1, Sigma: 400, RelDeadline: tight}); err != nil || !dec.Accepted {
		t.Fatalf("saturating submit: %+v, %v", dec, err)
	}
	wait := tight + baseline.ExecTime(400, 16)*1.01
	if dec, err := svc.Submit(ctx, rt.Task{ID: 2, Sigma: 400, RelDeadline: wait}); err != nil || !dec.Accepted {
		t.Fatalf("waiting submit: %+v, %v", dec, err)
	}
	if svc.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1 waiting task", svc.QueueLen())
	}
	return 2
}

func TestDrainDisplacesWaitingTask(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.Clock = NewManualClock(0) })
	events, cancel := svc.Subscribe(64)
	defer cancel()
	waitingID := saturate(t, svc)

	// Drain nodes one by one. The waiting task's deadline cannot survive
	// the fleet shrinking to one node (ExecTime on 1 node is an order of
	// magnitude past it), so a drain along the way must displace it.
	displacedAt := -1
	for node := 0; node < 16; node++ {
		res, err := svc.DrainNode(node)
		if err != nil {
			t.Fatal(err)
		}
		if res.State != NodeDraining || res.StateToken != "draining" || res.Node != node {
			t.Fatalf("result = %+v, want node %d draining", res, node)
		}
		if res.Readmitted != 0 {
			t.Fatalf("result = %+v: a standalone service cannot readmit", res)
		}
		if res.Displaced > 0 {
			displacedAt = node
			break
		}
		if svc.QueueLen() != 1 {
			t.Fatalf("queue len = %d with no displacement yet", svc.QueueLen())
		}
	}
	if displacedAt < 0 {
		t.Fatal("no drain displaced the waiting task")
	}
	if svc.QueueLen() != 0 {
		t.Fatalf("queue len = %d after displacement, want 0", svc.QueueLen())
	}

	st := svc.Stats()
	if st.Displaced != 1 || st.NodesDraining != displacedAt+1 || st.NodesUp != 15-displacedAt {
		t.Fatalf("stats = %+v after draining %d nodes", st, displacedAt+1)
	}
	// The committed saturating task must be untouched.
	if st.Commits != 1 || st.LateCommits != 0 {
		t.Fatalf("stats = %+v, want the committed plan intact", st)
	}

	cancel()
	var disp *Event
	for ev := range events {
		if ev.Kind == EventDisplace {
			ev := ev
			disp = &ev
		}
	}
	if disp == nil {
		t.Fatal("no EventDisplace on the stream")
	}
	if disp.Task.ID != waitingID || disp.Reason != errs.ReasonNodeUnavailable {
		t.Fatalf("displace event = %+v, want task %d / node-unavailable", disp, waitingID)
	}
}

func TestRestoreDisplacesNothing(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.Clock = NewManualClock(0) })
	saturate(t, svc)
	if res, err := svc.RestoreNode(3); err != nil || res.Displaced != 0 {
		t.Fatalf("restore of an up node: %+v, %v", res, err)
	}
	if svc.QueueLen() != 1 {
		t.Fatalf("queue len = %d, restore must not displace", svc.QueueLen())
	}
}

func TestFailNodeStateAccounting(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.Clock = NewManualClock(0) })
	if _, err := svc.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DrainNode(1); err != nil {
		t.Fatal(err)
	}
	states := svc.NodeStates()
	if states[0] != NodeDown || states[1] != NodeDraining || states[2] != NodeUp {
		t.Fatalf("states = %v", states[:3])
	}
	if svc.LiveNodes() != 14 {
		t.Fatalf("live = %d, want 14", svc.LiveNodes())
	}
	st := svc.Stats()
	if st.NodesUp != 14 || st.NodesDraining != 1 || st.NodesDown != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := svc.RestoreNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RestoreNode(1); err != nil {
		t.Fatal(err)
	}
	if svc.LiveNodes() != 16 {
		t.Fatalf("live = %d after restore, want 16", svc.LiveNodes())
	}
}

func TestSetNodeStateBadNode(t *testing.T) {
	svc := newTestService(t)
	if _, err := svc.DrainNode(99); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("out-of-range node: err = %v, want ErrBadConfig", err)
	}
	if _, err := svc.FailNode(-1); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("negative node: err = %v, want ErrBadConfig", err)
	}
}

// TestFailRestoreBitIdentical is the churn-transparency property: a fail →
// restore cycle with nothing admitted in between leaves the scheduler
// bit-identical to one that never failed — same release times, and the
// same decisions for every subsequent arrival.
func TestFailRestoreBitIdentical(t *testing.T) {
	mk := func() *Service {
		return newTestService(t, func(c *Config) { c.Clock = NewManualClock(0) })
	}
	churned, pristine := mk(), mk()
	ctx := context.Background()

	// Identical prefix on both services: one task that commits at once,
	// leaving the waiting queue empty (the property requires an empty
	// interim queue — a waiting plan replanned onto the shrunken fleet
	// keeps its new node set until the next whole-queue test).
	prefix := rt.Task{ID: 1, Sigma: 400, RelDeadline: baseline.ExecTime(400, 16) * 1.2}
	for _, svc := range []*Service{churned, pristine} {
		if dec, err := svc.Submit(ctx, prefix); err != nil || !dec.Accepted {
			t.Fatalf("prefix submit: %+v, %v", dec, err)
		}
		if err := svc.Pump(); err != nil {
			t.Fatal(err)
		}
		if svc.QueueLen() != 0 {
			t.Fatalf("queue len = %d, the prefix task must commit at once", svc.QueueLen())
		}
	}

	// Fail and restore with an empty interim: no admissions in between.
	if _, err := churned.FailNode(5); err != nil {
		t.Fatal(err)
	}
	if _, err := churned.RestoreNode(5); err != nil {
		t.Fatal(err)
	}

	a1, a2 := churned.Cluster().AvailTimes(), pristine.Cluster().AvailTimes()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("node %d release time %v != %v after fail-restore", i, a1[i], a2[i])
		}
	}

	// Every subsequent arrival must get the bit-identical plan.
	for id := int64(10); id < 30; id++ {
		task := rt.Task{ID: id, Sigma: 80 + float64(id), RelDeadline: 5000 + 300*float64(id)}
		d1, err1 := churned.Submit(ctx, task)
		d2, err2 := pristine.Submit(ctx, task)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d1.Accepted != d2.Accepted || d1.Est != d2.Est || len(d1.Nodes) != len(d2.Nodes) {
			t.Fatalf("task %d diverged: %+v vs %+v", id, d1, d2)
		}
		for i := range d1.Nodes {
			if d1.Nodes[i] != d2.Nodes[i] || d1.Starts[i] != d2.Starts[i] || d1.Alphas[i] != d2.Alphas[i] {
				t.Fatalf("task %d chunk %d diverged", id, i)
			}
		}
	}
	if s1, s2 := churned.Stats(), pristine.Stats(); s1.Accepts != s2.Accepts || s1.Commits != s2.Commits {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
}

// TestDrainedNodeExcludedFromNewPlans: while a node drains, fresh
// admissions never place work on it; after restore they may again.
func TestDrainedNodeExcludedFromNewPlans(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.Clock = NewManualClock(0) })
	ctx := context.Background()
	if _, err := svc.DrainNode(7); err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 8; id++ {
		dec, err := svc.Submit(ctx, rt.Task{ID: id, Sigma: 300, RelDeadline: 20000})
		if err != nil || !dec.Accepted {
			t.Fatalf("submit %d: %+v, %v", id, dec, err)
		}
		for _, n := range dec.Nodes {
			if n == 7 {
				t.Fatalf("task %d placed on draining node 7: %+v", id, dec.Nodes)
			}
		}
	}
	if _, err := svc.RestoreNode(7); err != nil {
		t.Fatal(err)
	}
	// A fleet-wide task must be able to use node 7 again.
	dec, err := svc.Submit(ctx, rt.Task{ID: 100, Sigma: 4000, RelDeadline: 1e6})
	if err != nil || !dec.Accepted {
		t.Fatalf("post-restore submit: %+v, %v", dec, err)
	}
}

func TestAddNodeGrowsFleet(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.Clock = NewManualClock(0) })
	id, err := svc.AddNode(dlt.NodeCost{Cms: baseline.Cms, Cps: baseline.Cps})
	if err != nil {
		t.Fatal(err)
	}
	if id != 16 {
		t.Fatalf("new node id = %d, want 16", id)
	}
	if svc.Nodes() != 17 || svc.LiveNodes() != 17 {
		t.Fatalf("nodes = %d live = %d, want 17/17", svc.Nodes(), svc.LiveNodes())
	}
	if got := len(svc.NodeStates()); got != 17 {
		t.Fatalf("NodeStates len = %d, want 17", got)
	}
}
