package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// countingCtx reports Canceled once Err has been consulted `allow` times —
// it models a client that walks away partway through a batch.
type countingCtx struct {
	context.Context
	allow int32
	calls atomic.Int32
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.allow {
		return context.Canceled
	}
	return nil
}

func TestSubmitBatchCancelledMidBatch(t *testing.T) {
	svc := newTestService(t)
	ctx := &countingCtx{Context: context.Background(), allow: 2}
	tasks := []rt.Task{
		{ID: 1, Sigma: 200, RelDeadline: 1e6},
		{ID: 2, Sigma: 200, RelDeadline: 1e6},
		{ID: 3, Sigma: 200, RelDeadline: 1e6},
		{ID: 4, Sigma: 200, RelDeadline: 1e6},
	}
	decs, err := svc.SubmitBatch(ctx, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The first two tasks were considered before the cancellation tripped;
	// the tail was never offered to the scheduler.
	if len(decs) != 2 {
		t.Fatalf("decisions = %d, want 2", len(decs))
	}
	if st := svc.Stats(); st.Arrivals != 2 {
		t.Fatalf("arrivals = %d, want 2", st.Arrivals)
	}
	if errs.Code(err) != errs.CodeCancelled {
		t.Fatalf("wire code = %d, want %d", errs.Code(err), errs.CodeCancelled)
	}
}

func TestSubmitDeadlineExpired(t *testing.T) {
	svc := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := svc.Submit(ctx, rt.Task{ID: 1, Sigma: 200, RelDeadline: 2800})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st := svc.Stats(); st.Arrivals != 0 {
		t.Fatalf("expired submit reached the scheduler: %+v", st)
	}
	if errs.Code(err) != errs.CodeCancelled {
		t.Fatalf("wire code = %d, want %d", errs.Code(err), errs.CodeCancelled)
	}
}

func TestSetAcceptingGate(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()
	svc.SetAccepting(false)
	_, err := svc.Submit(ctx, rt.Task{ID: 1, Sigma: 200, RelDeadline: 2800})
	if !errors.Is(err, errs.ErrClusterBusy) {
		t.Fatalf("gated submit err = %v, want ErrClusterBusy", err)
	}
	if errs.Code(err) != errs.CodeBusy {
		t.Fatalf("wire code = %d, want %d", errs.Code(err), errs.CodeBusy)
	}
	// The gate is reversible (unlike Close).
	svc.SetAccepting(true)
	if dec, err := svc.Submit(ctx, rt.Task{ID: 2, Sigma: 200, RelDeadline: 2800}); err != nil || !dec.Accepted {
		t.Fatalf("reopened submit: dec=%+v err=%v", dec, err)
	}
}

// TestDrainRacesConcurrentSubmits closes the admission gate and drains
// while submitters hammer the service: no accepted task may be lost, and
// the queue must be empty afterwards. Run with -race this doubles as a
// locking check on the gate/drain path.
func TestDrainRacesConcurrentSubmits(t *testing.T) {
	svc := newTestService(t)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				id := int64(w*perWorker + i + 1)
				_, err := svc.Submit(context.Background(), rt.Task{ID: id, Sigma: 150, RelDeadline: 1e6})
				if err != nil && !errors.Is(err, errs.ErrClusterBusy) {
					t.Errorf("submit %d: unexpected error %v", id, err)
					return
				}
			}
		}(w)
	}
	close(start)
	// Slam the gate shut partway through the barrage, then drain.
	svc.SetAccepting(false)
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Submits that slipped in before the gate may still be waiting — they
	// arrived after the drain pass. Drain once more now that the barrage
	// is over; the invariant is that nothing accepted is ever dropped.
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("accepted work lost: %+v", st)
	}
}

func TestSubscriptionDroppedCount(t *testing.T) {
	svc := newTestService(t)
	sub := svc.SubscribeStream(1)
	defer sub.Cancel()
	ctx := context.Background()
	// Three accepts publish at least three events into a 1-slot buffer
	// nobody is reading: everything past the first is dropped and counted.
	for i := 1; i <= 3; i++ {
		if dec, err := svc.Submit(ctx, rt.Task{ID: int64(i), Sigma: 150, RelDeadline: 1e6}); err != nil || !dec.Accepted {
			t.Fatalf("submit %d: dec=%+v err=%v", i, dec, err)
		}
	}
	if got := sub.Dropped(); got < 2 {
		t.Fatalf("Dropped() = %d, want >= 2", got)
	}
	if st := svc.Stats(); st.EventsDropped != sub.Dropped() {
		t.Fatalf("aggregate EventsDropped %d != subscriber %d", st.EventsDropped, sub.Dropped())
	}
	// The one buffered event is still deliverable.
	select {
	case ev, ok := <-sub.C():
		if !ok || ev.Kind != EventAccept {
			t.Fatalf("first event = %+v ok=%v", ev, ok)
		}
	default:
		t.Fatal("buffered event missing")
	}
}

func TestSubscriptionEndsOnClose(t *testing.T) {
	svc := newTestService(t)
	sub := svc.SubscribeStream(4)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after Close")
	}
	// Cancel after close is a harmless no-op.
	sub.Cancel()
}
