package service

import (
	"strconv"
	"sync"

	"rtdls/internal/cluster"
	"rtdls/internal/errs"
	"rtdls/internal/metrics"
	"rtdls/internal/rt"
)

// Metrics binds a metrics.Registry to the admission engine: per-stage
// admission latency histograms (implementing rt.StageObserver), per-shard
// outcome counters and load gauges, and the event-stream drop counter. One
// Metrics instance is shared by every shard of a pool — instruments are
// registered idempotently, keyed by shard index.
//
// Every update is an atomic store or add performed by the engine at the
// moment the state changes, so a /metrics scrape reads the instruments
// without ever touching the scheduler or service locks.
type Metrics struct {
	reg   *metrics.Registry
	stage [rt.NumStages]*metrics.Histogram

	mu     sync.Mutex
	shards map[int]*shardInstruments

	busOnce sync.Once

	readmitOnce sync.Once
	readmitHist *metrics.Histogram
}

// shardInstruments is one shard's counter/gauge set. The invariant the
// wire smoke test asserts — submits == accepts + rejects — holds per
// shard: every submission attempt a shard sees (including spillover
// retries) ends as exactly one accept or one reject at that shard.
type shardInstruments struct {
	submits *metrics.Counter
	accepts *metrics.Counter
	commits *metrics.Counter
	rejects map[errs.Reason]*metrics.Counter

	queueDepth    *metrics.Gauge
	queueDepthMax *metrics.Gauge
	utilization   *metrics.Gauge
	busyTime      *metrics.Gauge

	displacements *metrics.Counter
	fleetNodes    map[cluster.NodeState]*metrics.Gauge

	speculative *metrics.Counter
	conflicts   *metrics.Counter
}

// NewMetrics returns a Metrics bound to the registry, with the per-stage
// admission histograms pre-registered. Pass it to service.Config.Metrics
// or pool.Config.Metrics; nil disables instrumentation entirely.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{reg: reg, shards: make(map[int]*shardInstruments)}
	for st := rt.StageCandidate; int(st) < rt.NumStages; st++ {
		m.stage[st] = reg.Histogram("rtdls_admission_stage_seconds",
			"Wall-clock seconds spent in each admission pipeline stage.",
			metrics.Labels{"stage": st.String()})
	}
	return m
}

// Registry returns the underlying registry (for mounting /metrics and for
// registering additional instruments alongside the engine's).
func (m *Metrics) Registry() *metrics.Registry { return m.reg }

// ObserveStage implements rt.StageObserver: one sample per pipeline stage
// per admission test, recorded on atomic histograms.
func (m *Metrics) ObserveStage(stage rt.Stage, seconds float64) {
	if int(stage) < len(m.stage) {
		m.stage[stage].Observe(seconds)
	}
}

// decisionReasons are the rejection classes a Decision can carry; wire-only
// reasons (bad-request, cancelled, internal) never reach the engine.
var decisionReasons = []errs.Reason{errs.ReasonInfeasible, errs.ReasonDeadlinePast, errs.ReasonBusy}

// shard returns (registering on first use) shard i's instrument set.
func (m *Metrics) shard(i int) *shardInstruments {
	m.mu.Lock()
	defer m.mu.Unlock()
	if si, ok := m.shards[i]; ok {
		return si
	}
	lbl := metrics.Labels{"shard": strconv.Itoa(i)}
	si := &shardInstruments{
		submits: m.reg.Counter("rtdls_submits_total",
			"Submission attempts per shard (a spillover retry counts at every shard it touches).", lbl),
		accepts: m.reg.Counter("rtdls_accepts_total",
			"Tasks admitted by the schedulability test, per shard.", lbl),
		commits: m.reg.Counter("rtdls_commits_total",
			"Plans committed (first transmission started), per shard.", lbl),
		rejects: make(map[errs.Reason]*metrics.Counter, len(decisionReasons)),
		queueDepth: m.reg.Gauge("rtdls_queue_depth",
			"Admitted-but-uncommitted tasks right now, per shard.", lbl),
		queueDepthMax: m.reg.Gauge("rtdls_queue_depth_max",
			"High-water mark of the waiting queue, per shard.", lbl),
		utilization: m.reg.Gauge("rtdls_utilization",
			"Committed busy time over node-time capacity, per shard.", lbl),
		busyTime: m.reg.Gauge("rtdls_busy_time_seconds",
			"Committed node-time (node-seconds of busy capacity), per shard.", lbl),
	}
	for _, r := range decisionReasons {
		si.rejects[r] = m.reg.Counter("rtdls_rejects_total",
			"Tasks rejected, per shard and wire reason token.",
			metrics.Labels{"shard": strconv.Itoa(i), "reason": r.String()})
	}
	si.displacements = m.reg.Counter("rtdls_displacements_total",
		"Admitted-but-uncommitted tasks that lost their seat to a node drain or failure, per shard.", lbl)
	si.speculative = m.reg.Counter("rtdls_admission_speculative_total",
		"Admission decisions planned off-lock and installed on an unchanged epoch, per shard.", lbl)
	si.conflicts = m.reg.Counter("rtdls_admission_conflicts_total",
		"Speculative admissions discarded on an epoch conflict and replayed serialized, per shard.", lbl)
	si.fleetNodes = make(map[cluster.NodeState]*metrics.Gauge, 3)
	for _, st := range cluster.NodeStates() {
		si.fleetNodes[st] = m.reg.Gauge("rtdls_fleet_nodes",
			"Cluster nodes by lifecycle state, per shard.",
			metrics.Labels{"shard": strconv.Itoa(i), "state": st.String()})
	}
	m.shards[i] = si
	return si
}

// setFleet refreshes the per-state node-count gauges.
func (si *shardInstruments) setFleet(up, draining, down int) {
	si.fleetNodes[cluster.NodeUp].Set(float64(up))
	si.fleetNodes[cluster.NodeDraining].Set(float64(draining))
	si.fleetNodes[cluster.NodeDown].Set(float64(down))
}

// Readmission returns (registering on first use) the pool-level histogram
// of seconds between a task's displacement and its re-admission on another
// shard.
func (m *Metrics) Readmission() *metrics.Histogram {
	m.readmitOnce.Do(func() {
		m.readmitHist = m.reg.Histogram("rtdls_readmission_seconds",
			"Wall-clock seconds from a task's displacement to its re-admission on another shard.", nil)
	})
	return m.readmitHist
}

// reject counts one rejection under its reason label.
func (si *shardInstruments) reject(r errs.Reason) {
	if c, ok := si.rejects[r]; ok {
		c.Inc()
	}
}

// observeBus registers the event-drop counter against the given bus. Only
// the first bus wins (a pool's shards all share one bus, so this is the
// natural fit); registration is idempotent.
func (m *Metrics) observeBus(b *Bus) {
	m.busOnce.Do(func() {
		m.reg.CounterFunc("rtdls_events_dropped_total",
			"Events lost across all lagging event-stream subscribers.", nil,
			func() float64 { return float64(b.DroppedTotal()) })
	})
}
