// Package service implements the long-lived admission-control service at
// the heart of the v2 API: a goroutine-safe binding of clock + scheduler +
// event fan-out. The paper's schedulability test is exposed not as a batch
// simulation but as a continuously available surface — tasks arrive one at
// a time (from any goroutine), are admitted or rejected against the
// current processor available times, and every decision is published on a
// subscribable event stream. A pluggable Clock lets the identical engine
// run under the discrete-event simulator (the driver package replays
// workloads through it) or under wall-clock time in a deployment.
package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"rtdls/internal/cluster"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// Config assembles a Service. Cluster, Policy and Partitioner are
// mandatory; everything else has working defaults.
type Config struct {
	Cluster     *cluster.Cluster
	Policy      rt.Policy
	Partitioner rt.Partitioner

	// Clock supplies the service's notion of now; nil defaults to a
	// ManualClock at 0 (time is then driven by task arrival stamps).
	Clock Clock

	// Observer optionally receives the legacy rt.Observer callbacks
	// exactly as the scheduler emits them (accept/reject inside the
	// schedulability test, commit when a transmission starts). New code
	// should prefer Subscribe.
	Observer rt.Observer

	// MaxQueue bounds the waiting queue: a submission arriving while
	// QueueLen >= MaxQueue is rejected with ErrClusterBusy before the
	// schedulability test runs. 0 means unbounded.
	MaxQueue int

	// Shard tags every decision and event this service emits with a shard
	// index. It is 0 for a standalone service; a pool assigns each member
	// its index.
	Shard int

	// Bus optionally shares an event bus with other services (the pool
	// publishes every shard onto one merged stream). When nil the service
	// creates a private bus and closes it on Close; a shared bus is owned
	// — and closed — by whoever created it.
	Bus *Bus

	// Metrics optionally instruments the service: per-stage admission
	// latency histograms, per-shard outcome counters and load gauges on
	// the bound registry. Shards of a pool share one Metrics. Nil disables
	// instrumentation at zero cost.
	Metrics *Metrics
}

// Decision is the outcome of one Submit: either an admission with the
// plan's resource assignment, or a typed rejection.
type Decision struct {
	TaskID   int64
	Accepted bool
	At       float64 // service time of the decision

	// Shard is the cluster shard that made the decision: always 0 for a
	// standalone Service; for a pool, the shard the placement layer picked
	// (for an accept, the shard the task will run on).
	Shard int

	// Reason is the wire-stable rejection reason: ReasonNone when accepted,
	// otherwise ReasonInfeasible, ReasonDeadlinePast or ReasonBusy. It
	// serializes as its string token (identically in JSON and on the event
	// stream) and still matches the sentinels under errors.Is.
	Reason errs.Reason `json:",omitempty"`

	// Plan details, populated only when accepted. Slices are copies owned
	// by the caller, parallel and in dispatch order.
	Nodes  []int
	Starts []float64
	Alphas []float64
	Est    float64
	Rounds int
}

// Stats is a snapshot of the service's admission and cluster state, read
// entirely from atomics — taking one never contends with the admission
// lock.
type Stats struct {
	Time float64 // clock reading at the snapshot

	Arrivals int // submissions considered (excluding hard input errors)
	Accepts  int
	Rejects  int
	Commits  int

	QueueLen    int // admitted-but-uncommitted tasks
	MaxQueueLen int

	BusyTime     float64 // committed node·time over all nodes
	ReservedIdle float64 // wasted IIT node·time (OPR baselines only)
	LastRelease  float64 // makespan of the committed schedule
	Utilization  float64 // BusyTime / (N × max(Time, LastRelease))

	EventsDropped uint64 // events lost across lagging subscribers

	// Fleet state and churn accounting. NodesUp/NodesDraining/NodesDown
	// partition the (current) node count; Displaced counts admitted tasks
	// that lost their seat to a drain or failure, Readmitted the displaced
	// tasks a pool re-seated on another shard (always 0 for a standalone
	// service), and LateCommits the committed plans whose simulated
	// completion missed the absolute deadline — zero unless committed work
	// was disturbed outside the model.
	NodesUp       int
	NodesDraining int
	NodesDown     int
	Displaced     int
	Readmitted    int
	LateCommits   int

	// Optimistic-admission accounting: Speculative counts decisions whose
	// planning ran off-lock and installed on an unchanged epoch, Conflicts
	// the planning-backed speculations discarded because the epoch moved
	// (each replayed through the serialized path).
	Speculative int
	Conflicts   int
}

// RejectRatio returns Rejects/Arrivals (0 when nothing has arrived).
func (st Stats) RejectRatio() float64 {
	if st.Arrivals == 0 {
		return 0
	}
	return float64(st.Rejects) / float64(st.Arrivals)
}

// ExecStats accumulates execution metrics over committed plans, measured
// against each plan's exactly simulated dispatch timeline. The driver
// assembles its Result from them.
type ExecStats struct {
	Committed   int
	RespSum     float64 // Σ (actual completion − arrival)
	SlackSum    float64 // Σ (estimate − actual completion)
	NodeSum     int     // Σ assigned node count
	MaxLateness float64 // max (actual completion − absolute deadline); -Inf before the first commit
}

// Service is the long-lived, concurrency-safe admission-control engine.
// Create one with New; drive it with Submit/SubmitBatch; observe it with
// Subscribe and Stats. All methods may be called from any goroutine.
type Service struct {
	mu    sync.Mutex
	cl    *cluster.Cluster
	sched *rt.Scheduler
	clock Clock
	obs   rt.Observer
	bus   *Bus
	shard int
	// ownBus records whether Close should also close the bus (false when
	// the bus is shared across a pool's shards).
	ownBus bool

	maxQueue  int
	closed    atomic.Bool
	accepting atomic.Bool

	// Admission counters and cluster-accounting mirrors live on atomics so
	// Stats() — the /v1/stats and /metrics read path — never contends with
	// the admission lock. Writes happen inside locked sections (the mirrors
	// are refreshed in commitDueLocked, the only place cluster accounting
	// changes), so a snapshot is exact at quiescence.
	arrivals    atomic.Int64
	accepts     atomic.Int64
	rejects     atomic.Int64
	commits     atomic.Int64
	busyBits    atomic.Uint64 // cluster.BusyTime() as float64 bits
	idleBits    atomic.Uint64 // cluster.ReservedIdle() as float64 bits
	releaseBits atomic.Uint64 // cluster.LastRelease() as float64 bits

	// Fleet mirrors (refreshed under mu by the fleet ops in fleet.go) and
	// churn counters, all lock-free for Stats() and the placement layer.
	nodesUp       atomic.Int64
	nodesDraining atomic.Int64
	nodesDown     atomic.Int64
	nodesTotal    atomic.Int64
	displaced     atomic.Int64
	lateCommits   atomic.Int64

	// Optimistic-admission state (speculate.go): the default-on gate, the
	// consecutive-conflict streak driving the adaptive backoff with its
	// probe counter, the install/discard totals surfaced by Stats and
	// /metrics, and a pool of per-goroutine speculation contexts.
	speculating   atomic.Bool
	specStreak    atomic.Int64
	specProbe     atomic.Uint64
	specInstalls  atomic.Int64
	specConflicts atomic.Int64
	specPool      sync.Pool

	exec ExecStats // under mu

	met  *Metrics          // nil when uninstrumented
	inst *shardInstruments // this shard's counters/gauges (nil with met)
}

// New validates the configuration and returns a ready service.
func New(cfg Config) (*Service, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("service: nil cluster: %w", errs.ErrBadConfig)
	}
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("service: nil partitioner: %w", errs.ErrBadConfig)
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("service: negative MaxQueue %d: %w", cfg.MaxQueue, errs.ErrBadConfig)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = NewManualClock(0)
	}
	if cfg.Shard < 0 {
		return nil, fmt.Errorf("service: negative shard index %d: %w", cfg.Shard, errs.ErrBadConfig)
	}
	sched := rt.NewScheduler(cfg.Cluster, cfg.Policy, cfg.Partitioner)
	if cfg.Observer != nil {
		sched.SetObserver(cfg.Observer)
	}
	bus, ownBus := cfg.Bus, false
	if bus == nil {
		bus, ownBus = NewBus(), true
	}
	s := &Service{
		cl:       cfg.Cluster,
		sched:    sched,
		clock:    clock,
		obs:      cfg.Observer,
		bus:      bus,
		shard:    cfg.Shard,
		ownBus:   ownBus,
		maxQueue: cfg.MaxQueue,
		exec:     ExecStats{MaxLateness: math.Inf(-1)},
	}
	s.accepting.Store(true)
	s.speculating.Store(true)
	if cfg.Metrics != nil {
		s.met = cfg.Metrics
		s.inst = cfg.Metrics.shard(cfg.Shard)
		sched.SetStageObserver(cfg.Metrics)
		cfg.Metrics.observeBus(bus)
	}
	s.nodesTotal.Store(int64(cfg.Cluster.N()))
	s.refreshFleetLocked()
	return s, nil
}

// Cluster returns the cluster the service manages.
func (s *Service) Cluster() *cluster.Cluster { return s.cl }

// Scheduler returns the underlying scheduler (for integration points that
// still speak the rt layer, e.g. the verifier tests).
func (s *Service) Scheduler() *rt.Scheduler { return s.sched }

// Clock returns the service's clock.
func (s *Service) Clock() Clock { return s.clock }

// Submit runs the admission test for one task and returns the decision.
// The task is taken by value: the service keeps its own copy, so callers
// may reuse or mutate theirs freely afterwards.
//
// A zero Arrival means "arrives now" (the current clock reading). A
// future Arrival advances the service's effective time to it, exactly as
// the discrete-event replay does: every waiting plan whose first
// transmission is due by that instant is committed (irrevocably — a
// committed plan is no longer replannable) before the new task is tested.
// Mixing future-dated arrivals with a live wall clock therefore locks in
// the intervening schedule early; time-stamped replays should feed tasks
// in arrival order, as the driver does.
//
// The error return reports malformed input (ErrBadConfig), a cancelled
// context, or a closed service (ErrClusterBusy) — never infeasibility: an
// infeasible task is a clean decision with Reason ErrInfeasible.
//
// By default the admission test runs optimistically: planning happens
// off-lock against an epoch-stamped snapshot, and the lock is held only for
// an epoch check plus the install (see speculate.go and SetSpeculation).
// Concurrent submitters therefore plan in parallel; the decision stream is
// bit-for-bit what a serialized execution would produce.
func (s *Service) Submit(ctx context.Context, task rt.Task) (Decision, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Decision{}, err
		}
	}
	if s.specAllowed() {
		if d, err, ok := s.submitSpeculative(task); ok {
			return d, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitLocked(task)
}

// SubmitBatch submits several tasks under one lock acquisition, in order,
// and returns one decision per considered task. On a hard error the
// decisions made so far are returned alongside it. Like Submit, the batch
// plans speculatively by default — every task is tested off-lock against
// one evolving snapshot and the whole batch group-installs under a single
// epoch check.
func (s *Service) SubmitBatch(ctx context.Context, tasks []rt.Task) ([]Decision, error) {
	if len(tasks) > 0 && s.specAllowed() {
		if d, err, ok := s.submitBatchSpeculative(ctx, tasks); ok {
			return d, err
		}
	}
	decisions := make([]Decision, 0, len(tasks))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, task := range tasks {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return decisions, err
			}
		}
		d, err := s.submitLocked(task)
		if err != nil {
			return decisions, err
		}
		decisions = append(decisions, d)
	}
	return decisions, nil
}

func (s *Service) submitLocked(task rt.Task) (Decision, error) {
	if s.closed.Load() {
		return Decision{}, fmt.Errorf("service: closed: %w", errs.ErrClusterBusy)
	}
	if !s.accepting.Load() {
		return Decision{}, fmt.Errorf("service: draining: %w", errs.ErrClusterBusy)
	}
	now := s.clock.Now()
	if task.Arrival == 0 && now > 0 {
		task.Arrival = now
	}
	if task.Arrival > now {
		now = task.Arrival
	}
	t := &task
	if err := t.Validate(); err != nil {
		return Decision{}, err
	}
	// Start every transmission that is due before the new arrival is
	// considered — the service-side analogue of the driver's commit events.
	if err := s.commitDueLocked(now); err != nil {
		return Decision{}, err
	}

	if t.AbsDeadline() <= now {
		return s.rejectLocked(t, now, errs.ReasonDeadlinePast), nil
	}
	if s.maxQueue > 0 && s.sched.Stats().QueueLen >= s.maxQueue {
		return s.rejectLocked(t, now, errs.ReasonBusy), nil
	}

	accepted, err := s.sched.Submit(t, now)
	if err != nil {
		return Decision{}, err
	}
	s.arrivals.Add(1)
	if !accepted {
		// The scheduler already notified the legacy observer; publish the
		// typed stream event here.
		s.rejects.Add(1)
		if s.inst != nil {
			s.inst.submits.Inc()
			s.inst.reject(errs.ReasonInfeasible)
		}
		d := Decision{TaskID: t.ID, At: now, Shard: s.shard, Reason: errs.ReasonInfeasible}
		s.publishLocked(Event{Kind: EventReject, Time: now, Task: *t, Reason: errs.ReasonInfeasible})
		return d, nil
	}
	s.accepts.Add(1)
	if s.inst != nil {
		s.inst.submits.Inc()
		s.inst.accepts.Inc()
		s.noteQueueLocked()
	}
	pl := s.sched.PlanFor(t.ID)
	d := newDecision(t.ID, now, s.shard, pl)
	s.publishLocked(Event{
		Kind: EventAccept, Time: now, Task: *t,
		Nodes: len(pl.Nodes), Est: pl.Est,
	})
	return d, nil
}

// newDecision builds an accepted Decision. The caller-owned Starts and
// Alphas copies share one float64 backing array (Starts is capped so an
// append cannot reach into Alphas), halving the slice-header churn on the
// hot accept path.
func newDecision(id int64, now float64, shard int, pl *rt.Plan) Decision {
	k := len(pl.Nodes)
	fbuf := make([]float64, 2*k)
	starts := fbuf[:k:k]
	alphas := fbuf[k:]
	copy(starts, pl.Starts)
	copy(alphas, pl.Alphas)
	nodes := make([]int, k)
	copy(nodes, pl.Nodes)
	return Decision{
		TaskID:   id,
		Accepted: true,
		At:       now,
		Shard:    shard,
		Est:      pl.Est,
		Rounds:   pl.Rounds,
		Nodes:    nodes,
		Starts:   starts,
		Alphas:   alphas,
	}
}

// rejectLocked records a service-level rejection (the schedulability test
// did not run) and notifies both the legacy observer and the stream.
func (s *Service) rejectLocked(t *rt.Task, now float64, reason errs.Reason) Decision {
	s.arrivals.Add(1)
	s.rejects.Add(1)
	if s.inst != nil {
		s.inst.submits.Inc()
		s.inst.reject(reason)
	}
	if s.obs != nil {
		s.obs.OnReject(now, t)
	}
	s.publishLocked(Event{Kind: EventReject, Time: now, Task: *t, Reason: reason})
	return Decision{TaskID: t.ID, At: now, Shard: s.shard, Reason: reason}
}

func (s *Service) publishLocked(ev Event) {
	if s.bus.HasSubscribers() {
		ev.Shard = s.shard
		s.bus.Publish(ev)
	}
}

// CommitDue commits every waiting plan whose first transmission start is
// due at the given time, recording execution metrics from the exact
// dispatch timelines. The driver calls it from its commit events; Submit
// calls it implicitly.
func (s *Service) CommitDue(now float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitDueLocked(now)
}

func (s *Service) commitDueLocked(now float64) error {
	plans, err := s.sched.CommitDue(now)
	if err != nil {
		return err
	}
	if len(plans) == 0 {
		return nil
	}
	for _, pl := range plans {
		// Multi-round plans carry an exact simulated Est, and OPR-style
		// plans complete exactly at Est (all nodes start at r_n); only
		// staggered single-round dispatches need the timeline re-simulated
		// for the actual completion.
		actual := pl.Est
		if pl.Rounds <= 1 && !pl.SimultaneousStart {
			d, derr := s.cl.Costs().SimulateFor(pl.Nodes, pl.Task.Sigma, pl.Starts, pl.Alphas)
			if derr != nil {
				return fmt.Errorf("service: dispatching task %d: %w", pl.Task.ID, derr)
			}
			actual = d.Completion
		}
		s.exec.Committed++
		s.exec.RespSum += actual - pl.Task.Arrival
		s.exec.SlackSum += pl.Est - actual
		s.exec.NodeSum += len(pl.Nodes)
		l := actual - pl.Task.AbsDeadline()
		if l > s.exec.MaxLateness {
			s.exec.MaxLateness = l
		}
		if absD := pl.Task.AbsDeadline(); l > 1e-9*math.Max(1, math.Abs(absD)) {
			s.lateCommits.Add(1)
		}
		s.commits.Add(1)
		s.publishLocked(Event{
			Kind: EventCommit, Time: now, Task: *pl.Task,
			Nodes: len(pl.Nodes), Est: pl.Est,
		})
	}
	// Cluster accounting only changes on commit: refresh the lock-free
	// mirrors Stats() and the utilization gauges read.
	busy := s.cl.BusyTime()
	rel := s.cl.LastRelease()
	s.busyBits.Store(math.Float64bits(busy))
	s.idleBits.Store(math.Float64bits(s.cl.ReservedIdle()))
	s.releaseBits.Store(math.Float64bits(rel))
	if s.inst != nil {
		s.inst.commits.Add(uint64(len(plans)))
		s.inst.busyTime.Set(busy)
		s.inst.utilization.Set(s.cl.Utilization(math.Max(now, rel)))
		s.noteQueueLocked()
	}
	return nil
}

// noteQueueLocked refreshes the shard's queue-depth gauges from the
// scheduler's lock-free counters. Callers hold s.mu and have checked
// s.inst != nil.
func (s *Service) noteQueueLocked() {
	q := float64(s.sched.Stats().QueueLen)
	s.inst.queueDepth.Set(q)
	s.inst.queueDepthMax.SetMax(q)
}

// NextCommit returns the earliest pending first-transmission time, or
// ok=false when the waiting queue is empty.
func (s *Service) NextCommit() (at float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.NextCommit()
}

// Pump commits everything due at the current clock reading. Callers that
// submit regularly never need it; it exists for idle periods.
func (s *Service) Pump() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitDueLocked(s.clock.Now())
}

// Drain commits every remaining waiting plan, advancing through the
// pending first-transmission instants regardless of the clock — the
// shutdown/flush analogue of the driver running its queue dry.
func (s *Service) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		at, ok := s.sched.NextCommit()
		if !ok {
			return nil
		}
		if err := s.commitDueLocked(at); err != nil {
			return err
		}
	}
}

// Stats returns a snapshot of the admission counters and cluster
// accounting. It is lock-free: every field is read from an atomic, so a
// scrape or /v1/stats poll never contends with the admission lock. A
// snapshot taken while a submission is in flight may be mid-update by that
// one task; at quiescence it is exact, field for field, to what the
// lock-held implementation returned.
func (s *Service) Stats() Stats {
	now := s.clock.Now()
	ss := s.sched.Stats()
	busy := math.Float64frombits(s.busyBits.Load())
	rel := math.Float64frombits(s.releaseBits.Load())
	st := Stats{
		Time:          now,
		Arrivals:      int(s.arrivals.Load()),
		Accepts:       int(s.accepts.Load()),
		Rejects:       int(s.rejects.Load()),
		Commits:       int(s.commits.Load()),
		QueueLen:      ss.QueueLen,
		MaxQueueLen:   ss.MaxQueueLen,
		BusyTime:      busy,
		ReservedIdle:  math.Float64frombits(s.idleBits.Load()),
		LastRelease:   rel,
		EventsDropped: s.bus.DroppedTotal(),
		NodesUp:       int(s.nodesUp.Load()),
		NodesDraining: int(s.nodesDraining.Load()),
		NodesDown:     int(s.nodesDown.Load()),
		Displaced:     int(s.displaced.Load()),
		LateCommits:   int(s.lateCommits.Load()),
		Speculative:   int(s.specInstalls.Load()),
		Conflicts:     int(s.specConflicts.Load()),
	}
	if span := math.Max(now, rel); span > 0 {
		st.Utilization = busy / (float64(s.nodesTotal.Load()) * span)
	}
	return st
}

// Exec returns the accumulated execution metrics of committed plans.
func (s *Service) Exec() ExecStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exec
}

// Subscribe attaches a consumer to the decision/lifecycle event stream
// with the given channel buffer. The returned cancel function detaches it
// and closes the channel. A consumer that falls behind loses events
// (counted in Stats.EventsDropped) rather than blocking admission control.
func (s *Service) Subscribe(buffer int) (<-chan Event, func()) {
	return s.bus.Subscribe(buffer)
}

// SubscribeStream attaches a consumer and returns its Subscription handle,
// whose Dropped counter lets the consumer detect its own event gaps
// (Stats.EventsDropped only reports the bus-wide total).
func (s *Service) SubscribeStream(buffer int) *Subscription {
	return s.bus.SubscribeStream(buffer)
}

// SetAccepting flips the admission gate: while false, every submission
// fails fast with ErrClusterBusy (a hard error, not a decision) and the
// queue, commits and event stream keep operating. It is the first step of
// a graceful drain — stop accepting, Drain, then Close — and is reversible
// until Close.
func (s *Service) SetAccepting(accepting bool) { s.accepting.Store(accepting) }

// Accepting reports whether the admission gate is open: true until
// SetAccepting(false) or Close. It is lock-free — the health endpoint
// polls it without touching the admission lock.
func (s *Service) Accepting() bool { return s.accepting.Load() && !s.closed.Load() }

// QueueLen returns the number of admitted-but-uncommitted tasks — the
// cheap load signal the pool's placement layer samples on every submit.
func (s *Service) QueueLen() int { return s.sched.Stats().QueueLen }

// Shard returns the shard index this service stamps on its decisions and
// events (0 for a standalone service).
func (s *Service) Shard() int { return s.shard }

// Close marks the service closed — subsequent submissions fail with
// ErrClusterBusy — and, when the service owns its bus, closes every
// subscriber channel (a pool owns the bus it shares across shards and
// closes it itself). Waiting plans are not committed; call Drain first to
// flush them. Close is idempotent.
func (s *Service) Close() error {
	s.closed.Store(true)
	if s.ownBus {
		s.bus.Close()
	}
	return nil
}

// CombineObservers fans legacy rt.Observer callbacks out to several
// observers (nil entries are skipped). It replaces the ad-hoc fan-out
// types the CLIs used to define.
func CombineObservers(obs ...rt.Observer) rt.Observer {
	flat := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return flat
}

type multiObserver []rt.Observer

func (m multiObserver) OnAccept(now float64, t *rt.Task, p *rt.Plan) {
	for _, o := range m {
		o.OnAccept(now, t, p)
	}
}

func (m multiObserver) OnReject(now float64, t *rt.Task) {
	for _, o := range m {
		o.OnReject(now, t)
	}
}

func (m multiObserver) OnCommit(now float64, p *rt.Plan) {
	for _, o := range m {
		o.OnCommit(now, p)
	}
}
