package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"rtdls/internal/cluster"
	"rtdls/internal/dlt"
	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func newTestService(t *testing.T, opts ...func(*Config)) *Service {
	t.Helper()
	cl, err := cluster.New(16, baseline)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: cl, Policy: rt.EDF, Partitioner: rt.IITDLT{}}
	for _, o := range opts {
		o(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("nil cluster: err = %v, want ErrBadConfig", err)
	}
	cl, _ := cluster.New(2, baseline)
	if _, err := New(Config{Cluster: cl}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("nil partitioner: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{Cluster: cl, Partitioner: rt.IITDLT{}, MaxQueue: -1}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("negative MaxQueue: err = %v, want ErrBadConfig", err)
	}
}

func TestSubmitAcceptCarriesPlan(t *testing.T) {
	svc := newTestService(t)
	dec, err := svc.Submit(context.Background(), rt.Task{ID: 1, Sigma: 200, RelDeadline: 2800})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Accepted || !dec.Reason.OK() {
		t.Fatalf("decision = %+v, want accepted", dec)
	}
	if len(dec.Nodes) == 0 || len(dec.Nodes) != len(dec.Starts) || len(dec.Nodes) != len(dec.Alphas) {
		t.Fatalf("plan slices inconsistent: %+v", dec)
	}
	if dec.Est <= 0 || dec.Est > 2800 {
		t.Fatalf("estimate %v outside (0, deadline]", dec.Est)
	}
}

func TestSubmitTypedRejections(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.Clock = NewManualClock(1000) })

	// Deadline already past at submission.
	dec, err := svc.Submit(context.Background(), rt.Task{ID: 1, Arrival: 100, Sigma: 10, RelDeadline: 50})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Accepted || !errors.Is(dec.Reason, errs.ErrDeadlinePast) {
		t.Fatalf("decision = %+v, want ErrDeadlinePast", dec)
	}

	// Infeasible: data too large for the deadline.
	dec, err = svc.Submit(context.Background(), rt.Task{ID: 2, Sigma: 1e6, RelDeadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Accepted || !errors.Is(dec.Reason, errs.ErrInfeasible) {
		t.Fatalf("decision = %+v, want ErrInfeasible", dec)
	}

	st := svc.Stats()
	if st.Arrivals != 2 || st.Rejects != 2 || st.Accepts != 0 {
		t.Fatalf("stats = %+v, want 2 arrivals / 2 rejects", st)
	}
}

func TestSubmitMalformedTask(t *testing.T) {
	svc := newTestService(t)
	if _, err := svc.Submit(context.Background(), rt.Task{ID: 1, Sigma: -5, RelDeadline: 10}); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("negative sigma: err = %v, want ErrBadConfig", err)
	}
	if st := svc.Stats(); st.Arrivals != 0 {
		t.Fatalf("malformed task counted as arrival: %+v", st)
	}
}

func TestMaxQueueBusy(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxQueue = 1 })
	ctx := context.Background()
	// Saturate all 16 nodes: a tight deadline forces the partitioner to
	// use the whole cluster, so the next admitted task must wait.
	tight := baseline.ExecTime(400, 16) * 1.01
	if dec, err := svc.Submit(ctx, rt.Task{ID: 1, Sigma: 400, RelDeadline: tight}); err != nil || !dec.Accepted {
		t.Fatalf("first submit: %+v, %v", dec, err)
	}
	if dec, err := svc.Submit(ctx, rt.Task{ID: 2, Sigma: 50, RelDeadline: 50000}); err != nil || !dec.Accepted {
		t.Fatalf("second submit: %+v, %v", dec, err)
	}
	// Task 1 committed at once (it starts at 0); task 2 waits for released
	// nodes, filling the bounded queue: the next submission must bounce.
	dec, err := svc.Submit(ctx, rt.Task{ID: 3, Sigma: 50, RelDeadline: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Accepted || !errors.Is(dec.Reason, errs.ErrClusterBusy) {
		t.Fatalf("decision = %+v, want ErrClusterBusy", dec)
	}
}

func TestCloseRejectsSubmissions(t *testing.T) {
	svc := newTestService(t)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Submit(context.Background(), rt.Task{ID: 1, Sigma: 200, RelDeadline: 2800})
	if !errors.Is(err, errs.ErrClusterBusy) {
		t.Fatalf("submit after close: err = %v, want ErrClusterBusy", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	svc := newTestService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Submit(ctx, rt.Task{ID: 1, Sigma: 200, RelDeadline: 2800}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEventStream(t *testing.T) {
	svc := newTestService(t)
	events, cancel := svc.Subscribe(64)
	defer cancel()

	ctx := context.Background()
	decs, err := svc.SubmitBatch(ctx, []rt.Task{
		{ID: 1, Sigma: 200, RelDeadline: 2800},
		{ID: 2, Sigma: 1e6, RelDeadline: 1}, // infeasible
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 || !decs[0].Accepted || decs[1].Accepted {
		t.Fatalf("decisions = %+v", decs)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	var kinds []EventKind
	for ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	// Task 1 is accepted and starts at once, so its commit is published by
	// the auto-commit that precedes task 2's schedulability test.
	want := []EventKind{EventAccept, EventCommit, EventReject}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	svc := newTestService(t)
	_, cancel := svc.Subscribe(1) // never read from: overflows immediately
	defer cancel()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := svc.Submit(ctx, rt.Task{ID: int64(i + 1), Arrival: float64(i) * 5000, Sigma: 200, RelDeadline: 2800}); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.EventsDropped == 0 {
		t.Fatalf("expected dropped events, stats = %+v", st)
	}
}

func TestDroppedCountSurvivesCancel(t *testing.T) {
	svc := newTestService(t)
	_, cancel := svc.Subscribe(1) // never read from: overflows immediately
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := svc.Submit(ctx, rt.Task{ID: int64(i + 1), Arrival: float64(i) * 5000, Sigma: 200, RelDeadline: 2800}); err != nil {
			t.Fatal(err)
		}
	}
	before := svc.Stats().EventsDropped
	if before == 0 {
		t.Fatal("expected dropped events before cancel")
	}
	cancel()
	if after := svc.Stats().EventsDropped; after != before {
		t.Fatalf("EventsDropped went from %d to %d after cancel; must be monotone", before, after)
	}
}

func TestDrainCommitsEverything(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := svc.Submit(ctx, rt.Task{ID: int64(i + 1), Sigma: 100, RelDeadline: 50000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.QueueLen != 0 || st.Commits != st.Accepts {
		t.Fatalf("after drain: %+v", st)
	}
	ex := svc.Exec()
	if ex.Committed != st.Accepts || ex.MaxLateness > 0 {
		t.Fatalf("exec stats after drain: %+v", ex)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(5)
	if c.Now() != 5 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Set(3) // backwards: no-op
	if c.Now() != 5 {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
	if got := c.Advance(2.5); got != 7.5 || c.Now() != 7.5 {
		t.Fatalf("Advance = %v, Now = %v", got, c.Now())
	}
	if got := c.Advance(-1); got != 7.5 {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock(1000)
	a := c.Now()
	b := c.Now()
	if b < a || a < 0 {
		t.Fatalf("wall clock not monotone: %v then %v", a, b)
	}
}

// TestConcurrentSubmitStress drives one service from many goroutines under
// the race detector: decision totals must equal submissions and internal
// accounting must stay consistent.
func TestConcurrentSubmitStress(t *testing.T) {
	svc := newTestService(t)
	const (
		workers = 8
		each    = 100
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		rejected int
	)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			la, lr := 0, 0
			for i := 0; i < each; i++ {
				id := int64(w*each + i + 1)
				dec, err := svc.Submit(ctx, rt.Task{
					ID:          id,
					Sigma:       50 + float64(id%300),
					RelDeadline: 2000 + float64(id%5000),
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if dec.Accepted {
					la++
				} else {
					lr++
				}
			}
			mu.Lock()
			accepted += la
			rejected += lr
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Arrivals != workers*each {
		t.Fatalf("arrivals = %d, want %d", st.Arrivals, workers*each)
	}
	if st.Accepts != accepted || st.Rejects != rejected {
		t.Fatalf("stats %d/%d disagree with decisions %d/%d", st.Accepts, st.Rejects, accepted, rejected)
	}
	if st.Accepts+st.Rejects != st.Arrivals {
		t.Fatalf("accounting mismatch: %+v", st)
	}
	if st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	if ex := svc.Exec(); ex.MaxLateness > 0 {
		t.Fatalf("hard real-time guarantee violated: max lateness %v", ex.MaxLateness)
	}
}
