package service

import (
	"context"

	"rtdls/internal/errs"
	"rtdls/internal/rt"
)

// This file is the service half of optimistic two-phase admission. The
// scheduler half (internal/rt/speculate.go) runs the Fig. 2 test against an
// epoch-stamped snapshot; this half decides when to speculate, replays the
// service-level gates (validation, deadline-past, busy) against the same
// snapshot, and owns phase 2: under the service lock, an epoch comparison
// decides between installing the precomputed outcome and falling back to
// the serialized path. Every decision is therefore still made against
// serialized state — speculation only moves the planning work off the lock.

const (
	// specStreakLimit is the number of consecutive conflicted speculations
	// after which the service stops speculating (the workload is conflicting
	// on every submit, so planning off-lock is pure waste)...
	specStreakLimit = 3
	// ...except for one probe every specProbeEvery submissions, which
	// detects when the conflict storm has passed and re-opens the gate. A
	// wasted probe costs one off-lock planning pass, so the rate bounds the
	// storm-mode overhead over pure serialized execution to a few percent.
	specProbeEvery = 32
)

// SetSpeculation toggles optimistic admission. It is on by default; turning
// it off forces every submission through the fully serialized path (useful
// for bit-identity baselines and as an operational escape hatch). Safe to
// call at any time from any goroutine.
func (s *Service) SetSpeculation(on bool) { s.speculating.Store(on) }

// Speculating reports whether optimistic admission is enabled.
func (s *Service) Speculating() bool { return s.speculating.Load() }

// specAllowed decides lock-free whether this submission should attempt the
// speculative path: the gate must be open and the workload must not be in a
// conflict storm (adaptive backoff with periodic probes).
func (s *Service) specAllowed() bool {
	if !s.speculating.Load() {
		return false
	}
	if s.specStreak.Load() < specStreakLimit {
		return true
	}
	return s.specProbe.Add(1)%specProbeEvery == 0
}

func (s *Service) getSpec() *rt.SpecContext {
	if sc, ok := s.specPool.Get().(*rt.SpecContext); ok {
		return sc
	}
	return new(rt.SpecContext)
}

func (s *Service) putSpec(sc *rt.SpecContext) { s.specPool.Put(sc) }

// noteSpeculative records n decisions installed from off-lock planning and
// resets the conflict streak.
func (s *Service) noteSpeculative(n int) {
	s.specInstalls.Add(int64(n))
	s.specStreak.Store(0)
	if s.inst != nil {
		s.inst.speculative.Add(uint64(n))
	}
}

// noteConflict records n planning-backed speculations discarded on an epoch
// mismatch and lengthens the conflict streak.
func (s *Service) noteConflict(n int) {
	s.specConflicts.Add(int64(n))
	s.specStreak.Add(1)
	if s.inst != nil {
		s.inst.conflicts.Add(uint64(n))
	}
}

// specRecKind classifies one speculated decision awaiting install.
type specRecKind uint8

const (
	recSvcReject   specRecKind = iota // service-level reject (deadline past, busy)
	recSchedReject                    // schedulability-test reject
	recAccept                         // accept with a precomputed schedule
)

// specRec is one task's precomputed outcome from a speculative batch. The
// task lives in the record itself so the pointer handed to the scheduler
// stays stable; cand/plans hold the accepted schedule (copied out of the
// speculation context, whose buffers are reused by the next task).
type specRec struct {
	kind   specRecKind
	reason errs.Reason
	task   rt.Task
	now    float64
	plan   *rt.Plan
	cand   []*rt.Task
	plans  []*rt.Plan
	stages rt.SpecStages
}

// installRecLocked lands one precomputed decision under s.mu. The caller
// has validated the epoch and run the real due-commit sweep for rec.now, so
// the serialized state is exactly what the speculation planned against.
func (s *Service) installRecLocked(rec *specRec) Decision {
	switch rec.kind {
	case recSvcReject:
		return s.rejectLocked(&rec.task, rec.now, rec.reason)
	case recSchedReject:
		s.sched.InstallSpeculativeReject(&rec.task, rec.now, rec.stages)
		s.arrivals.Add(1)
		s.rejects.Add(1)
		if s.inst != nil {
			s.inst.submits.Inc()
			s.inst.reject(errs.ReasonInfeasible)
		}
		d := Decision{TaskID: rec.task.ID, At: rec.now, Shard: s.shard, Reason: errs.ReasonInfeasible}
		s.publishLocked(Event{Kind: EventReject, Time: rec.now, Task: rec.task, Reason: errs.ReasonInfeasible})
		return d
	default: // recAccept
		s.sched.InstallSpeculativeAccept(&rec.task, rec.now, rec.cand, rec.plans, rec.stages)
		s.arrivals.Add(1)
		s.accepts.Add(1)
		if s.inst != nil {
			s.inst.submits.Inc()
			s.inst.accepts.Inc()
			s.noteQueueLocked()
		}
		pl := rec.plan
		d := newDecision(rec.task.ID, rec.now, s.shard, pl)
		s.publishLocked(Event{
			Kind: EventAccept, Time: rec.now, Task: rec.task,
			Nodes: len(pl.Nodes), Est: pl.Est,
		})
		return d
	}
}

// submitSpeculative attempts the two-phase admission of one task. ok=false
// means the speculation declined or fell back before taking the lock — the
// caller must run the serialized path, which reproduces the identical
// decision. ok=true means the submission completed (speculatively installed
// or serialized inside, after a conflict).
func (s *Service) submitSpeculative(task rt.Task) (Decision, error, bool) {
	if s.closed.Load() || !s.accepting.Load() {
		return Decision{}, nil, false
	}
	// The serialized fallback must re-read the clock itself, so keep the
	// caller's task unstamped for it.
	orig := task
	now := s.clock.Now()
	if task.Arrival == 0 && now > 0 {
		task.Arrival = now
	}
	if task.Arrival > now {
		now = task.Arrival
	}
	t := &task
	if err := t.Validate(); err != nil {
		return Decision{}, nil, false
	}
	// Cheap service-level outcomes carry no planning work to parallelize;
	// let the serialized path decide them.
	if t.AbsDeadline() <= now {
		return Decision{}, nil, false
	}
	if s.maxQueue > 0 && s.sched.Stats().QueueLen >= s.maxQueue {
		return Decision{}, nil, false
	}

	// Phase 1 — no service or scheduler lock held past the snapshot.
	sc := s.getSpec()
	s.sched.SnapshotInto(sc)
	if !sc.CommitDue(now) {
		s.putSpec(sc)
		return Decision{}, nil, false
	}
	if s.maxQueue > 0 && sc.QueueLen() >= s.maxQueue {
		s.putSpec(sc)
		return Decision{}, nil, false
	}
	out := s.sched.Speculate(sc, t, now)
	if out == rt.SpecFallback {
		s.putSpec(sc)
		return Decision{}, nil, false
	}

	// Phase 2 — epoch check plus install under the lock.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() || !s.accepting.Load() {
		s.putSpec(sc)
		d, err := s.submitLocked(orig)
		return d, err, true
	}
	if !s.sched.EpochIs(sc.Epoch()) {
		s.noteConflict(1)
		s.putSpec(sc)
		d, err := s.submitLocked(orig)
		return d, err, true
	}
	// The epoch is unchanged, so the real due-commit sweep commits exactly
	// the plans the speculation folded into its base.
	if err := s.commitDueLocked(now); err != nil {
		s.putSpec(sc)
		return Decision{}, err, true
	}
	rec := specRec{task: task, now: now, stages: sc.Stages()}
	if out == rt.SpecAccept {
		rec.kind = recAccept
		rec.plan = sc.AcceptedPlan()
		rec.cand = sc.Waiting()
		rec.plans = sc.Plans()
	} else {
		rec.kind = recSchedReject
	}
	d := s.installRecLocked(&rec)
	s.noteSpeculative(1)
	s.putSpec(sc)
	return d, nil, true
}

// submitBatchSpeculative plans a whole batch against one snapshot, then
// group-installs it under a single lock acquisition. Tasks the speculation
// cannot decide (validation errors, duplicates, hard planner errors) and
// everything after them replay through the serialized path in order, so the
// decision slice is exactly what a serialized SubmitBatch would return.
func (s *Service) submitBatchSpeculative(ctx context.Context, tasks []rt.Task) ([]Decision, error, bool) {
	if s.closed.Load() || !s.accepting.Load() {
		return nil, nil, false
	}

	// Phase 1: speculate task after task against the evolving snapshot.
	sc := s.getSpec()
	s.sched.SnapshotInto(sc)
	// recs is sized once up front: the scheduler retains &recs[i].task
	// pointers, which must not move.
	recs := make([]specRec, len(tasks))
	fb := len(tasks)   // first index that must replay serialized
	speculated := 0    // planning-backed records in recs[:fb]
	var fbErr error    // context error that ended phase 1
	fbChecked := false // task fb already consumed its context check here
phase1:
	for i := range tasks {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				fb, fbErr = i, err
				break
			}
		}
		rec := &recs[i]
		rec.task = tasks[i]
		now := s.clock.Now()
		if rec.task.Arrival == 0 && now > 0 {
			rec.task.Arrival = now
		}
		if rec.task.Arrival > now {
			now = rec.task.Arrival
		}
		rec.now = now
		if err := rec.task.Validate(); err != nil {
			fb, fbChecked = i, true
			break
		}
		if !sc.CommitDue(now) {
			fb, fbChecked = i, true
			break
		}
		if rec.task.AbsDeadline() <= now {
			rec.kind = recSvcReject
			rec.reason = errs.ReasonDeadlinePast
			continue
		}
		if s.maxQueue > 0 && sc.QueueLen() >= s.maxQueue {
			rec.kind = recSvcReject
			rec.reason = errs.ReasonBusy
			continue
		}
		switch s.sched.Speculate(sc, &rec.task, now) {
		case rt.SpecFallback:
			fb, fbChecked = i, true
			break phase1
		case rt.SpecReject:
			rec.kind = recSchedReject
			rec.stages = sc.Stages()
			speculated++
		case rt.SpecAccept:
			rec.kind = recAccept
			rec.plan = sc.AcceptedPlan()
			rec.stages = sc.Stages()
			// Copy the accepted schedule out: the context's buffers are
			// overwritten by the next task's speculation.
			rec.cand = append([]*rt.Task(nil), sc.Waiting()...)
			rec.plans = append([]*rt.Plan(nil), sc.Plans()...)
			speculated++
		}
	}

	// Phase 2: validate the epoch once, then group-install.
	s.mu.Lock()
	defer s.mu.Unlock()
	decisions := make([]Decision, 0, len(tasks))
	// serialFrom replays tasks[from:] through the serialized path. Each
	// task's context is consulted exactly once across both phases, so the
	// task that ended phase 1 with its check already spent skips it here.
	serialFrom := func(from int, skipFirstCheck bool) ([]Decision, error) {
		for i := from; i < len(tasks); i++ {
			if ctx != nil && !(skipFirstCheck && i == from) {
				if err := ctx.Err(); err != nil {
					return decisions, err
				}
			}
			d, err := s.submitLocked(tasks[i])
			if err != nil {
				return decisions, err
			}
			decisions = append(decisions, d)
		}
		return decisions, nil
	}
	if s.closed.Load() || !s.accepting.Load() {
		s.putSpec(sc)
		d, err := serialFrom(0, true)
		return d, err, true
	}
	if !s.sched.EpochIs(sc.Epoch()) {
		if speculated > 0 {
			s.noteConflict(speculated)
		}
		s.putSpec(sc)
		d, err := serialFrom(0, true)
		return d, err, true
	}
	// Tasks [0, fb) were context-checked in phase 1; install them without
	// re-consulting.
	for i := 0; i < fb; i++ {
		rec := &recs[i]
		if err := s.commitDueLocked(rec.now); err != nil {
			s.putSpec(sc)
			return decisions, err, true
		}
		decisions = append(decisions, s.installRecLocked(rec))
	}
	if speculated > 0 {
		s.noteSpeculative(speculated)
	}
	s.putSpec(sc)
	if fbErr != nil {
		return decisions, fbErr, true
	}
	d, err := serialFrom(fb, fbChecked)
	return d, err, true
}
