package sim

import "testing"

// BenchmarkEventQueue measures raw schedule+dispatch throughput of the
// event heap with a churn of 1024 in-flight events.
func BenchmarkEventQueue(b *testing.B) {
	s := New()
	fn := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		s.At(float64(i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+float64(depth), fn)
		s.Step()
	}
}

func BenchmarkCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.At(s.Now()+1, fn)
		h.Cancel()
		if i%1024 == 1023 {
			s.RunUntil(s.Now() + 0.5) // drain cancelled events
		}
	}
}
