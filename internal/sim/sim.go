// Package sim provides a small deterministic discrete-event simulation
// engine: a priority queue of timed callbacks with stable ordering and
// cancellable handles.
//
// Events at equal timestamps are ordered first by an explicit priority
// (lower runs first) and then by scheduling order, so simulations are fully
// deterministic. The driver uses priorities to process task commitments
// before arrivals that share a timestamp (DESIGN.md §3).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Priorities used by the scheduling driver. Any int8 is accepted; these
// names document the convention.
const (
	PrioCommit  int8 = -1 // task start / node handover events
	PrioDefault int8 = 0
	PrioArrival int8 = 1 // workload arrivals
)

type event struct {
	time     float64
	prio     int8
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct{ ev *event }

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled event is a no-op. Cancel on a zero Handle is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.canceled = true
	}
}

// Pending reports whether the event is still queued to run.
func (h Handle) Pending() bool {
	return h.ev != nil && !h.ev.canceled && h.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a discrete-event simulator. The zero value is ready to use
// with the clock at 0.
type Simulator struct {
	now  float64
	q    eventHeap
	seq  uint64
	step uint64
}

// New returns a simulator with its clock at 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Len returns the number of pending (non-cancelled) events. Cancelled
// events still occupying the queue are not counted.
func (s *Simulator) Len() int {
	n := 0
	for _, ev := range s.q {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.step }

// At schedules fn to run at time t with default priority. It panics if t is
// in the past or not a finite number: scheduling into the past is always a
// simulation bug.
func (s *Simulator) At(t float64, fn func()) Handle {
	return s.AtPrio(t, PrioDefault, fn)
}

// AtPrio schedules fn at time t with an explicit tie-breaking priority
// (lower priorities run first among events with equal time).
func (s *Simulator) AtPrio(t float64, prio int8, fn func()) Handle {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: t=%v < now=%v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling a nil callback")
	}
	ev := &event{time: t, prio: prio, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.q, ev)
	return Handle{ev}
}

// After schedules fn to run d time units from now.
func (s *Simulator) After(d float64, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It returns false if no events remain.
func (s *Simulator) Step() bool {
	for len(s.q) > 0 {
		ev := heap.Pop(&s.q).(*event)
		if ev.canceled {
			continue
		}
		s.now = ev.time
		s.step++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes all events with time ≤ t, then advances the clock to t
// (if it is not already past it). Events scheduled for later remain queued.
func (s *Simulator) RunUntil(t float64) {
	for {
		ev := s.peek()
		if ev == nil || ev.time > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// peek returns the next non-cancelled event without running it, or nil.
func (s *Simulator) peek() *event {
	for len(s.q) > 0 {
		if s.q[0].canceled {
			heap.Pop(&s.q)
			continue
		}
		return s.q[0]
	}
	return nil
}

// NextTime returns the time of the next pending event, or (0, false) if the
// queue is empty.
func (s *Simulator) NextTime() (float64, bool) {
	ev := s.peek()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}
