package sim

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var s Simulator
	ran := false
	s.At(5, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 5 {
		t.Fatalf("ran=%v now=%v", ran, s.Now())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.At(tm, func() { got = append(got, tm) })
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestEqualTimePriorityOrder(t *testing.T) {
	s := New()
	var got []string
	s.AtPrio(1, PrioArrival, func() { got = append(got, "arrival") })
	s.AtPrio(1, PrioCommit, func() { got = append(got, "commit") })
	s.AtPrio(1, PrioDefault, func() { got = append(got, "default") })
	s.Run()
	want := []string{"commit", "default", "arrival"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEqualTimeEqualPrioFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("scheduling order not preserved: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.At(1, func() { ran = true })
	if !h.Pending() {
		t.Fatalf("handle should be pending")
	}
	h.Cancel()
	if h.Pending() {
		t.Fatalf("cancelled handle should not be pending")
	}
	s.Run()
	if ran {
		t.Fatalf("cancelled event ran")
	}
	// Cancelling again and cancelling the zero Handle are no-ops.
	h.Cancel()
	Handle{}.Cancel()
}

func TestScheduleFromWithinEvent(t *testing.T) {
	s := New()
	var got []float64
	s.At(1, func() {
		got = append(got, s.Now())
		s.After(2, func() { got = append(got, s.Now()) })
		s.At(s.Now(), func() { got = append(got, s.Now()) }) // same instant
	})
	s.Run()
	want := []float64{1, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		s.At(tm, func() { count++ })
	}
	s.RunUntil(3)
	if count != 3 {
		t.Fatalf("ran %d events by t=3, want 3", count)
	}
	if s.Now() != 3 {
		t.Fatalf("clock at %v, want 3", s.Now())
	}
	if s.Len() != 2 {
		t.Fatalf("pending %d, want 2", s.Len())
	}
	s.RunUntil(10)
	if count != 5 || s.Now() != 10 {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
}

func TestNextTime(t *testing.T) {
	s := New()
	if _, ok := s.NextTime(); ok {
		t.Fatalf("empty queue should have no next time")
	}
	h := s.At(4, func() {})
	s.At(9, func() {})
	if tm, ok := s.NextTime(); !ok || tm != 4 {
		t.Fatalf("next = %v,%v", tm, ok)
	}
	h.Cancel()
	if tm, ok := s.NextTime(); !ok || tm != 9 {
		t.Fatalf("next after cancel = %v,%v; want 9", tm, ok)
	}
}

func TestPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run() // now = 5
	for name, fn := range map[string]func(){
		"past":     func() { s.At(4, func() {}) },
		"NaN":      func() { s.At(math.NaN(), func() {}) },
		"posInf":   func() { s.After(math.Inf(1), func() {}) },
		"nil func": func() { s.At(6, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSteps(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(float64(i), func() {})
	}
	s.Run()
	if s.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", s.Steps())
	}
}

// TestHeapOrderingProperty: random schedules always execute in
// non-decreasing time order with ties broken by (prio, insertion order).
func TestHeapOrderingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 1 + int(nRaw%300)
		s := New()
		type key struct {
			tm   float64
			prio int8
			seq  int
		}
		var got []key
		for i := 0; i < n; i++ {
			tm := float64(rng.IntN(20))
			prio := int8(rng.IntN(3) - 1)
			k := key{tm, prio, i}
			s.AtPrio(tm, prio, func() { got = append(got, k) })
		}
		if len(got) != 0 {
			return false
		}
		s.Run()
		if len(got) != n {
			return false
		}
		for i := 1; i < n; i++ {
			a, b := got[i-1], got[i]
			if a.tm > b.tm {
				return false
			}
			if a.tm == b.tm && a.prio > b.prio {
				return false
			}
			if a.tm == b.tm && a.prio == b.prio && a.seq > b.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRandomProperty: cancelled events never run, everything else
// runs exactly once.
func TestCancelRandomProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 1 + int(nRaw%200)
		s := New()
		ran := make([]int, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = s.At(float64(rng.IntN(50)), func() { ran[i]++ })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < n/3; i++ {
			j := rng.IntN(n)
			handles[j].Cancel()
			cancelled[j] = true
		}
		s.Run()
		for i, r := range ran {
			if cancelled[i] && r != 0 {
				return false
			}
			if !cancelled[i] && r != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
