// Package stats provides the small statistical toolkit the evaluation
// needs: numerically stable accumulation (Welford), sample summaries and
// Student-t 95% confidence intervals for the reject-ratio curves
// (paper Fig. 3b reports 95% CIs over ten runs per point).
package stats

import (
	"fmt"
	"math"
)

// Online accumulates a sample with Welford's algorithm. The zero value is
// an empty sample ready for use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the sample.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the sample size.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean (0 for an empty sample).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 for an empty sample).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 for an empty sample).
func (o *Online) Max() float64 { return o.max }

// Summary is an immutable snapshot of a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min      float64
	Max      float64
	CI95Half float64 // half-width of the 95% Student-t confidence interval
}

// Summary snapshots the accumulator.
func (o *Online) Summary() Summary {
	return Summary{
		N:        o.n,
		Mean:     o.mean,
		Std:      o.Std(),
		Min:      o.min,
		Max:      o.max,
		CI95Half: o.CI95Half(),
	}
}

// CI95Half returns the half-width of the 95% confidence interval for the
// mean, t_{0.975,n-1}·s/√n (0 for n < 2).
func (o *Online) CI95Half() float64 {
	if o.n < 2 {
		return 0
	}
	return TInv975(o.n-1) * o.Std() / math.Sqrt(float64(o.n))
}

// String formats the summary as "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6f ± %.6f (n=%d)", s.Mean, s.CI95Half, s.N)
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Summary()
}

// tTable holds two-sided 97.5th-percentile Student-t critical values for
// small degrees of freedom; beyond the table the normal approximation is
// used via interpolation toward 1.96.
var tTable = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	40: 2.021, 50: 2.009, 60: 2.000, 80: 1.990, 100: 1.984, 120: 1.980,
}

// TInv975 returns the two-sided 95% Student-t critical value for the given
// degrees of freedom (exact table for df ≤ 30, interpolated above, 1.96 in
// the limit). It panics for df < 1.
func TInv975(df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: TInv975 needs df >= 1, got %d", df))
	}
	if v, ok := tTable[df]; ok {
		return v
	}
	if df > 120 {
		return 1.96
	}
	// Linear interpolation between the nearest table entries.
	lo, hi := df, df
	for ; ; lo-- {
		if _, ok := tTable[lo]; ok {
			break
		}
	}
	for ; ; hi++ {
		if _, ok := tTable[hi]; ok {
			break
		}
	}
	f := float64(df-lo) / float64(hi-lo)
	return tTable[lo]*(1-f) + tTable[hi]*f
}
