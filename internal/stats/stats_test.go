package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Var() != 0 || o.Std() != 0 || o.CI95Half() != 0 {
		t.Fatalf("empty sample should be all zeros")
	}
}

func TestSingleObservation(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.N() != 1 || o.Mean() != 3.5 || o.Var() != 0 {
		t.Fatalf("n=%d mean=%v var=%v", o.N(), o.Mean(), o.Var())
	}
	if o.Min() != 3.5 || o.Max() != 3.5 {
		t.Fatalf("min/max wrong")
	}
}

func TestKnownValues(t *testing.T) {
	// Sample {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, math.Sqrt(32.0/7))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// CI half-width: t(7)·s/√8 = 2.365·2.138/2.828.
	want := 2.365 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if math.Abs(s.CI95Half-want) > 1e-9 {
		t.Fatalf("ci = %v, want %v", s.CI95Half, want)
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(200)
		xs := make([]float64, n)
		sum := 0.0
		for i := range xs {
			xs[i] = 1e6 + rng.Float64() // offset stresses naive summation
			sum += xs[i]
		}
		mean := sum / float64(n)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		s := Summarize(xs)
		if math.Abs(s.Mean-mean) > 1e-9*math.Abs(mean) {
			t.Fatalf("mean %v vs naive %v", s.Mean, mean)
		}
		if math.Abs(s.Var()-naiveVar) > 1e-6*math.Max(1e-12, naiveVar) {
			t.Fatalf("var %v vs naive %v", s.Var(), naiveVar)
		}
	}
}

// Var on Summary is not defined; helper for the test above.
func (s Summary) Var() float64 { return s.Std * s.Std }

func TestTInv975(t *testing.T) {
	cases := map[int]float64{1: 12.706, 9: 2.262, 30: 2.042, 120: 1.980, 10000: 1.96}
	for df, want := range cases {
		if got := TInv975(df); math.Abs(got-want) > 1e-9 {
			t.Fatalf("TInv975(%d) = %v, want %v", df, got, want)
		}
	}
	// Interpolated region is monotone decreasing and bracketed.
	prev := TInv975(30)
	for df := 31; df <= 121; df++ {
		got := TInv975(df)
		if got > prev+1e-12 {
			t.Fatalf("TInv975 not monotone at %d: %v > %v", df, got, prev)
		}
		if got < 1.96-1e-12 {
			t.Fatalf("TInv975(%d) = %v below normal limit", df, got)
		}
		prev = got
	}
}

func TestTInv975Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for df=0")
		}
	}()
	TInv975(0)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatalf("empty summary string")
	}
}

// Property: mean stays within [min, max] and variance is non-negative.
func TestOnlineBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var o Online
		count := 0
		for _, x := range raw {
			// The accumulator targets simulation metrics; restrict the
			// property to magnitudes where float64 differences cannot
			// overflow.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				continue
			}
			o.Add(x)
			count++
		}
		if count == 0 {
			return true
		}
		return o.Mean() >= o.Min()-1e-9 && o.Mean() <= o.Max()+1e-9 && o.Var() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
