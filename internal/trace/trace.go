// Package trace records per-task scheduling lifecycle events. It provides
// an rt.Observer-compatible recorder backed by a bounded ring buffer plus
// simple counters, used by the examples and the integration tests.
package trace

import (
	"fmt"

	"rtdls/internal/rt"
)

// Kind labels a lifecycle event.
type Kind uint8

const (
	// Accept: the task passed the schedulability test and joined the
	// waiting queue.
	Accept Kind = iota
	// Reject: the task failed the schedulability test.
	Reject
	// Commit: the task's first data transmission began; its plan is final.
	Commit
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one lifecycle event.
type Record struct {
	Kind     Kind
	Time     float64 // simulation time of the event
	TaskID   int64
	Arrival  float64
	Sigma    float64
	Deadline float64 // absolute deadline
	Nodes    int     // assigned node count (Accept/Commit)
	Est      float64 // estimated completion (Accept/Commit)
}

// Ring is a bounded event recorder implementing rt.Observer. A Ring with
// capacity 0 only counts events. It has no locking of its own, but every
// installation path (service.Config.Observer, Scheduler.SetObserver)
// serialises observer callbacks under the owner's lock, so one Ring per
// scheduler is safe even with concurrent submitters; do not share a Ring
// across schedulers or read it while a run is in flight.
type Ring struct {
	cap     int
	buf     []Record
	start   int
	dropped int

	accepts int
	rejects int
	commits int
}

// NewRing returns a recorder keeping at most capacity records (older
// records are dropped first).
func NewRing(capacity int) *Ring {
	if capacity < 0 {
		capacity = 0
	}
	return &Ring{cap: capacity}
}

func (r *Ring) push(rec Record) {
	if r.cap == 0 {
		return
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % r.cap
	r.dropped++
}

// OnAccept implements rt.Observer.
func (r *Ring) OnAccept(now float64, t *rt.Task, p *rt.Plan) {
	r.accepts++
	r.push(Record{
		Kind: Accept, Time: now, TaskID: t.ID, Arrival: t.Arrival,
		Sigma: t.Sigma, Deadline: t.AbsDeadline(),
		Nodes: len(p.Nodes), Est: p.Est,
	})
}

// OnReject implements rt.Observer.
func (r *Ring) OnReject(now float64, t *rt.Task) {
	r.rejects++
	r.push(Record{
		Kind: Reject, Time: now, TaskID: t.ID, Arrival: t.Arrival,
		Sigma: t.Sigma, Deadline: t.AbsDeadline(),
	})
}

// OnCommit implements rt.Observer.
func (r *Ring) OnCommit(now float64, p *rt.Plan) {
	r.commits++
	r.push(Record{
		Kind: Commit, Time: now, TaskID: p.Task.ID, Arrival: p.Task.Arrival,
		Sigma: p.Task.Sigma, Deadline: p.Task.AbsDeadline(),
		Nodes: len(p.Nodes), Est: p.Est,
	})
}

// Records returns the retained records in chronological order.
func (r *Ring) Records() []Record {
	out := make([]Record, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Dropped returns how many records were evicted from the ring.
func (r *Ring) Dropped() int { return r.dropped }

// Accepts returns the number of Accept events observed.
func (r *Ring) Accepts() int { return r.accepts }

// Rejects returns the number of Reject events observed.
func (r *Ring) Rejects() int { return r.rejects }

// Commits returns the number of Commit events observed.
func (r *Ring) Commits() int { return r.commits }
