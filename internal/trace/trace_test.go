package trace

import (
	"testing"

	"rtdls/internal/rt"
)

func sampleTask(id int64) *rt.Task {
	return &rt.Task{ID: id, Arrival: float64(id), Sigma: 10, RelDeadline: 100}
}

func samplePlan(id int64) *rt.Plan {
	return &rt.Plan{
		Task:    sampleTask(id),
		Nodes:   []int{0, 1},
		Starts:  []float64{0, 0},
		Release: []float64{5, 5},
		Alphas:  []float64{0.5, 0.5},
		Est:     5,
	}
}

func TestRingCounts(t *testing.T) {
	r := NewRing(10)
	r.OnAccept(1, sampleTask(1), samplePlan(1))
	r.OnReject(2, sampleTask(2))
	r.OnCommit(3, samplePlan(1))
	if r.Accepts() != 1 || r.Rejects() != 1 || r.Commits() != 1 {
		t.Fatalf("counts %d/%d/%d", r.Accepts(), r.Rejects(), r.Commits())
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Kind != Accept || recs[1].Kind != Reject || recs[2].Kind != Commit {
		t.Fatalf("record kinds wrong: %v", recs)
	}
	if recs[0].Nodes != 2 || recs[0].Est != 5 {
		t.Fatalf("accept record missing plan data: %+v", recs[0])
	}
	if recs[1].TaskID != 2 || recs[1].Deadline != 2+100 {
		t.Fatalf("reject record wrong: %+v", recs[1])
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 7; i++ {
		r.OnReject(float64(i), sampleTask(i))
	}
	if r.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", r.Dropped())
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("%d retained", len(recs))
	}
	for i, rec := range recs {
		if rec.TaskID != int64(4+i) {
			t.Fatalf("retained wrong records: %v", recs)
		}
	}
	if r.Rejects() != 7 {
		t.Fatalf("counters must survive eviction: %d", r.Rejects())
	}
}

func TestZeroCapacityCountsOnly(t *testing.T) {
	r := NewRing(0)
	r.OnAccept(0, sampleTask(1), samplePlan(1))
	if len(r.Records()) != 0 || r.Accepts() != 1 {
		t.Fatalf("zero-capacity ring misbehaved")
	}
	// Negative capacity is normalised to zero.
	r = NewRing(-5)
	r.OnReject(0, sampleTask(1))
	if len(r.Records()) != 0 || r.Rejects() != 1 {
		t.Fatalf("negative-capacity ring misbehaved")
	}
}

func TestKindString(t *testing.T) {
	if Accept.String() != "accept" || Reject.String() != "reject" || Commit.String() != "commit" {
		t.Fatalf("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatalf("unknown kind should format")
	}
}

// The Ring must satisfy rt.Observer.
var _ rt.Observer = (*Ring)(nil)
