package verify_test

import (
	"testing"

	"rtdls/internal/driver"
	"rtdls/internal/verify"
)

// TestAllAlgorithmsVerified runs the full driver for every algorithm with
// the independent checker attached: the strongest end-to-end statement the
// library makes — across thousands of admissions, not a single overlap,
// estimate violation or deadline miss.
func TestAllAlgorithmsVerified(t *testing.T) {
	for _, alg := range driver.Algorithms() {
		for _, load := range []float64{0.5, 1.0} {
			cfg := driver.Default()
			cfg.Algorithm = alg
			cfg.SystemLoad = load
			cfg.Horizon = 4e5
			cfg.Seed = 77
			chk := verify.NewChecker(cfg.Params(), cfg.N)
			cfg.Observer = chk
			res, err := driver.Run(cfg)
			if err != nil {
				t.Fatalf("%s load %v: %v", alg, load, err)
			}
			if !chk.OK() {
				t.Fatalf("%s load %v: %s", alg, load, chk.Report())
			}
			if chk.Commits() != res.Committed {
				t.Fatalf("%s: checker saw %d commits, driver %d", alg, chk.Commits(), res.Committed)
			}
			// Both quantities are mathematically ≤ 0; allow only
			// floating-point noise.
			const fpNoise = 1e-6
			if chk.WorstLateness() > fpNoise {
				t.Fatalf("%s load %v: lateness %v", alg, load, chk.WorstLateness())
			}
			if chk.WorstEstimateGap() > fpNoise {
				t.Fatalf("%s load %v: Theorem-4 gap %v", alg, load, chk.WorstEstimateGap())
			}
		}
	}
}
