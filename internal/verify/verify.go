// Package verify is a defence-in-depth checker for scheduling runs: it
// observes every admission and commitment and re-validates, independently
// of the scheduler's own bookkeeping, that
//
//   - no two committed tasks ever occupy the same node at the same time,
//   - every committed plan's exact dispatch finishes by the admission
//     estimate (Theorem 4) and by the task's absolute deadline,
//   - per-node busy intervals start no earlier than the node's previous
//     release (causality).
//
// Install a Checker as the driver's Observer (cmd/dlsim -verify) or a
// scheduler's observer in tests. Violations are collected, not panicked,
// so a harness can report all of them.
package verify

import (
	"fmt"
	"math"

	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

// Violation describes one broken invariant.
type Violation struct {
	Time   float64
	TaskID int64
	Kind   string // "overlap", "deadline", "estimate", "causality"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.3f task=%d %s: %s", v.Time, v.TaskID, v.Kind, v.Detail)
}

// Checker implements rt.Observer and re-validates every committed plan.
// It has no locking of its own; callbacks are serialised by whichever
// scheduler or service the checker is installed on, so one checker per
// run is safe even with concurrent submitters. Inspect OK()/Report() only
// after the run settles.
type Checker struct {
	p  dlt.Params
	cm *dlt.CostModel // nil or uniform: re-simulate with the scalar p
	n  int

	nodeBusyUntil []float64 // independent shadow of per-node occupation
	violations    []Violation

	accepts, rejects, commits int
	worstLateness             float64
	worstEstimateGap          float64 // max(actual − estimate)
}

// NewChecker returns a checker for a homogeneous cluster of n nodes with
// the given cost parameters.
func NewChecker(p dlt.Params, n int) *Checker {
	return &Checker{
		p:             p,
		n:             n,
		nodeBusyUntil: make([]float64, n),
		worstLateness: math.Inf(-1),
	}
}

// NewCheckerCosts returns a checker that re-simulates committed dispatches
// against the given per-node cost model.
func NewCheckerCosts(cm *dlt.CostModel) *Checker {
	return &Checker{
		p:             cm.Reference(),
		cm:            cm,
		n:             cm.N(),
		nodeBusyUntil: make([]float64, cm.N()),
		worstLateness: math.Inf(-1),
	}
}

// OnAccept implements rt.Observer.
func (c *Checker) OnAccept(now float64, t *rt.Task, p *rt.Plan) {
	c.accepts++
	absD := t.AbsDeadline()
	if p.Est > absD+tol(absD) {
		c.add(now, t.ID, "deadline", fmt.Sprintf("admitted with estimate %v past deadline %v", p.Est, absD))
	}
}

// OnReject implements rt.Observer.
func (c *Checker) OnReject(now float64, t *rt.Task) { c.rejects++ }

// OnCommit implements rt.Observer.
func (c *Checker) OnCommit(now float64, pl *rt.Plan) {
	c.commits++
	task := pl.Task
	absD := task.AbsDeadline()

	// Causality and mutual exclusion against the shadow state.
	for i, id := range pl.Nodes {
		if id < 0 || id >= c.n {
			c.add(now, task.ID, "overlap", fmt.Sprintf("node id %d out of range", id))
			continue
		}
		if pl.Starts[i] < c.nodeBusyUntil[id]-tol(c.nodeBusyUntil[id]) {
			c.add(now, task.ID, "overlap",
				fmt.Sprintf("node %d busy until %v but task starts at %v",
					id, c.nodeBusyUntil[id], pl.Starts[i]))
		}
		if pl.Release[i] < pl.Starts[i]-tol(pl.Starts[i]) {
			c.add(now, task.ID, "causality",
				fmt.Sprintf("node %d released at %v before start %v", id, pl.Release[i], pl.Starts[i]))
		}
		c.nodeBusyUntil[id] = pl.Release[i]
	}

	// Exact execution: the dispatch of the committed partition must meet
	// both the admission estimate (Theorem 4) and the deadline. Multi-round
	// plans carry an exact simulated Est and OPR-style plans complete
	// exactly at Est; staggered single-round plans are re-run through the
	// independent dispatch model here.
	actual := pl.Est
	if pl.Rounds <= 1 && !pl.SimultaneousStart {
		var (
			d   *dlt.Dispatch
			err error
		)
		if c.cm != nil {
			d, err = c.cm.SimulateFor(pl.Nodes, task.Sigma, pl.Starts, pl.Alphas)
		} else {
			d, err = dlt.SimulateDispatch(c.p, task.Sigma, pl.Starts, pl.Alphas)
		}
		if err != nil {
			c.add(now, task.ID, "causality", fmt.Sprintf("dispatch failed: %v", err))
			return
		}
		actual = d.Completion
	}
	if gap := actual - pl.Est; gap > c.worstEstimateGap {
		c.worstEstimateGap = gap
	}
	if actual > pl.Est+tol(pl.Est) {
		c.add(now, task.ID, "estimate",
			fmt.Sprintf("actual completion %v exceeds admission estimate %v", actual, pl.Est))
	}
	if late := actual - absD; late > c.worstLateness {
		c.worstLateness = late
	}
	if actual > absD+tol(absD) {
		c.add(now, task.ID, "deadline",
			fmt.Sprintf("actual completion %v misses deadline %v", actual, absD))
	}
}

func (c *Checker) add(now float64, id int64, kind, detail string) {
	c.violations = append(c.violations, Violation{Time: now, TaskID: id, Kind: kind, Detail: detail})
}

func tol(scale float64) float64 {
	return 1e-6 * math.Max(1, math.Abs(scale))
}

// Violations returns every invariant violation observed so far.
func (c *Checker) Violations() []Violation { return c.violations }

// OK reports whether no invariant was violated.
func (c *Checker) OK() bool { return len(c.violations) == 0 }

// Commits returns the number of commits checked.
func (c *Checker) Commits() int { return c.commits }

// Accepts returns the number of accepts observed.
func (c *Checker) Accepts() int { return c.accepts }

// Rejects returns the number of rejects observed.
func (c *Checker) Rejects() int { return c.rejects }

// WorstLateness returns the maximum (actual completion − deadline) over
// committed tasks; ≤ 0 means the hard real-time guarantee held.
func (c *Checker) WorstLateness() float64 {
	if c.commits == 0 {
		return 0
	}
	return c.worstLateness
}

// WorstEstimateGap returns the maximum (actual − estimate); ≤ 0 certifies
// Theorem 4 across the run.
func (c *Checker) WorstEstimateGap() float64 { return c.worstEstimateGap }

// Report formats a short human-readable verification summary.
func (c *Checker) Report() string {
	status := "PASS"
	if !c.OK() {
		status = fmt.Sprintf("FAIL (%d violations)", len(c.violations))
	}
	s := fmt.Sprintf("verify: %s — %d accepts, %d rejects, %d commits; worst lateness %.3g; worst est. gap %.3g\n",
		status, c.accepts, c.rejects, c.commits, c.WorstLateness(), c.worstEstimateGap)
	for i, v := range c.violations {
		if i == 10 {
			s += fmt.Sprintf("  … and %d more\n", len(c.violations)-10)
			break
		}
		s += "  " + v.String() + "\n"
	}
	return s
}
