package verify

import (
	"strings"
	"testing"

	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func goodPlan(id int64, start float64) *rt.Plan {
	task := &rt.Task{ID: id, Arrival: start, Sigma: 10, RelDeadline: 5000}
	return &rt.Plan{
		Task:    task,
		Nodes:   []int{0, 1},
		Starts:  []float64{start, start},
		Release: []float64{start + 600, start + 600},
		Alphas:  []float64{0.5, 0.5},
		Est:     start + 600,
		Rounds:  1,
	}
}

func TestCleanRunPasses(t *testing.T) {
	c := NewChecker(baseline, 4)
	p := goodPlan(1, 0)
	c.OnAccept(0, p.Task, p)
	c.OnCommit(0, p)
	p2 := goodPlan(2, 600)
	c.OnAccept(600, p2.Task, p2)
	c.OnCommit(600, p2)
	c.OnReject(700, &rt.Task{ID: 3, Arrival: 700, Sigma: 1, RelDeadline: 1})
	if !c.OK() {
		t.Fatalf("clean run flagged: %v", c.Violations())
	}
	if c.Accepts() != 2 || c.Rejects() != 1 || c.Commits() != 2 {
		t.Fatalf("counts %d/%d/%d", c.Accepts(), c.Rejects(), c.Commits())
	}
	if c.WorstLateness() > 0 {
		t.Fatalf("lateness %v", c.WorstLateness())
	}
	if !strings.Contains(c.Report(), "PASS") {
		t.Fatalf("report: %s", c.Report())
	}
}

func TestDetectsOverlap(t *testing.T) {
	c := NewChecker(baseline, 4)
	c.OnCommit(0, goodPlan(1, 0))
	// Second task reuses node 0 before the first releases it.
	c.OnCommit(100, goodPlan(2, 100))
	if c.OK() {
		t.Fatalf("overlap not detected")
	}
	found := false
	for _, v := range c.Violations() {
		if v.Kind == "overlap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong violation kinds: %v", c.Violations())
	}
}

func TestDetectsDeadlineMiss(t *testing.T) {
	c := NewChecker(baseline, 4)
	p := goodPlan(1, 0)
	p.Task.RelDeadline = 500 // actual completion ≈ 515 > 500
	c.OnCommit(0, p)
	if c.OK() {
		t.Fatalf("deadline miss not detected")
	}
}

func TestDetectsBadAdmission(t *testing.T) {
	c := NewChecker(baseline, 4)
	p := goodPlan(1, 0)
	p.Est = 10000 // beyond the deadline 5000
	c.OnAccept(0, p.Task, p)
	if c.OK() {
		t.Fatalf("estimate-past-deadline admission not detected")
	}
}

func TestDetectsEstimateViolation(t *testing.T) {
	c := NewChecker(baseline, 4)
	p := goodPlan(1, 0)
	p.Est = 100 // dispatch actually takes ~515
	p.Task.RelDeadline = 5000
	c.OnCommit(0, p)
	found := false
	for _, v := range c.Violations() {
		if v.Kind == "estimate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("estimate violation not detected: %v", c.Violations())
	}
	if c.WorstEstimateGap() <= 0 {
		t.Fatalf("gap not recorded")
	}
}

func TestDetectsBadNodeID(t *testing.T) {
	c := NewChecker(baseline, 2)
	p := goodPlan(1, 0)
	p.Nodes = []int{0, 7}
	c.OnCommit(0, p)
	if c.OK() {
		t.Fatalf("out-of-range node not detected")
	}
}

func TestReportTruncatesViolations(t *testing.T) {
	c := NewChecker(baseline, 2)
	for i := int64(0); i < 15; i++ {
		p := goodPlan(i, 0) // every plan after the first overlaps
		c.OnCommit(0, p)
	}
	rep := c.Report()
	if !strings.Contains(rep, "more") {
		t.Fatalf("long report not truncated:\n%s", rep)
	}
	if !strings.Contains(rep, "FAIL") {
		t.Fatalf("failing report must say FAIL")
	}
}

var _ rt.Observer = (*Checker)(nil)
