// Package workload generates the synthetic task sets of the paper's
// evaluation (Sec. 5): Poisson arrivals, normally distributed data sizes
// with standard deviation equal to the mean, and uniformly distributed
// relative deadlines parameterised by the deadline-to-cost ratio DCRatio.
//
// SystemLoad is defined as arrival-rate × E(Avgσ, N): the fraction of
// cluster time the stream would consume if every task had the average data
// size and ran on all N nodes. Given SystemLoad, the mean interarrival time
// is E(Avgσ,N)/SystemLoad.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rtdls/internal/dlt"
	"rtdls/internal/rt"
)

// Config specifies one simulated workload.
type Config struct {
	N          int        // cluster size (for E(Avgσ,N) and user node requests)
	Params     dlt.Params // cluster unit costs
	SystemLoad float64    // arrival-rate × E(Avgσ,N); (0, ~1]
	AvgSigma   float64    // mean task data size
	DCRatio    float64    // mean relative deadline / E(Avgσ,N)
	Horizon    float64    // generate arrivals in [0, Horizon]
	Seed       uint64     // base RNG seed; same seed ⇒ identical task stream
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("workload: N must be >= 1, got %d", c.N)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if !(c.SystemLoad > 0) || math.IsInf(c.SystemLoad, 0) {
		return fmt.Errorf("workload: SystemLoad must be positive and finite, got %v", c.SystemLoad)
	}
	if !(c.AvgSigma > 0) || math.IsInf(c.AvgSigma, 0) {
		return fmt.Errorf("workload: AvgSigma must be positive and finite, got %v", c.AvgSigma)
	}
	if !(c.DCRatio > 0) || math.IsInf(c.DCRatio, 0) {
		return fmt.Errorf("workload: DCRatio must be positive and finite, got %v", c.DCRatio)
	}
	if !(c.Horizon > 0) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("workload: Horizon must be positive and finite, got %v", c.Horizon)
	}
	return nil
}

// AvgExecTime returns E(Avgσ, N), the execution time of an average-sized
// task on the whole cluster — the paper's unit for both SystemLoad and
// DCRatio.
func (c Config) AvgExecTime() float64 {
	return c.Params.ExecTime(c.AvgSigma, c.N)
}

// MeanInterarrival returns E(Avgσ,N)/SystemLoad.
func (c Config) MeanInterarrival() float64 {
	return c.AvgExecTime() / c.SystemLoad
}

// AvgDeadline returns AvgD = DCRatio × E(Avgσ,N); relative deadlines are
// drawn uniformly from [AvgD/2, 3·AvgD/2].
func (c Config) AvgDeadline() float64 {
	return c.DCRatio * c.AvgExecTime()
}

// sigmaFloorFrac is the truncation floor for task data sizes as a fraction
// of AvgSigma: draws from Normal(Avgσ, Avgσ) below it are clamped.
const sigmaFloorFrac = 0.01

// Generator produces the task stream for one simulation run. It is not
// safe for concurrent use.
type Generator struct {
	cfg  Config
	main *rand.Rand // arrivals, sizes, deadlines
	aux  *rand.Rand // user-requested node counts (separate stream so the
	// main sequence is identical across algorithms; DESIGN.md §3)
	next   float64
	nextID int64
	count  int
}

// New returns a generator for the configuration, or an error if the
// configuration is invalid.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:  cfg,
		main: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		aux:  rand.New(rand.NewPCG(cfg.Seed^0xd1b54a32d192ed03, cfg.Seed+0x632be59bd9b4e019)),
	}
	g.next = g.main.ExpFloat64() * cfg.MeanInterarrival()
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next returns the next task, or ok=false once the next arrival would fall
// beyond the horizon. Tasks are returned in strictly non-decreasing arrival
// order with unique IDs.
func (g *Generator) Next() (t *rt.Task, ok bool) {
	if g.next > g.cfg.Horizon {
		return nil, false
	}
	t = &rt.Task{
		ID:      g.nextID,
		Arrival: g.next,
	}
	g.nextID++
	g.count++

	// σ ~ Normal(Avgσ, Avgσ), truncated to a small positive floor
	// (DESIGN.md §3): clamping keeps the effective mean within ~8% of
	// Avgσ, so SystemLoad retains its intended meaning; resampling would
	// inflate it by ~29% and push nominal load 1.0 deep into overload.
	s := g.cfg.AvgSigma + g.cfg.AvgSigma*g.main.NormFloat64()
	if floor := sigmaFloorFrac * g.cfg.AvgSigma; s < floor {
		s = floor
	}
	t.Sigma = s

	// D ~ Uniform[AvgD/2, 3AvgD/2], clamped to be at least the minimum
	// execution time E(σ, N) (the paper requires D_i > E(σ_i, N)).
	avgD := g.cfg.AvgDeadline()
	d := avgD * (0.5 + g.main.Float64())
	if minExec := g.cfg.Params.ExecTime(t.Sigma, g.cfg.N); d < minExec {
		d = minExec
	}
	t.RelDeadline = d

	// User-requested node count ~ Uniform[Nmin, N] (Sec. 4.1.2), from the
	// auxiliary stream. UserN = 0 marks a task no node count can save.
	if nmin, feas := dlt.UserSplitMinNodes(g.cfg.Params, t.Sigma, t.RelDeadline); feas && nmin <= g.cfg.N {
		t.UserN = nmin + g.aux.IntN(g.cfg.N-nmin+1)
	}

	g.next += g.main.ExpFloat64() * g.cfg.MeanInterarrival()
	return t, true
}

// Count returns the number of tasks generated so far.
func (g *Generator) Count() int { return g.count }
