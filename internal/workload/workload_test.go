package workload

import (
	"math"
	"testing"

	"rtdls/internal/dlt"
)

var baseline = dlt.Params{Cms: 1, Cps: 100}

func baseCfg() Config {
	return Config{
		N: 16, Params: baseline,
		SystemLoad: 0.5, AvgSigma: 200, DCRatio: 2,
		Horizon: 1e6, Seed: 1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Config){
		"zero N":       func(c *Config) { c.N = 0 },
		"bad params":   func(c *Config) { c.Params = dlt.Params{} },
		"zero load":    func(c *Config) { c.SystemLoad = 0 },
		"neg load":     func(c *Config) { c.SystemLoad = -1 },
		"inf load":     func(c *Config) { c.SystemLoad = math.Inf(1) },
		"zero sigma":   func(c *Config) { c.AvgSigma = 0 },
		"zero dcratio": func(c *Config) { c.DCRatio = 0 },
		"zero horizon": func(c *Config) { c.Horizon = 0 },
		"NaN horizon":  func(c *Config) { c.Horizon = math.NaN() },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			c := baseCfg()
			mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("expected error")
			}
			if _, err := New(c); err == nil {
				t.Fatalf("New must reject invalid config")
			}
		})
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := baseCfg()
	e := baseline.ExecTime(200, 16)
	if got := c.AvgExecTime(); math.Abs(got-e) > 1e-9 {
		t.Fatalf("AvgExecTime = %v, want %v", got, e)
	}
	if got := c.MeanInterarrival(); math.Abs(got-e/0.5) > 1e-9 {
		t.Fatalf("MeanInterarrival = %v, want %v", got, e/0.5)
	}
	if got := c.AvgDeadline(); math.Abs(got-2*e) > 1e-9 {
		t.Fatalf("AvgDeadline = %v, want %v", got, 2*e)
	}
}

func TestTaskStreamInvariants(t *testing.T) {
	g, err := New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Config()
	avgD := cfg.AvgDeadline()
	prevArrival := -1.0
	prevID := int64(-1)
	n := 0
	for {
		task, ok := g.Next()
		if !ok {
			break
		}
		n++
		if task.Arrival < prevArrival {
			t.Fatalf("arrivals not monotone: %v after %v", task.Arrival, prevArrival)
		}
		if task.Arrival > cfg.Horizon {
			t.Fatalf("arrival %v beyond horizon", task.Arrival)
		}
		if task.ID != prevID+1 {
			t.Fatalf("IDs not sequential: %d after %d", task.ID, prevID)
		}
		if task.Sigma <= 0 {
			t.Fatalf("non-positive sigma %v", task.Sigma)
		}
		if task.RelDeadline < baseline.ExecTime(task.Sigma, cfg.N)-1e-9 {
			t.Fatalf("deadline %v below minimum execution time %v",
				task.RelDeadline, baseline.ExecTime(task.Sigma, cfg.N))
		}
		if task.RelDeadline > 1.5*avgD && task.RelDeadline > baseline.ExecTime(task.Sigma, cfg.N)+1e-9 {
			t.Fatalf("unclamped deadline %v above 3AvgD/2 = %v", task.RelDeadline, 1.5*avgD)
		}
		if task.UserN != 0 {
			if task.UserN < 1 || task.UserN > cfg.N {
				t.Fatalf("UserN %d out of range", task.UserN)
			}
			nmin, feas := dlt.UserSplitMinNodes(baseline, task.Sigma, task.RelDeadline)
			if !feas || task.UserN < nmin {
				t.Fatalf("UserN %d below Nmin %d", task.UserN, nmin)
			}
		}
		prevArrival, prevID = task.Arrival, task.ID
	}
	if n == 0 {
		t.Fatalf("no tasks generated")
	}
	if g.Count() != n {
		t.Fatalf("Count = %d, want %d", g.Count(), n)
	}
}

func TestArrivalRateMatchesLoad(t *testing.T) {
	c := baseCfg()
	c.Horizon = 3e7
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	want := c.Horizon / c.MeanInterarrival()
	if math.Abs(float64(n)-want) > 0.08*want {
		t.Fatalf("generated %d tasks, want ≈ %.0f", n, want)
	}
}

func TestSigmaDistribution(t *testing.T) {
	c := baseCfg()
	c.Horizon = 5e7
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	sum, n, floored := 0.0, 0, 0
	for {
		task, ok := g.Next()
		if !ok {
			break
		}
		if task.Sigma == 0.01*200 {
			floored++
		}
		sum += task.Sigma
		n++
	}
	// Clamping a Normal(μ, μ) at ~0 raises the mean to
	// μ·(Φ(1) + φ(1)) ≈ 1.083 μ (DESIGN.md §3).
	wantMean := 200 * 1.0833
	got := sum / float64(n)
	if math.Abs(got-wantMean) > 0.05*wantMean {
		t.Fatalf("mean sigma = %v, want ≈ %v (clamped normal)", got, wantMean)
	}
	// The clamp atom holds the negative mass, Φ(-1) ≈ 15.9%.
	frac := float64(floored) / float64(n)
	if math.Abs(frac-0.1587) > 0.03 {
		t.Fatalf("clamped fraction = %v, want ≈ 0.159", frac)
	}
}

func TestDeterminismAcrossGenerators(t *testing.T) {
	g1, _ := New(baseCfg())
	g2, _ := New(baseCfg())
	for i := 0; i < 500; i++ {
		t1, ok1 := g1.Next()
		t2, ok2 := g2.Next()
		if ok1 != ok2 {
			t.Fatalf("streams diverge in length at %d", i)
		}
		if !ok1 {
			break
		}
		if *t1 != *t2 {
			t.Fatalf("same seed produced different tasks: %+v vs %+v", t1, t2)
		}
	}
}

func TestSeedsChangeStream(t *testing.T) {
	c1, c2 := baseCfg(), baseCfg()
	c2.Seed = 2
	g1, _ := New(c1)
	g2, _ := New(c2)
	t1, _ := g1.Next()
	t2, _ := g2.Next()
	if t1.Arrival == t2.Arrival && t1.Sigma == t2.Sigma {
		t.Fatalf("different seeds produced identical first task")
	}
}

// TestUserNStreamIndependence is the pairing property DESIGN.md relies on:
// the arrival/σ/D sequence is identical whether or not UserN is consumed,
// because it comes from a separate RNG stream.
func TestUserNStreamIndependence(t *testing.T) {
	g1, _ := New(baseCfg())
	g2, _ := New(baseCfg())
	for i := 0; i < 300; i++ {
		t1, ok1 := g1.Next()
		t2, ok2 := g2.Next()
		if ok1 != ok2 {
			break
		}
		if !ok1 {
			break
		}
		_ = t1.UserN // consume on one side only (no-op — both generate it)
		if t1.Arrival != t2.Arrival || t1.Sigma != t2.Sigma || t1.RelDeadline != t2.RelDeadline {
			t.Fatalf("main stream perturbed at task %d", i)
		}
	}
}
