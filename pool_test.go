package rtdls_test

import (
	"context"
	"math"
	"testing"

	"rtdls"
)

// feedDeterministic submits a fixed bursty stream with strictly
// increasing arrivals and returns every decision.
func feedDeterministic(t *testing.T, svc *rtdls.Service, tasks int) []rtdls.Decision {
	t.Helper()
	ctx := context.Background()
	out := make([]rtdls.Decision, 0, tasks)
	for i := 1; i <= tasks; i++ {
		d, err := svc.Submit(ctx, rtdls.Task{
			ID:          int64(i),
			Arrival:     float64(i) * 400,
			Sigma:       1 + float64((i*37)%350),
			RelDeadline: 900 + float64((i*91)%6000),
		})
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		out = append(out, d)
	}
	return out
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestWithShardsOneIsBitIdentical is the no-regression acceptance
// property of the pool refactor: for every algorithm (and a heterogeneous
// cost draw), a WithShards(1) service — which routes through the pool
// engine and its placement layer — produces exactly the decisions, plans
// and statistics of the default single-cluster service.
func TestWithShardsOneIsBitIdentical(t *testing.T) {
	variants := []struct {
		label string
		opts  []rtdls.Option
	}{
		{"homogeneous", nil},
		{"hetero-spread", []rtdls.Option{rtdls.WithCostSpread(2, 4, 7)}},
		{"fifo", []rtdls.Option{rtdls.WithPolicy(rtdls.FIFO)}},
	}
	for _, alg := range rtdls.Algorithms() {
		for _, v := range variants {
			label := alg + "/" + v.label
			base := append([]rtdls.Option{rtdls.WithNodes(12), rtdls.WithAlgorithm(alg)}, v.opts...)
			plain, err := rtdls.New(base...)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			pooled, err := rtdls.New(append(append([]rtdls.Option(nil), base...), rtdls.WithShards(1))...)
			if err != nil {
				t.Fatalf("%s: pooled: %v", label, err)
			}
			if plain.Shards() != 1 || pooled.Shards() != 1 {
				t.Fatalf("%s: shard counts %d / %d", label, plain.Shards(), pooled.Shards())
			}

			const tasks = 150
			dp := feedDeterministic(t, plain, tasks)
			dq := feedDeterministic(t, pooled, tasks)
			for i := range dp {
				a, b := dp[i], dq[i]
				if a.Accepted != b.Accepted || a.TaskID != b.TaskID || a.Shard != b.Shard ||
					math.Float64bits(a.At) != math.Float64bits(b.At) {
					t.Fatalf("%s task %d: decisions diverge: %+v vs %+v", label, a.TaskID, a, b)
				}
				if a.Reason != b.Reason {
					t.Fatalf("%s task %d: reasons diverge: %q vs %q", label, a.TaskID, a.Reason, b.Reason)
				}
				if !a.Accepted {
					continue
				}
				if math.Float64bits(a.Est) != math.Float64bits(b.Est) || a.Rounds != b.Rounds {
					t.Fatalf("%s task %d: plans diverge: est %v/%v", label, a.TaskID, a.Est, b.Est)
				}
				if len(a.Nodes) != len(b.Nodes) {
					t.Fatalf("%s task %d: node counts diverge", label, a.TaskID)
				}
				for j := range a.Nodes {
					if a.Nodes[j] != b.Nodes[j] {
						t.Fatalf("%s task %d: node sets diverge", label, a.TaskID)
					}
				}
				if !sameFloats(a.Starts, b.Starts) || !sameFloats(a.Alphas, b.Alphas) {
					t.Fatalf("%s task %d: starts/alphas diverge", label, a.TaskID)
				}
			}

			if err := plain.Drain(); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := pooled.Drain(); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sa, sb := plain.Stats(), pooled.Stats()
			if sa.Arrivals != sb.Arrivals || sa.Accepts != sb.Accepts || sa.Rejects != sb.Rejects ||
				sa.Commits != sb.Commits || sa.QueueLen != sb.QueueLen || sa.MaxQueueLen != sb.MaxQueueLen ||
				math.Float64bits(sa.BusyTime) != math.Float64bits(sb.BusyTime) ||
				math.Float64bits(sa.ReservedIdle) != math.Float64bits(sb.ReservedIdle) ||
				math.Float64bits(sa.LastRelease) != math.Float64bits(sb.LastRelease) ||
				math.Float64bits(sa.Utilization) != math.Float64bits(sb.Utilization) {
				t.Fatalf("%s: stats diverge:\n single: %+v\n pooled: %+v", label, sa, sb)
			}
			plain.Close()
			pooled.Close()
		}
	}
}

// TestServiceShardedFleet exercises the public multi-shard surface: a
// fleet of differently sized shards behind spillover placement, shard-
// tagged decisions and events, and aggregated versus per-shard stats.
func TestServiceShardedFleet(t *testing.T) {
	svc, err := rtdls.New(
		rtdls.WithShardNodes(16, 4),
		rtdls.WithPlacement(rtdls.Spillover{Inner: rtdls.RoundRobin{}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Shards() != 2 {
		t.Fatalf("Shards() = %d", svc.Shards())
	}
	if cls := svc.Clusters(); len(cls) != 2 || cls[0].N() != 16 || cls[1].N() != 4 {
		t.Fatalf("Clusters() sizes wrong")
	}
	if cms := svc.ShardCosts(); len(cms) != 2 || cms[0].N() != 16 || cms[1].N() != 4 {
		t.Fatalf("ShardCosts() sizes wrong")
	}

	events, cancel := svc.Subscribe(256)
	ctx := context.Background()
	// Task 2 (round robin → the 4-node shard) is infeasible there and must
	// spill over to the 16-node shard.
	for i := 1; i <= 2; i++ {
		d, err := svc.Submit(ctx, rtdls.Task{ID: int64(i), Sigma: 300, RelDeadline: 6000})
		if err != nil || !d.Accepted {
			t.Fatalf("task %d: %+v, %v", i, d, err)
		}
		if d.Shard != 0 {
			t.Fatalf("task %d placed on shard %d, want 0", i, d.Shard)
		}
	}
	if svc.Spillovers() != 1 {
		t.Fatalf("Spillovers() = %d, want 1", svc.Spillovers())
	}
	st := svc.Stats()
	if st.Arrivals != 2 || st.Accepts != 2 || st.Rejects != 0 {
		t.Fatalf("aggregate stats %+v", st)
	}
	ss := svc.ShardStats()
	if len(ss) != 2 || ss[0].Accepts != 2 || ss[1].Rejects != 1 {
		t.Fatalf("shard stats %+v", ss)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	cancel()
	sawShard1 := false
	for ev := range events {
		if ev.Shard == 1 {
			sawShard1 = true
			if ev.Kind != rtdls.EventReject {
				t.Fatalf("shard 1 should only have rejected: %+v", ev)
			}
		}
	}
	if !sawShard1 {
		t.Fatalf("merged stream missed shard 1's reject event")
	}
}

// TestSimulateSharded runs the one-call simulation over a sharded fleet.
func TestSimulateSharded(t *testing.T) {
	res, err := rtdls.Simulate(
		rtdls.Workload{SystemLoad: 0.8, AvgSigma: 200, DCRatio: 2, Horizon: 1e5, Seed: 3},
		rtdls.WithNodes(8),
		rtdls.WithShards(4),
		rtdls.WithPlacement(rtdls.LeastLoaded{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || res.Placement != "least-loaded" || len(res.ShardRejectRatios) != 4 {
		t.Fatalf("result = %+v", res)
	}
	if res.Arrivals == 0 || res.Accepted+res.Rejected != res.Arrivals {
		t.Fatalf("accounting: %+v", res)
	}
}
