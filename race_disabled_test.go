//go:build !race

package rtdls_test

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
