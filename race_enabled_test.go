//go:build race

package rtdls_test

// raceEnabled reports whether this test binary was built with -race.
// Allocation-count assertions are skipped under the race detector, whose
// instrumentation adds allocations the production build never makes.
const raceEnabled = true
