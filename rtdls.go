package rtdls

import (
	"rtdls/internal/cluster"
	"rtdls/internal/core"
	"rtdls/internal/dlt"
	"rtdls/internal/driver"
	"rtdls/internal/experiments"
	"rtdls/internal/gantt"
	"rtdls/internal/multiround"
	"rtdls/internal/rt"
	"rtdls/internal/trace"
	"rtdls/internal/verify"
	"rtdls/internal/workload"
)

// Version identifies this release of the library. 2.0.0 redesigned the
// public API around the long-lived rtdls.Service (see New, Submit,
// Subscribe). 2.1.0 sharded the service into a multi-cluster admission
// pool with a pluggable placement layer (WithShards, WithPlacement).
// 3.0.0 put the service on the wire — the dlserve HTTP/JSON front end and
// the dlload load harness, with the wire-stable Reason enum and Code
// status mapping — and removed the deprecated 1.x Config/Run/RunSeries
// batch shims (use Simulate/SimulateSeries with BaselineWorkload).
// 3.1.0 added the end-to-end observability layer (NewMetricsRegistry,
// WithMetrics, Accepting; /metrics exposition, per-stage admission
// timing, structured request logs and pprof wiring in dlserve).
// 3.2.0 made the fleet dynamic: DrainNode/FailNode/RestoreNode/AddNode
// with committed-plan re-validation and typed displacement (ErrDisplaced,
// EventDisplace), the node admin API and node_states in dlserve, and the
// scriptable churn schedule (ParseChurnSchedule, WithChurn, -churn) with
// fleet metrics in the exposition and in BENCH_wire.json.
// 3.3.0 made admission cost sub-linear in the fleet size: the scheduler's
// availability view became a base-synced order-statistic index with a
// sound infeasibility fast-reject ahead of planning (decision stream
// proven bit-for-bit unchanged), per-submit cost flat from 100 to 10,000
// nodes and ratio-gated in CI (cmd/benchgate, BENCH_index.json).
// 3.4.0 made admission optimistically concurrent: submissions plan
// against an epoch-stamped snapshot outside the shard lock and install
// under it only after an epoch check, falling back to the serialized
// path on conflict (SetSpeculation toggles it; on by default), so the
// decision stream stays bit-identical to serialized execution while
// low-conflict traffic scales with submitters — gated in CI by
// cmd/benchgate -contention over BENCH_contention.json, with
// speculative/conflict counters in Stats, /metrics and BENCH_wire.json.
const Version = "3.4.0"

// Params holds the cluster's linear cost coefficients: Cms is the time to
// transmit one unit of load from the head node to a processing node, Cps
// the time to process one unit on a node.
type Params = dlt.Params

// NodeCost holds one node's own linear cost coefficients (Cms_i, Cps_i)
// for heterogeneous clusters.
type NodeCost = dlt.NodeCost

// CostModel is an immutable per-node cost table; a uniform table
// reproduces the homogeneous scalar-Params behaviour bit for bit.
type CostModel = dlt.CostModel

// NewCostModel builds a per-node cost model (indexed by node id).
func NewCostModel(costs []NodeCost) (*CostModel, error) { return dlt.NewCostModel(costs) }

// UniformCosts returns the cost model of a homogeneous cluster of n nodes
// with scalar coefficients p.
func UniformCosts(p Params, n int) (*CostModel, error) { return dlt.UniformCosts(p, n) }

// SpreadCosts generates a deterministic heterogeneous cost table around
// the scalar reference p: log-uniform per-node draws within the given
// spread factors (≤ 1 keeps a coefficient homogeneous).
func SpreadCosts(n int, p Params, cmsSpread, cpsSpread float64, seed uint64) ([]NodeCost, error) {
	return driver.SpreadCosts(n, p, cmsSpread, cpsSpread, seed)
}

// HeteroAlphas returns the optimal single-round partition for
// simultaneously available heterogeneous nodes in dispatch order.
func HeteroAlphas(costs []NodeCost) ([]float64, error) { return dlt.HeteroAlphas(costs) }

// HeteroExecTime returns the optimal single-round execution time of a load
// σ on simultaneously available heterogeneous nodes — the generalisation
// of E(σ,n).
func HeteroExecTime(costs []NodeCost, sigma float64) (float64, error) {
	return dlt.HeteroExecTime(costs, sigma)
}

// Task is a real-time arbitrarily divisible task T = (A, σ, D).
type Task = rt.Task

// Plan is a task's resource assignment: nodes, start times, load fractions
// and the admission estimate.
type Plan = rt.Plan

// Policy selects the task execution order (EDF or FIFO).
type Policy = rt.Policy

// Execution-order policies.
const (
	FIFO = rt.FIFO
	EDF  = rt.EDF
)

// ParsePolicy parses "edf" or "fifo" (either case) into a Policy.
func ParsePolicy(s string) (Policy, error) { return rt.ParsePolicy(s) }

// Algorithm identifiers accepted by Config.Algorithm.
const (
	AlgDLTIIT    = driver.AlgDLTIIT    // this paper: DLT partitioning utilising IITs
	AlgOPRMN     = driver.AlgOPRMN     // baseline: optimal partition, min nodes, no IITs
	AlgOPRAN     = driver.AlgOPRAN     // baseline: always all N nodes
	AlgUserSplit = driver.AlgUserSplit // manual equal split, user-chosen node count
	AlgDLTMR     = driver.AlgDLTMR     // multi-round extension (paper Sec. 6)
)

// Algorithms lists every supported algorithm identifier.
func Algorithms() []string { return driver.Algorithms() }

// Result carries one run's admission and execution metrics. Simulate and
// SimulateSeries return it; the deprecated 1.x Config/Run/RunSeries batch
// shims that used to produce it were removed in 3.0.0.
type Result = driver.Result

// Cluster models the homogeneous star cluster (head node, N workers,
// per-node release times and accounting).
type Cluster = cluster.Cluster

// NewCluster returns a homogeneous cluster of n processing nodes, all
// available at time 0.
func NewCluster(n int, p Params) (*Cluster, error) { return cluster.New(n, p) }

// NewHeteroCluster returns a cluster whose node i has its own cost
// coefficients costs[i], all available at time 0.
func NewHeteroCluster(costs []NodeCost) (*Cluster, error) { return cluster.NewHetero(costs) }

// Scheduler implements the paper's Fig. 2 schedulability test with EDF or
// FIFO ordering and a pluggable partitioner.
type Scheduler = rt.Scheduler

// Partitioner is the task-partitioning module interface (framework
// Decision #2/#3).
type Partitioner = rt.Partitioner

// NewScheduler builds a scheduler over the cluster for the given policy
// and algorithm identifier (see Algorithms). Construction is routed
// through the same path as the Service options, with the cluster's actual
// cost table filled in — partitioners themselves read per-node costs at
// plan time through the scheduler's PlanContext, so heterogeneous
// clusters are handled either way; AlgDLTMR keeps its default round
// count.
//
// Deprecated: use New with WithCosts/WithPolicy/WithAlgorithm — the
// Service wraps this scheduler with commit handling, an event stream and
// concurrency safety.
func NewScheduler(cl *Cluster, pol Policy, algorithm string) (*Scheduler, error) {
	part, err := driver.PartitionerFor(algorithm, 0, cl.Costs())
	if err != nil {
		return nil, err
	}
	return rt.NewScheduler(cl, pol, part), nil
}

// Model is the paper's heterogeneous cluster model for one task: Eqs. 1–2
// construction, the α partition (Eqs. 4–5), Ê (Eq. 6) and the completion
// estimate (Eq. 7) with the Theorem-4 guarantee.
type Model = core.Model

// NewModel constructs the heterogeneous model for a task of the given data
// size over processors with the given available times.
func NewModel(p Params, sigma float64, avail []float64) (*Model, error) {
	return core.New(p, sigma, avail)
}

// NewHeteroModel constructs the availability-transformation model over an
// already-heterogeneous node set: costs[i] are node i's own coefficients
// and avail[i] its available time (the slices are sorted together).
func NewHeteroModel(costs []NodeCost, sigma float64, avail []float64) (*Model, error) {
	return core.NewHetero(costs, sigma, avail)
}

// MinNodesBound returns ñ_min = ⌈ln γ / ln β⌉, the paper's upper bound on
// the nodes required to finish a load σ within the slack.
func MinNodesBound(p Params, sigma, slack float64) (n int, ok bool) {
	return dlt.MinNodesBound(p, sigma, slack)
}

// WorkloadConfig parameterises the synthetic task generator of the
// evaluation (Poisson arrivals, σ ~ N(Avgσ,Avgσ) truncated positive,
// deadlines via DCRatio).
type WorkloadConfig = workload.Config

// Generator produces a deterministic task stream for a workload
// configuration.
type Generator = workload.Generator

// NewGenerator returns a workload generator.
func NewGenerator(cfg WorkloadConfig) (*Generator, error) { return workload.New(cfg) }

// TraceRing records per-task scheduling lifecycle events; install one via
// Config.Observer or Scheduler.SetObserver.
type TraceRing = trace.Ring

// NewTraceRing returns a lifecycle recorder keeping the last capacity
// records.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// GanttCollector records committed node occupation and renders ASCII
// timelines that make inserted idle time visible; install it via
// Config.Observer or Scheduler.SetObserver.
type GanttCollector = gantt.Collector

// NewGanttCollector returns a timeline collector for a cluster of n nodes.
func NewGanttCollector(n int) *GanttCollector { return gantt.NewCollector(n) }

// Dispatch is the exact single-round sequential dispatch timeline of a
// partitioned load.
type Dispatch = dlt.Dispatch

// SimulateDispatch computes the exact timeline of sequentially
// transmitting a load σ, partitioned by alphas, to nodes with the given
// (sorted) available times.
func SimulateDispatch(p Params, sigma float64, avail, alphas []float64) (*Dispatch, error) {
	return dlt.SimulateDispatch(p, sigma, avail, alphas)
}

// SimulateDispatchHetero is SimulateDispatch with per-node cost
// coefficients (costs, avail and alphas parallel, in dispatch order).
func SimulateDispatchHetero(costs []NodeCost, sigma float64, avail, alphas []float64) (*Dispatch, error) {
	return dlt.SimulateDispatchHetero(costs, sigma, avail, alphas)
}

// OutputDispatch extends Dispatch with result collection over the shared
// link (the paper's Sec. 3 output-transfer extension).
type OutputDispatch = dlt.OutputDispatch

// SimulateDispatchWithOutput additionally models each node returning a
// result of size delta·αᵢ·σ over the same sequential link.
func SimulateDispatchWithOutput(p Params, sigma, delta float64, avail, alphas []float64) (*OutputDispatch, error) {
	return dlt.SimulateDispatchWithOutput(p, sigma, delta, avail, alphas)
}

// Verifier independently re-validates a run's invariants (no node overlap,
// Theorem-4 estimate safety, no deadline misses); install it via
// Config.Observer or Scheduler.SetObserver and inspect OK()/Report().
type Verifier = verify.Checker

// NewVerifier returns a run verifier for a homogeneous cluster of n nodes.
func NewVerifier(p Params, n int) *Verifier { return verify.NewChecker(p, n) }

// NewVerifierCosts returns a run verifier that re-checks dispatches
// against a per-node cost model.
func NewVerifierCosts(cm *CostModel) *Verifier { return verify.NewCheckerCosts(cm) }

// MultiRoundSchedule exposes the multi-round dispatch timeline of the
// paper's future-work extension for analysis.
func MultiRoundSchedule(p Params, sigma float64, avail, totals []float64, rounds int) (finish []float64, completion float64, err error) {
	tl, err := multiround.Schedule(p, sigma, avail, totals, rounds)
	if err != nil {
		return nil, 0, err
	}
	return tl.Finish, tl.Completion, nil
}

// Panel is one evaluation figure panel; AllPanels enumerates the paper's
// complete figure inventory.
type Panel = experiments.Panel

// PanelResult is an executed panel with per-load reject-ratio summaries.
type PanelResult = experiments.PanelResult

// PanelOptions controls panel execution scale (horizon, runs, workers).
type PanelOptions = experiments.Options

// AllPanels returns every evaluation panel (Figures 3–16 plus extensions).
func AllPanels() []Panel { return experiments.AllPanels() }

// RunPanel executes one panel sweep in parallel.
func RunPanel(p Panel, o PanelOptions) (*PanelResult, error) { return experiments.Run(p, o) }

// DefaultPanelOptions returns laptop-scale defaults; use
// PanelOptions{Horizon: 1e7, Runs: 10} for the paper's full scale.
func DefaultPanelOptions() PanelOptions { return experiments.DefaultOptions() }
