package rtdls_test

import (
	"math"
	"testing"

	"rtdls"
)

func TestFacadeSimulate(t *testing.T) {
	w := rtdls.BaselineWorkload()
	w.Horizon = 2e5
	w.SystemLoad = 0.6
	r, err := rtdls.Simulate(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrivals == 0 || r.RejectRatio < 0 || r.RejectRatio > 1 {
		t.Fatalf("bad result: %+v", r)
	}
}

func TestFacadeSchedulerFlow(t *testing.T) {
	cl, err := rtdls.NewCluster(16, rtdls.Params{Cms: 1, Cps: 100})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := rtdls.NewScheduler(cl, rtdls.EDF, rtdls.AlgDLTIIT)
	if err != nil {
		t.Fatal(err)
	}
	ring := rtdls.NewTraceRing(16)
	sched.SetObserver(ring)
	ok, err := sched.Submit(&rtdls.Task{ID: 1, Arrival: 0, Sigma: 200, RelDeadline: 2718}, 0)
	if err != nil || !ok {
		t.Fatalf("Submit = %v, %v", ok, err)
	}
	if _, err := sched.CommitDue(0); err != nil {
		t.Fatal(err)
	}
	if ring.Accepts() != 1 || ring.Commits() != 1 {
		t.Fatalf("trace ring saw %d/%d", ring.Accepts(), ring.Commits())
	}
	if _, err := rtdls.NewScheduler(cl, rtdls.EDF, "bogus"); err == nil {
		t.Fatalf("unknown algorithm must fail")
	}
}

func TestFacadeModel(t *testing.T) {
	m, err := rtdls.NewModel(rtdls.Params{Cms: 1, Cps: 100}, 200, []float64{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	if !(m.ExecTime() < m.NoIITExecTime()) {
		t.Fatalf("model should utilise the IIT")
	}
	n, ok := rtdls.MinNodesBound(rtdls.Params{Cms: 1, Cps: 100}, 200, 2718)
	if !ok || n != 8 {
		t.Fatalf("MinNodesBound = %d, %v", n, ok)
	}
}

func TestFacadeGenerator(t *testing.T) {
	g, err := rtdls.NewGenerator(rtdls.WorkloadConfig{
		N: 16, Params: rtdls.Params{Cms: 1, Cps: 100},
		SystemLoad: 0.5, AvgSigma: 200, DCRatio: 2, Horizon: 1e5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	task, ok := g.Next()
	if !ok || task.Sigma <= 0 {
		t.Fatalf("generator produced nothing useful")
	}
}

func TestFacadeMultiRound(t *testing.T) {
	finish, completion, err := rtdls.MultiRoundSchedule(
		rtdls.Params{Cms: 1, Cps: 100}, 100,
		[]float64{0, 0}, []float64{0.5, 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(finish) != 2 || completion <= 0 || math.IsNaN(completion) {
		t.Fatalf("bad timeline: %v %v", finish, completion)
	}
}

func TestFacadePanels(t *testing.T) {
	panels := rtdls.AllPanels()
	if len(panels) < 60 {
		t.Fatalf("panel inventory too small: %d", len(panels))
	}
	p := panels[0]
	p.Loads = []float64{0.5}
	opts := rtdls.DefaultPanelOptions()
	opts.Horizon = 1e5
	opts.Runs = 2
	r, err := rtdls.RunPanel(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 1 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	algs := rtdls.Algorithms()
	if len(algs) != 5 {
		t.Fatalf("algorithms = %v", algs)
	}
}
