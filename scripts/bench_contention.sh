#!/bin/sh
# Contention benchmark gate: run the BenchmarkSubmitContention sweep
# (mix={cold,hot} x mode={spec,serial} x gos={1..16} submitters against one
# shard) as a test2json stream (BENCH_contention.json, uploaded by CI next
# to BENCH_index.json), then gate the optimistic-admission contract with
# cmd/benchgate -contention:
#   - cold mix (epoch-neutral rejects, ~zero conflicts): speculation at
#     gos=8 must out-run gos=1 by a machine-adaptive factor derived from
#     the GOMAXPROCS suffix in the benchmark names;
#   - hot mix (every install moves the epoch, ~100% conflicts): the
#     adaptive conflict gate must hold speculation within a few percent of
#     fully serialized throughput.
# Both gates skip with a note on single-proc machines, where submitters
# cannot overlap and the contract's premise (real parallelism) is absent.
# Run locally via `make bench-contention`; CI runs this same script.
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_contention.json}
BENCHTIME=${BENCHTIME:-2000x}

# Redirect instead of tee so a benchmark failure fails the script.
$GO test . -run '^$' -bench '^BenchmarkSubmitContention$' \
	-benchmem -benchtime "$BENCHTIME" -json > "$OUT"
$GO run ./cmd/benchgate -contention -in "$OUT"
