#!/bin/sh
# Index-scaling benchmark gate: run the BenchmarkSubmit/nodes=<n> and
# BenchmarkSubmitFastReject/nodes=<n> sweeps as a test2json stream
# (BENCH_index.json, uploaded by CI next to BENCH_wire.json), then gate
# the nodes=10000 vs nodes=100 ns/op growth with cmd/benchgate. The gate
# is a ratio, not an absolute time, so it holds on any machine: a
# per-submit cost linear in the fleet grows ~100x across the sweep, the
# indexed hot path stays flat up to a log factor.
# Run locally via `make bench-index`; CI runs this same script.
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_index.json}
BENCHTIME=${BENCHTIME:-300ms}
MAX_RATIO=${MAX_RATIO:-15}

# Redirect instead of tee so a benchmark failure fails the script.
$GO test ./internal/rt -run '^$' -bench '^BenchmarkSubmit(FastReject)?$' \
	-benchmem -benchtime "$BENCHTIME" -json > "$OUT"
$GO run ./cmd/benchgate -in "$OUT" -max-ratio "$MAX_RATIO"
