#!/bin/sh
# Wire smoke test: boot dlserve, push a closed-loop dlload burst through
# it, SIGTERM the server, and assert that
#   - dlload saw zero hard 5xx and p99 under the bound (dlload exits 1 otherwise),
#   - every busy rejection carried a Retry-After hint,
#   - the drain lost no committed task (accepts == commits, empty queue),
#   - the /metrics counters agree with themselves: a live scrape shows
#     submits == accepts + rejects, and the post-drain exposition shows
#     accepts == commits with zero dropped events.
# A second churn stage then reruns the server under open-loop traffic
# while dlload fails one node mid-run and restores it, asserting that
#   - every churn op was accepted by the admin API,
#   - no committed plan missed its deadline (LateCommits == 0),
#   - post-drain, accepts == commits + displacements in the exposition
#     and the pool identity accepts == commits + displaced - readmitted
#     holds in the final stats snapshot.
# Run locally via `make wire-smoke`; CI runs this same script.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8080}
N=${N:-50000}
WORKERS=${WORKERS:-64}
MAX_P99_MS=${MAX_P99_MS:-2000}
OUT=${OUT:-BENCH_wire.json}

tmp=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

$GO build -o "$tmp/dlserve" ./cmd/dlserve
$GO build -o "$tmp/dlload" ./cmd/dlload

"$tmp/dlserve" -addr "$ADDR" -n 8 -shards 4 -placement spillover -max-queue 64 \
	-scale 100000 -quiet -log-format json -final-stats "$tmp/final_stats.json" \
	-final-metrics "$tmp/final_metrics.prom" &
server_pid=$!

# Wait for the server to come up.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -le 50 ] || { echo "wire-smoke: dlserve never became healthy" >&2; exit 1; }
	sleep 0.2
done

"$tmp/dlload" -url "http://$ADDR" -mode closed -workers "$WORKERS" -n "$N" \
	-sigma 200 -deadline 20000 -sigma-spread 2 \
	-max-p99 "$MAX_P99_MS" -fail-on-5xx -require-retry-after -out "$OUT"

# Live scrape while the server is still up: every submission must have
# been decided, so the counters already balance.
curl -sf "http://$ADDR/metrics" > "$tmp/metrics_live.prom"

# msum FAMILY FILE sums every series of one counter family (all label
# combinations), printing an integer.
msum() {
	awk -v m="$1" 'substr($1, 1, length(m)) == m &&
		(length($1) == length(m) || substr($1, length(m) + 1, 1) == "{") { s += $2 }
		END { printf "%.0f\n", s }' "$2"
}

m_submits=$(msum rtdls_submits_total "$tmp/metrics_live.prom")
m_accepts=$(msum rtdls_accepts_total "$tmp/metrics_live.prom")
m_rejects=$(msum rtdls_rejects_total "$tmp/metrics_live.prom")
echo "wire-smoke: /metrics submits=$m_submits accepts=$m_accepts rejects=$m_rejects"
[ "$m_submits" -gt 0 ] || { echo "wire-smoke: /metrics shows no submissions" >&2; exit 1; }
[ "$m_submits" -eq $((m_accepts + m_rejects)) ] || {
	echo "wire-smoke: /metrics invariant broken: submits != accepts + rejects" >&2
	exit 1
}

# Graceful drain: SIGTERM, wait for exit, then check the final snapshot.
kill -TERM "$server_pid"
wait "$server_pid"

field() { sed -n "s/^ *\"$1\": \([0-9-]*\),*$/\1/p" "$tmp/final_stats.json" | head -1; }
accepts=$(field Accepts)
commits=$(field Commits)
queue=$(field QueueLen)
fivexx=$(field http_5xx)

echo "wire-smoke: accepts=$accepts commits=$commits queue=$queue http_5xx=$fivexx"
[ -n "$accepts" ] && [ -n "$commits" ] || { echo "wire-smoke: missing final stats" >&2; exit 1; }
[ "$accepts" -eq "$commits" ] || { echo "wire-smoke: drain lost committed tasks" >&2; exit 1; }
[ "$queue" -eq 0 ] || { echo "wire-smoke: queue not empty after drain" >&2; exit 1; }
[ "$fivexx" -eq 0 ] || { echo "wire-smoke: server counted hard 5xx responses" >&2; exit 1; }

# The post-drain exposition must agree: every accept was committed by the
# drain, and the event bus dropped nothing (no SSE subscribers ran).
[ -s "$tmp/final_metrics.prom" ] || { echo "wire-smoke: missing final metrics" >&2; exit 1; }
f_accepts=$(msum rtdls_accepts_total "$tmp/final_metrics.prom")
f_commits=$(msum rtdls_commits_total "$tmp/final_metrics.prom")
f_dropped=$(msum rtdls_events_dropped_total "$tmp/final_metrics.prom")
echo "wire-smoke: final metrics accepts=$f_accepts commits=$f_commits events_dropped=$f_dropped"
[ "$f_accepts" -eq "$f_commits" ] || { echo "wire-smoke: final metrics accepts != commits" >&2; exit 1; }
[ "$f_dropped" -eq 0 ] || { echo "wire-smoke: event bus dropped events" >&2; exit 1; }

# ---- churn stage -----------------------------------------------------
# Rerun the server and drive open-loop traffic while dlload fails node 3
# mid-run through the admin API and restores it two seconds later.
CHURN_RATE=${CHURN_RATE:-3000}
CHURN_N=${CHURN_N:-15000}

"$tmp/dlserve" -addr "$ADDR" -n 8 -shards 4 -placement spillover -max-queue 64 \
	-scale 100000 -quiet -log-format json -final-stats "$tmp/churn_stats.json" \
	-final-metrics "$tmp/churn_metrics.prom" &
server_pid=$!
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -le 50 ] || { echo "wire-smoke: churn-stage dlserve never became healthy" >&2; exit 1; }
	sleep 0.2
done

"$tmp/dlload" -url "http://$ADDR" -mode open -rate "$CHURN_RATE" -n "$CHURN_N" \
	-sigma 200 -deadline 20000 -sigma-spread 2 \
	-churn "t=1s fail n3; t=3s restore n3" -fail-on-churn-errors \
	-fail-on-5xx -out "$tmp/BENCH_churn.json"

kill -TERM "$server_pid"
wait "$server_pid"

cfield() { sed -n "s/^ *\"$1\": \([0-9-]*\),*$/\1/p" "$tmp/churn_stats.json" | head -1; }
c_accepts=$(cfield Accepts)
c_commits=$(cfield Commits)
c_displaced=$(cfield Displaced)
c_readmitted=$(cfield Readmitted)
c_late=$(cfield LateCommits)
c_queue=$(cfield QueueLen)
echo "wire-smoke: churn accepts=$c_accepts commits=$c_commits displaced=$c_displaced readmitted=$c_readmitted late_commits=$c_late"
[ -n "$c_accepts" ] && [ -n "$c_late" ] || { echo "wire-smoke: missing churn final stats" >&2; exit 1; }
[ "$c_late" -eq 0 ] || { echo "wire-smoke: $c_late committed plans missed their deadline under churn" >&2; exit 1; }
[ "$c_queue" -eq 0 ] || { echo "wire-smoke: queue not empty after churn drain" >&2; exit 1; }
[ "$c_accepts" -eq $((c_commits + c_displaced - c_readmitted)) ] || {
	echo "wire-smoke: churn identity broken: accepts != commits + displaced - readmitted" >&2
	exit 1
}

g_accepts=$(msum rtdls_accepts_total "$tmp/churn_metrics.prom")
g_commits=$(msum rtdls_commits_total "$tmp/churn_metrics.prom")
g_displacements=$(msum rtdls_displacements_total "$tmp/churn_metrics.prom")
echo "wire-smoke: churn metrics accepts=$g_accepts commits=$g_commits displacements=$g_displacements"
[ "$g_accepts" -eq $((g_commits + g_displacements)) ] || {
	echo "wire-smoke: churn metrics invariant broken: accepts != commits + displacements" >&2
	exit 1
}
echo "wire-smoke: OK"
