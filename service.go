package rtdls

import (
	"context"
	"fmt"

	"rtdls/internal/cluster"
	"rtdls/internal/driver"
	"rtdls/internal/fleet"
	"rtdls/internal/metrics"
	"rtdls/internal/pool"
	"rtdls/internal/rt"
	"rtdls/internal/service"
)

// Clock supplies a Service's notion of "now" in simulation time units; the
// same admission engine runs under the discrete-event simulator, under
// wall-clock time or under test control. Implementations must be safe for
// concurrent use.
type Clock = service.Clock

// ManualClock is an explicitly advanced, monotone Clock for tests and for
// callers that drive time themselves.
type ManualClock = service.ManualClock

// WallClock maps real time onto simulation time units — what a deployed
// admission-control service runs under.
type WallClock = service.WallClock

// NewManualClock returns a manual clock set to t.
func NewManualClock(t float64) *ManualClock { return service.NewManualClock(t) }

// NewWallClock returns a wall clock starting at 0 that advances scale
// simulation time units per real second (scale <= 0 defaults to 1).
func NewWallClock(scale float64) *WallClock { return service.NewWallClock(scale) }

// Decision is the outcome of one Submit: an admission carrying the plan's
// resource assignment, or a typed rejection. Reason is the wire-stable
// enum (ReasonInfeasible, ReasonDeadlinePast, ReasonBusy; ReasonNone when
// accepted) and remains errors.Is-matchable against ErrInfeasible,
// ErrDeadlinePast, ErrClusterBusy.
type Decision = service.Decision

// Event is one entry of the service's decision/lifecycle stream.
type Event = service.Event

// EventKind labels a lifecycle event: EventAccept, EventReject or
// EventCommit.
type EventKind = service.EventKind

// Lifecycle event kinds.
const (
	EventAccept = service.EventAccept
	EventReject = service.EventReject
	EventCommit = service.EventCommit
	// EventDisplace: an admitted-but-uncommitted task lost its seat to a
	// node drain/fail; Reason is ReasonNodeUnavailable. On a pool the task
	// may be re-admitted on another shard (a fresh EventAccept there).
	EventDisplace = service.EventDisplace
)

// NodeState is a node's lifecycle state in the fleet subsystem: NodeUp
// (placeable), NodeDraining (no new placements, committed work finishes)
// or NodeDown (capacity gone now).
type NodeState = service.NodeState

// Node lifecycle states.
const (
	NodeUp       = service.NodeUp
	NodeDraining = service.NodeDraining
	NodeDown     = service.NodeDown
)

// FleetResult reports the outcome of one fleet operation: the node, its
// new state, and how many waiting tasks were displaced and (pool only)
// re-admitted elsewhere.
type FleetResult = service.FleetResult

// ChurnSchedule is a declarative script of node drain/fail/restore
// operations — the reproducible chaos input of WithChurn and of the
// -churn flag of dlsim, dlserve and dlload. Parse one with
// ParseChurnSchedule; see that function for the grammar.
type ChurnSchedule = fleet.Schedule

// ChurnOp is one scheduled churn operation.
type ChurnOp = fleet.Op

// ParseChurnSchedule parses a churn schedule: ";"-separated entries of the
// form "t=<offset> <drain|fail|restore> n<id>", e.g.
// "t=5s fail n3; t=12s restore n3". A bare-number offset is in the
// runner's native time base (simulation units for Simulate, wall seconds
// for dlserve/dlload); a Go duration suffix ("5s", "250ms") converts to
// seconds. Node ids are engine-wide (shard-major on a pool).
func ParseChurnSchedule(s string) (ChurnSchedule, error) { return fleet.ParseSchedule(s) }

// ServiceStats is an atomic snapshot of a Service's admission counters and
// cluster accounting.
type ServiceStats = service.Stats

// Observer receives the legacy per-task lifecycle callbacks
// (accept/reject/commit); TraceRing, GanttCollector and Verifier implement
// it. New code should prefer Service.Subscribe.
type Observer = rt.Observer

// CombineObservers fans lifecycle callbacks out to several observers (nil
// entries are skipped).
func CombineObservers(obs ...Observer) Observer { return service.CombineObservers(obs...) }

// Placement is the pool's pluggable routing layer: it decides which
// shard(s) a submission is offered. Implementations must be safe for
// concurrent use; see RoundRobin, LeastLoaded, PowerOfTwoChoices and
// Spillover for the built-ins.
type Placement = pool.Placement

// ShardLoad is the per-shard load signal placements receive.
type ShardLoad = pool.ShardLoad

// RoundRobin cycles submissions across shards by sequence number.
type RoundRobin = pool.RoundRobin

// LeastLoaded routes each task to the shard with the shortest waiting
// queue (ties prefer the larger, then the lower-indexed shard).
type LeastLoaded = pool.LeastLoaded

// PowerOfTwoChoices samples two shards deterministically from its seed
// and picks the less loaded one.
type PowerOfTwoChoices = pool.PowerOfTwoChoices

// Spillover wraps another placement and retries rejected tasks on the
// remaining shards, least loaded first, before giving a final reject.
type Spillover = pool.Spillover

// ParsePlacement resolves a placement by name ("round-robin", "rr",
// "least-loaded", "ll", "power-of-two", "p2c", "spillover",
// "spillover-rr", "spillover-p2c"); seed feeds the power-of-two variants.
func ParsePlacement(name string, seed uint64) (Placement, error) {
	return pool.ParsePlacement(name, seed)
}

// Placements lists every placement name ParsePlacement accepts.
func Placements() []string { return pool.Placements() }

// serviceOptions collects the functional options of New, Simulate and
// CostModelFor.
type serviceOptions struct {
	n          int
	params     Params
	nodeCosts  []NodeCost
	cmsSpread  float64
	cpsSpread  float64
	heteroSeed uint64
	policy     Policy
	algorithm  string
	rounds     int
	clock      Clock
	observer   Observer
	maxQueue   int
	shards     int
	placement  Placement
	shardNodes []int
	shardCosts [][]NodeCost
	metrics    *MetricsRegistry
	churn      ChurnSchedule
}

func defaultOptions() serviceOptions {
	return serviceOptions{
		n:         16,
		params:    Params{Cms: 1, Cps: 100},
		policy:    EDF,
		algorithm: AlgDLTIIT,
	}
}

// Option configures New, Simulate or CostModelFor. Options are applied in
// order; later options override earlier ones.
type Option func(*serviceOptions) error

// WithNodes sets the cluster size (default 16, the paper's baseline).
func WithNodes(n int) Option {
	return func(o *serviceOptions) error {
		if n < 1 {
			return fmt.Errorf("rtdls: WithNodes(%d): need at least one node: %w", n, ErrBadConfig)
		}
		o.n = n
		return nil
	}
}

// WithParams sets the scalar cost coefficients shared by every node
// (default Cms=1, Cps=100, the paper's baseline).
func WithParams(p Params) Option {
	return func(o *serviceOptions) error {
		o.params = p
		return nil
	}
}

// WithCosts gives every node its own cost coefficients from an existing
// cost model; it overrides WithNodes and WithNodeCosts.
func WithCosts(cm *CostModel) Option {
	return func(o *serviceOptions) error {
		if cm == nil {
			return fmt.Errorf("rtdls: WithCosts(nil): %w", ErrBadConfig)
		}
		o.nodeCosts = cm.Costs()
		o.n = cm.N()
		return nil
	}
}

// WithNodeCosts gives every node its own cost coefficients (the node count
// follows the slice); it overrides WithNodes.
func WithNodeCosts(costs []NodeCost) Option {
	return func(o *serviceOptions) error {
		if len(costs) == 0 {
			return fmt.Errorf("rtdls: WithNodeCosts: empty table: %w", ErrBadConfig)
		}
		o.nodeCosts = append([]NodeCost(nil), costs...)
		o.n = len(costs)
		return nil
	}
}

// WithCostSpread draws a deterministic heterogeneous cost table around the
// scalar reference: per-node coefficients log-uniform within the given
// spread factors (a factor <= 1 keeps that coefficient homogeneous),
// seeded independently of any workload seed. Ignored when an explicit cost
// table is also given.
func WithCostSpread(cmsSpread, cpsSpread float64, seed uint64) Option {
	return func(o *serviceOptions) error {
		o.cmsSpread = cmsSpread
		o.cpsSpread = cpsSpread
		o.heteroSeed = seed
		return nil
	}
}

// WithPolicy selects the execution-order policy (default EDF).
func WithPolicy(pol Policy) Option {
	return func(o *serviceOptions) error {
		o.policy = pol
		return nil
	}
}

// WithAlgorithm selects the partitioning algorithm (default AlgDLTIIT; see
// Algorithms for the inventory).
func WithAlgorithm(alg string) Option {
	return func(o *serviceOptions) error {
		o.algorithm = alg
		return nil
	}
}

// WithRounds sets the installments per node for AlgDLTMR (default 2).
func WithRounds(r int) Option {
	return func(o *serviceOptions) error {
		if r < 1 {
			return fmt.Errorf("rtdls: WithRounds(%d): need at least one round: %w", r, ErrBadConfig)
		}
		o.rounds = r
		return nil
	}
}

// WithClock installs the service's clock (default: a ManualClock at 0, so
// time is driven by task arrival stamps). Simulate ignores it — the
// simulation binds its own discrete-event clock.
func WithClock(c Clock) Option {
	return func(o *serviceOptions) error {
		if c == nil {
			return fmt.Errorf("rtdls: WithClock(nil): %w", ErrBadConfig)
		}
		o.clock = c
		return nil
	}
}

// WithObserver installs legacy lifecycle callbacks alongside the event
// stream (combine several with CombineObservers).
func WithObserver(obs Observer) Option {
	return func(o *serviceOptions) error {
		o.observer = obs
		return nil
	}
}

// WithMaxQueue bounds the waiting queue: submissions arriving while the
// queue is full are rejected with ErrClusterBusy before the
// schedulability test runs. 0 (the default) means unbounded. Simulate
// ignores it.
func WithMaxQueue(n int) Option {
	return func(o *serviceOptions) error {
		if n < 0 {
			return fmt.Errorf("rtdls: WithMaxQueue(%d): %w", n, ErrBadConfig)
		}
		o.maxQueue = n
		return nil
	}
}

// MetricsRegistry holds the service's instruments — atomic counters,
// gauges and log-bucketed latency histograms — and renders them in the
// Prometheus text exposition format (mount it as GET /metrics; it
// implements http.Handler). Instrument updates and scrape reads are all
// atomic operations: observing the service never takes its admission lock.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithMetrics instruments the service on the given registry: per-stage
// admission latency histograms (rtdls_admission_stage_seconds), per-shard
// outcome counters (rtdls_submits_total, rtdls_accepts_total,
// rtdls_rejects_total, rtdls_commits_total), load gauges
// (rtdls_queue_depth, rtdls_utilization, ...) and the event-stream drop
// counter (rtdls_events_dropped_total). One registry may be shared by
// several services; metric registration is idempotent. Simulate ignores it.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(o *serviceOptions) error {
		if reg == nil {
			return fmt.Errorf("rtdls: WithMetrics(nil): %w", ErrBadConfig)
		}
		o.metrics = reg
		return nil
	}
}

// WithChurn scripts node drain/fail/restore operations into a Simulate
// run: each op fires as a discrete event at its simulation-time offset,
// so a churn run replays bit for bit. Displaced tasks relax the result
// identity to Committed + Displaced - Readmitted == Accepted. New ignores
// it — drive a live service with DrainNode/FailNode/RestoreNode (or the
// dlserve/dlload -churn flags) instead.
func WithChurn(sch ChurnSchedule) Option {
	return func(o *serviceOptions) error {
		o.churn = append(ChurnSchedule(nil), sch...)
		return nil
	}
}

// WithShards splits the service into k independent cluster shards fronted
// by a placement layer (default RoundRobin; see WithPlacement): each shard
// gets its own scheduler and lock, so submissions contend only per shard
// and Submit throughput scales with k on multi-core hardware. Every shard
// copies the single-cluster configuration (node count, costs, policy,
// algorithm, queue bound) unless WithShardNodes or WithShardNodeCosts
// sizes them individually. WithShards(1) routes through the same pool
// engine and is property-tested to behave identically to the default
// single-cluster service.
func WithShards(k int) Option {
	return func(o *serviceOptions) error {
		if k < 1 {
			return fmt.Errorf("rtdls: WithShards(%d): need at least one shard: %w", k, ErrBadConfig)
		}
		o.shards = k
		return nil
	}
}

// WithPlacement selects the pool's routing layer (default RoundRobin).
// Implies a pool even without WithShards (then K=1).
func WithPlacement(p Placement) Option {
	return func(o *serviceOptions) error {
		if p == nil {
			return fmt.Errorf("rtdls: WithPlacement(nil): %w", ErrBadConfig)
		}
		o.placement = p
		return nil
	}
}

// WithShardNodes sizes each shard individually (the shard count follows
// the argument count) — a fleet of differently sized clusters behind one
// admission surface. Overrides WithNodes per shard; combine with
// WithShards only if the counts agree. Combining it with an explicit
// single-cluster table (WithCosts/WithNodeCosts) is rejected — one table
// cannot size individually-shaped shards; use WithShardNodeCosts.
func WithShardNodes(ns ...int) Option {
	return func(o *serviceOptions) error {
		if len(ns) == 0 {
			return fmt.Errorf("rtdls: WithShardNodes: no shard sizes: %w", ErrBadConfig)
		}
		for i, n := range ns {
			if n < 1 {
				return fmt.Errorf("rtdls: WithShardNodes: shard %d needs at least one node, got %d: %w", i, n, ErrBadConfig)
			}
		}
		o.shardNodes = append([]int(nil), ns...)
		return nil
	}
}

// WithShardNodeCosts gives every shard its own explicit per-node cost
// table (the shard count follows the argument count) — a fully
// heterogeneous fleet: shards of different sizes and node speeds. It
// overrides WithShardNodes and the spread draw; combining it with a
// single-cluster table (WithCosts/WithNodeCosts) is rejected.
func WithShardNodeCosts(tables ...[]NodeCost) Option {
	return func(o *serviceOptions) error {
		if len(tables) == 0 {
			return fmt.Errorf("rtdls: WithShardNodeCosts: no shard tables: %w", ErrBadConfig)
		}
		o.shardCosts = make([][]NodeCost, len(tables))
		for i, tbl := range tables {
			if len(tbl) == 0 {
				return fmt.Errorf("rtdls: WithShardNodeCosts: shard %d table empty: %w", i, ErrBadConfig)
			}
			o.shardCosts[i] = append([]NodeCost(nil), tbl...)
		}
		return nil
	}
}

// apply folds the options over the defaults.
func applyOptions(opts []Option) (serviceOptions, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// config assembles the driver configuration the options describe, using
// the canonical lowercase policy names so a Config echoed through Result
// matches the 1.x convention.
func (o serviceOptions) config() driver.Config {
	pol := "edf"
	if o.policy == FIFO {
		pol = "fifo"
	}
	return driver.Config{
		N:              o.n,
		Cms:            o.params.Cms,
		Cps:            o.params.Cps,
		Policy:         pol,
		Algorithm:      o.algorithm,
		Rounds:         o.rounds,
		NodeCosts:      o.nodeCosts,
		CmsSpread:      o.cmsSpread,
		CpsSpread:      o.cpsSpread,
		HeteroSeed:     o.heteroSeed,
		Observer:       o.observer,
		Shards:         o.shards,
		Placement:      o.placement,
		ShardNodes:     o.shardNodes,
		ShardNodeCosts: o.shardCosts,
		Churn:          o.churn,
	}
}

// pooled reports whether the options describe a sharded pool.
func (o serviceOptions) pooled() bool {
	return o.shards != 0 || o.placement != nil || len(o.shardNodes) > 0 || len(o.shardCosts) > 0
}

// CostModelFor resolves the per-node cost table the given options describe
// — explicit node costs verbatim, a spread-generated table, or the uniform
// scalar model — exactly as New and Simulate resolve it. Useful to build a
// matching Verifier (NewVerifierCosts) or to inspect the drawn table.
func CostModelFor(opts ...Option) (*CostModel, error) {
	o, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	_, cms, err := o.config().ShardPlan()
	if err != nil {
		return nil, err
	}
	return cms[0], nil
}

// Service is the long-lived, goroutine-safe admission-control service: the
// paper's schedulability test exposed as a continuously available surface.
// Construct with New; submit tasks from any number of goroutines with
// Submit/SubmitBatch; observe decisions via the Subscribe event stream or
// the Stats snapshot. See examples/quickstart and examples/admission.
//
// With WithShards the same surface fronts a pool of K independent cluster
// shards behind a placement layer (see examples/pool): decisions and
// events carry the placing shard, Stats aggregates the fleet, and
// ShardStats/Clusters expose the per-shard views. The default
// single-cluster service is exactly the K=1 special case.
type Service struct {
	engine service.Engine
	single *service.Service // non-nil for the classic single-cluster engine
	pool   *pool.Pool       // non-nil for the sharded engine
	cms    []*CostModel     // per-shard cost models (len 1 when single)
}

// New builds a service from functional options:
//
//	svc, err := rtdls.New(
//		rtdls.WithNodes(16),
//		rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 100}),
//		rtdls.WithPolicy(rtdls.EDF),
//		rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
//	)
//
// The zero-option call reproduces the paper's baseline cluster (16 nodes,
// Cms=1, Cps=100, EDF, DLT-IIT) under a manual clock. Any shard option
// (WithShards, WithPlacement, WithShardNodes, WithShardNodeCosts) fronts
// K shards with a placement layer instead; with several shards the
// observer installed by WithObserver is invoked concurrently from every
// shard and must be safe for concurrent use.
func New(opts ...Option) (*Service, error) {
	o, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	cfg := o.config()
	k, cms, err := cfg.ShardPlan()
	if err != nil {
		return nil, err
	}
	met := service.NewMetrics(o.metrics) // nil registry → nil Metrics
	if !o.pooled() {
		part, err := driver.PartitionerFor(o.algorithm, o.rounds, cms[0])
		if err != nil {
			return nil, err
		}
		cl, err := cluster.NewHetero(cms[0].Costs())
		if err != nil {
			return nil, err
		}
		inner, err := service.New(service.Config{
			Cluster:     cl,
			Policy:      o.policy,
			Partitioner: part,
			Clock:       o.clock,
			Observer:    o.observer,
			MaxQueue:    o.maxQueue,
			Metrics:     met,
		})
		if err != nil {
			return nil, err
		}
		return &Service{engine: inner, single: inner, cms: cms}, nil
	}
	shards := make([]pool.ShardConfig, k)
	for j := range shards {
		part, err := driver.PartitionerFor(o.algorithm, o.rounds, cms[j])
		if err != nil {
			return nil, err
		}
		cl, err := cluster.NewHetero(cms[j].Costs())
		if err != nil {
			return nil, err
		}
		shards[j] = pool.ShardConfig{
			Cluster:     cl,
			Policy:      o.policy,
			Partitioner: part,
			MaxQueue:    o.maxQueue,
			Observer:    o.observer,
		}
	}
	pl, err := pool.New(pool.Config{Shards: shards, Placement: o.placement, Clock: o.clock, Metrics: met})
	if err != nil {
		return nil, err
	}
	return &Service{engine: pl, pool: pl, cms: cms}, nil
}

// Submit runs the admission test for one task and returns the decision.
// Safe to call from any goroutine. A zero Arrival means "arrives now"; a
// future Arrival advances the effective submission instant. The error
// return reports malformed input or a closed service — never
// infeasibility, which is a clean decision with Reason ErrInfeasible.
func (s *Service) Submit(ctx context.Context, t Task) (Decision, error) {
	return s.engine.Submit(ctx, t)
}

// SubmitBatch submits several tasks atomically (one lock acquisition), in
// order, returning one decision per considered task.
func (s *Service) SubmitBatch(ctx context.Context, tasks []Task) ([]Decision, error) {
	return s.engine.SubmitBatch(ctx, tasks)
}

// Subscribe attaches a consumer to the decision/lifecycle event stream.
// The returned cancel function detaches it and closes the channel. A slow
// consumer loses events (counted in Stats().EventsDropped) rather than
// blocking admission control.
func (s *Service) Subscribe(buffer int) (<-chan Event, func()) {
	return s.engine.Subscribe(buffer)
}

// Subscription is one consumer's handle on the event stream: its channel
// plus the subscriber's own dropped-event counter, so a lossy consumer can
// detect exactly how many events it missed (Stats().EventsDropped only
// reports the bus-wide total).
type Subscription = service.Subscription

// SubscribeStream attaches a consumer and returns its Subscription handle.
// The dlserve event streamer uses it to emit explicit gap notices to its
// clients instead of silently skipping decisions.
func (s *Service) SubscribeStream(buffer int) *Subscription {
	return s.engine.SubscribeStream(buffer)
}

// SetAccepting flips the admission gate: while false, every submission
// fails fast with ErrClusterBusy (a hard error, not a decision) while
// commits and the event stream keep operating. It is the first step of a
// graceful drain — SetAccepting(false), Drain, Close — and is reversible
// until Close.
func (s *Service) SetAccepting(accepting bool) { s.engine.SetAccepting(accepting) }

// / Accepting reports whether the admission gate is open: true until
// SetAccepting(false) or Close. Lock-free — health checks poll it without
// contending with submissions.
func (s *Service) Accepting() bool { return s.engine.Accepting() }

// SetSpeculation toggles optimistic two-phase admission (on by default):
// when on, the schedulability test plans off-lock against an epoch-stamped
// snapshot and the shard lock is held only for an epoch check plus the
// install, so concurrent submitters plan in parallel; a conflicting epoch
// falls back to the serialized path, keeping the decision stream bit-for-bit
// identical to a serialized execution. Turning it off forces every
// submission through the serialized path — an operational escape hatch and
// the baseline for the equivalence tests.
func (s *Service) SetSpeculation(on bool) { s.engine.SetSpeculation(on) }

// Stats returns a consistent snapshot of the admission counters, queue
// depth and cluster utilization — aggregated over every shard for a
// pooled service (see ServiceStats for the aggregation rules).
func (s *Service) Stats() ServiceStats { return s.engine.Stats() }

// NextCommit returns the earliest pending first-transmission time over
// all shards, or ok=false when no task is waiting.
func (s *Service) NextCommit() (at float64, ok bool) { return s.engine.NextCommit() }

// Pump commits every waiting plan whose first transmission is due at the
// current clock reading. Submissions do this implicitly; Pump exists for
// idle periods.
func (s *Service) Pump() error { return s.engine.Pump() }

// Drain commits every remaining waiting plan regardless of the clock —
// the flush/shutdown path.
func (s *Service) Drain() error { return s.engine.Drain() }

// Clock returns the service's clock (shared by every shard).
func (s *Service) Clock() Clock { return s.engine.Clock() }

// DrainNode stops placing new work on the node; committed work runs to
// completion. Waiting plans are re-validated against the remaining live
// capacity: tasks that no longer pass the schedulability test are
// displaced (EventDisplace with ReasonNodeUnavailable on the stream) and,
// on a pooled service, offered to the other shards through the normal
// admission test. The node id is engine-wide (shard-major on a pool).
func (s *Service) DrainNode(node int) (FleetResult, error) { return s.engine.DrainNode(node) }

// FailNode removes the node's capacity immediately; waiting plans are
// re-validated exactly as for DrainNode.
func (s *Service) FailNode(node int) (FleetResult, error) { return s.engine.FailNode(node) }

// RestoreNode returns a drained or failed node to service. Nothing is
// displaced — capacity only grows — and a fail-then-restore cycle with no
// interim admissions leaves the scheduler bit-identical to one that never
// failed.
func (s *Service) RestoreNode(node int) (FleetResult, error) { return s.engine.RestoreNode(node) }

// AddNode grows the fleet by one node with the given cost coefficients
// and returns its engine-wide id. On a pooled service the node joins the
// shard with the fewest live nodes.
func (s *Service) AddNode(nc NodeCost) (int, error) { return s.engine.AddNode(nc) }

// NodeStates returns every node's lifecycle state, indexed by the
// engine-wide node id (shard-major on a pool).
func (s *Service) NodeStates() []NodeState { return s.engine.NodeStates() }

// Costs returns the per-node cost model the service schedules against —
// shard 0's for a pooled service (see ShardCosts for the fleet).
func (s *Service) Costs() *CostModel { return s.cms[0] }

// ShardCosts returns every shard's cost model, indexed by shard (length
// 1 for the single-cluster service).
func (s *Service) ShardCosts() []*CostModel { return append([]*CostModel(nil), s.cms...) }

// Cluster returns the live cluster substrate (release times, accounting)
// — shard 0's for a pooled service (see Clusters for the fleet).
func (s *Service) Cluster() *Cluster {
	if s.single != nil {
		return s.single.Cluster()
	}
	return s.pool.Shard(0).Cluster()
}

// Clusters returns every shard's cluster substrate, indexed by shard
// (length 1 for the single-cluster service).
func (s *Service) Clusters() []*Cluster {
	if s.single != nil {
		return []*Cluster{s.single.Cluster()}
	}
	return s.pool.Clusters()
}

// Shards returns the number of cluster shards behind the service (1 for
// the default single-cluster service).
func (s *Service) Shards() int {
	if s.pool != nil {
		return s.pool.Shards()
	}
	return 1
}

// ShardStats returns every shard's own snapshot, indexed by shard. Under
// a spillover placement a retried task counts at every shard that saw it;
// the pool-level Stats counts it once.
func (s *Service) ShardStats() []ServiceStats {
	if s.pool != nil {
		return s.pool.ShardStats()
	}
	return []ServiceStats{s.single.Stats()}
}

// Spillovers returns how many accepted tasks needed at least one
// spillover retry (always 0 without a Spillover placement).
func (s *Service) Spillovers() int {
	if s.pool != nil {
		return s.pool.Spillovers()
	}
	return 0
}

// Close marks the service closed — subsequent submissions fail with
// ErrClusterBusy — and closes every subscriber channel. Call Drain first
// to flush waiting plans. Close is idempotent.
func (s *Service) Close() error { return s.engine.Close() }

// Workload parameterises one synthetic evaluation run for Simulate:
// Poisson arrivals at the given SystemLoad, σ ~ N(AvgSigma, AvgSigma)
// truncated positive, deadlines via DCRatio, over the Horizon.
type Workload struct {
	SystemLoad float64
	AvgSigma   float64
	DCRatio    float64
	Horizon    float64
	Seed       uint64
}

// BaselineWorkload returns the paper's baseline workload (Sec. 5.1):
// load 0.5, Avgσ=200, DCRatio=2, horizon 10⁷, seed 1.
func BaselineWorkload() Workload {
	return Workload{SystemLoad: 0.5, AvgSigma: 200, DCRatio: 2, Horizon: 1e7, Seed: 1}
}

// Simulate replays the synthetic workload through an admission service
// bound to the discrete-event engine and returns the run's metrics. It is
// the options-based successor of Run:
//
//	res, err := rtdls.Simulate(rtdls.Workload{SystemLoad: 0.7, AvgSigma: 200, DCRatio: 2, Horizon: 1e6, Seed: 1},
//		rtdls.WithAlgorithm(rtdls.AlgDLTIIT))
//
// WithClock and WithMaxQueue are ignored: the simulation binds its own
// clock and models an unbounded queue, matching the paper's evaluation.
func Simulate(w Workload, opts ...Option) (*Result, error) {
	o, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	cfg := o.config()
	cfg.SystemLoad = w.SystemLoad
	cfg.AvgSigma = w.AvgSigma
	cfg.DCRatio = w.DCRatio
	cfg.Horizon = w.Horizon
	cfg.Seed = w.Seed
	return driver.Run(cfg)
}

// SimulateSeries runs the workload across several SystemLoad values,
// returning one Result per load — the options-based successor of
// RunSeries.
func SimulateSeries(w Workload, loads []float64, opts ...Option) ([]*Result, error) {
	out := make([]*Result, 0, len(loads))
	for _, l := range loads {
		wl := w
		wl.SystemLoad = l
		r, err := Simulate(wl, opts...)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
