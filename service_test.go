package rtdls_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"rtdls"
)

func TestServiceBaselineDefaults(t *testing.T) {
	svc, err := rtdls.New()
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if n := svc.Cluster().N(); n != 16 {
		t.Fatalf("default cluster size = %d, want 16", n)
	}
	if !svc.Costs().Uniform() {
		t.Fatalf("default cost model should be uniform")
	}
	dec, err := svc.Submit(context.Background(), rtdls.Task{ID: 1, Sigma: 200, RelDeadline: 2800})
	if err != nil || !dec.Accepted {
		t.Fatalf("Submit = %+v, %v", dec, err)
	}
}

func TestServiceOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []rtdls.Option
	}{
		{"bad nodes", []rtdls.Option{rtdls.WithNodes(0)}},
		{"bad algorithm", []rtdls.Option{rtdls.WithAlgorithm("bogus")}},
		{"bad rounds", []rtdls.Option{rtdls.WithRounds(0)}},
		{"nil clock", []rtdls.Option{rtdls.WithClock(nil)}},
		{"bad params", []rtdls.Option{rtdls.WithParams(rtdls.Params{Cms: -1, Cps: 100})}},
		{"empty node costs", []rtdls.Option{rtdls.WithNodeCosts(nil)}},
		{"negative max queue", []rtdls.Option{rtdls.WithMaxQueue(-1)}},
	}
	for _, c := range cases {
		if _, err := rtdls.New(c.opts...); !errors.Is(err, rtdls.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", c.name, err)
		}
	}
}

func TestServiceTypedErrors(t *testing.T) {
	svc, err := rtdls.New(rtdls.WithClock(rtdls.NewManualClock(1000)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	dec, err := svc.Submit(ctx, rtdls.Task{ID: 1, Arrival: 10, Sigma: 10, RelDeadline: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dec.Reason, rtdls.ErrDeadlinePast) {
		t.Fatalf("reason = %v, want ErrDeadlinePast", dec.Reason)
	}

	dec, err = svc.Submit(ctx, rtdls.Task{ID: 2, Sigma: 1e9, RelDeadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dec.Reason, rtdls.ErrInfeasible) {
		t.Fatalf("reason = %v, want ErrInfeasible", dec.Reason)
	}

	if _, err := svc.Submit(ctx, rtdls.Task{ID: 3, Sigma: 0, RelDeadline: 1}); !errors.Is(err, rtdls.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}

	svc.Close()
	if _, err := svc.Submit(ctx, rtdls.Task{ID: 4, Sigma: 10, RelDeadline: 1e6}); !errors.Is(err, rtdls.ErrClusterBusy) {
		t.Fatalf("err after close = %v, want ErrClusterBusy", err)
	}
}

// TestServiceConcurrentSubmitRace is the acceptance stress test: ≥ 8
// goroutines submit concurrently under -race, decision totals must equal
// arrivals, and an independent Verifier re-checks every commitment
// (no node overlap, Theorem-4 safety, no deadline misses).
func TestServiceConcurrentSubmitRace(t *testing.T) {
	verifier := rtdls.NewVerifier(rtdls.Params{Cms: 1, Cps: 100}, 16)
	svc, err := rtdls.New(
		rtdls.WithNodes(16),
		rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 100}),
		rtdls.WithPolicy(rtdls.EDF),
		rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
		rtdls.WithObserver(verifier),
	)
	if err != nil {
		t.Fatal(err)
	}

	events, cancelSub := svc.Subscribe(1 << 15)
	streamed := make(chan [3]int, 1)
	go func() {
		var n [3]int
		for ev := range events {
			n[ev.Kind]++
		}
		streamed <- n
	}()

	const (
		workers = 10
		each    = 120
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		rejected int
	)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			la, lr := 0, 0
			for i := 0; i < each; i++ {
				id := int64(w*each + i + 1)
				dec, err := svc.Submit(ctx, rtdls.Task{
					ID:          id,
					Sigma:       20 + float64((id*37)%400),
					RelDeadline: 1500 + float64((id*91)%8000),
				})
				if err != nil {
					t.Errorf("worker %d task %d: %v", w, id, err)
					return
				}
				if dec.Accepted {
					la++
				} else {
					lr++
				}
			}
			mu.Lock()
			accepted += la
			rejected += lr
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	svc.Close()
	cancelSub()
	n := <-streamed

	if st.Arrivals != workers*each {
		t.Fatalf("arrivals = %d, want %d", st.Arrivals, workers*each)
	}
	if accepted+rejected != st.Arrivals || st.Accepts != accepted || st.Rejects != rejected {
		t.Fatalf("decision totals %d+%d disagree with stats %+v", accepted, rejected, st)
	}
	if st.Commits != st.Accepts || st.QueueLen != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
	if st.EventsDropped == 0 {
		total := n[rtdls.EventAccept] + n[rtdls.EventReject] + n[rtdls.EventCommit]
		if want := st.Accepts + st.Rejects + st.Commits; total != want {
			t.Fatalf("stream saw %d events, want %d", total, want)
		}
	}
	if !verifier.OK() {
		t.Fatalf("verifier found violations:\n%s", verifier.Report())
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Fatalf("utilization = %v", st.Utilization)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	// The 1.x Run shim is gone; bit-for-bit equivalence of the service
	// replay against the pre-redesign reference loop lives in
	// internal/driver's equivalence tests. Here we pin the public surface:
	// the same workload and seed reproduce the identical Result.
	w := rtdls.Workload{SystemLoad: 0.7, AvgSigma: 200, DCRatio: 2, Horizon: 1e5, Seed: 1}
	want, err := rtdls.Simulate(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtdls.Simulate(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want.RejectRatio) != math.Float64bits(got.RejectRatio) ||
		want.Arrivals != got.Arrivals ||
		math.Float64bits(want.MeanResponse) != math.Float64bits(got.MeanResponse) ||
		math.Float64bits(want.Utilization) != math.Float64bits(got.Utilization) {
		t.Fatalf("Simulate not deterministic:\n 1st: %+v\n 2nd: %+v", want, got)
	}
	if want.Arrivals == 0 {
		t.Fatalf("workload produced no arrivals: %+v", want)
	}
}

func TestSimulateSeries(t *testing.T) {
	w := rtdls.BaselineWorkload()
	w.Horizon = 5e4
	rs, err := rtdls.SimulateSeries(w, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	if rs[0].Config.SystemLoad != 0.2 || rs[1].Config.SystemLoad != 0.8 {
		t.Fatalf("loads not applied")
	}
}

func TestCostModelFor(t *testing.T) {
	cm, err := rtdls.CostModelFor(rtdls.WithNodes(8), rtdls.WithCostSpread(1, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	if cm.N() != 8 || cm.Uniform() {
		t.Fatalf("cost model = %d nodes, uniform=%v", cm.N(), cm.Uniform())
	}
	// The service built from the same options schedules against the same
	// table, so a verifier constructed from CostModelFor matches it.
	svc, err := rtdls.New(rtdls.WithNodes(8), rtdls.WithCostSpread(1, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < cm.N(); i++ {
		if svc.Costs().At(i) != cm.At(i) {
			t.Fatalf("node %d: service %+v != CostModelFor %+v", i, svc.Costs().At(i), cm.At(i))
		}
	}
}

func TestServiceWallClockSmoke(t *testing.T) {
	// 1e9 units/second: the ~2550-unit task windows of the baseline pass
	// in microseconds, so commits happen naturally during the loop.
	svc, err := rtdls.New(rtdls.WithClock(rtdls.NewWallClock(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	acc := 0
	for i := 0; i < 50; i++ {
		dec, err := svc.Submit(ctx, rtdls.Task{ID: int64(i + 1), Sigma: 100, RelDeadline: 1e7})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Accepted {
			acc++
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Accepts != acc || st.Arrivals != 50 {
		t.Fatalf("stats = %+v, accepted %d", st, acc)
	}
}
