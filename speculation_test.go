package rtdls_test

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"rtdls"
)

// specTask derives a deterministic task from its id, so the concurrent run
// and the serialized replay construct bit-identical inputs.
func specTask(id int64) rtdls.Task {
	return rtdls.Task{
		ID:          id,
		Sigma:       30 + float64((id*37)%350),
		RelDeadline: 500 + float64((id*91)%6000),
	}
}

// TestSpeculativeStressChurn hammers one shard from 16 goroutines — twelve
// submitters alternating Submit and SubmitBatch, four churners failing and
// restoring their own node — with optimistic admission on (the default) and
// an independent Verifier re-checking every commitment. Run under -race
// (CI does), this is the data-race net over the whole two-phase admission
// surface: snapshots, off-lock planning, epoch checks, install paths,
// conflict fallbacks and fleet-triggered re-validation all interleave.
// After a drain the conservation identity must hold exactly:
// accepts == commits + displaced − readmitted.
func TestSpeculativeStressChurn(t *testing.T) {
	verifier := rtdls.NewVerifier(rtdls.Params{Cms: 1, Cps: 100}, 16)
	svc, err := rtdls.New(
		rtdls.WithNodes(16),
		rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 100}),
		rtdls.WithPolicy(rtdls.EDF),
		rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
		rtdls.WithObserver(verifier),
	)
	if err != nil {
		t.Fatal(err)
	}

	const (
		submitters = 12
		churners   = 4
		each       = 60
	)
	var (
		wg       sync.WaitGroup
		id       atomic.Int64
		mu       sync.Mutex
		accepted int
		rejected int
	)
	ctx := context.Background()
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			la, lr := 0, 0
			count := func(d rtdls.Decision) {
				if d.Accepted {
					la++
				} else {
					lr++
				}
			}
			for i := 0; i < each; i++ {
				if i%3 == 2 {
					batch := []rtdls.Task{specTask(id.Add(1)), specTask(id.Add(1)), specTask(id.Add(1))}
					decs, err := svc.SubmitBatch(ctx, batch)
					if err != nil {
						t.Errorf("worker %d batch: %v", w, err)
						return
					}
					for _, d := range decs {
						count(d)
					}
				} else {
					d, err := svc.Submit(ctx, specTask(id.Add(1)))
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					count(d)
				}
			}
			mu.Lock()
			accepted += la
			rejected += lr
			mu.Unlock()
		}(w)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < each/2; i++ {
				if _, err := svc.FailNode(node); err != nil {
					t.Errorf("fail node %d: %v", node, err)
					return
				}
				if _, err := svc.RestoreNode(node); err != nil {
					t.Errorf("restore node %d: %v", node, err)
					return
				}
			}
		}(12 + c) // one node per churner: no double-fail interleavings
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	svc.Close()

	if accepted+rejected != st.Arrivals || st.Accepts != accepted || st.Rejects != rejected {
		t.Fatalf("decision totals %d+%d disagree with stats %+v", accepted, rejected, st)
	}
	if st.Accepts != st.Commits+st.Displaced-st.Readmitted {
		t.Fatalf("conservation broken after drain: accepts=%d commits=%d displaced=%d readmitted=%d",
			st.Accepts, st.Commits, st.Displaced, st.Readmitted)
	}
	if st.QueueLen != 0 {
		t.Fatalf("drain left %d tasks queued", st.QueueLen)
	}
	if st.Speculative+st.Conflicts == 0 {
		t.Fatal("no submission took the speculative path; the stress exercised nothing")
	}
	if !verifier.OK() {
		t.Fatalf("verifier found violations:\n%s", verifier.Report())
	}
}

// TestSpeculativeLinearizationReplay is the linearizability property test:
// whatever interleaving the concurrent, speculating run produced, replaying
// the same tasks in the same linearization order through a fully serialized
// service must reproduce every Decision bit for bit — accepts, rejects,
// node sets, starts, alphas and estimates. The event stream publishes
// decisions in install order under the service lock, so it IS the
// linearization; conflict-path fallbacks replay through the serialized
// submit by construction, and this test pins that epoch-clean installs are
// indistinguishable from it too.
func TestSpeculativeLinearizationReplay(t *testing.T) {
	newSvc := func() (*rtdls.Service, *rtdls.ManualClock) {
		clock := rtdls.NewManualClock(0) // frozen: `now` is 0 in both runs
		svc, err := rtdls.New(
			rtdls.WithNodes(16),
			rtdls.WithParams(rtdls.Params{Cms: 1, Cps: 100}),
			rtdls.WithPolicy(rtdls.EDF),
			rtdls.WithAlgorithm(rtdls.AlgDLTIIT),
			rtdls.WithClock(clock),
		)
		if err != nil {
			t.Fatal(err)
		}
		return svc, clock
	}

	// Concurrent run, speculation on (the default).
	svc, _ := newSvc()
	events, cancelSub := svc.Subscribe(1 << 15)
	order := make(chan []int64, 1)
	go func() {
		var ids []int64
		for ev := range events {
			if ev.Kind == rtdls.EventAccept || ev.Kind == rtdls.EventReject {
				ids = append(ids, ev.Task.ID)
			}
		}
		order <- ids
	}()

	const (
		workers = 8
		each    = 40
	)
	var (
		wg  sync.WaitGroup
		id  atomic.Int64
		mu  sync.Mutex
		got = make(map[int64]rtdls.Decision, workers*each)
	)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				n := id.Add(1)
				d, err := svc.Submit(ctx, specTask(n))
				if err != nil {
					t.Errorf("task %d: %v", n, err)
					return
				}
				mu.Lock()
				got[n] = d
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := svc.Stats()
	svc.Close()
	cancelSub()
	linear := <-order

	if st.EventsDropped != 0 {
		t.Fatalf("%d events dropped; the linearization record is incomplete", st.EventsDropped)
	}
	if len(linear) != workers*each {
		t.Fatalf("linearization has %d decisions, want %d", len(linear), workers*each)
	}

	// Serialized replay of the identical linearization order.
	replay, _ := newSvc()
	defer replay.Close()
	replay.SetSpeculation(false)
	for pos, n := range linear {
		want := got[n]
		d, err := replay.Submit(ctx, specTask(n))
		if err != nil {
			t.Fatalf("replay pos %d task %d: %v", pos, n, err)
		}
		if d.Accepted != want.Accepted {
			t.Fatalf("pos %d task %d: accepted=%v, concurrent run said %v", pos, n, d.Accepted, want.Accepted)
		}
		if d.Reason != want.Reason {
			t.Fatalf("pos %d task %d: reason=%q, concurrent run said %q", pos, n, d.Reason, want.Reason)
		}
		if math.Float64bits(d.Est) != math.Float64bits(want.Est) || d.Rounds != want.Rounds ||
			math.Float64bits(d.At) != math.Float64bits(want.At) {
			t.Fatalf("pos %d task %d: est/rounds/at %v/%d/%v != %v/%d/%v",
				pos, n, d.Est, d.Rounds, d.At, want.Est, want.Rounds, want.At)
		}
		if len(d.Nodes) != len(want.Nodes) {
			t.Fatalf("pos %d task %d: %d nodes != %d", pos, n, len(d.Nodes), len(want.Nodes))
		}
		for i := range d.Nodes {
			if d.Nodes[i] != want.Nodes[i] ||
				math.Float64bits(d.Starts[i]) != math.Float64bits(want.Starts[i]) ||
				math.Float64bits(d.Alphas[i]) != math.Float64bits(want.Alphas[i]) {
				t.Fatalf("pos %d task %d node %d: plan diverges from concurrent run", pos, n, i)
			}
		}
	}
}
